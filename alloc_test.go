// Allocation regression tests for the protocol hot paths: the paper's
// O(1)-control-information claim for the efficient protocols (§5,
// Theorem 2) is enforced here at the allocation level. PRAM and Slow
// reads must be exactly 0 allocs/op; every protocol's write path must
// stay within a small amortized budget, with the wait-free protocols
// (interned VarIDs + array replicas + coalescing outbox + recycled
// buffers) at ≤ 1 alloc per write.
package partialdsm

import (
	"fmt"
	"testing"
)

// allocCluster builds an untraced sharded-transport cluster, the
// configuration the allocation claims are made for (the sharded engine
// recycles its mailbox arrays; tracing is the recorder's business and
// inherently allocates).
func allocCluster(t *testing.T, cons Consistency, placement [][]string, batch int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Consistency:    cons,
		PlacementLists: placement,
		Seed:           1,
		DisableTrace:   true,
		Transport:      TransportSharded,
		CoalesceBatch:  batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestReadZeroAllocs locks in the wait-free read path: a PRAM or Slow
// read is one interning lookup and one array load — 0 allocs/op.
func TestReadZeroAllocs(t *testing.T) {
	for _, cons := range []Consistency{PRAM, Slow} {
		t.Run(string(cons), func(t *testing.T) {
			c := allocCluster(t, cons, fullPlacement(4), 16)
			h := c.Node(0)
			if err := h.Write("x", 42); err != nil {
				t.Fatal(err)
			}
			c.Quiesce()
			avg := testing.AllocsPerRun(1000, func() {
				if _, err := h.Read("x"); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("%s Read allocates %.2f/op, want 0", cons, avg)
			}
		})
	}
}

// TestWriteAllocBudget enforces the amortized write-path budget per
// protocol. Each measured run is a coalescing batch worth of writes
// followed by a quiesce, so the cost of flushing frames, delivering
// them and recycling the buffers is all charged to the writes.
func TestWriteAllocBudget(t *testing.T) {
	const batch = 16
	budgets := []struct {
		cons   Consistency
		budget float64 // max allocs per write, amortized
	}{
		// Wait-free partial-replication protocols: the headline claim.
		// Steady state measures ~0.15 (occasional pool misses); the
		// budget leaves room for scheduler-dependent pool churn.
		{PRAM, 0.5},
		{Slow, 0.5},
		// Causal broadcast: vector clocks encode straight from the node
		// clock, same budget.
		{CausalFull, 0.5},
		// Causal partial replication pays Θ(n·v) dependency scanning but
		// still streams into pooled frames.
		{CausalPartial, 2},
		{CausalHoopAware, 2},
		// Blocking protocols: the shared multicast frame is refcounted
		// and recycled by its last receiver, so the remaining allocs are
		// sequencer bookkeeping (buffered-update map entries) and the
		// writer's blocking-wait machinery.
		{Sequential, 4.5},
		{CacheConsistency, 4.5},
		// Atomic registers: every payload is single-destination and
		// pooled on both sides of the round trip — zero steady state.
		{Atomic, 1},
	}
	for _, tc := range budgets {
		t.Run(string(tc.cons), func(t *testing.T) {
			c := allocCluster(t, tc.cons, fullPlacement(4), batch)
			h := c.Node(0)
			// Warm the pools and the transport's recycled arrays.
			for i := 0; i < 4*batch; i++ {
				if err := h.Write("x", int64(i)+1); err != nil {
					t.Fatal(err)
				}
			}
			c.Quiesce()
			v := int64(1000)
			avg := testing.AllocsPerRun(50, func() {
				for i := 0; i < batch; i++ {
					v++
					if err := h.Write("x", v); err != nil {
						t.Fatal(err)
					}
				}
				c.Quiesce()
			})
			perWrite := avg / batch
			if perWrite > tc.budget {
				t.Errorf("%s Write allocates %.2f/op amortized (%.1f per %d-write burst), budget %.1f",
					tc.cons, perWrite, avg, batch, tc.budget)
			}
		})
	}
}

// TestWriteAllocBudgetPartialPlacement repeats the PRAM budget on a
// partial-replication hoop topology: interning and peer tables must not
// degrade when cliques differ per variable.
func TestWriteAllocBudgetPartialPlacement(t *testing.T) {
	c := allocCluster(t, PRAM, hoopPlacement(), 16)
	h := c.Node(0)
	for i := 0; i < 64; i++ {
		if err := h.Write("x", int64(i)+1); err != nil {
			t.Fatal(err)
		}
		if err := h.Write("y", int64(i)+1); err != nil {
			t.Fatal(err)
		}
	}
	c.Quiesce()
	v := int64(1000)
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 8; i++ {
			v++
			if err := h.Write("x", v); err != nil {
				t.Fatal(err)
			}
			v++
			if err := h.Write("y", v); err != nil {
				t.Fatal(err)
			}
		}
		c.Quiesce()
	})
	if perWrite := avg / 16; perWrite > 1 {
		t.Errorf("PRAM Write on hoop placement allocates %.2f/op amortized, budget 1", perWrite)
	}
}

// TestUncoalescedWriteAllocBudget locks in the refcounted shared-frame
// path: with coalescing off, every multicast write shares one pooled
// frame recycled by its last receiver, so even the uncoalesced
// protocols amortize below one allocation per write.
func TestUncoalescedWriteAllocBudget(t *testing.T) {
	for _, cons := range []Consistency{PRAM, Slow, CausalFull} {
		t.Run(string(cons), func(t *testing.T) {
			c := allocCluster(t, cons, fullPlacement(4), 1)
			h := c.Node(0)
			for i := 0; i < 64; i++ {
				if err := h.Write("x", int64(i)+1); err != nil {
					t.Fatal(err)
				}
			}
			c.Quiesce()
			v := int64(1000)
			avg := testing.AllocsPerRun(50, func() {
				for i := 0; i < 16; i++ {
					v++
					if err := h.Write("x", v); err != nil {
						t.Fatal(err)
					}
				}
				c.Quiesce()
			})
			if perWrite := avg / 16; perWrite > 0.5 {
				t.Errorf("%s uncoalesced Write allocates %.2f/op amortized, budget 0.5", cons, perWrite)
			}
		})
	}
}

// TestPutGetSmallValueAllocs locks the v2 byte-value surface to the
// same budgets as the int64 shim: a small-value (≤ 8 B) Put on the
// wait-free protocols amortizes within the PR-3 write budgets (the
// byte path is the same staged-encoder path), GetInto with a
// pre-sized buffer is 0 allocs/op, and Get costs exactly the one
// defensive copy.
func TestPutGetSmallValueAllocs(t *testing.T) {
	const batch = 16
	for _, tc := range []struct {
		cons   Consistency
		budget float64 // max allocs per Put, amortized (PR-3 Write budgets)
	}{
		{PRAM, 0.5},
		{Slow, 0.5},
		{CausalFull, 0.5},
	} {
		t.Run(string(tc.cons), func(t *testing.T) {
			c := allocCluster(t, tc.cons, fullPlacement(4), batch)
			h := c.Node(0)
			val := make([]byte, 8)
			for i := 0; i < 4*batch; i++ {
				val[7] = byte(i)
				if err := h.Put("x", val); err != nil {
					t.Fatal(err)
				}
			}
			c.Quiesce()
			avg := testing.AllocsPerRun(50, func() {
				for i := 0; i < batch; i++ {
					val[6]++
					if err := h.Put("x", val); err != nil {
						t.Fatal(err)
					}
				}
				c.Quiesce()
			})
			if perPut := avg / batch; perPut > tc.budget {
				t.Errorf("%s Put allocates %.2f/op amortized, budget %.1f", tc.cons, perPut, tc.budget)
			}
			dst := make([]byte, 0, 16)
			if avg := testing.AllocsPerRun(1000, func() {
				var err error
				dst, err = h.GetInto("x", dst)
				if err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("%s GetInto allocates %.2f/op, want 0", tc.cons, avg)
			}
			if avg := testing.AllocsPerRun(1000, func() {
				if _, err := h.Get("x"); err != nil {
					t.Fatal(err)
				}
			}); avg > 1 {
				t.Errorf("%s Get allocates %.2f/op, budget 1 (the defensive copy)", tc.cons, avg)
			}
		})
	}
}

// TestCoalescingCutsMessages pins down the message-count effect the
// outbox exists for: a burst of B writes to k peers is k messages, not
// k·B.
func TestCoalescingCutsMessages(t *testing.T) {
	const nodes, burst = 4, 16
	for _, tc := range []struct {
		batch    int
		wantMsgs int64
	}{
		{1, burst * (nodes - 1)}, // uncoalesced: one message per write per peer
		{burst, nodes - 1},       // coalesced: one frame per peer
	} {
		t.Run(fmt.Sprintf("batch=%d", tc.batch), func(t *testing.T) {
			c := allocCluster(t, PRAM, fullPlacement(nodes), tc.batch)
			h := c.Node(0)
			for i := 0; i < burst; i++ {
				if err := h.Write("x", int64(i)+1); err != nil {
					t.Fatal(err)
				}
			}
			c.Quiesce()
			if got := c.Stats().Msgs; got != tc.wantMsgs {
				t.Errorf("batch=%d: %d messages for a %d-write burst, want %d",
					tc.batch, got, burst, tc.wantMsgs)
			}
			// Coalescing must not leak information outside C(x).
			if err := c.VerifyEfficiency(); err != nil {
				t.Errorf("efficiency: %v", err)
			}
		})
	}
}
