package partialdsm

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"partialdsm/internal/bellmanford"
	"partialdsm/internal/model"
)

// bfNodes binds cluster node handles to the algorithm's Node interface.
func bfNodes(c *Cluster) []bellmanford.Node {
	nodes := make([]bellmanford.Node, c.NumNodes())
	for i := range nodes {
		nodes[i] = c.Node(i)
	}
	return nodes
}

// TestBellmanFordFigure8 is experiment E10/E11: the paper's §6 case
// study on the Figure 8 network over a PRAM memory with the paper's
// partial replication, checked against the sequential oracle, with the
// execution validated as PRAM-consistent and efficient (Theorem 2).
func TestBellmanFordFigure8(t *testing.T) {
	g := bellmanford.Figure8Graph()
	c := newCluster(t, Config{
		Consistency:    PRAM,
		PlacementLists: bellmanford.Placement(g),
		Seed:           1,
		MaxLatency:     100 * time.Microsecond,
	})
	res, err := bellmanford.Run(bfNodes(c), g, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := bellmanford.Shortest(g, 0)
	if !reflect.DeepEqual(res.Dist, want) {
		t.Fatalf("distributed = %v, oracle = %v", res.Dist, want)
	}
	c.Quiesce()
	if err := c.VerifyWitness(); err != nil {
		t.Errorf("PRAM witness violated: %v", err)
	}
	if err := c.VerifyEfficiency(); err != nil {
		t.Errorf("efficiency violated: %v", err)
	}
}

// TestBellmanFordRandomGraphsOnPRAM runs the case study on random
// graphs and seeds — the weight-independent form of E11.
func TestBellmanFordRandomGraphsOnPRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		g := bellmanford.RandomGraph(rng, 7, 8, 12)
		c, err := New(Config{
			Consistency:    PRAM,
			PlacementLists: bellmanford.Placement(g),
			Seed:           int64(trial),
			MaxLatency:     150 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := bellmanford.Run(bfNodes(c), g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := bellmanford.Shortest(g, 0); !reflect.DeepEqual(res.Dist, want) {
			t.Fatalf("trial %d: distributed = %v, oracle = %v", trial, res.Dist, want)
		}
		c.Quiesce()
		if err := c.VerifyEfficiency(); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
		c.Close()
	}
}

// TestBellmanFordOnStrongerMemories checks that the algorithm (designed
// for PRAM) also runs on the stronger criteria, as the strength
// hierarchy implies.
func TestBellmanFordOnStrongerMemories(t *testing.T) {
	g := bellmanford.Figure8Graph()
	want := bellmanford.Shortest(g, 0)
	for _, cons := range []Consistency{CausalPartial, CausalHoopAware, Sequential, Atomic} {
		cons := cons
		t.Run(string(cons), func(t *testing.T) {
			t.Parallel()
			c := newCluster(t, Config{
				Consistency:    cons,
				PlacementLists: bellmanford.Placement(g),
				Seed:           3,
			})
			res, err := bellmanford.Run(bfNodes(c), g, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Dist, want) {
				t.Fatalf("distributed = %v, oracle = %v", res.Dist, want)
			}
		})
	}
}

// TestFigure9StepPattern is experiment E12: at every round k each
// process reads predecessor estimates of round ≥ k. The protocol
// correctly runs "if each process reads the values written by each of
// its neighbors according to their program order" (§6.1) — verified by
// the PRAM witness over the recorded trace plus the oracle agreement,
// and here additionally by inspecting that every k_h value observed at
// the barrier is non-decreasing per predecessor.
func TestFigure9StepPattern(t *testing.T) {
	g := bellmanford.Figure8Graph()
	c := newCluster(t, Config{
		Consistency:    PRAM,
		PlacementLists: bellmanford.Placement(g),
		Seed:           4,
		MaxLatency:     200 * time.Microsecond,
	})
	if _, err := bellmanford.Run(bfNodes(c), g, 0); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("per-sender program order violated: %v", err)
	}
	// Inspect the recorded history: per reader, the sequence of k_h
	// values read must be non-decreasing for each h (rounds only move
	// forward), which is the observable content of Figure 9's step
	// pattern.
	data, err := c.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty history")
	}
	// The witness already validates read-latest against apply order;
	// non-decreasing k reads follow from per-sender order + the writer
	// only incrementing k. A direct check via the exported history:
	verifyMonotoneKReads(t, c, g)
}

func verifyMonotoneKReads(t *testing.T, c *Cluster, g *bellmanford.Graph) {
	t.Helper()
	h, err := c.History()
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < h.NumProcs(); p++ {
		last := make(map[string]int64)
		for _, id := range h.Local(p) {
			op := h.Op(id)
			if !op.IsRead() || len(op.Var) == 0 || op.Var[0] != 'k' {
				continue
			}
			if op.Val == model.Bottom {
				continue
			}
			val, ok := op.Val.Int64()
			if !ok {
				t.Fatalf("process %d read non-word value %v from %s", p, op.Val, op.Var)
			}
			if prev, seen := last[op.Var]; seen && val < prev {
				t.Fatalf("process %d observed %s going backward: %d after %d", p, op.Var, val, prev)
			}
			last[op.Var] = val
		}
	}
}
