// Flush-schedule determinism tests: the virtual-time flush modes must
// produce byte-identical message traces — same frames, same order,
// same bytes — for the same seed on every transport engine, and
// coalescing must never change what a consistency checker or witness
// sees. These are the reproducibility guarantees that keep traces,
// witnesses and Theorem-2 checks meaningful with coalescing on.
package partialdsm

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"partialdsm/internal/netsim"
)

// sentMsg is one recorded Send.
type sentMsg struct {
	from, to int
	kind     string
	payload  []byte
}

// recordingTransport wraps a real engine and records every Send in
// order, payload bytes copied at send time.
type recordingTransport struct {
	netsim.Transport
	mu    sync.Mutex
	trace []sentMsg
}

func (r *recordingTransport) Send(m netsim.Message) {
	r.mu.Lock()
	r.trace = append(r.trace, sentMsg{m.From, m.To, m.Kind, append([]byte(nil), m.Payload...)})
	r.mu.Unlock()
	r.Transport.Send(m)
}

// InboundIdle and OnInboundIdle forward the PairMonitor contract so
// the adaptive flush mode behaves exactly as on the bare engine.
func (r *recordingTransport) InboundIdle(to int) bool {
	return r.Transport.(netsim.PairMonitor).InboundIdle(to)
}
func (r *recordingTransport) OnInboundIdle(to int, fn func()) {
	r.Transport.(netsim.PairMonitor).OnInboundIdle(to, fn)
}

func (r *recordingTransport) snapshot() []sentMsg {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]sentMsg(nil), r.trace...)
}

var (
	recOnce    sync.Once
	recMu      sync.Mutex
	recCreated []*recordingTransport
)

// registerRecordingTransports wraps both built-in engines behind
// "rec-<kind>" transport names (the registry is process-global, so
// registration happens once).
func registerRecordingTransports() {
	recOnce.Do(func() {
		for _, kind := range []string{netsim.KindClassic, netsim.KindSharded} {
			kind := kind
			netsim.Register("rec-"+kind, func(n int, opts netsim.Options) netsim.Transport {
				inner, err := netsim.New(kind, n, opts)
				if err != nil {
					panic(err)
				}
				rt := &recordingTransport{Transport: inner}
				recMu.Lock()
				recCreated = append(recCreated, rt)
				recMu.Unlock()
				return rt
			})
		}
	})
}

// lastRecording returns the most recently created recording transport.
func lastRecording() *recordingTransport {
	recMu.Lock()
	defer recMu.Unlock()
	return recCreated[len(recCreated)-1]
}

// pollUntil polls x on the node until it reads want (the reads nudge
// the virtual clock, which is what fires buffered writers' deadlines).
func pollUntil(t *testing.T, h *NodeHandle, x string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, err := h.Read(x)
		if err != nil {
			t.Fatal(err)
		}
		if v == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %d never observed %s = %d", h.ID(), x, want)
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// flushModes enumerates the engine-driven flush configurations under
// test.
var flushModes = []struct {
	name string
	cfg  func(*Config)
}{
	{"timer", func(c *Config) { c.CoalesceBatch = 16; c.CoalesceFlushTicks = 4 }},
	{"adaptive", func(c *Config) { c.CoalesceBatch = 16; c.CoalesceAdaptive = true }},
	{"timer+adaptive", func(c *Config) { c.CoalesceBatch = 16; c.CoalesceFlushTicks = 4; c.CoalesceAdaptive = true }},
}

// driveFlushWorkload is the deterministic single-goroutine driver: two
// write bursts staged while the network is idle, each flushed by the
// engine (poll reads provide the clock-advance opportunities), then a
// final quiesce. Each phase polls *every* peer before the next one
// starts: the determinism guarantee is for phase-structured workloads —
// once a straggler delivery may overlap the next burst, which
// destination's drain hook fires first is delivery timing, and frame
// boundaries follow it.
func driveFlushWorkload(t *testing.T, c *Cluster) {
	t.Helper()
	h0, h1 := c.Node(0), c.Node(1)
	for k := int64(1); k <= 5; k++ {
		if err := h0.Write("x", k); err != nil {
			t.Fatal(err)
		}
	}
	for _, peer := range []int{1, 2, 3} {
		pollUntil(t, c.Node(peer), "x", 5)
	}
	for k := int64(1); k <= 3; k++ {
		if err := h1.Write("y", k); err != nil {
			t.Fatal(err)
		}
	}
	for _, peer := range []int{0, 2, 3} {
		pollUntil(t, c.Node(peer), "y", 3)
	}
	if err := h0.Write("x", 99); err != nil {
		t.Fatal(err)
	}
	c.Quiesce() // the tail flushes on the quiesce cut
}

// TestFlushScheduleDeterministicAcrossTransports runs the same seeded
// sequential workload under every flush mode on both engines and
// checks the recorded message traces are byte-identical: same send
// order, same frame boundaries, same payload bytes. The flush schedule
// is part of the deterministic surface, not an engine scheduling
// artifact.
func TestFlushScheduleDeterministicAcrossTransports(t *testing.T) {
	registerRecordingTransports()
	placement := [][]string{{"x", "y"}, {"x", "y"}, {"x", "y"}, {"x", "y"}}
	for _, mode := range flushModes {
		t.Run(mode.name, func(t *testing.T) {
			traces := make(map[string][]sentMsg)
			for _, kind := range []string{"rec-classic", "rec-sharded"} {
				// Three runs per engine: the trace must also be stable
				// run-to-run, not just engine-to-engine.
				for rep := 0; rep < 3; rep++ {
					cfg := Config{
						Consistency:    PRAM,
						PlacementLists: placement,
						Seed:           7,
						Transport:      Transport(kind),
					}
					mode.cfg(&cfg)
					c := newCluster(t, cfg)
					rt := lastRecording()
					driveFlushWorkload(t, c)
					trace := rt.snapshot()
					if err := c.VerifyWitness(); err != nil {
						t.Fatalf("%s rep %d: witness: %v", kind, rep, err)
					}
					key := fmt.Sprintf("%s/%d", kind, rep)
					traces[key] = trace
				}
			}
			ref := traces["rec-classic/0"]
			if len(ref) == 0 {
				t.Fatal("no messages recorded")
			}
			for key, trace := range traces {
				if len(trace) != len(ref) {
					t.Fatalf("%s: %d messages, reference has %d", key, len(trace), len(ref))
				}
				for i := range ref {
					if trace[i].from != ref[i].from || trace[i].to != ref[i].to || trace[i].kind != ref[i].kind ||
						!bytes.Equal(trace[i].payload, ref[i].payload) {
						t.Fatalf("%s: message %d diverges from reference:\n got %d→%d %s % x\nwant %d→%d %s % x",
							key, i,
							trace[i].from, trace[i].to, trace[i].kind, trace[i].payload,
							ref[i].from, ref[i].to, ref[i].kind, ref[i].payload)
					}
				}
			}
		})
	}
}

// driveOverlappingWorkload interleaves bursts from three writers with
// mid-burst poll reads and no phase barriers: deliveries of earlier
// writes are still in flight (in virtual time) while later writes
// stage, so adaptive drain hooks fire between deliveries of an ongoing
// burst — the regime the phase-structured driver above deliberately
// avoids.
func driveOverlappingWorkload(t *testing.T, c *Cluster) {
	t.Helper()
	for k := int64(1); k <= 12; k++ {
		if err := c.Node(0).Write("x", k); err != nil {
			t.Fatal(err)
		}
		if k%2 == 0 {
			if err := c.Node(1).Write("y", k); err != nil {
				t.Fatal(err)
			}
		}
		if k%3 == 0 {
			// A poll read nudges the clock while both bursts are open.
			if _, err := c.Node(2).Read("x"); err != nil {
				t.Fatal(err)
			}
		}
		if k%4 == 0 {
			if err := c.Node(3).Write("x", 100+k); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Quiesce()
}

// TestFlushScheduleOverlappingPhasesVirtual extends the determinism
// golden to overlapping, non-phase-structured drivers: with virtual
// latency, deliveries and adaptive drain hooks run serialized on the
// clock's totally ordered timeline (hooks fire inside the firing
// claim, right after the delivery that drained the destination), so
// the recorded message trace must be byte-identical across engines and
// runs even when bursts overlap in-flight deliveries. Before hook
// firing was deferred to the virtual clock this held only for
// phase-structured workloads.
func TestFlushScheduleOverlappingPhasesVirtual(t *testing.T) {
	registerRecordingTransports()
	placement := [][]string{{"x", "y"}, {"x", "y"}, {"x", "y"}, {"x", "y"}}
	for _, mode := range flushModes {
		t.Run(mode.name, func(t *testing.T) {
			traces := make(map[string][]sentMsg)
			for _, kind := range []string{"rec-classic", "rec-sharded"} {
				for rep := 0; rep < 3; rep++ {
					cfg := Config{
						Consistency:    PRAM,
						PlacementLists: placement,
						Seed:           13,
						Transport:      Transport(kind),
						VirtualLatency: true,
						MaxLatency:     500 * time.Microsecond,
					}
					mode.cfg(&cfg)
					c := newCluster(t, cfg)
					rt := lastRecording()
					driveOverlappingWorkload(t, c)
					trace := rt.snapshot()
					if err := c.VerifyWitness(); err != nil {
						t.Fatalf("%s rep %d: witness: %v", kind, rep, err)
					}
					traces[fmt.Sprintf("%s/%d", kind, rep)] = trace
				}
			}
			ref := traces["rec-classic/0"]
			if len(ref) == 0 {
				t.Fatal("no messages recorded")
			}
			for key, trace := range traces {
				if len(trace) != len(ref) {
					t.Fatalf("%s: %d messages, reference has %d", key, len(trace), len(ref))
				}
				for i := range ref {
					if trace[i].from != ref[i].from || trace[i].to != ref[i].to || trace[i].kind != ref[i].kind ||
						!bytes.Equal(trace[i].payload, ref[i].payload) {
						t.Fatalf("%s: message %d diverges from reference:\n got %d→%d %s % x\nwant %d→%d %s % x",
							key, i,
							trace[i].from, trace[i].to, trace[i].kind, trace[i].payload,
							ref[i].from, ref[i].to, ref[i].kind, ref[i].payload)
					}
				}
			}
		})
	}
}

// TestCoalescingPreservesVerdictsAndWitnesses checks the acceptance
// property the experiments rely on: for the same seeded deterministic
// workload, a coalesced cluster (any flush mode) produces the same
// recorded history, the same exact-checker verdicts and the same
// operation count as an uncoalesced one — while sending fewer
// messages.
func TestCoalescingPreservesVerdictsAndWitnesses(t *testing.T) {
	placement := [][]string{{"x", "y"}, {"x", "y"}, {"x", "y"}}
	drive := func(c *Cluster) error {
		// Phase-synchronized so read values are delivery-independent.
		for k := int64(1); k <= 8; k++ {
			if err := c.Node(0).Write("x", k); err != nil {
				return err
			}
		}
		c.Quiesce()
		for i := 0; i < c.NumNodes(); i++ {
			if _, err := c.Node(i).Read("x"); err != nil {
				return err
			}
		}
		for k := int64(1); k <= 4; k++ {
			if err := c.Node(1).Write("y", k); err != nil {
				return err
			}
		}
		c.Quiesce()
		for i := 0; i < c.NumNodes(); i++ {
			if _, err := c.Node(i).Read("y"); err != nil {
				return err
			}
		}
		return nil
	}
	type outcome struct {
		history  string
		verdicts map[string]bool
		ops      int
		msgs     int64
	}
	measure := func(t *testing.T, mutate func(*Config)) outcome {
		cfg := Config{Consistency: PRAM, PlacementLists: placement, Seed: 11}
		if mutate != nil {
			mutate(&cfg)
		}
		c := newCluster(t, cfg)
		if err := drive(c); err != nil {
			t.Fatal(err)
		}
		if err := c.VerifyWitness(); err != nil {
			t.Fatalf("witness: %v", err)
		}
		if err := c.VerifyEfficiency(); err != nil {
			t.Fatalf("efficiency: %v", err)
		}
		hj, err := c.HistoryJSON()
		if err != nil {
			t.Fatal(err)
		}
		verdicts, err := c.CheckHistory()
		if err != nil {
			t.Fatal(err)
		}
		return outcome{history: string(hj), verdicts: verdicts, ops: c.OpCount(), msgs: c.Stats().Msgs}
	}
	base := measure(t, nil)
	for _, mode := range flushModes {
		t.Run(mode.name, func(t *testing.T) {
			got := measure(t, mode.cfg)
			if got.history != base.history {
				t.Errorf("recorded history diverged from uncoalesced run:\n got %s\nwant %s", got.history, base.history)
			}
			if !reflect.DeepEqual(got.verdicts, base.verdicts) {
				t.Errorf("checker verdicts diverged: got %v, want %v", got.verdicts, base.verdicts)
			}
			if got.ops != base.ops {
				t.Errorf("operation count diverged: got %d, want %d", got.ops, base.ops)
			}
			if got.msgs >= base.msgs {
				t.Errorf("coalescing sent %d messages, uncoalesced sent %d — no reduction", got.msgs, base.msgs)
			}
		})
	}
}

// TestEngineDrivenFlushLiveness pins the liveness property the flush
// modes exist for: a writer stages updates and goes permanently
// silent; a peer polling without ever quiescing must still observe
// them, on both engines, in every mode. (Plain batching would strand
// the tail — the PR-2 caveat these modes remove.)
func TestEngineDrivenFlushLiveness(t *testing.T) {
	for _, tr := range Transports {
		for _, mode := range flushModes {
			t.Run(string(tr)+"/"+mode.name, func(t *testing.T) {
				cfg := Config{Consistency: PRAM, PlacementLists: fullPlacement(3), Transport: tr, Seed: 3}
				mode.cfg(&cfg)
				c := newCluster(t, cfg)
				if err := c.Node(0).Write("x", 42); err != nil {
					t.Fatal(err)
				}
				pollUntil(t, c.Node(1), "x", 42)
				pollUntil(t, c.Node(2), "x", 42)
			})
		}
	}
}

// TestFlushLivenessAcrossPausedLink checks the interaction of the
// virtual clock with deterministic fault injection: while a link is
// paused, its held messages must not stall virtual time for the rest
// of the network — traffic that flows around the held link still
// flushes and delivers.
func TestFlushLivenessAcrossPausedLink(t *testing.T) {
	for _, tr := range Transports {
		for _, mode := range flushModes {
			t.Run(string(tr)+"/"+mode.name, func(t *testing.T) {
				cfg := Config{Consistency: PRAM, PlacementLists: fullPlacement(3), Transport: tr, Seed: 5}
				mode.cfg(&cfg)
				c := newCluster(t, cfg)
				c.PauseLink(0, 2)
				if err := c.Node(0).Write("x", 7); err != nil {
					t.Fatal(err)
				}
				// Node 1 gets the flush around the paused link.
				pollUntil(t, c.Node(1), "x", 7)
				// Node 1's own writes flush and reach node 2 directly.
				if err := c.Node(1).Write("x", 8); err != nil {
					t.Fatal(err)
				}
				pollUntil(t, c.Node(2), "x", 8)
				c.ResumeLink(0, 2)
				c.Quiesce()
			})
		}
	}
}
