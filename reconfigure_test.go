package partialdsm

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// reconfigProtocols are the configurations that support epoch-based
// runtime reconfiguration — since v10, all of them. The owner-based
// protocols (Atomic, CacheConsistency) migrate their per-variable
// primary/sequencer alongside the replica cliques.
var reconfigProtocols = []Consistency{
	PRAM, Slow, CausalFull, CausalPartial, CausalHoopAware, Sequential,
	Atomic, CacheConsistency,
}

// newReconfigCluster builds a 3-node virtual-latency cluster with
// x on {0,1} and y on {1,2}.
func newReconfigCluster(t *testing.T, cons Consistency) *Cluster {
	t.Helper()
	c, err := New(Config{
		Consistency: cons,
		Placement: NewPlacement(3).
			Assign(0, "x").Assign(1, "x", "y").Assign(2, "y"),
		VirtualLatency: true,
		Seed:           7,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// TestReconfigureMovesReplica migrates x from {0,1} to {0,2} on every
// supporting protocol: the transferred value must be readable at the
// gaining node, writes must keep flowing under the new epoch, and the
// recorded execution must stay consistent across the flip.
func TestReconfigureMovesReplica(t *testing.T) {
	for _, cons := range reconfigProtocols {
		t.Run(string(cons), func(t *testing.T) {
			c := newReconfigCluster(t, cons)
			defer c.Close()
			if err := c.Node(0).Write("x", 41); err != nil {
				t.Fatalf("write: %v", err)
			}
			if err := c.Node(2).Write("y", 17); err != nil {
				t.Fatalf("write: %v", err)
			}
			if err := c.Quiesce(); err != nil {
				t.Fatalf("quiesce: %v", err)
			}
			next := NewPlacement(3).
				Assign(0, "x").Assign(1, "y").Assign(2, "x", "y")
			if err := c.Reconfigure(next); err != nil {
				t.Fatalf("reconfigure: %v", err)
			}
			if got := c.Epoch(); got == 0 {
				t.Fatalf("epoch still 0 after reconfigure")
			}
			if err := c.Quiesce(); err != nil {
				t.Fatalf("quiesce: %v", err)
			}
			if c.Holds(1, "x") || !c.Holds(2, "x") {
				t.Fatalf("placement snapshot not updated: holds(1,x)=%v holds(2,x)=%v",
					c.Holds(1, "x"), c.Holds(2, "x"))
			}
			if v, err := c.Node(2).Read("x"); err != nil || v != 41 {
				t.Fatalf("gained replica reads x=%d, %v; want 41", v, err)
			}
			if err := c.Node(2).Write("x", 42); err != nil {
				t.Fatalf("write under new epoch: %v", err)
			}
			if err := c.Quiesce(); err != nil {
				t.Fatalf("quiesce: %v", err)
			}
			if v, err := c.Node(0).Read("x"); err != nil || v != 42 {
				t.Fatalf("old replica reads x=%d, %v; want 42", v, err)
			}
			if err := c.VerifyWitness(); err != nil {
				t.Fatalf("witness after migration: %v", err)
			}
			if cons == PRAM || cons == Slow {
				if err := c.VerifyEfficiency(); err != nil {
					t.Fatalf("efficiency after migration: %v", err)
				}
			}
		})
	}
}

// TestReconfigureValidation exercises every descriptive rejection.
func TestReconfigureValidation(t *testing.T) {
	c := newReconfigCluster(t, PRAM)
	defer c.Close()
	cases := []struct {
		name string
		next *Placement
		want string
	}{
		{"nil", nil, "needs a placement"},
		{"node count", NewPlacement(2).Assign(0, "x").Assign(1, "x", "y"), "changes the node count from 3 to 2"},
		{"dropped variable", NewPlacement(3).Assign(0, "x").Assign(1, "x").Assign(2, "x"), `drops variable "y"`},
		{"added variable", NewPlacement(3).Assign(0, "x", "z").Assign(1, "x", "y").Assign(2, "y", "z"), `adds variable "z"`},
		{"empty name", NewPlacement(3).Assign(0, "x", "").Assign(1, "x", "y").Assign(2, "y"), "empty variable name"},
		{"duplicate name", NewPlacement(3).Assign(0, "x", "x").Assign(1, "x", "y").Assign(2, "y"), "more than once"},
		{"owner of unknown variable", NewPlacement(3).Assign(0, "x").Assign(1, "x", "y").Assign(2, "y").SetOwner("z", 0), `owner pinned for unknown variable "z"`},
		{"owner not replicating", NewPlacement(3).Assign(0, "x").Assign(1, "x", "y").Assign(2, "y").SetOwner("x", 2), "does not replicate it"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := c.Reconfigure(tc.next)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Reconfigure = %v; want error containing %q", err, tc.want)
			}
		})
	}
	if got := c.Epoch(); got != 0 {
		t.Fatalf("rejected attempts moved the epoch to %d", got)
	}

	t.Run("non-FIFO", func(t *testing.T) {
		nc, err := New(Config{
			Consistency:    Slow,
			Placement:      NewPlacement(2).Assign(0, "x").Assign(1, "x"),
			NonFIFO:        true,
			VirtualLatency: true,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer nc.Close()
		err = nc.Reconfigure(NewPlacement(2).Assign(0, "x").Assign(1, "x"))
		if err == nil || !strings.Contains(err.Error(), "FIFO") {
			t.Fatalf("Reconfigure on non-FIFO = %v; want FIFO error", err)
		}
	})
}

// TestReconfigureMovesOwner walks x's owner — the per-variable primary
// (Atomic) or sequencer (CacheConsistency) — across the whole clique in
// back-to-back flips 0→1→2 without changing the replica sets. Each
// handoff must carry the committed value to the new owner, keep writes
// flowing under the new epoch, and leave a witness-consistent history.
func TestReconfigureMovesOwner(t *testing.T) {
	for _, cons := range []Consistency{Atomic, CacheConsistency} {
		t.Run(string(cons), func(t *testing.T) {
			c, err := New(Config{
				Consistency: cons,
				Placement: NewPlacement(3).
					Assign(0, "x").Assign(1, "x").Assign(2, "x"),
				VirtualLatency: true,
				Seed:           9,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer c.Close()
			if err := c.Node(0).Write("x", 1); err != nil {
				t.Fatalf("write: %v", err)
			}
			if err := c.Quiesce(); err != nil {
				t.Fatalf("quiesce: %v", err)
			}
			for step, owner := range []int{1, 2} {
				next := NewPlacement(3).
					Assign(0, "x").Assign(1, "x").Assign(2, "x").
					SetOwner("x", owner)
				if err := c.Reconfigure(next); err != nil {
					t.Fatalf("handoff to %d: %v", owner, err)
				}
				if got := c.Placement().Owners()["x"]; got != owner {
					t.Fatalf("owner after handoff = %d; want %d", got, owner)
				}
				v := int64(step + 2)
				// Write from a non-owner so the round trip crosses the
				// freshly installed owner.
				if err := c.Node((owner+1)%3).Write("x", v); err != nil {
					t.Fatalf("write under owner %d: %v", owner, err)
				}
				if err := c.Quiesce(); err != nil {
					t.Fatalf("quiesce: %v", err)
				}
				for i := 0; i < 3; i++ {
					if got, err := c.Node(i).Read("x"); err != nil || got != v {
						t.Fatalf("node %d reads x=%d, %v; want %d", i, got, err, v)
					}
				}
			}
			if err := c.VerifyWitness(); err != nil {
				t.Fatalf("witness after owner walk: %v", err)
			}
		})
	}
}

// TestReconfigureNoop checks that reconfiguring to the placement
// already installed returns nil without a single message.
func TestReconfigureNoop(t *testing.T) {
	c := newReconfigCluster(t, PRAM)
	defer c.Close()
	if err := c.Node(0).Write("x", 1); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	before := c.Stats().Msgs
	same := NewPlacement(3).Assign(0, "x").Assign(1, "x", "y").Assign(2, "y")
	if err := c.Reconfigure(same); err != nil {
		t.Fatalf("no-op reconfigure: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if got := c.Stats().Msgs; got != before {
		t.Fatalf("no-op reconfigure sent %d messages", got-before)
	}
	if c.Epoch() != 0 {
		t.Fatalf("no-op reconfigure moved the epoch to %d", c.Epoch())
	}
}

// TestReconfigureRecoveryInProgress checks that an unfinished crash
// recovery blocks reconfiguration with a descriptive error.
func TestReconfigureRecoveryInProgress(t *testing.T) {
	c, err := New(Config{
		Consistency:    PRAM,
		Placement:      NewPlacement(2).Assign(0, "x").Assign(1, "x"),
		VirtualLatency: true,
		Seed:           3,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if err := c.Node(0).Write("x", 9); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if err := c.CrashNode(1); err != nil {
		t.Fatalf("crash: %v", err)
	}
	// Hold the snapshot requests so the recovery handshake cannot
	// finish before Reconfigure looks.
	c.PauseLink(1, 0)
	if err := c.RestartNode(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	err = c.Reconfigure(NewPlacement(2).Assign(0, "x").Assign(1, "x"))
	if err == nil || !strings.Contains(err.Error(), "crash recovery") {
		t.Fatalf("Reconfigure during recovery = %v; want recovery error", err)
	}
	c.ResumeLink(1, 0)
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	// With the handshake settled the same placement is accepted (as a
	// no-op here).
	if err := c.Reconfigure(NewPlacement(2).Assign(0, "x").Assign(1, "x")); err != nil {
		t.Fatalf("Reconfigure after recovery: %v", err)
	}
}

// TestReconfigureStallsOnUnhealedCut drives a migration whose
// proposal and state transfer are lost on a hard partition: the
// attempt burns its virtual-time budget (the idle network
// fast-forwards the clock, so this costs microseconds of real time),
// aborts with ErrOpDeadline, and the cluster keeps serving the old
// epoch consistently.
func TestReconfigureStallsOnUnhealedCut(t *testing.T) {
	c, err := New(Config{
		Consistency: PRAM,
		Placement: NewPlacement(3).
			Assign(0, "x").Assign(1, "x", "y").Assign(2, "y"),
		VirtualLatency: true,
		Seed:           11,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if err := c.Node(0).Write("x", 5); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	// Node 2 gains x; its only inbound paths are 0→2 and 1→2. Cut
	// both: the proposal (and any transfer) to node 2 is lost, so the
	// attempt can never commit.
	c.CutLink(0, 2)
	c.CutLink(1, 2)
	next := NewPlacement(3).Assign(0, "x").Assign(1, "y").Assign(2, "x", "y")
	err = c.Reconfigure(next)
	if !errors.Is(err, ErrOpDeadline) {
		t.Fatalf("stalled Reconfigure = %v; want ErrOpDeadline", err)
	}
	if c.Epoch() != 0 {
		t.Fatalf("aborted attempt moved the epoch to %d", c.Epoch())
	}
	c.HealLink(0, 2)
	c.HealLink(1, 2)
	// The old epoch keeps working: the fence lifted on abort.
	if err := c.Node(0).Write("x", 7); err != nil {
		t.Fatalf("write after abort: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if v, err := c.Node(1).Read("x"); err != nil || v != 7 {
		t.Fatalf("node 1 reads x=%d, %v; want 7", v, err)
	}
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("witness after aborted migration: %v", err)
	}
}

// TestReconfigureConcurrentRejected checks the in-progress guard.
// Under virtual time a stalled attempt resolves its whole budget in
// one idle jump — microseconds of real time — so there is no window
// in which a second goroutine can deterministically race a live
// attempt. Pin the in-progress flag directly (Reconfigure holds it
// for the entire attempt) and check both the rejection and that the
// control plane works again once it clears.
func TestReconfigureConcurrentRejected(t *testing.T) {
	c := newReconfigCluster(t, PRAM)
	defer c.Close()
	next := NewPlacement(3).Assign(0, "x").Assign(1, "y").Assign(2, "x", "y")
	c.cmu.Lock()
	c.reconfiguring = true
	c.cmu.Unlock()
	if err := c.Reconfigure(next); err == nil || !strings.Contains(err.Error(), "already in progress") {
		t.Fatalf("concurrent Reconfigure = %v; want in-progress error", err)
	}
	c.cmu.Lock()
	c.reconfiguring = false
	c.cmu.Unlock()
	if err := c.Reconfigure(next); err != nil {
		t.Fatalf("Reconfigure after the guard clears: %v", err)
	}
	if c.Epoch() == 0 {
		t.Fatalf("epoch still 0 after commit")
	}
}

// TestReconfigureFenceFailFast arms an epoch fence whose attempt can
// never finish (the proposal to the gaining node is lost on cut
// links, and the engine is driven directly so no abort budget is
// registered): a write against the fenced variable fails fast with
// ErrOpDeadline instead of blocking, and after the attempt is forced
// to abort the old epoch serves writes again.
func TestReconfigureFenceFailFast(t *testing.T) {
	c, err := New(Config{
		Consistency: PRAM,
		Placement: NewPlacement(3).
			Assign(0, "x").Assign(1, "x", "y").Assign(2, "y"),
		VirtualLatency:  true,
		Seed:            11,
		OpDeadlineTicks: 512,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if err := c.Node(0).Write("x", 5); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	// Node 2 gains x; cutting both inbound links loses the proposal,
	// so the attempt stays armed on nodes 0 and 1 indefinitely.
	c.CutLink(0, 2)
	c.CutLink(1, 2)
	engs, err := c.reconfigEngines()
	if err != nil {
		t.Fatalf("engines: %v", err)
	}
	sg, err := NewPlacement(3).Assign(0, "x").Assign(1, "y").Assign(2, "x", "y").build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	nix, err := c.ix.Rebind(sg, 1)
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	if _, err := engs[0].StartReconfigure(nix, []bool{true, true, true}, 1); err != nil {
		t.Fatalf("start: %v", err)
	}
	putErr := make(chan error, 1)
	go func() { putErr <- c.Node(0).Write("x", 6) }()
	// The write's deadline rides the virtual clock; nudge the idle
	// network so the jump fires it once it registers.
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case err := <-putErr:
			if !errors.Is(err, ErrOpDeadline) {
				t.Fatalf("write against fenced variable = %v; want ErrOpDeadline", err)
			}
		default:
			if time.Now().After(deadline) {
				t.Fatalf("fenced write never expired")
			}
			c.net.Clock().AdvanceIdle()
			time.Sleep(time.Millisecond)
			continue
		}
		break
	}
	// Like any op-deadline failure, the fenced write records a fault
	// in the cluster ledger.
	if c.Err() == nil {
		t.Fatal("Err() = nil, want the deadline fault recorded")
	}
	for _, e := range engs {
		e.ForceFinish(false)
	}
	c.HealLink(0, 2)
	c.HealLink(1, 2)
	// The fence lifted on abort: the old epoch serves writes again.
	// (The recorded fault makes Quiesce fail by design, so poll the
	// peer replica instead.)
	if err := c.Node(0).Write("x", 7); err != nil {
		t.Fatalf("write after abort: %v", err)
	}
	for {
		if v, err := c.Node(1).Read("x"); err == nil && v == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node 1 never saw the post-abort write")
		}
		c.net.Clock().AdvanceIdle()
		time.Sleep(time.Millisecond)
	}
}

// TestReconfigureCoordinatorCrash crashes the coordinator while the
// state-transfer response headed to it is parked on a paused link:
// the attempt aborts on budget expiry, and after the coordinator
// restarts and recovers, the cluster reconfigures successfully.
func TestReconfigureCoordinatorCrash(t *testing.T) {
	c := newReconfigCluster(t, PRAM)
	defer c.Close()
	if err := c.Node(0).Write("x", 23); err != nil {
		t.Fatalf("write x: %v", err)
	}
	if err := c.Node(1).Write("y", 24); err != nil {
		t.Fatalf("write y: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	// Migrate y from {1,2} to {0,2}: the coordinator (node 0, lowest
	// live) is the gainer, and the donor is node 1 — a different node,
	// so parking link 1→0 holds the migresp mid-flight without
	// blocking the donor's fence barrier (fences 0→1 and 2→1 flow).
	c.PauseLink(1, 0)
	next := NewPlacement(3).Assign(0, "x", "y").Assign(1, "x").Assign(2, "y")
	recErr := make(chan error, 1)
	go func() { recErr <- c.Reconfigure(next) }()
	deadline := time.Now().Add(10 * time.Second)
	for c.Stats().MsgsByKind["epoch.migresp"] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("transfer never started")
		}
		time.Sleep(time.Millisecond)
	}
	// The transfer response is parked on the paused link; crash the
	// coordinator before it can arrive, then release the link (frames
	// to a crashed node are lost). The attempt can no longer commit,
	// burns its budget, and aborts.
	if err := c.CrashNode(0); err != nil {
		t.Fatalf("crash coordinator: %v", err)
	}
	c.ResumeLink(1, 0)
	if err := <-recErr; !errors.Is(err, ErrOpDeadline) {
		t.Fatalf("Reconfigure with crashed coordinator = %v; want ErrOpDeadline", err)
	}
	if c.Epoch() != 0 {
		t.Fatalf("aborted attempt moved the epoch to %d", c.Epoch())
	}
	if err := c.RestartNode(0); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if v, err := c.Node(0).Read("x"); err != nil || v != 23 {
		t.Fatalf("recovered coordinator reads x=%d, %v; want 23", v, err)
	}
	if err := c.Reconfigure(next); err != nil {
		t.Fatalf("Reconfigure after coordinator restart: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if v, err := c.Node(0).Read("y"); err != nil || v != 24 {
		t.Fatalf("node 0 reads y=%d, %v; want 24", v, err)
	}
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("witness: %v", err)
	}
}

// TestReconfigureOwnerCrashMidHandoff crashes the gaining owner while
// the ownership-handoff proposal is in flight to it, for both owner
// protocols: the attempt must abort with the old epoch — and the old
// owner's authority — fully intact, and the same handoff must succeed
// once the node is restarted and recovered.
func TestReconfigureOwnerCrashMidHandoff(t *testing.T) {
	for _, cons := range []Consistency{Atomic, CacheConsistency} {
		t.Run(string(cons), func(t *testing.T) {
			c := newReconfigCluster(t, cons)
			defer c.Close()
			if err := c.Node(0).Write("x", 31); err != nil {
				t.Fatalf("write x: %v", err)
			}
			if err := c.Quiesce(); err != nil {
				t.Fatalf("quiesce: %v", err)
			}
			// Walk x's ownership 0→1 inside its unchanged clique, but
			// park the proposal on the paused link and crash the gaining
			// owner before it can participate.
			c.PauseLink(0, 1)
			next := NewPlacement(3).
				Assign(0, "x").Assign(1, "x", "y").Assign(2, "y").
				SetOwner("x", 1)
			recErr := make(chan error, 1)
			go func() { recErr <- c.Reconfigure(next) }()
			deadline := time.Now().Add(10 * time.Second)
			for c.Stats().MsgsByKind["epoch.propose"] == 0 {
				if time.Now().After(deadline) {
					t.Fatalf("handoff never started")
				}
				time.Sleep(time.Millisecond)
			}
			if err := c.CrashNode(1); err != nil {
				t.Fatalf("crash gaining owner: %v", err)
			}
			c.ResumeLink(0, 1) // frames to the crashed node are lost
			if err := <-recErr; !errors.Is(err, ErrOpDeadline) {
				t.Fatalf("Reconfigure with crashed gainer = %v; want ErrOpDeadline", err)
			}
			if c.Epoch() != 0 {
				t.Fatalf("aborted handoff moved the epoch to %d", c.Epoch())
			}
			if len(c.Placement().Owners()) != 0 {
				t.Fatalf("aborted handoff pinned owners %v", c.Placement().Owners())
			}
			// The old owner kept its authority: writes and reads at node
			// 0 flow without touching the dead gainer.
			if err := c.Node(0).Write("x", 32); err != nil {
				t.Fatalf("write under old epoch: %v", err)
			}
			if v, err := c.Node(0).Read("x"); err != nil || v != 32 {
				t.Fatalf("old owner reads x=%d, %v; want 32", v, err)
			}
			if err := c.RestartNode(1); err != nil {
				t.Fatalf("restart: %v", err)
			}
			if err := c.Quiesce(); err != nil {
				t.Fatalf("quiesce: %v", err)
			}
			// The recovered node can now take the handoff for real.
			if err := c.Reconfigure(next); err != nil {
				t.Fatalf("Reconfigure after restart: %v", err)
			}
			if own := c.Placement().Owners(); own["x"] != 1 {
				t.Fatalf("owners after handoff = %v; want x pinned to 1", own)
			}
			if err := c.Node(0).Write("x", 33); err != nil {
				t.Fatalf("write under new owner: %v", err)
			}
			if err := c.Quiesce(); err != nil {
				t.Fatalf("quiesce: %v", err)
			}
			if v, err := c.Node(1).Read("x"); err != nil || v != 33 {
				t.Fatalf("new owner reads x=%d, %v; want 33", v, err)
			}
			if err := c.VerifyWitness(); err != nil {
				t.Fatalf("witness: %v", err)
			}
		})
	}
}

// TestFailoverReplacesCrashedNode crashes the node holding y's only
// surviving peer copy and z's only copy, fails it over, and checks the
// moved variables: transferred where a live donor existed, ⊥ where
// none did, and fully writable; the node then rejoins under the new
// epoch.
func TestFailoverReplacesCrashedNode(t *testing.T) {
	c, err := New(Config{
		Consistency: PRAM,
		Placement: NewPlacement(3).
			Assign(0, "x").Assign(1, "x", "y", "z").Assign(2, "y"),
		VirtualLatency: true,
		Seed:           5,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if err := c.Node(0).Write("x", 1); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.Node(1).Write("z", 3); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if err := c.Failover(1); err == nil {
		t.Fatalf("Failover of a live node succeeded")
	}
	if err := c.CrashNode(1); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if err := c.Failover(1); err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if c.Holds(1, "x") || c.Holds(1, "y") || c.Holds(1, "z") {
		t.Fatalf("crashed node still holds variables: %v", c.VarsOf(1))
	}
	for _, x := range []string{"x", "y", "z"} {
		if len(c.Clique(x)) == 0 {
			t.Fatalf("variable %s lost all replicas", x)
		}
	}
	// x survived via its live replica on node 0 and was transferred to
	// wherever it moved; z's only copy died with node 1, so its new
	// replica starts at ⊥.
	xHome := c.Clique("x")[0]
	if v, err := c.Node(xHome).Read("x"); err != nil || v != 1 {
		t.Fatalf("x after failover = %d, %v; want 1", v, err)
	}
	zHome := c.Clique("z")[0]
	if v, err := c.Node(zHome).Read("z"); err != nil || v != Bottom {
		t.Fatalf("z after failover = %d, %v; want Bottom", v, err)
	}
	if err := c.Node(zHome).Write("z", 30); err != nil {
		t.Fatalf("write moved variable: %v", err)
	}
	if err := c.RestartNode(1); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("witness after failover: %v", err)
	}
}

// TestFailoverDuringRecoveryRejected checks that Failover refuses to
// migrate while another node's crash recovery is still mid-state-
// transfer: the peers hold snapshot state the migration would need
// settled. Once the handshake drains, the same failover succeeds.
func TestFailoverDuringRecoveryRejected(t *testing.T) {
	c, err := New(Config{
		Consistency: PRAM,
		Placement: NewPlacement(3).
			Assign(0, "x", "y").Assign(1, "x").Assign(2, "y"),
		VirtualLatency: true,
		Seed:           11,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if err := c.Node(0).Write("x", 1); err != nil {
		t.Fatalf("write x: %v", err)
	}
	if err := c.Node(0).Write("y", 2); err != nil {
		t.Fatalf("write y: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	// Put node 1 into an unfinished recovery: crash it, park its
	// snapshot requests on the paused link, restart it. Its only
	// recovery donor is node 0, so the handshake cannot progress.
	if err := c.CrashNode(1); err != nil {
		t.Fatalf("crash 1: %v", err)
	}
	c.PauseLink(1, 0)
	if err := c.RestartNode(1); err != nil {
		t.Fatalf("restart 1: %v", err)
	}
	// Crash the failover target while node 1 is still recovering.
	if err := c.CrashNode(2); err != nil {
		t.Fatalf("crash 2: %v", err)
	}
	if err := c.Failover(2); !errors.Is(err, errRecoveryInProgress) {
		t.Fatalf("Failover during recovery = %v; want errRecoveryInProgress", err)
	}
	if c.Epoch() != 0 {
		t.Fatalf("rejected failover moved the epoch to %d", c.Epoch())
	}
	c.ResumeLink(1, 0)
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	// With the handshake settled, the failover goes through: y's
	// surviving copy on node 0 is transferred to node 1.
	if err := c.Failover(2); err != nil {
		t.Fatalf("Failover after recovery: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if c.Holds(2, "y") || !c.Holds(1, "y") {
		t.Fatalf("failover did not move y: clique %v", c.Clique("y"))
	}
	if v, err := c.Node(1).Read("y"); err != nil || v != 2 {
		t.Fatalf("moved replica reads y=%d, %v; want 2", v, err)
	}
	if err := c.RestartNode(2); err != nil {
		t.Fatalf("restart 2: %v", err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("witness: %v", err)
	}
}

// TestReconfigureExactPRAMHistory runs a small PRAM workload spanning
// three epoch flips and checks it against the exact PRAM checker.
func TestReconfigureExactPRAMHistory(t *testing.T) {
	c := newReconfigCluster(t, PRAM)
	defer c.Close()
	placements := []*Placement{
		NewPlacement(3).Assign(0, "x").Assign(1, "y").Assign(2, "x", "y"),
		NewPlacement(3).Assign(0, "x", "y").Assign(1, "x").Assign(2, "y"),
		NewPlacement(3).Assign(0, "x").Assign(1, "x", "y").Assign(2, "y"),
	}
	v := int64(0)
	for round, pl := range placements {
		v++
		writer := c.Clique("x")[0]
		if err := c.Node(writer).Write("x", v); err != nil {
			t.Fatalf("round %d write: %v", round, err)
		}
		if err := c.Quiesce(); err != nil {
			t.Fatalf("round %d quiesce: %v", round, err)
		}
		if err := c.Reconfigure(pl); err != nil {
			t.Fatalf("round %d reconfigure: %v", round, err)
		}
		if err := c.Quiesce(); err != nil {
			t.Fatalf("round %d quiesce: %v", round, err)
		}
		reader := c.Clique("x")[len(c.Clique("x"))-1]
		if got, err := c.Node(reader).Read("x"); err != nil || got != v {
			t.Fatalf("round %d read x=%d, %v; want %d", round, got, err, v)
		}
	}
	if got := c.Epoch(); got < 3 {
		t.Fatalf("epoch %d after three flips", got)
	}
	verdicts, err := c.CheckHistory()
	if err != nil {
		t.Fatalf("CheckHistory: %v", err)
	}
	if !verdicts["pram"] {
		t.Fatalf("exact PRAM check failed across epochs: %v", verdicts)
	}
	if err := c.VerifyEfficiency(); err != nil {
		t.Fatalf("efficiency across epochs: %v", err)
	}
}

// TestPlacementBuilderMatchesShim proves the builder API and the
// deprecated raw-lists shim configure byte-identical clusters.
func TestPlacementBuilderMatchesShim(t *testing.T) {
	run := func(cfg Config) []byte {
		t.Helper()
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer c.Close()
		for i := 0; i < c.NumNodes(); i++ {
			for _, x := range c.VarsOf(i) {
				if err := c.Node(i).Write(x, int64(i+1)); err != nil {
					t.Fatalf("write: %v", err)
				}
			}
		}
		if err := c.Quiesce(); err != nil {
			t.Fatalf("quiesce: %v", err)
		}
		out, err := c.ExportTrace()
		if err != nil {
			t.Fatalf("export: %v", err)
		}
		return out
	}
	builder := run(Config{
		Consistency:    PRAM,
		Placement:      NewPlacement(3).Assign(0, "x", "y").Assign(1, "y").Assign(2, "x", "y"),
		VirtualLatency: true,
		Seed:           13,
	})
	shim := run(Config{
		Consistency:    PRAM,
		PlacementLists: [][]string{{"x", "y"}, {"y"}, {"x", "y"}},
		VirtualLatency: true,
		Seed:           13,
	})
	if !bytes.Equal(builder, shim) {
		t.Fatalf("builder and shim traces differ:\n%s\n---\n%s", builder, shim)
	}

	if _, err := New(Config{
		Consistency:    PRAM,
		Placement:      NewPlacement(1).Assign(0, "x"),
		PlacementLists: [][]string{{"x"}},
	}); err == nil || !strings.Contains(err.Error(), "not both") {
		t.Fatalf("both placement fields accepted: %v", err)
	}
}

// TestWindowBounds checks that Window's apply and undo both run, in
// order, exactly ticks apart on the virtual clock.
func TestWindowBounds(t *testing.T) {
	c := newReconfigCluster(t, PRAM)
	defer c.Close()
	applied := make(chan struct{})
	undone := make(chan struct{})
	c.Window(64, func() { close(applied) }, func() { close(undone) })
	if err := c.Quiesce(); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	select {
	case <-applied:
	default:
		t.Fatalf("apply never ran")
	}
	select {
	case <-undone:
	default:
		t.Fatalf("undo never ran")
	}
}
