// Command dsm-sharegraph analyzes a variable distribution: it builds
// the share graph, lists the replica cliques C(x), enumerates x-hoops,
// and reports the x-relevant process sets of Theorem 1.
//
// The placement is read as JSON from a file or stdin:
//
//	{"processes": [["x","y"], ["y"], ["x","y"]]}
//
// Usage:
//
//	dsm-sharegraph [-var x] [-hoops N] [-dot] [file]
//
// -dot prints the Graphviz rendering instead of the analysis.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"partialdsm/internal/sharegraph"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsm-sharegraph", flag.ContinueOnError)
	fs.SetOutput(stderr)
	onlyVar := fs.String("var", "", "analyze a single variable (default: all)")
	hoopLimit := fs.Int("hoops", 20, "maximum hoops to enumerate per variable (0 = unlimited)")
	dot := fs.Bool("dot", false, "emit Graphviz DOT of the share graph and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "dsm-sharegraph: at most one input file")
		return 2
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "dsm-sharegraph: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	pl, err := sharegraph.ParsePlacement(in)
	if err != nil {
		fmt.Fprintf(stderr, "dsm-sharegraph: %v\n", err)
		return 2
	}
	if *dot {
		fmt.Fprint(stdout, pl.DOT())
		return 0
	}

	fmt.Fprintf(stdout, "placement (%d processes, %d variables):\n%s\n", pl.NumProcs(), len(pl.Vars()), pl)
	vars := pl.Vars()
	if *onlyVar != "" {
		vars = []string{*onlyVar}
	}
	for _, x := range vars {
		cx := pl.Clique(x)
		rel := pl.XRelevant(x)
		fmt.Fprintf(stdout, "variable %s:\n", x)
		fmt.Fprintf(stdout, "  C(%s)        = %v\n", x, cx)
		fmt.Fprintf(stdout, "  %s-relevant  = %v", x, rel)
		if len(rel) > len(cx) {
			fmt.Fprintf(stdout, "   ← %d process(es) outside C(%s) must carry %s-information under causal consistency",
				len(rel)-len(cx), x, x)
		}
		fmt.Fprintln(stdout)
		hoops := pl.Hoops(x, *hoopLimit)
		if len(hoops) == 0 {
			fmt.Fprintf(stdout, "  no %s-hoops\n", x)
			continue
		}
		fmt.Fprintf(stdout, "  %s-hoops (showing up to %d):\n", x, *hoopLimit)
		for _, h := range hoops {
			fmt.Fprintf(stdout, "    %v\n", h.Path)
		}
	}
	return 0
}
