package main

import (
	"bytes"
	"strings"
	"testing"
)

func runSG(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var out, errB bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errB)
	return code, out.String(), errB.String()
}

const hoopJSON = `{"processes": [["x","y"], ["y"], ["x","y"]]}`

func TestSharegraphAnalysis(t *testing.T) {
	code, out, _ := runSG(t, nil, hoopJSON)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, want := range []string{
		"C(x)        = [0 2]",
		"x-relevant  = [0 1 2]",
		"1 process(es) outside C(x)",
		"[0 1 2]", // the hoop path
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSharegraphSingleVar(t *testing.T) {
	code, out, _ := runSG(t, []string{"-var", "y"}, hoopJSON)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if strings.Contains(out, "variable x:") {
		t.Errorf("x should be excluded:\n%s", out)
	}
	if !strings.Contains(out, "variable y:") {
		t.Errorf("y missing:\n%s", out)
	}
}

func TestSharegraphDOT(t *testing.T) {
	code, out, _ := runSG(t, []string{"-dot"}, hoopJSON)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "graph sharegraph {") || !strings.Contains(out, "p0 -- p1") {
		t.Errorf("DOT output wrong:\n%s", out)
	}
}

func TestSharegraphHoopLimit(t *testing.T) {
	code, out, _ := runSG(t, []string{"-hoops", "1", "-var", "x"}, hoopJSON)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if got := strings.Count(out, "\n    ["); got != 1 {
		t.Errorf("hoop limit ignored, got %d hoops:\n%s", got, out)
	}
}

func TestSharegraphBadInput(t *testing.T) {
	if code, _, _ := runSG(t, nil, `{oops`); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if code, _, _ := runSG(t, []string{"a", "b"}, ""); code != 2 {
		t.Fatal("two files must be rejected")
	}
	if code, _, _ := runSG(t, []string{"/no/such/file"}, ""); code != 2 {
		t.Fatal("missing file must be rejected")
	}
	if code, _, _ := runSG(t, []string{"-bogus"}, ""); code != 2 {
		t.Fatal("bad flag must be rejected")
	}
}
