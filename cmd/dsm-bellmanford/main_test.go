package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func runBF(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errB bytes.Buffer
	code := run(args, &out, &errB)
	return code, out.String(), errB.String()
}

func TestFigure8Run(t *testing.T) {
	code, out, errOut := runBF(t, "-figure8", "-v")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	for _, want := range []string{
		"RESULT: distributed distances match the sequential oracle",
		"consistency witness: ok",
		"efficiency (Theorem 2)",
		"graph: 5 vertices, 8 edges",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRandomGraphRun(t *testing.T) {
	code, out, errOut := runBF(t, "-n", "6", "-extra", "4", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit = %d\n%s\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "RESULT: distributed distances match") {
		t.Errorf("missing result line:\n%s", out)
	}
}

func TestStrongerConsistency(t *testing.T) {
	code, out, errOut := runBF(t, "-figure8", "-consistency", "sequential")
	if code != 0 {
		t.Fatalf("exit = %d\n%s\n%s", code, out, errOut)
	}
	if strings.Contains(out, "efficiency (Theorem 2)") {
		t.Error("efficiency line must be PRAM-only")
	}
}

// TestCoalescedModes runs the case study under each engine-driven
// flush mode: the distributed result must still match the oracle and
// pass witness + efficiency verification.
func TestCoalescedModes(t *testing.T) {
	for _, args := range [][]string{
		{"-coalesce", "16"},
		{"-coalesce", "16", "-flush-ticks", "8"},
		{"-coalesce", "16", "-adaptive"},
		{"-adaptive", "-transport", "sharded"},
	} {
		full := append([]string{"-n", "8", "-extra", "6", "-seed", "5", "-latency", "0"}, args...)
		code, out, errOut := runBF(t, full...)
		if code != 0 {
			t.Errorf("%v: exit = %d\n%s\n%s", args, code, out, errOut)
			continue
		}
		for _, want := range []string{
			"RESULT: distributed distances match the sequential oracle",
			"consistency witness: ok",
			"efficiency (Theorem 2)",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("%v: output missing %q:\n%s", args, want, out)
			}
		}
	}
}

// TestVirtualLatencyRun runs the case study with 5ms virtual latency:
// the oracle match and verifications must hold, the delay summary must
// be printed, and the run must not pay the latency in wall time.
func TestVirtualLatencyRun(t *testing.T) {
	start := time.Now()
	code, out, errOut := runBF(t, "-figure8", "-latency", "5ms", "-virtual-latency")
	elapsed := time.Since(start)
	if code != 0 {
		t.Fatalf("exit = %d\n%s\n%s", code, out, errOut)
	}
	for _, want := range []string{
		"RESULT: distributed distances match the sequential oracle",
		"consistency witness: ok",
		"virtual delivery delay: mean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The figure-8 run pays dozens of 5ms round trips when really
	// sleeping; a second of wall time means virtual mode regressed.
	if elapsed > time.Second {
		t.Errorf("virtual-latency run took %v wall time", elapsed)
	}
	for _, dist := range []string{"fixed", "heavytail"} {
		if code, out, errOut := runBF(t, "-figure8", "-virtual-latency", "-latency-dist", dist, "-transport", "sharded"); code != 0 {
			t.Errorf("dist %s: exit = %d\n%s\n%s", dist, code, out, errOut)
		}
	}
	if code, _, _ := runBF(t, "-figure8", "-virtual-latency", "-latency-dist", "zipf"); code != 2 {
		t.Error("unknown -latency-dist must exit 2")
	}
	if code, _, _ := runBF(t, "-figure8", "-latency-dist", "heavytail"); code != 2 {
		t.Error("-latency-dist without -virtual-latency must exit 2")
	}
	// The per-link matrix distribution cannot be supplied via flags;
	// the refusal must say why, not call the documented name unknown.
	if code, _, errOut := runBF(t, "-figure8", "-virtual-latency", "-latency-dist", "matrix"); code != 2 || !strings.Contains(errOut, "Config.LatencyMatrix") {
		t.Errorf("flag-unusable matrix dist must exit 2 with a clear message, got %d: %s", code, errOut)
	}
}

func TestBadArguments(t *testing.T) {
	if code, _, _ := runBF(t, "-consistency", "bogus"); code != 2 {
		t.Error("unknown consistency must exit 2")
	}
	if code, _, _ := runBF(t, "-n", "1"); code != 2 {
		t.Error("tiny graph must exit 2")
	}
	if code, _, _ := runBF(t, "-nope"); code != 2 {
		t.Error("bad flag must exit 2")
	}
}

func TestShardedTransport(t *testing.T) {
	code, out, errOut := runBF(t, "-figure8", "-transport", "sharded")
	if code != 0 {
		t.Fatalf("exit = %d\n%s\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "RESULT: distributed distances match the sequential oracle") {
		t.Errorf("sharded run missed the oracle match:\n%s", out)
	}
	if !strings.Contains(out, "efficiency (Theorem 2)") {
		t.Errorf("sharded run must preserve the efficiency property:\n%s", out)
	}
}

func TestUnknownTransport(t *testing.T) {
	if code, _, _ := runBF(t, "-figure8", "-transport", "bogus"); code != 2 {
		t.Error("unknown transport must exit 2")
	}
}
