// Command dsm-bellmanford runs the paper's §6 case study: distributed
// Bellman-Ford over a DSM cluster with the paper's partial replication,
// and compares the result against the sequential oracle.
//
// Usage:
//
//	dsm-bellmanford [-figure8] [-n 12] [-extra 10] [-maxw 9] [-seed 1]
//	                [-consistency pram] [-transport classic|sharded]
//	                [-coalesce 1] [-flush-ticks 0] [-adaptive]
//	                [-latency 100us] [-virtual-latency] [-latency-dist uniform] [-v]
//
// By default a random graph is used; -figure8 runs the paper's example
// network. -virtual-latency simulates -latency as deterministic
// virtual-time delivery deadlines (distribution per -latency-dist)
// instead of real sleeps: every message's delay is derived from the
// seed alone, a per-message delivery-delay summary is reported, and
// the latency costs no wall time. Exits 1 if the distributed result
// disagrees with the oracle or the execution fails verification.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"partialdsm"
	"partialdsm/internal/bellmanford"
	"partialdsm/internal/cmdutil"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsm-bellmanford", flag.ContinueOnError)
	fs.SetOutput(stderr)
	figure8 := fs.Bool("figure8", false, "use the paper's Figure 8 network")
	n := fs.Int("n", 12, "random graph: number of vertices")
	extra := fs.Int("extra", 10, "random graph: extra edges beyond the spanning arborescence")
	maxw := fs.Int64("maxw", 9, "random graph: maximum edge weight")
	seed := fs.Int64("seed", 1, "random seed (graph and network latency)")
	consistency := fs.String("consistency", "pram", "memory consistency (pram, causal-partial, causal-hoop-aware, sequential, atomic)")
	transport := fs.String("transport", "classic", "message transport (classic, sharded)")
	coalesce := fs.Int("coalesce", 1, "updates coalesced per destination before a flush (1 = off)")
	flushTicks := fs.Int("flush-ticks", 0, "virtual-time flush deadline for coalesced updates (0 = off; implies coalescing)")
	adaptive := fs.Bool("adaptive", false, "flush a destination's coalesced frame as soon as it has no inbound traffic (implies coalescing)")
	latency := fs.Duration("latency", 100*time.Microsecond, "maximum simulated message latency")
	virtualLat := fs.Bool("virtual-latency", false, "simulate -latency in deterministic virtual time instead of real sleeps")
	latencyDist := fs.String("latency-dist", "uniform", "virtual-latency delay distribution (uniform, fixed, heavytail)")
	verbose := fs.Bool("v", false, "print the placement and per-vertex distances")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var g *bellmanford.Graph
	if *figure8 {
		g = bellmanford.Figure8Graph()
	} else {
		if *n < 2 {
			fmt.Fprintln(stderr, "dsm-bellmanford: need at least 2 vertices")
			return 2
		}
		g = bellmanford.RandomGraph(rand.New(rand.NewSource(*seed)), *n, *extra, *maxw)
	}
	placement := bellmanford.Placement(g)
	// Resolve the latency-dist/virtual-latency flag pair up front: a
	// typo, the flag-unusable per-link "matrix" distribution, or an
	// explicit distribution without -virtual-latency (which would
	// silently run the real-sleep uniform mode) must not surface as a
	// confusing cluster-construction error — or worse, not at all.
	dist, err := cmdutil.ResolveLatencyDist(fs, "latency-dist", *virtualLat, *latencyDist)
	if err != nil {
		fmt.Fprintf(stderr, "dsm-bellmanford: %v\n", err)
		return 2
	}
	if *verbose {
		fmt.Fprintln(stdout, "variable distribution (X_i = own vars + predecessors'):")
		for i, vars := range placement {
			fmt.Fprintf(stdout, "  X_%d = %v\n", i, vars)
		}
	}

	cluster, err := partialdsm.New(partialdsm.Config{
		Consistency:        partialdsm.Consistency(*consistency),
		Placement:          partialdsm.PlacementFromLists(placement),
		Seed:               *seed,
		MaxLatency:         *latency,
		VirtualLatency:     *virtualLat,
		LatencyDist:        dist,
		Transport:          partialdsm.Transport(*transport),
		CoalesceBatch:      *coalesce,
		CoalesceFlushTicks: *flushTicks,
		CoalesceAdaptive:   *adaptive,
	})
	if err != nil {
		fmt.Fprintf(stderr, "dsm-bellmanford: %v\n", err)
		return 2
	}
	defer cluster.Close()

	nodes := make([]bellmanford.Node, cluster.NumNodes())
	for i := range nodes {
		nodes[i] = cluster.Node(i)
	}
	start := time.Now()
	res, err := bellmanford.Run(nodes, g, 0)
	if err != nil {
		fmt.Fprintf(stderr, "dsm-bellmanford: %v\n", err)
		return 2
	}
	elapsed := time.Since(start)
	oracle := bellmanford.Shortest(g, 0)

	ok := true
	for v := range oracle {
		if res.Dist[v] != oracle[v] {
			ok = false
		}
		if *verbose {
			fmt.Fprintf(stdout, "  vertex %2d: distributed %6d   oracle %6d\n", v, res.Dist[v], oracle[v])
		}
	}
	cluster.Quiesce()
	st := cluster.Stats()
	fmt.Fprintf(stdout, "graph: %d vertices, %d edges; consistency: %s\n", g.N(), g.NumEdges(), *consistency)
	fmt.Fprintf(stdout, "rounds: %d, wall time: %v\n", res.Rounds, elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "traffic: %d msgs, %d ctrl bytes, %d data bytes\n", st.Msgs, st.CtrlBytes, st.DataBytes)
	if st.DelaySamples > 0 {
		fmt.Fprintf(stdout, "virtual delivery delay: mean %v, p99 %v, max %v over %d msgs\n",
			st.DelayMean.Round(time.Microsecond), st.DelayP99.Round(time.Microsecond),
			st.DelayMax.Round(time.Microsecond), st.DelaySamples)
	}
	if !ok {
		fmt.Fprintln(stdout, "RESULT: MISMATCH with sequential oracle")
		return 1
	}
	fmt.Fprintln(stdout, "RESULT: distributed distances match the sequential oracle")

	if err := cluster.VerifyWitness(); err != nil {
		fmt.Fprintf(stderr, "dsm-bellmanford: consistency witness violated: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "consistency witness: ok")
	if partialdsm.Consistency(*consistency) == partialdsm.PRAM {
		if err := cluster.VerifyEfficiency(); err != nil {
			fmt.Fprintf(stderr, "dsm-bellmanford: efficiency violated: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, "efficiency (Theorem 2): no variable information left its replica clique")
	}
	return 0
}
