// Command dsm-lint runs the four determinism/ownership analyzers
// (virtualtime, seededrand, maporder, poolown — see internal/lint) over
// Go packages. It works in two modes:
//
// Standalone, on package patterns:
//
//	dsm-lint ./...
//
// and as a `go vet` tool, speaking vet's unitchecker protocol
// (-V=full / -flags / per-package config file):
//
//	go vet -vettool=$(pwd)/bin/dsm-lint ./...
//
// Both modes see identical type information: standalone loads export
// data through `go list -export`, the vet mode reads the export-data
// map vet hands it. Exit status: 0 clean, 1 operational error, 2 (vet
// mode) or 1 (standalone) findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"partialdsm/internal/lint"
	"partialdsm/internal/lint/analysis"
	"partialdsm/internal/lint/loader"
)

func main() {
	args := os.Args[1:]

	// The go vet driver probes the tool before use: -V=full must print
	// a version line keyed to the binary's content (it becomes part of
	// vet's cache key), -flags must describe the tool's flags.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		fmt.Printf("dsm-lint version devel buildID=%s\n", buildID())
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetMode(args[0]))
	}

	os.Exit(standalone(args))
}

// buildID hashes the executable so vet's result cache invalidates when
// the tool changes.
func buildID() string {
	exe, err := os.Executable()
	if err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			return fmt.Sprintf("%x", sum[:12])
		}
	}
	return "unknown"
}

func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsm-lint:", err)
		return 1
	}
	findings, err := analysis.Run(pkgs, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsm-lint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the per-package configuration `go vet` writes for its
// tool (cmd/go/internal/vet's Config struct; unknown fields ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vetMode(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsm-lint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dsm-lint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// Vet runs the tool over dependencies first purely to build up
	// per-package facts; this suite keeps no cross-package facts, so a
	// facts-only run has nothing to do.
	if !cfg.VetxOnly {
		if code := vetCheck(&cfg); code != 0 {
			return code
		}
	}
	if cfg.VetxOutput != "" {
		// Facts file: empty, but its presence completes the protocol.
		if err := os.WriteFile(cfg.VetxOutput, []byte("dsm-lint\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "dsm-lint:", err)
			return 1
		}
	}
	return 0
}

func vetCheck(cfg *vetConfig) int {
	fset := token.NewFileSet()
	imp := loader.NewExportImporter(fset, func(path string) (string, bool) {
		f, ok := cfg.PackageFile[path]
		return f, ok
	}, cfg.ImportMap)

	files := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	goVersion := cfg.GoVersion
	if goVersion != "" && !strings.HasPrefix(goVersion, "go") {
		goVersion = "go" + goVersion
	}
	pkg, err := loader.Check(cfg.ImportPath, fset, files, imp, goVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "dsm-lint:", err)
		return 1
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsm-lint:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
