// Command dsm-experiments regenerates the paper's evaluation artifacts
// (Figures 1–9, Theorems 1–2, and the quantitative §3.3 experiments)
// and prints one self-checking report per experiment.
//
// Usage:
//
//	dsm-experiments [-exp all|fig1…fig6|thm1|thm2|scaling|degree|bellmanford|hierarchy|ablation|openquestion|separation|latency|faults|chaos|migrate|policy] [-seed N]
//	                [-transport classic|sharded]
//	                [-coalesce 1] [-flush-ticks 4] [-adaptive]
//	                [-virtual-latency] [-latency-dist uniform|fixed|heavytail]
//
// Coalescing is safe here even for the poll-style experiment schedules
// because buffered updates flush on an engine-driven trigger: a
// virtual-time deadline (-flush-ticks, on by default whenever
// -coalesce enables batching) or destination-idle detection
// (-adaptive). Every report must produce the same verdicts coalesced
// or uncoalesced.
//
// -virtual-latency switches the experiments that simulate link latency
// (E10–E12, E18, the hierarchy run) to deterministic virtual-time
// delivery deadlines drawn from -latency-dist: the same verdicts, an
// order of magnitude less wall time, and a seed-reproducible schedule.
//
// The process exits non-zero if any selected experiment fails its
// checks.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"partialdsm/internal/cmdutil"
	"partialdsm/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsm-experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment to run (all, fig1…fig6, thm1, thm2, scaling, degree, bellmanford, hierarchy, ablation, openquestion, separation, latency, faults, chaos, migrate, policy)")
	seed := fs.Int64("seed", 1, "seed for randomized experiments")
	sizes := fs.String("sizes", "4,8,16,24", "comma-separated ring sizes for the scaling sweep")
	ops := fs.Int("ops", 30, "operations per node for workload-driven experiments")
	transport := fs.String("transport", "classic", "message transport (classic, sharded)")
	coalesce := fs.Int("coalesce", 1, "updates coalesced per destination before a flush (1 = off)")
	flushTicks := fs.Int("flush-ticks", 4, "virtual-time flush deadline for coalesced updates (0 = operation-driven flushing only)")
	adaptive := fs.Bool("adaptive", false, "flush a destination's coalesced frame as soon as it has no inbound traffic")
	virtualLat := fs.Bool("virtual-latency", false, "simulate link latency in deterministic virtual time instead of real sleeps")
	latencyDist := fs.String("latency-dist", "uniform", "virtual-latency delay distribution (uniform, fixed, heavytail)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	experiments.SetTransport(*transport)
	// Resolve the latency-dist/virtual-latency flag pair up front:
	// cluster construction only checks the distribution for experiments
	// that actually simulate latency, and a typo — or an explicit
	// distribution without -virtual-latency, which would silently run
	// the real-sleep uniform mode — must not slip through an all-PASS
	// run of the others.
	dist, err := cmdutil.ResolveLatencyDist(fs, "latency-dist", *virtualLat, *latencyDist)
	if err != nil {
		fmt.Fprintf(stderr, "dsm-experiments: %v\n", err)
		return 2
	}
	experiments.SetVirtualLatency(*virtualLat, string(dist))
	// An explicit -flush-ticks implies coalescing, matching the
	// partialdsm.Config contract and dsm-bellmanford's flag; the flag's
	// *default* only applies once batching or adaptive mode enables
	// coalescing.
	ticksSet := false
	fs.Visit(func(f *flag.Flag) { ticksSet = ticksSet || f.Name == "flush-ticks" })
	if *coalesce > 1 || *adaptive || (ticksSet && *flushTicks > 0) {
		experiments.SetCoalescing(*coalesce, *flushTicks, *adaptive)
	} else {
		experiments.SetCoalescing(0, 0, false) // reset: package state persists across runs
	}

	var reports []experiments.Report
	switch strings.ToLower(*exp) {
	case "all":
		reports = experiments.All(*seed)
	case "fig1":
		reports = []experiments.Report{experiments.Fig1()}
	case "fig2":
		reports = []experiments.Report{experiments.Fig2()}
	case "fig3":
		reports = []experiments.Report{experiments.Fig3()}
	case "fig4":
		reports = []experiments.Report{experiments.Fig4()}
	case "fig5":
		reports = []experiments.Report{experiments.Fig5()}
	case "fig6":
		reports = []experiments.Report{experiments.Fig6()}
	case "thm1":
		reports = []experiments.Report{experiments.Thm1(*seed)}
	case "thm2":
		reports = []experiments.Report{experiments.Thm2(*seed)}
	case "scaling":
		parsed, err := parseSizes(*sizes)
		if err != nil {
			fmt.Fprintf(stderr, "dsm-experiments: %v\n", err)
			return 2
		}
		rep, _ := experiments.Scaling(parsed, *ops, *seed)
		reports = []experiments.Report{rep}
	case "degree":
		reports = []experiments.Report{experiments.DegreeSweep(12, []int{2, 4, 8, 12}, *ops, *seed)}
	case "bellmanford", "fig8":
		reports = []experiments.Report{experiments.BellmanFordFig8(*seed)}
	case "hierarchy":
		reports = []experiments.Report{experiments.Hierarchy(*seed, 150)}
	case "ablation":
		reports = []experiments.Report{experiments.Ablation(*ops, *seed)}
	case "openquestion", "cache":
		reports = []experiments.Report{experiments.OpenQuestion(*seed)}
	case "separation":
		reports = []experiments.Report{experiments.Separation(*seed)}
	case "latency":
		reports = []experiments.Report{experiments.Latency(*seed)}
	case "faults":
		reports = []experiments.Report{experiments.Faults(*seed)}
	case "chaos":
		reports = []experiments.Report{experiments.Chaos(*seed)}
	case "migrate":
		reports = []experiments.Report{experiments.Migrate(*seed)}
	case "policy":
		reports = []experiments.Report{experiments.Policy(*seed)}
	default:
		fmt.Fprintf(stderr, "dsm-experiments: unknown experiment %q\n", *exp)
		return 2
	}

	failed := false
	for _, r := range reports {
		fmt.Fprint(stdout, r)
		fmt.Fprintln(stdout)
		if !r.Pass {
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

// parseSizes parses the -sizes flag.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n < 2 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
