package main

import (
	"bytes"
	"strings"
	"testing"
)

func runExp(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errB bytes.Buffer
	code := run(args, &out, &errB)
	return code, out.String(), errB.String()
}

func TestFigureExperiments(t *testing.T) {
	for _, exp := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6"} {
		code, out, errOut := runExp(t, "-exp", exp)
		if code != 0 {
			t.Errorf("%s: exit = %d\n%s\n%s", exp, code, out, errOut)
		}
		if !strings.Contains(out, "[PASS]") {
			t.Errorf("%s: no PASS marker:\n%s", exp, out)
		}
	}
}

func TestTheoremExperiments(t *testing.T) {
	for _, exp := range []string{"thm1", "thm2"} {
		code, out, _ := runExp(t, "-exp", exp, "-seed", "4")
		if code != 0 {
			t.Errorf("%s: exit = %d\n%s", exp, code, out)
		}
	}
}

func TestScalingWithCustomSizes(t *testing.T) {
	code, out, _ := runExp(t, "-exp", "scaling", "-sizes", "4,8", "-ops", "15")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "E9") {
		t.Errorf("missing E9 header:\n%s", out)
	}
}

// TestCoalescedExperiments re-runs the workload-driven experiments
// with coalescing on, in timer and adaptive mode: every report must
// reach the same verdicts as the uncoalesced run — coalescing changes
// the message-per-write constant, never what any node learns or in
// what order. Separation (E17) is the hard case: its poll-style
// adversarial schedule would deadlock under PR-2-style plain batching.
func TestCoalescedExperiments(t *testing.T) {
	for _, modeArgs := range [][]string{
		{"-coalesce", "16", "-flush-ticks", "4"},
		{"-coalesce", "16", "-adaptive", "-flush-ticks", "0"},
	} {
		for _, exp := range []string{"thm2", "separation", "bellmanford"} {
			args := append([]string{"-exp", exp}, modeArgs...)
			code, out, errOut := runExp(t, args...)
			if code != 0 {
				t.Errorf("%v: exit = %d\n%s\n%s", args, code, out, errOut)
			}
			if !strings.Contains(out, "[PASS]") {
				t.Errorf("%v: no PASS marker:\n%s", args, out)
			}
		}
	}
}

// TestVirtualLatencyExperiments runs the latency-simulating
// experiments under -virtual-latency (every distribution, both
// transports): same verdicts, no real sleeps. E18 prints the virtual
// delivery-delay histogram in this mode.
func TestVirtualLatencyExperiments(t *testing.T) {
	for _, dist := range []string{"uniform", "fixed", "heavytail"} {
		for _, exp := range []string{"latency", "thm2", "bellmanford"} {
			code, out, errOut := runExp(t, "-exp", exp, "-virtual-latency", "-latency-dist", dist)
			if code != 0 {
				t.Errorf("%s/%s: exit = %d\n%s\n%s", exp, dist, code, out, errOut)
			}
			if !strings.Contains(out, "[PASS]") {
				t.Errorf("%s/%s: no PASS marker:\n%s", exp, dist, out)
			}
		}
	}
	code, out, _ := runExp(t, "-exp", "latency", "-virtual-latency", "-transport", "sharded")
	if code != 0 {
		t.Fatalf("latency on sharded virtual: exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "virtual delay over") {
		t.Errorf("E18 under -virtual-latency must report the delay histogram:\n%s", out)
	}
	// A typoed distribution must be rejected up front — even for
	// experiments that simulate no latency and would otherwise PASS.
	for _, exp := range []string{"latency", "fig1"} {
		if code, _, _ := runExp(t, "-exp", exp, "-virtual-latency", "-latency-dist", "zipf"); code != 2 {
			t.Errorf("%s: unknown -latency-dist must exit 2, got %d", exp, code)
		}
	}
	// ...and an explicit distribution without -virtual-latency would
	// silently run real-sleep uniform, so it must be refused too.
	if code, _, errOut := runExp(t, "-exp", "fig1", "-latency-dist", "heavytail"); code != 2 {
		t.Errorf("-latency-dist without -virtual-latency must exit 2, got %d (%s)", code, errOut)
	}
}

// TestFaultsExperiment runs the fault-injection suite through the CLI:
// the verdict table must be engine-identical (checked inside E19) and
// every acceptance mark must hold.
func TestFaultsExperiment(t *testing.T) {
	code, out, errOut := runExp(t, "-exp", "faults", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit = %d\n%s\n%s", code, out, errOut)
	}
	for _, want := range []string{"[PASS]", "BROKEN", "retransmit", "byte-identical"} {
		if !strings.Contains(out, want) {
			t.Errorf("faults report missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if code, _, _ := runExp(t, "-exp", "nope"); code != 2 {
		t.Error("unknown experiment must exit 2")
	}
}

func TestBadSizes(t *testing.T) {
	if code, _, _ := runExp(t, "-exp", "scaling", "-sizes", "1,x"); code != 2 {
		t.Error("bad sizes must exit 2")
	}
	if code, _, _ := runExp(t, "-exp", "scaling", "-sizes", ""); code != 2 {
		t.Error("empty sizes must exit 2")
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runExp(t, "-bogus"); code != 2 {
		t.Error("bad flag must exit 2")
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes(" 4, 8 ,16")
	if err != nil || len(got) != 3 || got[0] != 4 || got[2] != 16 {
		t.Fatalf("parseSizes = %v, %v", got, err)
	}
}

func TestTheoremsOnShardedTransport(t *testing.T) {
	// No restore needed: every runExp parses -transport (default
	// "classic") and sets the experiments transport before running.
	for _, exp := range []string{"thm1", "thm2"} {
		code, out, errOut := runExp(t, "-exp", exp, "-transport", "sharded")
		if code != 0 {
			t.Errorf("%s on sharded transport: exit = %d\n%s\n%s", exp, code, out, errOut)
		}
		if !strings.Contains(out, "[PASS]") {
			t.Errorf("%s on sharded transport: no PASS marker:\n%s", exp, out)
		}
	}
}
