package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCheck(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var out, errB bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errB)
	return code, out.String(), errB.String()
}

const figure4JSON = `{"processes": [
  [{"op":"w","var":"x","val":1},{"op":"r","var":"x","val":1},{"op":"w","var":"y","val":2}],
  [{"op":"r","var":"y","val":2},{"op":"w","var":"y","val":3}],
  [{"op":"r","var":"y","val":3},{"op":"r","var":"x","init":true}]
]}`

func TestCheckFigure4AllCriteria(t *testing.T) {
	code, out, _ := runCheck(t, nil, figure4JSON)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (some criteria violated)\n%s", code, out)
	}
	for _, want := range []string{
		"causal             VIOLATED",
		"lazy-causal        consistent",
		"pram               consistent",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCheckSingleCriterionWithWitness(t *testing.T) {
	code, out, _ := runCheck(t, []string{"-criterion", "pram", "-witness"}, figure4JSON)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "S0:") || !strings.Contains(out, "w0(x)1") {
		t.Errorf("witness serializations missing:\n%s", out)
	}
}

func TestCheckFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.json")
	if err := os.WriteFile(path, []byte(figure4JSON), 0o600); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCheck(t, []string{"-criterion", "slow", path}, "")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
}

func TestCheckBadInput(t *testing.T) {
	code, _, errOut := runCheck(t, nil, `{bogus`)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "dsm-check:") {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestCheckUnknownCriterion(t *testing.T) {
	code, _, _ := runCheck(t, []string{"-criterion", "bogus"}, figure4JSON)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestCheckTooManyFiles(t *testing.T) {
	code, _, _ := runCheck(t, []string{"a", "b"}, "")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestCheckMissingFile(t *testing.T) {
	code, _, _ := runCheck(t, []string{"/nonexistent/x.json"}, "")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestCheckBadFlag(t *testing.T) {
	code, _, _ := runCheck(t, []string{"-nope"}, "")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
