// Command dsm-check decides which consistency criteria a shared-memory
// history satisfies.
//
// The history is read as JSON from a file or stdin:
//
//	{"processes": [
//	  [{"op":"w","var":"x","val":1}, {"op":"r","var":"y","init":true}],
//	  [{"op":"r","var":"x","val":1}]
//	]}
//
// Usage:
//
//	dsm-check [-criterion all|sequential|causal|lazy-causal|lazy-semi-causal|pram|slow|cache] [-witness] [file]
//	dsm-check -trace [file]
//
// With -witness the chosen criterion's serializations are printed when
// the history is consistent. With -trace the input is an execution
// snapshot produced by Cluster.ExportTrace: its protocol witness is
// validated and the embedded history is checked. Exits 1 when the
// history violates a requested criterion (or the trace its witness),
// 2 on input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"partialdsm/internal/check"
	"partialdsm/internal/model"
	"partialdsm/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsm-check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	criterion := fs.String("criterion", "all", "criterion to check, or all")
	witness := fs.Bool("witness", false, "print serializations when consistent")
	traceMode := fs.Bool("trace", false, "input is an execution snapshot (Cluster.ExportTrace)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := stdin
	if fs.NArg() > 1 {
		fmt.Fprintln(stderr, "dsm-check: at most one input file")
		return 2
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "dsm-check: %v\n", err)
			return 2
		}
		defer f.Close()
		in = f
	}
	if *traceMode {
		return runTrace(in, stdout, stderr)
	}
	h, err := model.ParseHistory(in)
	if err != nil {
		fmt.Fprintf(stderr, "dsm-check: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "history: %d processes, %d operations\n%s", h.NumProcs(), h.Len(), h)

	var criteria []check.Criterion
	if *criterion == "all" {
		criteria = check.Criteria
	} else {
		criteria = []check.Criterion{check.Criterion(*criterion)}
	}

	anyViolated := false
	for _, c := range criteria {
		res, err := check.Check(h, c)
		if err != nil {
			fmt.Fprintf(stderr, "dsm-check: %v\n", err)
			return 2
		}
		verdict := "consistent"
		if !res.Consistent {
			verdict = "VIOLATED"
			anyViolated = true
		}
		fmt.Fprintf(stdout, "%-18s %s\n", c, verdict)
		if *witness && res.Consistent {
			keys := make([]int, 0, len(res.Serializations))
			for p := range res.Serializations {
				keys = append(keys, p)
			}
			sort.Ints(keys)
			for _, p := range keys {
				fmt.Fprintf(stdout, "  S%d:", p)
				for _, id := range res.Serializations[p] {
					fmt.Fprintf(stdout, " %v", h.Op(id))
				}
				fmt.Fprintln(stdout)
			}
		}
	}
	if anyViolated {
		return 1
	}
	return 0
}

// runTrace verifies an execution snapshot: protocol witness first, then
// the exact checker for the criterion the protocol promises.
func runTrace(in io.Reader, stdout, stderr io.Writer) int {
	tr, err := trace.Decode(in)
	if err != nil {
		fmt.Fprintf(stderr, "dsm-check: %v\n", err)
		return 2
	}
	h, err := tr.HistoryModel()
	if err != nil {
		fmt.Fprintf(stderr, "dsm-check: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "trace: consistency=%s, %d nodes, %d operations\n",
		tr.Consistency, len(tr.Placement), h.Len())
	if err := tr.Verify(); err != nil {
		fmt.Fprintf(stdout, "witness: VIOLATED: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "witness: ok")
	return 0
}
