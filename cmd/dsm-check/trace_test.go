package main

import (
	"strings"
	"testing"
)

const pramTraceJSON = `{
 "consistency": "pram",
 "placement": [["x"], ["x"]],
 "history": {"processes": [
   [{"op":"w","var":"x","val":1}],
   [{"op":"r","var":"x","val":1}]
 ]},
 "logs": [
  [{"writer":0,"wseq":0,"var":"x","val":1}],
  [{"writer":0,"wseq":0,"var":"x","val":1},{"read":true,"var":"x","val":1}]
 ]
}`

func TestTraceModeAccepts(t *testing.T) {
	code, out, errOut := runCheck(t, []string{"-trace"}, pramTraceJSON)
	if code != 0 {
		t.Fatalf("exit = %d\n%s\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "witness: ok") {
		t.Errorf("output missing witness ok:\n%s", out)
	}
	if !strings.Contains(out, "consistency=pram") {
		t.Errorf("output missing trace metadata:\n%s", out)
	}
}

func TestTraceModeDetectsViolation(t *testing.T) {
	bad := strings.Replace(pramTraceJSON, `{"read":true,"var":"x","val":1}`, `{"read":true,"var":"x","val":9}`, 1)
	code, out, _ := runCheck(t, []string{"-trace"}, bad)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "witness: VIOLATED") {
		t.Errorf("violation not reported:\n%s", out)
	}
}

func TestTraceModeBadInput(t *testing.T) {
	if code, _, _ := runCheck(t, []string{"-trace"}, `{nope`); code != 2 {
		t.Fatal("bad trace input must exit 2")
	}
	if code, _, _ := runCheck(t, []string{"-trace"},
		`{"consistency":"pram","placement":[["x"]],"history":{"bad":1},"logs":[[]]}`); code != 2 {
		t.Fatal("bad embedded history must exit 2")
	}
}
