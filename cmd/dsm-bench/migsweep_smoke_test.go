package main

import (
	"testing"

	"partialdsm"
)

// TestMigrationSweepSmoke runs the migration benchmark body once per
// engine and pins the property the trajectory relies on: the epoch
// wire traffic per migration is positive and seed-identical across
// transports (the handshake is deterministic; only wall time varies).
func TestMigrationSweepSmoke(t *testing.T) {
	perEngine := make(map[partialdsm.Transport]float64)
	for _, tr := range partialdsm.Transports {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			var msgs float64
			r := testing.Benchmark(func(b *testing.B) {
				migrationSweep(b, tr, &msgs)
			})
			t.Logf("N=%d msgs/op=%.1f", r.N, msgs)
			if msgs <= 0 {
				t.Fatalf("msgs/op = %v, want > 0", msgs)
			}
			perEngine[tr] = msgs
		})
	}
	if c, s := perEngine[partialdsm.TransportClassic], perEngine[partialdsm.TransportSharded]; c != s {
		t.Errorf("msgs/op differs across engines: classic=%v sharded=%v", c, s)
	}
}
