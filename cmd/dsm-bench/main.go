// Command dsm-bench runs the repo's cluster-level performance suite
// programmatically (via testing.Benchmark) and emits a trajectory file
// BENCH_<pr>.json mapping benchmark name → ns/op, allocs/op, bytes/op
// and msgs/op, so successive PRs can track performance without parsing
// `go test -bench` output. The suite mirrors the hot-path benchmarks
// in bench_test.go: the UpdateStorm multicast burst and the
// Bellman-Ford case study across transports and coalescing modes
// (plain batching, virtual-time flush deadlines, adaptive
// destination-idle flushing), plus the per-operation PRAM write/read
// costs.
//
// Usage:
//
//	dsm-bench [-out BENCH_3.json] [-pr 3] [-quick] [-repeat 1]
//	          [-baseline BENCH_2.json] [-compare BENCH_2.json] [-tolerance 10]
//
// The suite includes a virtual-latency sweep (LatencySweep/*): the
// UpdateStorm burst under 1ms simulated latency in virtual-time mode,
// across the uniform / fixed / heavy-tail distributions on both
// engines — the whole sweep costs no latency wall time and its msgs/op
// column is fully seed-deterministic.
//
// The fault sweep (FaultSweep/*) runs the same burst under seeded
// drop+dup injection, raw and behind the ack/retransmit layer, on both
// engines: the msgs/op column prices the faults (duplicates add sends)
// and the recovery (acks and retransmissions roughly double them).
//
// -quick runs a two-benchmark subset (for CI smoke and tests); without
// -out the JSON goes to stdout. -baseline embeds a previous
// trajectory's numbers so the file reads as a before/after table.
// -repeat N measures every benchmark N times and records the
// per-metric median, damping scheduler noise in the wall-time column
// of committed trajectories.
//
// -compare is the CI regression gate: after the run, the fresh numbers
// are diffed against the given trajectory on the deterministic metrics
// only — allocs/op, bytes/op, msgs/op; never wall time, which shared
// CI runners cannot measure reproducibly — and the process exits
// non-zero if any metric regressed more than -tolerance percent beyond
// a small absolute floor that absorbs pool jitter.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"partialdsm"
	"partialdsm/internal/bellmanford"
	"partialdsm/internal/workload"
)

// Result is one benchmark's measurement. MsgsPerOp counts network
// messages per operation — fully seed-deterministic, the metric the
// coalescing work optimizes.
type Result struct {
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	MsgsPerOp   float64 `json:"msgs_op,omitempty"`
	N           int     `json:"n"`
}

// Trajectory is the emitted file format. Baseline holds the previous
// PR's numbers for the benchmarks that existed then, so the file reads
// as a before/after table.
type Trajectory struct {
	PR         int               `json:"pr"`
	GoVersion  string            `json:"go"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks map[string]Result `json:"benchmarks"`
	Baseline   map[string]Result `json:"baseline,omitempty"`
	Notes      string            `json:"notes,omitempty"`
}

// bench is one named benchmark; fn reports the deterministic msgs/op
// through the out-parameter on every invocation.
type bench struct {
	name  string
	quick bool // include in the -quick subset
	fn    func(b *testing.B, msgs *float64)
}

// mode is one coalescing configuration of the cluster under test.
type mode struct {
	label    string
	batch    int
	ticks    int
	adaptive bool
}

// modes enumerates the coalescing axis: off, plain batching, batching
// with a virtual-time flush deadline, and adaptive destination-idle
// flushing.
var modes = []mode{
	{label: "coalesce=1", batch: 1},
	{label: "coalesce=16", batch: 16},
	{label: "coalesce=16+ticks=8", batch: 16, ticks: 8},
	{label: "coalesce=adaptive", batch: 16, adaptive: true},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsm-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "write the trajectory JSON to this file (default stdout)")
	pr := fs.Int("pr", 6, "PR number recorded in the trajectory")
	quick := fs.Bool("quick", false, "run the two-benchmark smoke subset")
	repeat := fs.Int("repeat", 1, "measure each benchmark this many times and record per-metric medians")
	baseline := fs.String("baseline", "", "embed this previous trajectory's numbers as the baseline table")
	compare := fs.String("compare", "", "diff the fresh run against this trajectory and exit non-zero on regression")
	tolerance := fs.Float64("tolerance", 10, "percent regression allowed per deterministic metric (-compare)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	traj := Trajectory{
		PR:         *pr,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]Result),
	}
	if *baseline != "" {
		prev, err := readTrajectory(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "dsm-bench: -baseline: %v\n", err)
			return 2
		}
		traj.Baseline = prev.Benchmarks
	}
	suite := benches()
	names := make([]string, 0, len(suite))
	byName := make(map[string]bench, len(suite))
	for _, b := range suite {
		byName[b.name] = b
		if *quick && !b.quick {
			continue
		}
		names = append(names, b.name)
	}
	sort.Strings(names)
	if *repeat < 1 {
		*repeat = 1
	}
	for _, name := range names {
		fmt.Fprintf(stderr, "running %s …\n", name)
		fn := byName[name].fn
		reps := make([]Result, 0, *repeat)
		for i := 0; i < *repeat; i++ {
			var msgs float64
			r := testing.Benchmark(func(b *testing.B) { fn(b, &msgs) })
			reps = append(reps, Result{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				MsgsPerOp:   msgs,
				N:           r.N,
			})
		}
		traj.Benchmarks[name] = medianResult(reps)
	}

	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "dsm-bench: %v\n", err)
		return 2
	}
	data = append(data, '\n')
	if *out == "" {
		stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintf(stderr, "dsm-bench: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "wrote %s (%d benchmarks)\n", *out, len(traj.Benchmarks))
	}

	if *compare != "" {
		base, err := readTrajectory(*compare)
		if err != nil {
			fmt.Fprintf(stderr, "dsm-bench: -compare: %v\n", err)
			return 2
		}
		if !compareTrajectories(base, traj, *tolerance, stdout) {
			fmt.Fprintf(stderr, "dsm-bench: regression gate FAILED against %s (tolerance %.0f%%)\n", *compare, *tolerance)
			return 1
		}
		fmt.Fprintf(stdout, "regression gate passed against %s (tolerance %.0f%%)\n", *compare, *tolerance)
	}
	return 0
}

// medianResult combines repeated measurements into one Result. Wall
// time, msgs/op and N take the per-metric median (msgs agree across
// reps anyway; the median tames wall-time outliers). The allocation
// metrics take the per-metric minimum: buffer-pool misses are driven
// by GC timing and only ever add allocations and bytes on top of the
// workload's true cost, so the minimum across reps is the
// reproducible floor, where a median still carries whatever noise the
// majority of reps happened to see.
func medianResult(reps []Result) Result {
	if len(reps) == 1 {
		return reps[0]
	}
	med := func(get func(Result) float64) float64 {
		vals := make([]float64, len(reps))
		for i, r := range reps {
			vals[i] = get(r)
		}
		sort.Float64s(vals)
		if n := len(vals); n%2 == 1 {
			return vals[n/2]
		} else {
			return (vals[n/2-1] + vals[n/2]) / 2
		}
	}
	min := func(get func(Result) float64) float64 {
		best := get(reps[0])
		for _, r := range reps[1:] {
			if v := get(r); v < best {
				best = v
			}
		}
		return best
	}
	return Result{
		NsPerOp:     med(func(r Result) float64 { return r.NsPerOp }),
		AllocsPerOp: int64(min(func(r Result) float64 { return float64(r.AllocsPerOp) })),
		BytesPerOp:  int64(min(func(r Result) float64 { return float64(r.BytesPerOp) })),
		MsgsPerOp:   med(func(r Result) float64 { return r.MsgsPerOp }),
		N:           int(med(func(r Result) float64 { return float64(r.N) })),
	}
}

// readTrajectory loads a committed trajectory file.
func readTrajectory(path string) (Trajectory, error) {
	var t Trajectory
	data, err := os.ReadFile(path)
	if err != nil {
		return t, err
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return t, fmt.Errorf("%s: %w", path, err)
	}
	if len(t.Benchmarks) == 0 {
		return t, fmt.Errorf("%s: no benchmarks", path)
	}
	return t, nil
}

// metricFloor is the absolute slack per metric that absorbs pool and
// scheduler jitter on small counts; a regression must exceed both the
// percentage tolerance and the floor to fail the gate. The bytes/op
// floor is one 4 KiB pool grow plus header: on the value-size sweeps a
// single GC-timed pool miss per op swings bytes/op by the payload
// size, and those benchmarks' real allocation cost is gated precisely
// by allocs/op anyway.
var metricFloors = map[string]float64{
	"allocs/op": 4,
	"bytes/op":  8192,
	"msgs/op":   0.5,
}

// compareTrajectories diffs every benchmark present in both runs on
// the deterministic metrics and reports regressions; it returns true
// when the gate passes. Wall time is printed for context but never
// gated.
func compareTrajectories(base, cand Trajectory, tolPct float64, w io.Writer) bool {
	names := make([]string, 0, len(cand.Benchmarks))
	for name := range cand.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	// Baseline rows the fresh run no longer produces are not gated —
	// say so loudly, or a regression could hide behind a rename.
	var missing []string
	for name := range base.Benchmarks {
		if _, ok := cand.Benchmarks[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "WARNING: baseline benchmark %q is not in the candidate run and was not gated\n", name)
	}
	if len(names) == 0 {
		fmt.Fprintln(w, "compare: no overlapping benchmarks")
		return false
	}
	ok := true
	fmt.Fprintf(w, "%-44s %-10s %14s %14s %8s\n", "benchmark", "metric", "baseline", "candidate", "delta")
	for _, name := range names {
		b, c := base.Benchmarks[name], cand.Benchmarks[name]
		metrics := []struct {
			metric     string
			base, cand float64
		}{
			{"allocs/op", float64(b.AllocsPerOp), float64(c.AllocsPerOp)},
			{"bytes/op", float64(b.BytesPerOp), float64(c.BytesPerOp)},
			{"msgs/op", b.MsgsPerOp, c.MsgsPerOp},
		}
		for _, m := range metrics {
			if m.metric == "msgs/op" && m.base == 0 {
				continue // older trajectories did not record message counts
			}
			deltaPct := 0.0
			if m.base != 0 {
				deltaPct = (m.cand - m.base) / m.base * 100
			} else if m.cand != 0 {
				deltaPct = 100
			}
			mark := ""
			if m.cand > m.base*(1+tolPct/100) && m.cand-m.base > metricFloors[m.metric] {
				mark = "  << REGRESSION"
				ok = false
			}
			fmt.Fprintf(w, "%-44s %-10s %14.1f %14.1f %+7.1f%%%s\n", name, m.metric, m.base, m.cand, deltaPct, mark)
		}
	}
	return ok
}

// benches enumerates the suite.
func benches() []bench {
	var out []bench
	// UpdateStorm: the message-heaviest cluster shape — PRAM over full
	// replication on 16 nodes, 64-write bursts, quiesce per burst. The
	// classic engine runs the legacy modes; the sharded engine runs the
	// full coalescing axis.
	for _, tr := range partialdsm.Transports {
		for _, m := range modes {
			if tr == partialdsm.TransportClassic && (m.ticks > 0 || m.adaptive) {
				continue
			}
			tr, m := tr, m
			out = append(out, bench{
				name:  fmt.Sprintf("UpdateStorm/%s/%s", tr, m.label),
				quick: tr == partialdsm.TransportSharded && m.ticks == 0 && !m.adaptive,
				fn:    func(b *testing.B, msgs *float64) { updateStorm(b, tr, m, msgs) },
			})
		}
	}
	// Bellman-Ford at the largest benchmarked size, across the full
	// coalescing axis on both engines — the workload the adaptive mode
	// exists for.
	for _, tr := range partialdsm.Transports {
		for _, m := range modes {
			tr, m := tr, m
			out = append(out, bench{
				name: fmt.Sprintf("BellmanFord/n=20/%s/%s", tr, m.label),
				fn:   func(b *testing.B, msgs *float64) { bellmanFord(b, 20, tr, m, msgs) },
			})
		}
	}
	// Virtual-latency sweep: the UpdateStorm burst under 1ms simulated
	// latency across distributions and engines. Real-sleep latency
	// cannot be benchmarked (each iteration would sleep for real); the
	// virtual mode makes the latency axis measurable at full speed.
	for _, tr := range partialdsm.Transports {
		for _, dist := range []partialdsm.LatencyDist{
			partialdsm.LatencyUniform, partialdsm.LatencyFixed, partialdsm.LatencyHeavyTail,
		} {
			tr, dist := tr, dist
			out = append(out, bench{
				name: fmt.Sprintf("LatencySweep/%s/dist=%s", tr, dist),
				fn:   func(b *testing.B, msgs *float64) { latencySweep(b, tr, dist, msgs) },
			})
		}
	}
	// Fault sweep: the burst under seeded loss and duplication, raw and
	// with the retransmit layer restoring reliable FIFO delivery.
	for _, tr := range partialdsm.Transports {
		for _, reliable := range []bool{false, true} {
			tr, reliable := tr, reliable
			label := "raw"
			if reliable {
				label = "retransmit"
			}
			out = append(out, bench{
				name: fmt.Sprintf("FaultSweep/%s/drop=0.1+dup=0.1/%s", tr, label),
				fn:   func(b *testing.B, msgs *float64) { faultSweep(b, tr, reliable, msgs) },
			})
		}
	}
	// Recovery sweep: one crash→restart→snapshot-rejoin cycle per
	// iteration on a partial-replication ring. The msgs metric is the
	// recovery traffic alone (snapshot requests and responses per
	// rejoin) — a direct gauge on the snapshot filtering and the retry
	// machinery, independent of the update path.
	for _, tr := range partialdsm.Transports {
		tr := tr
		out = append(out, bench{
			name: fmt.Sprintf("RecoverySweep/%s", tr),
			fn:   func(b *testing.B, msgs *float64) { recoverySweep(b, tr, msgs) },
		})
	}
	// Migration sweep: one epoch reconfiguration per iteration on a
	// PRAM ring — a single variable hops one step around the ring, so
	// each flip transfers exactly one replica (one gain, one shed).
	// The msgs metric is the epoch wire traffic alone (propose, fence,
	// transfer, ready, commit per migration) — a direct gauge on the
	// reconfiguration protocol, independent of the update path.
	for _, tr := range partialdsm.Transports {
		tr := tr
		out = append(out, bench{
			name: fmt.Sprintf("MigrationSweep/%s", tr),
			fn:   func(b *testing.B, msgs *float64) { migrationSweep(b, tr, msgs) },
		})
	}
	// Policy sweep: one zipfian block plus one adaptive placement
	// decision per iteration on a 4-node PRAM cluster. The workload's
	// hot slices rotate every iteration, so every iteration pays the
	// whole policy loop — counter window, plan, epoch flip when the
	// demand moved — and the msgs metric prices the adaptation churn
	// on top of the update traffic.
	for _, tr := range partialdsm.Transports {
		tr := tr
		out = append(out, bench{
			name: fmt.Sprintf("PolicySweep/%s", tr),
			fn:   func(b *testing.B, msgs *float64) { policySweep(b, tr, msgs) },
		})
	}
	// Per-operation costs of the headline protocol.
	out = append(out,
		bench{name: "PRAMWrite/8node-full", fn: func(b *testing.B, msgs *float64) { pramWrite(b, modes[0], msgs) }},
		bench{name: "PRAMWrite/8node-full/coalesce=16", fn: func(b *testing.B, msgs *float64) { pramWrite(b, modes[1], msgs) }},
		bench{name: "PRAMRead/8node-full", fn: pramRead},
	)
	// Value-size sweep over the v2 byte-value API: the payload-scaling
	// axis the paper's cost model is really about. 8 B is the legacy
	// word (byte-identical on the wire), 256 B exercises the
	// explicit-length framing, 4 KiB the buffer-pool growth path.
	for _, size := range []int{8, 256, 4096} {
		for _, m := range []mode{modes[0], modes[1]} {
			size, m := size, m
			out = append(out, bench{
				name:  fmt.Sprintf("PRAMPut/8node-full/%s/val=%s", m.label, sizeLabel(size)),
				quick: size == 256 && m.batch == 16,
				fn:    func(b *testing.B, msgs *float64) { pramPut(b, m, size, msgs) },
			})
		}
		size := size
		out = append(out, bench{
			name: fmt.Sprintf("PRAMGetInto/8node-full/val=%s", sizeLabel(size)),
			fn:   func(b *testing.B, msgs *float64) { pramGetInto(b, size, msgs) },
		})
	}
	return out
}

// sizeLabel renders a value size for benchmark names.
func sizeLabel(n int) string {
	if n >= 1024 {
		return fmt.Sprintf("%dKiB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}

// cluster builds an untraced benchmark cluster.
func cluster(b *testing.B, cons partialdsm.Consistency, placement [][]string, tr partialdsm.Transport, m mode) *partialdsm.Cluster {
	b.Helper()
	c, err := partialdsm.New(clusterConfig(cons, placement, tr, m))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

// clusterConfig builds the benchmark cluster configuration for a
// coalescing mode.
func clusterConfig(cons partialdsm.Consistency, placement [][]string, tr partialdsm.Transport, m mode) partialdsm.Config {
	return partialdsm.Config{
		Consistency:        cons,
		Placement:          partialdsm.PlacementFromLists(placement),
		Seed:               1,
		DisableTrace:       true,
		Transport:          tr,
		CoalesceBatch:      m.batch,
		CoalesceFlushTicks: m.ticks,
		CoalesceAdaptive:   m.adaptive,
	}
}

// fullPlacement replicates x on every node.
func fullPlacement(n int) [][]string {
	out := make([][]string, n)
	for i := range out {
		out[i] = []string{"x"}
	}
	return out
}

// updateStorm is one 64-write burst plus quiescence per iteration.
func updateStorm(b *testing.B, tr partialdsm.Transport, m mode, msgs *float64) {
	const nodes, burst = 16, 64
	c := cluster(b, partialdsm.PRAM, fullPlacement(nodes), tr, m)
	h := c.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < burst; k++ {
			if err := h.Write("x", int64(i*burst+k)+1); err != nil {
				b.Fatal(err)
			}
		}
		c.Quiesce()
	}
	b.StopTimer()
	*msgs = float64(c.Stats().Msgs) / float64(b.N)
}

// latencySweep is one 64-write burst plus quiescence per iteration
// under 1ms virtual latency — the cluster drains through clock jumps,
// so the measured time is scheduling cost, not simulated delay.
func latencySweep(b *testing.B, tr partialdsm.Transport, dist partialdsm.LatencyDist, msgs *float64) {
	const nodes, burst = 8, 64
	cfg := clusterConfig(partialdsm.PRAM, fullPlacement(nodes), tr, modes[0])
	cfg.MaxLatency = time.Millisecond
	cfg.VirtualLatency = true
	cfg.LatencyDist = dist
	c, err := partialdsm.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	h := c.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < burst; k++ {
			if err := h.Write("x", int64(i*burst+k)+1); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Quiesce(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	*msgs = float64(c.Stats().Msgs) / float64(b.N)
}

// faultSweep is one 64-write burst plus quiescence per iteration under
// seeded drop+dup fault injection (virtual latency, so the retransmit
// timeouts cost clock jumps, not wall time). PRAM is wait-free, so the
// raw-fault leg stays live; the retransmit leg adds the recovery
// traffic to the bill.
func faultSweep(b *testing.B, tr partialdsm.Transport, reliable bool, msgs *float64) {
	const nodes, burst = 8, 64
	cfg := clusterConfig(partialdsm.PRAM, fullPlacement(nodes), tr, modes[0])
	cfg.MaxLatency = time.Millisecond
	cfg.VirtualLatency = true
	cfg.FaultDrop = 0.1
	cfg.FaultDup = 0.1
	cfg.FaultSeed = 7
	cfg.Reliable = reliable
	c, err := partialdsm.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	h := c.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < burst; k++ {
			if err := h.Write("x", int64(i*burst+k)+1); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.Quiesce(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	*msgs = float64(c.Stats().Msgs) / float64(b.N)
}

// recoverySweep is one crash→restart→state-transfer rejoin per
// iteration: an 8-node causal-partial ring (node i replicates v_i and
// v_{i+1 mod 8}) is seeded with one write per variable, then each
// iteration crashes node 1, restarts it, and quiesces through the
// snapshot handshake. The msgs metric counts only the recovery frames
// (snapreq + snapresp per rejoin), so a filtering regression — values
// resent to a peer that does not replicate them, or extra retry
// rounds — moves the number even though the update path is untouched.
func recoverySweep(b *testing.B, tr partialdsm.Transport, msgs *float64) {
	const nodes = 8
	placement := make([][]string, nodes)
	for i := range placement {
		placement[i] = []string{fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", (i+1)%nodes)}
	}
	cfg := clusterConfig(partialdsm.CausalPartial, placement, tr, modes[0])
	cfg.MaxLatency = time.Millisecond
	cfg.VirtualLatency = true
	c, err := partialdsm.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	for i := 0; i < nodes; i++ {
		if err := c.Node(i).Write(fmt.Sprintf("v%d", i), int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Quiesce(); err != nil {
		b.Fatal(err)
	}
	base := c.Stats().RecoveryMsgs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.CrashNode(1); err != nil {
			b.Fatal(err)
		}
		if err := c.RestartNode(1); err != nil {
			b.Fatal(err)
		}
		if err := c.Quiesce(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	*msgs = float64(c.Stats().RecoveryMsgs-base) / float64(b.N)
}

// migrationSweep is one live epoch reconfiguration per iteration: an
// 8-node PRAM ring (node i replicates v_i and v_{i+1 mod 8}) is
// seeded with one write per variable, then each iteration flips
// between the base ring and a variant where v0 has hopped one step —
// node 2 gains a replica of v0 with its state transferred from a
// donor, node 0 sheds its copy. The msgs metric counts only the
// epoch.* frames per migration, so a chattier handshake — extra
// fences, redundant transfers — moves the number even though the
// update path is untouched.
func migrationSweep(b *testing.B, tr partialdsm.Transport, msgs *float64) {
	const nodes = 8
	ring := func(shifted bool) *partialdsm.Placement {
		p := partialdsm.NewPlacement(nodes)
		for i := 0; i < nodes; i++ {
			v := fmt.Sprintf("v%d", i)
			lo, hi := i, (i+1)%nodes
			if shifted && i == 0 {
				lo, hi = 1, 2
			}
			p.Assign(lo, v).Assign(hi, v)
		}
		return p
	}
	cfg := clusterConfig(partialdsm.PRAM, ring(false).Lists(), tr, modes[0])
	cfg.MaxLatency = time.Millisecond
	cfg.VirtualLatency = true
	c, err := partialdsm.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	for i := 0; i < nodes; i++ {
		if err := c.Node(i).Write(fmt.Sprintf("v%d", i), int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Quiesce(); err != nil {
		b.Fatal(err)
	}
	base := c.Stats().ReconfigMsgs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Reconfigure(ring(i%2 == 0)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	*msgs = float64(c.Stats().ReconfigMsgs-base) / float64(b.N)
}

// policySweep is one 150-access zipfian block plus one policy decision
// per iteration: a 4-node cluster starts from full replication over 8
// variables, each node draws from a zipfian anchored at its own hot
// slice, and the slices rotate half the variable space at every
// iteration — so GreedyPolicy (the E22 knobs) re-adapts the placement
// over and over instead of converging once. Denied accesses are
// workload signal (the policy reads the unmet demand), not errors.
func policySweep(b *testing.B, tr partialdsm.Transport, msgs *float64) {
	const nodes, vars, block = 4, 8, 150
	pl := partialdsm.NewPlacement(nodes)
	for n := 0; n < nodes; n++ {
		pl.Assign(n, workload.VarNames(vars)...)
	}
	cfg := partialdsm.Config{
		Consistency:    partialdsm.PRAM,
		Placement:      pl,
		Seed:           1,
		DisableTrace:   true,
		Transport:      tr,
		MaxLatency:     100 * time.Microsecond,
		VirtualLatency: true,
	}
	c, err := partialdsm.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	gen := workload.NewZipfMix(14, nodes, vars, 1.6, 0.65)
	driver := c.NewPolicyDriver(&partialdsm.GreedyPolicy{
		MinTotal:      20,
		HotThreshold:  8,
		IdleThreshold: 1,
	}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Rotate(vars / 2)
		for k := 0; k < block; k++ {
			a := gen.Next()
			h := c.Node(a.Node)
			if a.Read {
				_, _ = h.Read(a.Var)
			} else {
				_ = h.Write(a.Var, int64(i*block+k+1))
			}
		}
		if err := c.Quiesce(); err != nil {
			b.Fatal(err)
		}
		if _, err := driver.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	*msgs = float64(c.Stats().Msgs) / float64(b.N)
}

// bellmanFord is one full distributed shortest-path run per iteration.
func bellmanFord(b *testing.B, n int, tr partialdsm.Transport, m mode, msgs *float64) {
	g := bellmanford.RandomGraph(rand.New(rand.NewSource(7)), n, 2*n, 9)
	placement := bellmanford.Placement(g)
	var totalMsgs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := partialdsm.New(clusterConfig(partialdsm.PRAM, placement, tr, m))
		if err != nil {
			b.Fatal(err)
		}
		nodes := make([]bellmanford.Node, c.NumNodes())
		for j := range nodes {
			nodes[j] = c.Node(j)
		}
		if _, err := bellmanford.Run(nodes, g, 0); err != nil {
			b.Fatal(err)
		}
		c.Quiesce()
		totalMsgs += c.Stats().Msgs
		c.Close()
	}
	b.StopTimer()
	*msgs = float64(totalMsgs) / float64(b.N)
}

// pramWrite measures a single PRAM write on 8-node full replication.
func pramWrite(b *testing.B, m mode, msgs *float64) {
	c := cluster(b, partialdsm.PRAM, fullPlacement(8), partialdsm.TransportSharded, m)
	h := c.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Write("x", int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c.Quiesce()
	*msgs = float64(c.Stats().Msgs) / float64(b.N)
}

// pramPut measures a single byte-value Put of the given size on 8-node
// full replication. The value buffer is reused and varied per
// iteration (a fresh per-write payload, as a KV workload would send).
func pramPut(b *testing.B, m mode, size int, msgs *float64) {
	c := cluster(b, partialdsm.PRAM, fullPlacement(8), partialdsm.TransportSharded, m)
	h := c.Node(0)
	val := make([]byte, size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		val[0], val[size/2] = byte(i), byte(i>>8)
		if err := h.Put("x", val); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c.Quiesce()
	*msgs = float64(c.Stats().Msgs) / float64(b.N)
}

// pramGetInto measures the allocation-free read path at the given
// value size.
func pramGetInto(b *testing.B, size int, msgs *float64) {
	c := cluster(b, partialdsm.PRAM, fullPlacement(8), partialdsm.TransportSharded, modes[0])
	val := make([]byte, size)
	if err := c.Node(0).Put("x", val); err != nil {
		b.Fatal(err)
	}
	c.Quiesce()
	h := c.Node(1)
	dst := make([]byte, 0, size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = h.GetInto("x", dst)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	*msgs = float64(c.Stats().Msgs) / float64(b.N)
}

// pramRead measures a wait-free local read.
func pramRead(b *testing.B, msgs *float64) {
	c := cluster(b, partialdsm.PRAM, fullPlacement(8), partialdsm.TransportSharded, modes[0])
	h := c.Node(1)
	if err := c.Node(0).Write("x", 42); err != nil {
		b.Fatal(err)
	}
	c.Quiesce()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Read("x"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	*msgs = float64(c.Stats().Msgs) / float64(b.N)
}
