// Command dsm-bench runs the repo's cluster-level performance suite
// programmatically (via testing.Benchmark) and emits a trajectory file
// BENCH_<pr>.json mapping benchmark name → ns/op, allocs/op, bytes/op,
// so successive PRs can track performance without parsing `go test
// -bench` output. The suite mirrors the hot-path benchmarks in
// bench_test.go: the UpdateStorm multicast burst and the Bellman-Ford
// case study across transports and coalescing settings, plus the
// per-operation PRAM write/read costs.
//
// Usage:
//
//	dsm-bench [-out BENCH_2.json] [-pr 2] [-quick]
//
// -quick runs a two-benchmark subset (for CI smoke and tests); without
// -out the JSON goes to stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"

	"partialdsm"
	"partialdsm/internal/bellmanford"
)

// Result is one benchmark's measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	N           int     `json:"n"`
}

// Trajectory is the emitted file format. Baseline holds the previous
// PR's numbers for the benchmarks that existed then, so the file reads
// as a before/after table.
type Trajectory struct {
	PR         int               `json:"pr"`
	GoVersion  string            `json:"go"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Benchmarks map[string]Result `json:"benchmarks"`
	Baseline   map[string]Result `json:"baseline,omitempty"`
	Notes      string            `json:"notes,omitempty"`
}

// bench is one named benchmark.
type bench struct {
	name  string
	quick bool // include in the -quick subset
	fn    func(b *testing.B)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsm-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "write the trajectory JSON to this file (default stdout)")
	pr := fs.Int("pr", 2, "PR number recorded in the trajectory")
	quick := fs.Bool("quick", false, "run the two-benchmark smoke subset")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	traj := Trajectory{
		PR:         *pr,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: make(map[string]Result),
	}
	suite := benches()
	names := make([]string, 0, len(suite))
	for _, b := range suite {
		if *quick && !b.quick {
			continue
		}
		names = append(names, b.name)
	}
	sort.Strings(names)
	byName := make(map[string]bench, len(suite))
	for _, b := range suite {
		byName[b.name] = b
	}
	for _, name := range names {
		fmt.Fprintf(stderr, "running %s …\n", name)
		r := testing.Benchmark(byName[name].fn)
		traj.Benchmarks[name] = Result{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
	}

	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "dsm-bench: %v\n", err)
		return 2
	}
	data = append(data, '\n')
	if *out == "" {
		stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(stderr, "dsm-bench: %v\n", err)
		return 2
	}
	fmt.Fprintf(stderr, "wrote %s (%d benchmarks)\n", *out, len(traj.Benchmarks))
	return 0
}

// benches enumerates the suite.
func benches() []bench {
	var out []bench
	// UpdateStorm: the message-heaviest cluster shape — PRAM over full
	// replication on 16 nodes, 64-write bursts, quiesce per burst.
	for _, tr := range partialdsm.Transports {
		for _, batch := range []int{1, 16} {
			tr, batch := tr, batch
			out = append(out, bench{
				name:  fmt.Sprintf("UpdateStorm/%s/coalesce=%d", tr, batch),
				quick: tr == partialdsm.TransportSharded,
				fn:    func(b *testing.B) { updateStorm(b, tr, batch) },
			})
		}
	}
	// Bellman-Ford at the largest benchmarked size.
	for _, tr := range partialdsm.Transports {
		for _, batch := range []int{1, 16} {
			tr, batch := tr, batch
			out = append(out, bench{
				name: fmt.Sprintf("BellmanFord/n=20/%s/coalesce=%d", tr, batch),
				fn:   func(b *testing.B) { bellmanFord(b, 20, tr, batch) },
			})
		}
	}
	// Per-operation costs of the headline protocol.
	out = append(out,
		bench{name: "PRAMWrite/8node-full", fn: func(b *testing.B) { pramWrite(b, 1) }},
		bench{name: "PRAMWrite/8node-full/coalesce=16", fn: func(b *testing.B) { pramWrite(b, 16) }},
		bench{name: "PRAMRead/8node-full", fn: pramRead},
	)
	return out
}

// cluster builds an untraced benchmark cluster.
func cluster(b *testing.B, cons partialdsm.Consistency, placement [][]string, tr partialdsm.Transport, batch int) *partialdsm.Cluster {
	b.Helper()
	c, err := partialdsm.New(partialdsm.Config{
		Consistency:   cons,
		Placement:     placement,
		Seed:          1,
		DisableTrace:  true,
		Transport:     tr,
		CoalesceBatch: batch,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

// fullPlacement replicates x on every node.
func fullPlacement(n int) [][]string {
	out := make([][]string, n)
	for i := range out {
		out[i] = []string{"x"}
	}
	return out
}

// updateStorm is one 64-write burst plus quiescence per iteration.
func updateStorm(b *testing.B, tr partialdsm.Transport, batch int) {
	const nodes, burst = 16, 64
	c := cluster(b, partialdsm.PRAM, fullPlacement(nodes), tr, batch)
	h := c.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < burst; k++ {
			if err := h.Write("x", int64(i*burst+k)+1); err != nil {
				b.Fatal(err)
			}
		}
		c.Quiesce()
	}
}

// bellmanFord is one full distributed shortest-path run per iteration.
func bellmanFord(b *testing.B, n int, tr partialdsm.Transport, batch int) {
	g := bellmanford.RandomGraph(rand.New(rand.NewSource(7)), n, 2*n, 9)
	placement := bellmanford.Placement(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := partialdsm.New(partialdsm.Config{
			Consistency:   partialdsm.PRAM,
			Placement:     placement,
			Seed:          1,
			DisableTrace:  true,
			Transport:     tr,
			CoalesceBatch: batch,
		})
		if err != nil {
			b.Fatal(err)
		}
		nodes := make([]bellmanford.Node, c.NumNodes())
		for j := range nodes {
			nodes[j] = c.Node(j)
		}
		if _, err := bellmanford.Run(nodes, g, 0); err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

// pramWrite measures a single PRAM write on 8-node full replication.
func pramWrite(b *testing.B, batch int) {
	c := cluster(b, partialdsm.PRAM, fullPlacement(8), partialdsm.TransportSharded, batch)
	h := c.Node(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Write("x", int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	c.Quiesce()
}

// pramRead measures a wait-free local read.
func pramRead(b *testing.B) {
	c := cluster(b, partialdsm.PRAM, fullPlacement(8), partialdsm.TransportSharded, 1)
	h := c.Node(1)
	if err := c.Node(0).Write("x", 42); err != nil {
		b.Fatal(err)
	}
	c.Quiesce()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Read("x"); err != nil {
			b.Fatal(err)
		}
	}
}
