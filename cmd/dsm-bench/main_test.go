package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickRunEmitsTrajectory smoke-tests the tool end to end on the
// -quick subset and validates the emitted JSON shape.
func TestQuickRunEmitsTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-quick", "-pr", "99", "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if traj.PR != 99 {
		t.Errorf("pr = %d, want 99", traj.PR)
	}
	if len(traj.Benchmarks) == 0 {
		t.Fatal("no benchmarks recorded")
	}
	for name, r := range traj.Benchmarks {
		if r.NsPerOp <= 0 || r.N <= 0 {
			t.Errorf("%s: implausible result %+v", name, r)
		}
	}
}

// TestCompareGate unit-tests the regression gate: identical numbers
// pass, improvements pass, wall-time changes are ignored, and a
// doctored regression beyond tolerance + floor fails.
func TestCompareGate(t *testing.T) {
	base := Trajectory{Benchmarks: map[string]Result{
		"A": {NsPerOp: 1000, AllocsPerOp: 90, BytesPerOp: 10000, MsgsPerOp: 48, N: 100},
		"B": {NsPerOp: 500, AllocsPerOp: 3, BytesPerOp: 241, MsgsPerOp: 15, N: 100},
	}}
	clone := func(mutate func(m map[string]Result)) Trajectory {
		out := Trajectory{Benchmarks: make(map[string]Result)}
		for k, v := range base.Benchmarks {
			out.Benchmarks[k] = v
		}
		mutate(out.Benchmarks)
		return out
	}
	cases := []struct {
		name string
		cand Trajectory
		want bool
	}{
		{"identical", clone(func(map[string]Result) {}), true},
		{"improvement", clone(func(m map[string]Result) {
			m["A"] = Result{AllocsPerOp: 40, BytesPerOp: 5000, MsgsPerOp: 20}
		}), true},
		{"walltime-ignored", clone(func(m map[string]Result) {
			r := m["A"]
			r.NsPerOp *= 10
			m["A"] = r
		}), true},
		{"within-tolerance", clone(func(m map[string]Result) {
			r := m["A"]
			r.AllocsPerOp = 97 // +7.8%
			m["A"] = r
		}), true},
		{"small-jitter-under-floor", clone(func(m map[string]Result) {
			r := m["B"]
			r.AllocsPerOp = 6 // +100% but within the absolute floor
			m["B"] = r
		}), true},
		{"alloc-regression", clone(func(m map[string]Result) {
			r := m["A"]
			r.AllocsPerOp = 130 // +44%
			m["A"] = r
		}), false},
		{"msgs-regression", clone(func(m map[string]Result) {
			r := m["A"]
			r.MsgsPerOp = 96 // coalescing broke: 2× messages
			m["A"] = r
		}), false},
		{"bytes-regression", clone(func(m map[string]Result) {
			r := m["A"]
			r.BytesPerOp = 20000
			m["A"] = r
		}), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if got := compareTrajectories(base, tc.cand, 10, &buf); got != tc.want {
				t.Errorf("gate = %v, want %v\n%s", got, tc.want, buf.String())
			}
		})
	}
}

// TestCompareFlagEndToEnd runs the -quick suite with -compare against
// a doctored baseline twice: once matching (exit 0) and once with an
// impossible-to-meet baseline (exit 1), exercising the CI gate's
// process-level contract.
func TestCompareFlagEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "cand.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-quick", "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("seed run failed: %d\n%s", code, stderr.String())
	}
	// Comparing a run against its own numbers must pass.
	if code := run([]string{"-quick", "-compare", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-compare failed: %d\n%s\n%s", code, stdout.String(), stderr.String())
	}
	// Doctor the baseline so the fresh run regresses on allocs and msgs.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doctored Trajectory
	if err := json.Unmarshal(data, &doctored); err != nil {
		t.Fatal(err)
	}
	for name, r := range doctored.Benchmarks {
		r.AllocsPerOp = r.AllocsPerOp/4 - 10
		if r.AllocsPerOp < 0 {
			r.AllocsPerOp = 0
		}
		r.MsgsPerOp /= 4
		r.BytesPerOp /= 4
		doctored.Benchmarks[name] = r
	}
	doctoredPath := filepath.Join(dir, "doctored.json")
	raw, _ := json.Marshal(doctored)
	if err := os.WriteFile(doctoredPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-quick", "-compare", doctoredPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("doctored compare exited %d, want 1\n%s", code, stdout.String())
	}
}

// TestBadFlags exercises the flag error path.
func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestCommittedTrajectoriesParse guards every checked-in trajectory
// file: valid JSON with the documented shape, loadable by the same
// reader the -compare gate uses.
func TestCommittedTrajectoriesParse(t *testing.T) {
	paths, err := filepath.Glob("../../BENCH_*.json")
	if err != nil || len(paths) == 0 {
		t.Skipf("no committed trajectories: %v", err)
	}
	for _, path := range paths {
		traj, err := readTrajectory(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if traj.PR <= 0 || len(traj.Benchmarks) == 0 || len(traj.Baseline) == 0 {
			t.Errorf("%s incomplete: pr=%d, %d benchmarks, %d baseline entries",
				path, traj.PR, len(traj.Benchmarks), len(traj.Baseline))
		}
	}
}
