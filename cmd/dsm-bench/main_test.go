package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQuickRunEmitsTrajectory smoke-tests the tool end to end on the
// -quick subset and validates the emitted JSON shape.
func TestQuickRunEmitsTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-quick", "-pr", "99", "-out", out}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if traj.PR != 99 {
		t.Errorf("pr = %d, want 99", traj.PR)
	}
	if len(traj.Benchmarks) == 0 {
		t.Fatal("no benchmarks recorded")
	}
	for name, r := range traj.Benchmarks {
		if r.NsPerOp <= 0 || r.N <= 0 {
			t.Errorf("%s: implausible result %+v", name, r)
		}
	}
}

// TestBadFlags exercises the flag error path.
func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestCommittedTrajectoryParses guards the checked-in trajectory file:
// it must stay valid JSON with the documented shape.
func TestCommittedTrajectoryParses(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_2.json")
	if err != nil {
		t.Skipf("no committed trajectory: %v", err)
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("BENCH_2.json is not a valid trajectory: %v", err)
	}
	if traj.PR != 2 || len(traj.Benchmarks) == 0 || len(traj.Baseline) == 0 {
		t.Errorf("BENCH_2.json incomplete: pr=%d, %d benchmarks, %d baseline entries",
			traj.PR, len(traj.Benchmarks), len(traj.Baseline))
	}
}
