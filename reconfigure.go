package partialdsm

// This file is the cluster's reconfiguration control plane: the
// epoch-based Reconfigure protocol driver, the failover planner, and
// the bounded virtual-time Window helper the fault injectors share.
// See the package documentation's "Control plane" section for how
// these methods relate.

import (
	"errors"
	"fmt"
	"sort"

	"partialdsm/internal/mcs"
	"partialdsm/internal/sharegraph"
)

// DefaultReconfigTicks bounds a reconfiguration attempt in virtual
// clock ticks (one tick per delivered message). An attempt that has
// not committed within the budget — its transfer traffic lost on an
// unhealed partition, say — is resolved from outside: flipped
// everywhere when the coordinator had already decided commit, aborted
// everywhere otherwise, and Reconfigure returns an error wrapping
// ErrOpDeadline in the aborted case. The budget rides the same
// deterministic clock as the latency and fault schedules, so a given
// seed either always or never expires a given attempt.
const DefaultReconfigTicks = 1 << 22

// errRecoveryInProgress tags rejections caused by an unfinished crash
// recovery, so callers can distinguish "retry after Quiesce" from a
// malformed proposal.
var errRecoveryInProgress = errors.New("a crash recovery is in progress")

// reconfigurable is implemented by every protocol node: all eight
// protocols support epoch-based runtime reconfiguration, including the
// owner protocols (Atomic, CacheConsistency), whose per-variable
// primary/sequencer migrates through the same handshake.
type reconfigurable interface{ ReconfigEngine() *mcs.Reconfig }

// Epoch returns the committed placement epoch the cluster serves.
// Clusters start at epoch 0; every committed Reconfigure installs a
// higher epoch (aborted attempts burn numbers, so epochs are
// monotonic but not necessarily consecutive).
func (c *Cluster) Epoch() uint64 {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return c.epoch
}

// Placement returns the current epoch's placement as a deep copy,
// owner pins included for variables not on their default owner.
func (c *Cluster) Placement() *Placement {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return placementOf(c.cpl)
}

// placementOf converts an internal placement back to the public form,
// pinning every variable whose effective owner differs from the
// default (lowest clique member).
func placementOf(sg *sharegraph.Placement) *Placement {
	p := PlacementFromLists(sg.Lists())
	for _, x := range sg.Vars() {
		if cx := sg.Clique(x); len(cx) > 0 && sg.Owner(x) != cx[0] {
			p.SetOwner(x, sg.Owner(x))
		}
	}
	return p
}

// reconfigEngines collects every node's reconfiguration engine.
func (c *Cluster) reconfigEngines() ([]*mcs.Reconfig, error) {
	engs := make([]*mcs.Reconfig, len(c.nodes))
	for i, n := range c.nodes {
		re, ok := n.(reconfigurable)
		if !ok {
			return nil, fmt.Errorf("partialdsm: %s does not support runtime reconfiguration", c.cfg.Consistency)
		}
		engs[i] = re.ReconfigEngine()
	}
	return engs, nil
}

// Reconfigure migrates the cluster to a new placement at runtime
// without stopping it: propose → fence → transfer → flip. The
// coordinator (the lowest live node) broadcasts the proposal; each
// live node fences the variables whose replica clique changes
// (blocked writers fail fast per Config.OpDeadlineTicks if the epoch
// stalls), pulls the state of every variable it gains from a donor of
// the current clique, and flips to the new epoch once every live node
// has finished its transfer. Crashed nodes are left out and catch up
// at RestartNode. Variables no live donor holds come up as ⊥ on their
// new replicas, recorded like a recovery reset.
//
// Reconfigure returns after the flip has committed (in-flight commit
// notifications may still be draining; Quiesce to settle them). A nil
// error means the cluster serves the new epoch. The proposal must
// keep the node count and the variable universe; an attempt already
// in progress, a live node still running crash recovery, and a
// non-FIFO network are each rejected with a descriptive error.
// Reconfiguring to the placement already installed (same replica sets,
// same effective owners) is a no-op: nil, zero messages.
//
// An attempt that exceeds DefaultReconfigTicks of virtual time is
// resolved by force — committed everywhere if the coordinator had
// decided, aborted everywhere (error wrapping ErrOpDeadline, old
// epoch intact) otherwise.
func (c *Cluster) Reconfigure(next *Placement) error {
	if next == nil {
		return errors.New("partialdsm: Reconfigure needs a placement")
	}
	engs, err := c.reconfigEngines()
	if err != nil {
		return err
	}
	if c.cfg.NonFIFO {
		return errors.New("partialdsm: Reconfigure requires FIFO channels (the epoch fence barrier relies on per-pair order)")
	}
	sg, err := next.build()
	if err != nil {
		return err
	}
	if sg.NumProcs() != len(c.nodes) {
		return fmt.Errorf("partialdsm: reconfiguration changes the node count from %d to %d", len(c.nodes), sg.NumProcs())
	}

	c.cmu.Lock()
	if c.reconfiguring {
		c.cmu.Unlock()
		return errors.New("partialdsm: a reconfiguration is already in progress")
	}
	for i, n := range c.nodes {
		cr, ok := n.(mcs.CrashRestarter)
		if !ok || c.crashed[i] {
			// A node that re-crashed before finishing its recovery
			// handshake keeps its elevated expectation until the next
			// restart; it is excluded from the attempt anyway, so it must
			// not block reconfiguration (it would otherwise block its own
			// Failover forever).
			continue
		}
		if recs, _ := cr.RecoveryStats(); recs < c.recoverWant[i] {
			c.cmu.Unlock()
			return fmt.Errorf("partialdsm: node %d is still running crash recovery; Quiesce before reconfiguring", i)
		}
	}
	if c.cpl.Equal(sg) {
		c.cmu.Unlock()
		return nil
	}
	live := make([]bool, len(c.nodes))
	coord := -1
	for i := range live {
		live[i] = !c.crashed[i]
		if live[i] && coord < 0 {
			coord = i
		}
	}
	if coord < 0 {
		c.cmu.Unlock()
		return errors.New("partialdsm: every node is crashed; nothing can coordinate a reconfiguration")
	}
	nix, err := c.ix.Rebind(sg, c.attempt+1)
	if err != nil {
		c.cmu.Unlock()
		return fmt.Errorf("partialdsm: %w", err)
	}
	c.attempt++
	attempt := c.attempt
	c.reconfiguring = true
	// The efficiency ledger admits the proposed cliques as soon as the
	// attempt starts: transfer traffic about a variable legitimately
	// reaches its prospective replicas even if the attempt later
	// aborts.
	c.extendUnionsLocked(sg)
	c.cmu.Unlock()

	done, err := engs[coord].StartReconfigure(nix, live, attempt)
	if err != nil {
		c.cmu.Lock()
		c.reconfiguring = false
		c.cmu.Unlock()
		return fmt.Errorf("partialdsm: %w", err)
	}
	expired := make(chan struct{})
	clk := c.net.Clock()
	clk.After(DefaultReconfigTicks, func() { close(expired) })
	// The attempt may already be stalled with the network drained
	// (every frame it needed was lost before the budget timer was
	// registered); give the clock an advance opportunity so the timer
	// cannot strand.
	clk.AdvanceIdle()
	commit := true
	select {
	case <-done:
	case <-expired:
		// The coordinator's decision bit survives everything short of
		// its own crash-wipe (it models a durable consensus write), so
		// resolving uniformly is safe: commit-decided means every live
		// node had finished its transfer merge, not-decided means
		// nobody flipped.
		commit = engs[coord].Decided(attempt)
		for _, e := range engs {
			e.ForceFinish(commit)
		}
	}
	c.cmu.Lock()
	defer c.cmu.Unlock()
	c.reconfiguring = false
	if !commit {
		return fmt.Errorf("partialdsm: reconfiguration to epoch %d stalled after %d virtual ticks and was aborted; the cluster stays on epoch %d: %w",
			attempt, uint64(DefaultReconfigTicks), c.epoch, ErrOpDeadline)
	}
	c.ix = nix
	c.cpl = sg
	c.epoch = attempt
	c.ownerHist = append(c.ownerHist, nix)
	return nil
}

// FailoverPlacement plans the placement that re-places node i's
// variables onto the survivors: each replica i held moves to the live
// node with the fewest assigned variables that does not already hold
// it (ties to the lowest id), keeping every variable's replication
// degree. Variables every survivor already replicates simply lose i's
// copy. Surviving owner pins carry over; variables i owned fall back
// to the new epoch's default owner. The plan treats i as crashed
// whether or not it already is, so it can be computed ahead of an
// anticipated failure.
func (c *Cluster) FailoverPlacement(i int) (*Placement, error) {
	if i < 0 || i >= len(c.nodes) {
		return nil, fmt.Errorf("partialdsm: node %d out of range [0,%d)", i, len(c.nodes))
	}
	c.cmu.Lock()
	lists := c.cpl.Lists()
	owners := make(map[string]int)
	for _, x := range c.cpl.Vars() {
		if cx := c.cpl.Clique(x); len(cx) > 0 && c.cpl.Owner(x) != cx[0] {
			owners[x] = c.cpl.Owner(x)
		}
	}
	crashed := append([]bool(nil), c.crashed...)
	c.cmu.Unlock()
	crashed[i] = true
	load := make([]int, len(lists))
	holds := make([]map[string]bool, len(lists))
	for p, vars := range lists {
		holds[p] = make(map[string]bool, len(vars))
		for _, x := range vars {
			holds[p][x] = true
		}
		load[p] = len(vars)
	}
	moved := append([]string(nil), lists[i]...)
	sort.Strings(moved)
	lists[i] = nil
	for _, x := range moved {
		best := -1
		for p := range lists {
			if crashed[p] || holds[p][x] {
				continue
			}
			if best < 0 || load[p] < load[best] {
				best = p
			}
		}
		if best < 0 {
			// Every survivor already replicates x: dropping i's copy
			// keeps the clique intact. (If i was the last holder and no
			// survivor can take x, the variable would leave the
			// universe and Reconfigure's Rebind check rejects the plan
			// with a descriptive error.)
			continue
		}
		lists[best] = append(lists[best], x)
		holds[best][x] = true
		load[best]++
	}
	out := PlacementFromLists(lists)
	// Surviving non-default owners stay pinned (the survivors keep
	// their replicas, so every pin not naming i is still a holder).
	pinned := make([]string, 0, len(owners))
	for x := range owners {
		pinned = append(pinned, x)
	}
	sort.Strings(pinned)
	for _, x := range pinned {
		if owners[x] != i {
			out.SetOwner(x, owners[x])
		}
	}
	return out, nil
}

// Failover re-places a crashed node's variables onto the survivors
// (FailoverPlacement) and migrates to that placement with Reconfigure.
// The node must actually be crashed — the live nodes transfer what
// state they have and the moved variables stay writable while the
// node is down; when it restarts, it recovers under the new epoch's
// placement. A failover proposed while another node's peers are still
// mid-state-transfer (a restarted node whose recovery handshake has
// not finished) is rejected descriptively: the transfer holds state
// the migration would need settled.
func (c *Cluster) Failover(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("partialdsm: node %d out of range [0,%d)", i, len(c.nodes))
	}
	c.cmu.Lock()
	down := c.crashed[i]
	var recovering []int
	for j, n := range c.nodes {
		cr, ok := n.(mcs.CrashRestarter)
		if !ok || c.crashed[j] {
			continue
		}
		if recs, _ := cr.RecoveryStats(); recs < c.recoverWant[j] {
			recovering = append(recovering, j)
		}
	}
	c.cmu.Unlock()
	if !down {
		return fmt.Errorf("partialdsm: node %d is not crashed; Failover re-places a crashed node's variables", i)
	}
	if len(recovering) > 0 {
		return fmt.Errorf("partialdsm: cannot fail over node %d while node %d's peers are mid-state-transfer; Quiesce before failing over: %w",
			i, recovering[0], errRecoveryInProgress)
	}
	pl, err := c.FailoverPlacement(i)
	if err != nil {
		return err
	}
	return c.Reconfigure(pl)
}

// Window applies a state change for a bounded window of virtual time:
// apply runs at the next virtual-time advance and undo exactly ticks
// later, both as clock callbacks registered atomically (no other
// clock callback can run in between), so the window's virtual
// duration is bounded by construction.
//
// Driving such a window from an application goroutine — apply, some
// staging work, undo — leaves its *virtual* length at the mercy of
// real-time goroutine scheduling: virtual time crosses retransmit and
// retry deadlines at memory speed whenever the network is otherwise
// idle, so a stall between the two calls can burn an unbounded number
// of timeout budgets against the window. Scheduling the undo on the
// clock removes that race; it is the fault-injection idiom every
// seeded, engine-comparable experiment should use. CutLinkFor and
// CrashNodeFor are Window instances; callbacks must not block on
// network progress.
func (c *Cluster) Window(ticks uint64, apply, undo func()) {
	clk := c.net.Clock()
	clk.After(0, func() {
		apply()
		clk.After(ticks, undo)
	})
}

// setCrashed records node i's crash state in the control plane.
func (c *Cluster) setCrashed(i int, v bool) {
	c.cmu.Lock()
	c.crashed[i] = v
	c.cmu.Unlock()
}

// noteRecoverStart marks node i live again and expects one more
// completed recovery handshake from it; Reconfigure refuses to run
// until the handshake finishes.
func (c *Cluster) noteRecoverStart(i int) {
	c.cmu.Lock()
	c.crashed[i] = false
	c.recoverWant[i]++
	c.cmu.Unlock()
}

// installCurrentEpoch catches a restarted node's engine up to the
// epochs that committed while it was down, before crash recovery
// re-seeds its state under that placement. Protocols without a
// reconfiguration engine are permanently at epoch 0 and skip it.
func (c *Cluster) installCurrentEpoch(i int) {
	re, ok := c.nodes[i].(reconfigurable)
	if !ok {
		return
	}
	c.cmu.Lock()
	ix := c.ix
	burned := c.attempt
	c.cmu.Unlock()
	re.ReconfigEngine().InstallCurrent(ix, burned)
}

// extendUnionsLocked admits a placement's cliques and relevance sets
// into the efficiency ledger VerifyEfficiency and
// VerifyRelevanceBound check against; called with cmu held. The
// ledger is lazily created from the epoch-0 placement on the first
// reconfiguration attempt — static clusters keep the exact epoch-0
// check.
func (c *Cluster) extendUnionsLocked(sg *sharegraph.Placement) {
	if c.cliqueUnion == nil {
		c.cliqueUnion = make(map[string]map[int]bool)
		c.relUnion = make(map[string]map[int]bool)
		c.admitUnionLocked(c.pl)
	}
	c.admitUnionLocked(sg)
}

// admitUnionLocked adds one placement to the efficiency ledger.
func (c *Cluster) admitUnionLocked(pl *sharegraph.Placement) {
	for _, x := range pl.Vars() {
		cu := c.cliqueUnion[x]
		if cu == nil {
			cu = make(map[int]bool)
			c.cliqueUnion[x] = cu
		}
		for _, p := range pl.Clique(x) {
			cu[p] = true
		}
		ru := c.relUnion[x]
		if ru == nil {
			ru = make(map[int]bool)
			c.relUnion[x] = ru
		}
		for _, p := range pl.XRelevant(x) {
			ru[p] = true
		}
	}
}
