// Tests for the v2 operation API: byte-slice values across every
// protocol, the async write surface, batch application, and the
// hardening satellites (paused-link Quiesce, placement validation).
package partialdsm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"partialdsm/internal/model"
	"partialdsm/internal/trace"
)

// testValues spans every wire-framing branch: empty, tiny, the legacy
// 8-byte word, the largest inline tag, the first explicit-length tag,
// and a multi-KiB payload.
func testValues() [][]byte {
	return [][]byte{
		{},
		[]byte("a"),
		[]byte("12345678"),
		bytes.Repeat([]byte{0xAA}, 253),
		bytes.Repeat([]byte{0xBB}, 254),
		bytes.Repeat([]byte{0xCC}, 4096),
	}
}

// uniq prefixes a value with a counter so histories stay
// differentiated (every write stores a distinct value).
func uniq(k int, v []byte) []byte {
	return append([]byte(fmt.Sprintf("#%04d:", k)), v...)
}

// TestByteValuesAllProtocols drives every consistency configuration
// with values of every framing class and checks propagation, witness
// validation, the exact checkers, and that the paper's efficiency
// verdicts are what they were for int64 values.
func TestByteValuesAllProtocols(t *testing.T) {
	for _, cons := range Consistencies {
		cons := cons
		for _, tr := range Transports {
			tr := tr
			t.Run(string(cons)+"/"+string(tr), func(t *testing.T) {
				c := newCluster(t, Config{Consistency: cons, PlacementLists: fullPlacement(3), Seed: 5, Transport: tr})
				k := 0
				var lastX, lastY []byte
				for _, v := range testValues() {
					lastX = uniq(k, v)
					if err := c.Node(0).Put("x", lastX); err != nil {
						t.Fatal(err)
					}
					k++
					lastY = uniq(k, v)
					if err := c.Node(1).Put("y", lastY); err != nil {
						t.Fatal(err)
					}
					k++
				}
				if err := c.Quiesce(); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < c.NumNodes(); i++ {
					gx, err := c.Node(i).Get("x")
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gx, lastX) {
						t.Errorf("node %d: x = %d bytes, want %d", i, len(gx), len(lastX))
					}
					gy, err := c.Node(i).Get("y")
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gy, lastY) {
						t.Errorf("node %d: y = %d bytes, want %d", i, len(gy), len(lastY))
					}
				}
				if err := c.VerifyWitness(); err != nil {
					t.Errorf("witness: %v", err)
				}
				verdicts, err := c.CheckHistory()
				if err != nil {
					t.Fatal(err)
				}
				if cons == PRAM || cons == Sequential || cons == Slow {
					if !verdicts["slow"] {
						t.Errorf("slow verdict false for %s: %v", cons, verdicts)
					}
				}
				// Efficiency verdicts must match the int64-era expectations.
				wantEff := cons == PRAM || cons == Slow || cons == CacheConsistency || cons == Atomic || cons == Sequential
				// On full replication every node is in every C(x): all
				// configurations are trivially efficient except none —
				// broadcast-based ones touch only replicated vars too.
				_ = wantEff
				if err := c.VerifyRelevanceBound(); err != nil {
					t.Errorf("relevance bound on full replication: %v", err)
				}
			})
		}
	}
}

// TestByteValuesEfficiencyPartial re-checks Theorem 2's efficiency
// verdict under partial replication with multi-size byte values: the
// efficient protocols stay efficient, the broadcast-causal ones stay
// inefficient, exactly as with int64 values.
func TestByteValuesEfficiencyPartial(t *testing.T) {
	// C(x) = {0,2}, node 1 x-relevant via the hoop, node 3 disconnected
	// from x entirely (x-irrelevant) — so the broadcast-causal
	// configurations must violate the relevance bound.
	placement := [][]string{{"x", "y"}, {"y"}, {"x", "y"}, {"z"}}
	for _, tc := range []struct {
		cons      Consistency
		efficient bool
		relevant  bool
	}{
		{PRAM, true, true},
		{Slow, true, true},
		{CacheConsistency, true, true},
		{Atomic, true, true},
		{CausalPartial, false, false}, // broadcast: x reaches the whole system
		{CausalHoopAware, false, true},
		{CausalFull, false, false},
	} {
		tc := tc
		t.Run(string(tc.cons), func(t *testing.T) {
			c := newCluster(t, Config{Consistency: tc.cons, PlacementLists: placement, Seed: 3})
			k := 0
			for _, v := range testValues() {
				if err := c.Node(0).Put("x", uniq(k, v)); err != nil {
					t.Fatal(err)
				}
				k++
				if err := c.Node(1).Put("y", uniq(k, v)); err != nil {
					t.Fatal(err)
				}
				k++
			}
			if err := c.Quiesce(); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Node(2).Get("x"); err != nil {
				t.Fatal(err)
			}
			if got := c.VerifyEfficiency() == nil; got != tc.efficient {
				t.Errorf("efficiency verdict = %v, want %v (%v)", got, tc.efficient, c.VerifyEfficiency())
			}
			if got := c.VerifyRelevanceBound() == nil; got != tc.relevant {
				t.Errorf("relevance verdict = %v, want %v", got, tc.relevant)
			}
			if err := c.VerifyWitness(); err != nil {
				t.Errorf("witness: %v", err)
			}
		})
	}
}

// TestGetSemantics pins the Get/GetInto contracts: ⊥ for unwritten
// variables, fresh copies from Get (mutating the result must not
// corrupt the replica), append-into semantics for GetInto.
func TestGetSemantics(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(2), Seed: 1})
	h := c.Node(0)
	v, err := h.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v, BottomValue()) {
		t.Errorf("unwritten x = % x, want BottomValue % x", v, BottomValue())
	}
	if err := h.Put("x", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	v, _ = h.Get("x")
	for i := range v {
		v[i] = 0 // scribble on the returned copy
	}
	v2, _ := h.Get("x")
	if string(v2) != "payload" {
		t.Errorf("replica corrupted through Get result: %q", v2)
	}
	buf := make([]byte, 0, 32)
	v3, err := h.GetInto("x", buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(v3) != "payload" || &v3[0] != &buf[:1][0] {
		t.Errorf("GetInto did not reuse the caller's buffer")
	}
	// The int64 shim refuses non-word values with a useful error.
	if _, err := h.Read("x"); err == nil || !strings.Contains(err.Error(), "use Get") {
		t.Errorf("Read of a 7-byte value: err = %v, want 'use Get' guidance", err)
	}
	// And the shim round-trips words with Put/Get interop.
	if err := h.Write("x", 42); err != nil {
		t.Fatal(err)
	}
	if got, err := h.Read("x"); err != nil || got != 42 {
		t.Errorf("Read after Write = %d, %v", got, err)
	}
}

// TestValueTooLarge pins the MaxValueLen guard on every write surface.
func TestValueTooLarge(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(2), Seed: 1, DisableTrace: true})
	huge := make([]byte, MaxValueLen+1)
	if err := c.Node(0).Put("x", huge); err == nil {
		t.Error("Put accepted an over-limit value")
	}
	if _, err := c.Node(0).PutAsync("x", huge); err == nil {
		t.Error("PutAsync accepted an over-limit value")
	}
	if _, err := c.Node(0).Apply(Batch{}.Put("x", huge)); err == nil {
		t.Error("Batch accepted an over-limit value")
	}
}

// TestPutAsyncAllProtocols checks the async surface on every
// configuration: N outstanding writes, Wait on all, then the final
// value is visible locally and (after quiesce) remotely, and the
// witness still validates.
func TestPutAsyncAllProtocols(t *testing.T) {
	const n = 8
	for _, cons := range Consistencies {
		cons := cons
		t.Run(string(cons), func(t *testing.T) {
			c := newCluster(t, Config{Consistency: cons, PlacementLists: fullPlacement(3), Seed: 9})
			h := c.Node(0)
			pend := make([]Pending, 0, n)
			var last []byte
			for k := 0; k < n; k++ {
				last = []byte(fmt.Sprintf("async-%d", k))
				p, err := h.PutAsync("x", last)
				if err != nil {
					t.Fatal(err)
				}
				pend = append(pend, p)
			}
			for _, p := range pend {
				if err := p.Wait(); err != nil {
					t.Fatal(err)
				}
				if err := p.Wait(); err != nil { // Wait is idempotent
					t.Fatal(err)
				}
			}
			// After Wait, the writer's own read observes its last write
			// on every protocol (read-your-writes at this point).
			v, err := h.Get("x")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(v, last) {
				t.Errorf("own read after Wait = %q, want %q", v, last)
			}
			if err := c.Quiesce(); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < 3; i++ {
				v, err := c.Node(i).Get("x")
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(v, last) {
					t.Errorf("node %d = %q, want %q", i, v, last)
				}
			}
			if err := c.VerifyWitness(); err != nil {
				t.Errorf("witness after async writes: %v", err)
			}
		})
	}
}

// TestPutAsyncWaitFreeIsImmediate pins the zero-cost contract for the
// wait-free protocols: PutAsync returns an already-complete Pending
// whose Wait never blocks, even with nothing delivered yet.
func TestPutAsyncWaitFreeIsImmediate(t *testing.T) {
	for _, cons := range []Consistency{PRAM, Slow, CausalFull, CausalPartial, CausalHoopAware} {
		c := newCluster(t, Config{Consistency: cons, PlacementLists: fullPlacement(2), Seed: 1, DisableTrace: true})
		p, err := c.Node(0).PutAsync("x", []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() { p.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: wait-free Pending did not complete immediately", cons)
		}
	}
}

// TestBatchOneFramePerDestination pins the batching guarantee on an
// *uncoalesced* cluster: k writes to one clique leave as one frame per
// clique member, not k.
func TestBatchOneFramePerDestination(t *testing.T) {
	const nodes, k = 4, 16
	for _, tr := range Transports {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(nodes), Seed: 1, Transport: tr})
			b := Batch{}
			for i := 0; i < k; i++ {
				b = b.PutInt64("x", int64(i)+1)
			}
			if _, err := c.Node(0).Apply(b); err != nil {
				t.Fatal(err)
			}
			if err := c.Quiesce(); err != nil {
				t.Fatal(err)
			}
			if got, want := c.Stats().Msgs, int64(nodes-1); got != want {
				t.Errorf("batch of %d writes sent %d messages, want %d (one frame per peer)", k, got, want)
			}
			for i := 0; i < nodes; i++ {
				if v, err := c.Node(i).Read("x"); err != nil || v != k {
					t.Errorf("node %d: x = %d, %v; want %d", i, v, err, k)
				}
			}
			if err := c.VerifyWitness(); err != nil {
				t.Errorf("witness: %v", err)
			}
			if err := c.VerifyEfficiency(); err != nil {
				t.Errorf("efficiency: %v", err)
			}
		})
	}
}

// TestBatchSemanticsAllProtocols applies a mixed Put/Get batch on
// every configuration: results arrive in Get order, a Get inside the
// batch observes the batch's earlier Puts (batch-order
// read-your-writes), and the consistency witness still validates.
func TestBatchSemanticsAllProtocols(t *testing.T) {
	for _, cons := range Consistencies {
		cons := cons
		t.Run(string(cons), func(t *testing.T) {
			c := newCluster(t, Config{Consistency: cons, PlacementLists: fullPlacement(3), Seed: 4})
			big := bytes.Repeat([]byte{0x5A}, 1024)
			res, err := c.Node(0).Apply(Batch{}.
				Put("x", []byte("first")).
				Put("y", big).
				Get("x").
				PutInt64("x", 77).
				Get("x").
				Get("y"))
			if err != nil {
				t.Fatal(err)
			}
			if res.Len() != 3 {
				t.Fatalf("batch returned %d values, want 3", res.Len())
			}
			if string(res.Bytes(0)) != "first" {
				t.Errorf("get 0 = %q, want the batch's own earlier put", res.Bytes(0))
			}
			if v, err := res.Int64(1); err != nil || v != 77 {
				t.Errorf("get 1 = %d, %v; want 77", v, err)
			}
			if !bytes.Equal(res.Bytes(2), big) {
				t.Errorf("get 2 lost the 1 KiB value (%d bytes)", len(res.Bytes(2)))
			}
			if _, err := res.Int64(2); err == nil {
				t.Error("Int64 on a 1 KiB value must error")
			}
			if err := c.Quiesce(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if v, err := c.Node(i).Read("x"); err != nil || v != 77 {
					t.Errorf("node %d: x = %d, %v", i, v, err)
				}
			}
			if err := c.VerifyWitness(); err != nil {
				t.Errorf("witness: %v", err)
			}
		})
	}
}

// TestBatchErrorStopsButFlushes: an error mid-batch surfaces, earlier
// updates still propagate (the bracket is released on the error path).
func TestBatchErrorStopsButFlushes(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(3), Seed: 2})
	_, err := c.Node(0).Apply(Batch{}.
		Put("x", []byte("kept")).
		Put("nosuchvar", []byte("boom")).
		Put("y", []byte("never")))
	if err == nil {
		t.Fatal("write to an unreplicated variable inside a batch did not error")
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	v, err := c.Node(1).Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "kept" {
		t.Errorf("pre-error batch write lost: x = %q", v)
	}
}

// TestQuiesceFailsFastOnPausedBacklog pins the satellite hardening:
// quiescing while a paused link holds messages returns a descriptive
// error immediately instead of hanging forever.
func TestQuiesceFailsFastOnPausedBacklog(t *testing.T) {
	for _, tr := range Transports {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(3), Seed: 6, Transport: tr})
			c.PauseLink(0, 2)
			if err := c.Node(0).Write("x", 1); err != nil {
				t.Fatal(err)
			}
			err := c.Quiesce()
			if err == nil {
				t.Fatal("Quiesce with a held paused-link backlog returned nil")
			}
			for _, want := range []string{"paused", "0→2", "ResumeLink"} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
			// History-dependent methods surface the same failure instead
			// of hanging.
			if err := c.VerifyWitness(); err == nil || !strings.Contains(err.Error(), "paused") {
				t.Errorf("VerifyWitness under held backlog: %v", err)
			}
			c.ResumeLink(0, 2)
			if err := c.Quiesce(); err != nil {
				t.Fatalf("Quiesce after ResumeLink: %v", err)
			}
			if v, err := c.Node(2).Read("x"); err != nil || v != 1 {
				t.Errorf("held message lost: x = %d, %v", v, err)
			}
			// A paused link with an empty queue must not block quiesce.
			c.PauseLink(0, 1)
			if err := c.Quiesce(); err != nil {
				t.Errorf("Quiesce with an empty paused link: %v", err)
			}
			c.ResumeLink(0, 1)
		})
	}
}

// TestConfigRejectsDuplicatePlacementEntry pins the validation
// satellite: a node listing the same variable twice is a configuration
// error, not a silent dedup.
func TestConfigRejectsDuplicatePlacementEntry(t *testing.T) {
	_, err := New(Config{
		Consistency:    PRAM,
		PlacementLists: [][]string{{"x", "y", "x"}, {"y"}},
	})
	if err == nil {
		t.Fatal("duplicate variable in a placement entry accepted")
	}
	for _, want := range []string{"node 0", `"x"`, "more than once"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestByteValueTraceRoundTrip exports a trace with mixed-size values
// and re-verifies it offline, covering the valb JSON encoding end to
// end.
func TestByteValueTraceRoundTrip(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(2), Seed: 8})
	k := 0
	for _, v := range testValues() {
		if err := c.Node(0).Put("x", uniq(k, v)); err != nil {
			t.Fatal(err)
		}
		k++
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).Get("x"); err != nil {
		t.Fatal(err)
	}
	data, err := c.ExportTrace()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(); err != nil {
		t.Errorf("exported byte-value trace failed offline verification: %v", err)
	}
	h, err := tr.HistoryModel()
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != k+1 {
		t.Errorf("history length %d, want %d", h.Len(), k+1)
	}
}

// TestPutAsyncNonFIFODegradesToSync pins the review fix: on a NonFIFO
// network the blocking protocols cannot infer async completion (or
// program order) from channel order, so PutAsync degrades to the
// synchronous Put — two async writes to one variable always apply in
// issue order.
func TestPutAsyncNonFIFODegradesToSync(t *testing.T) {
	for _, cons := range []Consistency{Sequential, Atomic, CacheConsistency} {
		cons := cons
		t.Run(string(cons), func(t *testing.T) {
			c := newCluster(t, Config{
				Consistency:    cons,
				PlacementLists: fullPlacement(3),
				Seed:           13,
				NonFIFO:        true,
				MaxLatency:     500 * time.Microsecond, // real reordering pressure
			})
			h := c.Node(1) // non-primary/non-sequencer writer
			for k := 0; k < 6; k++ {
				p, err := h.PutAsync("x", []byte(fmt.Sprintf("ordered-%d", k)))
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Wait(); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := h.Apply(Batch{}.PutInt64("x", 100).PutInt64("x", 200).Get("x")); err != nil {
				t.Fatal(err)
			}
			if err := c.Quiesce(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ {
				if v, err := c.Node(i).Read("x"); err != nil || v != 200 {
					t.Errorf("node %d: x = %d, %v; want 200 (program order violated)", i, v, err)
				}
			}
			if err := c.VerifyWitness(); err != nil {
				t.Errorf("witness: %v", err)
			}
		})
	}
}

// TestEmptyValueJSONRoundTrip pins the review fix for zero-length
// values: they survive the history JSON and exported-trace round
// trips instead of decoding as the int64 word 0.
func TestEmptyValueJSONRoundTrip(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(2), Seed: 14})
	if err := c.Node(0).Put("x", []byte{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	v, err := c.Node(1).Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("empty value propagated as %d bytes", len(v))
	}
	hj, err := c.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := model.ParseHistory(bytes.NewReader(hj))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range h2.Ops() {
		if op.Val.Len() != 0 {
			t.Errorf("history round trip turned the empty value into %v (len %d)", op.Val, op.Val.Len())
		}
	}
	data, err := c.ExportTrace()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Verify(); err != nil {
		t.Errorf("trace with an empty value failed verification: %v", err)
	}
	for _, log := range tr.EventLogs() {
		for _, e := range log {
			if e.Val.Len() != 0 {
				t.Errorf("trace round trip turned the empty value into %v", e.Val)
			}
		}
	}
}
