package partialdsm

import (
	"reflect"
	"testing"
)

// TestGreedyPolicyPlan exercises the pure decision function: gains for
// hot non-members, sheds for idle replicas, ownership following the
// dominant writer, and the leave-quiet-variables-alone hysteresis.
func TestGreedyPolicyPlan(t *testing.T) {
	cur := NewPlacement(3).
		Assign(0, "x", "y", "q").
		Assign(1, "x", "y", "q").
		Assign(2, "y")
	load := AccessCounts{
		Reads: []map[string]int64{
			{"x": 5},
			{"x": 3},
			{"x": 10}, // hot non-member: gains a replica
		},
		Writes: []map[string]int64{
			{"y": 1},
			{},       // idle on y: shed
			{"y": 8}, // dominant writer: takes ownership
		},
	}
	g := &GreedyPolicy{HotThreshold: 2}
	next := g.Plan(cur, load)
	if next == nil {
		t.Fatal("Plan returned nil for a load that demands changes")
	}
	wantLists := [][]string{{"q", "x", "y"}, {"q", "x"}, {"x", "y"}}
	if got := next.Lists(); !reflect.DeepEqual(got, wantLists) {
		t.Errorf("Plan lists = %v, want %v", got, wantLists)
	}
	if got := next.Owners(); len(got) != 1 || got["y"] != 2 {
		t.Errorf("Plan owners = %v, want y pinned to 2", got)
	}

	// A zero window changes nothing.
	idle := AccessCounts{
		Reads:  make([]map[string]int64, 3),
		Writes: make([]map[string]int64, 3),
	}
	if next := g.Plan(cur, idle); next != nil {
		t.Errorf("Plan on an idle window = %v, want nil", next)
	}

	// MinTotal hysteresis: the same load below the floor is ignored.
	cold := &GreedyPolicy{MinTotal: 100, HotThreshold: 2}
	if next := cold.Plan(cur, load); next != nil {
		t.Errorf("Plan below MinTotal = %v, want nil", next)
	}
}

// TestAutoReconfigureAdapts closes the loop end to end: denied reads
// at a non-replica node are counted as demand, one policy decision
// grants the replica through a live epoch flip, and the node reads the
// migrated value.
func TestAutoReconfigureAdapts(t *testing.T) {
	c := newReconfigCluster(t, Atomic)
	defer c.Close()
	if err := c.Node(0).Write("x", 41); err != nil {
		t.Fatalf("write: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Node(2).Read("x"); err == nil {
			t.Fatal("read of x at non-replica 2 succeeded before the flip")
		}
	}
	if got := c.Stats().ReadCounts[2]["x"]; got != 3 {
		t.Fatalf("denied reads not counted: ReadCounts[2][x] = %d, want 3", got)
	}
	changed, err := c.AutoReconfigure(&GreedyPolicy{HotThreshold: 2})
	if err != nil {
		t.Fatalf("AutoReconfigure: %v", err)
	}
	if !changed {
		t.Fatal("AutoReconfigure did not flip despite hot denied demand")
	}
	if !c.Holds(2, "x") {
		t.Fatal("node 2 did not gain the x replica")
	}
	if v, err := c.Node(2).Read("x"); err != nil || v != 41 {
		t.Fatalf("gained replica reads x=%d, %v; want 41", v, err)
	}
	// The window was consumed: a second decision with no new traffic
	// leaves the placement alone.
	epoch := c.Epoch()
	if changed, err := c.AutoReconfigure(&GreedyPolicy{HotThreshold: 2}); err != nil || changed {
		t.Fatalf("idle AutoReconfigure = (%v, %v), want (false, nil)", changed, err)
	}
	if c.Epoch() != epoch {
		t.Fatalf("epoch moved on an idle decision")
	}
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("witness after policy flip: %v", err)
	}
}

// TestPolicyDriverCadence checks the virtual-time pacing: a driver
// whose interval has not elapsed refuses to decide, one whose interval
// has elapsed flips and counts it.
func TestPolicyDriverCadence(t *testing.T) {
	c := newReconfigCluster(t, PRAM)
	defer c.Close()
	if err := c.Node(0).Write("x", 7); err != nil {
		t.Fatalf("write: %v", err)
	}
	for i := 0; i < 3; i++ {
		c.Node(2).Read("x") // denied: node 2 does not hold x
	}
	pol := &GreedyPolicy{HotThreshold: 2}
	far := c.NewPolicyDriver(pol, 1<<60)
	if changed, err := far.Tick(); err != nil || changed {
		t.Fatalf("Tick before the cadence elapsed = (%v, %v), want (false, nil)", changed, err)
	}
	if far.Flips() != 0 {
		t.Fatalf("far driver flips = %d, want 0", far.Flips())
	}
	due := c.NewPolicyDriver(pol, 0)
	changed, err := due.Tick()
	if err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if !changed || due.Flips() != 1 {
		t.Fatalf("due driver: changed=%v flips=%d, want true/1", changed, due.Flips())
	}
	if !c.Holds(2, "x") {
		t.Fatal("policy flip did not grant node 2 the x replica")
	}
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("witness: %v", err)
	}
}
