package partialdsm

import (
	"errors"
	"fmt"
	"sort"

	"partialdsm/internal/sharegraph"
)

// Placement assigns each node the set of shared variables it
// replicates and may access (the paper's X_i sets). Build one with
// NewPlacement and Assign, or convert the raw per-node lists form with
// PlacementFromLists:
//
//	pl := partialdsm.NewPlacement(3).
//		Assign(0, "x", "y").
//		Assign(1, "x").
//		Assign(2, "y")
//
// A Placement is a description, not a live object: Config.Placement
// captures the epoch-0 placement at New, and Cluster.Reconfigure
// installs successor placements at runtime. Validation (empty or
// duplicate variable names) happens at those call sites, so Assign
// never fails.
type Placement struct {
	lists  [][]string
	owners map[string]int // explicit owner pins (SetOwner)
}

// NewPlacement returns an empty placement over numNodes nodes.
func NewPlacement(numNodes int) *Placement {
	return &Placement{lists: make([][]string, numNodes)}
}

// Assign adds variables to node's replica set and returns the
// placement for chaining. It panics when node is out of range,
// mirroring a slice access.
func (p *Placement) Assign(node int, vars ...string) *Placement {
	if node < 0 || node >= len(p.lists) {
		panic(fmt.Sprintf("partialdsm: node %d out of range [0,%d)", node, len(p.lists)))
	}
	p.lists[node] = append(p.lists[node], vars...)
	return p
}

// SetOwner pins variable x's owner — the node acting as its
// per-variable primary (Atomic) or sequencer (CacheConsistency) — to a
// specific replica, and returns the placement for chaining. Without a
// pin the owner defaults to the lowest-numbered node replicating x.
// Ownerless protocols ignore pins. Validation (the owner must
// replicate x) happens where the placement is installed, like Assign's.
func (p *Placement) SetOwner(x string, node int) *Placement {
	if node < 0 || node >= len(p.lists) {
		panic(fmt.Sprintf("partialdsm: node %d out of range [0,%d)", node, len(p.lists)))
	}
	if p.owners == nil {
		p.owners = make(map[string]int)
	}
	p.owners[x] = node
	return p
}

// Owners returns a copy of the explicit owner pins; variables left on
// the default owner are omitted.
func (p *Placement) Owners() map[string]int {
	out := make(map[string]int, len(p.owners))
	for x, node := range p.owners {
		out[x] = node
	}
	return out
}

// PlacementFromLists converts the raw per-node lists form — the
// pre-v8 placement type, still accepted through the deprecated
// Config.PlacementLists field — into a Placement. The lists are
// deep-copied.
func PlacementFromLists(lists [][]string) *Placement {
	p := NewPlacement(len(lists))
	for node, vars := range lists {
		p.Assign(node, vars...)
	}
	return p
}

// NumNodes returns the number of nodes the placement spans.
func (p *Placement) NumNodes() int { return len(p.lists) }

// Lists returns the per-node variable lists as a deep copy, the
// inverse of PlacementFromLists.
func (p *Placement) Lists() [][]string {
	out := make([][]string, len(p.lists))
	for i, vars := range p.lists {
		out[i] = append([]string(nil), vars...)
	}
	return out
}

// build validates the placement and converts it to the internal
// share-graph form — the single conversion point behind both Config
// placement fields and Cluster.Reconfigure.
func (p *Placement) build() (*sharegraph.Placement, error) {
	if p == nil || len(p.lists) == 0 {
		return nil, errors.New("partialdsm: config needs a placement with at least one node")
	}
	pl := sharegraph.NewPlacement(len(p.lists))
	for node, vars := range p.lists {
		seen := make(map[string]bool, len(vars))
		for _, v := range vars {
			if v == "" {
				return nil, fmt.Errorf("partialdsm: node %d has an empty variable name", node)
			}
			if seen[v] {
				return nil, fmt.Errorf("partialdsm: node %d lists variable %q more than once in its placement entry", node, v)
			}
			seen[v] = true
		}
		pl.Assign(node, vars...)
	}
	owned := make([]string, 0, len(p.owners))
	for x := range p.owners {
		owned = append(owned, x)
	}
	sort.Strings(owned)
	for _, x := range owned {
		node := p.owners[x]
		if pl.VarID(x) < 0 {
			return nil, fmt.Errorf("partialdsm: owner pinned for unknown variable %q", x)
		}
		if !pl.Holds(node, x) {
			return nil, fmt.Errorf("partialdsm: owner %d of variable %q does not replicate it", node, x)
		}
		pl.SetOwner(x, node)
	}
	return pl, nil
}

// placement resolves the Config's placement fields: the first-class
// Config.Placement, or the deprecated raw-lists Config.PlacementLists.
func (cfg Config) placement() (*Placement, error) {
	switch {
	case cfg.Placement != nil && cfg.PlacementLists != nil:
		return nil, errors.New("partialdsm: set Config.Placement or the deprecated Config.PlacementLists, not both")
	case cfg.Placement != nil:
		return cfg.Placement, nil
	case cfg.PlacementLists != nil:
		return PlacementFromLists(cfg.PlacementLists), nil
	}
	return nil, errors.New("partialdsm: config needs a placement with at least one node")
}
