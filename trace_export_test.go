package partialdsm

import (
	"bytes"
	"errors"
	"testing"

	"partialdsm/internal/trace"
)

func TestExportTraceRoundTrip(t *testing.T) {
	for _, cons := range []Consistency{PRAM, Slow, CacheConsistency, CausalPartial, Atomic} {
		cons := cons
		t.Run(string(cons), func(t *testing.T) {
			t.Parallel()
			c := newCluster(t, Config{Consistency: cons, PlacementLists: fullPlacement(3), Seed: 30})
			runWorkload(t, c, 10, 11)
			data, err := c.ExportTrace()
			if err != nil {
				t.Fatal(err)
			}
			tr, err := trace.Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if tr.Consistency != string(cons) {
				t.Errorf("consistency = %q", tr.Consistency)
			}
			if err := tr.Verify(); err != nil {
				t.Fatalf("exported trace fails its own witness: %v", err)
			}
			// The embedded history must match the live one.
			h1, err := c.History()
			if err != nil {
				t.Fatal(err)
			}
			h2, err := tr.HistoryModel()
			if err != nil {
				t.Fatal(err)
			}
			if h1.Len() != h2.Len() {
				t.Errorf("history shape changed: %d vs %d ops", h1.Len(), h2.Len())
			}
		})
	}
}

func TestExportTraceWithoutTrace(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(2), DisableTrace: true})
	if _, err := c.ExportTrace(); !errors.Is(err, ErrNoTrace) {
		t.Errorf("ExportTrace = %v, want ErrNoTrace", err)
	}
}
