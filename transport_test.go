package partialdsm

import (
	"strings"
	"testing"
)

// TestAllProtocolsOnEveryTransport drives every consistency
// configuration through a concurrent random workload on each
// transport and validates the witness — the cluster-level counterpart
// of the netsim conformance suite: no protocol may observe a semantic
// difference between delivery engines.
func TestAllProtocolsOnEveryTransport(t *testing.T) {
	for _, tr := range Transports {
		tr := tr
		for _, cons := range Consistencies {
			cons := cons
			t.Run(string(tr)+"/"+string(cons), func(t *testing.T) {
				c := newCluster(t, Config{
					Consistency:    cons,
					PlacementLists: hoopPlacement(),
					Seed:           3,
					Transport:      tr,
				})
				runWorkload(t, c, 40, 7)
				if err := c.VerifyWitness(); err != nil {
					t.Fatalf("witness violated on %s transport: %v", tr, err)
				}
			})
		}
	}
}

// TestEfficiencyTheoremOnSharded re-checks Theorem 2 on the sharded
// engine: the efficiency property is about which messages cross the
// network, so it must be transport-independent.
func TestEfficiencyTheoremOnSharded(t *testing.T) {
	for _, cons := range []Consistency{PRAM, Slow} {
		cons := cons
		t.Run(string(cons), func(t *testing.T) {
			cfg := Config{Consistency: cons, PlacementLists: hoopPlacement(), Seed: 5, Transport: TransportSharded}
			if cons == Slow {
				cfg.NonFIFO = true
			}
			c := newCluster(t, cfg)
			runWorkload(t, c, 60, 11)
			if err := c.VerifyEfficiency(); err != nil {
				t.Fatalf("Theorem 2 violated on sharded transport: %v", err)
			}
		})
	}
}

// TestMessageCountsMatchAcrossTransports checks the paper-level
// invariant directly: a deterministic workload produces byte-for-byte
// identical traffic stats on both engines.
func TestMessageCountsMatchAcrossTransports(t *testing.T) {
	stats := make(map[Transport]Stats)
	for _, tr := range Transports {
		c := newCluster(t, Config{Consistency: PRAM, PlacementLists: hoopPlacement(), Seed: 9, Transport: tr})
		for k := 0; k < 25; k++ {
			if err := c.Node(0).Write("x", int64(k)+1); err != nil {
				t.Fatal(err)
			}
			if err := c.Node(1).Write("y", int64(k)+1); err != nil {
				t.Fatal(err)
			}
		}
		c.Quiesce()
		stats[tr] = c.Stats()
	}
	a, b := stats[TransportClassic], stats[TransportSharded]
	if a.Msgs != b.Msgs || a.CtrlBytes != b.CtrlBytes || a.DataBytes != b.DataBytes {
		t.Fatalf("traffic diverged: classic %+v, sharded %+v", a, b)
	}
}

// TestTransportWorkersKnob pins the TransportWorkers plumbing.
func TestTransportWorkersKnob(t *testing.T) {
	c := newCluster(t, Config{
		Consistency:      PRAM,
		PlacementLists:   hoopPlacement(),
		Transport:        TransportSharded,
		TransportWorkers: 1,
	})
	runWorkload(t, c, 20, 1)
	if err := c.VerifyWitness(); err != nil {
		t.Fatal(err)
	}
}

// TestUnknownTransportRejected checks the error path names the
// available engines.
func TestUnknownTransportRejected(t *testing.T) {
	_, err := New(Config{Consistency: PRAM, PlacementLists: hoopPlacement(), Transport: "carrier-pigeon"})
	if err == nil {
		t.Fatal("unknown transport must be rejected")
	}
	if !strings.Contains(err.Error(), "sharded") {
		t.Errorf("error should list available transports, got %v", err)
	}
}

// TestPauseLinkOnSharded checks the LinkController plumbing through
// the cluster facade on the sharded engine.
func TestPauseLinkOnSharded(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: hoopPlacement(), Seed: 2, Transport: TransportSharded})
	c.PauseLink(0, 2)
	if err := c.Node(0).Write("x", 41); err != nil {
		t.Fatal(err)
	}
	// Node 1 is not on the paused link; its y updates still flow.
	if err := c.Node(1).Write("y", 17); err != nil {
		t.Fatal(err)
	}
	c.ResumeLink(0, 2)
	c.Quiesce()
	v, err := c.Node(2).Read("x")
	if err != nil {
		t.Fatal(err)
	}
	if v != 41 {
		t.Fatalf("x = %d at node 2 after resume, want 41", v)
	}
}
