// Cluster-level tests for the virtual-time latency mode
// (Config.VirtualLatency): the wall-clock Quiesce/Close regression the
// mode fixes, byte-identical message traces across engines and runs,
// protocol correctness under simulated delay on all eight
// configurations, delay-histogram plumbing, and the hardened latency
// validation surfaced through Cluster.New.
package partialdsm

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestVirtualLatencyQuiesceWallClock is the headline bugfix
// regression: quiescing a MaxLatency: 50ms cluster used to wall-block
// behind in-flight real sleeps; under virtual latency it must drain
// via the clock in (micro)seconds-of-nothing — the budget below is one
// half of a single sleep, far under the many sleeps a burst implies.
func TestVirtualLatencyQuiesceWallClock(t *testing.T) {
	for _, tr := range Transports {
		t.Run(string(tr), func(t *testing.T) {
			c := newCluster(t, Config{
				Consistency: PRAM, PlacementLists: fullPlacement(4),
				MaxLatency: 50 * time.Millisecond, VirtualLatency: true,
				Seed: 1, Transport: tr,
			})
			h := c.Node(0)
			for k := int64(1); k <= 64; k++ {
				if err := h.Write("x", k); err != nil {
					t.Fatal(err)
				}
			}
			start := time.Now()
			if err := c.Quiesce(); err != nil {
				t.Fatal(err)
			}
			// Under real sleeps this drain pays ~64 × 25ms per pair
			// (≈1.6s); virtual mode takes microseconds. The 1s bound
			// separates the two without flaking on stalled CI runners.
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Fatalf("Quiesce took %v wall time on a 50ms-latency virtual cluster", elapsed)
			}
			for i := 1; i < c.NumNodes(); i++ {
				v, err := c.Node(i).Read("x")
				if err != nil {
					t.Fatal(err)
				}
				if v != 64 {
					t.Fatalf("node %d read %d after quiesce, want 64", i, v)
				}
			}
			start = time.Now()
			c.Close()
			if elapsed := time.Since(start); elapsed > time.Second {
				t.Fatalf("Close took %v wall time on a 50ms-latency virtual cluster", elapsed)
			}
		})
	}
}

// TestVirtualLatencyTraceIdenticalAcrossTransports locks in the
// determinism acceptance criterion: the same seed yields byte-identical
// message traces — same sends, same order, same payload bytes — across
// the classic and sharded engines and across repeated runs, for every
// distribution, under a phase-structured driver.
func TestVirtualLatencyTraceIdenticalAcrossTransports(t *testing.T) {
	registerRecordingTransports()
	placement := [][]string{{"x", "y"}, {"x", "y"}, {"x", "y"}, {"x", "y"}}
	drive := func(t *testing.T, c *Cluster) {
		h0, h1 := c.Node(0), c.Node(1)
		for k := int64(1); k <= 6; k++ {
			if err := h0.Write("x", k); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Quiesce(); err != nil {
			t.Fatal(err)
		}
		for k := int64(1); k <= 4; k++ {
			if err := h1.Write("y", k); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Quiesce(); err != nil {
			t.Fatal(err)
		}
	}
	for _, dist := range []LatencyDist{LatencyUniform, LatencyFixed, LatencyHeavyTail} {
		t.Run(string(dist), func(t *testing.T) {
			traces := make(map[string][]sentMsg)
			for _, kind := range []string{"rec-classic", "rec-sharded"} {
				for rep := 0; rep < 3; rep++ {
					c := newCluster(t, Config{
						Consistency: PRAM, PlacementLists: placement, Seed: 7,
						MaxLatency: time.Millisecond, VirtualLatency: true, LatencyDist: dist,
						Transport: Transport(kind),
					})
					rt := lastRecording()
					drive(t, c)
					if err := c.VerifyWitness(); err != nil {
						t.Fatalf("%s rep %d: witness: %v", kind, rep, err)
					}
					traces[fmt.Sprintf("%s/%d", kind, rep)] = rt.snapshot()
				}
			}
			ref := traces["rec-classic/0"]
			if len(ref) == 0 {
				t.Fatal("no messages recorded")
			}
			for key, trace := range traces {
				if len(trace) != len(ref) {
					t.Fatalf("%s: %d messages, reference has %d", key, len(trace), len(ref))
				}
				for i := range ref {
					if trace[i].from != ref[i].from || trace[i].to != ref[i].to || trace[i].kind != ref[i].kind ||
						!bytes.Equal(trace[i].payload, ref[i].payload) {
						t.Fatalf("%s: message %d diverges from reference:\n got %d→%d %s % x\nwant %d→%d %s % x",
							key, i,
							trace[i].from, trace[i].to, trace[i].kind, trace[i].payload,
							ref[i].from, ref[i].to, ref[i].kind, ref[i].payload)
					}
				}
			}
		})
	}
}

// TestVirtualLatencyAllProtocols runs every consistency configuration
// on both engines under 1ms virtual latency: propagation, witness
// verification and (for PRAM/Slow) the Theorem 2 efficiency check must
// all hold on the virtual delivery schedule.
func TestVirtualLatencyAllProtocols(t *testing.T) {
	for _, cons := range Consistencies {
		for _, tr := range Transports {
			cons, tr := cons, tr
			t.Run(string(cons)+"/"+string(tr), func(t *testing.T) {
				t.Parallel()
				c := newCluster(t, Config{
					Consistency: cons, PlacementLists: fullPlacement(3),
					MaxLatency: time.Millisecond, VirtualLatency: true,
					Seed: 4, Transport: tr,
				})
				for k := int64(1); k <= 5; k++ {
					if err := c.Node(0).Write("x", k); err != nil {
						t.Fatal(err)
					}
				}
				if err := c.Quiesce(); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < c.NumNodes(); i++ {
					v, err := c.Node(i).Read("x")
					if err != nil {
						t.Fatal(err)
					}
					if v != 5 {
						t.Fatalf("node %d read %d, want 5", i, v)
					}
				}
				if err := c.VerifyWitness(); err != nil {
					t.Fatalf("witness under virtual latency: %v", err)
				}
				if cons == PRAM || cons == Slow {
					if err := c.VerifyEfficiency(); err != nil {
						t.Fatalf("Theorem 2 under virtual latency: %v", err)
					}
				}
			})
		}
	}
}

// TestVirtualLatencyDelayStats checks the Stats plumbing of the
// per-message delivery-delay histogram.
func TestVirtualLatencyDelayStats(t *testing.T) {
	c := newCluster(t, Config{
		Consistency: PRAM, PlacementLists: fullPlacement(4),
		MaxLatency: time.Millisecond, VirtualLatency: true, LatencyDist: LatencyFixed,
		Seed: 2, DisableTrace: true,
	})
	for k := int64(1); k <= 10; k++ {
		if err := c.Node(0).Write("x", k); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.DelaySamples != st.Msgs || st.DelaySamples == 0 {
		t.Fatalf("delay samples = %d, want one per message (%d)", st.DelaySamples, st.Msgs)
	}
	if st.DelayMean != time.Millisecond || st.DelayMax != time.Millisecond {
		t.Fatalf("fixed 1ms distribution reported mean %v max %v", st.DelayMean, st.DelayMax)
	}
	if st.DelayP99 == 0 || st.DelayP99 > st.DelayMax {
		t.Fatalf("p99 %v out of range (max %v)", st.DelayP99, st.DelayMax)
	}

	// The real-sleep mode records no virtual delays.
	real := newCluster(t, Config{
		Consistency: PRAM, PlacementLists: fullPlacement(2),
		MaxLatency: 50 * time.Microsecond, Seed: 2, DisableTrace: true,
	})
	if err := real.Node(0).Write("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := real.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if st := real.Stats(); st.DelaySamples != 0 {
		t.Fatalf("real-sleep mode recorded %d delay samples", st.DelaySamples)
	}
}

// TestVirtualLatencyConfigValidation checks Cluster.New returns
// descriptive errors — not panics — for the latency misconfigurations
// the netsim layer now rejects, and accepts the extreme-but-valid
// MaxLatency that used to overflow the rng draw.
func TestVirtualLatencyConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{Consistency: PRAM, PlacementLists: fullPlacement(2), Seed: 1}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"negative-latency", func(c *Config) { c.MaxLatency = -time.Millisecond }, "negative"},
		{"dist-without-virtual", func(c *Config) { c.LatencyDist = LatencyFixed }, "VirtualLatency"},
		{"unknown-dist", func(c *Config) { c.VirtualLatency = true; c.LatencyDist = "zipf" }, "unknown"},
		{"bad-matrix", func(c *Config) {
			c.VirtualLatency = true
			c.LatencyDist = LatencyMatrix
			c.LatencyMatrix = [][]time.Duration{{0}}
		}, "rows"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			c, err := New(cfg)
			if err == nil {
				c.Close()
				t.Fatalf("New accepted invalid latency config")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// MaxInt64 virtual latency: valid, deterministic, drains instantly.
	c := newCluster(t, Config{
		Consistency: PRAM, PlacementLists: fullPlacement(2),
		MaxLatency: time.Duration(math.MaxInt64), VirtualLatency: true, Seed: 1,
	})
	if err := c.Node(0).Write("x", 9); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Node(1).Read("x"); err != nil || v != 9 {
		t.Fatalf("read %d, %v after MaxInt64-latency quiesce", v, err)
	}

	// A per-link matrix end to end: the slow link's messages arrive,
	// the zero-latency links too.
	mc := newCluster(t, Config{
		Consistency: PRAM, PlacementLists: fullPlacement(3),
		VirtualLatency: true, LatencyDist: LatencyMatrix,
		LatencyMatrix: [][]time.Duration{
			{0, time.Second, 0},
			{0, 0, time.Millisecond},
			{0, 0, 0},
		},
		Seed: 3,
	})
	if err := mc.Node(0).Write("x", 5); err != nil {
		t.Fatal(err)
	}
	if err := mc.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if v, err := mc.Node(i).Read("x"); err != nil || v != 5 {
			t.Fatalf("node %d read %d, %v under matrix latency", i, v, err)
		}
	}
}

// TestParseLatencyDistFlag pins the shared CLI flag parser: empty
// selects uniform, named distributions resolve, matrix and typos are
// rejected with the supported list in the message.
func TestParseLatencyDistFlag(t *testing.T) {
	if d, err := ParseLatencyDistFlag(""); err != nil || d != LatencyUniform {
		t.Errorf(`ParseLatencyDistFlag("") = %q, %v; want uniform`, d, err)
	}
	for _, name := range []string{"uniform", "fixed", "heavytail"} {
		if d, err := ParseLatencyDistFlag(name); err != nil || string(d) != name {
			t.Errorf("ParseLatencyDistFlag(%q) = %q, %v", name, d, err)
		}
	}
	if _, err := ParseLatencyDistFlag("zipf"); err == nil || !strings.Contains(err.Error(), "uniform") {
		t.Errorf("ParseLatencyDistFlag(zipf) = %v, want error listing the distributions", err)
	}
	if _, err := ParseLatencyDistFlag("matrix"); err == nil || !strings.Contains(err.Error(), "Config.LatencyMatrix") {
		t.Errorf("ParseLatencyDistFlag(matrix) = %v, want error explaining the per-link matrix constraint", err)
	}
}

// TestVirtualLatencyPausedQuiesceFailsFast checks the paused-backlog
// fail-fast path on the virtual delivery schedule: messages heading
// into a paused link (scheduled or parked) are reported instead of
// hanging Quiesce forever.
func TestVirtualLatencyPausedQuiesceFailsFast(t *testing.T) {
	for _, tr := range Transports {
		t.Run(string(tr), func(t *testing.T) {
			c := newCluster(t, Config{
				Consistency: PRAM, PlacementLists: [][]string{{"x"}, {"x"}},
				MaxLatency: time.Millisecond, VirtualLatency: true,
				Seed: 6, Transport: tr,
			})
			c.PauseLink(0, 1)
			if err := c.Node(0).Write("x", 1); err != nil {
				t.Fatal(err)
			}
			// Let the pending deadline fire and park so the backlog is
			// observable regardless of scheduling.
			deadline := time.Now().Add(2 * time.Second)
			for {
				err := c.Quiesce()
				if err != nil {
					if !strings.Contains(err.Error(), "paused") {
						t.Fatalf("unexpected quiesce error: %v", err)
					}
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("Quiesce never failed fast on a paused virtual backlog")
				}
				time.Sleep(100 * time.Microsecond)
			}
			c.ResumeLink(0, 1)
			if err := c.Quiesce(); err != nil {
				t.Fatal(err)
			}
			if v, err := c.Node(1).Read("x"); err != nil || v != 1 {
				t.Fatalf("read %d, %v after resume", v, err)
			}
		})
	}
}

// TestVirtualLatencyWithCoalescing combines the two users of the
// virtual clock — flush deadlines and delivery deadlines — on one
// timeline: a coalescing writer goes silent and a polling reader must
// still observe the value (flush timer fires, then the flushed frame's
// delivery deadline), on both engines.
func TestVirtualLatencyWithCoalescing(t *testing.T) {
	for _, tr := range Transports {
		t.Run(string(tr), func(t *testing.T) {
			c := newCluster(t, Config{
				Consistency: PRAM, PlacementLists: fullPlacement(3),
				MaxLatency: time.Millisecond, VirtualLatency: true,
				CoalesceBatch: 16, CoalesceFlushTicks: 4,
				Seed: 9, Transport: tr,
			})
			if err := c.Node(0).Write("x", 42); err != nil {
				t.Fatal(err)
			}
			pollUntil(t, c.Node(1), "x", 42)
			pollUntil(t, c.Node(2), "x", 42)
			if err := c.Quiesce(); err != nil {
				t.Fatal(err)
			}
			if err := c.VerifyWitness(); err != nil {
				t.Fatalf("witness: %v", err)
			}
		})
	}
}

// TestVirtualLatencyConcurrentWorkload stresses the virtual schedule
// with the concurrent multi-writer workload used across the suite —
// correctness (witness) must hold even though trace determinism only
// applies to phase-structured drivers.
func TestVirtualLatencyConcurrentWorkload(t *testing.T) {
	for _, tr := range Transports {
		t.Run(string(tr), func(t *testing.T) {
			c := newCluster(t, Config{
				Consistency: PRAM, PlacementLists: fullPlacement(4),
				MaxLatency: 200 * time.Microsecond, VirtualLatency: true,
				Seed: 11, Transport: tr,
			})
			var wg sync.WaitGroup
			for i := 0; i < c.NumNodes(); i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					h := c.Node(i)
					for k := 0; k < 40; k++ {
						if err := h.Write("x", int64(i)*1000+int64(k)+1); err != nil {
							t.Errorf("node %d: %v", i, err)
							return
						}
						if _, err := h.Read("y"); err != nil {
							t.Errorf("node %d: %v", i, err)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			if err := c.Quiesce(); err != nil {
				t.Fatal(err)
			}
			if err := c.VerifyWitness(); err != nil {
				t.Fatalf("witness: %v", err)
			}
			if err := c.VerifyEfficiency(); err != nil {
				t.Fatalf("efficiency: %v", err)
			}
		})
	}
}
