package partialdsm

import (
	"errors"
	"strings"
	"testing"

	"partialdsm/internal/netsim"
)

// TestClusterFaultDropStatsAndQuiesce exercises the facade's seeded
// loss injection on a wait-free protocol: with every message dropped,
// Quiesce must still complete (losses are accounted, not parked) and
// Stats must report the drops.
func TestClusterFaultDropStatsAndQuiesce(t *testing.T) {
	c := newCluster(t, Config{
		Consistency: PRAM, PlacementLists: fullPlacement(3),
		VirtualLatency: true, FaultDrop: 1, FaultSeed: 5,
	})
	for k := int64(1); k <= 10; k++ {
		if err := c.Node(0).Write("x", k); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("Quiesce under total loss: %v", err)
	}
	if v, err := c.Node(1).Read("x"); err != nil || v != Bottom {
		t.Fatalf("node 1 read %d, %v; want Bottom (all updates dropped)", v, err)
	}
	if got := c.Stats().Faults["drop"]; got == 0 {
		t.Fatalf("Stats.Faults[drop] = %d, want > 0", got)
	}
}

// TestClusterReliableRestoresBlockingProtocolUnderFaults runs a
// blocking protocol — which hangs on a lossy network, its ordering
// round trips never completing — over the ack/retransmit layer and
// verifies both liveness and its consistency witness.
func TestClusterReliableRestoresBlockingProtocolUnderFaults(t *testing.T) {
	c := newCluster(t, Config{
		Consistency: Sequential, PlacementLists: fullPlacement(3),
		VirtualLatency: true,
		FaultDrop:      0.2, FaultDup: 0.2, FaultSeed: 7,
		Reliable: true,
	})
	for k := int64(1); k <= 30; k++ {
		for i := 0; i < c.NumNodes(); i++ {
			if err := c.Node(i).Write("x", int64(i)*100+k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("witness under recovered faults: %v", err)
	}
	s := c.Stats()
	if s.Faults["drop"] == 0 || s.Faults["dup"] == 0 {
		t.Fatalf("faults not injected: %v", s.Faults)
	}
	if s.Retransmits == 0 || s.DupsSuppressed == 0 || s.AcksSent == 0 {
		t.Fatalf("no recovery work recorded: %+v", s)
	}
	if s.Abandoned != 0 {
		t.Fatalf("Abandoned = %d on a partition-free run, want 0", s.Abandoned)
	}
}

// TestClusterAtomicDupSafe pins the atomicreg duplication fix: with
// every message duplicated, write requests must not be applied twice
// and acks must not double-count, so the run stays atomic and no node
// reports a dropped frame.
func TestClusterAtomicDupSafe(t *testing.T) {
	c := newCluster(t, Config{
		Consistency: Atomic, PlacementLists: fullPlacement(3),
		VirtualLatency: true, FaultDup: 1, FaultSeed: 3,
	})
	for k := int64(1); k <= 5; k++ {
		if err := c.Node(0).Write("x", k); err != nil {
			t.Fatal(err)
		}
		if v, err := c.Node(1).Read("x"); err != nil || v != k {
			t.Fatalf("node 1 read %d, %v after write %d", v, err, k)
		}
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("Quiesce (a dropped-frame fault would surface here): %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil: duplicated frames must be absorbed", err)
	}
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("atomic witness under duplication: %v", err)
	}
	if got := c.Stats().Faults["dup"]; got == 0 {
		t.Fatalf("Stats.Faults[dup] = %d, want > 0", got)
	}
}

// TestClusterErrReportsDroppedFrame verifies the per-node fail-fast
// path: a frame the protocol cannot process is reported through
// Cluster.Err and fails the next Quiesce instead of panicking the
// delivery goroutine.
func TestClusterErrReportsDroppedFrame(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(2), VirtualLatency: true})
	c.net.Send(netsim.Message{From: 0, To: 1, Kind: "bogus.kind", Payload: []byte{1, 2, 3}})
	c.net.Quiesce()
	err := c.Err()
	if err == nil {
		t.Fatal("Err() = nil after an unprocessable frame")
	}
	if !strings.Contains(err.Error(), "node 1 dropped a frame") {
		t.Fatalf("Err() = %v, want the dropping node named", err)
	}
	if qerr := c.Quiesce(); qerr == nil {
		t.Fatal("Quiesce = nil, want fail-fast with the recorded fault")
	}
}

// TestClusterCutHealCrashRestart walks the hard-fault surface on PRAM:
// a cut link loses (not parks) messages, healing restores flow without
// replay, and a crash/restart cycle re-learns the wiped replicas from
// the live peers' snapshots before new traffic resumes.
func TestClusterCutHealCrashRestart(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(3), VirtualLatency: true})
	read := func(node int, want int64, what string) {
		t.Helper()
		if v, err := c.Node(node).Read("x"); err != nil || v != want {
			t.Fatalf("%s: node %d read %d, %v; want %d", what, node, v, err, want)
		}
	}

	c.CutLink(0, 1)
	if err := c.Node(0).Write("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	read(1, Bottom, "across cut link")
	read(2, 1, "unaffected link")

	c.HealLink(0, 1)
	if err := c.Node(0).Write("x", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	read(1, 2, "after heal (no replay of the lost write)")

	if err := c.CrashNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Node(0).Write("x", 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	read(1, 3, "recovered the write missed while crashed")
	if err := c.Node(0).Write("x", 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	read(1, 4, "rejoined after restart")

	s := c.Stats()
	if s.Faults["partition"] == 0 || s.Faults["crash"] == 0 {
		t.Fatalf("hard faults not recorded: %v", s.Faults)
	}
	if s.Recoveries != 1 || s.RecoveryMsgs == 0 {
		t.Fatalf("recovery not accounted: Recoveries=%d RecoveryMsgs=%d", s.Recoveries, s.RecoveryMsgs)
	}
}

// TestClusterCrashRecoverAllProtocols drives the crash → restart →
// recover cycle on every protocol and both transports: the write the
// crashed node missed must be readable after its rejoin (fetched from
// the peers' snapshots, not from new traffic), subsequent traffic must
// flow, and the protocol's own witness must validate across the
// recovery epoch.
func TestClusterCrashRecoverAllProtocols(t *testing.T) {
	for _, tr := range Transports {
		for _, cons := range Consistencies {
			t.Run(string(tr)+"/"+string(cons), func(t *testing.T) {
				c := newCluster(t, Config{
					Consistency: cons, PlacementLists: fullPlacement(3),
					Transport: tr, VirtualLatency: true, Seed: 23,
				})
				step := func(err error) {
					t.Helper()
					if err != nil {
						t.Fatal(err)
					}
				}
				read := func(node int, want int64, what string) {
					t.Helper()
					if v, err := c.Node(node).Read("x"); err != nil || v != want {
						t.Fatalf("%s: node %d read %d, %v; want %d", what, node, v, err, want)
					}
				}
				step(c.Node(0).Write("x", 1))
				step(c.Quiesce())
				step(c.CrashNode(1))
				step(c.Node(0).Write("x", 2))
				step(c.Quiesce())
				step(c.RestartNode(1))
				step(c.Quiesce())
				read(1, 2, "pre-restart write recovered from peers")
				step(c.Node(0).Write("x", 3))
				step(c.Quiesce())
				read(1, 3, "traffic flows after rejoin")
				if err := c.VerifyWitness(); err != nil {
					t.Fatalf("witness across the recovery epoch: %v", err)
				}
				if s := c.Stats(); s.Recoveries != 1 || s.RecoveryMsgs == 0 {
					t.Fatalf("recovery not accounted: Recoveries=%d RecoveryMsgs=%d", s.Recoveries, s.RecoveryMsgs)
				}
			})
		}
	}
}

// TestClusterRestartInsidePartition restarts a node whose snapshot
// peers are unreachable behind cut links: recovery must not wedge the
// cluster — the snapshot requests retry on the virtual clock, and once
// the partition heals the rejoin completes with the pre-crash value.
func TestClusterRestartInsidePartition(t *testing.T) {
	c := newCluster(t, Config{
		Consistency: PRAM, PlacementLists: fullPlacement(3),
		VirtualLatency: true, Seed: 31,
	})
	step := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	step(c.Node(0).Write("x", 1))
	step(c.Quiesce())
	step(c.CrashNode(1))
	step(c.Node(0).Write("x", 2))
	step(c.Quiesce())
	// Cut node 1 off from both peers in both directions, then restart
	// it inside the partition: the snapshot requests are lost.
	for _, p := range []int{0, 2} {
		c.CutLink(1, p)
		c.CutLink(p, 1)
	}
	step(c.RestartNode(1))
	if v, err := c.Node(1).Read("x"); err != nil || v != Bottom {
		t.Fatalf("node 1 inside partition read %d, %v; want Bottom (snapshots lost)", v, err)
	}
	// Heal before the retry budget is exhausted and let the retried
	// handshake complete.
	for _, p := range []int{0, 2} {
		c.HealLink(1, p)
		c.HealLink(p, 1)
	}
	step(c.Quiesce())
	if v, err := c.Node(1).Read("x"); err != nil || v != 2 {
		t.Fatalf("node 1 after heal read %d, %v; want 2 (retried snapshot adopted)", v, err)
	}
	if s := c.Stats(); s.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", s.Recoveries)
	}
}

// TestClusterOpDeadlineFailsFast pins the bounded-blocking contract:
// with Config.OpDeadlineTicks set, a blocking protocol's round trip
// lost to an unhealed cut fails fast with ErrOpDeadline — and records
// the fault — instead of hanging the application goroutine forever.
func TestClusterOpDeadlineFailsFast(t *testing.T) {
	for _, cons := range []Consistency{Sequential, Atomic, CacheConsistency} {
		t.Run(string(cons), func(t *testing.T) {
			c := newCluster(t, Config{
				Consistency: cons, PlacementLists: fullPlacement(2),
				VirtualLatency: true, OpDeadlineTicks: 1 << 12,
			})
			// Requests from node 1 toward its sequencer/primary (node
			// 0, the lowest clique member) are lost on the cut link.
			c.CutLink(1, 0)
			err := c.Node(1).Write("x", 1)
			if !errors.Is(err, ErrOpDeadline) {
				t.Fatalf("Write over a cut link: %v, want ErrOpDeadline", err)
			}
			if cons == Atomic {
				if _, err := c.Node(1).Read("x"); !errors.Is(err, ErrOpDeadline) {
					t.Fatalf("Read over a cut link: %v, want ErrOpDeadline", err)
				}
			}
			if c.Err() == nil {
				t.Fatal("Err() = nil, want the deadline fault recorded")
			}
		})
	}
}
