package partialdsm

import (
	"strings"
	"testing"

	"partialdsm/internal/netsim"
)

// TestClusterFaultDropStatsAndQuiesce exercises the facade's seeded
// loss injection on a wait-free protocol: with every message dropped,
// Quiesce must still complete (losses are accounted, not parked) and
// Stats must report the drops.
func TestClusterFaultDropStatsAndQuiesce(t *testing.T) {
	c := newCluster(t, Config{
		Consistency: PRAM, Placement: fullPlacement(3),
		VirtualLatency: true, FaultDrop: 1, FaultSeed: 5,
	})
	for k := int64(1); k <= 10; k++ {
		if err := c.Node(0).Write("x", k); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("Quiesce under total loss: %v", err)
	}
	if v, err := c.Node(1).Read("x"); err != nil || v != Bottom {
		t.Fatalf("node 1 read %d, %v; want Bottom (all updates dropped)", v, err)
	}
	if got := c.Stats().Faults["drop"]; got == 0 {
		t.Fatalf("Stats.Faults[drop] = %d, want > 0", got)
	}
}

// TestClusterReliableRestoresBlockingProtocolUnderFaults runs a
// blocking protocol — which hangs on a lossy network, its ordering
// round trips never completing — over the ack/retransmit layer and
// verifies both liveness and its consistency witness.
func TestClusterReliableRestoresBlockingProtocolUnderFaults(t *testing.T) {
	c := newCluster(t, Config{
		Consistency: Sequential, Placement: fullPlacement(3),
		VirtualLatency: true,
		FaultDrop:      0.2, FaultDup: 0.2, FaultSeed: 7,
		Reliable: true,
	})
	for k := int64(1); k <= 30; k++ {
		for i := 0; i < c.NumNodes(); i++ {
			if err := c.Node(i).Write("x", int64(i)*100+k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("witness under recovered faults: %v", err)
	}
	s := c.Stats()
	if s.Faults["drop"] == 0 || s.Faults["dup"] == 0 {
		t.Fatalf("faults not injected: %v", s.Faults)
	}
	if s.Retransmits == 0 || s.DupsSuppressed == 0 || s.AcksSent == 0 {
		t.Fatalf("no recovery work recorded: %+v", s)
	}
	if s.Abandoned != 0 {
		t.Fatalf("Abandoned = %d on a partition-free run, want 0", s.Abandoned)
	}
}

// TestClusterAtomicDupSafe pins the atomicreg duplication fix: with
// every message duplicated, write requests must not be applied twice
// and acks must not double-count, so the run stays atomic and no node
// reports a dropped frame.
func TestClusterAtomicDupSafe(t *testing.T) {
	c := newCluster(t, Config{
		Consistency: Atomic, Placement: fullPlacement(3),
		VirtualLatency: true, FaultDup: 1, FaultSeed: 3,
	})
	for k := int64(1); k <= 5; k++ {
		if err := c.Node(0).Write("x", k); err != nil {
			t.Fatal(err)
		}
		if v, err := c.Node(1).Read("x"); err != nil || v != k {
			t.Fatalf("node 1 read %d, %v after write %d", v, err, k)
		}
	}
	if err := c.Quiesce(); err != nil {
		t.Fatalf("Quiesce (a dropped-frame fault would surface here): %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil: duplicated frames must be absorbed", err)
	}
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("atomic witness under duplication: %v", err)
	}
	if got := c.Stats().Faults["dup"]; got == 0 {
		t.Fatalf("Stats.Faults[dup] = %d, want > 0", got)
	}
}

// TestClusterErrReportsDroppedFrame verifies the per-node fail-fast
// path: a frame the protocol cannot process is reported through
// Cluster.Err and fails the next Quiesce instead of panicking the
// delivery goroutine.
func TestClusterErrReportsDroppedFrame(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, Placement: fullPlacement(2), VirtualLatency: true})
	c.net.Send(netsim.Message{From: 0, To: 1, Kind: "bogus.kind", Payload: []byte{1, 2, 3}})
	c.net.Quiesce()
	err := c.Err()
	if err == nil {
		t.Fatal("Err() = nil after an unprocessable frame")
	}
	if !strings.Contains(err.Error(), "node 1 dropped a frame") {
		t.Fatalf("Err() = %v, want the dropping node named", err)
	}
	if qerr := c.Quiesce(); qerr == nil {
		t.Fatal("Quiesce = nil, want fail-fast with the recorded fault")
	}
}

// TestClusterCutHealCrashRestart walks the hard-fault surface on PRAM:
// a cut link loses (not parks) messages, healing restores flow without
// replay, and a crash/restart cycle wipes the node's replicas back to
// ⊥ while the network state rejoins cleanly.
func TestClusterCutHealCrashRestart(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, Placement: fullPlacement(3), VirtualLatency: true})
	read := func(node int, want int64, what string) {
		t.Helper()
		if v, err := c.Node(node).Read("x"); err != nil || v != want {
			t.Fatalf("%s: node %d read %d, %v; want %d", what, node, v, err, want)
		}
	}

	c.CutLink(0, 1)
	if err := c.Node(0).Write("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	read(1, Bottom, "across cut link")
	read(2, 1, "unaffected link")

	c.HealLink(0, 1)
	if err := c.Node(0).Write("x", 2); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	read(1, 2, "after heal (no replay of the lost write)")

	if err := c.CrashNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Node(0).Write("x", 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartNode(1); err != nil {
		t.Fatal(err)
	}
	read(1, Bottom, "replica wiped by restart")
	if err := c.Node(0).Write("x", 4); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	read(1, 4, "rejoined after restart")

	s := c.Stats()
	if s.Faults["partition"] == 0 || s.Faults["crash"] == 0 {
		t.Fatalf("hard faults not recorded: %v", s.Faults)
	}
}

// TestClusterCrashUnsupportedProtocols pins the error contract: only
// protocols implementing crash-recovery state loss accept CrashNode.
func TestClusterCrashUnsupportedProtocols(t *testing.T) {
	c := newCluster(t, Config{Consistency: Sequential, Placement: fullPlacement(2), VirtualLatency: true})
	if err := c.CrashNode(0); err == nil || !strings.Contains(err.Error(), "crash/restart") {
		t.Fatalf("CrashNode on Sequential: %v, want unsupported error", err)
	}
	if err := c.RestartNode(0); err == nil {
		t.Fatal("RestartNode on Sequential: nil, want unsupported error")
	}
}
