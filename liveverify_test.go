package partialdsm

import (
	"errors"
	"testing"
	"time"
)

func TestLiveVerifyCleanRun(t *testing.T) {
	for _, cons := range []Consistency{PRAM, Slow, CacheConsistency, Sequential} {
		cons := cons
		t.Run(string(cons), func(t *testing.T) {
			t.Parallel()
			c := newCluster(t, Config{
				Consistency:    cons,
				PlacementLists: fullPlacement(3),
				Seed:           21,
				MaxLatency:     100 * time.Microsecond,
				LiveVerify:     true,
			})
			runWorkload(t, c, 30, 5)
			if err := c.LiveError(); err != nil {
				t.Fatalf("live monitor reported a violation on a correct protocol: %v", err)
			}
		})
	}
}

func TestLiveVerifyUnsupportedCriteria(t *testing.T) {
	for _, cons := range []Consistency{CausalFull, CausalPartial, CausalHoopAware, Atomic} {
		if _, err := New(Config{Consistency: cons, PlacementLists: fullPlacement(2), LiveVerify: true}); err == nil {
			t.Errorf("%s must reject LiveVerify", cons)
		}
	}
}

func TestLiveErrorWithoutMonitor(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(2)})
	if err := c.LiveError(); !errors.Is(err, ErrNoTrace) {
		t.Errorf("LiveError without monitor = %v, want ErrNoTrace", err)
	}
}

func TestLiveVerifyImpliesTracing(t *testing.T) {
	// LiveVerify with DisableTrace still records (the monitor needs the
	// event stream); history methods work.
	c := newCluster(t, Config{
		Consistency:    PRAM,
		PlacementLists: fullPlacement(2),
		DisableTrace:   true,
		LiveVerify:     true,
	})
	c.Node(0).Write("x", 1)
	c.Quiesce()
	if err := c.LiveError(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.History(); err != nil {
		t.Fatalf("history unavailable despite LiveVerify: %v", err)
	}
}
