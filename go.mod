module partialdsm

go 1.21
