// Placement policy: the decision layer above Cluster.Reconfigure.
//
// The mechanism half of dynamic placement (epoch reconfiguration,
// state transfer, ownership handoff) lives in reconfigure.go and the
// protocol packages; this file closes the loop. Every application
// operation entering a NodeHandle bumps a per-(node, variable) access
// counter — before access control, so denied demand is visible too —
// and a Policy periodically turns a window of those counters into the
// next Placement. AutoReconfigure installs it through the ordinary
// Reconfigure handshake, and PolicyDriver paces the decisions on the
// virtual clock so the whole loop stays deterministic: same seed, same
// workload, same sequence of flips.
package partialdsm

import (
	"sort"
	"sync/atomic"
)

// AccessCounts is a window of application demand handed to a Policy:
// Reads[i][x] and Writes[i][x] count the operations node i issued on
// variable x since the previous policy decision (attempts count even
// when access control denied them — unmet demand is exactly what a
// placement policy wants to see). Variables a node never touched in
// the window are absent from its map.
type AccessCounts struct {
	Reads  []map[string]int64
	Writes []map[string]int64
}

// read, write and total return the window counts for (node, x).
func (a AccessCounts) read(i int, x string) int64  { return a.Reads[i][x] }
func (a AccessCounts) write(i int, x string) int64 { return a.Writes[i][x] }
func (a AccessCounts) total(i int, x string) int64 { return a.Reads[i][x] + a.Writes[i][x] }

// Policy derives placement proposals from observed access demand. Plan
// receives the currently installed placement and the access window
// since the last decision, and returns the placement to install next —
// or nil to leave the current one in force. Implementations must be
// deterministic functions of their inputs (no map-iteration order, no
// wall clock, no unseeded randomness): the policy loop is part of the
// reproducible surface, and E22 compares its decisions byte-for-byte
// across engines.
type Policy interface {
	Plan(cur *Placement, load AccessCounts) *Placement
}

// GreedyPolicy is the default placement policy: hot variables gain
// replicas near their heaviest accessors, idle replicas are shed, and
// each variable's owner (the Atomic primary / CacheConsistency
// sequencer; ignored by the ownerless protocols) follows its dominant
// writer. All knobs are hysteresis: a variable below MinTotal accesses
// in the window is left exactly as it is, so a quiet system never
// flips epochs.
//
// The zero value is usable: every read qualifies a gainer, only
// completely idle replicas are shed, and cliques never shrink below
// one replica.
type GreedyPolicy struct {
	// MinTotal is the minimum number of accesses (reads + writes,
	// summed over all nodes) a variable needs in the window before the
	// policy considers changing its assignment at all.
	MinTotal int64
	// HotThreshold is the minimum number of accesses (reads + writes) a
	// non-replica node needs in the window to gain a replica (minimum
	// 1: a node that never touched the variable gains nothing). Denied
	// attempts count — a heavy writer locked out of the clique signals
	// its demand through the attempts access control rejected, and the
	// next decision lets it in.
	HotThreshold int64
	// MinShare additionally requires a gaining node to account for at
	// least this fraction of the variable's total accesses in the
	// window (0 disables the share test).
	MinShare float64
	// MaxReplicas caps a variable's clique size after gains
	// (0 = unlimited).
	MaxReplicas int
	// IdleThreshold sheds a replica whose node made at most this many
	// accesses in the window (the owner and the last MinReplicas
	// members are never shed).
	IdleThreshold int64
	// MinReplicas is the clique size below which nothing is shed
	// (minimum 1: a variable never loses its last replica).
	MinReplicas int
}

// Plan implements Policy. Variables and nodes are visited in
// deterministic order (the placement's variable order, node IDs
// ascending); the returned placement is nil when nothing would change.
func (g *GreedyPolicy) Plan(cur *Placement, load AccessCounts) *Placement {
	numNodes := cur.NumNodes()
	lists := cur.Lists()
	owners := cur.Owners()

	// Current membership, per variable in first-assignment order.
	var vars []string
	members := make(map[string][]int)
	for node, vs := range lists {
		for _, x := range vs {
			if members[x] == nil {
				vars = append(vars, x)
			}
			members[x] = append(members[x], node) // ascending: node loop ascends
		}
	}
	sort.Strings(vars)

	changed := false
	nextMembers := make(map[string][]int, len(vars))
	nextOwner := make(map[string]int, len(vars))
	for _, x := range vars {
		cliq := append([]int(nil), members[x]...)
		owner, pinned := owners[x]
		if !pinned {
			owner = cliq[0] // the default owner: lowest replica
		}
		var total int64
		for i := 0; i < numNodes; i++ {
			total += load.total(i, x)
		}
		if total >= g.MinTotal && total > 0 {
			in := make(map[int]bool, len(cliq))
			for _, p := range cliq {
				in[p] = true
			}
			// Gains: heavy accessors join the clique.
			hot := g.HotThreshold
			if hot < 1 {
				hot = 1
			}
			for i := 0; i < numNodes; i++ {
				if g.MaxReplicas > 0 && len(cliq) >= g.MaxReplicas {
					break
				}
				if in[i] || load.total(i, x) < hot {
					continue
				}
				if g.MinShare > 0 && float64(load.total(i, x)) < g.MinShare*float64(total) {
					continue
				}
				cliq = append(cliq, i)
				in[i] = true
				changed = true
			}
			// Sheds: idle replicas leave, never the owner, never below
			// the floor.
			floor := g.MinReplicas
			if floor < 1 {
				floor = 1
			}
			kept := cliq[:0]
			for _, p := range cliq {
				if p != owner && load.total(p, x) <= g.IdleThreshold &&
					len(kept)+sheddableAfter(cliq, p, owner, g.IdleThreshold, load, x) >= floor {
					changed = true
					continue
				}
				kept = append(kept, p)
			}
			cliq = kept
			// Ownership follows the dominant writer among the members.
			dom, domW := owner, load.write(owner, x)
			for _, p := range cliq {
				if w := load.write(p, x); w > domW || (w == domW && p < dom) {
					dom, domW = p, w
				}
			}
			if domW > load.write(owner, x) {
				owner = dom
				changed = true
			}
		}
		sort.Ints(cliq)
		nextMembers[x] = cliq
		nextOwner[x] = owner
	}
	if !changed {
		return nil
	}
	next := NewPlacement(numNodes)
	for node := 0; node < numNodes; node++ {
		for _, x := range vars {
			for _, p := range nextMembers[x] {
				if p == node {
					next.Assign(node, x)
				}
			}
		}
	}
	for _, x := range vars {
		if owner := nextOwner[x]; owner != nextMembers[x][0] {
			next.SetOwner(x, owner)
		}
	}
	return next
}

// sheddableAfter counts the members after p (in clique order) that
// would also survive the shed pass — the floor check needs to know how
// many keepers remain, not how many members remain.
func sheddableAfter(cliq []int, p, owner int, idle int64, load AccessCounts, x string) int {
	n := 0
	seen := false
	for _, q := range cliq {
		if q == p {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		if q == owner || load.total(q, x) > idle {
			n++
		}
	}
	return n
}

// initAccessCounters sizes the dense per-(node, variable) access
// counters. The variable universe is fixed at construction (Reconfigure
// preserves it), so the epoch-0 placement's variable order indexes the
// counters for the cluster's whole lifetime.
func (c *Cluster) initAccessCounters() {
	vars := c.pl.Vars()
	c.accessVar = make(map[string]int, len(vars))
	for i, x := range vars {
		c.accessVar[x] = i
	}
	n := c.pl.NumProcs() * len(vars)
	c.readCounts = make([]uint32, n)
	c.writeCounts = make([]uint32, n)
	// prevReads/prevWrites are allocated by the first takeAccessWindow:
	// only the policy loop needs window marks, and a cluster that never
	// runs one should not pay for them at construction.
}

// countAccess bumps one access counter. Called from the NodeHandle
// entry points before any access-control check, so the counters see
// demand, not just granted operations. Unknown variables (an
// application typo the protocol will reject anyway) are not counted.
func (c *Cluster) countAccess(node int, x string, write bool) {
	vid, ok := c.accessVar[x]
	if !ok {
		return
	}
	idx := node*len(c.accessVar) + vid
	if write {
		atomic.AddUint32(&c.writeCounts[idx], 1)
	} else {
		atomic.AddUint32(&c.readCounts[idx], 1)
	}
}

// accessSnapshot copies the live counters (atomically per cell; the
// matrix as a whole is a moving snapshot, which is fine for both Stats
// and the policy window).
func (c *Cluster) accessSnapshot() (reads, writes []uint32) {
	reads = make([]uint32, len(c.readCounts))
	writes = make([]uint32, len(c.writeCounts))
	for i := range c.readCounts {
		reads[i] = atomic.LoadUint32(&c.readCounts[i])
		writes[i] = atomic.LoadUint32(&c.writeCounts[i])
	}
	return reads, writes
}

// accessMaps renders dense counter slices as per-node maps in the
// AccessCounts shape, omitting zero cells.
func (c *Cluster) accessMaps(reads, writes []uint32) AccessCounts {
	numNodes := c.pl.NumProcs()
	vars := c.pl.Vars()
	out := AccessCounts{
		Reads:  make([]map[string]int64, numNodes),
		Writes: make([]map[string]int64, numNodes),
	}
	for i := 0; i < numNodes; i++ {
		out.Reads[i] = make(map[string]int64)
		out.Writes[i] = make(map[string]int64)
		for vid, x := range vars {
			if r := reads[i*len(vars)+vid]; r > 0 {
				out.Reads[i][x] = int64(r)
			}
			if w := writes[i*len(vars)+vid]; w > 0 {
				out.Writes[i][x] = int64(w)
			}
		}
	}
	return out
}

// takeAccessWindow returns the access counts accumulated since the
// previous call (or since construction) and advances the window mark.
// The uint32 subtraction is wraparound-safe: the live counters are
// monotone, so cur-prev is the window count even across a wrap.
func (c *Cluster) takeAccessWindow() AccessCounts {
	reads, writes := c.accessSnapshot()
	c.cmu.Lock()
	if c.prevReads == nil {
		c.prevReads = make([]uint32, len(reads))
		c.prevWrites = make([]uint32, len(writes))
	}
	for i := range reads {
		reads[i], c.prevReads[i] = reads[i]-c.prevReads[i], reads[i]
		writes[i], c.prevWrites[i] = writes[i]-c.prevWrites[i], writes[i]
	}
	c.cmu.Unlock()
	return c.accessMaps(reads, writes)
}

// AutoReconfigure runs one policy decision: the access window since
// the previous decision is handed to p, and a proposal differing from
// the installed placement is applied through Reconfigure. It reports
// whether an epoch flip committed. A nil or no-op proposal returns
// (false, nil) without touching the network; Reconfigure errors
// (validation, in-progress recovery, abort on partition) surface
// as-is.
func (c *Cluster) AutoReconfigure(p Policy) (bool, error) {
	load := c.takeAccessWindow()
	next := p.Plan(c.Placement(), load)
	if next == nil {
		return false, nil
	}
	before := c.Epoch()
	if err := c.Reconfigure(next); err != nil {
		return false, err
	}
	return c.Epoch() != before, nil
}

// PolicyDriver paces AutoReconfigure on the virtual clock. There is no
// background goroutine — determinism forbids one; the application (or
// the experiment harness) calls Tick at natural points (between
// workload phases, every N operations) and the driver decides whether
// enough virtual time has passed since the last decision. The cadence
// is the outermost hysteresis band: however noisy the counters, the
// placement changes at most once per interval.
type PolicyDriver struct {
	c      *Cluster
	policy Policy
	every  uint64
	due    uint64
	flips  int
}

// NewPolicyDriver returns a driver applying p at most once per
// everyTicks of virtual time, first at construction time + everyTicks.
func (c *Cluster) NewPolicyDriver(p Policy, everyTicks uint64) *PolicyDriver {
	return &PolicyDriver{
		c:      c,
		policy: p,
		every:  everyTicks,
		due:    c.net.Clock().Now() + everyTicks,
	}
}

// Tick runs a policy decision when the cadence has elapsed, and
// reports whether an epoch flip committed. Calls before the next due
// time return (false, nil) immediately.
func (d *PolicyDriver) Tick() (bool, error) {
	now := d.c.net.Clock().Now()
	if now < d.due {
		return false, nil
	}
	d.due = now + d.every
	changed, err := d.c.AutoReconfigure(d.policy)
	if changed {
		d.flips++
	}
	return changed, err
}

// Flips returns the number of epoch flips the driver has committed.
func (d *PolicyDriver) Flips() int { return d.flips }
