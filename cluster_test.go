package partialdsm

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// hoopPlacement is a 3-node topology with C(x) = {0,2} and node 1 on
// the x-hoop [0,1,2] through y — the minimal setting where Theorem 1
// makes node 1 x-relevant although it never accesses x.
func hoopPlacement() [][]string {
	return [][]string{{"x", "y"}, {"y"}, {"x", "y"}}
}

// fullPlacement replicates both variables everywhere.
func fullPlacement(n int) [][]string {
	out := make([][]string, n)
	for i := range out {
		out[i] = []string{"x", "y"}
	}
	return out
}

// runWorkload drives every node with a seeded random mix of reads and
// writes over its own variables, concurrently, then quiesces.
func runWorkload(t *testing.T, c *Cluster, opsPerNode int, seed int64) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < c.NumNodes(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			h := c.Node(i)
			vars := c.VarsOf(i)
			if len(vars) == 0 {
				return
			}
			for k := 0; k < opsPerNode; k++ {
				x := vars[rng.Intn(len(vars))]
				if rng.Intn(2) == 0 {
					if err := h.Write(x, int64(i)*1_000_000+int64(k)+1); err != nil {
						t.Errorf("node %d write %s: %v", i, x, err)
						return
					}
				} else {
					if _, err := h.Read(x); err != nil {
						t.Errorf("node %d read %s: %v", i, x, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	c.Quiesce()
}

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestBasicPropagationAllProtocols(t *testing.T) {
	for _, cons := range Consistencies {
		cons := cons
		t.Run(string(cons), func(t *testing.T) {
			c := newCluster(t, Config{Consistency: cons, PlacementLists: fullPlacement(3), Seed: 1})
			if err := c.Node(0).Write("x", 7); err != nil {
				t.Fatal(err)
			}
			c.Quiesce()
			for i := 0; i < 3; i++ {
				v, err := c.Node(i).Read("x")
				if err != nil {
					t.Fatal(err)
				}
				if v != 7 {
					t.Errorf("node %d read x = %d, want 7", i, v)
				}
			}
			// Unwritten variable reads ⊥.
			v, err := c.Node(1).Read("y")
			if err != nil {
				t.Fatal(err)
			}
			if v != Bottom {
				t.Errorf("unwritten y = %d, want Bottom", v)
			}
		})
	}
}

func TestPartialReplicationPropagation(t *testing.T) {
	for _, cons := range []Consistency{PRAM, Slow, CausalPartial, CausalHoopAware} {
		cons := cons
		t.Run(string(cons), func(t *testing.T) {
			c := newCluster(t, Config{Consistency: cons, PlacementLists: hoopPlacement(), Seed: 2})
			if err := c.Node(0).Write("x", 11); err != nil {
				t.Fatal(err)
			}
			if err := c.Node(1).Write("y", 22); err != nil {
				t.Fatal(err)
			}
			c.Quiesce()
			if v, _ := c.Node(2).Read("x"); v != 11 {
				t.Errorf("node 2 x = %d, want 11", v)
			}
			if v, _ := c.Node(0).Read("y"); v != 22 {
				t.Errorf("node 0 y = %d, want 22", v)
			}
		})
	}
}

func TestAccessControl(t *testing.T) {
	for _, cons := range Consistencies {
		c := newCluster(t, Config{Consistency: cons, PlacementLists: hoopPlacement(), Seed: 3})
		if err := c.Node(1).Write("x", 1); err == nil {
			t.Errorf("%s: node 1 must not write x (x ∉ X_1)", cons)
		}
		if _, err := c.Node(1).Read("x"); err == nil {
			t.Errorf("%s: node 1 must not read x", cons)
		}
	}
}

func TestWitnessesUnderConcurrentWorkload(t *testing.T) {
	placements := map[string][][]string{
		"full": fullPlacement(4),
		"hoop": hoopPlacement(),
		"ring": {{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"}},
	}
	for _, cons := range Consistencies {
		for name, pl := range placements {
			cons, name, pl := cons, name, pl
			t.Run(string(cons)+"/"+name, func(t *testing.T) {
				t.Parallel()
				c := newCluster(t, Config{
					Consistency:    cons,
					PlacementLists: pl,
					Seed:           99,
					MaxLatency:     200 * time.Microsecond,
				})
				runWorkload(t, c, 25, 7)
				if err := c.VerifyWitness(); err != nil {
					t.Fatalf("witness violated: %v", err)
				}
			})
		}
	}
}

func TestSlowUnderNonFIFO(t *testing.T) {
	c := newCluster(t, Config{
		Consistency:    Slow,
		PlacementLists: fullPlacement(4),
		NonFIFO:        true,
		MaxLatency:     300 * time.Microsecond,
		Seed:           5,
	})
	runWorkload(t, c, 40, 13)
	if err := c.VerifyWitness(); err != nil {
		t.Fatalf("slow witness violated under non-FIFO delivery: %v", err)
	}
}

func TestCausalPartialUnderNonFIFO(t *testing.T) {
	// The dependency lists must reconstruct causal order even when the
	// network reorders freely.
	for _, cons := range []Consistency{CausalPartial, CausalHoopAware} {
		cons := cons
		t.Run(string(cons), func(t *testing.T) {
			c := newCluster(t, Config{
				Consistency:    cons,
				PlacementLists: hoopPlacement(),
				NonFIFO:        true,
				MaxLatency:     300 * time.Microsecond,
				Seed:           6,
			})
			runWorkload(t, c, 30, 17)
			if err := c.VerifyWitness(); err != nil {
				t.Fatalf("causal witness violated under non-FIFO delivery: %v", err)
			}
		})
	}
}

func TestNonFIFORejectedForFIFOProtocols(t *testing.T) {
	for _, cons := range []Consistency{PRAM, CausalFull} {
		_, err := New(Config{Consistency: cons, PlacementLists: fullPlacement(2), NonFIFO: true})
		if err == nil {
			t.Errorf("%s must reject NonFIFO", cons)
		}
	}
}

func TestCheckHistorySmallRuns(t *testing.T) {
	// Each protocol's small recorded history must satisfy its own
	// criterion under the exact checkers.
	wantSatisfied := map[Consistency]string{
		Atomic:           "sequential",
		Sequential:       "sequential",
		CausalFull:       "causal",
		CausalPartial:    "causal",
		CausalHoopAware:  "causal",
		PRAM:             "pram",
		Slow:             "slow",
		CacheConsistency: "cache",
	}
	for cons, crit := range wantSatisfied {
		cons, crit := cons, crit
		t.Run(string(cons), func(t *testing.T) {
			t.Parallel()
			c := newCluster(t, Config{
				Consistency:    cons,
				PlacementLists: fullPlacement(3),
				Seed:           8,
				MaxLatency:     100 * time.Microsecond,
			})
			runWorkload(t, c, 4, 21)
			verdicts, err := c.CheckHistory()
			if err != nil {
				t.Fatal(err)
			}
			if !verdicts[crit] {
				json, _ := c.HistoryJSON()
				t.Fatalf("history violates %s: verdicts=%v\n%s", crit, verdicts, json)
			}
		})
	}
}

func TestEfficiencyTheorem2(t *testing.T) {
	// PRAM and Slow: no information about x outside C(x), ever.
	for _, cons := range []Consistency{PRAM, Slow} {
		c := newCluster(t, Config{Consistency: cons, PlacementLists: hoopPlacement(), Seed: 9})
		runWorkload(t, c, 30, 31)
		if err := c.VerifyEfficiency(); err != nil {
			t.Errorf("%s: efficiency violated: %v", cons, err)
		}
	}
}

func TestInefficiencyTheorem1(t *testing.T) {
	// Causal partial replication: node 1 ∉ C(x) must have handled
	// information about x (it is x-relevant, on the hoop [0,1,2]).
	c := newCluster(t, Config{Consistency: CausalPartial, PlacementLists: hoopPlacement(), Seed: 10})
	if err := c.Node(0).Write("x", 1); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	if err := c.VerifyEfficiency(); err == nil {
		t.Error("causal-partial must violate the efficiency property on a hoop topology")
	}
	touch := c.Stats().Touch[1]
	found := false
	for _, v := range touch {
		if v == "x" {
			found = true
		}
	}
	if !found {
		t.Errorf("node 1 touch set %v must include x", touch)
	}
}

func TestHoopAwareRespectsRelevanceBound(t *testing.T) {
	// Four nodes: 3 is x-irrelevant (pendant on node 2 via z, single
	// anchor). Hoop-aware causal must keep x away from node 3;
	// broadcast causal must not.
	pl := [][]string{{"x", "y"}, {"y"}, {"x", "y", "z"}, {"z"}}
	aware := newCluster(t, Config{Consistency: CausalHoopAware, PlacementLists: pl, Seed: 11})
	runWorkload(t, aware, 25, 41)
	if err := aware.VerifyRelevanceBound(); err != nil {
		t.Errorf("hoop-aware: relevance bound violated: %v", err)
	}
	if err := aware.VerifyWitness(); err != nil {
		t.Errorf("hoop-aware: causal witness violated: %v", err)
	}
	if touched := touches(aware, 3, "x"); touched {
		t.Error("hoop-aware: x-irrelevant node 3 handled information about x")
	}

	bcast := newCluster(t, Config{Consistency: CausalPartial, PlacementLists: pl, Seed: 11})
	runWorkload(t, bcast, 25, 41)
	if touched := touches(bcast, 3, "x"); !touched {
		t.Error("broadcast: node 3 should have been notified about x")
	}
}

func touches(c *Cluster, node int, x string) bool {
	for _, v := range c.Stats().Touch[node] {
		if v == x {
			return true
		}
	}
	return false
}

func TestCausalChainAcrossHoop(t *testing.T) {
	// The Figure 3 scenario, live: w0(x)v then w0(y)v1; node 1 reads y,
	// writes y'; node 2 reads y' then must see x=v under causal
	// consistency (never ⊥). Repeated with random latency.
	for trial := int64(0); trial < 10; trial++ {
		for _, cons := range []Consistency{CausalPartial, CausalHoopAware, CausalFull} {
			pl := hoopPlacement()
			if cons == CausalFull {
				pl = fullPlacement(3)
			}
			c, err := New(Config{
				Consistency: cons, PlacementLists: pl,
				Seed: trial, MaxLatency: 300 * time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			n0, n1, n2 := c.Node(0), c.Node(1), c.Node(2)
			if err := n0.Write("x", 100); err != nil {
				t.Fatal(err)
			}
			if err := n0.Write("y", 200); err != nil {
				t.Fatal(err)
			}
			// Node 1 polls until it sees y=200, then writes y=300.
			for {
				v, err := n1.Read("y")
				if err != nil {
					t.Fatal(err)
				}
				if v == 200 {
					break
				}
				time.Sleep(10 * time.Microsecond)
			}
			if err := n1.Write("y", 300); err != nil {
				t.Fatal(err)
			}
			// Node 2 polls until it sees y=300; causality then forces
			// x=100 to be visible.
			for {
				v, err := n2.Read("y")
				if err != nil {
					t.Fatal(err)
				}
				if v == 300 {
					break
				}
				time.Sleep(10 * time.Microsecond)
			}
			v, err := n2.Read("x")
			if err != nil {
				t.Fatal(err)
			}
			if v != 100 {
				t.Errorf("%s trial %d: node 2 read x=%d after observing the chain, want 100",
					cons, trial, v)
			}
			if err := c.VerifyWitness(); err != nil {
				t.Errorf("%s trial %d: witness: %v", cons, trial, err)
			}
			c.Close()
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Consistency: PRAM}); err == nil {
		t.Error("empty placement must be rejected")
	}
	if _, err := New(Config{Consistency: "bogus", PlacementLists: fullPlacement(2)}); err == nil {
		t.Error("unknown consistency must be rejected")
	}
	if _, err := New(Config{Consistency: PRAM, PlacementLists: [][]string{{""}}}); err == nil {
		t.Error("empty variable name must be rejected")
	}
}

func TestDisableTrace(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(2), DisableTrace: true})
	if err := c.Node(0).Write("x", 1); err != nil {
		t.Fatal(err)
	}
	c.Quiesce()
	if err := c.VerifyWitness(); !errors.Is(err, ErrNoTrace) {
		t.Errorf("VerifyWitness = %v, want ErrNoTrace", err)
	}
	if _, err := c.CheckHistory(); !errors.Is(err, ErrNoTrace) {
		t.Errorf("CheckHistory = %v, want ErrNoTrace", err)
	}
	if _, err := c.HistoryJSON(); !errors.Is(err, ErrNoTrace) {
		t.Errorf("HistoryJSON = %v, want ErrNoTrace", err)
	}
	if c.OpCount() != 0 {
		t.Error("OpCount must be 0 without trace")
	}
}

func TestTopologyQueries(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: hoopPlacement()})
	if got := c.Clique("x"); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("C(x) = %v", got)
	}
	if got := c.XRelevant("x"); len(got) != 3 {
		t.Errorf("x-relevant = %v, want all three", got)
	}
	if !c.Holds(0, "x") || c.Holds(1, "x") {
		t.Error("Holds wrong")
	}
	if got := c.Vars(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("Vars = %v", got)
	}
	if got := c.VarsOf(1); len(got) != 1 || got[0] != "y" {
		t.Errorf("VarsOf(1) = %v", got)
	}
	if c.NumNodes() != 3 {
		t.Error("NumNodes wrong")
	}
}

func TestHistoryJSONExport(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(2), Seed: 12})
	c.Node(0).Write("x", 5)
	c.Quiesce()
	c.Node(1).Read("x")
	data, err := c.HistoryJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"op":"w"`, `"var":"x"`, `"val":5`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s: %s", want, data)
		}
	}
	if c.OpCount() != 2 {
		t.Errorf("OpCount = %d, want 2", c.OpCount())
	}
}

func TestSequentialReadYourWrites(t *testing.T) {
	c := newCluster(t, Config{Consistency: Sequential, PlacementLists: fullPlacement(3), Seed: 13})
	n0 := c.Node(0)
	for k := int64(1); k <= 20; k++ {
		if err := n0.Write("x", k); err != nil {
			t.Fatal(err)
		}
		v, err := n0.Read("x")
		if err != nil {
			t.Fatal(err)
		}
		if v != k {
			t.Fatalf("read-your-writes violated: wrote %d, read %d", k, v)
		}
	}
}

func TestAtomicLinearizableSingleVar(t *testing.T) {
	c := newCluster(t, Config{Consistency: Atomic, PlacementLists: fullPlacement(3), Seed: 14})
	// After a write completes, every node must see it immediately —
	// single authoritative copy.
	if err := c.Node(1).Write("x", 77); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		v, err := c.Node(i).Read("x")
		if err != nil {
			t.Fatal(err)
		}
		if v != 77 {
			t.Errorf("node %d read %d immediately after write, want 77", i, v)
		}
	}
}

func TestNodeHandleOutOfRange(t *testing.T) {
	c := newCluster(t, Config{Consistency: PRAM, PlacementLists: fullPlacement(2)})
	defer func() {
		if recover() == nil {
			t.Error("Node(99) must panic")
		}
	}()
	c.Node(99)
}
