// Package partialdsm is a distributed shared memory (DSM) toolkit
// reproducing Hélary & Milani, "About the efficiency of partial
// replication to implement Distributed Shared Memory" (IRISA PI-1727,
// ICPP 2006).
//
// It provides a cluster of simulated nodes, each pairing an application
// process with a memory consistency system (MCS) process, over a
// message-passing network. Shared variables may be partially
// replicated: each node holds only the variables its placement assigns
// (the paper's X_i sets). Eight consistency configurations are
// available, from atomic registers down to slow memory, including the
// paper's headline construction — an *efficient* PRAM memory under
// partial replication, in which information about a variable x never
// reaches a process outside its replica clique C(x) (Theorem 2) — and
// the causal configurations that provably cannot be efficient
// (Theorem 1).
//
// Clusters record their execution history; the toolkit can then verify
// protocol-specific consistency witnesses, run the exact checkers of
// the underlying model on small runs, and report the control-byte and
// variable-touch metrics that make the paper's efficiency notion
// measurable.
//
// # Transports
//
// The message-passing substrate is pluggable via Config.Transport.
// Every engine implements the same semantic contract — per-pair FIFO
// delivery (unless Config.NonFIFO), quiescence detection, exact-once
// delivery and metrics accounting — verified by the conformance suite
// in internal/netsim, so protocol behaviour and the paper's message
// counts are identical across engines; only scheduling and therefore
// throughput differ. TransportClassic (the default) runs one delivery
// goroutine per ordered node pair; TransportSharded drains per-pair
// mailboxes in batches on a fixed worker pool and is the better choice
// for message-heavy workloads.
//
// # Values and the v2 operation API
//
// Shared variables hold opaque byte-string values of any size: Put and
// Get move []byte payloads, PutAsync overlaps a blocking protocol's
// ordering round trip with the caller's next operations, and Batch
// applies a group of operations in one call, riding the
// per-destination coalescing outbox so a burst of writes to one
// replica clique leaves as one frame per destination. The original
// Write/Read int64 API remains as a thin shim — an int64 is exactly an
// 8-byte value — and produces byte-identical message traces to the
// pre-v2 wire format.
//
// # Control plane
//
// Beyond the data-plane operations, a Cluster exposes a control plane
// for experiments and operations: PauseLink/ResumeLink (deterministic
// asynchrony), CutLink/HealLink and CrashNode/RestartNode (hard
// faults), the bounded virtual-time Window helper with its CutLinkFor
// and CrashNodeFor instances, and epoch-based runtime reconfiguration
// — Reconfigure migrates the cluster to a new Placement without
// stopping it, and Failover re-places a crashed node's variables onto
// the survivors. Epoch and Placement report the current configuration;
// Holds, Clique, XRelevant and VarsOf are snapshots of it.
//
// # Quick start
//
//	cluster, err := partialdsm.New(partialdsm.Config{
//		Consistency: partialdsm.PRAM,
//		Placement: partialdsm.NewPlacement(3).
//			Assign(0, "x", "y").Assign(1, "x").Assign(2, "y"),
//	})
//	// node 0 writes, node 1 reads after the network settles
//	n0, n1 := cluster.Node(0), cluster.Node(1)
//	n0.Put("x", []byte("hello"))   // or n0.Write("x", 42)
//	cluster.Quiesce()
//	v, _ := n1.Get("x")            // or n1.Read("x")
//
//	// batch: one frame per destination for the whole burst
//	res, _ := n0.Apply(partialdsm.Batch{}.
//		Put("x", []byte("a")).Put("y", []byte("b")).Get("x"))
package partialdsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"partialdsm/internal/check"
	"partialdsm/internal/mcs"
	"partialdsm/internal/mcs/atomicreg"
	"partialdsm/internal/mcs/cachepart"
	"partialdsm/internal/mcs/causalfull"
	"partialdsm/internal/mcs/causalpart"
	"partialdsm/internal/mcs/prampart"
	"partialdsm/internal/mcs/seqcons"
	"partialdsm/internal/mcs/slowpart"
	"partialdsm/internal/metrics"
	"partialdsm/internal/model"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
	"partialdsm/internal/trace"
)

// Bottom is the initial value ⊥ of every shared variable seen through
// the legacy int64 API: Read of a never-written variable returns it.
const Bottom int64 = model.BottomInt64

// BottomValue returns ⊥ as Get observes it: the 8 big-endian bytes
// encoding Bottom.
func BottomValue() []byte { return model.Bottom.Bytes() }

// MaxValueLen bounds a single value's size in bytes.
const MaxValueLen = mcs.MaxValueLen

// Consistency selects a memory consistency protocol.
type Consistency string

// The available consistency configurations, strongest first.
const (
	// Atomic is a linearizable register per variable, served by a
	// per-variable primary; every operation pays a network round trip.
	Atomic Consistency = "atomic"
	// Sequential is sequencer-based sequential consistency with
	// blocking writes and local reads.
	Sequential Consistency = "sequential"
	// CausalFull is vector-clock causal broadcast with complete
	// replication (Ahamad et al.) — the paper's baseline.
	CausalFull Consistency = "causal-full"
	// CausalPartial is causal consistency with partial replication of
	// data and *broadcast* control notifications: correct, but
	// information about every variable reaches every node (Theorem 1's
	// unavoidable cost when the distribution is not known a priori).
	CausalPartial Consistency = "causal-partial"
	// CausalHoopAware is causal consistency with partial replication
	// where control notifications for x reach exactly the x-relevant
	// processes (C(x) plus x-hoop members), exploiting a statically
	// known share graph (§3.3's "ad-hoc" design).
	CausalHoopAware Consistency = "causal-hoop-aware"
	// PRAM is the paper's efficient construction (§5, Theorem 2):
	// per-sender FIFO updates multicast only to C(x).
	PRAM Consistency = "pram"
	// Slow is slow memory: per-(sender,variable) FIFO updates multicast
	// only to C(x); tolerates non-FIFO channels.
	Slow Consistency = "slow"
	// CacheConsistency is Goodman's cache consistency: per-variable
	// sequential consistency via a per-variable sequencer inside C(x).
	// Incomparable with PRAM, yet efficient in the paper's sense —
	// included as an exploration of the paper's §7 open question.
	CacheConsistency Consistency = "cache"
)

// Consistencies lists every supported configuration, strongest first.
var Consistencies = []Consistency{
	Atomic, Sequential, CausalFull, CausalPartial, CausalHoopAware, PRAM, Slow, CacheConsistency,
}

// Transport selects the message-delivery engine a cluster runs on.
// Every engine implements the same semantic contract (per-pair FIFO
// unless Config.NonFIFO, quiescence, exact-once delivery, metrics
// accounting), verified by the netsim conformance suite; they differ
// only in scheduling and therefore throughput.
type Transport string

// The available transports.
const (
	// TransportClassic runs one delivery goroutine per ordered node
	// pair: simple, and the reference for the conformance suite. The
	// zero value of Config.Transport selects it.
	TransportClassic Transport = Transport(netsim.KindClassic)
	// TransportSharded shards pair mailboxes across a fixed worker
	// pool and drains each pair's backlog in batches — one wakeup per
	// burst instead of per message. Prefer it for message-heavy
	// workloads.
	TransportSharded Transport = Transport(netsim.KindSharded)
)

// Transports lists every supported transport.
var Transports = []Transport{TransportClassic, TransportSharded}

// LatencyDist selects the delay distribution of the virtual-latency
// mode (Config.VirtualLatency); delays are derived deterministically
// from (Config.Seed, sender, receiver, per-link sequence number), so
// the same seed yields the same delay sequence on every transport.
type LatencyDist string

// The available virtual-latency distributions.
const (
	// LatencyUniform draws each delay uniformly from [0, MaxLatency] —
	// the virtual analogue of the real-sleep mode, and the default.
	LatencyUniform LatencyDist = LatencyDist(netsim.LatencyUniform)
	// LatencyFixed delays every message by exactly MaxLatency.
	LatencyFixed LatencyDist = LatencyDist(netsim.LatencyFixed)
	// LatencyHeavyTail draws from a bounded Pareto-like distribution:
	// most delays well under MaxLatency/4, stragglers up to 8×.
	LatencyHeavyTail LatencyDist = LatencyDist(netsim.LatencyHeavyTail)
	// LatencyMatrix bounds each ordered link's delay by the matching
	// Config.LatencyMatrix entry (uniform per link).
	LatencyMatrix LatencyDist = LatencyDist(netsim.LatencyMatrix)
)

// LatencyDists lists the virtual-latency distributions.
var LatencyDists = []LatencyDist{LatencyUniform, LatencyFixed, LatencyHeavyTail, LatencyMatrix}

// ParseLatencyDistFlag validates a latency-distribution name given on
// a command line and returns it; the empty string selects
// LatencyUniform. LatencyMatrix is rejected here: it needs a
// per-cluster Config.LatencyMatrix and cannot be selected by name
// alone. The cmd tools share this so they accept the same set.
func ParseLatencyDistFlag(s string) (LatencyDist, error) {
	if s == "" {
		return LatencyUniform, nil
	}
	if LatencyDist(s) == LatencyMatrix {
		return "", fmt.Errorf("distribution %q needs a per-link Config.LatencyMatrix and cannot be selected by name alone", s)
	}
	for _, k := range LatencyDists {
		if k == LatencyDist(s) {
			return k, nil
		}
	}
	return "", fmt.Errorf("unknown latency distribution %q (have %s, %s, %s)",
		s, LatencyUniform, LatencyFixed, LatencyHeavyTail)
}

// Config describes a cluster.
type Config struct {
	// Consistency selects the protocol. Required.
	Consistency Consistency
	// Placement assigns, per node, the variables the node replicates
	// and its application may access (the X_i sets) — the epoch-0
	// placement; Cluster.Reconfigure can install successors at
	// runtime. Build one with NewPlacement/Assign or
	// PlacementFromLists. Required unless PlacementLists is set.
	Placement *Placement
	// PlacementLists is the raw pre-v8 form of Placement: one variable
	// list per node.
	//
	// Deprecated: use Placement. Setting both is an error.
	PlacementLists [][]string
	// MaxLatency bounds the simulated per-message delivery latency
	// (uniform in [0, MaxLatency] by default). Without VirtualLatency
	// each delivery really sleeps; with it the bound scales the
	// virtual-time delay distribution instead. Zero delivers as fast as
	// scheduling allows; negative values are rejected.
	MaxLatency time.Duration
	// VirtualLatency simulates MaxLatency in deterministic virtual time
	// instead of real sleeps: every message draws a delivery deadline
	// on the transport clock from a seeded distribution (LatencyDist),
	// deliveries run serialized on one totally ordered virtual
	// timeline, and the Seed fully determines the message trace on
	// every transport. Latency studies become reproducible and cost no
	// wall time — Quiesce and Close drain a 50ms-latency cluster in
	// microseconds. See README "Latency simulation".
	VirtualLatency bool
	// LatencyDist selects the virtual-mode delay distribution:
	// LatencyUniform (the default), LatencyFixed, LatencyHeavyTail or
	// LatencyMatrix. Requires VirtualLatency.
	LatencyDist LatencyDist
	// LatencyMatrix gives per-ordered-link maximum delays for the
	// LatencyMatrix distribution; must be NumNodes×NumNodes (zero
	// entries deliver with zero delay), with MaxLatency left zero.
	LatencyMatrix [][]time.Duration
	// Seed makes the latency sequence reproducible.
	Seed int64
	// NonFIFO delivers messages independently instead of FIFO per node
	// pair. Only Slow, CausalPartial, CausalHoopAware, Sequential and
	// Atomic tolerate it; PRAM and CausalFull require FIFO and reject
	// the combination.
	NonFIFO bool
	// Transport selects the delivery engine (TransportClassic,
	// TransportSharded, or any kind registered with netsim.Register).
	// Empty selects TransportClassic.
	Transport Transport
	// TransportWorkers bounds the sharded transport's worker pool.
	// Zero picks max(2, GOMAXPROCS); the classic transport ignores it.
	TransportWorkers int
	// CoalesceBatch enables per-destination update coalescing for the
	// wait-free protocols (PRAM, Slow, CausalFull, CausalPartial,
	// CausalHoopAware): up to CoalesceBatch updates per destination
	// ride in one batched network message, flushed when the batch
	// fills, when the writing node next reads, and on Quiesce. 0 or 1
	// sends every update immediately (the default). Coalescing changes
	// only the message-per-write constant, never what any node learns
	// or in what order — per-pair FIFO and each protocol's consistency
	// argument are preserved (see README "Coalescing semantics").
	// Blocking protocols (Sequential, Atomic, CacheConsistency) ignore
	// it.
	//
	// Liveness caveat (plain batching only): a buffered update
	// propagates only when its *writer* next operates (or the cluster
	// quiesces). A workload that polls for a value whose writer has
	// gone permanently silent would wait forever; set
	// CoalesceFlushTicks or CoalesceAdaptive — which make the *engine*
	// flush buffered tails — and any workload is live.
	CoalesceBatch int
	// CoalesceFlushTicks > 0 flushes buffered updates on a virtual-time
	// deadline: a record staged into an empty outbox is sent at most
	// that many clock ticks later. The transport clock ticks once per
	// delivered message and jumps to the earliest pending deadline when
	// the network goes idle, so the schedule is deterministic rather
	// than wall-clock-driven: a phase-structured driver (each burst
	// synchronized before the next) gets byte-identical message traces
	// for the same seed on every transport, and a silent writer's tail
	// never strands (poll-style workloads run coalesced safely).
	// Implies coalescing: if CoalesceBatch < 2 it defaults to 16.
	CoalesceFlushTicks int
	// CoalesceAdaptive flushes a destination's buffered frame as soon
	// as that destination has no inbound traffic in flight: a busy
	// receiver lets updates pile into one frame, an idle one gets them
	// immediately. Latency-bound workloads (Bellman-Ford) keep the
	// message reduction without the round-trip stretch of pure
	// batching. May be combined with CoalesceFlushTicks; implies
	// coalescing like it.
	CoalesceAdaptive bool
	// FaultDrop is the per-message probability, in [0, 1], that the
	// network loses a message in transit — seeded fault injection
	// (netsim.FaultConfig). The loss schedule is a pure function of
	// (FaultSeed, sender, receiver, per-link sequence), so a given
	// workload sees the identical fault pattern on every transport and
	// every run. Dropped messages still flow through delivery
	// accounting, so Quiesce completes on a lossy network.
	FaultDrop float64
	// FaultDup is the per-message probability, in [0, 1], that the
	// network delivers a message twice (the duplicate immediately
	// follows the original on the same link).
	FaultDup float64
	// FaultSeed seeds the fault draws, independently of Seed (the
	// latency seed), so loss and delay patterns vary separately.
	FaultSeed int64
	// Reliable wraps the transport in an ack/retransmit layer
	// (netsim.Reliable) that restores exactly-once FIFO delivery on
	// top of the injected faults: per-pair sequence numbers, cumulative
	// acks, timeout-driven retransmission on the virtual clock, and a
	// receiver-side dedup/reorder window. The protocols then run their
	// reliable-channel assumptions unchanged; Stats reports the
	// recovery work.
	Reliable bool
	// RetransmitTicks is the Reliable layer's retransmit timeout in
	// virtual clock ticks (one tick per delivered message); zero picks
	// the netsim default. Too small a value retransmits frames whose
	// acks are merely still in flight.
	RetransmitTicks int
	// RetransmitMax bounds the Reliable layer's retransmissions per
	// frame before it abandons the frame (keeping Quiesce terminating
	// across permanent partitions); zero picks the netsim default.
	RetransmitMax int
	// OpDeadlineTicks bounds the blocking protocols' round-trip waits
	// (Sequential, Atomic, CacheConsistency) on the virtual clock: an
	// operation that sees no progress within that many ticks fails fast
	// with an error wrapping ErrOpDeadline — and records it as the
	// node's fault, visible through Err() — instead of hanging forever
	// on an unrecovered lossy or partitioned link. Zero (the default)
	// waits unboundedly, the pre-v7 behaviour. The deadline rides the
	// same deterministic clock as the latency and fault schedules, so a
	// given seed either always or never expires a given operation.
	OpDeadlineTicks int
	// DisableTrace turns off history and witness recording (for
	// benchmarks). Traced verification methods then return ErrNoTrace.
	DisableTrace bool
	// LiveVerify attaches an online consistency monitor that validates
	// every event as it happens (O(1) per event); the first violation
	// is available from LiveError. Supported for PRAM, Slow,
	// CacheConsistency and Sequential (criteria with prefix-closed
	// witnesses); other configurations reject the flag. Implies
	// tracing.
	LiveVerify bool
}

// ErrNoTrace is returned by history-dependent methods when the cluster
// was built with DisableTrace.
var ErrNoTrace = errors.New("partialdsm: cluster was built with DisableTrace")

// ErrOpDeadline is the sentinel wrapped by operations that gave up
// after Config.OpDeadlineTicks of virtual time without progress; test
// with errors.Is.
var ErrOpDeadline = mcs.ErrOpDeadline

// Cluster is a running DSM instance.
type Cluster struct {
	cfg     Config
	pl      *sharegraph.Placement // epoch-0 placement (the universe never changes)
	net     netsim.Transport
	rel     *netsim.Reliable // non-nil when Config.Reliable
	col     *metrics.Collector
	rec     *mcs.Recorder
	nodes   []mcs.Node
	faults  *faultSink
	monitor check.Monitor // nil unless LiveVerify

	// Control-plane state (reconfigure.go), guarded by cmu.
	cmu           sync.Mutex
	ix            *sharegraph.Index     // current epoch's index
	cpl           *sharegraph.Placement // current epoch's placement
	epoch         uint64                // committed epoch
	attempt       uint64                // highest reconfiguration attempt number burned
	reconfiguring bool
	crashed       []bool
	recoverWant   []int // completed recovery handshakes expected per node
	// Efficiency ledger: per variable, every node that was in C(x) /
	// x-relevant under any epoch attempted so far. Nil until the first
	// reconfiguration attempt; VerifyEfficiency and
	// VerifyRelevanceBound fall back to the epoch-0 sets.
	cliqueUnion map[string]map[int]bool
	relUnion    map[string]map[int]bool
	// ownerHist records every committed epoch's index in ascending
	// epoch order (epoch 0 first). The atomic witness resolves each
	// event's owner from the largest committed epoch at or below the
	// event's stamp.
	ownerHist []*sharegraph.Index

	// Access counters for the placement policy loop (policy.go): dense
	// per-(node, variable) operation counts indexed node*numVars+vid
	// through accessVar, bumped atomically on every NodeHandle
	// operation (uint32 cells: a policy window cannot meaningfully
	// exceed 4 billion accesses per cell, and the halved footprint
	// keeps construction cheap on wide placements).
	// prevReads/prevWrites mark the last policy window's high-water
	// marks — allocated lazily at the first window, guarded by cmu.
	accessVar               map[string]int
	readCounts, writeCounts []uint32
	prevReads, prevWrites   []uint32
}

// faultSink collects the first protocol-level fault each node reports
// (mcs.Config.OnFault): a malformed or misrouted frame the protocol
// dropped instead of processing. On a reliable network these indicate a
// bug; under fault injection they are the expected symptom of a
// protocol whose wire format is not duplication- or loss-safe.
type faultSink struct {
	mu  sync.Mutex
	err error
}

func (s *faultSink) record(node int, err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = fmt.Errorf("partialdsm: node %d dropped a frame: %w", node, err)
	}
	s.mu.Unlock()
}

func (s *faultSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	pub, err := cfg.placement()
	if err != nil {
		return nil, err
	}
	pl, err := pub.build()
	if err != nil {
		return nil, err
	}
	numNodes := pl.NumProcs()
	if cfg.NonFIFO && (cfg.Consistency == PRAM || cfg.Consistency == CausalFull) {
		return nil, fmt.Errorf("partialdsm: %s requires FIFO channels", cfg.Consistency)
	}

	var faults *netsim.FaultConfig
	if cfg.FaultDrop != 0 || cfg.FaultDup != 0 || cfg.FaultSeed != 0 {
		faults = &netsim.FaultConfig{Drop: cfg.FaultDrop, Dup: cfg.FaultDup, Seed: cfg.FaultSeed}
	}
	col := metrics.NewCollector()
	net, err := netsim.New(string(cfg.Transport), numNodes, netsim.Options{
		FIFO:           !cfg.NonFIFO,
		MaxLatency:     cfg.MaxLatency,
		VirtualLatency: cfg.VirtualLatency,
		LatencyDist:    netsim.LatencyDist(cfg.LatencyDist),
		LatencyMatrix:  cfg.LatencyMatrix,
		Seed:           cfg.Seed,
		Faults:         faults,
		Metrics:        col,
		Workers:        cfg.TransportWorkers,
	})
	if err != nil {
		return nil, fmt.Errorf("partialdsm: %w", err)
	}
	sink := &faultSink{}
	var trans netsim.Transport = net
	var rel *netsim.Reliable
	if cfg.Reliable {
		if cfg.RetransmitTicks < 0 || cfg.RetransmitMax < 0 {
			net.Close()
			return nil, errors.New("partialdsm: RetransmitTicks and RetransmitMax must be non-negative")
		}
		rel = netsim.NewReliable(net, netsim.ReliableOptions{
			RetransmitTicks: uint64(cfg.RetransmitTicks),
			MaxRetries:      cfg.RetransmitMax,
			// A frame the layer gives up on is a permanent delivery
			// failure the sender can no longer mask; surface it as the
			// sending node's fault instead of only counting it.
			OnAbandon: func(from, to, attempts int) {
				sink.record(from, fmt.Errorf("netsim: peer %d unreachable, frame abandoned after %d transmissions", to, attempts))
			},
		})
		trans = rel
	}
	var rec *mcs.Recorder
	if !cfg.DisableTrace || cfg.LiveVerify {
		rec = mcs.NewRecorder(numNodes)
	}
	var monitor check.Monitor
	if cfg.LiveVerify {
		switch cfg.Consistency {
		case PRAM, Sequential:
			monitor = check.NewPRAMMonitor(numNodes)
		case Slow:
			monitor = check.NewSlowMonitor(numNodes)
		case CacheConsistency:
			monitor = check.NewCacheMonitor(numNodes)
		default:
			trans.Close()
			return nil, fmt.Errorf("partialdsm: LiveVerify is not supported for %s (its witness is not prefix-closed)", cfg.Consistency)
		}
		rec.SetObserver(func(node int, e check.Event) { _ = monitor.Feed(node, e) })
	}
	batch := cfg.CoalesceBatch
	if (cfg.CoalesceFlushTicks > 0 || cfg.CoalesceAdaptive) && batch < 2 {
		batch = 16 // engine-driven flushing implies coalescing
	}
	mc := mcs.Config{
		Net: trans, Placement: pl, Metrics: col, Recorder: rec,
		NonFIFO:            cfg.NonFIFO,
		CoalesceBatch:      batch,
		CoalesceFlushTicks: cfg.CoalesceFlushTicks,
		CoalesceAdaptive:   cfg.CoalesceAdaptive,
		OpDeadlineTicks:    cfg.OpDeadlineTicks,
		OnFault:            sink.record,
	}

	var nodes []mcs.Node
	switch cfg.Consistency {
	case PRAM:
		nodes, err = wrap(prampart.New(mc))
	case CausalFull:
		nodes, err = wrap(causalfull.New(mc))
	case CausalPartial:
		nodes, err = wrap(causalpart.New(mc, causalpart.ModeBroadcast))
	case CausalHoopAware:
		nodes, err = wrap(causalpart.New(mc, causalpart.ModeHoopAware))
	case Sequential:
		nodes, err = wrap(seqcons.New(mc))
	case Atomic:
		nodes, err = wrap(atomicreg.New(mc))
	case Slow:
		nodes, err = wrap(slowpart.New(mc))
	case CacheConsistency:
		nodes, err = wrap(cachepart.New(mc))
	default:
		err = fmt.Errorf("partialdsm: unknown consistency %q", cfg.Consistency)
	}
	if err != nil {
		trans.Close()
		return nil, err
	}
	c := &Cluster{cfg: cfg, pl: pl, net: trans, rel: rel, col: col, rec: rec, nodes: nodes, faults: sink, monitor: monitor}
	c.ix = pl.Index()
	c.cpl = pl
	c.ownerHist = []*sharegraph.Index{c.ix}
	c.crashed = make([]bool, numNodes)
	c.recoverWant = make([]int, numNodes)
	c.initAccessCounters()
	return c, nil
}

// Err returns the first protocol-level fault any node has reported: a
// malformed, misrouted or otherwise unprocessable frame the protocol
// dropped instead of applying. Nil means every delivered frame was
// processed. On a fault-free network a non-nil Err indicates a protocol
// bug; with fault injection (Config.FaultDrop/FaultDup) it is how a
// protocol whose wire format is not loss- or duplication-safe announces
// itself. Quiesce also fails fast with this error.
func (c *Cluster) Err() error { return c.faults.Err() }

// LiveError returns the first violation found by the live monitor
// (Config.LiveVerify), nil while the execution is consistent, and
// ErrNoTrace when live verification was not enabled.
func (c *Cluster) LiveError() error {
	if c.monitor == nil {
		return ErrNoTrace
	}
	return c.monitor.Err()
}

// wrap converts a typed node slice into the interface slice.
func wrap[T mcs.Node](nodes []T, err error) ([]mcs.Node, error) {
	if err != nil {
		return nil, err
	}
	out := make([]mcs.Node, len(nodes))
	for i, n := range nodes {
		out[i] = n
	}
	return out, nil
}

// NumNodes returns the number of nodes.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns a handle bound to node i. Each handle must be driven by
// a single application goroutine, matching the paper's model of one
// sequential application process per node.
func (c *Cluster) Node(i int) *NodeHandle {
	if i < 0 || i >= len(c.nodes) {
		panic(fmt.Sprintf("partialdsm: node %d out of range [0,%d)", i, len(c.nodes)))
	}
	return &NodeHandle{c: c, id: i, node: c.nodes[i]}
}

// Holds reports whether node i replicates variable x under the
// current epoch's placement — a snapshot: Reconfigure may change it.
func (c *Cluster) Holds(i int, x string) bool {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return c.cpl.Holds(i, x)
}

// Clique returns C(x), the nodes replicating x under the current
// epoch's placement — a snapshot: Reconfigure may change it.
func (c *Cluster) Clique(x string) []int {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return append([]int(nil), c.cpl.Clique(x)...)
}

// XRelevant returns the x-relevant nodes per Theorem 1, under the
// current epoch's placement — a snapshot: Reconfigure may change it.
func (c *Cluster) XRelevant(x string) []int {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return c.cpl.XRelevant(x)
}

// Vars returns the sorted variable universe. Unlike the placement,
// the universe is fixed for the cluster's lifetime — Reconfigure may
// move replicas but never add or drop variables.
func (c *Cluster) Vars() []string {
	return append([]string(nil), c.pl.Vars()...)
}

// VarsOf returns the sorted variables node i replicates (X_i) under
// the current epoch's placement — a snapshot: Reconfigure may change
// it.
func (c *Cluster) VarsOf(i int) []string {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	return c.cpl.VarsOf(i)
}

// Quiesce blocks until no message is in flight. With idle application
// goroutines this is a consistent global cut: all issued updates have
// been delivered everywhere they were addressed. Updates still
// coalesced in node outboxes (Config.CoalesceBatch) are flushed first,
// so the cut covers every issued write.
//
// Quiescing while a paused link (PauseLink) holds undelivered messages
// can never complete — the backlog cannot drain. Instead of hanging,
// Quiesce detects that state and returns a descriptive error without
// waiting; ResumeLink the named links and quiesce again. The check is
// a snapshot: a message that reaches a paused link only after Quiesce
// has begun waiting still blocks it, as before.
func (c *Cluster) Quiesce() error {
	if err := c.faults.Err(); err != nil {
		return err
	}
	for _, n := range c.nodes {
		if f, ok := n.(mcs.Flusher); ok {
			f.FlushUpdates()
		}
	}
	if bi, ok := c.net.(netsim.BacklogInspector); ok {
		if held := bi.PausedBacklog(); len(held) > 0 {
			total := 0
			for _, l := range held {
				total += l.Held
			}
			return fmt.Errorf("partialdsm: Quiesce cannot complete: %d messages held on %d paused links (first: link %d→%d holding %d); ResumeLink before quiescing",
				total, len(held), held[0].From, held[0].To, held[0].Held)
		}
	}
	c.net.Quiesce()
	return c.faults.Err()
}

// PauseLink suspends delivery on the ordered link from → to (messages
// queue, nothing is lost) — deterministic asynchrony injection for
// tests and experiments. Requires a FIFO network (the default) and a
// transport implementing netsim.LinkController (both built-in ones
// do). Quiesce while a paused link holds messages fails fast with a
// descriptive error instead of hanging.
func (c *Cluster) PauseLink(from, to int) { c.linkController().PauseLink(from, to) }

// ResumeLink releases a link paused by PauseLink; held messages are
// delivered in order.
func (c *Cluster) ResumeLink(from, to int) { c.linkController().ResumeLink(from, to) }

// linkController returns the transport's fault-injection interface.
func (c *Cluster) linkController() netsim.LinkController {
	lc, ok := c.net.(netsim.LinkController)
	if !ok {
		panic(fmt.Sprintf("partialdsm: transport %T does not support link pausing", c.net))
	}
	return lc
}

// CutLink hard-partitions the ordered link from → to: unlike PauseLink,
// messages sent while the link is cut are *lost*, not parked, so
// Quiesce completes normally and the protocols see genuine message
// loss. With Config.Reliable the retransmit layer masks a cut that
// heals before Config.RetransmitMax timeouts elapse.
func (c *Cluster) CutLink(from, to int) { c.faultController().CutLink(from, to) }

// HealLink restores a link cut by CutLink. Messages lost while it was
// cut stay lost (no replay).
func (c *Cluster) HealLink(from, to int) { c.faultController().HealLink(from, to) }

// CutLinkFor cuts the ordered link from → to and heals it after
// exactly `ticks` virtual ticks — a Window instance; see Window for
// why the bounded-virtual-time form is the fault-injection idiom
// seeded, engine-comparable experiments should use.
func (c *Cluster) CutLinkFor(from, to int, ticks uint64) {
	fc := c.faultController()
	c.Window(ticks,
		func() { fc.CutLink(from, to) },
		func() { fc.HealLink(from, to) })
}

// CrashNodeFor fail-stops node i at the next virtual-time advance and
// restarts it — volatile state wiped, recovery handshake started, like
// RestartNode — after exactly `ticks` virtual ticks. A Window
// instance: a crash window driven from an application goroutine has
// no defined virtual length, one scheduled on the clock does. Quiesce
// fires both callbacks (and the recovery they trigger) before
// returning.
func (c *Cluster) CrashNodeFor(i int, ticks uint64) error {
	if err := c.crashRestarter(i); err != nil {
		return err
	}
	fc := c.faultController()
	cr := c.nodes[i].(mcs.CrashRestarter)
	c.Window(ticks,
		func() {
			c.setCrashed(i, true)
			fc.Crash(i)
		},
		func() {
			cr.CrashRestart()
			c.installCurrentEpoch(i)
			fc.Restart(i)
			c.noteRecoverStart(i)
			cr.Recover()
		})
	return nil
}

// CrashNode fail-stops node i: messages to and from it — including any
// already in flight — are lost until RestartNode. All eight protocols
// support the crash/restart/recover cycle; the error return is kept
// for protocols registered out of tree that do not implement
// mcs.CrashRestarter (the node is then left running).
func (c *Cluster) CrashNode(i int) error {
	if err := c.crashRestarter(i); err != nil {
		return err
	}
	c.setCrashed(i, true)
	c.faultController().Crash(i)
	return nil
}

// RestartNode restarts a crashed node i with its volatile state wiped
// back to ⊥ (crash amnesia) while its durable write counters survive,
// reconnects it to the network, and starts the recovery handshake: the
// node fetches per-variable values and protocol metadata (sequence
// cursors, vector clocks, duplicate-suppression state) from its live
// peers over the normal transport, so pre-crash writes become readable
// again instead of every replica resting at ⊥. Recovery traffic is
// ordinary messages — it coalesces, draws latency, and is subject to
// the fault schedule like any other frame; snapshot requests retry a
// bounded number of times, and a node whose peers stay unreachable
// reports the failure through Err(). Stats separates the recovery
// traffic and counts completed rejoins. Values no surviving peer knew
// remain ⊥ (recorded as a recovery reset, which the witness checkers
// account for).
func (c *Cluster) RestartNode(i int) error {
	if err := c.crashRestarter(i); err != nil {
		return err
	}
	// Wipe before reconnecting: while the node is crashed no frame can
	// reach it, so the wipe cannot race a delivery. Epochs that
	// committed while the node was down (Failover) are installed next,
	// so recovery re-seeds its state under the current placement.
	cr := c.nodes[i].(mcs.CrashRestarter)
	cr.CrashRestart()
	c.installCurrentEpoch(i)
	c.faultController().Restart(i)
	c.noteRecoverStart(i)
	cr.Recover()
	return nil
}

// crashRestarter validates that node i supports the crash/restart
// cycle.
func (c *Cluster) crashRestarter(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("partialdsm: node %d out of range [0,%d)", i, len(c.nodes))
	}
	if _, ok := c.nodes[i].(mcs.CrashRestarter); !ok {
		return fmt.Errorf("partialdsm: %s does not support crash/restart (node state cannot rejoin)", c.cfg.Consistency)
	}
	return nil
}

// faultController returns the transport's hard-fault interface
// (partitions and crashes).
func (c *Cluster) faultController() netsim.FaultController {
	fc, ok := c.net.(netsim.FaultController)
	if !ok {
		panic(fmt.Sprintf("partialdsm: transport %T does not support fault injection", c.net))
	}
	return fc
}

// Close shuts the cluster down. The cluster must not be used afterward.
func (c *Cluster) Close() { c.net.Close() }

// NodeHandle exposes the operations of one application process. A
// handle (like the node itself) must be driven by a single application
// goroutine, matching the paper's model of one sequential application
// process per node.
type NodeHandle struct {
	c       *Cluster
	id      int
	node    mcs.Node
	scratch [8]byte // per-handle buffer for the int64 shim, no per-op alloc
}

// ID returns the node identifier.
func (h *NodeHandle) ID() int { return h.node.ID() }

// Put performs w_i(x)v with an opaque byte-string value (at most
// MaxValueLen bytes). The value is fully consumed before Put returns;
// the caller may reuse v. Wait-free protocols return after the local
// apply; ordering protocols block until the write is ordered.
func (h *NodeHandle) Put(x string, v []byte) error {
	h.c.countAccess(h.id, x, true)
	if len(v) > MaxValueLen {
		return fmt.Errorf("partialdsm: value for %s is %d bytes, max %d", x, len(v), MaxValueLen)
	}
	return h.node.Put(x, v)
}

// PutAsync performs w_i(x)v without blocking on the protocol's
// ordering round trip: the update is staged/sent (per that protocol's
// semantics) before PutAsync returns, and the returned Pending
// completes when a synchronous Put would have returned. For the
// wait-free protocols (PRAM, Slow, the causal family) completion is
// immediate; for the blocking protocols (Sequential, Atomic,
// CacheConsistency) Pending.Wait blocks until the write's ack. Any
// number of writes may be outstanding; they complete in issue order
// per destination. An operation issued before Wait returns is not
// ordered after the pending write. The blocking protocols' pipelining
// relies on per-pair FIFO order: on a Config.NonFIFO network their
// PutAsync degrades to the synchronous Put.
func (h *NodeHandle) PutAsync(x string, v []byte) (Pending, error) {
	h.c.countAccess(h.id, x, true)
	if len(v) > MaxValueLen {
		return nil, fmt.Errorf("partialdsm: value for %s is %d bytes, max %d", x, len(v), MaxValueLen)
	}
	return h.node.PutAsync(x, v)
}

// Get performs r_i(x) and returns the value as a fresh slice. Reads of
// never-written variables return BottomValue().
func (h *NodeHandle) Get(x string) ([]byte, error) {
	h.c.countAccess(h.id, x, false)
	return h.node.Get(x, nil)
}

// GetInto performs r_i(x), appending the value to dst[:0] and
// returning the result — the allocation-free read path: with enough
// capacity in dst, a wait-free protocol's GetInto is 0 allocs/op.
func (h *NodeHandle) GetInto(x string, dst []byte) ([]byte, error) {
	h.c.countAccess(h.id, x, false)
	return h.node.Get(x, dst)
}

// Write performs w_i(x)v through the legacy int64 API: a thin shim
// over Put with the 8-byte big-endian encoding of v, byte-identical on
// the wire to the pre-v2 format.
func (h *NodeHandle) Write(x string, v int64) error {
	h.c.countAccess(h.id, x, true)
	binary.BigEndian.PutUint64(h.scratch[:], uint64(v))
	return h.node.Put(x, h.scratch[:])
}

// Read performs r_i(x) through the legacy int64 API. Reads of
// never-written variables return Bottom; reading a variable whose
// current value is not 8 bytes is an error (use Get).
func (h *NodeHandle) Read(x string) (int64, error) {
	h.c.countAccess(h.id, x, false)
	v, err := h.node.Get(x, h.scratch[:0])
	if err != nil {
		return 0, err
	}
	if len(v) != 8 {
		return 0, fmt.Errorf("partialdsm: value of %s is %d bytes, not an int64 word; use Get", x, len(v))
	}
	return int64(binary.BigEndian.Uint64(v)), nil
}

// Pending is the completion handle of an asynchronous write
// (PutAsync). Wait blocks until the write has completed per the
// protocol's semantics and may be called from any goroutine, once or
// many times.
type Pending interface {
	Wait() error
}

// Batch is an immutable builder of a group of operations applied in
// one Apply call. The zero value is an empty batch; Put and Get return
// extended copies, so batches compose like slices:
//
//	res, err := h.Apply(partialdsm.Batch{}.
//		Put("x", []byte("a")).
//		Put("y", []byte("b")).
//		Get("x"))
//
// On the wait-free protocols a batch rides the per-destination
// coalescing outbox: every update staged by the batch leaves as one
// frame per destination when Apply returns — k writes to one clique
// are one message per member, not k — regardless of the cluster's
// coalescing configuration. On the blocking protocols the writes are
// pipelined with PutAsync and settled before any Get and at the end of
// the batch. A batch is a convenience and a batching hint, not a
// transaction: operations apply in order with exactly the cluster's
// consistency semantics, and an error leaves earlier operations
// applied.
type Batch struct {
	ops []batchOp
}

// batchOp is one operation of a Batch.
type batchOp struct {
	get bool
	x   string
	v   []byte
}

// Put appends w(x)v to the batch. The value slice is retained until
// Apply; do not mutate it in between.
func (b Batch) Put(x string, v []byte) Batch {
	b.ops = append(b.ops[:len(b.ops):len(b.ops)], batchOp{x: x, v: v})
	return b
}

// PutInt64 appends w(x)v through the legacy int64 representation.
func (b Batch) PutInt64(x string, v int64) Batch {
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(v))
	return b.Put(x, buf)
}

// Get appends r(x) to the batch; its value lands in the BatchResult,
// in Get order.
func (b Batch) Get(x string) Batch {
	b.ops = append(b.ops[:len(b.ops):len(b.ops)], batchOp{get: true, x: x})
	return b
}

// Len returns the number of operations in the batch.
func (b Batch) Len() int { return len(b.ops) }

// BatchResult holds the values read by a batch's Gets.
type BatchResult struct {
	vals [][]byte
}

// Len returns the number of completed Gets.
func (r *BatchResult) Len() int { return len(r.vals) }

// Bytes returns the value of the i-th Get of the batch.
func (r *BatchResult) Bytes(i int) []byte { return r.vals[i] }

// Int64 returns the i-th Get's value through the legacy int64
// representation.
func (r *BatchResult) Int64(i int) (int64, error) {
	v := r.vals[i]
	if len(v) != 8 {
		return 0, fmt.Errorf("partialdsm: batch value %d is %d bytes, not an int64 word", i, len(v))
	}
	return int64(binary.BigEndian.Uint64(v)), nil
}

// Apply executes the batch on this node. Operations run in batch
// order; the returned BatchResult collects the Gets' values. On error
// the batch stops, already-issued operations stay applied, and every
// staged update is still flushed.
func (h *NodeHandle) Apply(b Batch) (*BatchResult, error) {
	for _, op := range b.ops {
		h.c.countAccess(h.id, op.x, !op.get)
		if !op.get && len(op.v) > MaxValueLen {
			return nil, fmt.Errorf("partialdsm: value for %s is %d bytes, max %d", op.x, len(op.v), MaxValueLen)
		}
	}
	res := &BatchResult{}
	if bt, ok := h.node.(mcs.Batcher); ok {
		// Wait-free protocol: hold the outbox open across the batch so
		// everything staged leaves as one frame per destination.
		bt.BeginBatch()
		defer bt.EndBatch()
		for _, op := range b.ops {
			if op.get {
				v, err := h.node.Get(op.x, nil)
				if err != nil {
					return res, err
				}
				res.vals = append(res.vals, v)
			} else if err := h.node.Put(op.x, op.v); err != nil {
				return res, err
			}
		}
		return res, nil
	}
	// Blocking protocol: pipeline the writes, settle them before any
	// read (preserving read-your-writes in batch order) and at the end.
	var outstanding []mcs.Pending
	settle := func() error {
		for _, p := range outstanding {
			if err := p.Wait(); err != nil {
				return err
			}
		}
		outstanding = outstanding[:0]
		return nil
	}
	for _, op := range b.ops {
		if op.get {
			if err := settle(); err != nil {
				return res, err
			}
			v, err := h.node.Get(op.x, nil)
			if err != nil {
				return res, err
			}
			res.vals = append(res.vals, v)
		} else {
			p, err := h.node.PutAsync(op.x, op.v)
			if err != nil {
				return res, err
			}
			outstanding = append(outstanding, p)
		}
	}
	return res, settle()
}

// Stats is a snapshot of the cluster's communication metrics.
type Stats struct {
	// Msgs counts network messages sent.
	Msgs int64
	// CtrlBytes and DataBytes split the wire volume into control
	// information and variable data.
	CtrlBytes, DataBytes int64
	// MsgsByKind counts messages per protocol message kind.
	MsgsByKind map[string]int64
	// Touch maps node → the sorted variables the node has sent or
	// received information about.
	Touch map[int][]string
	// DelaySamples counts messages whose virtual delivery delay was
	// recorded (Config.VirtualLatency; zero otherwise). The paper's
	// delay/efficiency trade-off becomes measurable through the
	// summary below: one virtual tick is one nanosecond of configured
	// latency. Each sample is the message's drawn delay — a pure
	// function of (Seed, sender, receiver, per-link sequence), so the
	// histogram of a given workload is identical across runs and
	// transports.
	DelaySamples int64
	// DelayMean, DelayP99 and DelayMax summarize the per-message
	// virtual delivery-delay histogram (P99 is an upper-bound estimate
	// from log₂ buckets).
	DelayMean, DelayP99, DelayMax time.Duration
	// Faults counts injected network faults by kind ("drop", "dup",
	// "partition", "crash"); nil when no fault fired.
	Faults map[string]int64
	// Retransmits, DupsSuppressed, AcksSent and Abandoned report the
	// recovery work of the ack/retransmit layer (Config.Reliable; zero
	// otherwise). Abandoned counts frames given up on after
	// Config.RetransmitMax retries — nonzero only across unhealed
	// partitions or crashes.
	Retransmits, DupsSuppressed, AcksSent, Abandoned int64
	// Recoveries counts completed crash-recovery handshakes
	// (RestartNode cycles whose snapshot merge finished), RecoveryMsgs
	// the snapshot requests and responses that crossed the wire for
	// them, and RecoveryTicks the summed virtual time from each
	// Recover() to its rejoin completing — the protocol-level cost of
	// crash recovery, separated from steady-state traffic.
	Recoveries    int
	RecoveryMsgs  int64
	RecoveryTicks uint64
	// ReconfigMsgs counts the messages of the epoch reconfiguration
	// protocol (Reconfigure/Failover): proposals, fences, state
	// transfers, readies and commits — the protocol-level cost of live
	// migration, separated from steady-state traffic.
	ReconfigMsgs int64
	// ReadCounts and WriteCounts are the cumulative per-node,
	// per-variable application operation counts (indexed by node;
	// variables a node never touched are absent from its map). They
	// count attempts, not granted operations — demand from outside a
	// variable's clique is included, which is exactly what a placement
	// policy wants to see. The same counters, windowed between policy
	// decisions, feed Policy.Plan.
	ReadCounts, WriteCounts []map[string]int64
}

// Stats returns a snapshot of the communication metrics.
func (c *Cluster) Stats() Stats {
	s := c.col.Snapshot()
	out := Stats{
		Msgs:       s.Msgs,
		CtrlBytes:  s.CtrlBytes,
		DataBytes:  s.DataBytes,
		MsgsByKind: s.PerKind,
		Touch:      s.Touch,
	}
	if s.Delay.Count > 0 {
		out.DelaySamples = s.Delay.Count
		out.DelayMean = time.Duration(s.Delay.MeanTicks)
		out.DelayP99 = time.Duration(s.Delay.QuantileTicks(0.99))
		out.DelayMax = time.Duration(s.Delay.MaxTicks)
	}
	out.Faults = s.Faults
	if c.rel != nil {
		rs := c.rel.Stats()
		out.Retransmits = rs.Retransmits
		out.DupsSuppressed = rs.DupsSuppressed
		out.AcksSent = rs.AcksSent
		out.Abandoned = rs.Abandoned
	}
	out.RecoveryMsgs = s.PerKind[mcs.KindSnapReq] + s.PerKind[mcs.KindSnapResp]
	for _, k := range []string{mcs.KindEpochPropose, mcs.KindEpochFence, mcs.KindEpochMigReq,
		mcs.KindEpochMigResp, mcs.KindEpochReady, mcs.KindEpochCommit} {
		out.ReconfigMsgs += s.PerKind[k]
	}
	for _, n := range c.nodes {
		if cr, ok := n.(mcs.CrashRestarter); ok {
			recs, ticks := cr.RecoveryStats()
			out.Recoveries += recs
			out.RecoveryTicks += ticks
		}
	}
	access := c.accessMaps(c.accessSnapshot())
	out.ReadCounts, out.WriteCounts = access.Reads, access.Writes
	return out
}

// VerifyEfficiency checks the paper's efficiency property (§3): for
// every variable x, only processes of C(x) have ever sent or received
// information about x. It returns nil when the property holds and a
// descriptive error naming the first violation otherwise.
//
// On a reconfigured cluster the check runs against the union of every
// attempted epoch's cliques — the touch metrics span the whole run,
// and transfer traffic legitimately reaches a variable's prospective
// replicas — so the property becomes: information about x never
// reached a process that was not in C(x) under any epoch.
//
// PRAM and Slow clusters satisfy it (Theorem 2); the causal
// configurations do not in general (Theorem 1).
func (c *Cluster) VerifyEfficiency() error {
	c.cmu.Lock()
	union := c.cliqueUnion
	c.cmu.Unlock()
	for _, x := range c.pl.Vars() {
		cx := make(map[int]bool)
		for _, p := range c.pl.Clique(x) {
			cx[p] = true
		}
		for p := range union[x] {
			cx[p] = true
		}
		for p := 0; p < c.pl.NumProcs(); p++ {
			if !cx[p] && c.col.Touched(p, x) {
				return fmt.Errorf("partialdsm: node %d handled information about %s but was never in C(%s) under any epoch",
					p, x, x)
			}
		}
	}
	return nil
}

// VerifyRelevanceBound checks the weaker Theorem 1 bound: information
// about x reaches only x-relevant processes (C(x) plus x-hoop members).
// CausalHoopAware satisfies this; CausalPartial and CausalFull do not
// on topologies with x-irrelevant processes. Like VerifyEfficiency,
// a reconfigured cluster is checked against the union of every
// attempted epoch's relevance sets.
func (c *Cluster) VerifyRelevanceBound() error {
	c.cmu.Lock()
	union := c.relUnion
	c.cmu.Unlock()
	for _, x := range c.pl.Vars() {
		rel := make(map[int]bool)
		for _, p := range c.pl.XRelevant(x) {
			rel[p] = true
		}
		for p := range union[x] {
			rel[p] = true
		}
		for p := 0; p < c.pl.NumProcs(); p++ {
			if !rel[p] && c.col.Touched(p, x) {
				return fmt.Errorf("partialdsm: node %d handled information about %s but was never %s-relevant under any epoch",
					p, x, x)
			}
		}
	}
	return nil
}

// VerifyWitness validates the recorded execution against the witness
// conditions of the cluster's consistency criterion (polynomial-time,
// suitable for large traces). Application goroutines must be idle and
// the cluster quiesced.
func (c *Cluster) VerifyWitness() error {
	if c.rec == nil {
		return ErrNoTrace
	}
	if err := c.Quiesce(); err != nil {
		return err
	}
	logs := c.rec.Logs()
	switch c.cfg.Consistency {
	case PRAM, Sequential:
		// Sequential executions satisfy the PRAM witness a fortiori;
		// their full strength is checked by CheckHistory.
		return check.WitnessPRAM(c.rec.NumProcs(), logs)
	case Atomic:
		c.cmu.Lock()
		hist := append([]*sharegraph.Index(nil), c.ownerHist...)
		c.cmu.Unlock()
		return check.WitnessAtomicDynamic(c.rec.NumProcs(), logs, func(x string, epoch uint64) (int, bool) {
			// Owners at the largest committed epoch ≤ the event's stamp
			// (committed epoch numbers are sparse: aborted attempts burn
			// numbers without entering the history).
			var ix *sharegraph.Index
			for _, h := range hist {
				if h.Epoch() > epoch {
					break
				}
				ix = h
			}
			if ix == nil {
				return -1, false
			}
			id := ix.ID(x)
			if id < 0 {
				return -1, false
			}
			if own := ix.Owner(id); own >= 0 {
				return own, true
			}
			return -1, false
		})
	case Slow:
		return check.WitnessSlow(c.rec.NumProcs(), logs)
	case CacheConsistency:
		return check.WitnessCache(c.rec.NumProcs(), logs)
	case CausalFull, CausalPartial, CausalHoopAware:
		h, err := c.rec.History()
		if err != nil {
			return err
		}
		return check.WitnessCausal(h, logs)
	default:
		return fmt.Errorf("partialdsm: no witness validator for %s", c.cfg.Consistency)
	}
}

// CheckHistory runs the exact consistency checkers of the execution
// model on the recorded history and returns the verdict per criterion
// name ("sequential", "causal", "lazy-causal", "lazy-semi-causal",
// "pram", "slow"). The exact checkers are exponential in the worst
// case: use only on small runs (≲ 24 operations).
func (c *Cluster) CheckHistory() (map[string]bool, error) {
	if c.rec == nil {
		return nil, ErrNoTrace
	}
	if err := c.Quiesce(); err != nil {
		return nil, err
	}
	h, err := c.rec.History()
	if err != nil {
		return nil, err
	}
	verdicts, err := check.CheckAll(h)
	if err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(verdicts))
	for crit, v := range verdicts {
		out[string(crit)] = v
	}
	return out, nil
}

// History materializes the recorded global history as a model.History
// for in-module tooling (the cmd/ binaries and tests); external users
// should prefer HistoryJSON.
func (c *Cluster) History() (*model.History, error) {
	if c.rec == nil {
		return nil, ErrNoTrace
	}
	if err := c.Quiesce(); err != nil {
		return nil, err
	}
	return c.rec.History()
}

// HistoryJSON exports the recorded history in the JSON format consumed
// by cmd/dsm-check.
func (c *Cluster) HistoryJSON() ([]byte, error) {
	if c.rec == nil {
		return nil, ErrNoTrace
	}
	if err := c.Quiesce(); err != nil {
		return nil, err
	}
	h, err := c.rec.History()
	if err != nil {
		return nil, err
	}
	return h.MarshalJSON()
}

// ExportTrace serializes the execution — consistency configuration,
// placement, global history and per-node event logs — as a portable
// JSON snapshot that cmd/dsm-check (-trace) and internal/trace can
// verify offline.
func (c *Cluster) ExportTrace() ([]byte, error) {
	if c.rec == nil {
		return nil, ErrNoTrace
	}
	if err := c.Quiesce(); err != nil {
		return nil, err
	}
	h, err := c.rec.History()
	if err != nil {
		return nil, err
	}
	placement := make([][]string, c.pl.NumProcs())
	for p := range placement {
		placement[p] = c.pl.VarsOf(p)
	}
	return trace.Encode(string(c.cfg.Consistency), placement, h, c.rec.Logs())
}

// OpCount returns the number of recorded operations (0 without trace).
func (c *Cluster) OpCount() int {
	if c.rec == nil {
		return 0
	}
	return c.rec.OpCount()
}
