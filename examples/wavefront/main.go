// Wavefront dynamic programming on PRAM memory: edit distance between
// two strings, computed by one worker per DP row. The paper's §5 cites
// dynamic programming among the applications PRAM memories solve.
//
// Worker i owns DP row i and shares it with exactly one consumer —
// worker i+1 — so the share graph is a chain and partial replication
// keeps row data strictly local to the producer/consumer pair.
// A progress counter per row turns PRAM's per-sender program order
// into the wavefront: worker i writes d[i][j] before advancing
// prog_i to j+1, so worker i+1 seeing prog_i > j has the cell.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"partialdsm"
)

const (
	sWord = "kitten"
	tWord = "sitting"
)

func dVar(i, j int) string { return fmt.Sprintf("d_%d_%d", i, j) }
func pVar(i int) string    { return fmt.Sprintf("prog_%d", i) }

func main() {
	rows := len(sWord) + 1 // one worker per DP row
	cols := len(tWord) + 1

	// Placement: worker i holds row i and row i-1 plus the two progress
	// counters involved.
	placement := make([][]string, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			placement[i] = append(placement[i], dVar(i, j))
			if i > 0 {
				placement[i] = append(placement[i], dVar(i-1, j))
			}
		}
		placement[i] = append(placement[i], pVar(i))
		if i > 0 {
			placement[i] = append(placement[i], pVar(i-1))
		}
	}

	cluster, err := partialdsm.New(partialdsm.Config{
		Consistency: partialdsm.PRAM,
		Placement:   placement,
		Seed:        5,
		MaxLatency:  150 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	for i := 0; i < rows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := cluster.Node(i)
			row := make([]int64, cols)
			for j := 0; j < cols; j++ {
				var val int64
				switch {
				case i == 0:
					val = int64(j) // base row: distance from empty prefix
				case j == 0:
					val = int64(i)
				default:
					// Wait for the upper row to reach column j.
					for {
						p, err := w.Read(pVar(i - 1))
						must(err)
						if p > int64(j) {
							break
						}
						time.Sleep(20 * time.Microsecond)
					}
					up, err := w.Read(dVar(i-1, j))
					must(err)
					diag, err := w.Read(dVar(i-1, j-1))
					must(err)
					left := row[j-1]
					cost := int64(1)
					if sWord[i-1] == tWord[j-1] {
						cost = 0
					}
					val = min3(diag+cost, up+1, left+1)
				}
				row[j] = val
				must(w.Write(dVar(i, j), val))
				must(w.Write(pVar(i), int64(j+1)))
			}
		}(i)
	}
	wg.Wait()
	cluster.Quiesce()

	got, err := cluster.Node(rows - 1).Read(dVar(rows-1, cols-1))
	must(err)
	want := editDistance(sWord, tWord)
	fmt.Printf("edit distance(%q, %q): wavefront %d, sequential oracle %d\n", sWord, tWord, got, want)
	if got != int64(want) {
		log.Fatal("mismatch with sequential DP")
	}
	if err := cluster.VerifyWitness(); err != nil {
		log.Fatalf("PRAM witness violated: %v", err)
	}
	if err := cluster.VerifyEfficiency(); err != nil {
		log.Fatalf("efficiency violated: %v", err)
	}
	st := cluster.Stats()
	fmt.Printf("workers: %d (one per DP row); traffic: %d msgs, %d ctrl bytes\n",
		rows, st.Msgs, st.CtrlBytes)
	fmt.Println("verified: PRAM-consistent and efficient (row data never left its producer/consumer pair)")
}

func min3(a, b, c int64) int64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func editDistance(s, t string) int {
	prev := make([]int, len(t)+1)
	cur := make([]int, len(t)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(s); i++ {
		cur[0] = i
		for j := 1; j <= len(t); j++ {
			cost := 1
			if s[i-1] == t[j-1] {
				cost = 0
			}
			cur[j] = min3int(prev[j-1]+cost, prev[j]+1, cur[j-1]+1)
		}
		prev, cur = cur, prev
	}
	return prev[len(t)]
}

func min3int(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
