// Wavefront dynamic programming on PRAM memory: edit distance between
// two strings, computed by one worker per DP row. The paper's §5 cites
// dynamic programming among the applications PRAM memories solve.
//
// Worker i owns DP row i and shares it with exactly one consumer —
// worker i+1 — so the share graph is a chain and partial replication
// keeps row data strictly local to the producer/consumer pair.
// A progress counter per row turns PRAM's per-sender program order
// into the wavefront: worker i writes d[i][j] before advancing
// prog_i to j+1, so worker i+1 seeing prog_i > j has the cell.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"partialdsm"
)

func dVar(i, j int) string { return fmt.Sprintf("d_%d_%d", i, j) }
func pVar(i int) string    { return fmt.Sprintf("prog_%d", i) }

func main() {
	if err := run(os.Stdout, "kitten", "sitting", partialdsm.TransportClassic); err != nil {
		log.Fatal(err)
	}
}

// run computes the edit distance between sWord and tWord on a
// wavefront of PRAM workers (one per DP row) and verifies the result,
// the PRAM witness and the efficiency property.
func run(w io.Writer, sWord, tWord string, transport partialdsm.Transport) error {
	rows := len(sWord) + 1 // one worker per DP row
	cols := len(tWord) + 1

	// Placement: worker i holds row i and row i-1 plus the two progress
	// counters involved.
	placement := make([][]string, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			placement[i] = append(placement[i], dVar(i, j))
			if i > 0 {
				placement[i] = append(placement[i], dVar(i-1, j))
			}
		}
		placement[i] = append(placement[i], pVar(i))
		if i > 0 {
			placement[i] = append(placement[i], pVar(i-1))
		}
	}

	cluster, err := partialdsm.New(partialdsm.Config{
		Consistency: partialdsm.PRAM,
		Placement:   partialdsm.PlacementFromLists(placement),
		Seed:        5,
		MaxLatency:  150 * time.Microsecond,
		Transport:   transport,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	var aborted atomic.Bool // set on first worker error so pollers bail out
	errs := make(chan error, rows)
	for i := 0; i < rows; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := worker(cluster, i, cols, sWord, tWord, &aborted); err != nil {
				aborted.Store(true)
				errs <- fmt.Errorf("worker %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	cluster.Quiesce()

	got, err := cluster.Node(rows - 1).Read(dVar(rows-1, cols-1))
	if err != nil {
		return err
	}
	want := editDistance(sWord, tWord)
	fmt.Fprintf(w, "edit distance(%q, %q): wavefront %d, sequential oracle %d\n", sWord, tWord, got, want)
	if got != int64(want) {
		return fmt.Errorf("wavefront result %d disagrees with sequential DP %d", got, want)
	}
	if err := cluster.VerifyWitness(); err != nil {
		return fmt.Errorf("PRAM witness violated: %w", err)
	}
	if err := cluster.VerifyEfficiency(); err != nil {
		return fmt.Errorf("efficiency violated: %w", err)
	}
	st := cluster.Stats()
	fmt.Fprintf(w, "workers: %d (one per DP row); traffic: %d msgs, %d ctrl bytes\n",
		rows, st.Msgs, st.CtrlBytes)
	fmt.Fprintln(w, "verified: PRAM-consistent and efficient (row data never left its producer/consumer pair)")
	return nil
}

// worker computes DP row i left to right, waiting on row i-1's
// progress counter for each cell's upper dependencies. A set aborted
// flag means another worker failed; bail out instead of polling for
// progress that will never come.
func worker(cluster *partialdsm.Cluster, i, cols int, sWord, tWord string, aborted *atomic.Bool) error {
	nd := cluster.Node(i)
	row := make([]int64, cols)
	for j := 0; j < cols; j++ {
		var val int64
		switch {
		case i == 0:
			val = int64(j) // base row: distance from empty prefix
		case j == 0:
			val = int64(i)
		default:
			// Wait for the upper row to reach column j.
			for {
				if aborted.Load() {
					return fmt.Errorf("aborting: another worker failed")
				}
				p, err := nd.Read(pVar(i - 1))
				if err != nil {
					return err
				}
				if p > int64(j) {
					break
				}
				time.Sleep(20 * time.Microsecond)
			}
			up, err := nd.Read(dVar(i-1, j))
			if err != nil {
				return err
			}
			diag, err := nd.Read(dVar(i-1, j-1))
			if err != nil {
				return err
			}
			left := row[j-1]
			cost := int64(1)
			if sWord[i-1] == tWord[j-1] {
				cost = 0
			}
			val = min3(diag+cost, up+1, left+1)
		}
		row[j] = val
		if err := nd.Write(dVar(i, j), val); err != nil {
			return err
		}
		if err := nd.Write(pVar(i), int64(j+1)); err != nil {
			return err
		}
	}
	return nil
}

func min3(a, b, c int64) int64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func editDistance(s, t string) int {
	prev := make([]int, len(t)+1)
	cur := make([]int, len(t)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(s); i++ {
		cur[0] = i
		for j := 1; j <= len(t); j++ {
			cost := 1
			if s[i-1] == t[j-1] {
				cost = 0
			}
			cur[j] = min3int(prev[j-1]+cost, prev[j]+1, cur[j-1]+1)
		}
		prev, cur = cur, prev
	}
	return prev[len(t)]
}

func min3int(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
