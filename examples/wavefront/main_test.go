package main

import (
	"strings"
	"testing"
	"time"

	"partialdsm"
)

// TestWavefrontTinyInput runs the wavefront on a tiny word pair under
// a deadline, on both transports.
func TestWavefrontTinyInput(t *testing.T) {
	for _, tr := range []partialdsm.Transport{partialdsm.TransportClassic, partialdsm.TransportSharded} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			var sb strings.Builder
			done := make(chan error, 1)
			go func() { done <- run(&sb, "ab", "b", tr) }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("wavefront did not finish within the deadline")
			}
			if !strings.Contains(sb.String(), "wavefront 1, sequential oracle 1") {
				t.Errorf("unexpected output:\n%s", sb.String())
			}
		})
	}
}

func TestEditDistanceOracle(t *testing.T) {
	for _, tc := range []struct {
		s, t string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"kitten", "sitting", 3}, {"ab", "b", 1},
	} {
		if got := editDistance(tc.s, tc.t); got != tc.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", tc.s, tc.t, got, tc.want)
		}
	}
}
