package main

import (
	"strings"
	"testing"
	"time"
)

// TestShareGraphWalkthrough runs the walkthrough under a deadline and
// spot-checks the Theorem 1 conclusions in its output.
func TestShareGraphWalkthrough(t *testing.T) {
	var sb strings.Builder
	done := make(chan error, 1)
	go func() { done <- run(&sb) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("walkthrough did not finish within the deadline")
	}
	out := sb.String()
	for _, want := range []string{
		"C(x) = [0 3 5]",
		"x-relevant processes (Theorem 1):",
		"PRAM admits efficient partial",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
