// Share-graph walkthrough: Theorem 1 on a concrete topology. Builds a
// placement, enumerates hoops, computes the x-relevant sets, constructs
// the canonical dependency-chain history of Figure 3, and shows how the
// consistency checkers classify it.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"partialdsm/internal/check"
	"partialdsm/internal/model"
	"partialdsm/internal/sharegraph"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the testable core of the walkthrough.
func run(w io.Writer) error {
	// Six processes. C(x) = {0, 5}; a chain of processes 1..4 connects
	// them through link variables, and process 2 additionally dangles a
	// pendant neighbour that is NOT on any hoop.
	pl := sharegraph.NewPlacement(6).
		Assign(0, "x", "a").
		Assign(1, "a", "b").
		Assign(2, "b", "c", "p").
		Assign(3, "c", "x").
		Assign(4, "p"). // pendant: single anchor, x-irrelevant
		Assign(5, "x")
	fmt.Fprintln(w, "placement:")
	fmt.Fprint(w, pl)

	fmt.Fprintln(w, "\nshare graph (DOT):")
	fmt.Fprint(w, pl.DOT())

	fmt.Fprintf(w, "\nC(x) = %v\n", pl.Clique("x"))
	fmt.Fprintln(w, "x-hoops:")
	for _, h := range pl.Hoops("x", 0) {
		fmt.Fprintf(w, "  %v\n", h.Path)
	}
	rel := pl.XRelevant("x")
	fmt.Fprintf(w, "x-relevant processes (Theorem 1): %v\n", rel)
	fmt.Fprintln(w, "  → processes 1 and 2 must carry x-information under causal consistency")
	fmt.Fprintln(w, "  → process 4 (pendant) and nobody else stays clean")

	// Build the Figure 3 dependency chain along the hoop [0,1,2,3] and
	// classify the two endings.
	hoop := sharegraph.Hoop{Var: "x", Path: []int{0, 1, 2, 3}}
	fresh, err := pl.DependencyChainHistory(sharegraph.ChainSpec{Hoop: hoop})
	if err != nil {
		return err
	}
	stale, err := pl.DependencyChainHistory(sharegraph.ChainSpec{Hoop: hoop, FinalReadsStale: true})
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "\ncanonical dependency-chain history (final read returns the chained value):")
	fmt.Fprint(w, fresh)
	if err := report(w, fresh); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nsame chain, but the final read returns ⊥ (the causally forbidden outcome):")
	fmt.Fprint(w, stale)
	if err := report(w, stale); err != nil {
		return err
	}

	fmt.Fprintln(w, "\nconclusion: causal consistency forces the chain's information through")
	fmt.Fprintln(w, "processes 1 and 2; PRAM does not — hence PRAM admits efficient partial")
	fmt.Fprintln(w, "replication (paper, Theorems 1 and 2).")
	return nil
}

func report(w io.Writer, h *model.History) error {
	verdicts, err := check.CheckAll(h)
	if err != nil {
		return err
	}
	for _, c := range check.Criteria {
		fmt.Fprintf(w, "  %-18s %v\n", c, verdicts[c])
	}
	return nil
}
