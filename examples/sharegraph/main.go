// Share-graph walkthrough: Theorem 1 on a concrete topology. Builds a
// placement, enumerates hoops, computes the x-relevant sets, constructs
// the canonical dependency-chain history of Figure 3, and shows how the
// consistency checkers classify it.
package main

import (
	"fmt"
	"log"

	"partialdsm/internal/check"
	"partialdsm/internal/model"
	"partialdsm/internal/sharegraph"
)

func main() {
	// Six processes. C(x) = {0, 5}; a chain of processes 1..4 connects
	// them through link variables, and process 2 additionally dangles a
	// pendant neighbour that is NOT on any hoop.
	pl := sharegraph.NewPlacement(6).
		Assign(0, "x", "a").
		Assign(1, "a", "b").
		Assign(2, "b", "c", "p").
		Assign(3, "c", "x").
		Assign(4, "p"). // pendant: single anchor, x-irrelevant
		Assign(5, "x")
	fmt.Println("placement:")
	fmt.Print(pl)

	fmt.Println("\nshare graph (DOT):")
	fmt.Print(pl.DOT())

	fmt.Printf("\nC(x) = %v\n", pl.Clique("x"))
	fmt.Println("x-hoops:")
	for _, h := range pl.Hoops("x", 0) {
		fmt.Printf("  %v\n", h.Path)
	}
	rel := pl.XRelevant("x")
	fmt.Printf("x-relevant processes (Theorem 1): %v\n", rel)
	fmt.Println("  → processes 1 and 2 must carry x-information under causal consistency")
	fmt.Println("  → process 4 (pendant) and nobody else stays clean")

	// Build the Figure 3 dependency chain along the hoop [0,1,2,3] and
	// classify the two endings.
	hoop := sharegraph.Hoop{Var: "x", Path: []int{0, 1, 2, 3}}
	fresh, err := pl.DependencyChainHistory(sharegraph.ChainSpec{Hoop: hoop})
	if err != nil {
		log.Fatal(err)
	}
	stale, err := pl.DependencyChainHistory(sharegraph.ChainSpec{Hoop: hoop, FinalReadsStale: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncanonical dependency-chain history (final read returns the chained value):")
	fmt.Print(fresh)
	report(fresh)

	fmt.Println("\nsame chain, but the final read returns ⊥ (the causally forbidden outcome):")
	fmt.Print(stale)
	report(stale)

	fmt.Println("\nconclusion: causal consistency forces the chain's information through")
	fmt.Println("processes 1 and 2; PRAM does not — hence PRAM admits efficient partial")
	fmt.Println("replication (paper, Theorems 1 and 2).")
}

func report(h *model.History) {
	verdicts, err := check.CheckAll(h)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range check.Criteria {
		fmt.Printf("  %-18s %v\n", c, verdicts[c])
	}
}
