// Runtime verification: attach an online consistency monitor to a
// running cluster, inject a deterministic network partition with
// PauseLink, and export the execution as a portable trace snapshot for
// offline auditing with dsm-check -trace.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"partialdsm"
)

func main() {
	cluster, err := partialdsm.New(partialdsm.Config{
		Consistency: partialdsm.PRAM,
		Placement:   [][]string{{"x", "y"}, {"y"}, {"x", "y"}},
		Seed:        17,
		LiveVerify:  true, // O(1)-per-event online PRAM witness
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	n0, n1, n2 := cluster.Node(0), cluster.Node(1), cluster.Node(2)

	// Withhold the direct link 0→2 and push a dependency chain through
	// node 1 — the adversarial schedule of the paper's Figure 3.
	cluster.PauseLink(0, 2)
	must(n0.Write("x", 1))
	must(n0.Write("y", 2))
	waitFor(n1, "y", 2)
	must(n1.Write("y", 3))
	waitFor(n2, "y", 3)

	// Node 2 has seen node 1's y' but not node 0's x: stale under
	// causal consistency, fine under PRAM.
	v, err := n2.Read("x")
	must(err)
	fmt.Printf("node 2 read x = %v after observing y' (⊥ = %v)\n", v, v == partialdsm.Bottom)

	cluster.ResumeLink(0, 2)
	cluster.Quiesce()

	// The online monitor saw every event live and found no PRAM
	// violation — even across the partition.
	if err := cluster.LiveError(); err != nil {
		log.Fatalf("online monitor: %v", err)
	}
	fmt.Println("online PRAM monitor: no violation across the whole run")

	// Post-hoc, the exact checkers prove the run was NOT causal:
	verdicts, err := cluster.CheckHistory()
	must(err)
	fmt.Printf("exact checkers: pram=%v causal=%v (the protocols differ observably)\n",
		verdicts["pram"], verdicts["causal"])

	// Export the execution for offline auditing.
	snapshot, err := cluster.ExportTrace()
	must(err)
	path := "trace.json"
	must(os.WriteFile(path, snapshot, 0o644))
	fmt.Printf("trace exported to %s (%d bytes) — verify with: go run ./cmd/dsm-check -trace %s\n",
		path, len(snapshot), path)
}

func waitFor(n *partialdsm.NodeHandle, x string, want int64) {
	for {
		v, err := n.Read(x)
		must(err)
		if v == want {
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
