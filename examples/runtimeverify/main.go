// Runtime verification: attach an online consistency monitor to a
// running cluster, inject a deterministic network partition with
// PauseLink, and export the execution as a portable trace snapshot for
// offline auditing with dsm-check -trace.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"partialdsm"
)

func main() {
	if err := run(os.Stdout, "trace.json", partialdsm.TransportClassic); err != nil {
		log.Fatal(err)
	}
}

// run drives the monitored partition scenario and exports the trace
// snapshot to tracePath.
func run(w io.Writer, tracePath string, transport partialdsm.Transport) error {
	cluster, err := partialdsm.New(partialdsm.Config{
		Consistency: partialdsm.PRAM,
		Placement:   partialdsm.PlacementFromLists([][]string{{"x", "y"}, {"y"}, {"x", "y"}}),
		Seed:        17,
		LiveVerify:  true, // O(1)-per-event online PRAM witness
		Transport:   transport,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	n0, n1, n2 := cluster.Node(0), cluster.Node(1), cluster.Node(2)

	// Withhold the direct link 0→2 and push a dependency chain through
	// node 1 — the adversarial schedule of the paper's Figure 3.
	cluster.PauseLink(0, 2)
	if err := n0.Write("x", 1); err != nil {
		return err
	}
	if err := n0.Write("y", 2); err != nil {
		return err
	}
	if err := waitFor(n1, "y", 2); err != nil {
		return err
	}
	if err := n1.Write("y", 3); err != nil {
		return err
	}
	if err := waitFor(n2, "y", 3); err != nil {
		return err
	}

	// Node 2 has seen node 1's y' but not node 0's x: stale under
	// causal consistency, fine under PRAM.
	v, err := n2.Read("x")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "node 2 read x = %v after observing y' (⊥ = %v)\n", v, v == partialdsm.Bottom)

	cluster.ResumeLink(0, 2)
	cluster.Quiesce()

	// The online monitor saw every event live and found no PRAM
	// violation — even across the partition.
	if err := cluster.LiveError(); err != nil {
		return fmt.Errorf("online monitor: %w", err)
	}
	fmt.Fprintln(w, "online PRAM monitor: no violation across the whole run")

	// Post-hoc, the exact checkers prove the run was NOT causal:
	verdicts, err := cluster.CheckHistory()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "exact checkers: pram=%v causal=%v (the protocols differ observably)\n",
		verdicts["pram"], verdicts["causal"])
	if !verdicts["pram"] {
		return fmt.Errorf("execution unexpectedly not PRAM-consistent")
	}

	// Export the execution for offline auditing.
	snapshot, err := cluster.ExportTrace()
	if err != nil {
		return err
	}
	if err := os.WriteFile(tracePath, snapshot, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "trace exported to %s (%d bytes) — verify with: go run ./cmd/dsm-check -trace %s\n",
		tracePath, len(snapshot), tracePath)
	return nil
}

// waitFor polls until n reads want from x, giving up after a deadline
// so a lost update surfaces as an error instead of a hang.
func waitFor(n *partialdsm.NodeHandle, x string, want int64) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := n.Read(x)
		if err != nil {
			return err
		}
		if v == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %s = %d at node %d (last saw %d)", x, want, n.ID(), v)
		}
		time.Sleep(50 * time.Microsecond)
	}
}
