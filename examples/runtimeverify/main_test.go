package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"partialdsm"
)

// TestRuntimeVerifyPartitionScenario runs the monitored partition
// scenario under a deadline on both transports and checks the exported
// trace lands on disk.
func TestRuntimeVerifyPartitionScenario(t *testing.T) {
	for _, tr := range []partialdsm.Transport{partialdsm.TransportClassic, partialdsm.TransportSharded} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			tracePath := filepath.Join(t.TempDir(), "trace.json")
			var sb strings.Builder
			done := make(chan error, 1)
			go func() { done <- run(&sb, tracePath, tr) }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("runtime-verify example did not finish within the deadline")
			}
			if !strings.Contains(sb.String(), "online PRAM monitor: no violation") {
				t.Errorf("monitor line missing:\n%s", sb.String())
			}
			if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
				t.Errorf("trace snapshot not exported: %v", err)
			}
		})
	}
}
