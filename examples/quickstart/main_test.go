package main

import (
	"io"
	"strings"
	"testing"
	"time"

	"partialdsm"
)

// TestQuickstart smoke-tests the example's core routine on both
// transports under a deadline.
func TestQuickstart(t *testing.T) {
	for _, tr := range []string{"classic", "sharded"} {
		tr := tr
		t.Run(tr, func(t *testing.T) {
			var sb strings.Builder
			done := make(chan error, 1)
			go func() { done <- run(&sb, partialdsm.Transport(tr)) }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("quickstart did not finish within the deadline")
			}
			if !strings.Contains(sb.String(), "node 2 reads x = 7") {
				t.Errorf("unexpected output:\n%s", sb.String())
			}
		})
	}
}

func TestQuickstartRejectsUnknownTransport(t *testing.T) {
	if err := run(io.Discard, "no-such-engine"); err == nil {
		t.Fatal("unknown transport should error")
	}
}
