// Quickstart: create a PRAM cluster with partial replication, write
// from one node, read from another, and inspect the metrics that make
// the paper's efficiency notion visible.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"partialdsm"
)

func main() {
	if err := run(os.Stdout, partialdsm.TransportClassic); err != nil {
		log.Fatal(err)
	}
}

// run is the testable core: it drives the whole quickstart against the
// given transport and reports the first failure.
func run(w io.Writer, transport partialdsm.Transport) error {
	// Three nodes; x lives on 0 and 2, y everywhere. Node 1 never
	// handles x — that is the paper's "efficient partial replication".
	cluster, err := partialdsm.New(partialdsm.Config{
		Consistency: partialdsm.PRAM,
		Placement: partialdsm.NewPlacement(3).
			Assign(0, "x", "y").
			Assign(1, "y").
			Assign(2, "x", "y"),
		Seed:      42,
		Transport: transport,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	n0, n1, n2 := cluster.Node(0), cluster.Node(1), cluster.Node(2)

	// Writes are wait-free: they return after the local apply and
	// propagate asynchronously to the other replicas.
	if err := n0.Write("x", 7); err != nil {
		return err
	}
	if err := n1.Write("y", 9); err != nil {
		return err
	}

	// Quiesce waits until every in-flight update has been applied.
	cluster.Quiesce()

	x2, err := n2.Read("x")
	if err != nil {
		return err
	}
	y0, err := n0.Read("y")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "node 2 reads x = %d (written by node 0)\n", x2)
	fmt.Fprintf(w, "node 0 reads y = %d (written by node 1)\n", y0)
	if x2 != 7 || y0 != 9 {
		return fmt.Errorf("reads after quiesce: x=%d y=%d, want 7 and 9", x2, y0)
	}

	// Reads of never-written variables return the initial value ⊥.
	if v, _ := n2.Read("y"); v == 9 {
		fmt.Fprintln(w, "node 2 also sees y = 9")
	}

	// The execution is PRAM-consistent …
	if err := cluster.VerifyWitness(); err != nil {
		return fmt.Errorf("consistency violated: %w", err)
	}
	fmt.Fprintln(w, "witness: execution is PRAM-consistent")

	// … and efficient: node 1 never handled any information about x
	// (Theorem 2 of the paper).
	if err := cluster.VerifyEfficiency(); err != nil {
		return fmt.Errorf("efficiency violated: %w", err)
	}
	st := cluster.Stats()
	fmt.Fprintf(w, "efficiency: touch matrix per node = %v\n", st.Touch)
	fmt.Fprintf(w, "traffic: %d messages, %d control bytes, %d data bytes\n",
		st.Msgs, st.CtrlBytes, st.DataBytes)
	return nil
}
