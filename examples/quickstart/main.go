// Quickstart: create a PRAM cluster with partial replication, write
// from one node, read from another, and inspect the metrics that make
// the paper's efficiency notion visible.
package main

import (
	"fmt"
	"log"

	"partialdsm"
)

func main() {
	// Three nodes; x lives on 0 and 2, y everywhere. Node 1 never
	// handles x — that is the paper's "efficient partial replication".
	cluster, err := partialdsm.New(partialdsm.Config{
		Consistency: partialdsm.PRAM,
		Placement: [][]string{
			{"x", "y"}, // node 0
			{"y"},      // node 1
			{"x", "y"}, // node 2
		},
		Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	n0, n1, n2 := cluster.Node(0), cluster.Node(1), cluster.Node(2)

	// Writes are wait-free: they return after the local apply and
	// propagate asynchronously to the other replicas.
	if err := n0.Write("x", 7); err != nil {
		log.Fatal(err)
	}
	if err := n1.Write("y", 9); err != nil {
		log.Fatal(err)
	}

	// Quiesce waits until every in-flight update has been applied.
	cluster.Quiesce()

	x2, _ := n2.Read("x")
	y0, _ := n0.Read("y")
	fmt.Printf("node 2 reads x = %d (written by node 0)\n", x2)
	fmt.Printf("node 0 reads y = %d (written by node 1)\n", y0)

	// Reads of never-written variables return the initial value ⊥.
	if v, _ := n2.Read("y"); v == 9 {
		fmt.Println("node 2 also sees y = 9")
	}

	// The execution is PRAM-consistent …
	if err := cluster.VerifyWitness(); err != nil {
		log.Fatalf("consistency violated: %v", err)
	}
	fmt.Println("witness: execution is PRAM-consistent")

	// … and efficient: node 1 never handled any information about x
	// (Theorem 2 of the paper).
	if err := cluster.VerifyEfficiency(); err != nil {
		log.Fatalf("efficiency violated: %v", err)
	}
	st := cluster.Stats()
	fmt.Printf("efficiency: touch matrix per node = %v\n", st.Touch)
	fmt.Printf("traffic: %d messages, %d control bytes, %d data bytes\n",
		st.Msgs, st.CtrlBytes, st.DataBytes)
}
