// Bellman-Ford: the paper's §6 case study end to end. One application
// process per packet-switching node computes least-cost routes by
// reading and writing shared variables that are replicated only on the
// graph neighbourhood — partial replication mirroring the network
// topology, over PRAM consistency.
package main

import (
	"fmt"
	"log"
	"time"

	"partialdsm"
	"partialdsm/internal/bellmanford"
)

func main() {
	// The paper's Figure 8 network (5 packet-switching nodes).
	g := bellmanford.Figure8Graph()
	placement := bellmanford.Placement(g)

	fmt.Println("variable distribution (paper §6.1): X_i holds x_h, k_h for i and its predecessors")
	for i, vars := range placement {
		fmt.Printf("  X_%d = %v\n", i+1, vars) // print 1-based like the paper
	}

	cluster, err := partialdsm.New(partialdsm.Config{
		Consistency: partialdsm.PRAM,
		Placement:   placement,
		Seed:        7,
		MaxLatency:  200 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	nodes := make([]bellmanford.Node, cluster.NumNodes())
	for i := range nodes {
		nodes[i] = cluster.Node(i)
	}
	res, err := bellmanford.Run(nodes, g, 0)
	if err != nil {
		log.Fatal(err)
	}
	oracle := bellmanford.Shortest(g, 0)

	fmt.Println("\nshortest paths from node 1:")
	for v := range res.Dist {
		fmt.Printf("  node %d: distributed %d, sequential oracle %d\n", v+1, res.Dist[v], oracle[v])
		if res.Dist[v] != oracle[v] {
			log.Fatalf("mismatch at node %d", v+1)
		}
	}

	cluster.Quiesce()
	if err := cluster.VerifyWitness(); err != nil {
		log.Fatalf("PRAM witness violated: %v", err)
	}
	if err := cluster.VerifyEfficiency(); err != nil {
		log.Fatalf("efficiency violated: %v", err)
	}
	st := cluster.Stats()
	fmt.Printf("\nconverged in %d rounds; %d messages, %d control bytes\n",
		res.Rounds, st.Msgs, st.CtrlBytes)
	fmt.Println("execution PRAM-consistent and efficient: PRAM suffices for Bellman-Ford (paper §6)")
}
