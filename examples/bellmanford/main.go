// Bellman-Ford: the paper's §6 case study end to end. One application
// process per packet-switching node computes least-cost routes by
// reading and writing shared variables that are replicated only on the
// graph neighbourhood — partial replication mirroring the network
// topology, over PRAM consistency.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"partialdsm"
	"partialdsm/internal/bellmanford"
)

func main() {
	if err := run(os.Stdout, partialdsm.TransportClassic); err != nil {
		log.Fatal(err)
	}
}

// run solves the paper's Figure 8 network on a PRAM cluster over the
// given transport and verifies the distances, witness and efficiency.
func run(w io.Writer, transport partialdsm.Transport) error {
	// The paper's Figure 8 network (5 packet-switching nodes).
	g := bellmanford.Figure8Graph()
	placement := bellmanford.Placement(g)

	fmt.Fprintln(w, "variable distribution (paper §6.1): X_i holds x_h, k_h for i and its predecessors")
	for i, vars := range placement {
		fmt.Fprintf(w, "  X_%d = %v\n", i+1, vars) // print 1-based like the paper
	}

	cluster, err := partialdsm.New(partialdsm.Config{
		Consistency: partialdsm.PRAM,
		Placement:   partialdsm.PlacementFromLists(placement),
		Seed:        7,
		MaxLatency:  200 * time.Microsecond,
		Transport:   transport,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	nodes := make([]bellmanford.Node, cluster.NumNodes())
	for i := range nodes {
		nodes[i] = cluster.Node(i)
	}
	res, err := bellmanford.Run(nodes, g, 0)
	if err != nil {
		return err
	}
	oracle := bellmanford.Shortest(g, 0)

	fmt.Fprintln(w, "\nshortest paths from node 1:")
	for v := range res.Dist {
		fmt.Fprintf(w, "  node %d: distributed %d, sequential oracle %d\n", v+1, res.Dist[v], oracle[v])
		if res.Dist[v] != oracle[v] {
			return fmt.Errorf("distance mismatch at node %d: %d vs oracle %d", v+1, res.Dist[v], oracle[v])
		}
	}

	cluster.Quiesce()
	if err := cluster.VerifyWitness(); err != nil {
		return fmt.Errorf("PRAM witness violated: %w", err)
	}
	if err := cluster.VerifyEfficiency(); err != nil {
		return fmt.Errorf("efficiency violated: %w", err)
	}
	st := cluster.Stats()
	fmt.Fprintf(w, "\nconverged in %d rounds; %d messages, %d control bytes\n",
		res.Rounds, st.Msgs, st.CtrlBytes)
	fmt.Fprintln(w, "execution PRAM-consistent and efficient: PRAM suffices for Bellman-Ford (paper §6)")
	return nil
}
