package main

import (
	"strings"
	"testing"
	"time"

	"partialdsm"
)

// TestBellmanFordFigure8 runs the example's core routine on both
// transports under a deadline and checks the verification lines.
func TestBellmanFordFigure8(t *testing.T) {
	for _, tr := range []partialdsm.Transport{partialdsm.TransportClassic, partialdsm.TransportSharded} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			var sb strings.Builder
			done := make(chan error, 1)
			go func() { done <- run(&sb, tr) }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("bellman-ford example did not finish within the deadline")
			}
			if !strings.Contains(sb.String(), "PRAM suffices for Bellman-Ford") {
				t.Errorf("missing verification line in output:\n%s", sb.String())
			}
		})
	}
}
