// Matrix product on PRAM memory — one of the oblivious computations
// Lipton & Sandberg show PRAM suffices for, cited by the paper in §5.
//
// Worker i owns row i of A and computes row i of C = A×B. B is the
// only fully replicated matrix; each A and C row lives solely on its
// worker, so partial replication keeps every other node free of A/C
// information (checkable with VerifyEfficiency). A per-worker flag
// variable implements the publish barrier: worker h writes its B row
// and then f_h = 1, so under PRAM any worker observing f_h = 1 has
// already observed the whole row — the same program-order trick as the
// paper's Bellman-Ford rounds.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"partialdsm"
)

func aVar(i, j int) string { return fmt.Sprintf("a_%d_%d", i, j) }
func bVar(i, j int) string { return fmt.Sprintf("b_%d_%d", i, j) }
func cVar(i, j int) string { return fmt.Sprintf("c_%d_%d", i, j) }
func fVar(i int) string    { return fmt.Sprintf("f_%d", i) }

func main() {
	if err := run(os.Stdout, 4, partialdsm.TransportClassic); err != nil {
		log.Fatal(err)
	}
}

// run multiplies two random n×n matrices with one PRAM worker per row
// and verifies the product, the witness and the efficiency property.
func run(w io.Writer, n int, transport partialdsm.Transport) error {
	rng := rand.New(rand.NewSource(3))
	A := randomMatrix(rng, n)
	B := randomMatrix(rng, n)

	// Placement: worker i holds its own A and C rows, all of B, and
	// every flag.
	placement := make([][]string, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			placement[i] = append(placement[i], aVar(i, j), cVar(i, j))
			for h := 0; h < n; h++ {
				placement[i] = append(placement[i], bVar(h, j))
			}
		}
		for h := 0; h < n; h++ {
			placement[i] = append(placement[i], fVar(h))
		}
	}

	cluster, err := partialdsm.New(partialdsm.Config{
		Consistency: partialdsm.PRAM,
		Placement:   partialdsm.PlacementFromLists(placement),
		Seed:        11,
		MaxLatency:  100 * time.Microsecond,
		Transport:   transport,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	var aborted atomic.Bool // set on first worker error so the barrier pollers bail out
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := worker(cluster, i, n, A, B, &aborted); err != nil {
				aborted.Store(true)
				errs <- fmt.Errorf("worker %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return err
	}
	cluster.Quiesce()

	// Collect and verify against the sequential product.
	want := matmul(A, B)
	fmt.Fprintf(w, "C = A × B computed by %d PRAM workers:\n", n)
	for i := 0; i < n; i++ {
		nd := cluster.Node(i)
		for j := 0; j < n; j++ {
			got, err := nd.Read(cVar(i, j))
			if err != nil {
				return err
			}
			if got != want[i][j] {
				return fmt.Errorf("C[%d][%d] = %d, want %d", i, j, got, want[i][j])
			}
			fmt.Fprintf(w, "%8d", got)
		}
		fmt.Fprintln(w)
	}
	if err := cluster.VerifyWitness(); err != nil {
		return fmt.Errorf("PRAM witness violated: %w", err)
	}
	if err := cluster.VerifyEfficiency(); err != nil {
		return fmt.Errorf("efficiency violated: %w", err)
	}
	fmt.Fprintln(w, "verified: result matches sequential product; execution PRAM-consistent and efficient")
	return nil
}

// worker publishes its A and B rows, waits at the flag barrier, then
// computes row i of C. A set aborted flag means another worker
// failed; bail out instead of waiting at the barrier forever.
func worker(cluster *partialdsm.Cluster, i, n int, A, B [][]int64, aborted *atomic.Bool) error {
	nd := cluster.Node(i)
	// Publish own rows of A (private) and B (shared), then the flag.
	for j := 0; j < n; j++ {
		if err := nd.Write(aVar(i, j), A[i][j]); err != nil {
			return err
		}
		if err := nd.Write(bVar(i, j), B[i][j]); err != nil {
			return err
		}
	}
	if err := nd.Write(fVar(i), 1); err != nil {
		return err
	}
	// Barrier: wait until every worker has published its B row.
	for h := 0; h < n; h++ {
		for {
			if aborted.Load() {
				return fmt.Errorf("aborting: another worker failed")
			}
			v, err := nd.Read(fVar(h))
			if err != nil {
				return err
			}
			if v >= 1 {
				break
			}
			time.Sleep(20 * time.Microsecond)
		}
	}
	// Compute row i of C.
	for j := 0; j < n; j++ {
		var sum int64
		for k := 0; k < n; k++ {
			a, err := nd.Read(aVar(i, k))
			if err != nil {
				return err
			}
			b, err := nd.Read(bVar(k, j))
			if err != nil {
				return err
			}
			sum += a * b
		}
		if err := nd.Write(cVar(i, j), sum); err != nil {
			return err
		}
	}
	return nil
}

func randomMatrix(rng *rand.Rand, n int) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			m[i][j] = int64(rng.Intn(10))
		}
	}
	return m
}

func matmul(a, b [][]int64) [][]int64 {
	n := len(a)
	c := make([][]int64, n)
	for i := range c {
		c[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				c[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return c
}
