// Matrix product on PRAM memory — one of the oblivious computations
// Lipton & Sandberg show PRAM suffices for, cited by the paper in §5.
//
// Worker i owns row i of A and computes row i of C = A×B. B is the
// only fully replicated matrix; each A and C row lives solely on its
// worker, so partial replication keeps every other node free of A/C
// information (checkable with VerifyEfficiency). A per-worker flag
// variable implements the publish barrier: worker h writes its B row
// and then f_h = 1, so under PRAM any worker observing f_h = 1 has
// already observed the whole row — the same program-order trick as the
// paper's Bellman-Ford rounds.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"partialdsm"
)

const n = 4 // matrix dimension = number of workers

func aVar(i, j int) string { return fmt.Sprintf("a_%d_%d", i, j) }
func bVar(i, j int) string { return fmt.Sprintf("b_%d_%d", i, j) }
func cVar(i, j int) string { return fmt.Sprintf("c_%d_%d", i, j) }
func fVar(i int) string    { return fmt.Sprintf("f_%d", i) }

func main() {
	rng := rand.New(rand.NewSource(3))
	A := randomMatrix(rng)
	B := randomMatrix(rng)

	// Placement: worker i holds its own A and C rows, all of B, and
	// every flag.
	placement := make([][]string, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			placement[i] = append(placement[i], aVar(i, j), cVar(i, j))
			for h := 0; h < n; h++ {
				placement[i] = append(placement[i], bVar(h, j))
			}
		}
		for h := 0; h < n; h++ {
			placement[i] = append(placement[i], fVar(h))
		}
	}

	cluster, err := partialdsm.New(partialdsm.Config{
		Consistency: partialdsm.PRAM,
		Placement:   placement,
		Seed:        11,
		MaxLatency:  100 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := cluster.Node(i)
			// Publish own rows of A (private) and B (shared), then the flag.
			for j := 0; j < n; j++ {
				must(w.Write(aVar(i, j), A[i][j]))
				must(w.Write(bVar(i, j), B[i][j]))
			}
			must(w.Write(fVar(i), 1))
			// Barrier: wait until every worker has published its B row.
			for h := 0; h < n; h++ {
				for {
					v, err := w.Read(fVar(h))
					must(err)
					if v >= 1 {
						break
					}
					time.Sleep(20 * time.Microsecond)
				}
			}
			// Compute row i of C.
			for j := 0; j < n; j++ {
				var sum int64
				for k := 0; k < n; k++ {
					a, err := w.Read(aVar(i, k))
					must(err)
					b, err := w.Read(bVar(k, j))
					must(err)
					sum += a * b
				}
				must(w.Write(cVar(i, j), sum))
			}
		}(i)
	}
	wg.Wait()
	cluster.Quiesce()

	// Collect and verify against the sequential product.
	want := matmul(A, B)
	fmt.Println("C = A × B computed by 4 PRAM workers:")
	for i := 0; i < n; i++ {
		w := cluster.Node(i)
		for j := 0; j < n; j++ {
			got, err := w.Read(cVar(i, j))
			must(err)
			if got != want[i][j] {
				log.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want[i][j])
			}
			fmt.Printf("%8d", got)
		}
		fmt.Println()
	}
	if err := cluster.VerifyWitness(); err != nil {
		log.Fatalf("PRAM witness violated: %v", err)
	}
	if err := cluster.VerifyEfficiency(); err != nil {
		log.Fatalf("efficiency violated: %v", err)
	}
	fmt.Println("verified: result matches sequential product; execution PRAM-consistent and efficient")
}

func randomMatrix(rng *rand.Rand) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
		for j := range m[i] {
			m[i][j] = int64(rng.Intn(10))
		}
	}
	return m
}

func matmul(a, b [][]int64) [][]int64 {
	c := make([][]int64, n)
	for i := range c {
		c[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				c[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return c
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
