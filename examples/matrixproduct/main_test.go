package main

import (
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"partialdsm"
)

// TestMatrixProductTiny multiplies a 2×2 matrix under a deadline, on
// both transports.
func TestMatrixProductTiny(t *testing.T) {
	for _, tr := range []partialdsm.Transport{partialdsm.TransportClassic, partialdsm.TransportSharded} {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			done := make(chan error, 1)
			go func() { done <- run(io.Discard, 2, tr) }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(60 * time.Second):
				t.Fatal("matrix product did not finish within the deadline")
			}
		})
	}
}

func TestMatmulOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 3)
	id := [][]int64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	if got := matmul(a, id); !reflect.DeepEqual(got, a) {
		t.Errorf("A × I = %v, want %v", got, a)
	}
}
