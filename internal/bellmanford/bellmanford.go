// Package bellmanford implements the paper's case study (§6): the
// distributed Bellman-Ford shortest-path algorithm running on a PRAM
// shared memory with partial replication.
//
// The network is a directed weighted graph; one application process
// runs per vertex. Process i shares two variables with its graph
// neighbourhood: x_i, its current least-cost estimate from the source,
// and k_i, its round counter. Per the paper's variable distribution,
// X_i = {x_h, k_h : h = i or h ∈ Γ⁻¹(i)} — each process replicates
// only the variables of itself and its predecessors, so the DSM
// placement mirrors the graph topology and partial replication pays
// off exactly as the paper argues.
//
// The round structure of Figure 7 needs only PRAM consistency: process
// h always writes its round-r estimate x_h before incrementing k_h to
// r+1, so any process that observes k_h ≥ r has already observed (by
// per-sender program order) an estimate of round ≥ r.
package bellmanford

import (
	"fmt"
	"math/rand"
	"time"
)

// Inf is the distance of unreachable vertices. It is large enough that
// Inf plus any edge weight does not overflow.
const Inf int64 = 1 << 40

// Edge is a directed weighted edge.
type Edge struct {
	From, To int
	W        int64
}

// Graph is a directed weighted graph over vertices 0..N-1.
type Graph struct {
	n     int
	preds [][]Edge // preds[v] lists edges into v
	edges int
}

// NewGraph returns an empty graph over n vertices.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("bellmanford: graph needs at least one vertex, got %d", n))
	}
	return &Graph{n: n, preds: make([][]Edge, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge adds the edge from → to with weight w (non-negative, per the
// paper's link-cost model).
func (g *Graph) AddEdge(from, to int, w int64) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("bellmanford: edge %d→%d out of range", from, to))
	}
	if w < 0 {
		panic(fmt.Sprintf("bellmanford: negative weight %d on %d→%d", w, from, to))
	}
	g.preds[to] = append(g.preds[to], Edge{From: from, To: to, W: w})
	g.edges++
}

// Preds returns the edges into v (Γ⁻¹(v) with weights). The returned
// slice must not be modified.
func (g *Graph) Preds(v int) []Edge { return g.preds[v] }

// Shortest is the sequential oracle: classic Bellman-Ford from src,
// returning one distance per vertex (Inf when unreachable).
func Shortest(g *Graph, src int) []int64 {
	dist := make([]int64, g.n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	for round := 0; round < g.n; round++ {
		changed := false
		for v := 0; v < g.n; v++ {
			for _, e := range g.preds[v] {
				if dist[e.From] != Inf && dist[e.From]+e.W < dist[v] {
					dist[v] = dist[e.From] + e.W
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

// XVar and KVar name the shared variables of vertex i.
func XVar(i int) string { return fmt.Sprintf("x%d", i) }

// KVar names the round counter variable of vertex i.
func KVar(i int) string { return fmt.Sprintf("k%d", i) }

// Placement returns the paper's variable distribution for g: process i
// replicates x_h and k_h for h = i and every predecessor h ∈ Γ⁻¹(i).
func Placement(g *Graph) [][]string {
	out := make([][]string, g.n)
	for i := 0; i < g.n; i++ {
		out[i] = []string{XVar(i), KVar(i)}
		seen := map[int]bool{i: true}
		for _, e := range g.preds[i] {
			if !seen[e.From] {
				seen[e.From] = true
				out[i] = append(out[i], XVar(e.From), KVar(e.From))
			}
		}
	}
	return out
}

// Node is the DSM access interface the algorithm runs against;
// *partialdsm.NodeHandle satisfies it.
type Node interface {
	Write(x string, v int64) error
	Read(x string) (int64, error)
}

// Result reports a distributed run.
type Result struct {
	// Dist is the computed distance per vertex.
	Dist []int64
	// Rounds is the number of update rounds each process executed (N).
	Rounds int
}

// Run executes the Figure 7 protocol: one goroutine per vertex, each
// driving its own DSM node. nodes[i] must be the handle of DSM node i,
// over the placement returned by Placement(g). The memory must be at
// least PRAM consistent.
//
// Two deliberate deviations from the figure's pseudocode, documented in
// DESIGN.md: the initial estimate x_i is written before the round
// counter k_i (program order is what lets PRAM carry the round
// invariant — the figure initializes k first, which would let a
// neighbour observe k_h = 0 before x_h is initialized); and the wait
// condition is "until every predecessor's k_h ≥ k_i" (the figure's
// busy-wait guard reads as a conjunction of k_h < k_i, which would
// release the barrier after a single predecessor catches up and break
// the ≤ N-rounds convergence bound).
func Run(nodes []Node, g *Graph, src int) (Result, error) {
	if len(nodes) != g.n {
		return Result{}, fmt.Errorf("bellmanford: %d nodes for %d vertices", len(nodes), g.n)
	}
	if src < 0 || src >= g.n {
		return Result{}, fmt.Errorf("bellmanford: source %d out of range", src)
	}
	dist := make([]int64, g.n)
	errs := make([]error, g.n)
	done := make(chan int, g.n)
	for i := 0; i < g.n; i++ {
		go func(i int) {
			dist[i], errs[i] = runVertex(nodes[i], g, src, i)
			done <- i
		}(i)
	}
	for range nodes {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			return Result{}, fmt.Errorf("bellmanford: vertex %d: %w", i, err)
		}
	}
	return Result{Dist: dist, Rounds: g.n}, nil
}

// runVertex is the per-process protocol of Figure 7.
func runVertex(node Node, g *Graph, src, i int) (int64, error) {
	x := Inf
	if i == src {
		x = 0
	}
	if err := node.Write(XVar(i), x); err != nil {
		return 0, err
	}
	if err := node.Write(KVar(i), 0); err != nil {
		return 0, err
	}
	n := int64(g.n)
	for k := int64(0); k < n; k++ {
		// Under update coalescing (partialdsm.Config.CoalesceBatch), a
		// node's buffered writes flush when it next operates. Vertices
		// with predecessors read every round at the barrier below; a
		// source-like vertex with none would never operate again and
		// strand its estimates, so it reads its own round counter to
		// keep them moving.
		if len(g.preds[i]) == 0 {
			if _, err := node.Read(KVar(i)); err != nil {
				return 0, err
			}
		}
		// Barrier: wait until every predecessor has reached round k.
		for _, e := range g.preds[i] {
			for {
				kh, err := node.Read(KVar(e.From))
				if err != nil {
					return 0, err
				}
				if kh >= k {
					break
				}
				time.Sleep(20 * time.Microsecond) //lint:allow realtime bounded poll backoff while spinning on a remote round counter; virtual engines advance regardless
			}
		}
		// Update: x_i := min over predecessors (and self, w(i,i)=0) of
		// x_h + w(h,i).
		best := x // self edge with weight 0
		for _, e := range g.preds[i] {
			xh, err := node.Read(XVar(e.From))
			if err != nil {
				return 0, err
			}
			if xh < 0 || xh > Inf {
				// Defensive: an uninitialized replica reads ⊥; treat it
				// as unreachable (cannot happen under PRAM, see package
				// comment).
				xh = Inf
			}
			if xh+e.W < best {
				best = xh + e.W
			}
		}
		x = best
		if err := node.Write(XVar(i), x); err != nil {
			return 0, err
		}
		if err := node.Write(KVar(i), k+1); err != nil {
			return 0, err
		}
	}
	return x, nil
}

// Figure8Graph builds the paper's example network (Figure 8): five
// vertices, here 0-based (paper's node 1 = vertex 0), with the edge
// set implied by the §6.1 variable distribution:
//
//	Γ⁻¹(2)={1,3}, Γ⁻¹(3)={1,2}, Γ⁻¹(4)={2,3}, Γ⁻¹(5)={3,4}.
//
// The figure's weight labels are not unambiguously attributable from
// the paper text (the drawing did not survive extraction), so the
// weights below fix one assignment of the printed label multiset
// {4,1,1,2,8,2,3,3}; the reproduced claim — distributed result equals
// the sequential oracle — is weight-independent (see DESIGN.md §4).
func Figure8Graph() *Graph {
	g := NewGraph(5)
	g.AddEdge(0, 1, 4) // 1→2
	g.AddEdge(0, 2, 1) // 1→3
	g.AddEdge(2, 1, 1) // 3→2
	g.AddEdge(1, 2, 2) // 2→3
	g.AddEdge(1, 3, 8) // 2→4
	g.AddEdge(2, 3, 2) // 3→4
	g.AddEdge(2, 4, 3) // 3→5
	g.AddEdge(3, 4, 3) // 4→5
	return g
}

// RandomGraph generates a connected-from-source random graph: a random
// spanning arborescence from vertex 0 plus extraEdges additional random
// edges, all with weights in [1, maxW].
func RandomGraph(rng *rand.Rand, n, extraEdges int, maxW int64) *Graph {
	g := NewGraph(n)
	perm := rng.Perm(n - 1)
	for idx, v := range perm {
		to := v + 1
		// Parent is vertex 0 or an earlier vertex in the arborescence.
		var from int
		if idx == 0 {
			from = 0
		} else {
			from = perm[rng.Intn(idx)] + 1
			if rng.Intn(3) == 0 {
				from = 0
			}
		}
		g.AddEdge(from, to, 1+rng.Int63n(maxW))
	}
	for k := 0; k < extraEdges; k++ {
		from, to := rng.Intn(n), rng.Intn(n)
		if from == to {
			continue
		}
		g.AddEdge(from, to, 1+rng.Int63n(maxW))
	}
	return g
}
