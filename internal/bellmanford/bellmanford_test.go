package bellmanford

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestShortestOracleFigure8(t *testing.T) {
	g := Figure8Graph()
	dist := Shortest(g, 0)
	// With the documented weight assignment:
	// d(0)=0, d(2)=1 (0→2), d(1)=2 (0→2→1), d(3)=3 (0→2→3), d(4)=4 (0→2→4).
	want := []int64{0, 2, 1, 3, 4}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("Shortest(figure8) = %v, want %v", dist, want)
	}
}

func TestShortestUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5)
	dist := Shortest(g, 0)
	if dist[2] != Inf {
		t.Errorf("unreachable vertex distance = %d, want Inf", dist[2])
	}
	if dist[0] != 0 || dist[1] != 5 {
		t.Errorf("dist = %v", dist)
	}
}

func TestShortestPicksCheaperLongPath(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 3, 100)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	if dist := Shortest(g, 0); dist[3] != 3 {
		t.Errorf("dist[3] = %d, want 3", dist[3])
	}
}

func TestPlacementMirrorsTopology(t *testing.T) {
	g := Figure8Graph()
	pl := Placement(g)
	// Paper §6.1 (0-based): X_0={x0,k0}, X_1={x0,x1,x2,k0,k1,k2},
	// X_2={x0,x1,x2,…}, X_3={x1,x2,x3,…}, X_4={x2,x3,x4,…}.
	wantVars := map[int][]int{
		0: {0},
		1: {1, 0, 2},
		2: {2, 0, 1},
		3: {3, 1, 2},
		4: {4, 2, 3},
	}
	for i, hs := range wantVars {
		want := map[string]bool{}
		for _, h := range hs {
			want[XVar(h)] = true
			want[KVar(h)] = true
		}
		if len(pl[i]) != len(want) {
			t.Errorf("X_%d = %v, want vars of %v", i, pl[i], hs)
			continue
		}
		for _, v := range pl[i] {
			if !want[v] {
				t.Errorf("X_%d contains unexpected %s", i, v)
			}
		}
	}
}

func TestGraphPanics(t *testing.T) {
	g := NewGraph(2)
	for _, f := range []func(){
		func() { NewGraph(0) },
		func() { g.AddEdge(0, 9, 1) },
		func() { g.AddEdge(0, 1, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRandomGraphConnectedFromSource(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := RandomGraph(rng, 8, 5, 10)
		dist := Shortest(g, 0)
		for v, d := range dist {
			if d == Inf {
				t.Fatalf("trial %d: vertex %d unreachable from source", trial, v)
			}
		}
	}
}

// fakeNode runs the algorithm against a plain map — a degenerate
// single-address-space "memory" for unit-testing the vertex logic
// without a cluster. Sequential execution is emulated by running
// vertices round-robin via the scheduler; safe because fakeStore
// serializes with a mutex and the barrier only waits on values that
// will eventually be written.
type fakeStore struct {
	mu   chan struct{}
	vals map[string]int64
}

func newFakeStore() *fakeStore {
	s := &fakeStore{mu: make(chan struct{}, 1), vals: make(map[string]int64)}
	s.mu <- struct{}{}
	return s
}

type fakeNode struct{ s *fakeStore }

func (n fakeNode) Write(x string, v int64) error {
	<-n.s.mu
	n.s.vals[x] = v
	n.s.mu <- struct{}{}
	return nil
}

func (n fakeNode) Read(x string) (int64, error) {
	<-n.s.mu
	v, ok := n.s.vals[x]
	n.s.mu <- struct{}{}
	if !ok {
		// Match the DSM's ⊥ for never-written variables: a negative
		// sentinel, so round barriers keep waiting (k ≥ 0) and estimate
		// reads are clamped to Inf by the algorithm's defensive check.
		return math.MinInt64, nil
	}
	return v, nil
}

func TestRunOnAtomicFake(t *testing.T) {
	// The algorithm must of course also work on a stronger (atomic)
	// memory; the PRAM cluster runs are exercised in the root package
	// and cmd tests.
	g := Figure8Graph()
	store := newFakeStore()
	nodes := make([]Node, g.N())
	for i := range nodes {
		nodes[i] = fakeNode{s: store}
	}
	res, err := Run(nodes, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := Shortest(g, 0); !reflect.DeepEqual(res.Dist, want) {
		t.Fatalf("distributed = %v, oracle = %v", res.Dist, want)
	}
	if res.Rounds != g.N() {
		t.Errorf("rounds = %d, want %d", res.Rounds, g.N())
	}
}

func TestRunValidation(t *testing.T) {
	g := Figure8Graph()
	if _, err := Run(nil, g, 0); err == nil {
		t.Error("node count mismatch must error")
	}
	nodes := make([]Node, g.N())
	store := newFakeStore()
	for i := range nodes {
		nodes[i] = fakeNode{s: store}
	}
	if _, err := Run(nodes, g, 99); err == nil {
		t.Error("bad source must error")
	}
}

func TestRunRandomGraphsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := RandomGraph(rng, 6, 6, 9)
		store := newFakeStore()
		nodes := make([]Node, g.N())
		for i := range nodes {
			nodes[i] = fakeNode{s: store}
		}
		res, err := Run(nodes, g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := Shortest(g, 0); !reflect.DeepEqual(res.Dist, want) {
			t.Fatalf("trial %d: distributed = %v, oracle = %v", trial, res.Dist, want)
		}
	}
}
