package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"partialdsm/internal/lint/analysis"
)

// PoolOwn enforces the pooled-buffer ownership discipline from the
// transport contract. A buffer obtained from mcs.GetPayload (or
// GetSharedPayload) is exclusively owned until it is handed off
// exactly once: returned to the pool (PutPayload), staged or sent
// (Outbox / Transport.Send / Enc.SetBuf adoption), stored into an
// owning structure, or returned to the caller. The analyzer checks,
// intraprocedurally, that the acquired buffer reaches such a hand-off
// on every control-flow path — a buffer that is conditionally released
// (the PR-6 drop-vs-inflight leak shape) or discarded outright is a
// finding.
//
// Separately, a function that receives a netsim.Message (a delivered
// frame) must not retain msg.Payload — or a subslice of it — past
// return by storing it into a field, map, or package variable: the
// transport contract hands the payload to the handler only for the
// duration of the call when the frame is pooled, so retention must
// copy (append into an owned buffer) or use the refcounted
// SharedPayload adoption. The netsim package itself is exempt (the
// transport owns in-flight messages by definition).
//
// The check is syntactic and intraprocedural by design: passing the
// buffer to any function call is a hand-off (the callee now owns it),
// and aliasing through Dec views is out of scope. Findings silence
// with //lint:allow poolown <reason>.
var PoolOwn = &analysis.Analyzer{
	Name: "poolown",
	Doc:  "pooled payload buffers must reach exactly one hand-off on every path; handlers must not retain Message.Payload",
	Run:  runPoolOwn,
}

// acquireFuncs are the mcs pool getters whose result carries exclusive
// ownership.
var acquireFuncs = map[string]bool{
	"GetPayload":       true,
	"GetSharedPayload": true,
	"getVars":          true,
}

func isAcquireCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	var fn *types.Func
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || !acquireFuncs[fn.Name()] || !pkgTailIs(fn.Pkg(), "mcs") {
		return "", false
	}
	return fn.Name(), true
}

func runPoolOwn(pass *analysis.Pass) (any, error) {
	allows := allowsOf(pass)
	allows.reportBad(pass, "poolown", false)
	if !inScope(pass.Pkg) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if allows.inTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkAcquires(pass, allows, fd)
			if !pkgTailIs(pass.Pkg, "netsim") {
				checkRetention(pass, allows, fd)
			}
		}
	}
	return nil, nil
}

// checkAcquires finds the GetPayload-family calls in one function and
// verifies each acquired buffer is consumed on every path.
func checkAcquires(pass *analysis.Pass, allows *allowSet, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// parents records each node's enclosing statement list context so
	// the path walk can continue into outer blocks.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := isAcquireCall(info, call)
		if !ok {
			return true
		}
		if allows.allowed("poolown", call.Pos()) {
			return true
		}
		// Find the statement binding the call's result.
		stmt, blocks := enclosingStmt(fd.Body, call)
		if stmt == nil {
			return true
		}
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			// v := GetPayload() / v, refs := GetSharedPayload(n): the
			// buffer is the first LHS. Any other shape (the call as an
			// operand of a larger RHS expression, e.g. append(GetPayload(),
			// ...) or enc.SetBuf(GetPayload())) consumes at birth.
			if len(s.Rhs) == 1 && unparen(s.Rhs[0]) == call && len(s.Lhs) >= 1 {
				id, ok := unparen(s.Lhs[0]).(*ast.Ident)
				if !ok {
					// d.buf = GetPayload(): stored straight into a field
					// or element — ownership handed to that structure.
					return true
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(),
						"mcs.%s result is discarded: the buffer must reach PutPayload, an Outbox/Send hand-off, or SharedPayload adoption", name)
					return true
				}
				var obj types.Object
				if s.Tok == token.DEFINE {
					obj = info.Defs[id]
				} else {
					obj = info.Uses[id]
				}
				if obj == nil {
					return true
				}
				if leak, pos := leaksOnSomePath(info, obj, stmt, blocks); leak {
					pass.Reportf(pos,
						"mcs.%s buffer %s may not reach PutPayload, an Outbox/Send hand-off, or SharedPayload adoption on every path (//lint:allow poolown <reason> if ownership is tracked elsewhere)",
						name, id.Name)
				}
			}
		case *ast.ExprStmt:
			if unparen(s.X) == call {
				pass.Reportf(call.Pos(),
					"mcs.%s result is discarded: the buffer must reach PutPayload, an Outbox/Send hand-off, or SharedPayload adoption", name)
			}
		}
		return true
	})
}

// enclosingStmt returns the statement that directly contains the
// expression, plus the chain of enclosing statement-list owners from
// innermost to the function body. The chain entries pair each block's
// statement list with the enclosing statement to resume after.
type blockCtx struct {
	list []ast.Stmt
	stmt ast.Stmt // the statement within list that contains the inner block
	loop bool     // list is a loop body: falling off repeats, leaving unconsumed leaks
}

func enclosingStmt(body *ast.BlockStmt, target ast.Node) (ast.Stmt, []blockCtx) {
	var (
		stack  []ast.Node
		found  ast.Stmt
		blocks []blockCtx
	)
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == target {
			// Walk outward: the innermost Stmt is the carrier; each
			// []ast.Stmt owner above it becomes a block context.
			for i := len(stack) - 1; i >= 0; i-- {
				if s, ok := stack[i].(ast.Stmt); ok {
					if _, isBlock := s.(*ast.BlockStmt); !isBlock && found == nil {
						found = s
					}
				}
			}
			carrier := found
			for i := len(stack) - 1; i >= 0; i-- {
				bs, ok := stack[i].(*ast.BlockStmt)
				if !ok {
					continue
				}
				// The statement of this block that contains the carrier.
				var within ast.Stmt
				for _, s := range bs.List {
					if s.Pos() <= carrier.Pos() && carrier.End() <= s.End() {
						within = s
						break
					}
				}
				if within == nil {
					continue
				}
				loop := false
				if i > 0 {
					switch stack[i-1].(type) {
					case *ast.ForStmt, *ast.RangeStmt:
						loop = true
					}
				}
				blocks = append(blocks, blockCtx{list: bs.List, stmt: within, loop: loop})
				carrier = containingStmt(stack, i)
				if carrier == nil {
					break
				}
			}
			return false
		}
		return true
	})
	return found, blocks
}

// containingStmt finds the statement node enclosing stack[i] (the
// block) to resume the outer walk from.
func containingStmt(stack []ast.Node, i int) ast.Stmt {
	for j := i - 1; j >= 0; j-- {
		if s, ok := stack[j].(ast.Stmt); ok {
			if _, isBlock := s.(*ast.BlockStmt); !isBlock {
				return s
			}
		}
	}
	return nil
}

// leaksOnSomePath walks forward from the acquiring statement: through
// the rest of its block, then outward block by block. It reports a
// leak position when some path exits the function (or falls off a
// loop iteration) without a consuming use of obj.
func leaksOnSomePath(info *types.Info, obj types.Object, acquire ast.Stmt, blocks []blockCtx) (bool, token.Pos) {
	if len(blocks) == 0 {
		return false, token.NoPos
	}
	pos := acquire.Pos()
	for bi, ctx := range blocks {
		// Remaining statements of this block, after the statement
		// containing the acquire (for the innermost block, after the
		// acquire itself).
		start := -1
		for i, s := range ctx.list {
			if s == ctx.stmt {
				start = i
				break
			}
		}
		if start < 0 {
			return false, token.NoPos
		}
		rest := ctx.list[start+1:]
		if bi == 0 {
			// The acquiring statement itself may consume (e.g.
			// v := append(GetPayload(), ...) stored via later use is
			// handled by tracking; direct `enc.SetBuf(GetPayload())`
			// never reaches here).
			if stmtConsumes(info, obj, ctx.stmt) {
				return false, token.NoPos
			}
		} else {
			// In outer blocks the statement containing the inner block
			// has already been traversed; its own header can't consume
			// retroactively.
			_ = bi
		}
		falls, exits := seqStatus(info, obj, rest)
		if exits {
			return true, pos
		}
		if !falls {
			return false, token.NoPos
		}
		if ctx.loop {
			// Falling off a loop body leaves this iteration's buffer
			// unconsumed.
			return true, pos
		}
	}
	// Fell off the function body.
	return true, pos
}

// seqStatus analyzes a statement sequence entered with the buffer
// unconsumed. falls: some path reaches the end still unconsumed.
// exits: some path returns from the function (not via panic) still
// unconsumed.
func seqStatus(info *types.Info, obj types.Object, stmts []ast.Stmt) (falls, exits bool) {
	falls = true
	for _, s := range stmts {
		if !falls {
			return false, exits
		}
		f, e := stmtStatus(info, obj, s)
		exits = exits || e
		falls = f
	}
	return falls, exits
}

// stmtStatus analyzes one statement entered unconsumed, returning
// whether some path falls past it unconsumed and whether some path
// exits the function from within it unconsumed.
func stmtStatus(info *types.Info, obj types.Object, s ast.Stmt) (falls, exits bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if stmtConsumes(info, obj, s) {
			return false, false
		}
		return false, true
	case *ast.ExprStmt:
		if isTerminalCall(info, s.X) {
			// panic/Fatal paths don't count as leaks: the process (or
			// test) is going down, pooled memory is moot.
			return false, false
		}
		return !stmtConsumes(info, obj, s), false
	case *ast.DeferStmt, *ast.GoStmt:
		// A defer or goroutine that consumes covers every later path.
		return !stmtConsumes(info, obj, s), false
	case *ast.IfStmt:
		if exprConsumes(info, obj, s.Cond) || (s.Init != nil && stmtConsumes(info, obj, s.Init)) {
			return false, false
		}
		bf, be := seqStatus(info, obj, s.Body.List)
		ef, ee := true, false
		switch els := s.Else.(type) {
		case *ast.BlockStmt:
			ef, ee = seqStatus(info, obj, els.List)
		case *ast.IfStmt:
			ef, ee = stmtStatus(info, obj, els)
		case nil:
			// no else: the false branch falls through unconsumed
		}
		return bf || ef, be || ee
	case *ast.BlockStmt:
		return seqStatus(info, obj, s.List)
	case *ast.ForStmt:
		if s.Cond != nil && exprConsumes(info, obj, s.Cond) {
			return false, false
		}
		bf, be := seqStatus(info, obj, s.Body.List)
		_ = bf
		// Conservative: a loop may run zero times (or exit via
		// break), so consumption inside it does not count as
		// guaranteed — except the unconditional `for { ... }` with no
		// break, which never falls through.
		if s.Cond == nil && !hasBreak(s.Body) {
			return false, be
		}
		return true, be
	case *ast.RangeStmt:
		if exprConsumes(info, obj, s.X) {
			return false, false
		}
		_, be := seqStatus(info, obj, s.Body.List)
		return true, be
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return switchStatus(info, obj, s)
	case *ast.LabeledStmt:
		return stmtStatus(info, obj, s.Stmt)
	case *ast.BranchStmt:
		// break/continue/goto: where control lands is out of scope;
		// assume it can fall onward unconsumed.
		return true, false
	default:
		return !stmtConsumes(info, obj, s), false
	}
}

// switchStatus handles the three switch-like statements uniformly:
// every case body is analyzed; a missing default is a fall-through.
func switchStatus(info *types.Info, obj types.Object, s ast.Stmt) (falls, exits bool) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Tag != nil && exprConsumes(info, obj, s.Tag) {
			return false, false
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	falls = false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cc := cs.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				if exprConsumes(info, obj, e) {
					return false, false
				}
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else if stmtConsumes(info, obj, cc.Comm) {
				continue
			}
			stmts = cc.Body
		}
		f, e := seqStatus(info, obj, stmts)
		falls = falls || f
		exits = exits || e
	}
	if !hasDefault {
		falls = true
	}
	return falls, exits
}

// hasBreak reports whether the loop body contains a break that exits
// it (approximated as any unlabeled break not nested in an inner
// loop/switch).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node, inNested bool)
	walk = func(n ast.Node, inNested bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.BranchStmt:
				if m.Tok == token.BREAK && (!inNested || m.Label != nil) {
					found = true
				}
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if m != n {
					walk(m, true)
					return false
				}
			}
			return true
		})
	}
	for _, s := range body.List {
		walk(s, false)
	}
	return found
}

// isTerminalCall reports panic / Fatal-style calls.
func isTerminalCall(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		return name == "Fatal" || name == "Fatalf" || name == "Exit"
	}
	return false
}

// stmtConsumes reports whether the statement contains a consuming use
// of obj (see exprConsumes), checking the statement's own structural
// positions: assignment into an escaping LHS, channel send, return.
func stmtConsumes(info *types.Info, obj types.Object, s ast.Stmt) bool {
	consumed := false
	ast.Inspect(s, func(n ast.Node) bool {
		if consumed {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if callConsumes(info, obj, n, s) {
				consumed = true
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !exprIsObjOrSlice(info, obj, rhs) {
					continue
				}
				// v = append(v, ...) keeps ownership; anything else
				// (x.f = v, m[k] = v, u := v) moves it.
				if i < len(n.Lhs) {
					consumed = true
					return false
				}
			}
		case *ast.SendStmt:
			if exprContainsConsume(info, obj, n.Value) {
				consumed = true
				return false
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if exprContainsConsume(info, obj, r) {
					consumed = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if exprIsObjOrSlice(info, obj, e) {
					consumed = true
					return false
				}
			}
		}
		return true
	})
	return consumed
}

func exprConsumes(info *types.Info, obj types.Object, e ast.Expr) bool {
	if e == nil {
		return false
	}
	return stmtConsumes(info, obj, &ast.ExprStmt{X: e})
}

// callConsumes reports whether the call passes obj (or a subslice) to
// a callee — a hand-off — excluding the non-consuming readers (len,
// cap, copy, delete, print) and `append(v, ...)` whose result is
// reassigned to v (tracked via the enclosing statement).
func callConsumes(info *types.Info, obj types.Object, call *ast.CallExpr, enclosing ast.Stmt) bool {
	funName := ""
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		funName = fun.Name
	case *ast.SelectorExpr:
		funName = fun.Sel.Name
	}
	switch funName {
	case "len", "cap", "copy", "delete", "print", "println":
		return false
	}
	for i, arg := range call.Args {
		if !exprIsObjOrSlice(info, obj, arg) {
			continue
		}
		if funName == "append" && i == 0 {
			// append(v, ...): consuming only if the grown slice goes
			// somewhere other than back into v.
			if as, ok := enclosing.(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				if id, ok := unparen(as.Lhs[0]).(*ast.Ident); ok {
					lobj := info.Uses[id]
					if lobj == nil {
						lobj = info.Defs[id]
					}
					if lobj == obj && unparen(as.Rhs[0]) == call {
						return false
					}
				}
			}
			return true
		}
		return true
	}
	return false
}

// exprIsObjOrSlice reports whether e is obj itself, a slice of it
// (v[i:j] shares the backing array), or obj threaded through parens.
func exprIsObjOrSlice(info *types.Info, obj types.Object, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e] == obj
	case *ast.SliceExpr:
		return exprIsObjOrSlice(info, obj, e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && exprIsObjOrSlice(info, obj, e.X)
	}
	return false
}

// exprContainsConsume is a looser containment test for return values
// and channel sends: obj anywhere in the expression (outside an index
// read) is a hand-off.
func exprContainsConsume(info *types.Info, obj types.Object, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if ix, ok := n.(*ast.IndexExpr); ok {
			// v[i] reads one element; not a hand-off of the buffer.
			ast.Inspect(ix.Index, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return true
			})
			if exprIsObjOrSlice(info, obj, ix.X) {
				return false
			}
			return true
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// checkRetention flags handler code that stores a delivered frame's
// payload (msg.Payload, a subslice of it, or the whole msg) into a
// location that outlives the handler call.
func checkRetention(pass *analysis.Pass, allows *allowSet, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// Message-typed parameters of the function.
	params := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && isTypeFrom(obj.Type(), "netsim", "Message") {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if !isPayloadRef(info, params, rhs) {
				continue
			}
			if !isEscapingLHS(info, pass.Pkg, as.Lhs[i]) {
				continue
			}
			if allows.allowed("poolown", as.Pos()) {
				continue
			}
			pass.Reportf(as.Pos(),
				"handler retains Message.Payload past return: the transport recycles pooled frames after the handler — copy the bytes (append into an owned buffer) or adopt via SharedPayload refcounting (//lint:allow poolown <reason> for unpooled frames)")
		}
		return true
	})
}

// isPayloadRef matches msg.Payload, msg.Payload[i:j], and msg itself.
func isPayloadRef(info *types.Info, params map[types.Object]bool, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return params[info.Uses[e]]
	case *ast.SelectorExpr:
		if e.Sel.Name != "Payload" {
			return false
		}
		if id, ok := unparen(e.X).(*ast.Ident); ok {
			return params[info.Uses[id]]
		}
	case *ast.SliceExpr:
		return isPayloadRef(info, params, e.X)
	}
	return false
}

// isEscapingLHS reports whether the assignment target outlives the
// function: a field or dereference, an index into anything non-local,
// or a package-level variable.
func isEscapingLHS(info *types.Info, pkg *types.Package, lhs ast.Expr) bool {
	switch lhs := unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	case *ast.Ident:
		obj := info.Uses[lhs]
		if obj == nil {
			obj = info.Defs[lhs]
		}
		v, ok := obj.(*types.Var)
		return ok && v.Parent() == pkg.Scope()
	}
	return false
}
