// Package virtualtime exercises the virtualtime analyzer: wall-clock
// reads are flagged, pure time-value arithmetic is not, and
// //lint:allow realtime annotations (with reasons) silence a site.
package virtualtime

import "time"

func wallClock() time.Time {
	t := time.Now()              // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return t
}

func wallChannels() {
	<-time.After(time.Second)  // want `time\.After reads the wall clock`
	_ = time.Tick(time.Second) // want `time\.Tick reads the wall clock`
}

func pureValues() time.Duration {
	d, _ := time.ParseDuration("3ms")
	t := time.Unix(0, 0)
	u := time.Unix(1, 0)
	if u.After(t) { // Time.After is a pure comparison, not a clock read
		return d + u.Sub(t)
	}
	return d
}

// Annotated in the doc comment: the allowance covers the whole
// function.
//
//lint:allow realtime fixture: real-latency path sleeps wall-clock by design
func allowedWholeFunc() {
	time.Sleep(time.Millisecond)
	time.Sleep(2 * time.Millisecond)
}

func allowedPerLine() {
	time.Sleep(time.Millisecond) //lint:allow realtime fixture: wall sleep is the point here
	//lint:allow realtime fixture: annotation covers the next line
	time.Sleep(time.Millisecond)
}

func missingReason() {
	//lint:allow realtime
	// want-1 `needs a reason`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func unknownCheck() {
	//lint:allow wallclock misspelled check token
	// want-1 `unknown check`
	_ = time.Unix(0, 0)
}
