// Package netsim is a fixture stub mirroring the transport shapes
// dsm-lint keys on: a Message with a pooled Payload and engines whose
// Send method is a wire sink. Matching is by package-path tail, so
// this flat "netsim" stands in for partialdsm/internal/netsim.
package netsim

type Message struct {
	From, To int
	Payload  []byte
	Vars     []string
}

type Transport interface {
	Send(Message)
}

// Net is a concrete engine; any Send method in a netsim package is a
// maporder wire sink.
type Net struct {
	log []Message
}

func (n *Net) Send(m Message) {
	n.log = append(n.log, m)
}
