// Package maporder exercises the maporder analyzer: map ranges in
// functions that (transitively) reach a wire sink are flagged unless
// the keys are collected and sorted first or the loop is annotated.
package maporder

import (
	"sort"

	"mcs"
	"netsim"
)

type node struct {
	net   *netsim.Net
	out   *mcs.Outbox
	dirty map[string]int
}

func (n *node) flushUnsorted() {
	for x := range n.dirty { // want `map iteration order reaches the wire`
		n.net.Send(netsim.Message{Vars: []string{x}})
	}
}

func (n *node) flushSorted() {
	var keys []string
	for x := range n.dirty { // collected then sorted: the blessed shape
		keys = append(keys, x)
	}
	sort.Strings(keys)
	for _, x := range keys {
		n.net.Send(netsim.Message{Vars: []string{x}})
	}
}

func (n *node) flushAllowed() {
	//lint:allow maporder fixture: destination set is a singleton here
	for x := range n.dirty {
		n.net.Send(netsim.Message{Vars: []string{x}})
	}
}

// count never reaches the wire: map order is harmless bookkeeping.
func (n *node) count() int {
	total := 0
	for _, v := range n.dirty {
		total += v
	}
	return total
}

// transitive reach: rangeThenHelper -> helper -> Net.Send.
func (n *node) rangeThenHelper() {
	for x := range n.dirty { // want `map iteration order reaches the wire`
		n.helper(x)
	}
}

func (n *node) helper(x string) {
	n.net.Send(netsim.Message{Vars: []string{x}})
}

// Outbox staging and Enc encoding are wire sinks too.
func (n *node) stageUnsorted() {
	for x := range n.dirty { // want `map iteration order reaches the wire`
		n.out.AddTo(0, x, 1, 0)
	}
}

func encodeMap(e *mcs.Enc, m map[uint32]uint32) {
	for k := range m { // want `map iteration order reaches the wire`
		e.U32(k)
	}
}
