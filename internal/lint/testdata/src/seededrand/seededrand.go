// Package seededrand exercises the seededrand analyzer: the math/rand
// global stream and shared generator storage are flagged, local
// explicitly-seeded generators are not.
package seededrand

import "math/rand"

func globalStream() int {
	return rand.Intn(10) // want `rand\.Intn draws from the process-global stream`
}

func globalFloat() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global stream`
	return rand.Float64()              // want `rand\.Float64 draws from the process-global stream`
}

type engine struct {
	seed int64
	rng  *rand.Rand // want `struct field holds a \*math/rand\.Rand`
}

var sharedRng = rand.New(rand.NewSource(1)) // want `package-level \*math/rand\.Rand is a shared rng stream`

func localGenerator(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors and local streams are fine
	return r.Intn(10)
}

//lint:allow seededrand fixture: scratch shuffle whose order never reaches the wire
func allowedWholeFunc() float64 {
	return rand.Float64()
}

type annotated struct {
	rng *rand.Rand //lint:allow seededrand fixture: guarded by a mutex, real-latency jitter only
}
