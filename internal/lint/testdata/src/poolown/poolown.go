// Package poolown exercises the poolown analyzer: a pooled buffer
// must reach a hand-off on every path, and handlers must not retain a
// delivered Message's payload.
package poolown

import (
	"mcs"
	"netsim"
)

type sender struct {
	net  *netsim.Net
	held []byte
}

func (s *sender) leakOnBranch(urgent bool) {
	buf := mcs.GetPayload() // want `may not reach PutPayload`
	buf = append(buf, 1)
	if urgent {
		s.net.Send(netsim.Message{Payload: buf})
	}
	// not urgent: buf falls off the function unconsumed — the PR-6
	// drop-vs-inflight leak shape.
}

func discardBlank() {
	_ = mcs.GetPayload() // want `result is discarded`
}

func discardBare() {
	mcs.GetPayload() // want `result is discarded`
}

func (s *sender) okAllPaths(urgent bool) {
	buf := mcs.GetPayload()
	buf = append(buf, 1)
	if urgent {
		s.net.Send(netsim.Message{Payload: buf})
		return
	}
	mcs.PutPayload(buf)
}

func (s *sender) okReturned() []byte {
	buf := mcs.GetPayload()
	return append(buf, 0) // ownership moves to the caller
}

func (s *sender) leakInLoop(dests []int) {
	for range dests {
		buf := mcs.GetPayload() // want `may not reach PutPayload`
		buf = append(buf, 1)
	}
}

func (s *sender) okSharedAllowed(dests []int) {
	if len(dests) == 0 {
		return
	}
	//lint:allow poolown fixture: dests is non-empty (guarded above); every path reaches a Send
	buf, refs := mcs.GetSharedPayload(len(dests))
	_ = refs
	for _, d := range dests {
		s.net.Send(netsim.Message{To: d, Payload: buf})
	}
}

func (s *sender) retainPayload(m netsim.Message) {
	s.held = m.Payload // want `retains Message\.Payload past return`
}

func (s *sender) retainSubslice(m netsim.Message) {
	s.held = m.Payload[4:] // want `retains Message\.Payload past return`
}

func (s *sender) retainCopy(m netsim.Message) {
	s.held = append(s.held[:0], m.Payload...) // copying is the fix
}

func (s *sender) readOnly(m netsim.Message) int {
	return len(m.Payload) + int(m.Payload[0])
}
