// Package mcs is a fixture stub mirroring the protocol-layer shapes
// dsm-lint keys on: the Enc wire encoder (every method is a maporder
// sink), the Outbox staging methods, and the pooled-payload getters
// whose results poolown tracks.
package mcs

type Enc struct {
	buf []byte
}

func (e *Enc) SetBuf(b []byte) { e.buf = b[:0] }
func (e *Enc) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *Enc) Str(s string)  { e.buf = append(e.buf, s...) }
func (e *Enc) Bytes() []byte { return e.buf }

type Outbox struct {
	staged int
}

func (o *Outbox) Stage(ctrl, data int)                      { o.staged++ }
func (o *Outbox) Emit(dests []int, vars []string, c, d int) { o.staged = 0 }
func (o *Outbox) AddTo(dst int, x string, ctrl, data int)   { o.staged++ }
func (o *Outbox) AddToVars(dst int, xs []string, c, d int)  { o.staged++ }
func (o *Outbox) Flush()                                    { o.staged = 0 }

func GetPayload() []byte  { return make([]byte, 0, 64) }
func PutPayload(b []byte) {}

func GetSharedPayload(n int) ([]byte, *int32) {
	refs := int32(n)
	return make([]byte, 0, 64), &refs
}
