package lint

import (
	"go/ast"
	"go/types"

	"partialdsm/internal/lint/analysis"
)

// randConstructors are the math/rand package-level functions that
// build an explicit, locally-owned generator — the blessed way to get
// scratch randomness in a single-goroutine driver. Everything else at
// package level draws from the process-global stream.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// randStreamTypes are the generator/state types whose placement in a
// struct field or package variable creates a shared stream.
var randStreamTypes = map[string]bool{
	"Rand":     true,
	"Source":   true,
	"Source64": true,
	"PCG":      true,
	"ChaCha8":  true,
	"Zipf":     true,
}

func isMathRand(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

// SeededRand forbids the two rng shapes that break cross-engine
// determinism: the math/rand global stream (seeded per process, and
// shared by every goroutine) and *rand.Rand values stored in struct
// fields or package variables (a shared stream whose draw order
// depends on how sends interleave across pairs — the PR-5 cross-engine
// divergence). Per-message randomness must be derived as a pure
// function of (seed, src, dst, per-pair seq): netsim.PairDraw. Local
// rand.New(rand.NewSource(seed)) generators owned by one driver
// goroutine remain legal.
var SeededRand = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbid math/rand global functions and shared *rand.Rand streams in deterministic code; use netsim.PairDraw",
	Run:  runSeededRand,
}

func runSeededRand(pass *analysis.Pass) (any, error) {
	allows := allowsOf(pass)
	allows.reportBad(pass, "seededrand", false)
	if !inScope(pass.Pkg) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				fn, ok := pass.TypesInfo.Uses[n].(*types.Func)
				if !ok || !isMathRand(fn.Pkg()) {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() != nil || randConstructors[fn.Name()] {
					return true
				}
				if allows.inTestFile(n.Pos()) || allows.allowed("seededrand", n.Pos()) {
					return true
				}
				pass.Reportf(n.Pos(),
					"rand.%s draws from the process-global stream in deterministic code: derive per-message randomness with netsim.PairDraw(domain, seed, src, dst, seq), or build a local rand.New(rand.NewSource(seed)) owned by one goroutine",
					fn.Name())
			case *ast.StructType:
				for _, field := range n.Fields.List {
					t := pass.TypesInfo.TypeOf(field.Type)
					if t == nil || !isRandStream(t) {
						continue
					}
					pos := field.Pos()
					if allows.inTestFile(pos) || allows.allowed("seededrand", pos) {
						continue
					}
					pass.Reportf(pos,
						"struct field holds a %s: a shared rng stream's draw order depends on goroutine interleaving; derive per-message randomness with netsim.PairDraw(domain, seed, src, dst, seq) instead",
						types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
						if !ok || obj.Parent() != pass.Pkg.Scope() || !isRandStream(obj.Type()) {
							continue
						}
						if allows.inTestFile(name.Pos()) || allows.allowed("seededrand", name.Pos()) {
							continue
						}
						pass.Reportf(name.Pos(),
							"package-level %s is a shared rng stream in deterministic code; derive per-message randomness with netsim.PairDraw(domain, seed, src, dst, seq) instead",
							types.TypeString(obj.Type(), types.RelativeTo(pass.Pkg)))
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// isRandStream reports whether t (through pointers) is a math/rand
// generator or source type.
func isRandStream(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	return isMathRand(n.Obj().Pkg()) && randStreamTypes[n.Obj().Name()]
}
