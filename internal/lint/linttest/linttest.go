// Package linttest is an analysistest-style harness for the dsm-lint
// analyzers: it type-checks a fixture package under testdata/src,
// runs one analyzer over it, and matches the diagnostics against
// `// want "regex"` expectations embedded in the fixture sources.
//
// Expectation grammar, one or more per comment:
//
//	code() // want "first regex" "second regex"
//
// Each expectation matches exactly one diagnostic reported on its
// line; unmatched diagnostics and unmatched expectations both fail
// the test. A `// want-1 "regex"` form anchors the expectation one
// line up (generally: want<offset> with a signed offset) — needed for
// diagnostics reported on a line whose only comment is the annotation
// under test.
//
// Fixture imports resolve in two steps: a sibling directory under
// testdata/src wins (so fixtures can import stub `netsim` and `mcs`
// packages that mirror the real shapes dsm-lint keys on), anything
// else is loaded as compiled export data via `go list -export`.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"partialdsm/internal/lint/analysis"
	"partialdsm/internal/lint/loader"
)

// Run loads testdata/src/<pkgPath>, applies the analyzer, and checks
// the diagnostics against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	fi := &fixtureImporter{root: root, fset: token.NewFileSet(), loaded: make(map[string]*analysis.Package)}
	pkg, err := fi.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants, err := parseWants(filepath.Join(root, filepath.FromSlash(pkgPath)))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !consumeWant(wants, f.Pos.Filename, f.Pos.Line, f.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re.String())
		}
	}
}

// want is one expectation: a diagnostic on (file, line) whose message
// matches re.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRe captures the optional signed line offset and the quoted
// regexes of a want comment.
var wantRe = regexp.MustCompile(`//\s*want([+-]\d+)?\s+(.*)`)

// quotedRe captures one double-quoted or backquoted string.
var quotedRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func parseWants(dir string) ([]*want, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			lineNo := i + 1
			if m[1] != "" {
				off, err := strconv.Atoi(strings.TrimPrefix(m[1], "+"))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want offset %q", path, lineNo, m[1])
				}
				lineNo += off
			}
			quoted := quotedRe.FindAllString(m[2], -1)
			if len(quoted) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment without a quoted regex", path, lineNo)
			}
			for _, q := range quoted {
				var pat string
				if q[0] == '`' {
					pat = q[1 : len(q)-1]
				} else if pat, err = strconv.Unquote(q); err != nil {
					return nil, fmt.Errorf("%s:%d: bad want string %s: %v", path, lineNo, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regex %q: %v", path, lineNo, pat, err)
				}
				wants = append(wants, &want{file: path, line: lineNo, re: re})
			}
		}
	}
	return wants, nil
}

func consumeWant(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// fixtureImporter type-checks fixture packages from source and
// everything else from `go list -export` data.
type fixtureImporter struct {
	root   string
	fset   *token.FileSet
	loaded map[string]*analysis.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		pkg, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return stdImporter(fi.fset).Import(path)
}

func (fi *fixtureImporter) load(path string) (*analysis.Package, error) {
	if pkg, ok := fi.loaded[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	pkg, err := loader.Check(path, fi.fset, files, fi, "")
	if err != nil {
		return nil, err
	}
	fi.loaded[path] = pkg
	return pkg, nil
}

// stdImporter lazily builds one shared export-data lookup for the
// standard library packages fixtures may import. `go list` compiles
// into the build cache as needed, so this works offline.
var (
	stdOnce    sync.Once
	stdExports map[string]string
	stdErr     error
)

// stdPkgs is the closed set of non-fixture imports fixtures may use;
// -deps pulls in their internal dependencies.
var stdPkgs = []string{"time", "math/rand", "sort", "fmt", "sync", "sync/atomic"}

func stdImporter(fset *token.FileSet) types.Importer {
	stdOnce.Do(func() {
		args := append([]string{"list", "-e", "-export", "-deps", "-json"}, stdPkgs...)
		cmd := exec.Command("go", args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			stdErr = fmt.Errorf("go list std exports: %v\n%s", err, stderr.String())
			return
		}
		stdExports = make(map[string]string)
		dec := json.NewDecoder(&stdout)
		for {
			var lp struct {
				ImportPath string
				Export     string
			}
			if err := dec.Decode(&lp); err == io.EOF {
				break
			} else if err != nil {
				stdErr = err
				return
			}
			if lp.Export != "" {
				stdExports[lp.ImportPath] = lp.Export
			}
		}
	})
	if stdErr != nil {
		return failImporter{stdErr}
	}
	return loader.NewExportImporter(fset, func(path string) (string, bool) {
		f, ok := stdExports[path]
		return f, ok
	}, nil)
}

type failImporter struct{ err error }

func (f failImporter) Import(string) (*types.Package, error) { return nil, f.err }
