// Package lint is the dsm-lint analyzer suite: four static checks
// that enforce, at analysis time, the hand-maintained conventions the
// repo's one-seed ⇒ byte-identical-traces guarantee rests on. Each of
// these conventions has been violated once and caught only by an
// expensive soak; the analyzers move that detection to compile time.
//
//   - virtualtime: no real time (time.Now/Sleep/After/...) in
//     deterministic code — protocol state machines run on the virtual
//     clock (netsim.Clock). Real time is legitimate only in the
//     real-sleep latency path and wall-clock measurement of it, behind
//     //lint:allow realtime <reason>.
//   - seededrand: no math/rand global functions and no shared
//     *rand.Rand streams in deterministic code — per-message randomness
//     is derived from netsim.PairDraw(seed, src, dst, seq), so draws
//     are independent of goroutine interleaving.
//   - maporder: no map iteration in any function that can reach the
//     wire (Transport.Send, Outbox staging, Enc encoding) — map order
//     would leak into byte traces. Iterate sorted keys instead.
//   - poolown: every mcs.GetPayload buffer must reach exactly one
//     owner hand-off (PutPayload, an Outbox/Send, SharedPayload
//     adoption) on every path, and handlers must not retain
//     Message.Payload past return.
//
// Findings are silenced — never by default, always with a reason — by
// the annotation
//
//	//lint:allow <check> <reason>
//
// placed on the flagged line, on the line directly above it, or in the
// doc comment of the enclosing function (covering the whole function).
// <check> is realtime, seededrand, maporder or poolown. The reasons
// are part of the documented invariant surface: `dsm-lint ./...` plus
// `git grep "lint:allow"` is the complete exception list.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"partialdsm/internal/lint/analysis"
)

// Analyzers returns the dsm-lint suite in its canonical order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		VirtualTime,
		SeededRand,
		MapOrder,
		PoolOwn,
	}
}

// checkNames are the valid <check> tokens of //lint:allow annotations.
// virtualtime's token is "realtime": the annotation names what is being
// allowed, not the analyzer that polices it.
var checkNames = map[string]bool{
	"realtime":   true,
	"seededrand": true,
	"maporder":   true,
	"poolown":    true,
}

// inScope reports whether a package is part of the deterministic
// surface the suite polices. cmd/ and examples/ are drivers on the
// wall-clock side of the API and exempt; everything else in the module
// (the partialdsm root and internal/...) is in scope. Packages outside
// the module (the analyzers' own testdata) are in scope so the suite
// can be exercised on fixtures.
func inScope(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	if strings.HasPrefix(path, "partialdsm") {
		return path == "partialdsm" || strings.HasPrefix(path, "partialdsm/internal/")
	}
	return true
}

// pkgTailIs reports whether the package's import path is name or ends
// in /name — matching both the real module layout
// (partialdsm/internal/netsim) and the flat fixture layout the
// analyzer tests use (netsim).
func pkgTailIs(pkg *types.Package, name string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == name || strings.HasSuffix(path, "/"+name)
}

// namedOf unwraps pointers down to a named type, or nil. (No alias
// unwrapping: the module declares no type aliases, and the package
// must compile on the go.mod minimum, which predates types.Alias.)
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// unparen strips parentheses. (ast.Unparen needs a newer toolchain
// than the go.mod minimum.)
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isTypeFrom reports whether t (through pointers) is the named type
// pkgTail.name.
func isTypeFrom(t types.Type, pkgTail, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	return n.Obj().Name() == name && pkgTailIs(n.Obj().Pkg(), pkgTail)
}
