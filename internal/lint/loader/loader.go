// Package loader turns `go list` package patterns into type-checked
// analysis.Packages without depending on anything beyond the standard
// library and the go command.
//
// It shells out to `go list -export -deps -json`, which compiles every
// dependency into the build cache and reports the export-data file per
// package. Target packages (the ones matching the patterns) are then
// parsed from source and type-checked against that export data via the
// standard gc importer — the same arrangement `go vet` sets up for a
// vet tool, so the standalone dsm-lint run and the -vettool run see
// identical type information.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"partialdsm/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	DepOnly    bool
	Standard   bool
	GoFiles    []string
	CgoFiles   []string
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Load lists, parses and type-checks the packages matching the
// patterns (plus export data for their dependency closure) in the
// directory dir ("" = current directory).
func Load(dir string, patterns ...string) ([]*analysis.Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var targets []*listPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	}, nil)

	var pkgs []*analysis.Package
	for _, lp := range targets {
		if len(lp.GoFiles) == 0 {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			// No cgo in this module; type-checking half a cgo package
			// would produce garbage findings, so refuse loudly.
			return nil, fmt.Errorf("%s: cgo packages are not supported", lp.ImportPath)
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		goVersion := ""
		if lp.Module != nil && lp.Module.GoVersion != "" {
			goVersion = "go" + lp.Module.GoVersion
		}
		pkg, err := Check(lp.ImportPath, fset, files, imp, goVersion)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// NewExportImporter returns a types importer resolving import paths
// through importMap (nil = identity) and reading gc export data from
// the file reported by lookup. Paths lookup cannot resolve fail with a
// descriptive error.
func NewExportImporter(fset *token.FileSet, lookup func(path string) (file string, ok bool), importMap map[string]string) types.ImporterFrom {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return &mappedImporter{gc: gc.(types.ImporterFrom), importMap: importMap}
}

type mappedImporter struct {
	gc        types.ImporterFrom
	importMap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *mappedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.gc.ImportFrom(path, dir, mode)
}

// Check parses the given files and type-checks them as one package,
// returning the analysis view. Parse and type errors are collected
// into a single error.
func Check(pkgPath string, fset *token.FileSet, files []string, imp types.Importer, goVersion string) (*analysis.Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", pkgPath, err)
		}
		syntax = append(syntax, f)
	}
	return CheckSyntax(pkgPath, fset, syntax, imp, goVersion)
}

// CheckSyntax type-checks already-parsed files as one package.
func CheckSyntax(pkgPath string, fset *token.FileSet, syntax []*ast.File, imp types.Importer, goVersion string) (*analysis.Package, error) {
	info := analysis.NewInfo()
	var typeErrs []string
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(pkgPath, fset, syntax, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type errors:\n\t%s", pkgPath, strings.Join(typeErrs, "\n\t"))
	}
	return &analysis.Package{
		PkgPath:   pkgPath,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
