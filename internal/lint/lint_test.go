package lint_test

import (
	"os/exec"
	"path/filepath"
	"testing"

	"partialdsm/internal/lint"
	"partialdsm/internal/lint/linttest"
)

func TestVirtualTime(t *testing.T) { linttest.Run(t, lint.VirtualTime, "virtualtime") }
func TestSeededRand(t *testing.T)  { linttest.Run(t, lint.SeededRand, "seededrand") }
func TestMapOrder(t *testing.T)    { linttest.Run(t, lint.MapOrder, "maporder") }
func TestPoolOwn(t *testing.T)     { linttest.Run(t, lint.PoolOwn, "poolown") }

// buildLint compiles the dsm-lint binary into the test's temp dir.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dsm-lint")
	cmd := exec.Command("go", "build", "-o", bin, "partialdsm/cmd/dsm-lint")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building dsm-lint: %v\n%s", err, out)
	}
	return bin
}

// TestRepoIsClean is the enforcement test: the tree must stay free of
// dsm-lint findings (fix the code or annotate with a reason).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and sweeps the whole module")
	}
	bin := buildLint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("dsm-lint ./... found violations:\n%s", out)
	}
}

// TestGoVetVettool drives the real `go vet -vettool` protocol
// end-to-end: version/flags probe, per-package config files, export
// data, facts files.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet over the whole module")
	}
	bin := buildLint(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=dsm-lint ./...: %v\n%s", err, out)
	}
}
