package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"partialdsm/internal/lint/analysis"
)

// allowPrefix starts every suppression annotation. Grammar:
//
//	//lint:allow <check> <reason>
//
// The reason is mandatory — an annotation without one is itself a
// diagnostic. An annotation covers its own line and the next line, or
// the whole function when it appears in the function's doc comment.
const allowPrefix = "//lint:allow"

// span is a line range [from, to] within one file that one annotation
// covers.
type span struct {
	file     string
	from, to int
}

// allowSet indexes a package's //lint:allow annotations.
type allowSet struct {
	fset     *token.FileSet
	byCheck  map[string][]span
	bad      map[string][]badAllow // malformed annotations by check token
	unknown  []badAllow            // annotations with an unrecognized check token
	testFile map[string]bool
}

type badAllow struct {
	pos token.Pos
	msg string
}

// allowsOf parses the annotations of every file in the pass. The
// result is cheap enough to rebuild per analyzer; each analyzer then
// owns reporting the malformed annotations that carry its token.
func allowsOf(pass *analysis.Pass) *allowSet {
	as := &allowSet{
		fset:     pass.Fset,
		byCheck:  make(map[string][]span),
		bad:      make(map[string][]badAllow),
		testFile: make(map[string]bool),
	}
	for _, f := range pass.Files {
		file := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(file, "_test.go") {
			as.testFile[file] = true
		}
		// Doc-comment annotations cover their whole declaration.
		funcSpans := make(map[*ast.Comment]span)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				funcSpans[c] = span{
					file: file,
					from: pass.Fset.Position(fd.Pos()).Line,
					to:   pass.Fset.Position(fd.End()).Line,
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					as.unknown = append(as.unknown, badAllow{c.Pos(), "//lint:allow needs a check name and a reason"})
					continue
				}
				check := fields[0]
				if !checkNames[check] {
					as.unknown = append(as.unknown, badAllow{c.Pos(), "//lint:allow " + check + ": unknown check"})
					continue
				}
				if len(fields) < 2 {
					as.bad[check] = append(as.bad[check], badAllow{c.Pos(),
						"//lint:allow " + check + " needs a reason: the allowlist documents why each exception is sound"})
					continue
				}
				sp, ok := funcSpans[c]
				if !ok {
					line := pass.Fset.Position(c.Pos()).Line
					sp = span{file: file, from: line, to: line + 1}
				}
				as.byCheck[check] = append(as.byCheck[check], sp)
			}
		}
	}
	return as
}

// allowed reports whether pos is covered by an annotation for check.
func (as *allowSet) allowed(check string, pos token.Pos) bool {
	p := as.fset.Position(pos)
	for _, sp := range as.byCheck[check] {
		if sp.file == p.Filename && sp.from <= p.Line && p.Line <= sp.to {
			return true
		}
	}
	return false
}

// inTestFile reports whether pos is in a _test.go file — tests drive
// wall-clock deadlines and scratch rngs by design, so the suite skips
// them.
func (as *allowSet) inTestFile(pos token.Pos) bool {
	return as.testFile[as.fset.Position(pos).Filename]
}

// reportBad reports the malformed annotations carrying this check's
// token. The virtualtime analyzer additionally owns the
// unknown-check-token reports (exactly one analyzer must, or every
// finding would appear four times).
func (as *allowSet) reportBad(pass *analysis.Pass, check string, ownUnknown bool) {
	for _, b := range as.bad[check] {
		pass.Reportf(b.pos, "%s", b.msg)
	}
	if ownUnknown {
		for _, b := range as.unknown {
			pass.Reportf(b.pos, "%s", b.msg)
		}
	}
}
