package lint

import (
	"go/ast"
	"go/types"

	"partialdsm/internal/lint/analysis"
)

// realTimeFuncs are the package time functions that read or act on the
// wall clock. Pure constructors of duration/format values (ParseDuration,
// Unix, Date, ...) are deterministic and stay legal.
var realTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// VirtualTime forbids wall-clock time in deterministic code. The
// one-seed ⇒ byte-identical-traces guarantee holds because protocol
// and experiment schedules run entirely on the virtual clock
// (netsim.Clock): a single time.Sleep or time.Now-derived deadline
// reintroduces machine speed into the trace. The real-sleep latency
// engine and wall-clock measurement of it are the only legitimate
// users, each behind //lint:allow realtime <reason>.
var VirtualTime = &analysis.Analyzer{
	Name: "virtualtime",
	Doc:  "forbid time.Now/Sleep/After/... in deterministic code; schedules belong on netsim.Clock",
	Run:  runVirtualTime,
}

func runVirtualTime(pass *analysis.Pass) (any, error) {
	allows := allowsOf(pass)
	// virtualtime anchors the suite: it owns the unknown-check-token
	// reports so they appear exactly once.
	allows.reportBad(pass, "realtime", true)
	if !inScope(pass.Pkg) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !realTimeFuncs[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Time.After / Time.Sub etc. are pure value comparisons,
				// not wall-clock reads.
				return true
			}
			if allows.inTestFile(id.Pos()) || allows.allowed("realtime", id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(),
				"time.%s reads the wall clock in deterministic code: schedule on the virtual clock (netsim.Clock via Transport.Clock) instead, or annotate a real-latency path with //lint:allow realtime <reason>",
				fn.Name())
			return true
		})
	}
	return nil, nil
}
