package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"partialdsm/internal/lint/analysis"
)

// MapOrder forbids ranging over a map in any function that can reach
// the wire. Map iteration order is deliberately randomized by the
// runtime, so a map range anywhere on a path that stages, encodes or
// sends bytes turns into run-to-run trace divergence — the exact class
// of bug the cross-engine byte-identical goldens exist to catch, found
// late and expensively. Reachability is computed transitively over the
// package's own call graph; the wire sinks are netsim.Transport.Send
// (and engine Send implementations), the mcs.Outbox staging methods,
// and every mcs.Enc encode method.
//
// Two escapes: iterate a sorted key slice (the range that merely
// collects keys into a slice that is subsequently sorted in the same
// function is recognized and not flagged), or annotate a genuinely
// order-insensitive loop with //lint:allow maporder <reason>.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "forbid map iteration in functions that can reach Transport.Send/Outbox/Enc; iterate sorted keys",
	Run:  runMapOrder,
}

// outboxWireMethods are the mcs.Outbox methods that stage or emit
// frames.
var outboxWireMethods = map[string]bool{
	"Stage":     true,
	"Emit":      true,
	"AddTo":     true,
	"AddToVars": true,
	"Flush":     true,
}

// sinkName reports whether fn is a wire sink and names it for the
// diagnostic.
func sinkName(fn *types.Func) (string, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	switch {
	case fn.Name() == "Send" && pkgTailIs(fn.Pkg(), "netsim"):
		return recvString(recv) + ".Send", true
	case pkgTailIs(fn.Pkg(), "mcs") && isTypeFrom(recv, "mcs", "Outbox") && outboxWireMethods[fn.Name()]:
		return "Outbox." + fn.Name(), true
	case pkgTailIs(fn.Pkg(), "mcs") && isTypeFrom(recv, "mcs", "Enc"):
		return "Enc." + fn.Name(), true
	}
	return "", false
}

func recvString(t types.Type) string {
	if n := namedOf(t); n != nil {
		return n.Obj().Name()
	}
	return "Transport"
}

func runMapOrder(pass *analysis.Pass) (any, error) {
	allows := allowsOf(pass)
	allows.reportBad(pass, "maporder", false)
	if !inScope(pass.Pkg) {
		return nil, nil
	}

	// decls maps the package's own functions to their syntax; the
	// reachability fixed point runs over this set. Function literals
	// are attributed to their enclosing declaration.
	type funcInfo struct {
		decl    *ast.FuncDecl
		callees map[*types.Func]bool
		via     string // sink (or callee chain head) that makes it wire-reaching
	}
	decls := make(map[*types.Func]*funcInfo)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = &funcInfo{decl: fd, callees: make(map[*types.Func]bool)}
		}
	}

	// Seed: functions that ARE wire sinks (Enc methods, engine Send
	// implementations analyzed in their own package) or directly call
	// one; collect call edges for the rest.
	for fn, info := range decls {
		if name, ok := sinkName(fn); ok {
			info.via = "is " + name
			continue
		}
		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee *types.Func
			switch fun := unparen(call.Fun).(type) {
			case *ast.Ident:
				callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
			case *ast.SelectorExpr:
				callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
			}
			if callee == nil {
				return true
			}
			if name, ok := sinkName(callee); ok && info.via == "" {
				info.via = "calls " + name
			}
			if _, local := decls[callee]; local {
				info.callees[callee] = true
			}
			return true
		})
	}

	// Fixed point: a caller of a wire-reaching function is
	// wire-reaching.
	for changed := true; changed; {
		changed = false
		for fn, info := range decls {
			if info.via != "" {
				continue
			}
			for callee := range info.callees {
				if c := decls[callee]; c.via != "" {
					info.via = fmt.Sprintf("calls %s (which %s)", callee.Name(), c.via)
					changed = true
					break
				}
			}
			_ = fn
		}
	}

	for _, info := range decls {
		if info.via == "" || allows.inTestFile(info.decl.Pos()) {
			continue
		}
		via := info.via
		ast.Inspect(info.decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if allows.allowed("maporder", rs.Pos()) {
				return true
			}
			if collectsForSort(pass, info.decl.Body, rs) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"map iteration order reaches the wire (function %s): collect the keys, sort them, and range over the slice — or annotate an order-insensitive loop with //lint:allow maporder <reason>",
				via)
			return true
		})
	}
	return nil, nil
}

// collectsForSort recognizes the blessed sorted-iteration prologue: a
// range over the map whose body only appends keys/values to local
// slices, at least one of which is later passed to sort.* or slices.*
// in the same enclosing function. The subsequent ordered loop ranges a
// slice and needs no exemption.
func collectsForSort(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) bool {
	// Every statement of the body must be `target = append(target, ...)`
	// (or `target := append(...)`) with target a plain local identifier.
	targets := make(map[types.Object]bool)
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return false
		}
		fun, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "append" {
			return false
		}
		var obj types.Object
		if as.Tok.String() == ":=" {
			obj = pass.TypesInfo.Defs[lhs]
		} else {
			obj = pass.TypesInfo.Uses[lhs]
		}
		if obj == nil {
			return false
		}
		targets[obj] = true
	}
	if len(targets) == 0 {
		return false
	}
	// Look for a later sort.X(target...) / slices.X(target...) call.
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || (fn.Pkg().Path() != "sort" && fn.Pkg().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := unparen(arg).(*ast.Ident); ok && targets[pass.TypesInfo.Uses[id]] {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}
