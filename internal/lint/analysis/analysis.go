// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The repo's build environment carries no module dependencies, so the
// dsm-lint suite (internal/lint) is written against this shim instead
// of x/tools. The shapes are kept intentionally identical — Analyzer
// {Name, Doc, Run}, Pass {Fset, Files, Pkg, TypesInfo, Report} — so
// porting the analyzers to the real framework is a mechanical import
// swap if x/tools ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check. Run is called once per
// package with a fully type-checked Pass and reports findings through
// pass.Report; the returned value is ignored by this driver (the
// x/tools slot for inter-analyzer results).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line flags
	// and //lint:allow annotations. It must be a valid Go identifier.
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer run with a single type-checked package
// and the sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Package is the loader-independent unit of analysis: syntax plus
// type information, as produced by internal/lint/loader or the
// unitchecker config path in cmd/dsm-lint.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// A Finding pairs a diagnostic with the analyzer that produced it and
// its resolved position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Run applies every analyzer to every package and returns the findings
// sorted by file, line, column and analyzer name — a deterministic
// order regardless of analyzer scheduling.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

// NewInfo returns a types.Info with every map analyzers rely on
// allocated, shared by the loader and the unitchecker path.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
