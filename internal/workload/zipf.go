package workload

import (
	"math"
	"sort"
)

// Access is one application-level operation of a generated stream: a
// read or a write of one variable issued at one node. The generator
// does not consult any placement — access control (and its denials)
// are part of what the stream is meant to exercise.
type Access struct {
	Node int
	Var  string
	Read bool
}

// ZipfMix generates a seeded hot-key access stream with per-node
// locality: each node draws variables from a zipfian distribution
// anchored at its own "home" slice of the variable space, so a few
// variables absorb most of a node's traffic and different nodes are
// hot on different variables. Rotate shifts every node's home slice at
// once — the working-set churn that forces a placement policy to
// re-adapt mid-run.
//
// The stream is fully determined by the constructor arguments: two
// ZipfMix values built with the same parameters produce identical
// sequences of Next results, interleaved identically with Rotate
// calls. That makes the generator safe for byte-identical experiment
// tables and usable standalone from dsm-bench. The generator owns its
// randomness outright — a splitmix64 counter and a precomputed zipf
// CDF — so no shared math/rand stream is involved anywhere.
type ZipfMix struct {
	state    uint64    // splitmix64 state, advanced once per draw
	cdf      []float64 // cumulative zipf weights over ranks 0..numVars-1
	numProcs int
	numVars  int
	readFrac float64
	rot      int
}

// NewZipfMix returns a generator over numProcs nodes and numVars
// variables (named with VarName). skew is the zipfian s parameter and
// must be > 0 — rank k is drawn with probability proportional to
// (k+1)^-skew, so larger values concentrate more traffic on each
// node's hottest variables. readFrac in [0, 1] is the probability that
// an access is a read.
func NewZipfMix(seed int64, numProcs, numVars int, skew, readFrac float64) *ZipfMix {
	if numProcs < 1 || numVars < 1 {
		panic("workload: ZipfMix needs at least one node and one variable")
	}
	if skew <= 0 {
		panic("workload: zipf skew must be > 0")
	}
	cdf := make([]float64, numVars)
	sum := 0.0
	for k := range cdf {
		sum += math.Pow(float64(k+1), -skew)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &ZipfMix{
		state:    uint64(seed),
		cdf:      cdf,
		numProcs: numProcs,
		numVars:  numVars,
		readFrac: readFrac,
	}
}

// next64 advances the splitmix64 counter and returns the next draw.
func (z *ZipfMix) next64() uint64 {
	z.state += 0x9E3779B97F4A7C15
	x := z.state
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// float01 returns the next draw as a float64 in [0, 1).
func (z *ZipfMix) float01() float64 {
	return float64(z.next64()>>11) / (1 << 53)
}

// Next draws one access: a uniformly chosen node, a zipfian offset
// into the variable space anchored at that node's home slice, and a
// read/write coin weighted by readFrac.
func (z *ZipfMix) Next() Access {
	node := int(z.next64() % uint64(z.numProcs))
	u := z.float01()
	off := sort.Search(len(z.cdf), func(i int) bool { return z.cdf[i] > u })
	if off >= z.numVars {
		off = z.numVars - 1 // u landed on the rounding tail of the CDF
	}
	base := node*z.numVars/z.numProcs + z.rot
	v := (base + off) % z.numVars
	return Access{
		Node: node,
		Var:  VarName(v),
		Read: z.float01() < z.readFrac,
	}
}

// Rotate shifts every node's home slice k variables forward: node i's
// hot set lands on variables that previously belonged to another
// node's slice. Calling it mid-stream models a workload skew flip.
func (z *ZipfMix) Rotate(k int) {
	z.rot = ((z.rot+k)%z.numVars + z.numVars) % z.numVars
}
