package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"partialdsm/internal/check"
	"partialdsm/internal/model"
)

func TestVarNames(t *testing.T) {
	names := VarNames(3)
	if len(names) != 3 || names[0] != "x0" || names[2] != "x2" {
		t.Fatalf("VarNames(3) = %v", names)
	}
}

func TestRandomPlacementDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pl := RandomPlacement(rng, 6, 10, 3)
	for v := 0; v < 10; v++ {
		if got := len(pl.Clique(VarName(v))); got != 3 {
			t.Errorf("C(%s) has %d members, want 3", VarName(v), got)
		}
	}
	// Degree clamping.
	pl2 := RandomPlacement(rng, 2, 1, 99)
	if got := len(pl2.Clique("x0")); got != 2 {
		t.Errorf("clamped degree: %d members, want 2", got)
	}
	pl3 := RandomPlacement(rng, 2, 1, 0)
	if got := len(pl3.Clique("x0")); got != 1 {
		t.Errorf("clamped degree: %d members, want 1", got)
	}
}

func TestFullPlacement(t *testing.T) {
	pl := FullPlacement(4, 3)
	for v := 0; v < 3; v++ {
		if got := len(pl.Clique(VarName(v))); got != 4 {
			t.Errorf("C(%s) = %d, want 4", VarName(v), got)
		}
	}
}

func TestRingPlacement(t *testing.T) {
	pl := RingPlacement(5)
	for p := 0; p < 5; p++ {
		if !pl.Holds(p, VarName(p)) || !pl.Holds(p, VarName((p+1)%5)) {
			t.Errorf("process %d misses its ring variables", p)
		}
	}
	// Every variable has degree 2.
	for v := 0; v < 5; v++ {
		if got := len(pl.Clique(VarName(v))); got != 2 {
			t.Errorf("C(%s) = %d, want 2", VarName(v), got)
		}
	}
	// In a ring every process is on an x-hoop for every variable (the
	// long way around the ring connects the two replicas).
	for v := 0; v < 5; v++ {
		if got := len(pl.XRelevant(VarName(v))); got != 5 {
			t.Errorf("%s-relevant = %d processes, want all 5", VarName(v), got)
		}
	}
}

func TestRandomHistoryWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		h := RandomHistory(rng, 3, 2, 4)
		if err := h.CheckDifferentiated(); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, h)
		}
		if _, err := model.ReadFrom(h); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, h)
		}
	}
}

func TestSequentialHistoryIsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		h := SequentialHistory(rng, 3, 2, 10)
		res, err := check.Check(h, check.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Consistent {
			t.Fatalf("trial %d: generated history not sequentially consistent:\n%s", trial, h)
		}
	}
}

func TestPRAMNotCausalHistory(t *testing.T) {
	h := PRAMNotCausalHistory()
	got, err := check.CheckAll(h)
	if err != nil {
		t.Fatal(err)
	}
	if !got[check.PRAM] || got[check.Causal] {
		t.Fatalf("verdicts = %v, want PRAM yes / causal no", got)
	}
}

// TestHierarchyMonotonicity is the property test for experiment E13:
// on random histories, acceptance must be monotone along every edge of
// the strength DAG (check.Implications). PRAM and the lazy criteria are
// deliberately absent from each other's implications — they are
// incomparable (see check.Implications).
func TestHierarchyMonotonicity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120}
	property := func(seed int64, procsRaw, varsRaw, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numProcs := 2 + int(procsRaw%3) // 2..4
		numVars := 1 + int(varsRaw%3)   // 1..3
		ops := 2 + int(opsRaw%3)        // 2..4 per process
		h := RandomHistory(rng, numProcs, numVars, ops)
		got, err := check.CheckAll(h)
		if err != nil {
			t.Logf("malformed history: %v", err)
			return false
		}
		for _, imp := range check.Implications {
			if got[imp[0]] && !got[imp[1]] {
				t.Logf("violation: %s accepted but %s rejected\n%s", imp[0], imp[1], h)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLazyAndPRAMIncomparable pins down the incomparability with two
// witnesses: a history that is lazy-causal but not PRAM, and one that
// is PRAM but not lazy-semi-causal.
func TestLazyAndPRAMIncomparable(t *testing.T) {
	// Lazy-causal but not PRAM: p1 reads y's new value then x's old one
	// written earlier by the same process p0 — PRAM's full program order
	// of p0 plus p1's own program order forbids it; lazy program order
	// does not relate r(y) to a later r(x).
	h1 := model.NewBuilder(2).
		Write(0, "x", 1).
		Write(0, "y", 2).
		Read(1, "y", 2).
		ReadInit(1, "x").
		MustHistory()
	got1, err := check.CheckAll(h1)
	if err != nil {
		t.Fatal(err)
	}
	if !got1[check.LazyCausal] || got1[check.PRAM] {
		t.Errorf("h1 verdicts = %v, want lazy-causal yes / pram no", got1)
	}
	// PRAM but not lazy-semi-causal: the paper's Figure 6.
	got2, err := check.CheckAll(model.Figure6History())
	if err != nil {
		t.Fatal(err)
	}
	if got2[check.LazySemiCausal] || !got2[check.PRAM] {
		t.Errorf("figure 6 verdicts = %v, want lsc no / pram yes", got2)
	}
}

// TestRelevanceAgreesOnRandomTopologies is the property test for
// experiment E7: the linear-time Theorem 1 computation must agree with
// hoop enumeration on random placements.
func TestRelevanceAgreesOnRandomTopologies(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	property := func(seed int64, procsRaw, varsRaw, degRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		numProcs := 3 + int(procsRaw%5) // 3..7
		numVars := 1 + int(varsRaw%5)   // 1..5
		degree := 1 + int(degRaw%3)     // 1..3
		pl := RandomPlacement(rng, numProcs, numVars, degree)
		for _, x := range pl.Vars() {
			fast := pl.XRelevant(x)
			slow := pl.XRelevantByEnumeration(x)
			if len(fast) != len(slow) {
				t.Logf("var %s: linear %v != enumeration %v\n%s", x, fast, slow, pl)
				return false
			}
			for i := range fast {
				if fast[i] != slow[i] {
					t.Logf("var %s: linear %v != enumeration %v\n%s", x, fast, slow, pl)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
