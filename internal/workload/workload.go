// Package workload generates the synthetic inputs the experiments run
// on: random variable placements (share-graph topologies), random
// histories for checker fuzzing, and sequentially consistent histories
// produced by simulating a single shared store.
package workload

import (
	"fmt"
	"math/rand"

	"partialdsm/internal/model"
	"partialdsm/internal/sharegraph"
)

// VarName returns the canonical name of the i-th shared variable,
// "x0", "x1", ….
func VarName(i int) string { return fmt.Sprintf("x%d", i) }

// VarNames returns the first m canonical variable names.
func VarNames(m int) []string {
	out := make([]string, m)
	for i := range out {
		out[i] = VarName(i)
	}
	return out
}

// RandomPlacement assigns each of numVars variables to `degree`
// distinct processes chosen uniformly. degree is clamped to
// [1, numProcs].
func RandomPlacement(rng *rand.Rand, numProcs, numVars, degree int) *sharegraph.Placement {
	if degree < 1 {
		degree = 1
	}
	if degree > numProcs {
		degree = numProcs
	}
	pl := sharegraph.NewPlacement(numProcs)
	for v := 0; v < numVars; v++ {
		perm := rng.Perm(numProcs)
		for _, p := range perm[:degree] {
			pl.Assign(p, VarName(v))
		}
	}
	return pl
}

// FullPlacement replicates every variable on every process.
func FullPlacement(numProcs, numVars int) *sharegraph.Placement {
	pl := sharegraph.NewPlacement(numProcs)
	for p := 0; p < numProcs; p++ {
		pl.Assign(p, VarNames(numVars)...)
	}
	return pl
}

// RingPlacement builds a ring share graph: process p holds variables
// x_p and x_{(p+1) mod n}, so consecutive processes share one variable.
// Every variable has replication degree 2 and long hoops abound —
// the adversarial topology for causal partial replication.
func RingPlacement(numProcs int) *sharegraph.Placement {
	pl := sharegraph.NewPlacement(numProcs)
	for p := 0; p < numProcs; p++ {
		pl.Assign(p, VarName(p), VarName((p+1)%numProcs))
	}
	return pl
}

// RandomHistory produces an arbitrary history: each process performs
// opsPerProc operations on random variables; writes store fresh
// distinct values; each read returns either ⊥ or the value of a
// uniformly chosen write to the same variable appearing anywhere in
// the history (so histories are well formed but usually inconsistent).
func RandomHistory(rng *rand.Rand, numProcs, numVars, opsPerProc int) *model.History {
	type wv struct {
		v   string
		val int64
	}
	b := model.NewBuilder(numProcs)
	next := int64(1)
	var writes []wv
	// First pass: choose shapes; writes must exist before reads can
	// reference them, so generate writes first with probability, then
	// patch reads over the full write set in a second pass.
	type slot struct {
		p       int
		isWrite bool
		v       string
	}
	var slots []slot
	for p := 0; p < numProcs; p++ {
		for k := 0; k < opsPerProc; k++ {
			s := slot{p: p, isWrite: rng.Intn(2) == 0, v: VarName(rng.Intn(numVars))}
			slots = append(slots, s)
			if s.isWrite {
				writes = append(writes, wv{s.v, next})
				next++
			}
		}
	}
	wIdx := 0
	byVar := make(map[string][]int64)
	for _, w := range writes {
		byVar[w.v] = append(byVar[w.v], w.val)
	}
	for _, s := range slots {
		if s.isWrite {
			b.Write(s.p, s.v, writes[wIdx].val)
			wIdx++
			continue
		}
		cands := byVar[s.v]
		if len(cands) == 0 || rng.Intn(4) == 0 {
			b.ReadInit(s.p, s.v)
		} else {
			b.Read(s.p, s.v, cands[rng.Intn(len(cands))])
		}
	}
	return b.MustHistory()
}

// SequentialHistory simulates a single atomic store: operations are
// interleaved uniformly across processes and reads return the store's
// current value. The result is sequentially consistent by construction
// (hence consistent under every weaker criterion).
func SequentialHistory(rng *rand.Rand, numProcs, numVars, totalOps int) *model.History {
	b := model.NewBuilder(numProcs)
	store := make(map[string]int64)
	next := int64(1)
	for k := 0; k < totalOps; k++ {
		p := rng.Intn(numProcs)
		v := VarName(rng.Intn(numVars))
		if rng.Intn(2) == 0 {
			store[v] = next
			b.Write(p, v, next)
			next++
		} else if val, ok := store[v]; ok {
			b.Read(p, v, val)
		} else {
			b.ReadInit(p, v)
		}
	}
	return b.MustHistory()
}

// PRAMNotCausalHistory generates a history that is PRAM-consistent but
// (for numProcs ≥ 4) violates causal consistency: two observers see a
// causally ordered pair of writes by different writers in opposite
// orders. Used to separate the criteria in tests.
func PRAMNotCausalHistory() *model.History {
	// w0(x)1 ↦co w1(x)2 via r1(x)1; observers p2, p3 disagree.
	return model.NewBuilder(4).
		Write(0, "x", 1).
		Read(1, "x", 1).
		Write(1, "x", 2).
		Read(2, "x", 1).
		Read(2, "x", 2).
		Read(3, "x", 2).
		Read(3, "x", 1).
		MustHistory()
}
