package workload

import (
	"reflect"
	"testing"
)

func TestStarPlacementHoopFree(t *testing.T) {
	pl := StarPlacement(6)
	for _, x := range pl.Vars() {
		if hoops := pl.Hoops(x, 0); len(hoops) != 0 {
			t.Errorf("star has %s-hoops: %v", x, hoops)
		}
		if got, want := pl.XRelevant(x), pl.Clique(x); !reflect.DeepEqual(got, want) {
			t.Errorf("%s-relevant = %v, want C(x) = %v", x, got, want)
		}
	}
	// Hub holds everything, leaves one variable each.
	if len(pl.VarsOf(0)) != 5 {
		t.Errorf("hub holds %d vars", len(pl.VarsOf(0)))
	}
	for p := 1; p < 6; p++ {
		if len(pl.VarsOf(p)) != 1 {
			t.Errorf("leaf %d holds %d vars", p, len(pl.VarsOf(p)))
		}
	}
}

func TestChainPlacementHoopFree(t *testing.T) {
	pl := ChainPlacement(5)
	for _, x := range pl.Vars() {
		if got, want := pl.XRelevant(x), pl.Clique(x); !reflect.DeepEqual(got, want) {
			t.Errorf("%s-relevant = %v, want %v (a path has no cycles)", x, got, want)
		}
	}
}

func TestGridPlacementHasHoops(t *testing.T) {
	pl := GridPlacement(2, 2)
	// The 2×2 grid is a 4-cycle: every edge variable has a hoop around
	// the other three vertices.
	found := false
	for _, x := range pl.Vars() {
		if len(pl.Hoops(x, 0)) > 0 {
			found = true
			if len(pl.XRelevant(x)) <= len(pl.Clique(x)) {
				t.Errorf("%s has hoops but no extra relevant processes", x)
			}
		}
	}
	if !found {
		t.Error("2x2 grid must contain hoops")
	}
	if pl.NumProcs() != 4 {
		t.Errorf("grid size = %d", pl.NumProcs())
	}
}

func TestGridPlacementEdgeCount(t *testing.T) {
	pl := GridPlacement(3, 4)
	// 3 rows × 3 horizontal + 2×4 vertical = 9 + 8 = 17 edge variables.
	if got := len(pl.Vars()); got != 17 {
		t.Errorf("edge variables = %d, want 17", got)
	}
}

func TestCliquesPlacementBridgeHoops(t *testing.T) {
	pl := CliquesPlacement(3, 3)
	if pl.NumProcs() != 9 {
		t.Fatalf("procs = %d", pl.NumProcs())
	}
	// Each group variable is fully shared within the group.
	if got := len(pl.Clique("g0")); got != 3 {
		t.Errorf("C(g0) = %d members", got)
	}
	// Bridge variables connect group border processes.
	if got := len(pl.Clique("b0")); got != 2 {
		t.Errorf("C(b0) = %d members", got)
	}
	// b0 and b1 both touch process 3 (border of group 1): a b0-hoop
	// cannot exist (bridges form a path, not a cycle), so relevance
	// equals the clique.
	if got, want := pl.XRelevant("b0"), pl.Clique("b0"); !reflect.DeepEqual(got, want) {
		t.Errorf("b0-relevant = %v, want %v", got, want)
	}
}

func TestPlacementToConfig(t *testing.T) {
	pl := ChainPlacement(3)
	cfg := PlacementToConfig(pl)
	if len(cfg) != 3 {
		t.Fatalf("rows = %d", len(cfg))
	}
	if !reflect.DeepEqual(cfg[1], []string{"x0", "x1"}) {
		t.Errorf("middle node vars = %v", cfg[1])
	}
}

func TestTopologyPanics(t *testing.T) {
	for _, f := range []func(){
		func() { StarPlacement(1) },
		func() { ChainPlacement(1) },
		func() { GridPlacement(0, 3) },
		func() { CliquesPlacement(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
