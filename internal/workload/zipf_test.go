package workload

import "testing"

func TestZipfMixDeterministic(t *testing.T) {
	a := NewZipfMix(7, 4, 8, 1.5, 0.6)
	b := NewZipfMix(7, 4, 8, 1.5, 0.6)
	for i := 0; i < 500; i++ {
		if i == 250 {
			a.Rotate(4)
			b.Rotate(4)
		}
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("step %d: streams diverge: %v vs %v", i, x, y)
		}
	}
}

func TestZipfMixSkewAndLocality(t *testing.T) {
	const n, v, draws = 4, 8, 4000
	z := NewZipfMix(11, n, v, 1.5, 0.5)
	perNode := make([]map[string]int, n)
	for i := range perNode {
		perNode[i] = make(map[string]int)
	}
	reads := 0
	for i := 0; i < draws; i++ {
		a := z.Next()
		if a.Node < 0 || a.Node >= n {
			t.Fatalf("node %d out of range", a.Node)
		}
		perNode[a.Node][a.Var]++
		if a.Read {
			reads++
		}
	}
	// Each node's home variable (offset 0 of its slice) must dominate
	// its own traffic: zipfian concentration plus locality.
	for i := 0; i < n; i++ {
		home := VarName(i * v / n)
		total := 0
		for x, c := range perNode[i] {
			total += c
			if x != home && c >= perNode[i][home] {
				t.Errorf("node %d: %s (%d) outdraws home %s (%d)", i, x, c, home, perNode[i][home])
			}
		}
		if c := perNode[i][home]; c*3 < total {
			t.Errorf("node %d: home %s got %d of %d accesses, want at least a third", i, home, c, total)
		}
	}
	if reads < draws/3 || reads > 2*draws/3 {
		t.Errorf("read fraction off: %d/%d reads for readFrac 0.5", reads, draws)
	}
}

func TestZipfMixRotateShiftsHotSet(t *testing.T) {
	const n, v = 2, 6
	z := NewZipfMix(3, n, v, 1.5, 0.5)
	z.Rotate(2)
	counts := make(map[string]int)
	for i := 0; i < 2000; i++ {
		a := z.Next()
		if a.Node == 0 {
			counts[a.Var]++
		}
	}
	// Node 0's slice starts at variable 0; after Rotate(2) its hottest
	// variable is x2.
	if counts["x2"] <= counts["x0"] {
		t.Errorf("after Rotate(2), node 0 hot on %v — want x2 > x0", counts)
	}
	// Rotation wraps modulo the variable count.
	z.Rotate(-2)
	if z.rot != 0 {
		t.Errorf("rot = %d after +2/-2, want 0", z.rot)
	}
	z.Rotate(v + 1)
	if z.rot != 1 {
		t.Errorf("rot = %d after Rotate(v+1), want 1", z.rot)
	}
}
