package workload

import (
	"fmt"

	"partialdsm/internal/sharegraph"
)

// This file provides the topology zoo used by experiments and tests:
// placements whose share graphs have qualitatively different hoop
// structure, from hoop-free stars to hoop-saturated rings.

// StarPlacement gives the hub (process 0) every variable and leaf i
// the single variable it shares with the hub. Leaves are x-irrelevant
// for every variable they do not hold: the hoop-free extreme, where
// even causal consistency could be implemented with narrowly scoped
// control information (statically).
func StarPlacement(numProcs int) *sharegraph.Placement {
	if numProcs < 2 {
		panic(fmt.Sprintf("workload: star needs at least 2 processes, got %d", numProcs))
	}
	pl := sharegraph.NewPlacement(numProcs)
	for p := 1; p < numProcs; p++ {
		v := VarName(p - 1)
		pl.Assign(0, v)
		pl.Assign(p, v)
	}
	return pl
}

// ChainPlacement links process p to p+1 through variable x_p: a path
// share graph. Variables have degree 2 and the only x_p-hoops are the
// trivial none — no cycle exists — so every variable's relevant set is
// exactly its clique.
func ChainPlacement(numProcs int) *sharegraph.Placement {
	if numProcs < 2 {
		panic(fmt.Sprintf("workload: chain needs at least 2 processes, got %d", numProcs))
	}
	pl := sharegraph.NewPlacement(numProcs)
	for p := 0; p+1 < numProcs; p++ {
		v := VarName(p)
		pl.Assign(p, v)
		pl.Assign(p+1, v)
	}
	return pl
}

// GridPlacement arranges rows×cols processes in a grid; each adjacent
// pair (horizontally and vertically) shares a dedicated variable. Grids
// are cycle-rich: every variable on a face of the grid has hoops around
// the adjacent faces.
func GridPlacement(rows, cols int) *sharegraph.Placement {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("workload: bad grid %dx%d", rows, cols))
	}
	pl := sharegraph.NewPlacement(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	next := 0
	link := func(a, b int) {
		v := fmt.Sprintf("e%d", next)
		next++
		pl.Assign(a, v)
		pl.Assign(b, v)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				link(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				link(id(r, c), id(r+1, c))
			}
		}
	}
	return pl
}

// CliquesPlacement builds k disjoint fully replicated groups of size
// groupSize, bridged by one shared variable between consecutive groups.
// The bridge variables create hoops that span whole groups — the
// "federated clusters" scenario.
func CliquesPlacement(k, groupSize int) *sharegraph.Placement {
	if k < 1 || groupSize < 1 {
		panic(fmt.Sprintf("workload: bad cliques %d×%d", k, groupSize))
	}
	pl := sharegraph.NewPlacement(k * groupSize)
	for g := 0; g < k; g++ {
		v := fmt.Sprintf("g%d", g)
		for m := 0; m < groupSize; m++ {
			pl.Assign(g*groupSize+m, v)
		}
		if g+1 < k {
			bridge := fmt.Sprintf("b%d", g)
			pl.Assign(g*groupSize, bridge)
			pl.Assign((g+1)*groupSize, bridge)
		}
	}
	return pl
}

// PlacementToConfig converts a sharegraph placement into the facade's
// [][]string form.
func PlacementToConfig(pl *sharegraph.Placement) [][]string {
	out := make([][]string, pl.NumProcs())
	for p := range out {
		out[p] = pl.VarsOf(p)
	}
	return out
}
