package experiments

import (
	"strings"
	"testing"

	"partialdsm"
)

func TestFigureReportsPass(t *testing.T) {
	for _, rep := range []Report{Fig1(), Fig2(), Fig3(), Fig4(), Fig5(), Fig6()} {
		if !rep.Pass {
			t.Errorf("%s failed:\n%s", rep.ID, rep)
		}
	}
}

func TestTheoremReportsPass(t *testing.T) {
	if rep := Thm1(1); !rep.Pass {
		t.Errorf("Theorem 1 report failed:\n%s", rep)
	}
	if rep := Thm2(2); !rep.Pass {
		t.Errorf("Theorem 2 report failed:\n%s", rep)
	}
}

func TestScalingShape(t *testing.T) {
	rep, points := Scaling([]int{4, 8, 16}, 20, 3)
	if !rep.Pass {
		t.Fatalf("scaling report failed:\n%s", rep)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// The headline shape: causal control grows, PRAM stays flat.
	if points[2].CtrlPerOp[partialdsm.CausalFull] <= points[0].CtrlPerOp[partialdsm.CausalFull] {
		t.Error("causal-full control bytes should grow with N")
	}
	pramRatio := points[2].CtrlPerOp[partialdsm.PRAM] / points[0].CtrlPerOp[partialdsm.PRAM]
	if pramRatio > 1.2 {
		t.Errorf("PRAM control bytes grew %.2fx with N, should stay flat", pramRatio)
	}
}

func TestBellmanFordReport(t *testing.T) {
	if rep := BellmanFordFig8(4); !rep.Pass {
		t.Errorf("Bellman-Ford report failed:\n%s", rep)
	}
}

func TestHierarchyReport(t *testing.T) {
	if rep := Hierarchy(5, 60); !rep.Pass {
		t.Errorf("hierarchy report failed:\n%s", rep)
	}
}

func TestOpenQuestionReport(t *testing.T) {
	if rep := OpenQuestion(7); !rep.Pass {
		t.Errorf("open-question report failed:\n%s", rep)
	}
}

func TestAblationReport(t *testing.T) {
	if rep := Ablation(25, 6); !rep.Pass {
		t.Errorf("ablation report failed:\n%s", rep)
	}
}

func TestSeparationReport(t *testing.T) {
	if rep := Separation(8); !rep.Pass {
		t.Errorf("separation report failed:\n%s", rep)
	}
}

func TestDegreeSweepReport(t *testing.T) {
	if rep := DegreeSweep(10, []int{2, 5, 10}, 20, 9); !rep.Pass {
		t.Errorf("degree sweep failed:\n%s", rep)
	}
}

func TestLatencyReport(t *testing.T) {
	if rep := Latency(10); !rep.Pass {
		t.Errorf("latency report failed:\n%s", rep)
	}
}

func TestFaultsReport(t *testing.T) {
	if rep := Faults(11); !rep.Pass {
		t.Errorf("faults report failed:\n%s", rep)
	}
}

func TestMigrateReport(t *testing.T) {
	if rep := Migrate(13); !rep.Pass {
		t.Errorf("migrate report failed:\n%s", rep)
	}
}

func TestPolicyReport(t *testing.T) {
	if rep := Policy(13); !rep.Pass {
		t.Errorf("policy report failed:\n%s", rep)
	}
}

func TestReportString(t *testing.T) {
	rep := Fig1()
	s := rep.String()
	if !strings.Contains(s, "E1") || !strings.Contains(s, "PASS") {
		t.Errorf("report rendering: %q", s)
	}
}
