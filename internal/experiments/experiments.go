// Package experiments regenerates every evaluation artifact of the
// paper — Figures 1–9 and Theorems 1–2, plus the quantitative
// experiments DESIGN.md derives from §3.3 — as self-checking reports.
// cmd/dsm-experiments prints them; the test suite asserts that every
// report passes. EXPERIMENTS.md records the outcomes next to the
// paper's claims.
package experiments

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"time"

	"partialdsm"
	"partialdsm/internal/bellmanford"
	"partialdsm/internal/check"
	"partialdsm/internal/model"
	"partialdsm/internal/sharegraph"
	"partialdsm/internal/workload"
)

// transport is the delivery engine every experiment cluster runs on;
// SetTransport (driven by dsm-experiments' -transport flag) switches
// it. The reports themselves are transport-independent — the paper's
// claims are about which messages cross the network, not how delivery
// is scheduled — so any conforming transport must reproduce them.
var transport partialdsm.Transport

// coalesce is the update-coalescing mode every experiment cluster runs
// with (SetCoalescing; dsm-experiments' -coalesce/-flush-ticks/
// -adaptive flags). The engine-driven flush modes keep even the
// poll-style experiment schedules live, and the reports — consistency
// verdicts, witnesses, Theorem 1/2 checks — must come out the same
// coalesced or not: batching changes the message-per-write constant,
// never what any node learns or in what order.
var coalesce struct {
	batch    int
	ticks    int
	adaptive bool
}

// SetTransport selects the delivery engine for subsequently built
// experiment clusters. The empty string selects the classic engine.
func SetTransport(kind string) {
	transport = partialdsm.Transport(kind)
}

// SetCoalescing selects the coalescing mode for subsequently built
// experiment clusters: per-destination batch size, virtual-time flush
// deadline, and adaptive destination-idle flushing. Zero values run
// uncoalesced (the default).
func SetCoalescing(batch, flushTicks int, adaptive bool) {
	coalesce.batch, coalesce.ticks, coalesce.adaptive = batch, flushTicks, adaptive
}

// vlat is the latency mode every experiment cluster runs with
// (SetVirtualLatency; dsm-experiments' -virtual-latency and
// -latency-dist flags). With it on, clusters that configure a
// MaxLatency simulate it as deterministic virtual-time delivery
// deadlines instead of real sleeps — the reports (message counts,
// witnesses, theorem checks and the §3.3 latency ordering) must come
// out the same, while the latency-bound experiments stop costing wall
// time.
var vlat struct {
	on   bool
	dist partialdsm.LatencyDist
}

// SetVirtualLatency switches subsequently built experiment clusters to
// the virtual-time latency mode, with the given delay distribution
// (the empty string selects uniform).
func SetVirtualLatency(on bool, dist string) {
	vlat.on, vlat.dist = on, partialdsm.LatencyDist(dist)
}

// newCluster builds an experiment cluster on the configured transport,
// coalescing and latency modes.
func newCluster(cfg partialdsm.Config) (*partialdsm.Cluster, error) {
	cfg.Transport = transport
	cfg.CoalesceBatch = coalesce.batch
	cfg.CoalesceFlushTicks = coalesce.ticks
	cfg.CoalesceAdaptive = coalesce.adaptive
	if vlat.on && cfg.MaxLatency > 0 {
		// Only clusters that simulate link latency switch mode: with
		// MaxLatency zero there are no sleeps to retire, and the normal
		// concurrent delivery path is faster than a serialized virtual
		// schedule with all-zero delays.
		cfg.VirtualLatency = true
		cfg.LatencyDist = vlat.dist
	}
	return partialdsm.New(cfg)
}

// Report is the outcome of one experiment.
type Report struct {
	// ID is the experiment identifier from DESIGN.md (E1…E15).
	ID string
	// Title describes the paper artifact being reproduced.
	Title string
	// Lines is the human-readable report body.
	Lines []string
	// Pass records whether every checked claim held.
	Pass bool
}

// String renders the report.
func (r Report) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	for _, l := range r.Lines {
		fmt.Fprintf(&b, "   %s\n", l)
	}
	return b.String()
}

type reporter struct {
	r Report
}

func newReporter(id, title string) *reporter {
	return &reporter{r: Report{ID: id, Title: title, Pass: true}}
}

func (rp *reporter) logf(format string, args ...any) {
	rp.r.Lines = append(rp.r.Lines, fmt.Sprintf(format, args...))
}

func (rp *reporter) checkf(ok bool, format string, args ...any) {
	mark := "✓"
	if !ok {
		mark = "✗"
		rp.r.Pass = false
	}
	rp.r.Lines = append(rp.r.Lines, fmt.Sprintf("%s %s", mark, fmt.Sprintf(format, args...)))
}

func (rp *reporter) done() Report { return rp.r }

// Fig1 reproduces Figure 1: the three-process share graph with its two
// cliques.
func Fig1() Report {
	rp := newReporter("E1", "Figure 1 — share graph, cliques C(x1), C(x2)")
	pl := sharegraph.Figure1Placement()
	rp.logf("placement:\n%s", indent(pl.String()))
	rp.checkf(reflect.DeepEqual(pl.Clique("x1"), []int{0, 1}), "C(x1) = %v (paper: {p_i, p_j})", pl.Clique("x1"))
	rp.checkf(reflect.DeepEqual(pl.Clique("x2"), []int{0, 2}), "C(x2) = %v (paper: {p_i, p_k})", pl.Clique("x2"))
	rp.checkf(pl.Edge(0, 1) && pl.Edge(0, 2) && !pl.Edge(1, 2),
		"edges: p0–p1 and p0–p2 only (SG = union of cliques)")
	rp.checkf(len(pl.Hoops("x1", 0)) == 0 && len(pl.Hoops("x2", 0)) == 0,
		"no hoops in Figure 1's topology")
	return rp.done()
}

// Fig2 reproduces Figure 2's notion of x-hoop on a chain topology.
func Fig2() Report {
	rp := newReporter("E2", "Figure 2 — x-hoop through processes outside C(x)")
	pl := sharegraph.NewPlacement(5).
		Assign(0, "x", "x1").
		Assign(1, "x1", "x2").
		Assign(2, "x2", "x3").
		Assign(3, "x3", "x4").
		Assign(4, "x4", "x")
	hoops := pl.Hoops("x", 0)
	rp.logf("topology: C(x)={0,4}, chain 0–1–2–3–4 via x1…x4")
	rp.checkf(len(hoops) == 1, "exactly one x-hoop enumerated: %v", hoops)
	if len(hoops) == 1 {
		rp.checkf(reflect.DeepEqual(hoops[0].Path, []int{0, 1, 2, 3, 4}),
			"hoop path is the full chain %v", hoops[0].Path)
	}
	rel := pl.XRelevant("x")
	rp.checkf(reflect.DeepEqual(rel, []int{0, 1, 2, 3, 4}),
		"all five processes are x-relevant (Theorem 1): %v", rel)
	return rp.done()
}

// Fig3 reproduces Figure 3: the canonical x-dependency chain along a
// hoop, and its consequence for causal consistency.
func Fig3() Report {
	rp := newReporter("E3", "Figure 3 — x-dependency chain from w_a(x)v to o_b(x)")
	pl := sharegraph.NewPlacement(4).
		Assign(0, "x", "a").
		Assign(1, "a", "b").
		Assign(2, "b", "c").
		Assign(3, "c", "x")
	hoop := sharegraph.Hoop{Var: "x", Path: []int{0, 1, 2, 3}}
	h, err := pl.DependencyChainHistory(sharegraph.ChainSpec{Hoop: hoop})
	if err != nil {
		rp.checkf(false, "building chain history: %v", err)
		return rp.done()
	}
	rp.logf("history:\n%s", indent(h.String()))
	if w, found := sharegraph.DetectDependencyChain(h, hoop); found {
		rp.checkf(true, "chain detected: %v ↦co %v via %d links", w.Initial, w.Final, len(w.Links))
	} else {
		rp.checkf(false, "dependency chain not detected")
	}
	res, err := check.Check(h, check.Causal)
	rp.checkf(err == nil && res.Consistent, "fresh final read is causally consistent")
	hStale, err := pl.DependencyChainHistory(sharegraph.ChainSpec{Hoop: hoop, FinalReadsStale: true})
	if err != nil {
		rp.checkf(false, "building stale history: %v", err)
		return rp.done()
	}
	resStale, err := check.Check(hStale, check.Causal)
	rp.checkf(err == nil && !resStale.Consistent,
		"⊥ final read violates causal consistency (the chain constrains o_b(x))")
	resPRAM, err := check.Check(hStale, check.PRAM)
	rp.checkf(err == nil && resPRAM.Consistent,
		"the same ⊥ read is PRAM-consistent (no chain under ↦pram, Theorem 2)")
	return rp.done()
}

// figVerdicts runs the exact checkers over a figure history and asserts
// the paper's classification.
func figVerdicts(rp *reporter, h *model.History, want map[check.Criterion]bool) {
	rp.logf("history:\n%s", indent(h.String()))
	got, err := check.CheckAll(h)
	if err != nil {
		rp.checkf(false, "checker error: %v", err)
		return
	}
	keys := make([]string, 0, len(want))
	for c := range want {
		keys = append(keys, string(c))
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := check.Criterion(k)
		rp.checkf(got[c] == want[c], "%-18s = %-5v (paper: %v)", c, got[c], want[c])
	}
}

// Fig4 reproduces Figure 4: lazy causal but not causal.
func Fig4() Report {
	rp := newReporter("E4", "Figure 4 — lazy causal but not causal history")
	h := model.Figure4History()
	figVerdicts(rp, h, map[check.Criterion]bool{
		check.Causal:     false,
		check.LazyCausal: true,
		check.PRAM:       true,
	})
	// Validate the paper's own serializations S1–S3 under ↦lco.
	lco, err := model.LazyCausalOrder(h)
	if err != nil {
		rp.checkf(false, "lazy causal order: %v", err)
		return rp.done()
	}
	for p, s := range model.Figure4PaperSerializations(h) {
		err := check.ValidateSerialization(h, h.SubHistoryIPlusW(p), s, lco)
		rp.checkf(err == nil, "paper serialization S%d respects ↦lco and read legality", p+1)
	}
	return rp.done()
}

// Fig5 reproduces Figure 5: not lazy causal; the hoop chain and the
// relevance of p2 ∉ C(x).
func Fig5() Report {
	rp := newReporter("E5", "Figure 5 — not lazy causal; p2 is x-relevant though p2 ∉ C(x)")
	h := model.Figure5History()
	figVerdicts(rp, h, map[check.Criterion]bool{
		check.Causal:     false,
		check.LazyCausal: false,
		check.PRAM:       true,
	})
	hoop := sharegraph.Hoop{Var: "x", Path: []int{0, 1, 2}}
	w, found := sharegraph.DetectDependencyChain(h, hoop)
	rp.checkf(found, "x-dependency chain along hoop [p1,p2,p3] detected")
	if found {
		rp.logf("chain: %v … %v", w.Initial, w.Final)
	}
	pl := sharegraph.NewPlacement(4).
		Assign(0, "x", "y").
		Assign(1, "y").
		Assign(2, "x", "y").
		Assign(3, "x")
	rel := pl.XRelevant("x")
	rp.checkf(contains(rel, 1), "p2 (our node 1) is x-relevant by Theorem 1: %v", rel)
	return rp.done()
}

// Fig6 reproduces Figure 6: not lazy semi-causal.
func Fig6() Report {
	rp := newReporter("E6", "Figure 6 — not lazy semi-causal history")
	h := model.Figure6History()
	figVerdicts(rp, h, map[check.Criterion]bool{
		check.Causal:         false,
		check.LazyCausal:     false,
		check.LazySemiCausal: false,
		check.PRAM:           true,
	})
	lsc, err := model.LazySemiCausalOrder(h)
	if err != nil {
		rp.checkf(false, "lsc order: %v", err)
		return rp.done()
	}
	// IDs 0 and 7: w1(x)a and w3(x)d.
	rp.checkf(lsc.Has(0, 7), "w1(x)a ↦lsc w3(x)d (the paper's lwb chain)")
	return rp.done()
}

// Thm1 demonstrates Theorem 1 operationally: topology analysis agrees
// between the two algorithms, and under causal partial replication the
// touch matrix reaches beyond C(x).
func Thm1(seed int64) Report {
	rp := newReporter("E7", "Theorem 1 — x-relevant = C(x) ∪ hoop members; causal cannot be efficient")
	rng := rand.New(rand.NewSource(seed))
	agree := true
	for trial := 0; trial < 30; trial++ {
		pl := workload.RandomPlacement(rng, 3+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(3))
		for _, x := range pl.Vars() {
			if !reflect.DeepEqual(pl.XRelevant(x), pl.XRelevantByEnumeration(x)) {
				agree = false
			}
		}
	}
	rp.checkf(agree, "linear-time relevance == hoop enumeration on 30 random topologies")

	// Protocol level: hoop topology, one write on x.
	cluster, err := newCluster(partialdsm.Config{
		Consistency: partialdsm.CausalPartial,
		Placement:   partialdsm.PlacementFromLists([][]string{{"x", "y"}, {"y"}, {"x", "y"}}),
		Seed:        seed,
	})
	if err != nil {
		rp.checkf(false, "cluster: %v", err)
		return rp.done()
	}
	defer cluster.Close()
	if err := cluster.Node(0).Write("x", 1); err != nil {
		rp.checkf(false, "write: %v", err)
		return rp.done()
	}
	cluster.Quiesce()
	touch := cluster.Stats().Touch
	rp.logf("touch matrix after one write on x (C(x) = {0,2}):")
	for p := 0; p < 3; p++ {
		rp.logf("  node %d: %v", p, touch[p])
	}
	rp.checkf(sliceContains(touch[1], "x"),
		"node 1 ∉ C(x) handled information about x — causal partial replication is not efficient")
	rp.checkf(cluster.VerifyEfficiency() != nil, "VerifyEfficiency rejects the causal run")
	return rp.done()
}

// Thm2 demonstrates Theorem 2: the PRAM protocol under a concurrent
// random workload keeps information about x inside C(x) and stays PRAM
// consistent.
func Thm2(seed int64) Report {
	rp := newReporter("E8", "Theorem 2 — PRAM admits efficient partial replication")
	for _, cons := range []partialdsm.Consistency{partialdsm.PRAM, partialdsm.Slow} {
		cluster, err := newCluster(partialdsm.Config{
			Consistency: cons,
			Placement:   partialdsm.PlacementFromLists([][]string{{"x", "y"}, {"y"}, {"x", "y"}, {"x"}}),
			Seed:        seed,
			MaxLatency:  100 * time.Microsecond,
		})
		if err != nil {
			rp.checkf(false, "cluster: %v", err)
			return rp.done()
		}
		driveRandomWorkload(cluster, 40, seed)
		cluster.Quiesce()
		effErr := cluster.VerifyEfficiency()
		rp.checkf(effErr == nil, "%s: touch(p,x) ⇒ p ∈ C(x) on random workload (err=%v)", cons, effErr)
		witErr := cluster.VerifyWitness()
		rp.checkf(witErr == nil, "%s: witness validation passed (err=%v)", cons, witErr)
		cluster.Close()
	}
	return rp.done()
}

// ScalingPoint is one row of the E9 sweep.
type ScalingPoint struct {
	N         int
	CtrlPerOp map[partialdsm.Consistency]float64
	MsgsPerOp map[partialdsm.Consistency]float64
}

// ScalingProtocols lists the protocols compared by the E9 sweep.
var ScalingProtocols = []partialdsm.Consistency{
	partialdsm.CausalFull,
	partialdsm.CausalPartial,
	partialdsm.PRAM,
	partialdsm.Slow,
}

// Scaling runs experiment E9: write-heavy workloads on a ring share
// graph of increasing size; the control bytes per operation of the
// causal protocols must grow with the system size while PRAM and Slow
// stay flat.
func Scaling(sizes []int, opsPerNode int, seed int64) (Report, []ScalingPoint) {
	rp := newReporter("E9", "§3.3 — control information vs system size (ring share graph)")
	var points []ScalingPoint
	for _, n := range sizes {
		pt := ScalingPoint{
			N:         n,
			CtrlPerOp: make(map[partialdsm.Consistency]float64),
			MsgsPerOp: make(map[partialdsm.Consistency]float64),
		}
		for _, cons := range ScalingProtocols {
			placement := ringPlacement(n)
			cluster, err := newCluster(partialdsm.Config{
				Consistency:  cons,
				Placement:    partialdsm.PlacementFromLists(placement),
				Seed:         seed,
				DisableTrace: true,
			})
			if err != nil {
				rp.checkf(false, "cluster %s/%d: %v", cons, n, err)
				return rp.done(), nil
			}
			ops := driveRandomWorkload(cluster, opsPerNode, seed)
			cluster.Quiesce()
			st := cluster.Stats()
			pt.CtrlPerOp[cons] = float64(st.CtrlBytes) / float64(ops)
			pt.MsgsPerOp[cons] = float64(st.Msgs) / float64(ops)
			cluster.Close()
		}
		points = append(points, pt)
	}
	rp.logf("%-6s %14s %14s %14s %14s   (ctrl bytes/op)", "N",
		"causal-full", "causal-part", "pram", "slow")
	for _, pt := range points {
		rp.logf("%-6d %14.1f %14.1f %14.1f %14.1f", pt.N,
			pt.CtrlPerOp[partialdsm.CausalFull],
			pt.CtrlPerOp[partialdsm.CausalPartial],
			pt.CtrlPerOp[partialdsm.PRAM],
			pt.CtrlPerOp[partialdsm.Slow])
	}
	first, last := points[0], points[len(points)-1]
	rp.checkf(last.CtrlPerOp[partialdsm.CausalFull] > 1.5*first.CtrlPerOp[partialdsm.CausalFull],
		"causal-full control info grows with N (vector clocks)")
	rp.checkf(last.CtrlPerOp[partialdsm.CausalPartial] > 1.5*first.CtrlPerOp[partialdsm.CausalPartial],
		"causal-partial control info grows with N (dependency lists + global notifications)")
	rp.checkf(last.CtrlPerOp[partialdsm.PRAM] < 1.25*first.CtrlPerOp[partialdsm.PRAM],
		"PRAM control info stays flat (per-sender counters only)")
	rp.checkf(last.CtrlPerOp[partialdsm.CausalPartial] > 3*last.CtrlPerOp[partialdsm.PRAM],
		"at N=%d causal-partial pays ≥3× PRAM per op (%.1f vs %.1f bytes)",
		last.N, last.CtrlPerOp[partialdsm.CausalPartial], last.CtrlPerOp[partialdsm.PRAM])
	return rp.done(), points
}

// DegreeSweep runs experiment E9b: control bytes per op as the
// replication degree k grows at fixed N, for causal partial replication
// versus PRAM. The paper's §1 point — "partial replication loses its
// meaning if … each MCS process has to consider information about
// variables that the corresponding application process will never read
// or write" — becomes measurable: under causal consistency the control
// volume is already system-sized at k=2, so shrinking the replica sets
// saves almost nothing, while under PRAM the traffic is proportional to
// k alone.
func DegreeSweep(n int, degrees []int, opsPerNode int, seed int64) Report {
	rp := newReporter("E9b", "§1 — does shrinking replica sets help? control bytes vs replication degree")
	rng := rand.New(rand.NewSource(seed))
	type row struct {
		k      int
		causal float64
		pram   float64
	}
	var rows []row
	for _, k := range degrees {
		pl := workload.RandomPlacement(rng, n, n, k)
		placement := make([][]string, n)
		for p := 0; p < n; p++ {
			placement[p] = pl.VarsOf(p)
		}
		// Guard against processes with no variables (possible at low k).
		for p := range placement {
			if len(placement[p]) == 0 {
				placement[p] = []string{workload.VarName(p % n)}
			}
		}
		r := row{k: k}
		for _, cons := range []partialdsm.Consistency{partialdsm.CausalPartial, partialdsm.PRAM} {
			cluster, err := newCluster(partialdsm.Config{
				Consistency: cons, Placement: partialdsm.PlacementFromLists(placement), Seed: seed, DisableTrace: true,
			})
			if err != nil {
				rp.checkf(false, "cluster: %v", err)
				return rp.done()
			}
			ops := driveRandomWorkload(cluster, opsPerNode, seed)
			cluster.Quiesce()
			st := cluster.Stats()
			v := float64(st.CtrlBytes) / float64(ops)
			cluster.Close()
			if cons == partialdsm.PRAM {
				r.pram = v
			} else {
				r.causal = v
			}
		}
		rows = append(rows, r)
	}
	rp.logf("%-4s %16s %10s   (ctrl bytes/op, N=%d)", "k", "causal-partial", "pram", n)
	for _, r := range rows {
		rp.logf("%-4d %16.1f %10.1f", r.k, r.causal, r.pram)
	}
	first, last := rows[0], rows[len(rows)-1]
	rp.checkf(last.pram/first.pram > 1.5,
		"PRAM traffic scales with k (%.1f → %.1f): smaller replica sets genuinely save traffic", first.pram, last.pram)
	rp.checkf(first.causal > 5*first.pram,
		"causal pays a system-sized control floor even at k=%d (%.1f vs %.1f B/op)", first.k, first.causal, first.pram)
	return rp.done()
}

// Latency runs experiment E18: the §3.3 latency argument. With a
// simulated 1ms-max link latency, wait-free protocols answer reads and
// writes from the local replica while the ordering protocols pay round
// trips.
func Latency(seed int64) Report {
	rp := newReporter("E18", "§3.3 — wait-free accesses vs ordering round trips (1ms max link latency)")
	placement := make([][]string, 4)
	for i := range placement {
		placement[i] = []string{"x"}
	}
	const perOp = 60
	measure := func(cons partialdsm.Consistency) (writeMean, readMean time.Duration, st partialdsm.Stats, err error) {
		cluster, err := newCluster(partialdsm.Config{
			Consistency: cons, Placement: partialdsm.PlacementFromLists(placement),
			Seed: seed, MaxLatency: time.Millisecond, DisableTrace: true,
		})
		if err != nil {
			return 0, 0, st, err
		}
		defer cluster.Close()
		h := cluster.Node(1) // not the sequencer/primary: must pay the trip
		start := time.Now()  //lint:allow realtime E16 measures wall-clock op latency of the real engine; never feeds a byte trace
		for k := 0; k < perOp; k++ {
			if err := h.Write("x", int64(k)+1); err != nil {
				return 0, 0, st, err
			}
		}
		writeMean = time.Since(start) / perOp //lint:allow realtime wall-clock measurement is the experiment
		cluster.Quiesce()
		start = time.Now() //lint:allow realtime wall-clock measurement is the experiment
		for k := 0; k < perOp; k++ {
			if _, err := h.Read("x"); err != nil {
				return 0, 0, st, err
			}
		}
		readMean = time.Since(start) / perOp //lint:allow realtime wall-clock measurement is the experiment
		return writeMean, readMean, cluster.Stats(), nil
	}
	results := make(map[partialdsm.Consistency][2]time.Duration)
	stats := make(map[partialdsm.Consistency]partialdsm.Stats)
	for _, cons := range []partialdsm.Consistency{
		partialdsm.PRAM, partialdsm.CausalFull, partialdsm.Sequential, partialdsm.Atomic,
	} {
		w, r, st, err := measure(cons)
		if err != nil {
			rp.checkf(false, "%s: %v", cons, err)
			return rp.done()
		}
		results[cons] = [2]time.Duration{w, r}
		stats[cons] = st
		if st.DelaySamples > 0 {
			// Virtual latency: the per-message delivery-delay histogram
			// makes the delay/efficiency trade-off directly measurable.
			rp.logf("%-12s write %9v   read %9v   (virtual delay over %d msgs: mean %v  p99 %v  max %v)",
				cons, w.Round(time.Microsecond), r.Round(time.Microsecond),
				st.DelaySamples, st.DelayMean.Round(time.Microsecond),
				st.DelayP99.Round(time.Microsecond), st.DelayMax.Round(time.Microsecond))
		} else {
			rp.logf("%-12s write %9v   read %9v", cons, w.Round(time.Microsecond), r.Round(time.Microsecond))
		}
	}
	if vlat.on {
		// Virtual latency: wall time no longer reflects the simulated
		// delay (that is the point), so the §3.3 ordering argument is
		// checked on the deterministic surface instead — the round
		// trips the blocking protocols must pay, counted per message
		// kind, with the virtual delay histogram showing each trip paid
		// the simulated latency in virtual time.
		rp.checkf(stats[partialdsm.Sequential].MsgsByKind["seq.request"] == perOp &&
			len(stats[partialdsm.PRAM].MsgsByKind) == 1 &&
			stats[partialdsm.PRAM].MsgsByKind["pram.update"] > 0 &&
			stats[partialdsm.Sequential].DelayMean > 0,
			"PRAM writes are wait-free (updates only); sequential writes each pay a sequencer round trip in virtual time")
		rp.checkf(stats[partialdsm.Atomic].MsgsByKind["atomic.readreq"] == perOp &&
			len(stats[partialdsm.CausalFull].MsgsByKind) == 1 &&
			stats[partialdsm.CausalFull].MsgsByKind["causal.update"] > 0,
			"causal reads are local (no messages); atomic reads each pay a primary round trip")
		return rp.done()
	}
	rp.checkf(results[partialdsm.PRAM][0] < results[partialdsm.Sequential][0]/5,
		"PRAM writes are wait-free; sequential writes pay the ordering round trip")
	rp.checkf(results[partialdsm.CausalFull][1] < results[partialdsm.Atomic][1]/5,
		"causal reads are local; atomic reads pay the primary round trip")
	return rp.done()
}

// BellmanFordFig8 runs experiments E10–E12: the §6 case study on the
// Figure 8 network over PRAM partial replication.
func BellmanFordFig8(seed int64) Report {
	rp := newReporter("E10-E12", "§6 — Bellman-Ford on PRAM memory with partial replication (Figures 7–9)")
	g := bellmanford.Figure8Graph()
	cluster, err := newCluster(partialdsm.Config{
		Consistency: partialdsm.PRAM,
		Placement:   partialdsm.PlacementFromLists(bellmanford.Placement(g)),
		Seed:        seed,
		MaxLatency:  100 * time.Microsecond,
	})
	if err != nil {
		rp.checkf(false, "cluster: %v", err)
		return rp.done()
	}
	defer cluster.Close()
	nodes := make([]bellmanford.Node, cluster.NumNodes())
	for i := range nodes {
		nodes[i] = cluster.Node(i)
	}
	res, err := bellmanford.Run(nodes, g, 0)
	if err != nil {
		rp.checkf(false, "run: %v", err)
		return rp.done()
	}
	oracle := bellmanford.Shortest(g, 0)
	rp.logf("distances (source = node 1 of the paper): distributed %v", res.Dist)
	rp.logf("sequential oracle:                                    %v", oracle)
	rp.checkf(reflect.DeepEqual(res.Dist, oracle), "distributed == oracle in %d rounds", res.Rounds)
	cluster.Quiesce()
	rp.checkf(cluster.VerifyWitness() == nil, "execution is PRAM-consistent (witness)")
	rp.checkf(cluster.VerifyEfficiency() == nil, "execution is efficient: no x_h/k_h info outside C")
	st := cluster.Stats()
	rp.logf("traffic: %d msgs, %d ctrl bytes, %d data bytes", st.Msgs, st.CtrlBytes, st.DataBytes)
	return rp.done()
}

// Hierarchy runs experiment E13: acceptance monotonicity along the
// criterion-strength DAG on random histories.
func Hierarchy(seed int64, trials int) Report {
	rp := newReporter("E13", "§1/§4/§5 — consistency-strength hierarchy on random histories")
	rng := rand.New(rand.NewSource(seed))
	violations := 0
	accepted := make(map[check.Criterion]int)
	for t := 0; t < trials; t++ {
		h := workload.RandomHistory(rng, 2+rng.Intn(3), 1+rng.Intn(3), 2+rng.Intn(3))
		got, err := check.CheckAll(h)
		if err != nil {
			continue
		}
		for c, v := range got {
			if v {
				accepted[c]++
			}
		}
		for _, imp := range check.Implications {
			if got[imp[0]] && !got[imp[1]] {
				violations++
			}
		}
	}
	for _, c := range check.Criteria {
		rp.logf("%-18s accepted %3d/%d random histories", c, accepted[c], trials)
	}
	rp.checkf(violations == 0, "no monotonicity violations along the strength DAG (%d trials)", trials)
	weakOrder := accepted[check.Slow] >= accepted[check.PRAM] &&
		accepted[check.PRAM] >= accepted[check.Causal] &&
		accepted[check.Causal] >= accepted[check.Sequential]
	rp.checkf(weakOrder, "acceptance counts grow toward weaker criteria")
	return rp.done()
}

// Ablation runs experiment E15: hoop-aware vs broadcast causal control
// traffic on a star topology (where most processes are x-irrelevant)
// and on a ring (where every process is x-relevant, so hoop-awareness
// cannot help).
func Ablation(opsPerNode int, seed int64) Report {
	rp := newReporter("E15", "§3.3 ablation — hoop-aware notification vs broadcast")
	type cell struct {
		ctrl float64
		msgs float64
	}
	run := func(cons partialdsm.Consistency, placement [][]string) (cell, error) {
		cluster, err := newCluster(partialdsm.Config{
			Consistency:  cons,
			Placement:    partialdsm.PlacementFromLists(placement),
			Seed:         seed,
			DisableTrace: true,
		})
		if err != nil {
			return cell{}, err
		}
		defer cluster.Close()
		ops := driveRandomWorkload(cluster, opsPerNode, seed)
		cluster.Quiesce()
		st := cluster.Stats()
		return cell{
			ctrl: float64(st.CtrlBytes) / float64(ops),
			msgs: float64(st.Msgs) / float64(ops),
		}, nil
	}
	topologies := []struct {
		name string
		pl   [][]string
	}{
		{"star(9)", starPlacement(9)},
		{"ring(9)", ringPlacement(9)},
	}
	protos := []partialdsm.Consistency{
		partialdsm.CausalPartial, partialdsm.CausalHoopAware, partialdsm.PRAM,
	}
	results := make(map[string]map[partialdsm.Consistency]cell)
	for _, topo := range topologies {
		results[topo.name] = make(map[partialdsm.Consistency]cell)
		for _, cons := range protos {
			c, err := run(cons, topo.pl)
			if err != nil {
				rp.checkf(false, "%s on %s: %v", cons, topo.name, err)
				return rp.done()
			}
			results[topo.name][cons] = c
		}
	}
	rp.logf("%-10s %18s %18s %12s   (msgs/op)", "topology", "causal-partial", "hoop-aware", "pram")
	for _, topo := range topologies {
		r := results[topo.name]
		rp.logf("%-10s %18.2f %18.2f %12.2f", topo.name,
			r[partialdsm.CausalPartial].msgs, r[partialdsm.CausalHoopAware].msgs, r[partialdsm.PRAM].msgs)
	}
	rp.logf("%-10s %18s %18s %12s   (ctrl bytes/op)", "topology", "causal-partial", "hoop-aware", "pram")
	for _, topo := range topologies {
		r := results[topo.name]
		rp.logf("%-10s %18.1f %18.1f %12.1f", topo.name,
			r[partialdsm.CausalPartial].ctrl, r[partialdsm.CausalHoopAware].ctrl, r[partialdsm.PRAM].ctrl)
	}
	star, ring := results["star(9)"], results["ring(9)"]
	rp.checkf(star[partialdsm.CausalHoopAware].msgs < 0.6*star[partialdsm.CausalPartial].msgs,
		"star: hoop-aware sends <60%% of broadcast's messages (leaves are x-irrelevant)")
	rp.checkf(ring[partialdsm.CausalHoopAware].msgs > 0.9*ring[partialdsm.CausalPartial].msgs,
		"ring: hoop-awareness cannot help (every process is on some x-hoop)")
	rp.checkf(star[partialdsm.PRAM].ctrl < star[partialdsm.CausalHoopAware].ctrl,
		"PRAM's control bytes beat even the optimal causal design (no dependency lists)")
	return rp.done()
}

// OpenQuestion runs experiment E16, our exploration of the paper's §7
// open question ("the existence of a consistency criterion stronger
// than PRAM, and allowing efficient partial replication implementation,
// remains open"): cache consistency is incomparable with PRAM — on the
// per-variable axis it is strictly stronger (it totally orders each
// variable's operations) — and it admits an efficient implementation,
// showing the boundary of efficiency is not a single chain through
// PRAM.
func OpenQuestion(seed int64) Report {
	rp := newReporter("E16", "§7 open question — cache consistency: incomparable with PRAM, yet efficient")
	// Checker-level incomparability witnesses.
	cacheNotPRAM := model.NewBuilder(2).
		Write(0, "x", 1).
		Write(0, "y", 2).
		Read(1, "y", 2).
		ReadInit(1, "x").
		MustHistory()
	got1, err := check.CheckAll(cacheNotPRAM)
	if err != nil {
		rp.checkf(false, "checker: %v", err)
		return rp.done()
	}
	rp.checkf(got1[check.Cache] && !got1[check.PRAM],
		"witness A: cache accepts, PRAM rejects (cross-variable reordering)")
	pramNotCache := model.NewBuilder(4).
		Write(0, "x", 1).
		Write(1, "x", 2).
		Read(2, "x", 1).
		Read(2, "x", 2).
		Read(3, "x", 2).
		Read(3, "x", 1).
		MustHistory()
	got2, err := check.CheckAll(pramNotCache)
	if err != nil {
		rp.checkf(false, "checker: %v", err)
		return rp.done()
	}
	rp.checkf(!got2[check.Cache] && got2[check.PRAM],
		"witness B: PRAM accepts, cache rejects (divergent orders on one variable)")

	// Protocol level: cachepart is efficient on the hoop topology.
	cluster, err := newCluster(partialdsm.Config{
		Consistency: partialdsm.CacheConsistency,
		Placement:   partialdsm.PlacementFromLists([][]string{{"x", "y"}, {"y"}, {"x", "y"}, {"x"}}),
		Seed:        seed,
		MaxLatency:  100 * time.Microsecond,
	})
	if err != nil {
		rp.checkf(false, "cluster: %v", err)
		return rp.done()
	}
	defer cluster.Close()
	driveRandomWorkload(cluster, 40, seed)
	cluster.Quiesce()
	rp.checkf(cluster.VerifyEfficiency() == nil,
		"cachepart keeps all x-information inside C(x) on random workloads")
	rp.checkf(cluster.VerifyWitness() == nil, "cachepart executions pass the cache witness")
	rp.logf("conclusion: efficiency does not single out PRAM — per-variable strengthening")
	rp.logf("is compatible with efficiency, cross-variable (transitive) strengthening is not")
	return rp.done()
}

// Separation runs experiment E17: a deterministic adversarial schedule
// (link 0→2 withheld while a dependency chain flows through node 1)
// that drives the live PRAM protocol into a history the exact checkers
// prove non-causal — and shows the causal protocol buffering under the
// same schedule. The operational counterpart of Figure 3 / Theorem 1.
func Separation(seed int64) Report {
	rp := newReporter("E17", "operational separation — a live PRAM run that is provably not causal")
	placement := [][]string{{"x", "y"}, {"y"}, {"x", "y"}}

	waitFor := func(c *partialdsm.Cluster, node int, x string, want int64) bool {
		h := c.Node(node)
		deadline := time.Now().Add(5 * time.Second) //lint:allow realtime E17 convergence watchdog; checks final values, not traces
		for {
			v, err := h.Read(x)
			if err != nil {
				return false
			}
			if v == want {
				return true
			}
			if time.Now().After(deadline) { //lint:allow realtime E17 convergence watchdog; checks final values, not traces
				return false
			}
			time.Sleep(50 * time.Microsecond) //lint:allow realtime E17 convergence poll backoff; checks final values, not traces
		}
	}

	// PRAM: the stale read happens.
	pramC, err := newCluster(partialdsm.Config{
		Consistency: partialdsm.PRAM, Placement: partialdsm.PlacementFromLists(placement), Seed: seed,
	})
	if err != nil {
		rp.checkf(false, "cluster: %v", err)
		return rp.done()
	}
	pramC.PauseLink(0, 2)
	pramC.Node(0).Write("x", 1)
	pramC.Node(0).Write("y", 2)
	rp.checkf(waitFor(pramC, 1, "y", 2), "node 1 observed y through the open link")
	pramC.Node(1).Write("y", 3)
	rp.checkf(waitFor(pramC, 2, "y", 3), "PRAM: node 2 observed node 1's y' despite the withheld x")
	vx, _ := pramC.Node(2).Read("x")
	rp.checkf(vx == partialdsm.Bottom, "PRAM: node 2 then read x = ⊥ — the causally forbidden outcome")
	pramC.ResumeLink(0, 2)
	pramC.Quiesce()
	verdicts, err := pramC.CheckHistory()
	if err != nil {
		rp.checkf(false, "checker: %v", err)
		pramC.Close()
		return rp.done()
	}
	rp.checkf(verdicts["pram"] && !verdicts["causal"],
		"exact checkers: the recorded history is PRAM-consistent and NOT causal (Figure 4's class)")
	rp.checkf(pramC.VerifyWitness() == nil, "the PRAM witness still passes — the protocol kept its promise")
	pramC.Close()

	// Causal partial replication under the identical schedule: y' stays
	// buffered at node 2 until x arrives.
	causalC, err := newCluster(partialdsm.Config{
		Consistency: partialdsm.CausalPartial, Placement: partialdsm.PlacementFromLists(placement), Seed: seed,
	})
	if err != nil {
		rp.checkf(false, "cluster: %v", err)
		return rp.done()
	}
	causalC.PauseLink(0, 2)
	causalC.Node(0).Write("x", 1)
	causalC.Node(0).Write("y", 2)
	waitFor(causalC, 1, "y", 2)
	causalC.Node(1).Write("y", 3)
	time.Sleep(10 * time.Millisecond) //lint:allow realtime E17 gives the withheld link real time to (not) deliver; final-value check only
	vy, _ := causalC.Node(2).Read("y")
	rp.checkf(vy == partialdsm.Bottom,
		"causal: node 2 still reads y = ⊥ — y' is buffered behind its withheld dependencies")
	causalC.ResumeLink(0, 2)
	causalC.Quiesce()
	vy2, _ := causalC.Node(2).Read("y")
	vx2, _ := causalC.Node(2).Read("x")
	rp.checkf(vy2 == 3 && vx2 == 1, "causal: after the link resumes, both values appear in causal order")
	rp.checkf(causalC.VerifyWitness() == nil, "causal witness passes")
	causalC.Close()
	return rp.done()
}

// All runs every experiment with default parameters.
func All(seed int64) []Report {
	scaling, _ := Scaling([]int{4, 8, 16, 24}, 30, seed)
	return []Report{
		Fig1(), Fig2(), Fig3(), Fig4(), Fig5(), Fig6(),
		Thm1(seed), Thm2(seed),
		scaling,
		DegreeSweep(12, []int{2, 4, 8, 12}, 30, seed),
		BellmanFordFig8(seed),
		Hierarchy(seed, 150),
		Ablation(30, seed),
		OpenQuestion(seed),
		Separation(seed),
		Latency(seed),
		Faults(seed),
		Chaos(seed),
		Migrate(seed),
		Policy(seed),
	}
}

// driveRandomWorkload performs a seeded random mix of reads and writes
// on every node concurrently and returns the number of operations.
func driveRandomWorkload(c *partialdsm.Cluster, opsPerNode int, seed int64) int {
	done := make(chan int, c.NumNodes())
	for i := 0; i < c.NumNodes(); i++ {
		go func(i int) {
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			h := c.Node(i)
			vars := c.VarsOf(i)
			ops := 0
			if len(vars) > 0 {
				for k := 0; k < opsPerNode; k++ {
					x := vars[rng.Intn(len(vars))]
					if rng.Intn(3) != 0 { // write-heavy: control traffic dominates
						if h.Write(x, int64(i)*1_000_000+int64(k)+1) == nil {
							ops++
						}
					} else {
						if _, err := h.Read(x); err == nil {
							ops++
						}
					}
				}
			}
			done <- ops
		}(i)
	}
	total := 0
	for range make([]struct{}, c.NumNodes()) {
		total += <-done
	}
	return total
}

// ringPlacement gives node p the variables x_p and x_{p+1 mod n}.
func ringPlacement(n int) [][]string {
	out := make([][]string, n)
	for p := 0; p < n; p++ {
		out[p] = []string{workload.VarName(p), workload.VarName((p + 1) % n)}
	}
	return out
}

// starPlacement gives the hub (node 0) every variable and leaf i the
// single variable x_i it shares with the hub: leaves are x_j-irrelevant
// for every j ≠ i (pendants with a single anchor).
func starPlacement(n int) [][]string {
	out := make([][]string, n)
	out[0] = workload.VarNames(n - 1)
	for p := 1; p < n; p++ {
		out[p] = []string{workload.VarName(p - 1)}
	}
	return out
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func sliceContains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "     " + l
	}
	return strings.Join(lines, "\n")
}
