package experiments

import (
	"fmt"
	"regexp"
	"strings"
	"time"

	"partialdsm"
)

// Faults runs experiment E19: the protocols' behaviour on an unreliable
// network. The paper assumes reliable FIFO channels (§2); this
// experiment measures what each of the eight protocols actually
// requires of that assumption, by running the same seeded,
// phase-structured workload under injected message duplication and
// loss — and then again behind the ack/retransmit layer that restores
// the paper's channel model.
//
// Every run uses virtual latency, so the fault schedule, the message
// trace and therefore the verdict table are a pure function of the
// seed: the experiment builds the table on both engines and checks the
// two come out byte-identical. A verdict is "ok" when the run quiesces,
// all replicas of each variable converge (the workload has a single
// writer per variable, so convergence is required), and the protocol's
// own consistency witness validates; otherwise the verdict names the
// first failure — a dropped-frame fault, divergent replicas, or the
// witness violation itself.
func Faults(seed int64) Report {
	rp := newReporter("E19", "fault injection — dup/drop per protocol; ack/retransmit recovery")

	legs := []struct {
		name     string
		drop     float64
		dup      float64
		reliable bool
		blocking bool // whether the blocking protocols can run this leg
	}{
		// Raw duplication: every protocol stays live (requests still
		// arrive), so the leg isolates dedup-safety of each wire format.
		{"dup 0.30", 0, 0.30, false, true},
		// Raw loss: only the wait-free protocols can run it — a blocking
		// protocol's ordering round trip hangs forever on a lost request.
		{"drop 0.30", 0.30, 0, false, false},
		// The same faults behind the retransmit layer: the paper's
		// reliable-FIFO channel assumption is restored for everyone.
		{"drop+dup+retransmit", 0.25, 0.25, true, true},
	}

	engines := []string{"classic", "sharded"}
	tables := make(map[string][]string)
	var retransmits, dupsSuppressed int64
	for _, engine := range engines {
		for _, leg := range legs {
			for _, cons := range partialdsm.Consistencies {
				var verdict string
				if faultBlocking(cons) && !leg.blocking {
					verdict = "skipped (blocks on loss without retransmit)"
				} else {
					var st partialdsm.Stats
					verdict, st = faultVerdict(engine, cons, seed, leg.drop, leg.dup, leg.reliable)
					// The recovery counters are informative but not part
					// of the engine-compared surface: whether an ack beats
					// its retransmit timer depends on how the driver's
					// sends interleave with clock ticks.
					if leg.reliable && engine == "classic" {
						retransmits += st.Retransmits
						dupsSuppressed += st.DupsSuppressed
					}
				}
				tables[engine] = append(tables[engine],
					fmt.Sprintf("%-22s %-16s %s", leg.name, cons, verdict))
			}
		}
	}

	rp.logf("%-22s %-16s %s", "faults", "protocol", "verdict")
	for _, line := range tables["classic"] {
		rp.logf("%s", line)
	}

	identical := len(tables["classic"]) == len(tables["sharded"])
	for i := range tables["classic"] {
		if !identical || tables["classic"][i] != tables["sharded"][i] {
			identical = false
			rp.logf("engine divergence at row %d:", i)
			rp.logf("  classic: %s", tables["classic"][i])
			rp.logf("  sharded: %s", tables["sharded"][i])
			break
		}
	}
	rp.checkf(identical, "verdict table is byte-identical on both engines (seeded fault schedule)")

	byRow := func(legName string, cons partialdsm.Consistency) string {
		for _, line := range tables["classic"] {
			if strings.HasPrefix(line, fmt.Sprintf("%-22s %-16s ", legName, cons)) {
				return line
			}
		}
		return ""
	}
	rawBroken := 0
	witnessed := false
	for _, leg := range legs[:2] {
		for _, cons := range partialdsm.Consistencies {
			row := byRow(leg.name, cons)
			if strings.Contains(row, "BROKEN") {
				rawBroken++
				if strings.Contains(row, "witness:") {
					witnessed = true
				}
			}
		}
	}
	rp.checkf(rawBroken > 0 && witnessed,
		"raw faults break %d protocol runs, at least one with its consistency witness as evidence", rawBroken)
	rp.checkf(strings.Contains(byRow("dup 0.30", partialdsm.Sequential), "BROKEN"),
		"sequential is dup-unsafe: a duplicated request is sequenced twice")
	rp.checkf(strings.Contains(byRow("dup 0.30", partialdsm.Atomic), "ok"),
		"atomic absorbs duplicates (idempotent request/ack handling)")
	restored := true
	for _, cons := range partialdsm.Consistencies {
		if !strings.Contains(byRow("drop+dup+retransmit", cons), "ok") {
			restored = false
		}
	}
	rp.checkf(restored, "the retransmit layer restores every protocol under the same faults")
	rp.checkf(retransmits > 0 && dupsSuppressed > 0,
		"...by actually recovering: %d retransmits, %d duplicate frames suppressed (classic legs)",
		retransmits, dupsSuppressed)

	faultHardSection(rp, seed)
	return rp.done()
}

// faultBlocking reports whether the protocol's writes or reads block on
// an ordering round trip — and therefore hang on raw message loss.
func faultBlocking(cons partialdsm.Consistency) bool {
	switch cons {
	case partialdsm.Sequential, partialdsm.Atomic, partialdsm.CacheConsistency:
		return true
	}
	return false
}

// faultVerdict runs the phase-structured fault workload for one
// (engine, protocol, fault mix) cell and renders its verdict. Three
// nodes fully replicate three variables with a single writer per
// variable: after each phase's quiesce all replicas must agree, and at
// the end the protocol's witness must validate.
func faultVerdict(engine string, cons partialdsm.Consistency, seed int64, drop, dup float64, reliable bool) (string, partialdsm.Stats) {
	const nodes = 3
	placement := make([][]string, nodes)
	for i := range placement {
		placement[i] = []string{"v0", "v1", "v2"}
	}
	c, err := partialdsm.New(partialdsm.Config{
		Consistency:    cons,
		Placement:      partialdsm.PlacementFromLists(placement),
		Transport:      partialdsm.Transport(engine),
		Seed:           seed,
		MaxLatency:     200 * time.Microsecond,
		VirtualLatency: true,
		FaultDrop:      drop,
		FaultDup:       dup,
		FaultSeed:      seed + 41,
		Reliable:       reliable,
	})
	if err != nil {
		return "error: " + err.Error(), partialdsm.Stats{}
	}
	defer c.Close()

	var broken string
	note := func(s string) {
		if broken == "" {
			broken = s
		}
	}
	for phase := int64(1); phase <= 4 && broken == ""; phase++ {
		for i := 0; i < nodes; i++ {
			if err := c.Node(i).Write(fmt.Sprintf("v%d", i), phase*10+int64(i)); err != nil {
				note("write: " + faultTrim(err))
			}
		}
		if err := c.Quiesce(); err != nil {
			note(faultTrim(err))
			break
		}
		for i := 0; i < nodes; i++ {
			for j := 0; j < nodes; j++ {
				if _, err := c.Node(i).Read(fmt.Sprintf("v%d", j)); err != nil {
					note("read: " + faultTrim(err))
				}
			}
		}
	}
	if broken == "" {
		for j := 0; j < nodes; j++ {
			x := fmt.Sprintf("v%d", j)
			vals := make([]string, nodes)
			diverged := false
			for i := 0; i < nodes; i++ {
				v, _ := c.Node(i).Read(x)
				if v == partialdsm.Bottom {
					vals[i] = "⊥"
				} else {
					vals[i] = fmt.Sprint(v)
				}
				diverged = diverged || vals[i] != vals[0]
			}
			if diverged {
				note(fmt.Sprintf("divergent replicas of %s: [%s]", x, strings.Join(vals, " ")))
				break
			}
		}
	}
	if broken == "" {
		if err := c.VerifyWitness(); err != nil {
			note("witness: " + faultWitnessTrim(err))
		}
	}
	st := c.Stats()
	if broken != "" {
		return "BROKEN — " + broken, st
	}
	if reliable && st.Abandoned != 0 {
		return "BROKEN — frames abandoned", st
	}
	return "ok", st
}

// faultWitnessTrim renders a witness violation with the incidental
// identifiers (which variable, which writer, which sequence numbers)
// masked to "N". The *kind* of violation is pinned by the seeded fault
// schedule, but which instance the checker reports first depends on
// history collection order — the driver goroutine races the delivery
// clock — so the identifiers must not leak into the engine-compared
// verdict table.
func faultWitnessTrim(err error) string {
	return faultDigits.ReplaceAllString(faultTrim(err), "N")
}

var faultDigits = regexp.MustCompile(`[0-9]+`)

// faultTrim renders an error on one bounded line so table rows stay
// readable (and still byte-comparable across engines).
func faultTrim(err error) string {
	s := strings.ReplaceAll(err.Error(), "\n", " ")
	if len(s) > 110 {
		s = s[:110] + "…"
	}
	return s
}

// faultHardSection exercises the hard faults — partitions that lose
// messages and crash/restart with replica-state loss — on the paper's
// headline protocol.
func faultHardSection(rp *reporter, seed int64) {
	c, err := partialdsm.New(partialdsm.Config{
		Consistency:    partialdsm.PRAM,
		Placement:      partialdsm.PlacementFromLists([][]string{{"x"}, {"x"}, {"x"}}),
		Transport:      partialdsm.Transport("classic"),
		Seed:           seed,
		VirtualLatency: true,
		MaxLatency:     100 * time.Microsecond,
	})
	if err != nil {
		rp.checkf(false, "hard-fault cluster: %v", err)
		return
	}
	defer c.Close()
	read := func(i int) int64 {
		v, _ := c.Node(i).Read("x")
		return v
	}

	c.CutLink(0, 1)
	c.Node(0).Write("x", 1)
	qerr := c.Quiesce()
	rp.checkf(qerr == nil && read(1) == partialdsm.Bottom && read(2) == 1,
		"partition: a cut link loses messages (node 1 missed the write) yet Quiesce completes")
	c.HealLink(0, 1)
	c.Node(0).Write("x", 2)
	c.Quiesce()
	rp.checkf(read(1) == 2, "heal: traffic flows again, the lost write is not replayed")

	if err := c.CrashNode(1); err != nil {
		rp.checkf(false, "crash: %v", err)
		return
	}
	c.Node(0).Write("x", 3)
	c.Quiesce()
	if err := c.RestartNode(1); err != nil {
		rp.checkf(false, "restart: %v", err)
		return
	}
	c.Quiesce()
	rp.checkf(read(1) == 3,
		"crash/recover: the restarted replica re-learned the write it missed from its live peers")
	c.Node(0).Write("x", 4)
	c.Quiesce()
	rp.checkf(read(1) == 4, "rejoin: the recovered node receives subsequent updates")

	// The blocking protocols recover too — including the sequencer node
	// itself, whose durable sequence counter keeps the total order from
	// forking across the restart.
	seqC, err := partialdsm.New(partialdsm.Config{
		Consistency:    partialdsm.Sequential,
		Placement:      partialdsm.PlacementFromLists([][]string{{"x"}, {"x"}}),
		Transport:      partialdsm.Transport("classic"),
		Seed:           seed,
		VirtualLatency: true,
		MaxLatency:     100 * time.Microsecond,
	})
	if err != nil {
		rp.checkf(false, "sequential cluster: %v", err)
		return
	}
	defer seqC.Close()
	seqOK := seqC.Node(0).Write("x", 7) == nil && seqC.Quiesce() == nil &&
		seqC.CrashNode(0) == nil && seqC.RestartNode(0) == nil && seqC.Quiesce() == nil
	seqV, _ := seqC.Node(0).Read("x")
	seqOK = seqOK && seqV == 7 && seqC.Node(1).Write("x", 8) == nil && seqC.Quiesce() == nil
	seqV, _ = seqC.Node(0).Read("x")
	rp.checkf(seqOK && seqV == 8 && seqC.VerifyWitness() == nil,
		"sequential survives the cycle — even crashing the sequencer node itself (witness intact)")
	st := c.Stats()
	rp.checkf(st.Faults["partition"] > 0 && st.Faults["crash"] > 0,
		"Stats.Faults accounts the hard faults: %v", st.Faults)
	rp.checkf(st.Recoveries == 1 && st.RecoveryMsgs > 0,
		"Stats separates the recovery work: %d rejoin, %d snapshot messages, %d virtual ticks",
		st.Recoveries, st.RecoveryMsgs, st.RecoveryTicks)
}
