package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"partialdsm"
)

// Migrate runs experiment E21: live epoch-based placement migrations
// under continuous drop/dup churn. A seeded schedule derives a
// sequence of ring-placement rotations; every protocol — all eight
// reconfigure since the v10 ownership-handoff work — must carry each
// flip (propose, fence, state transfer, commit) on both engines while
// the ack/retransmit layer masks the churn, with the transferred
// values readable on every gaining replica and the consistency
// witness intact across all epochs. For the owner-based protocols the
// rotations also move each variable's primary/sequencer implicitly; a
// dedicated handoff leg additionally walks explicit owner pins across
// a fixed clique so the handoff window itself (drain, transfer, flip)
// is crossed by foreign writes every step. A stall leg pins the abort
// path: an attempt whose proposal is lost to an unhealed cut burns
// its virtual-time budget, aborts with ErrOpDeadline, and leaves the
// old epoch fully consistent.
//
// As in E20, everything the verdict tables contain is rebuilt
// independently per engine and must come out byte-identical: the
// rotation schedule, the fault draws, the migration handshakes and
// the epoch numbers all ride the same deterministic virtual clock.
func Migrate(seed int64) Report {
	rp := newReporter("E21", "dynamic placement — live epoch migrations under drop/dup churn; owner handoffs; stall abort; exact PRAM across flips")

	const nodes, flips = 4, 4
	reconfigurables := []partialdsm.Consistency{
		partialdsm.PRAM, partialdsm.Slow, partialdsm.CausalFull,
		partialdsm.CausalPartial, partialdsm.CausalHoopAware, partialdsm.Sequential,
		partialdsm.Atomic, partialdsm.CacheConsistency,
	}
	owned := []partialdsm.Consistency{partialdsm.Atomic, partialdsm.CacheConsistency}

	engines := []string{"classic", "sharded"}
	tables := make(map[string][]string)
	var reconfigMsgs int64
	for _, engine := range engines {
		offsets := migratePlan(seed, nodes, flips)
		walk := migrateHandoffPlan(seed, 3, flips)
		tables[engine] = append(tables[engine], "schedule "+migrateRenderPlan(offsets))
		for _, cons := range reconfigurables {
			verdict, st := migrateVerdict(engine, cons, seed, nodes, offsets)
			tables[engine] = append(tables[engine],
				fmt.Sprintf("%-6s %-18s %s", "churn", cons, verdict))
			if engine == "classic" {
				reconfigMsgs += st.ReconfigMsgs
			}
		}
		for _, cons := range owned {
			tables[engine] = append(tables[engine],
				fmt.Sprintf("%-6s %-18s %s", "owner", cons, migrateHandoffVerdict(engine, cons, seed, walk)))
		}
		tables[engine] = append(tables[engine],
			fmt.Sprintf("%-6s %-18s %s", "stall", partialdsm.PRAM, migrateStallVerdict(engine, seed)))
	}

	rp.logf("%-6s %-18s %s", "leg", "protocol", "verdict")
	for _, line := range tables["classic"] {
		rp.logf("%s", line)
	}

	identical := len(tables["classic"]) == len(tables["sharded"])
	for i := range tables["classic"] {
		if !identical || tables["classic"][i] != tables["sharded"][i] {
			identical = false
			rp.logf("engine divergence at row %d:", i)
			rp.logf("  classic: %s", tables["classic"][i])
			rp.logf("  sharded: %s", tables["sharded"][i])
			break
		}
	}
	rp.checkf(identical,
		"schedule and verdict tables are byte-identical on both engines (seeded rotation schedule)")

	churnOK := true
	for _, line := range tables["classic"] {
		if strings.HasPrefix(line, "churn ") && !strings.Contains(line, "ok") {
			churnOK = false
		}
	}
	rp.checkf(churnOK,
		"all eight protocols carry %d live migrations under drop/dup churn with values transferred and witness intact", flips)
	handoffOK := true
	for _, line := range tables["classic"] {
		if strings.HasPrefix(line, "owner ") && !strings.Contains(line, "ok") {
			handoffOK = false
		}
	}
	rp.checkf(handoffOK,
		"the owner protocols walk the primary/sequencer across a fixed clique under churn, foreign writes crossing every handoff window")
	stallOK := true
	for _, line := range tables["classic"] {
		if strings.HasPrefix(line, "stall ") && !strings.Contains(line, "aborted with ErrOpDeadline") {
			stallOK = false
		}
	}
	rp.checkf(stallOK,
		"an attempt lost to an unhealed cut aborts with ErrOpDeadline and the old epoch stays consistent; a healed retry commits")
	rp.checkf(reconfigMsgs > 0,
		"the migrations are visible in the epoch wire-protocol accounting: %d epoch.* messages (classic legs)", reconfigMsgs)

	migrateExactSection(rp, seed)
	return rp.done()
}

// migratePlan derives the rotation schedule from the seed alone: a
// sequence of ring offsets, each a non-trivial rotation of the one
// before, so every flip migrates every variable.
func migratePlan(seed int64, nodes, flips int) []int {
	rng := rand.New(rand.NewSource(seed*37 + 11))
	offs := make([]int, flips)
	cur := 0
	for i := range offs {
		cur = (cur + 1 + rng.Intn(nodes-1)) % nodes
		offs[i] = cur
	}
	return offs
}

// migrateRenderPlan renders the schedule into the engine-compared
// table.
func migrateRenderPlan(offsets []int) string {
	parts := make([]string, len(offsets))
	for i, off := range offsets {
		parts[i] = fmt.Sprintf("rot %d", off)
	}
	return strings.Join(parts, "; ")
}

// migrateRingPlacement puts v_i on nodes (i+off) and (i+off+1) mod n:
// rotating the offset migrates every variable's two-node clique while
// preserving the node count and the variable universe.
func migrateRingPlacement(nodes, off int) *partialdsm.Placement {
	p := partialdsm.NewPlacement(nodes)
	for i := 0; i < nodes; i++ {
		v := fmt.Sprintf("v%d", i)
		p.Assign((i+off)%nodes, v).Assign((i+off+1)%nodes, v)
	}
	return p
}

// migrateVerdict runs the churn soak for one (engine, protocol) cell:
// per flip a rotation Reconfigure, a read check that the state
// transfer carried the previous epoch's values to every gaining
// replica, a fresh single-writer write wave on the new epoch, and a
// convergence probe of every replica — all on top of continuous
// seeded drop/dup churn masked by the ack/retransmit layer.
func migrateVerdict(engine string, cons partialdsm.Consistency, seed int64, nodes int, offsets []int) (string, partialdsm.Stats) {
	c, err := partialdsm.New(partialdsm.Config{
		Consistency:    cons,
		Placement:      migrateRingPlacement(nodes, 0),
		Transport:      partialdsm.Transport(engine),
		Seed:           seed,
		MaxLatency:     200 * time.Microsecond,
		VirtualLatency: true,
		FaultDrop:      0.15,
		FaultDup:       0.15,
		FaultSeed:      seed + 71,
		Reliable:       true,
	})
	if err != nil {
		return "error: " + err.Error(), partialdsm.Stats{}
	}
	defer c.Close()

	// One writer per variable — its lowest current holder — so the
	// expected final values are a pure function of the flip count.
	write := func(wave int) string {
		for j := 0; j < nodes; j++ {
			x := fmt.Sprintf("v%d", j)
			if err := c.Node(c.Clique(x)[0]).Write(x, int64((wave+1)*1000+j)); err != nil {
				return "write: " + faultTrim(err)
			}
		}
		if err := c.Quiesce(); err != nil {
			return faultTrim(err)
		}
		return ""
	}
	check := func(wave int) string {
		for j := 0; j < nodes; j++ {
			x := fmt.Sprintf("v%d", j)
			want := int64((wave+1)*1000 + j)
			for _, holder := range c.Clique(x) {
				if v, err := c.Node(holder).Read(x); err != nil || v != want {
					return fmt.Sprintf("wave %d: node %d read %s = %d, %v; want %d", wave, holder, x, v, err, want)
				}
			}
		}
		return ""
	}
	if msg := write(0); msg != "" {
		return "BROKEN — " + msg, c.Stats()
	}
	for k, off := range offsets {
		if err := c.Reconfigure(migrateRingPlacement(nodes, off)); err != nil {
			return "BROKEN — flip " + fmt.Sprint(k+1) + ": " + faultTrim(err), c.Stats()
		}
		// The state transfer carried the previous wave's values to
		// every gaining replica of the new cliques.
		if msg := check(k); msg != "" {
			return "BROKEN — after flip: " + msg, c.Stats()
		}
		if msg := write(k + 1); msg != "" {
			return "BROKEN — " + msg, c.Stats()
		}
		if msg := check(k + 1); msg != "" {
			return "BROKEN — " + msg, c.Stats()
		}
	}
	if err := c.VerifyWitness(); err != nil {
		return "BROKEN — witness: " + faultWitnessTrim(err), c.Stats()
	}
	if got, want := c.Epoch(), uint64(len(offsets)); got != want {
		return fmt.Sprintf("BROKEN — final epoch %d, want %d", got, want), c.Stats()
	}
	return fmt.Sprintf("ok (%d flips committed, final epoch %d, witness intact)", len(offsets), c.Epoch()), c.Stats()
}

// migrateHandoffPlan derives the owner walk from the seed alone: a
// sequence of clique members, each different from the one before, so
// every step is a real primary/sequencer handoff.
func migrateHandoffPlan(seed int64, nodes, steps int) []int {
	rng := rand.New(rand.NewSource(seed*53 + 29))
	walk := make([]int, steps)
	cur := 0
	for i := range walk {
		cur = (cur + 1 + rng.Intn(nodes-1)) % nodes
		walk[i] = cur
	}
	return walk
}

// migrateHandoffVerdict walks x's and y's owner — the per-variable
// primary (Atomic) or sequencer (CacheConsistency) — through the
// seeded walk over a fixed three-node full-replication clique, under
// the same drop/dup churn as the rotation legs. Every step a foreign
// write (issued by a non-owner) crosses the freshly installed owner,
// and every replica must converge to it; the witness check at the end
// replays the whole multi-epoch history against the owner of record
// at each operation's epoch.
func migrateHandoffVerdict(engine string, cons partialdsm.Consistency, seed int64, walk []int) string {
	c, err := partialdsm.New(partialdsm.Config{
		Consistency: cons,
		Placement: partialdsm.NewPlacement(3).
			Assign(0, "x", "y").Assign(1, "x", "y").Assign(2, "x", "y"),
		Transport:      partialdsm.Transport(engine),
		Seed:           seed,
		MaxLatency:     200 * time.Microsecond,
		VirtualLatency: true,
		FaultDrop:      0.15,
		FaultDup:       0.15,
		FaultSeed:      seed + 73,
		Reliable:       true,
	})
	if err != nil {
		return "error: " + err.Error()
	}
	defer c.Close()
	if c.Node(0).Write("x", 1) != nil || c.Node(0).Write("y", 2) != nil || c.Quiesce() != nil {
		return "BROKEN — epoch-0 writes failed"
	}
	for k, owner := range walk {
		next := partialdsm.NewPlacement(3).
			Assign(0, "x", "y").Assign(1, "x", "y").Assign(2, "x", "y").
			SetOwner("x", owner).SetOwner("y", owner)
		if err := c.Reconfigure(next); err != nil {
			return fmt.Sprintf("BROKEN — handoff %d to node %d: %s", k+1, owner, faultTrim(err))
		}
		wantX, wantY := int64((k+2)*100), int64((k+2)*100+1)
		writer := (owner + 1) % 3
		if c.Node(writer).Write("x", wantX) != nil || c.Node(writer).Write("y", wantY) != nil {
			return fmt.Sprintf("BROKEN — foreign write after handoff %d failed", k+1)
		}
		if err := c.Quiesce(); err != nil {
			return "BROKEN — " + faultTrim(err)
		}
		for i := 0; i < 3; i++ {
			if v, err := c.Node(i).Read("x"); err != nil || v != wantX {
				return fmt.Sprintf("BROKEN — step %d: node %d read x = %d, %v; want %d", k+1, i, v, err, wantX)
			}
			if v, err := c.Node(i).Read("y"); err != nil || v != wantY {
				return fmt.Sprintf("BROKEN — step %d: node %d read y = %d, %v; want %d", k+1, i, v, err, wantY)
			}
		}
	}
	if err := c.VerifyWitness(); err != nil {
		return "BROKEN — witness: " + faultWitnessTrim(err)
	}
	if got, want := c.Epoch(), uint64(len(walk)); got != want {
		return fmt.Sprintf("BROKEN — final epoch %d, want %d", got, want)
	}
	parts := make([]string, len(walk))
	for i, owner := range walk {
		parts[i] = fmt.Sprint(owner)
	}
	return fmt.Sprintf("ok (owner walk 0→%s, %d handoffs, witness intact)",
		strings.Join(parts, "→"), len(walk))
}

// migrateStallVerdict pins the abort path: the proposal toward the
// gaining node is lost on an unhealed cut, so the attempt can never
// commit; it burns its virtual-time budget, aborts with
// ErrOpDeadline, and the cluster keeps serving the old epoch until a
// healed retry commits.
func migrateStallVerdict(engine string, seed int64) string {
	c, err := partialdsm.New(partialdsm.Config{
		Consistency:    partialdsm.PRAM,
		Placement:      partialdsm.PlacementFromLists([][]string{{"x"}, {"x", "y"}, {"y"}}),
		Transport:      partialdsm.Transport(engine),
		Seed:           seed,
		VirtualLatency: true,
	})
	if err != nil {
		return "error: " + err.Error()
	}
	defer c.Close()
	if c.Node(0).Write("x", 5) != nil || c.Quiesce() != nil {
		return "BROKEN — epoch-0 write failed"
	}
	c.CutLink(0, 2)
	c.CutLink(1, 2)
	next := partialdsm.NewPlacement(3).Assign(0, "x").Assign(1, "y").Assign(2, "x", "y")
	err = c.Reconfigure(next)
	switch {
	case err == nil:
		return "BROKEN — committed across an unhealed cut"
	case !errors.Is(err, partialdsm.ErrOpDeadline):
		return "BROKEN — wrong error: " + faultTrim(err)
	case c.Epoch() != 0:
		return "BROKEN — aborted attempt moved the epoch"
	}
	c.HealLink(0, 2)
	c.HealLink(1, 2)
	if c.Reconfigure(next) != nil || c.Quiesce() != nil {
		return "BROKEN — healed retry failed"
	}
	if v, rerr := c.Node(2).Read("x"); rerr != nil || v != 5 {
		return fmt.Sprintf("BROKEN — gained replica read x = %d, %v; want 5", v, rerr)
	}
	if werr := c.VerifyWitness(); werr != nil {
		return "BROKEN — witness: " + faultWitnessTrim(werr)
	}
	return fmt.Sprintf("aborted with ErrOpDeadline on the cut, epoch 0 kept; healed retry committed epoch %d", c.Epoch())
}

// migrateExactSection runs the exact checkers of the execution model
// across three epoch flips: a small PRAM run (well under the exact
// checkers' operation budget) whose reads are served from migrated
// replicas must still be exactly PRAM and slow, and every touched
// node must sit inside the union of the attempted epochs' cliques.
func migrateExactSection(rp *reporter, seed int64) {
	c, err := partialdsm.New(partialdsm.Config{
		Consistency:    partialdsm.PRAM,
		Placement:      partialdsm.NewPlacement(3).Assign(0, "x").Assign(1, "x", "y").Assign(2, "y"),
		Transport:      partialdsm.Transport("classic"),
		Seed:           seed,
		VirtualLatency: true,
		MaxLatency:     100 * time.Microsecond,
	})
	if err != nil {
		rp.checkf(false, "exact-checker cluster: %v", err)
		return
	}
	defer c.Close()
	placements := []*partialdsm.Placement{
		partialdsm.NewPlacement(3).Assign(0, "x").Assign(1, "y").Assign(2, "x", "y"),
		partialdsm.NewPlacement(3).Assign(0, "x", "y").Assign(1, "x").Assign(2, "y"),
		partialdsm.NewPlacement(3).Assign(0, "x").Assign(1, "x", "y").Assign(2, "y"),
	}
	ok := c.Node(0).Write("x", 1) == nil && c.Node(1).Write("y", 2) == nil && c.Quiesce() == nil
	val := int64(10)
	for _, pl := range placements {
		ok = ok && c.Reconfigure(pl) == nil
		ok = ok && c.Node(c.Clique("x")[0]).Write("x", val) == nil &&
			c.Node(c.Clique("y")[0]).Write("y", val+1) == nil && c.Quiesce() == nil
		val += 10
	}
	verdicts, cerr := c.CheckHistory()
	rp.checkf(ok && c.Epoch() == uint64(len(placements)) && cerr == nil &&
		verdicts["pram"] && verdicts["slow"] &&
		c.VerifyEfficiency() == nil && c.VerifyRelevanceBound() == nil,
		"exact checkers: a PRAM history spanning %d epoch flips is still exactly PRAM (and slow); every touch within the epoch-union cliques", len(placements))
}
