package experiments

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"partialdsm"
)

// Chaos runs experiment E20: a seeded chaos soak of the crash-recovery
// machinery. A schedule generator derives, from the seed alone, a
// sequence of epochs that each crash a node through a bounded
// virtual-time window (triggering the peer state-transfer rejoin on
// restart) and cut a link for a bounded window mid-traffic — all on
// top of continuous seeded drop/dup churn masked by the
// ack/retransmit layer. Every one of the eight protocols
// must survive the whole soak on both engines with its consistency
// witness intact and every recovered replica converged; a second leg
// repeats the soak on a partially replicated ring placement (snapshot
// responses are then filtered by what the requester holds), and a third
// pins the bounded-blocking contract — with OpDeadlineTicks set, a
// blocking protocol's request lost to an unhealed cut fails fast with
// ErrOpDeadline instead of hanging.
//
// Everything the verdict tables contain — the rendered schedule and the
// per-protocol verdicts — is rebuilt independently per engine and must
// come out byte-identical: the chaos schedule, the fault draws and the
// recovery handshakes all ride the same deterministic virtual clock.
func Chaos(seed int64) Report {
	rp := newReporter("E20", "chaos soak — crash/recover + cut/heal + drop/dup churn; bounded blocking")

	const nodes, epochs = 4, 8
	ringProtocols := []partialdsm.Consistency{
		partialdsm.Atomic, partialdsm.CausalPartial, partialdsm.CausalHoopAware,
		partialdsm.PRAM, partialdsm.Slow, partialdsm.CacheConsistency,
	}

	engines := []string{"classic", "sharded"}
	tables := make(map[string][]string)
	var recoveries, recoveryMsgs int
	var recoveryTicks uint64
	var abandoned int64
	for _, engine := range engines {
		plan := chaosPlan(seed, nodes, epochs)
		tables[engine] = append(tables[engine], "schedule "+chaosRenderPlan(plan))
		for _, cons := range partialdsm.Consistencies {
			verdict, st := chaosVerdict(engine, cons, seed, chaosFullPlacement(nodes), plan)
			tables[engine] = append(tables[engine],
				fmt.Sprintf("%-6s %-18s %s", "full", cons, verdict))
			if engine == "classic" {
				recoveries += st.Recoveries
				recoveryMsgs += int(st.RecoveryMsgs)
				recoveryTicks += st.RecoveryTicks
				abandoned += st.Abandoned
			}
		}
		for _, cons := range ringProtocols {
			verdict, st := chaosVerdict(engine, cons, seed+1, chaosRingPlacement(nodes), plan)
			tables[engine] = append(tables[engine],
				fmt.Sprintf("%-6s %-18s %s", "ring", cons, verdict))
			if engine == "classic" {
				recoveries += st.Recoveries
				abandoned += st.Abandoned
			}
		}
		for _, cons := range []partialdsm.Consistency{
			partialdsm.Sequential, partialdsm.Atomic, partialdsm.CacheConsistency,
		} {
			tables[engine] = append(tables[engine],
				fmt.Sprintf("%-6s %-18s %s", "dline", cons, chaosDeadlineVerdict(engine, cons, seed)))
		}
	}

	rp.logf("%-6s %-18s %s", "leg", "protocol", "verdict")
	for _, line := range tables["classic"] {
		rp.logf("%s", line)
	}

	identical := len(tables["classic"]) == len(tables["sharded"])
	for i := range tables["classic"] {
		if !identical || tables["classic"][i] != tables["sharded"][i] {
			identical = false
			rp.logf("engine divergence at row %d:", i)
			rp.logf("  classic: %s", tables["classic"][i])
			rp.logf("  sharded: %s", tables["sharded"][i])
			break
		}
	}
	rp.checkf(identical,
		"schedule and verdict tables are byte-identical on both engines (seeded chaos schedule)")

	allOK := func(leg string) bool {
		ok := true
		for _, line := range tables["classic"] {
			if strings.HasPrefix(line, leg+" ") && !strings.Contains(line, "ok") {
				ok = false
			}
		}
		return ok
	}
	rp.checkf(allOK("full"),
		"all eight protocols survive %d crash→recover epochs with cut/heal and drop/dup churn", epochs)
	rp.checkf(allOK("ring"),
		"the partial-replication protocols survive the same soak on a ring placement (filtered snapshots)")
	deadlineOK := true
	for _, line := range tables["classic"] {
		if strings.HasPrefix(line, "dline ") && !strings.Contains(line, "deadline") {
			deadlineOK = false
		}
	}
	rp.checkf(deadlineOK,
		"bounded blocking: requests lost to an unhealed cut fail fast with ErrOpDeadline on every blocking protocol")
	wantRecoveries := epochs * (len(partialdsm.Consistencies) + len(ringProtocols))
	rp.checkf(recoveries == wantRecoveries && recoveryMsgs > 0 && recoveryTicks > 0,
		"every rejoin completed and was accounted: %d recoveries (want %d), %d snapshot messages, %d virtual ticks (classic legs)",
		recoveries, wantRecoveries, recoveryMsgs, recoveryTicks)
	rp.checkf(abandoned == 0,
		"the retransmit layer masked every chaos-window loss: 0 frames abandoned")

	chaosExactSection(rp, seed)
	return rp.done()
}

// chaosEpoch is one epoch of the seeded schedule: who crashes and
// which ordered link is cut while the epoch's writes are in flight.
type chaosEpoch struct {
	victim, cutFrom, cutTo int
}

// chaosPlan derives the soak schedule from the seed alone.
func chaosPlan(seed int64, nodes, epochs int) []chaosEpoch {
	rng := rand.New(rand.NewSource(seed*31 + 17))
	plan := make([]chaosEpoch, epochs)
	for e := range plan {
		victim := rng.Intn(nodes)
		from := rng.Intn(nodes)
		to := rng.Intn(nodes - 1)
		if to >= from {
			to++
		}
		plan[e] = chaosEpoch{victim: victim, cutFrom: from, cutTo: to}
	}
	return plan
}

// chaosRenderPlan renders the schedule into the engine-compared table.
func chaosRenderPlan(plan []chaosEpoch) string {
	parts := make([]string, len(plan))
	for i, ep := range plan {
		parts[i] = fmt.Sprintf("crash %d cut %d→%d", ep.victim, ep.cutFrom, ep.cutTo)
	}
	return strings.Join(parts, "; ")
}

// chaosFullPlacement replicates v0..v3 everywhere.
func chaosFullPlacement(nodes int) [][]string {
	vars := make([]string, nodes)
	for i := range vars {
		vars[i] = fmt.Sprintf("v%d", i)
	}
	out := make([][]string, nodes)
	for i := range out {
		out[i] = vars
	}
	return out
}

// chaosRingPlacement puts v_i on nodes i and i+1 (mod n): every
// snapshot response is then filtered by what the requester holds, and
// the hoop-aware protocol keeps its relevance bound through recovery.
func chaosRingPlacement(nodes int) [][]string {
	out := make([][]string, nodes)
	for i := range out {
		out[i] = []string{
			fmt.Sprintf("v%d", i),
			fmt.Sprintf("v%d", (i+nodes-1)%nodes),
		}
	}
	return out
}

// Fault-window lengths, in virtual ticks, relative to the retransmit
// layer's RTO (1<<20) and retry budget (16): the crash window is half
// an RTO and the cut window two, so frames aimed into a window burn at
// most a few retransmissions — never the whole budget. The windows are
// scheduled on the virtual clock (CrashNodeFor/CutLinkFor), which is
// what makes them windows at all: driven from this goroutine, their
// virtual length would be whatever idle jumps race through while the
// driver is between two calls — unbounded under an unlucky stall, and
// different on every engine and run.
const (
	chaosCrashTicks = 1 << 19
	chaosCutTicks   = 1 << 21
)

// chaosVerdict runs the full soak for one (engine, protocol) cell:
// per epoch an overlapping crash→recover window and cut→heal window
// with the live nodes' writes staged across both, a quiesce, the
// recovered victim's own write, and a convergence probe of every
// replica. The drop/dup churn runs behind the retransmit layer the
// whole time. Node i writes v_i, so the expected final values are a
// pure function of the epoch count.
func chaosVerdict(engine string, cons partialdsm.Consistency, seed int64, placement [][]string, plan []chaosEpoch) (string, partialdsm.Stats) {
	nodes := len(placement)
	c, err := partialdsm.New(partialdsm.Config{
		Consistency:    cons,
		Placement:      partialdsm.PlacementFromLists(placement),
		Transport:      partialdsm.Transport(engine),
		Seed:           seed,
		MaxLatency:     200 * time.Microsecond,
		VirtualLatency: true,
		FaultDrop:      0.15,
		FaultDup:       0.15,
		FaultSeed:      seed + 59,
		Reliable:       true,
	})
	if err != nil {
		return "error: " + err.Error(), partialdsm.Stats{}
	}
	defer c.Close()

	var broken string
	note := func(s string) {
		if broken == "" {
			broken = s
		}
	}
	for e, ep := range plan {
		if broken != "" {
			break
		}
		if err := c.CrashNodeFor(ep.victim, chaosCrashTicks); err != nil {
			note("crash: " + faultTrim(err))
			break
		}
		c.CutLinkFor(ep.cutFrom, ep.cutTo, chaosCutTicks)
		// Stage the live nodes' writes while the crash and cut windows
		// are in force: wait-free protocols return immediately, blocking
		// ones send their ordering requests — the retransmit layer
		// carries whatever the windows and the churn lose. The victim
		// writes after the quiesce: a write staged on a node whose crash
		// callback has not fired yet would be wiped by the coming
		// amnesia, possibly before its update frames ever left the
		// coalescing outbox.
		var pendings []partialdsm.Pending
		var buf [8]byte
		for i := 0; i < nodes; i++ {
			if i == ep.victim {
				continue
			}
			binary.BigEndian.PutUint64(buf[:], uint64((e+1)*1000+i))
			p, err := c.Node(i).PutAsync(fmt.Sprintf("v%d", i), buf[:])
			if err != nil {
				note("write: " + faultTrim(err))
				break
			}
			pendings = append(pendings, p)
		}
		if err := c.Quiesce(); err != nil {
			note(faultTrim(err))
			break
		}
		binary.BigEndian.PutUint64(buf[:], uint64((e+1)*1000+ep.victim))
		p, err := c.Node(ep.victim).PutAsync(fmt.Sprintf("v%d", ep.victim), buf[:])
		if err != nil {
			note("victim write: " + faultTrim(err))
			break
		}
		pendings = append(pendings, p)
		if err := c.Quiesce(); err != nil {
			note(faultTrim(err))
			break
		}
		for _, p := range pendings {
			if err := p.Wait(); err != nil {
				note("pending: " + faultTrim(err))
			}
		}
		for i := 0; i < nodes && broken == ""; i++ {
			x := fmt.Sprintf("v%d", i)
			want := int64((e+1)*1000 + i)
			for _, holder := range c.Clique(x) {
				if v, err := c.Node(holder).Read(x); err != nil || v != want {
					note(fmt.Sprintf("epoch %d: node %d read %s = %d, %v; want %d", e+1, holder, x, v, err, want))
					break
				}
			}
		}
	}
	if broken == "" {
		if err := c.VerifyWitness(); err != nil {
			note("witness: " + faultWitnessTrim(err))
		}
	}
	st := c.Stats()
	if broken != "" {
		return "BROKEN — " + broken, st
	}
	if st.Recoveries != len(plan) {
		return fmt.Sprintf("BROKEN — %d of %d rejoins completed", st.Recoveries, len(plan)), st
	}
	return fmt.Sprintf("ok (%d recoveries, witness intact)", st.Recoveries), st
}

// chaosDeadlineVerdict pins the fail-fast contract on one blocking
// protocol: a write whose ordering round trip is lost to an unhealed
// cut must return ErrOpDeadline (and record the fault) instead of
// hanging the application goroutine.
func chaosDeadlineVerdict(engine string, cons partialdsm.Consistency, seed int64) string {
	c, err := partialdsm.New(partialdsm.Config{
		Consistency:     cons,
		Placement:       partialdsm.PlacementFromLists([][]string{{"x"}, {"x"}}),
		Transport:       partialdsm.Transport(engine),
		Seed:            seed,
		VirtualLatency:  true,
		OpDeadlineTicks: 1 << 12,
	})
	if err != nil {
		return "error: " + err.Error()
	}
	defer c.Close()
	// Node 1's sequencer/primary for x is node 0 (lowest clique
	// member); requests toward it are lost on the cut.
	c.CutLink(1, 0)
	werr := c.Node(1).Write("x", 1)
	switch {
	case werr == nil:
		return "BROKEN — write completed across an unhealed cut"
	case !errors.Is(werr, partialdsm.ErrOpDeadline):
		return "BROKEN — wrong error: " + faultTrim(werr)
	case c.Err() == nil:
		return "BROKEN — deadline fault not recorded"
	}
	return "deadline error (fail-fast, fault recorded)"
}

// chaosExactSection runs the exact checkers of the execution model
// across a recovery epoch: a small PRAM run (well under the exact
// checkers' operation budget) in which the restarted node's reads are
// served from recovered state must still be exactly PRAM and slow.
func chaosExactSection(rp *reporter, seed int64) {
	c, err := partialdsm.New(partialdsm.Config{
		Consistency:    partialdsm.PRAM,
		Placement:      partialdsm.PlacementFromLists([][]string{{"x"}, {"x"}, {"x"}}),
		Transport:      partialdsm.Transport("classic"),
		Seed:           seed,
		VirtualLatency: true,
		MaxLatency:     100 * time.Microsecond,
	})
	if err != nil {
		rp.checkf(false, "exact-checker cluster: %v", err)
		return
	}
	defer c.Close()
	ok := c.Node(0).Write("x", 1) == nil && c.Quiesce() == nil &&
		c.CrashNode(1) == nil &&
		c.Node(0).Write("x", 2) == nil && c.Quiesce() == nil &&
		c.RestartNode(1) == nil && c.Quiesce() == nil
	v1, _ := c.Node(1).Read("x")
	ok = ok && c.Node(0).Write("x", 3) == nil && c.Quiesce() == nil
	v2, _ := c.Node(1).Read("x")
	verdicts, err := c.CheckHistory()
	rp.checkf(ok && v1 == 2 && v2 == 3 && err == nil && verdicts["pram"] && verdicts["slow"],
		"exact checkers: a history spanning crash → state-transfer recovery is still exactly PRAM (and slow)")
}
