package experiments

import (
	"fmt"
	"time"

	"partialdsm"
	"partialdsm/internal/workload"
)

// Policy runs experiment E22: the load-adaptive placement loop against
// a zipfian hot-key workload with a mid-run skew flip. Four nodes
// start with every variable fully replicated; the workload gives each
// node a hot slice of the variable space, and halfway through the run
// the slices rotate onto different variables. A static control keeps
// the initial placement and pays full multicast fan-out forever; the
// adaptive run drives GreedyPolicy through a PolicyDriver ticked at
// block boundaries, shedding idle replicas, re-granting them where the
// (possibly denied) demand moved, and walking each variable's owner to
// its dominant writer. The claim under test is the ISSUE's: messages
// per operation drop as the placement adapts, the loop re-converges
// after the skew flip, and — as in E20/E21 — the whole verdict table
// is rebuilt per engine and must come out byte-identical, because the
// policy decisions ride the same deterministic counters and virtual
// clock on both.
func Policy(seed int64) Report {
	rp := newReporter("E22", "adaptive placement — zipfian hot keys, mid-run skew flip; policy loop vs static control")

	protocols := []partialdsm.Consistency{partialdsm.PRAM, partialdsm.CacheConsistency}
	engines := []string{"classic", "sharded"}
	tables := make(map[string][]string)
	results := make(map[partialdsm.Consistency]map[string]policyOutcome)
	for _, engine := range engines {
		for _, cons := range protocols {
			for _, mode := range []string{"static", "adaptive"} {
				rows, out := policyRun(engine, cons, seed, mode == "adaptive")
				tables[engine] = append(tables[engine], rows...)
				if engine == "classic" {
					if results[cons] == nil {
						results[cons] = make(map[string]policyOutcome)
					}
					results[cons][mode] = out
				}
			}
		}
	}

	rp.logf("%-8s %-18s %s", "mode", "protocol", "per-phase verdict (phase 1 rotates every hot slice)")
	for _, line := range tables["classic"] {
		rp.logf("%s", line)
	}

	identical := len(tables["classic"]) == len(tables["sharded"])
	for i := range tables["classic"] {
		if !identical || tables["classic"][i] != tables["sharded"][i] {
			identical = false
			rp.logf("engine divergence at row %d:", i)
			rp.logf("  classic: %s", tables["classic"][i])
			rp.logf("  sharded: %s", tables["sharded"][i])
			break
		}
	}
	rp.checkf(identical,
		"verdict tables are byte-identical on both engines (counters, decisions and flips all deterministic)")

	for _, cons := range protocols {
		st, ad := results[cons]["static"], results[cons]["adaptive"]
		if st.broken != "" || ad.broken != "" {
			rp.checkf(false, "%s: run broken — static: %q, adaptive: %q", cons, st.broken, ad.broken)
			continue
		}
		last := policyPhases - 1
		rp.checkf(ad.msgsPerOp[last] < st.msgsPerOp[last],
			"%s: adapted placement beats the static control on msgs/op in the final phase (%.2f vs %.2f)",
			cons, ad.msgsPerOp[last], st.msgsPerOp[last])
		rp.checkf(st.epoch == 0 && ad.epoch >= 2 && ad.flips == int(ad.epoch),
			"%s: every flip came from the policy loop (static epoch %d, adaptive epoch %d over %d flips)",
			cons, st.epoch, ad.epoch, ad.flips)
		rp.checkf(ad.denied[last] < ad.denied[1],
			"%s: the loop re-converges after the skew flip — denials fall from %d (rotation phase) to %d (final phase)",
			cons, ad.denied[1], ad.denied[last])
	}
	return rp.done()
}

const (
	policyNodes    = 4
	policyVarCount = 8
	policyPhases   = 3
	policyPhaseOps = 600
	policyBlockOps = 150
)

// policyOutcome carries the numeric surface of one (engine, protocol,
// mode) run for the classic-side checks; the rows carry the same
// numbers for the engine-identity comparison.
type policyOutcome struct {
	msgsPerOp [policyPhases]float64
	denied    [policyPhases]int
	epoch     uint64
	flips     int
	broken    string
}

// policyRun drives one soak: policyPhases phases of policyPhaseOps
// zipfian accesses, quiescing every policyBlockOps operations; the hot
// slices rotate half the variable space at the start of phase 1. In
// adaptive mode a PolicyDriver tick follows every quiesce — the
// one-tick cadence makes a decision whenever virtual time moved at
// all, so the pacing is the block structure itself, identically on
// both engines.
func policyRun(engine string, cons partialdsm.Consistency, seed int64, adaptive bool) ([]string, policyOutcome) {
	mode := "static"
	if adaptive {
		mode = "adaptive"
	}
	var out policyOutcome
	fail := func(msg string) ([]string, policyOutcome) {
		out.broken = msg
		return []string{fmt.Sprintf("%-8s %-18s BROKEN — %s", mode, cons, msg)}, out
	}
	pl := partialdsm.NewPlacement(policyNodes)
	for n := 0; n < policyNodes; n++ {
		pl.Assign(n, workload.VarNames(policyVarCount)...)
	}
	c, err := partialdsm.New(partialdsm.Config{
		Consistency:    cons,
		Placement:      pl,
		Transport:      partialdsm.Transport(engine),
		Seed:           seed,
		MaxLatency:     100 * time.Microsecond,
		VirtualLatency: true,
	})
	if err != nil {
		return fail("cluster: " + err.Error())
	}
	defer c.Close()

	gen := workload.NewZipfMix(seed+13, policyNodes, policyVarCount, 1.6, 0.65)
	var driver *partialdsm.PolicyDriver
	if adaptive {
		driver = c.NewPolicyDriver(&partialdsm.GreedyPolicy{
			MinTotal:      20,
			HotThreshold:  8,
			IdleThreshold: 1,
		}, 1)
	}

	var rows []string
	for p := 0; p < policyPhases; p++ {
		if p == 1 {
			gen.Rotate(policyVarCount / 2) // the skew flip
		}
		start := c.Stats().Msgs
		denied := 0
		for k := 0; k < policyPhaseOps; k++ {
			a := gen.Next()
			h := c.Node(a.Node)
			if a.Read {
				if _, err := h.Read(a.Var); err != nil {
					denied++
				}
			} else if err := h.Write(a.Var, int64(p*policyPhaseOps+k+1)); err != nil {
				denied++
			}
			if (k+1)%policyBlockOps == 0 {
				if err := c.Quiesce(); err != nil {
					return fail(fmt.Sprintf("phase %d quiesce: %s", p, faultTrim(err)))
				}
				if driver != nil {
					if _, err := driver.Tick(); err != nil {
						return fail(fmt.Sprintf("phase %d tick: %s", p, faultTrim(err)))
					}
				}
			}
		}
		out.msgsPerOp[p] = float64(c.Stats().Msgs-start) / policyPhaseOps
		out.denied[p] = denied
		rows = append(rows, fmt.Sprintf("%-8s %-18s phase %d: %6.2f msgs/op  denied %4d  epoch %2d",
			mode, cons, p, out.msgsPerOp[p], denied, c.Epoch()))
	}
	if err := c.VerifyWitness(); err != nil {
		return fail("witness: " + faultWitnessTrim(err))
	}
	out.epoch = c.Epoch()
	if driver != nil {
		out.flips = driver.Flips()
	}
	return rows, out
}
