// Package metrics accounts for the control information that MCS
// processes exchange — the quantity the paper's efficiency notion is
// about. Every wire message is split into control bytes (identifiers,
// sequence numbers, dependency vectors) and data bytes (the written
// value); in addition, a touch matrix records which nodes ever send or
// receive information mentioning which variables.
//
// The paper's "efficient partial replication" (§3) becomes the
// checkable invariant: touch(p, x) ⇒ p ∈ C(x).
package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// Collector accumulates message and byte counts plus the per-node
// per-variable touch matrix. All methods are safe for concurrent use.
type Collector struct {
	mu        sync.Mutex
	msgs      int64
	ctrlBytes int64
	dataBytes int64
	touch     map[int]map[string]bool
	perKind   map[string]int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		touch:   make(map[int]map[string]bool),
		perKind: make(map[string]int64),
	}
}

// RecordMessage accounts one message from node `from` to node `to`
// with the given control/data byte split, carrying information about
// the listed variables. Both endpoints are marked as touching the
// variables.
func (c *Collector) RecordMessage(kind string, from, to int, ctrlBytes, dataBytes int, vars []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs++
	c.ctrlBytes += int64(ctrlBytes)
	c.dataBytes += int64(dataBytes)
	c.perKind[kind]++
	for _, node := range []int{from, to} {
		m := c.touch[node]
		if m == nil {
			m = make(map[string]bool)
			c.touch[node] = m
		}
		for _, v := range vars {
			m[v] = true
		}
	}
}

// Touched reports whether node ever sent or received information about
// variable x.
func (c *Collector) Touched(node int, x string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.touch[node][x]
}

// Stats is an immutable snapshot of a collector.
type Stats struct {
	Msgs      int64
	CtrlBytes int64
	DataBytes int64
	PerKind   map[string]int64
	// Touch maps node → sorted variables the node has information about.
	Touch map[int][]string
}

// Snapshot returns a copy of the current counters.
func (c *Collector) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Msgs:      c.msgs,
		CtrlBytes: c.ctrlBytes,
		DataBytes: c.dataBytes,
		PerKind:   make(map[string]int64, len(c.perKind)),
		Touch:     make(map[int][]string, len(c.touch)),
	}
	for k, v := range c.perKind {
		s.PerKind[k] = v
	}
	for node, vars := range c.touch {
		list := make([]string, 0, len(vars))
		for v := range vars {
			list = append(list, v)
		}
		sort.Strings(list)
		s.Touch[node] = list
	}
	return s
}

// Reset clears all counters.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs, c.ctrlBytes, c.dataBytes = 0, 0, 0
	c.touch = make(map[int]map[string]bool)
	c.perKind = make(map[string]int64)
}

// String summarizes the snapshot.
func (s Stats) String() string {
	return fmt.Sprintf("msgs=%d ctrlBytes=%d dataBytes=%d", s.Msgs, s.CtrlBytes, s.DataBytes)
}

// CtrlBytesPerMsg returns the mean control payload per message, 0 for
// an empty collector.
func (s Stats) CtrlBytesPerMsg() float64 {
	if s.Msgs == 0 {
		return 0
	}
	return float64(s.CtrlBytes) / float64(s.Msgs)
}
