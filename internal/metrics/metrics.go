// Package metrics accounts for the control information that MCS
// processes exchange — the quantity the paper's efficiency notion is
// about. Every wire message is split into control bytes (identifiers,
// sequence numbers, dependency vectors) and data bytes (the written
// value); in addition, a touch matrix records which nodes ever send or
// receive information mentioning which variables.
//
// The paper's "efficient partial replication" (§3) becomes the
// checkable invariant: touch(p, x) ⇒ p ∈ C(x).
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
)

// Collector accumulates message and byte counts plus the per-node
// per-variable touch matrix, and — when the transport simulates
// latency in virtual time — a histogram of per-message delivery
// delays, the quantity the paper's delay/efficiency trade-off is
// about. All methods are safe for concurrent use.
type Collector struct {
	mu        sync.Mutex
	msgs      int64
	ctrlBytes int64
	dataBytes int64
	touch     map[int]map[string]bool
	perKind   map[string]int64
	faults    map[string]int64

	delayN       int64
	delaySum     float64 // float accumulator: uint64 would wrap after a handful of MaxInt64-scale delays
	delayMax     uint64
	delayBuckets [65]int64 // bucket i counts delays of bit-length i: [2^(i-1), 2^i)
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		touch:   make(map[int]map[string]bool),
		perKind: make(map[string]int64),
	}
}

// RecordMessage accounts one message from node `from` to node `to`
// with the given control/data byte split, carrying information about
// the listed variables. Both endpoints are marked as touching the
// variables.
func (c *Collector) RecordMessage(kind string, from, to int, ctrlBytes, dataBytes int, vars []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs++
	c.ctrlBytes += int64(ctrlBytes)
	c.dataBytes += int64(dataBytes)
	c.perKind[kind]++
	for _, node := range []int{from, to} {
		m := c.touch[node]
		if m == nil {
			m = make(map[string]bool)
			c.touch[node] = m
		}
		for _, v := range vars {
			m[v] = true
		}
	}
}

// RecordDelay accounts one message's drawn virtual delivery delay, in
// clock ticks. Transports call it once per message in virtual-latency
// mode with the seed-derived draw (not the effective wait, which also
// folds in FIFO queueing and is scheduling-dependent); the real-sleep
// mode records nothing (wall delays are not part of the deterministic
// surface).
func (c *Collector) RecordDelay(ticks uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.delayN++
	c.delaySum += float64(ticks)
	if ticks > c.delayMax {
		c.delayMax = ticks
	}
	c.delayBuckets[bits.Len64(ticks)]++
}

// RecordFault accounts one injected network fault by kind ("drop",
// "dup", "partition", "crash"). Transports with fault injection
// enabled call it once per affected message.
func (c *Collector) RecordFault(kind string) {
	c.mu.Lock()
	if c.faults == nil {
		c.faults = make(map[string]int64)
	}
	c.faults[kind]++
	c.mu.Unlock()
}

// Touched reports whether node ever sent or received information about
// variable x.
func (c *Collector) Touched(node int, x string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.touch[node][x]
}

// Stats is an immutable snapshot of a collector.
type Stats struct {
	Msgs      int64
	CtrlBytes int64
	DataBytes int64
	PerKind   map[string]int64
	// Touch maps node → sorted variables the node has information about.
	Touch map[int][]string
	// Faults counts injected network faults by kind ("drop", "dup",
	// "partition", "crash"); nil when no fault was recorded.
	Faults map[string]int64
	// Delay summarizes the recorded virtual delivery delays; the zero
	// value (Count == 0) means the transport recorded none (real-sleep
	// or zero-latency mode).
	Delay DelayStats
}

// DelayStats summarizes a delivery-delay histogram, in virtual clock
// ticks (one tick per nanosecond of configured latency).
type DelayStats struct {
	// Count is the number of recorded delays (one per message).
	Count int64
	// MeanTicks is the arithmetic mean delay.
	MeanTicks float64
	// MaxTicks is the largest recorded delay.
	MaxTicks uint64
	// Buckets is the log₂ histogram: Buckets[i] counts delays of
	// bit-length i, i.e. in [2^(i-1), 2^i) (bucket 0 counts exact
	// zeros). Trailing empty buckets are trimmed.
	Buckets []int64
}

// QuantileTicks returns an upper-bound estimate of the q-quantile
// (0 < q ≤ 1) from the log₂ histogram: the upper edge of the bucket
// the quantile falls in, clamped to MaxTicks. Returns 0 for an empty
// histogram.
func (d DelayStats) QuantileTicks(q float64) uint64 {
	if d.Count == 0 {
		return 0
	}
	// Nearest-rank: the smallest rank covering a q fraction of the
	// samples (ceil, so the top samples are never excluded).
	rank := int64(math.Ceil(q * float64(d.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range d.Buckets {
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0
			}
			edge := uint64(1) << uint(i)
			if edge-1 > d.MaxTicks {
				return d.MaxTicks
			}
			return edge - 1
		}
	}
	return d.MaxTicks
}

// Snapshot returns a copy of the current counters.
func (c *Collector) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Msgs:      c.msgs,
		CtrlBytes: c.ctrlBytes,
		DataBytes: c.dataBytes,
		PerKind:   make(map[string]int64, len(c.perKind)),
		Touch:     make(map[int][]string, len(c.touch)),
	}
	if c.delayN > 0 {
		s.Delay = DelayStats{
			Count:     c.delayN,
			MeanTicks: c.delaySum / float64(c.delayN),
			MaxTicks:  c.delayMax,
		}
		top := 0
		for i, n := range c.delayBuckets {
			if n > 0 {
				top = i
			}
		}
		s.Delay.Buckets = append([]int64(nil), c.delayBuckets[:top+1]...)
	}
	for k, v := range c.perKind {
		s.PerKind[k] = v
	}
	if len(c.faults) > 0 {
		s.Faults = make(map[string]int64, len(c.faults))
		for k, v := range c.faults {
			s.Faults[k] = v
		}
	}
	for node, vars := range c.touch {
		list := make([]string, 0, len(vars))
		for v := range vars {
			list = append(list, v)
		}
		sort.Strings(list)
		s.Touch[node] = list
	}
	return s
}

// Reset clears all counters.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs, c.ctrlBytes, c.dataBytes = 0, 0, 0
	c.touch = make(map[int]map[string]bool)
	c.perKind = make(map[string]int64)
	c.faults = nil
	c.delayN, c.delaySum, c.delayMax = 0, 0, 0
	c.delayBuckets = [65]int64{}
}

// String summarizes the snapshot.
func (s Stats) String() string {
	return fmt.Sprintf("msgs=%d ctrlBytes=%d dataBytes=%d", s.Msgs, s.CtrlBytes, s.DataBytes)
}

// CtrlBytesPerMsg returns the mean control payload per message, 0 for
// an empty collector.
func (s Stats) CtrlBytesPerMsg() float64 {
	if s.Msgs == 0 {
		return 0
	}
	return float64(s.CtrlBytes) / float64(s.Msgs)
}
