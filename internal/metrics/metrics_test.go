package metrics

import (
	"reflect"
	"sync"
	"testing"
)

func TestRecordAndSnapshot(t *testing.T) {
	c := NewCollector()
	c.RecordMessage("upd", 0, 1, 12, 8, []string{"x", "y"})
	c.RecordMessage("ntf", 1, 2, 4, 0, []string{"x"})
	s := c.Snapshot()
	if s.Msgs != 2 || s.CtrlBytes != 16 || s.DataBytes != 8 {
		t.Fatalf("snapshot = %+v", s)
	}
	if !reflect.DeepEqual(s.Touch[0], []string{"x", "y"}) {
		t.Errorf("touch[0] = %v", s.Touch[0])
	}
	if !reflect.DeepEqual(s.Touch[2], []string{"x"}) {
		t.Errorf("touch[2] = %v", s.Touch[2])
	}
	if got := s.CtrlBytesPerMsg(); got != 8 {
		t.Errorf("CtrlBytesPerMsg = %v, want 8", got)
	}
}

func TestTouched(t *testing.T) {
	c := NewCollector()
	c.RecordMessage("upd", 3, 4, 1, 1, []string{"z"})
	if !c.Touched(3, "z") || !c.Touched(4, "z") {
		t.Error("endpoints must both be touched")
	}
	if c.Touched(5, "z") || c.Touched(3, "w") {
		t.Error("unexpected touch")
	}
}

func TestReset(t *testing.T) {
	c := NewCollector()
	c.RecordMessage("upd", 0, 1, 5, 5, []string{"x"})
	c.Reset()
	s := c.Snapshot()
	if s.Msgs != 0 || s.CtrlBytes != 0 || s.DataBytes != 0 || len(s.Touch) != 0 {
		t.Fatalf("reset left state: %+v", s)
	}
	if s.CtrlBytesPerMsg() != 0 {
		t.Error("CtrlBytesPerMsg on empty must be 0")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	c := NewCollector()
	c.RecordMessage("upd", 0, 1, 1, 1, []string{"x"})
	s := c.Snapshot()
	s.PerKind["upd"] = 99
	s.Touch[0] = append(s.Touch[0], "mutated")
	s2 := c.Snapshot()
	if s2.PerKind["upd"] != 1 || len(s2.Touch[0]) != 1 {
		t.Error("snapshot aliases collector state")
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				c.RecordMessage("upd", g, (g+1)%8, 2, 3, []string{"x"})
			}
		}(g)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Msgs != 8000 || s.CtrlBytes != 16000 || s.DataBytes != 24000 {
		t.Fatalf("lost updates: %+v", s)
	}
}

func TestStatsString(t *testing.T) {
	c := NewCollector()
	c.RecordMessage("x", 0, 0, 1, 2, nil)
	if got := c.Snapshot().String(); got != "msgs=1 ctrlBytes=1 dataBytes=2" {
		t.Errorf("String() = %q", got)
	}
}

func TestDelayHistogram(t *testing.T) {
	c := NewCollector()
	if d := c.Snapshot().Delay; d.Count != 0 || d.Buckets != nil {
		t.Fatalf("fresh collector has delay stats: %+v", d)
	}
	for _, ticks := range []uint64{0, 1, 1, 3, 1000, 1_000_000} {
		c.RecordDelay(ticks)
	}
	d := c.Snapshot().Delay
	if d.Count != 6 {
		t.Fatalf("count = %d, want 6", d.Count)
	}
	if want := float64(0+1+1+3+1000+1_000_000) / 6; d.MeanTicks != want {
		t.Errorf("mean = %f, want %f", d.MeanTicks, want)
	}
	if d.MaxTicks != 1_000_000 {
		t.Errorf("max = %d, want 1000000", d.MaxTicks)
	}
	// Bucket layout: 0 → bucket 0; 1,1 → bucket 1; 3 → bucket 2;
	// 1000 → bucket 10; 1e6 → bucket 20 (and trailing trim).
	if len(d.Buckets) != 21 || d.Buckets[0] != 1 || d.Buckets[1] != 2 || d.Buckets[2] != 1 ||
		d.Buckets[10] != 1 || d.Buckets[20] != 1 {
		t.Errorf("buckets = %v", d.Buckets)
	}
	// Quantiles: rank 3 of {0,1,1,3,1000,1e6} lands in the [1,2)
	// bucket (upper edge 1); the max quantile clamps to MaxTicks.
	if q := d.QuantileTicks(0.5); q != 1 {
		t.Errorf("p50 = %d, want 1", q)
	}
	if q := d.QuantileTicks(0.6); q != 3 {
		t.Errorf("p60 = %d, want 3 (nearest rank ceil(3.6)=4 lands in the [2,4) bucket)", q)
	}
	// Nearest-rank must include the top sample at high quantiles even
	// for small counts: 49 fast samples + 1 slow one, p99 → the slow.
	var many Collector
	for i := 0; i < 49; i++ {
		many.RecordDelay(1)
	}
	many.RecordDelay(1_000_000)
	if q := many.Snapshot().Delay.QuantileTicks(0.99); q != 1_000_000 {
		t.Errorf("p99 of 49×1+1×1e6 = %d, want 1000000", q)
	}
	if q := d.QuantileTicks(1.0); q != 1_000_000 {
		t.Errorf("p100 = %d, want 1000000", q)
	}
	if q := (DelayStats{}).QuantileTicks(0.99); q != 0 {
		t.Errorf("empty histogram p99 = %d", q)
	}
	c.Reset()
	if d := c.Snapshot().Delay; d.Count != 0 {
		t.Fatalf("Reset kept delay stats: %+v", d)
	}
}
