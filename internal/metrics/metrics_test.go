package metrics

import (
	"reflect"
	"sync"
	"testing"
)

func TestRecordAndSnapshot(t *testing.T) {
	c := NewCollector()
	c.RecordMessage("upd", 0, 1, 12, 8, []string{"x", "y"})
	c.RecordMessage("ntf", 1, 2, 4, 0, []string{"x"})
	s := c.Snapshot()
	if s.Msgs != 2 || s.CtrlBytes != 16 || s.DataBytes != 8 {
		t.Fatalf("snapshot = %+v", s)
	}
	if !reflect.DeepEqual(s.Touch[0], []string{"x", "y"}) {
		t.Errorf("touch[0] = %v", s.Touch[0])
	}
	if !reflect.DeepEqual(s.Touch[2], []string{"x"}) {
		t.Errorf("touch[2] = %v", s.Touch[2])
	}
	if got := s.CtrlBytesPerMsg(); got != 8 {
		t.Errorf("CtrlBytesPerMsg = %v, want 8", got)
	}
}

func TestTouched(t *testing.T) {
	c := NewCollector()
	c.RecordMessage("upd", 3, 4, 1, 1, []string{"z"})
	if !c.Touched(3, "z") || !c.Touched(4, "z") {
		t.Error("endpoints must both be touched")
	}
	if c.Touched(5, "z") || c.Touched(3, "w") {
		t.Error("unexpected touch")
	}
}

func TestReset(t *testing.T) {
	c := NewCollector()
	c.RecordMessage("upd", 0, 1, 5, 5, []string{"x"})
	c.Reset()
	s := c.Snapshot()
	if s.Msgs != 0 || s.CtrlBytes != 0 || s.DataBytes != 0 || len(s.Touch) != 0 {
		t.Fatalf("reset left state: %+v", s)
	}
	if s.CtrlBytesPerMsg() != 0 {
		t.Error("CtrlBytesPerMsg on empty must be 0")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	c := NewCollector()
	c.RecordMessage("upd", 0, 1, 1, 1, []string{"x"})
	s := c.Snapshot()
	s.PerKind["upd"] = 99
	s.Touch[0] = append(s.Touch[0], "mutated")
	s2 := c.Snapshot()
	if s2.PerKind["upd"] != 1 || len(s2.Touch[0]) != 1 {
		t.Error("snapshot aliases collector state")
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				c.RecordMessage("upd", g, (g+1)%8, 2, 3, []string{"x"})
			}
		}(g)
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Msgs != 8000 || s.CtrlBytes != 16000 || s.DataBytes != 24000 {
		t.Fatalf("lost updates: %+v", s)
	}
}

func TestStatsString(t *testing.T) {
	c := NewCollector()
	c.RecordMessage("x", 0, 0, 1, 2, nil)
	if got := c.Snapshot().String(); got != "msgs=1 ctrlBytes=1 dataBytes=2" {
		t.Errorf("String() = %q", got)
	}
}
