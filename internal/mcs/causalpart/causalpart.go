// Package causalpart implements causal consistency under partial
// replication — the configuration the paper proves cannot be efficient
// (§3): to preserve causality across hoops, control information about a
// variable must reach processes that do not replicate it.
//
// # Protocol
//
// Values travel only to the replica clique C(x), but every write also
// fans out a control notification, and every message piggybacks a
// dependency list of per-(writer, variable) counters describing the
// causal past of the write:
//
//   - each node tracks cnt[j][y], the number of j's writes to y whose
//     notifications it has delivered, for every variable y it is
//     notified about;
//   - a write by i on x is sent to a notification set N(x) ⊇ C(x);
//     the copy for receiver r carries the entries (j, y, cnt[j][y]) for
//     variables y in both i's and r's notification interest — the
//     control information about *other* variables the paper's
//     Theorem 1 shows is unavoidable;
//   - receiver r delivers the write once its own counters dominate the
//     dependency list (exact match on the writer's own (i,x) stream,
//     ≥ elsewhere), applies the value if r ∈ C(x), and bumps cnt[i][x].
//
// Dependency domination makes every node's delivery order a linear
// extension of the causality order restricted to the writes it sees
// (validated against check.WitnessCausal), because every causal chain
// between two operations on variables of interest runs through
// processes that are themselves notified of the dependency — the
// constructive reading of Theorem 1's sufficiency proof.
//
// # Modes
//
// ModeBroadcast notifies every node of every write: the general-
// distribution case ("any process is likely to belong to any hoop",
// §3.3). The touch matrix becomes all-ones and control volume grows
// with the whole system.
//
// ModeHoopAware exploits a statically known distribution: write
// notifications for x go only to the x-relevant processes of Theorem 1
// (C(x) plus all x-hoop members), and dependency entries are pruned to
// variables relevant to both endpoints. This is the "ad-hoc
// implementation … optimally designed" the paper sketches in §3.3:
// still causal, but information about x never reaches x-irrelevant
// processes.
package causalpart

import (
	"fmt"
	"sort"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/model"
	"partialdsm/internal/netsim"
)

// Message kinds. Updates carry the written value (to C(x)),
// notifications carry control information only (to N(x) ∖ C(x)).
const (
	KindUpdate = "causalpart.update"
	KindNotify = "causalpart.notify"
)

// Mode selects the notification strategy.
type Mode int

const (
	// ModeBroadcast notifies every node of every write.
	ModeBroadcast Mode = iota
	// ModeHoopAware notifies exactly the x-relevant processes of
	// Theorem 1, using the statically known share graph.
	ModeHoopAware
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeHoopAware {
		return "hoop-aware"
	}
	return "broadcast"
}

// depEntry is one piggybacked dependency: "writer j has issued `count`
// writes to variable y (by index) in my causal past".
type depEntry struct {
	writer int
	varIdx int
	count  uint32
}

// pendingMsg is a buffered undeliverable message.
type pendingMsg struct {
	writer   int
	wseq     int
	varIdx   int
	hasValue bool
	v        int64
	deps     []depEntry
}

// Node is one causal partial-replication MCS process.
type Node struct {
	cfg  mcs.Config
	mode Mode
	id   int

	vars     []string       // static variable universe, sorted
	varIdx   map[string]int // name → index
	interest []bool         // interest[y] — this node is in N(vars[y])
	relOf    [][]bool       // relOf[y][p] — p is in N(vars[y])
	cliques  map[int][]int  // varIdx → C(x)
	notifies map[int][]int  // varIdx → N(x) minus self

	mu       sync.Mutex
	replicas map[string]int64
	wseq     int
	cnt      [][]uint32 // cnt[j][y]: delivered writes of j to vars[y]
	pending  []pendingMsg
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config, mode Mode) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Placement.NumProcs()
	vars := append([]string(nil), cfg.Placement.Vars()...)
	sort.Strings(vars)
	varIdx := make(map[string]int, len(vars))
	for i, v := range vars {
		varIdx[v] = i
	}
	// Notification sets per variable.
	relOf := make([][]bool, len(vars))
	for yi, y := range vars {
		relOf[yi] = make([]bool, n)
		switch mode {
		case ModeBroadcast:
			for p := 0; p < n; p++ {
				relOf[yi][p] = true
			}
		case ModeHoopAware:
			for _, p := range cfg.Placement.XRelevant(y) {
				relOf[yi][p] = true
			}
		default:
			return nil, fmt.Errorf("causalpart: unknown mode %d", mode)
		}
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			mode:     mode,
			id:       i,
			vars:     vars,
			varIdx:   varIdx,
			relOf:    relOf,
			cliques:  make(map[int][]int),
			notifies: make(map[int][]int),
			replicas: make(map[string]int64),
			cnt:      make([][]uint32, n),
			interest: make([]bool, len(vars)),
		}
		for j := range node.cnt {
			node.cnt[j] = make([]uint32, len(vars))
		}
		for yi, y := range vars {
			node.interest[yi] = relOf[yi][i]
			node.cliques[yi] = cfg.Placement.Clique(y)
			for p := 0; p < n; p++ {
				if p != i && relOf[yi][p] {
					node.notifies[yi] = append(node.notifies[yi], p)
				}
			}
		}
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Write performs w_i(x)v: apply locally, then fan out updates to C(x)
// and notifications to the rest of N(x), each carrying the dependency
// list pruned to the receiver's interest.
func (n *Node) Write(x string, v int64) error {
	if !n.cfg.Placement.Holds(n.id, x) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	xi, ok := n.varIdx[x]
	if !ok {
		return fmt.Errorf("causalpart: node %d: variable %s not in the static universe", n.id, x)
	}

	type outMsg struct {
		to      int
		kind    string
		payload []byte
		ctrl    int
		data    int
		vars    []string
	}
	var outs []outMsg

	n.mu.Lock()
	wseq := n.wseq
	n.wseq++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, x, v)
		rec.RecordApply(n.id, n.id, wseq, x, v)
	}
	n.replicas[x] = v
	inClique := make(map[int]bool, len(n.cliques[xi]))
	for _, p := range n.cliques[xi] {
		inClique[p] = true
	}
	for _, r := range n.notifies[xi] {
		deps, touched := n.depsForLocked(r, xi)
		hasValue := inClique[r]
		var enc mcs.Enc
		enc.U32(uint32(n.id)).U32(uint32(wseq)).U32(uint32(xi))
		if hasValue {
			enc.U32(1).I64(v)
		} else {
			enc.U32(0)
		}
		encodeDeps(&enc, deps)
		payload := enc.Bytes()
		data := 0
		if hasValue {
			data = 8
		}
		kind := KindNotify
		if hasValue {
			kind = KindUpdate
		}
		outs = append(outs, outMsg{
			to: r, kind: kind, payload: payload,
			ctrl: len(payload) - data, data: data,
			vars: touched,
		})
	}
	// Count the new write after computing dependency lists: the lists
	// describe its causal past, excluding itself.
	n.cnt[n.id][xi]++
	n.mu.Unlock()

	for _, m := range outs {
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: m.to, Kind: m.kind,
			Payload: m.payload, CtrlBytes: m.ctrl, DataBytes: m.data,
			Vars: m.vars,
		})
	}
	return nil
}

// depsForLocked builds the dependency list for receiver r of a write on
// vars[xi]: every nonzero counter (j, y) with y in both endpoints'
// interest, plus the writer's own (i, xi) stream entry (always present,
// possibly zero — it sequences the stream). It also returns the list of
// variable names the message mentions, for the touch matrix.
func (n *Node) depsForLocked(r, xi int) ([]depEntry, []string) {
	var deps []depEntry
	varSet := map[int]bool{xi: true}
	for j := range n.cnt {
		for yi, c := range n.cnt[j] {
			if j == n.id && yi == xi {
				continue // own stream entry added explicitly below
			}
			if c == 0 || !n.interest[yi] || !n.relOf[yi][r] {
				continue
			}
			deps = append(deps, depEntry{writer: j, varIdx: yi, count: c})
			varSet[yi] = true
		}
	}
	deps = append(deps, depEntry{writer: n.id, varIdx: xi, count: n.cnt[n.id][xi]})
	names := make([]string, 0, len(varSet))
	for yi := range varSet {
		names = append(names, n.vars[yi])
	}
	sort.Strings(names)
	return deps, names
}

// encodeDeps appends the dependency list to the payload.
func encodeDeps(enc *mcs.Enc, deps []depEntry) {
	enc.U32(uint32(len(deps)))
	for _, d := range deps {
		enc.U32(uint32(d.writer)).U32(uint32(d.varIdx)).U32(d.count)
	}
}

// Read performs r_i(x) wait-free on the local replica.
func (n *Node) Read(x string) (int64, error) {
	if !n.cfg.Placement.Holds(n.id, x) {
		return 0, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	v, ok := n.replicas[x]
	if !ok {
		v = model.Bottom
	}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, x, v)
	}
	n.mu.Unlock()
	return v, nil
}

// handle buffers the incoming write and drains the pending set.
func (n *Node) handle(msg netsim.Message) {
	d := mcs.NewDec(msg.Payload)
	pm := pendingMsg{
		writer: int(d.U32()),
		wseq:   int(d.U32()),
		varIdx: int(d.U32()),
	}
	if d.U32() == 1 {
		pm.hasValue = true
		pm.v = d.I64()
	}
	nDeps := int(d.U32())
	pm.deps = make([]depEntry, 0, nDeps)
	for k := 0; k < nDeps; k++ {
		pm.deps = append(pm.deps, depEntry{
			writer: int(d.U32()),
			varIdx: int(d.U32()),
			count:  d.U32(),
		})
	}
	if err := d.Err(); err != nil {
		panic(fmt.Sprintf("causalpart: node %d: malformed message from %d: %v", n.id, msg.From, err))
	}
	n.mu.Lock()
	n.pending = append(n.pending, pm)
	n.drainLocked()
	n.mu.Unlock()
}

// deliverableLocked checks dependency domination: the writer's own
// stream entry must match the local counter exactly (in-order delivery
// per (writer, variable) stream); every other entry must already be
// dominated.
func (n *Node) deliverableLocked(pm pendingMsg) bool {
	for _, dep := range pm.deps {
		local := n.cnt[dep.writer][dep.varIdx]
		if dep.writer == pm.writer && dep.varIdx == pm.varIdx {
			if local != dep.count {
				return false
			}
		} else if local < dep.count {
			return false
		}
	}
	return true
}

// drainLocked delivers pending writes until a fixpoint.
func (n *Node) drainLocked() {
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(n.pending); i++ {
			pm := n.pending[i]
			if !n.deliverableLocked(pm) {
				continue
			}
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			n.cnt[pm.writer][pm.varIdx]++
			if pm.hasValue {
				x := n.vars[pm.varIdx]
				n.replicas[x] = pm.v
				if rec := n.cfg.Recorder; rec != nil {
					rec.RecordApply(n.id, pm.writer, pm.wseq, x, pm.v)
				}
			}
			progress = true
			i--
		}
	}
}

var _ mcs.Node = (*Node)(nil)
