// Package causalpart implements causal consistency under partial
// replication — the configuration the paper proves cannot be efficient
// (§3): to preserve causality across hoops, control information about a
// variable must reach processes that do not replicate it.
//
// # Protocol
//
// Values travel only to the replica clique C(x), but every write also
// fans out a control notification, and every message piggybacks a
// dependency list of per-(writer, variable) counters describing the
// causal past of the write:
//
//   - each node tracks cnt[j][y], the number of j's writes to y whose
//     notifications it has delivered, for every variable y it is
//     notified about;
//   - a write by i on x is sent to a notification set N(x) ⊇ C(x);
//     the copy for receiver r carries the entries (j, y, cnt[j][y]) for
//     variables y in both i's and r's notification interest — the
//     control information about *other* variables the paper's
//     Theorem 1 shows is unavoidable;
//   - receiver r delivers the write once its own counters dominate the
//     dependency list (exact match on the writer's own (i,x) stream,
//     ≥ elsewhere), applies the value if r ∈ C(x), and bumps cnt[i][x].
//
// Dependency domination makes every node's delivery order a linear
// extension of the causality order restricted to the writes it sees
// (validated against check.WitnessCausal), because every causal chain
// between two operations on variables of interest runs through
// processes that are themselves notified of the dependency — the
// constructive reading of Theorem 1's sufficiency proof.
//
// # Modes
//
// ModeBroadcast notifies every node of every write: the general-
// distribution case ("any process is likely to belong to any hoop",
// §3.3). The touch matrix becomes all-ones and control volume grows
// with the whole system.
//
// ModeHoopAware exploits a statically known distribution: write
// notifications for x go only to the x-relevant processes of Theorem 1
// (C(x) plus all x-hoop members), and dependency entries are pruned to
// variables relevant to both endpoints. This is the "ad-hoc
// implementation … optimally designed" the paper sketches in §3.3:
// still causal, but information about x never reaches x-irrelevant
// processes.
//
// # Hot path
//
// Variables are interned VarIDs throughout; the per-receiver dependency
// list is encoded in a single pass straight into the coalescing
// outboxes (one for value updates, one for notifications), and the
// receive path checks dependency domination while decoding, copying a
// record's raw bytes into the pending buffer only when it cannot be
// delivered yet.
package causalpart

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// Message kinds. Updates carry the written value (to C(x)),
// notifications carry control information only (to N(x) ∖ C(x)). Both
// are batched frames of records
// (U32 wseq, U32 varID, OptVal value, U32 nDeps,
// nDeps × (U32 writer, U32 varID, U32 count)).
const (
	KindUpdate = "causalpart.update"
	KindNotify = "causalpart.notify"
)

// Mode selects the notification strategy.
type Mode int

const (
	// ModeBroadcast notifies every node of every write.
	ModeBroadcast Mode = iota
	// ModeHoopAware notifies exactly the x-relevant processes of
	// Theorem 1, using the statically known share graph.
	ModeHoopAware
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeHoopAware {
		return "hoop-aware"
	}
	return "broadcast"
}

// pendingRec is a buffered undeliverable record: the raw wire bytes
// (pool-backed) plus the sending writer.
type pendingRec struct {
	writer int
	raw    []byte
}

// Node is one causal partial-replication MCS process.
type Node struct {
	cfg  mcs.Config
	mode Mode
	id   int
	ix   *sharegraph.Index

	// Relevance tables for the current epoch; an epoch flip replaces
	// them wholesale (never mutates — epoch 0's tables are shared
	// across nodes), so reads belong under mu.
	interest []bool   // interest[y] — this node is in N(vars[y])
	relOf    [][]bool // relOf[y][p] — p is in N(vars[y])
	notifies [][]int  // VarID → N(x) minus self

	mu       sync.Mutex
	replicas mcs.Replicas   // by VarID
	tags     []mcs.WriteTag // by VarID: last applied write (for snapshots)
	wseq     int
	cnt      [][]uint32 // cnt[j][y]: delivered writes of j to vars[y]
	pending  []pendingRec
	names    []string // per-write scratch for the touch list

	rcv       *mcs.Recovery
	rejoining bool

	// Epoch reconfiguration: dependency lists entangle every variable,
	// so the fence covers all writes for the transition window.
	rcf   *mcs.Reconfig
	fence mcs.Fence

	outUpd *mcs.Outbox
	outNtf *mcs.Outbox
}

// relevanceOf computes the per-variable notification sets N(x) for an
// index: every process in broadcast mode, the x-relevant processes of
// Theorem 1 in hoop-aware mode. Epoch flips call it against the next
// index to rebuild the tables under the new placement.
func relevanceOf(ix *sharegraph.Index, mode Mode) [][]bool {
	n := ix.NumProcs()
	relOf := make([][]bool, ix.NumVars())
	var pl *sharegraph.Placement
	if mode == ModeHoopAware {
		pl = ix.AsPlacement()
	}
	for yi := range relOf {
		relOf[yi] = make([]bool, n)
		if mode == ModeHoopAware {
			for _, p := range pl.XRelevant(ix.Name(yi)) {
				relOf[yi][p] = true
			}
		} else {
			for p := 0; p < n; p++ {
				relOf[yi][p] = true
			}
		}
	}
	return relOf
}

// nodeTables derives one node's interest vector and notification lists
// from the per-variable relevance sets.
func nodeTables(relOf [][]bool, id int) (interest []bool, notifies [][]int) {
	interest = make([]bool, len(relOf))
	notifies = make([][]int, len(relOf))
	for yi := range relOf {
		interest[yi] = relOf[yi][id]
		for p, in := range relOf[yi] {
			if p != id && in {
				notifies[yi] = append(notifies[yi], p)
			}
		}
	}
	return interest, notifies
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config, mode Mode) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mode != ModeBroadcast && mode != ModeHoopAware {
		return nil, fmt.Errorf("causalpart: unknown mode %d", mode)
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	numVars := ix.NumVars()
	relOf := relevanceOf(ix, mode)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			mode:     mode,
			id:       i,
			ix:       ix,
			relOf:    relOf,
			replicas: mcs.NewReplicas(numVars),
			tags:     mcs.NewWriteTags(numVars),
			cnt:      make([][]uint32, n),
			outUpd:   mcs.NewOutbox(cfg.Net, i, KindUpdate, cfg.CoalesceBatch),
			outNtf:   mcs.NewOutbox(cfg.Net, i, KindNotify, cfg.CoalesceBatch),
		}
		for j := range node.cnt {
			node.cnt[j] = make([]uint32, numVars)
		}
		node.interest, node.notifies = nodeTables(relOf, i)
		node.rcv = mcs.NewRecovery(cfg, i, &node.mu)
		node.rcv.OnDone = node.finishRejoinLocked
		node.rcf = mcs.NewReconfig(cfg, i, &node.mu, node, ix)
		cfg.ApplyFlushPolicy(&node.mu, node.outUpd, node.outNtf)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Write performs w_i(x)v: apply locally, then stage updates to C(x)
// and notifications to the rest of N(x), each carrying the dependency
// list pruned to the receiver's interest.
func (n *Node) Put(x string, v []byte) error {
	n.mu.Lock()
	xi := n.ix.ID(x)
	if err := n.fence.WaitLocked(n.cfg, n.id, xi, x); err != nil {
		n.mu.Unlock()
		return err
	}
	// Re-check against the possibly flipped index: the fence lifts at
	// the epoch boundary, and this node may have shed the variable.
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	name := n.ix.Name(xi)
	wseq := n.wseq
	n.wseq++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, name, v)
		rec.RecordApply(n.id, n.id, wseq, name, v)
	}
	n.replicas.Set(xi, v)
	n.tags[xi] = mcs.WriteTag{Writer: n.id, WSeq: wseq}
	for _, r := range n.notifies[xi] {
		hasValue := n.ix.Holds(r, xi)
		out := n.outNtf
		if hasValue {
			out = n.outUpd
		}
		enc := out.Stage()
		enc.U32(uint32(wseq)).U32(uint32(xi))
		data := 0
		if hasValue {
			enc.OptVal(v, true)
			data = len(v)
		} else {
			enc.OptVal(nil, false)
		}
		n.encodeDepsLocked(enc, r, xi)
		ctrl := enc.Len() - data
		out.AddToVars(r, n.names, ctrl, data)
	}
	// Count the new write after building the dependency lists: the
	// lists describe its causal past, excluding itself.
	n.cnt[n.id][xi]++
	n.mu.Unlock()
	return nil
}

// PutAsync is Put: causal partial-replication writes are wait-free.
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	return mcs.Done, n.Put(x, v)
}

// encodeDepsLocked appends receiver r's dependency list for a write on
// vars[xi] to enc: every nonzero counter (j, y) with y in both
// endpoints' interest, plus the writer's own (i, xi) stream entry
// (always present, possibly zero — it sequences the stream). It leaves
// the variables the record mentions in n.names (scratch, reused per
// receiver).
func (n *Node) encodeDepsLocked(enc *mcs.Enc, r, xi int) {
	countPos := enc.Len()
	enc.U32(0) // dependency count, patched below
	n.names = append(n.names[:0], n.ix.Name(xi))
	deps := 0
	for j := range n.cnt {
		for yi, c := range n.cnt[j] {
			if j == n.id && yi == xi {
				continue // own stream entry added explicitly below
			}
			if c == 0 || !n.interest[yi] || !n.relOf[yi][r] {
				continue
			}
			enc.U32(uint32(j)).U32(uint32(yi)).U32(c)
			deps++
			n.names = append(n.names, n.ix.Name(yi))
		}
	}
	enc.U32(uint32(n.id)).U32(uint32(xi)).U32(n.cnt[n.id][xi])
	deps++
	enc.PatchU32(countPos, uint32(deps))
}

// Get performs r_i(x) wait-free on the local replica, flushing any
// coalesced messages first.
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	n.mu.Lock()
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	if n.outUpd.HasPending() || n.outNtf.HasPending() {
		n.outUpd.Flush()
		n.outNtf.Flush()
	}
	dst = append(dst[:0], n.replicas.Get(xi)...)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	n.mu.Unlock()
	// A polling reader drives buffered writers' flush deadlines (one
	// nudge covers both outboxes — they share the transport clock).
	n.outUpd.Nudge()
	return dst, nil
}

// BeginBatch suspends flushing on both outboxes (mcs.Batcher).
func (n *Node) BeginBatch() {
	n.mu.Lock()
	n.outUpd.Hold()
	n.outNtf.Hold()
	n.mu.Unlock()
}

// EndBatch flushes everything staged since BeginBatch (mcs.Batcher).
func (n *Node) EndBatch() {
	n.mu.Lock()
	n.outUpd.Release()
	n.outNtf.Release()
	n.mu.Unlock()
}

// FlushUpdates sends all buffered messages (mcs.Flusher).
func (n *Node) FlushUpdates() {
	n.mu.Lock()
	n.outUpd.Flush()
	n.outNtf.Flush()
	n.mu.Unlock()
}

// handle dispatches on message kind: steady-state update/notify frames
// plus the two crash-recovery kinds.
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindUpdate, KindNotify:
		n.handleFrame(msg)
	case mcs.KindSnapReq:
		n.handleSnapReq(msg)
	case mcs.KindSnapResp:
		n.handleSnapResp(msg)
	default:
		if mcs.IsEpochKind(msg.Kind) {
			n.rcf.Handle(msg)
			return
		}
		n.cfg.Faultf(n.id, "causalpart: node %d: unknown message kind %q", n.id, msg.Kind)
		mcs.RecycleFrame(msg)
	}
}

// handleFrame processes a batched frame: each record is checked for
// dependency domination while it is decoded; deliverable records apply
// immediately (then drain the pending set), stale ones — already
// counted duplicates or snapshot-covered pre-crash stragglers — are
// dropped, and the rest are copied into the pending buffer. During a
// rejoin window every record pends: the counters are being re-learned
// from peer snapshots.
func (n *Node) handleFrame(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	count := int(d.U32())
	if d.Err() != nil {
		n.cfg.Faultf(n.id, "causalpart: node %d: malformed frame from %d: %v", n.id, msg.From, d.Err())
		return
	}
	n.mu.Lock()
	for k := 0; k < count; k++ {
		start := len(msg.Payload) - d.Rest()
		applied, stale, faulted := n.tryRecordLocked(&d, msg.From)
		if faulted {
			// tryRecordLocked already reported; drop the rest of the frame.
			n.mu.Unlock()
			return
		}
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "causalpart: node %d: malformed record from %d: %v", n.id, msg.From, err)
			return
		}
		switch {
		case applied:
			n.drainLocked()
		case stale:
			// Already reflected; nothing to buffer.
		default:
			end := len(msg.Payload) - d.Rest()
			raw := append(mcs.GetPayload(), msg.Payload[start:end]...)
			n.pending = append(n.pending, pendingRec{writer: msg.From, raw: raw})
		}
	}
	n.mu.Unlock()
}

// tryRecordLocked decodes one record written by writer and applies it
// when its dependency list is dominated by the local counters, bumping
// cnt[writer][x]. A record whose own-stream counter is below the local
// one is stale — an injected duplicate, or a pre-crash straggler a
// snapshot merge already counted — and must be dropped, not buffered.
// It always consumes exactly one record from d; the caller checks
// d.Err. A record naming out-of-range ids is reported through
// Config.Faultf (under the node lock — the sink must not call back
// into the node) and flagged faulted; the caller drops it.
func (n *Node) tryRecordLocked(d *mcs.Dec, writer int) (applied, stale, faulted bool) {
	wseq := int(d.U32())
	xi := int(d.U32())
	v, hasValue := d.OptVal()
	nDeps := int(d.U32())
	if d.Err() != nil {
		return false, false, false
	}
	if writer < 0 || writer >= len(n.cnt) || xi < 0 || xi >= n.ix.NumVars() {
		n.cfg.Faultf(n.id, "causalpart: node %d: record from %d out of range (writer %d, VarID %d)",
			n.id, writer, writer, xi)
		return false, false, true
	}
	ok := true
	for k := 0; k < nDeps; k++ {
		dw := int(d.U32())
		dy := int(d.U32())
		dc := d.U32()
		if d.Err() != nil {
			return false, false, false
		}
		if dw < 0 || dw >= len(n.cnt) || dy < 0 || dy >= n.ix.NumVars() {
			n.cfg.Faultf(n.id, "causalpart: node %d: dependency from %d out of range (%d, %d)",
				n.id, writer, dw, dy)
			return false, false, true
		}
		local := n.cnt[dw][dy]
		if dw == writer && dy == xi {
			// In-order delivery per (writer, variable) stream.
			if !n.rejoining && dc < local {
				stale = true
			}
			if local != dc {
				ok = false
			}
		} else if local < dc {
			ok = false
		}
	}
	if stale {
		return false, true, false
	}
	if n.rejoining || !ok {
		return false, false, false
	}
	n.cnt[writer][xi]++
	// The sender flagged the value for our *sender-side* view of C(x);
	// across an epoch flip that view can disagree with ours. Count the
	// delivery either way, but install the value only if we replicate
	// the variable under the current epoch or the pending one — an
	// old-epoch straggler for a shed variable must not resurrect state
	// the flip wiped.
	if hasValue && (n.ix.Holds(n.id, xi) || n.rcf.PendingHoldsLocked(n.id, xi)) {
		n.replicas.Set(xi, v)
		n.tags[xi] = mcs.WriteTag{Writer: writer, WSeq: wseq}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordApply(n.id, writer, wseq, n.ix.Name(xi), v)
		}
	}
	return true, false, false
}

// drainLocked delivers pending records until a fixpoint, discarding
// stale ones. Pending records passed tryRecordLocked's range checks
// before they were buffered, so a faulted retry cannot happen; it is
// still handled (the record is discarded) to keep the drop-on-fault
// contract local.
func (n *Node) drainLocked() {
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(n.pending); i++ {
			pd := mcs.DecOf(n.pending[i].raw)
			applied, stale, faulted := n.tryRecordLocked(&pd, n.pending[i].writer)
			if !applied && !stale && !faulted {
				continue
			}
			mcs.PutPayload(n.pending[i].raw)
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			progress = true
			i--
		}
	}
}

// handleSnapReq answers a rejoining peer with the counter columns of
// every variable both nodes are notified about, plus tagged values for
// the variables both replicate. Entries stay within the requester's
// notification interest, so hoop-aware recovery traffic respects the
// same relevance bound (Theorem 1) as steady-state notifications.
func (n *Node) handleSnapReq(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "causalpart: node %d: malformed snapshot request from %d: %v", n.id, msg.From, err)
		return
	}
	if msg.From < 0 || msg.From >= len(n.cnt) {
		n.cfg.Faultf(n.id, "causalpart: node %d: snapshot request from unknown node %d", n.id, msg.From)
		return
	}
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(epoch)
	var vars []string
	seen := make(map[int]bool)
	n.mu.Lock()
	cntPos := enc.Len()
	enc.U32(0)
	nCnt := 0
	for j := range n.cnt {
		for yi, c := range n.cnt[j] {
			if c == 0 || !n.interest[yi] || !n.relOf[yi][msg.From] {
				continue
			}
			enc.U32(uint32(j)).U32(uint32(yi)).U32(c)
			nCnt++
			if !seen[yi] {
				seen[yi] = true
				vars = append(vars, n.ix.Name(yi))
			}
		}
	}
	enc.PatchU32(cntPos, uint32(nCnt))
	valPos := enc.Len()
	enc.U32(0)
	nVals, data := 0, 0
	for _, xi := range n.ix.VarIDs(n.id) {
		t := n.tags[xi]
		if t.Writer < 0 || !n.ix.Holds(msg.From, xi) {
			continue
		}
		v := n.replicas.Get(xi)
		enc.U32(uint32(t.Writer)).U32(uint32(t.WSeq)).VarVal(xi, v)
		if !seen[xi] {
			seen[xi] = true
			vars = append(vars, n.ix.Name(xi))
		}
		data += len(v)
		nVals++
	}
	n.mu.Unlock()
	enc.PatchU32(valPos, uint32(nVals))
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From:      n.id,
		To:        msg.From,
		Kind:      mcs.KindSnapResp,
		Payload:   payload,
		CtrlBytes: len(payload) - data,
		DataBytes: data,
		Vars:      vars,
	})
}

// handleSnapResp merges one peer snapshot: counter columns max-merge
// (the requester's causal view now covers everything any answering
// peer had delivered) and values adopt unless the local tag already
// reflects a same-writer write at least as new.
//
// Counters for a variable this node replicates only merge from peers
// that also replicate it. A notify-interest peer counts writer streams
// it holds no value for, so its snapshot can be "newer" than the
// newest value any co-holder offered — adopting that counter would
// make the co-holder's in-flight update for the same stream position
// drain as a stale duplicate and pin the replica at the old value
// forever (the retransmit layer never redelivers an acked frame). A
// co-holder's counter cannot tear this way: it advances atomically
// with the value application it describes, and the same snapshot frame
// carries that value.
func (n *Node) handleSnapResp(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	nCnt := int(d.U32())
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "causalpart: node %d: malformed snapshot from %d: %v", n.id, msg.From, err)
		return
	}
	n.mu.Lock()
	if !n.rcv.Accept(msg.From, epoch) {
		n.mu.Unlock()
		return
	}
	for k := 0; k < nCnt; k++ {
		j := int(d.U32())
		yi := int(d.U32())
		c := d.U32()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "causalpart: node %d: malformed snapshot counter from %d: %v", n.id, msg.From, err)
			return
		}
		if j < 0 || j >= len(n.cnt) || yi < 0 || yi >= n.ix.NumVars() {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "causalpart: node %d: snapshot counter from %d out of range (%d, %d)",
				n.id, msg.From, j, yi)
			return
		}
		if j != n.id && c > n.cnt[j][yi] &&
			(!n.ix.Holds(n.id, yi) || n.ix.Holds(msg.From, yi)) {
			n.cnt[j][yi] = c
		}
	}
	nVals := int(d.U32())
	if err := d.Err(); err != nil {
		n.mu.Unlock()
		n.cfg.Faultf(n.id, "causalpart: node %d: malformed snapshot from %d: %v", n.id, msg.From, err)
		return
	}
	for k := 0; k < nVals; k++ {
		w := int(d.U32())
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "causalpart: node %d: malformed snapshot entry from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= n.ix.NumVars() || w < 0 || w >= len(n.cnt) {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "causalpart: node %d: snapshot entry from %d names unknown VarID %d / writer %d",
				n.id, msg.From, xi, w)
			return
		}
		if n.tags[xi].Stale(w, s) {
			continue
		}
		n.replicas.Set(xi, v)
		n.tags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordRecover(n.id, w, s, n.ix.Name(xi), v)
		}
	}
	n.rcv.FinishResponse()
	n.mu.Unlock()
}

// finishRejoinLocked closes the rejoin window (Recovery.OnDone, node
// lock held): pending records re-evaluate against the merged counters
// — snapshot-covered stragglers drop as stale, deliverable ones apply
// — and variables no live peer knew a value for are recorded as ⊥
// resets.
func (n *Node) finishRejoinLocked() {
	n.rejoining = false
	if rec := n.cfg.Recorder; rec != nil {
		for _, xi := range n.ix.VarIDs(n.id) {
			if n.tags[xi].Writer < 0 {
				rec.RecordRecover(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue)
			}
		}
	}
	n.drainLocked()
}

// CrashRestart models the node rejoining after a crash with its
// volatile state lost: replicas revert to ⊥; tags, the pending buffer
// and every *other* process's counter rows are forgotten, to be
// re-learned from peer snapshots during Recover (mcs.CrashRestarter).
// The node's own counter row is its per-variable write numbering and
// survives — receivers sequence its streams by exact match, so a
// restarted writer must not reuse stream positions. Incoming records
// pend until the snapshot merge rebuilds the counters.
func (n *Node) CrashRestart() {
	n.mu.Lock()
	for xi := range n.replicas {
		n.replicas.Set(xi, mcs.BottomValue)
		n.tags[xi] = mcs.WriteTag{Writer: -1}
	}
	for j := range n.cnt {
		if j == n.id {
			continue
		}
		for yi := range n.cnt[j] {
			n.cnt[j][yi] = 0
		}
	}
	for _, u := range n.pending {
		mcs.PutPayload(u.raw)
	}
	n.pending = n.pending[:0]
	n.rejoining = true
	n.rcv.Cancel()
	n.rcf.CancelLocked()
	n.fence.LiftLocked()
	n.mu.Unlock()
}

// Recover starts the rejoin handshake (mcs.CrashRestarter): every node
// sharing notification interest with this one is a snapshot peer — in
// broadcast mode all of them, hoop-aware only the relevant ones, under
// the current epoch's tables.
func (n *Node) Recover() {
	numNodes := len(n.cnt)
	peerSet := make([]bool, numNodes)
	n.mu.Lock()
	for yi, in := range n.interest {
		if !in {
			continue
		}
		for p := 0; p < numNodes; p++ {
			if p != n.id && n.relOf[yi][p] {
				peerSet[p] = true
			}
		}
	}
	n.mu.Unlock()
	var peers []int
	for p, in := range peerSet {
		if in {
			peers = append(peers, p)
		}
	}
	n.rcv.Begin(peers)
}

// RecoveryStats reports completed rejoins and their summed virtual
// duration (mcs.CrashRestarter).
func (n *Node) RecoveryStats() (recoveries int, ticks uint64) {
	return n.rcv.Stats()
}

// ReconfigEngine exposes the node's epoch reconfiguration engine to the
// cluster facade.
func (n *Node) ReconfigEngine() *mcs.Reconfig { return n.rcf }

// ReconfigFlushLocked implements mcs.ReconfigHooks: the fence must
// travel behind every staged pre-fence update and notification.
func (n *Node) ReconfigFlushLocked() {
	n.outUpd.Flush()
	n.outNtf.Flush()
}

// ReconfigFenceLocked fences every write for the transition window
// (mcs.ReconfigHooks). Partial fencing would be unsound here: an
// unfenced write's dependency list can entangle any variable of shared
// interest, so a donor's counter columns are final only once no write
// at all is in flight — which the global fence plus the per-pair FIFO
// fence barrier guarantees.
func (n *Node) ReconfigFenceLocked(next *sharegraph.Index) {
	n.fence.ArmLocked(&n.mu, n.id, n.ix, next, true)
}

// ReconfigTransferVarsLocked lists the variables whose state this node
// needs from old-epoch holders: the ones it gains a replica of, plus —
// causal memory's extra burden — the ones that newly enter its
// notification interest, whose delivery counters it must seed before
// new-epoch dependency lists can ever dominate (mcs.ReconfigHooks).
func (n *Node) ReconfigTransferVarsLocked(next *sharegraph.Index) []int {
	nextRel := relevanceOf(next, n.mode)
	var need []int
	for yi := 0; yi < next.NumVars(); yi++ {
		gained := next.Holds(n.id, yi) && !n.ix.Holds(n.id, yi)
		interested := nextRel[yi][n.id] && !n.interest[yi]
		if gained || interested {
			need = append(need, yi)
		}
	}
	return need
}

// ReconfigEncodeLocked answers a gaining node with, per requested
// variable, the fence-settled counter column — at the barrier these are
// the senders' total write counts, identical on every live old-epoch
// holder — plus the tagged value when the requester replicates the
// variable in the next epoch (mcs.ReconfigHooks).
func (n *Node) ReconfigEncodeLocked(enc *mcs.Enc, requester int, varIDs []int, next *sharegraph.Index) (data int, vars []string) {
	cntPos := enc.Len()
	enc.U32(0)
	nCnt := 0
	seen := make(map[int]bool)
	for _, yi := range varIDs {
		if yi < 0 || yi >= n.ix.NumVars() {
			continue
		}
		for j := range n.cnt {
			if c := n.cnt[j][yi]; c > 0 {
				enc.U32(uint32(j)).U32(uint32(yi)).U32(c)
				nCnt++
				if !seen[yi] {
					seen[yi] = true
					vars = append(vars, n.ix.Name(yi))
				}
			}
		}
	}
	enc.PatchU32(cntPos, uint32(nCnt))
	valPos := enc.Len()
	enc.U32(0)
	nVals := 0
	for _, yi := range varIDs {
		if yi < 0 || yi >= n.ix.NumVars() || !next.Holds(requester, yi) {
			continue
		}
		t := n.tags[yi]
		if t.Writer < 0 || !n.ix.Holds(n.id, yi) {
			continue
		}
		v := n.replicas.Get(yi)
		enc.U32(uint32(t.Writer)).U32(uint32(t.WSeq)).VarVal(yi, v)
		if !seen[yi] {
			seen[yi] = true
			vars = append(vars, n.ix.Name(yi))
		}
		data += len(v)
		nVals++
	}
	enc.PatchU32(valPos, uint32(nVals))
	return data, vars
}

// ReconfigMergeLocked merges one donor's transfer body: counter columns
// max-merge (the donor's fence-settled totals subsume any partial view,
// and make in-flight old-epoch stragglers drop as stale), values pass
// the usual staleness rule and are recorded as migration events. The
// snapshot tear guard is unnecessary here: a barrier-complete donor's
// counter advances atomically with the value the same body carries
// (mcs.ReconfigHooks).
func (n *Node) ReconfigMergeLocked(d *mcs.Dec, from int, next *sharegraph.Index) error {
	nCnt := int(d.U32())
	for k := 0; k < nCnt; k++ {
		j := int(d.U32())
		yi := int(d.U32())
		c := d.U32()
		if err := d.Err(); err != nil {
			return err
		}
		if j < 0 || j >= len(n.cnt) || yi < 0 || yi >= n.ix.NumVars() {
			return fmt.Errorf("causalpart: transfer counter names unknown writer %d / VarID %d", j, yi)
		}
		if j != n.id && c > n.cnt[j][yi] {
			n.cnt[j][yi] = c
		}
	}
	nVals := int(d.U32())
	for k := 0; k < nVals; k++ {
		w := int(d.U32())
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			return err
		}
		if xi < 0 || xi >= n.ix.NumVars() || w < 0 || w >= len(n.cnt) {
			return fmt.Errorf("causalpart: transfer entry names unknown VarID %d / writer %d", xi, w)
		}
		if n.tags[xi].Stale(w, s) {
			continue
		}
		n.replicas.Set(xi, v)
		n.tags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordMigrate(n.id, w, s, n.ix.Name(xi), v)
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	// Seeded counters may make buffered records deliverable.
	n.drainLocked()
	return nil
}

// ReconfigFlipLocked installs the next epoch: shed replicas revert to
// ⊥ (delivery counters survive — a later re-gain max-merges them back
// up from a settled donor), gained variables no donor had a value for
// are recorded as ⊥ migration resets, the relevance tables rebuild for
// the new placement, the index swaps, outgoing frames carry the new
// epoch and the write fence lifts (mcs.ReconfigHooks).
func (n *Node) ReconfigFlipLocked(next *sharegraph.Index) {
	for _, xi := range n.ix.VarIDs(n.id) {
		if !next.Holds(n.id, xi) {
			n.replicas.Set(xi, mcs.BottomValue)
			n.tags[xi] = mcs.WriteTag{Writer: -1}
		}
	}
	if rec := n.cfg.Recorder; rec != nil && !n.rejoining {
		for _, xi := range next.VarIDs(n.id) {
			if !n.ix.Holds(n.id, xi) && n.tags[xi].Writer < 0 {
				rec.RecordMigrate(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue)
			}
		}
	}
	n.relOf = relevanceOf(next, n.mode)
	n.interest, n.notifies = nodeTables(n.relOf, n.id)
	n.ix = next
	n.outUpd.SetEpoch(next.Epoch())
	n.outNtf.SetEpoch(next.Epoch())
	n.fence.LiftLocked()
}

// ReconfigAbortLocked abandons the attempt: the fence lifts and the
// current epoch stays in force; any counters merged so far are totals a
// future transfer would max-merge past (mcs.ReconfigHooks).
func (n *Node) ReconfigAbortLocked() { n.fence.LiftLocked() }

var (
	_ mcs.Node           = (*Node)(nil)
	_ mcs.Flusher        = (*Node)(nil)
	_ mcs.Batcher        = (*Node)(nil)
	_ mcs.CrashRestarter = (*Node)(nil)
	_ mcs.ReconfigHooks  = (*Node)(nil)
)
