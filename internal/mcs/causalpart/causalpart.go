// Package causalpart implements causal consistency under partial
// replication — the configuration the paper proves cannot be efficient
// (§3): to preserve causality across hoops, control information about a
// variable must reach processes that do not replicate it.
//
// # Protocol
//
// Values travel only to the replica clique C(x), but every write also
// fans out a control notification, and every message piggybacks a
// dependency list of per-(writer, variable) counters describing the
// causal past of the write:
//
//   - each node tracks cnt[j][y], the number of j's writes to y whose
//     notifications it has delivered, for every variable y it is
//     notified about;
//   - a write by i on x is sent to a notification set N(x) ⊇ C(x);
//     the copy for receiver r carries the entries (j, y, cnt[j][y]) for
//     variables y in both i's and r's notification interest — the
//     control information about *other* variables the paper's
//     Theorem 1 shows is unavoidable;
//   - receiver r delivers the write once its own counters dominate the
//     dependency list (exact match on the writer's own (i,x) stream,
//     ≥ elsewhere), applies the value if r ∈ C(x), and bumps cnt[i][x].
//
// Dependency domination makes every node's delivery order a linear
// extension of the causality order restricted to the writes it sees
// (validated against check.WitnessCausal), because every causal chain
// between two operations on variables of interest runs through
// processes that are themselves notified of the dependency — the
// constructive reading of Theorem 1's sufficiency proof.
//
// # Modes
//
// ModeBroadcast notifies every node of every write: the general-
// distribution case ("any process is likely to belong to any hoop",
// §3.3). The touch matrix becomes all-ones and control volume grows
// with the whole system.
//
// ModeHoopAware exploits a statically known distribution: write
// notifications for x go only to the x-relevant processes of Theorem 1
// (C(x) plus all x-hoop members), and dependency entries are pruned to
// variables relevant to both endpoints. This is the "ad-hoc
// implementation … optimally designed" the paper sketches in §3.3:
// still causal, but information about x never reaches x-irrelevant
// processes.
//
// # Hot path
//
// Variables are interned VarIDs throughout; the per-receiver dependency
// list is encoded in a single pass straight into the coalescing
// outboxes (one for value updates, one for notifications), and the
// receive path checks dependency domination while decoding, copying a
// record's raw bytes into the pending buffer only when it cannot be
// delivered yet.
package causalpart

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// Message kinds. Updates carry the written value (to C(x)),
// notifications carry control information only (to N(x) ∖ C(x)). Both
// are batched frames of records
// (U32 wseq, U32 varID, OptVal value, U32 nDeps,
// nDeps × (U32 writer, U32 varID, U32 count)).
const (
	KindUpdate = "causalpart.update"
	KindNotify = "causalpart.notify"
)

// Mode selects the notification strategy.
type Mode int

const (
	// ModeBroadcast notifies every node of every write.
	ModeBroadcast Mode = iota
	// ModeHoopAware notifies exactly the x-relevant processes of
	// Theorem 1, using the statically known share graph.
	ModeHoopAware
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeHoopAware {
		return "hoop-aware"
	}
	return "broadcast"
}

// pendingRec is a buffered undeliverable record: the raw wire bytes
// (pool-backed) plus the sending writer.
type pendingRec struct {
	writer int
	raw    []byte
}

// Node is one causal partial-replication MCS process.
type Node struct {
	cfg  mcs.Config
	mode Mode
	id   int
	ix   *sharegraph.Index

	interest []bool   // interest[y] — this node is in N(vars[y])
	relOf    [][]bool // relOf[y][p] — p is in N(vars[y])
	notifies [][]int  // VarID → N(x) minus self

	mu       sync.Mutex
	replicas mcs.Replicas // by VarID
	wseq     int
	cnt      [][]uint32 // cnt[j][y]: delivered writes of j to vars[y]
	pending  []pendingRec
	names    []string // per-write scratch for the touch list
	outUpd   *mcs.Outbox
	outNtf   *mcs.Outbox
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config, mode Mode) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	numVars := ix.NumVars()
	// Notification sets per variable.
	relOf := make([][]bool, numVars)
	for yi := 0; yi < numVars; yi++ {
		relOf[yi] = make([]bool, n)
		switch mode {
		case ModeBroadcast:
			for p := 0; p < n; p++ {
				relOf[yi][p] = true
			}
		case ModeHoopAware:
			for _, p := range cfg.Placement.XRelevant(ix.Name(yi)) {
				relOf[yi][p] = true
			}
		default:
			return nil, fmt.Errorf("causalpart: unknown mode %d", mode)
		}
	}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			mode:     mode,
			id:       i,
			ix:       ix,
			relOf:    relOf,
			interest: make([]bool, numVars),
			notifies: make([][]int, numVars),
			replicas: mcs.NewReplicas(numVars),
			cnt:      make([][]uint32, n),
			outUpd:   mcs.NewOutbox(cfg.Net, i, KindUpdate, cfg.CoalesceBatch),
			outNtf:   mcs.NewOutbox(cfg.Net, i, KindNotify, cfg.CoalesceBatch),
		}
		for j := range node.cnt {
			node.cnt[j] = make([]uint32, numVars)
		}
		for yi := 0; yi < numVars; yi++ {
			node.interest[yi] = relOf[yi][i]
			for p := 0; p < n; p++ {
				if p != i && relOf[yi][p] {
					node.notifies[yi] = append(node.notifies[yi], p)
				}
			}
		}
		cfg.ApplyFlushPolicy(&node.mu, node.outUpd, node.outNtf)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Write performs w_i(x)v: apply locally, then stage updates to C(x)
// and notifications to the rest of N(x), each carrying the dependency
// list pruned to the receiver's interest.
func (n *Node) Put(x string, v []byte) error {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	name := n.ix.Name(xi)
	n.mu.Lock()
	wseq := n.wseq
	n.wseq++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, name, v)
		rec.RecordApply(n.id, n.id, wseq, name, v)
	}
	n.replicas.Set(xi, v)
	for _, r := range n.notifies[xi] {
		hasValue := n.ix.Holds(r, xi)
		out := n.outNtf
		if hasValue {
			out = n.outUpd
		}
		enc := out.Stage()
		enc.U32(uint32(wseq)).U32(uint32(xi))
		data := 0
		if hasValue {
			enc.OptVal(v, true)
			data = len(v)
		} else {
			enc.OptVal(nil, false)
		}
		n.encodeDepsLocked(enc, r, xi)
		ctrl := enc.Len() - data
		out.AddToVars(r, n.names, ctrl, data)
	}
	// Count the new write after building the dependency lists: the
	// lists describe its causal past, excluding itself.
	n.cnt[n.id][xi]++
	n.mu.Unlock()
	return nil
}

// PutAsync is Put: causal partial-replication writes are wait-free.
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	return mcs.Done, n.Put(x, v)
}

// encodeDepsLocked appends receiver r's dependency list for a write on
// vars[xi] to enc: every nonzero counter (j, y) with y in both
// endpoints' interest, plus the writer's own (i, xi) stream entry
// (always present, possibly zero — it sequences the stream). It leaves
// the variables the record mentions in n.names (scratch, reused per
// receiver).
func (n *Node) encodeDepsLocked(enc *mcs.Enc, r, xi int) {
	countPos := enc.Len()
	enc.U32(0) // dependency count, patched below
	n.names = append(n.names[:0], n.ix.Name(xi))
	deps := 0
	for j := range n.cnt {
		for yi, c := range n.cnt[j] {
			if j == n.id && yi == xi {
				continue // own stream entry added explicitly below
			}
			if c == 0 || !n.interest[yi] || !n.relOf[yi][r] {
				continue
			}
			enc.U32(uint32(j)).U32(uint32(yi)).U32(c)
			deps++
			n.names = append(n.names, n.ix.Name(yi))
		}
	}
	enc.U32(uint32(n.id)).U32(uint32(xi)).U32(n.cnt[n.id][xi])
	deps++
	enc.PatchU32(countPos, uint32(deps))
}

// Get performs r_i(x) wait-free on the local replica, flushing any
// coalesced messages first.
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	if n.outUpd.HasPending() || n.outNtf.HasPending() {
		n.outUpd.Flush()
		n.outNtf.Flush()
	}
	dst = append(dst[:0], n.replicas.Get(xi)...)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	n.mu.Unlock()
	// A polling reader drives buffered writers' flush deadlines (one
	// nudge covers both outboxes — they share the transport clock).
	n.outUpd.Nudge()
	return dst, nil
}

// BeginBatch suspends flushing on both outboxes (mcs.Batcher).
func (n *Node) BeginBatch() {
	n.mu.Lock()
	n.outUpd.Hold()
	n.outNtf.Hold()
	n.mu.Unlock()
}

// EndBatch flushes everything staged since BeginBatch (mcs.Batcher).
func (n *Node) EndBatch() {
	n.mu.Lock()
	n.outUpd.Release()
	n.outNtf.Release()
	n.mu.Unlock()
}

// FlushUpdates sends all buffered messages (mcs.Flusher).
func (n *Node) FlushUpdates() {
	n.mu.Lock()
	n.outUpd.Flush()
	n.outNtf.Flush()
	n.mu.Unlock()
}

// handle processes a batched frame: each record is checked for
// dependency domination while it is decoded; deliverable records apply
// immediately (then drain the pending set), the rest are copied into
// the pending buffer.
func (n *Node) handle(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	count := int(d.U32())
	if d.Err() != nil {
		n.cfg.Faultf(n.id, "causalpart: node %d: malformed frame from %d: %v", n.id, msg.From, d.Err())
		return
	}
	n.mu.Lock()
	for k := 0; k < count; k++ {
		start := len(msg.Payload) - d.Rest()
		applied, faulted := n.tryRecordLocked(&d, msg.From)
		if faulted {
			// tryRecordLocked already reported; drop the rest of the frame.
			n.mu.Unlock()
			return
		}
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "causalpart: node %d: malformed record from %d: %v", n.id, msg.From, err)
			return
		}
		if applied {
			n.drainLocked()
		} else {
			end := len(msg.Payload) - d.Rest()
			raw := append(mcs.GetPayload(), msg.Payload[start:end]...)
			n.pending = append(n.pending, pendingRec{writer: msg.From, raw: raw})
		}
	}
	n.mu.Unlock()
}

// tryRecordLocked decodes one record written by writer and applies it
// when its dependency list is dominated by the local counters, bumping
// cnt[writer][x]. It always consumes exactly one record from d; the
// caller checks d.Err. A record naming out-of-range ids is reported
// through Config.Faultf (under the node lock — the sink must not call
// back into the node) and flagged faulted; the caller drops it.
func (n *Node) tryRecordLocked(d *mcs.Dec, writer int) (applied, faulted bool) {
	wseq := int(d.U32())
	xi := int(d.U32())
	v, hasValue := d.OptVal()
	nDeps := int(d.U32())
	if d.Err() != nil {
		return false, false
	}
	if writer < 0 || writer >= len(n.cnt) || xi < 0 || xi >= n.ix.NumVars() {
		n.cfg.Faultf(n.id, "causalpart: node %d: record from %d out of range (writer %d, VarID %d)",
			n.id, writer, writer, xi)
		return false, true
	}
	ok := true
	for k := 0; k < nDeps; k++ {
		dw := int(d.U32())
		dy := int(d.U32())
		dc := d.U32()
		if d.Err() != nil {
			return false, false
		}
		if dw < 0 || dw >= len(n.cnt) || dy < 0 || dy >= n.ix.NumVars() {
			n.cfg.Faultf(n.id, "causalpart: node %d: dependency from %d out of range (%d, %d)",
				n.id, writer, dw, dy)
			return false, true
		}
		local := n.cnt[dw][dy]
		if dw == writer && dy == xi {
			// In-order delivery per (writer, variable) stream.
			if local != dc {
				ok = false
			}
		} else if local < dc {
			ok = false
		}
	}
	if !ok {
		return false, false
	}
	n.cnt[writer][xi]++
	if hasValue {
		n.replicas.Set(xi, v)
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordApply(n.id, writer, wseq, n.ix.Name(xi), v)
		}
	}
	return true, false
}

// drainLocked delivers pending records until a fixpoint. Pending
// records passed tryRecordLocked's range checks before they were
// buffered, so a faulted retry cannot happen; it is still handled (the
// record is discarded) to keep the drop-on-fault contract local.
func (n *Node) drainLocked() {
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(n.pending); i++ {
			pd := mcs.DecOf(n.pending[i].raw)
			applied, faulted := n.tryRecordLocked(&pd, n.pending[i].writer)
			if !applied && !faulted {
				continue
			}
			mcs.PutPayload(n.pending[i].raw)
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			progress = true
			i--
		}
	}
}

var (
	_ mcs.Node    = (*Node)(nil)
	_ mcs.Flusher = (*Node)(nil)
	_ mcs.Batcher = (*Node)(nil)
)
