package causalpart

import (
	"testing"

	"partialdsm/internal/check"
	"partialdsm/internal/mcs"
	"partialdsm/internal/metrics"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// hoopPl is the minimal hoop topology: C(x)={0,2}, node 1 bridges via y.
func hoopPl() *sharegraph.Placement {
	return sharegraph.NewPlacement(3).
		Assign(0, "x", "y").
		Assign(1, "y").
		Assign(2, "x", "y")
}

func harness(t *testing.T, pl *sharegraph.Placement, mode Mode) ([]*Node, *netsim.Network, *mcs.Recorder, *metrics.Collector) {
	t.Helper()
	n := pl.NumProcs()
	col := metrics.NewCollector()
	net := netsim.NewNetwork(n, netsim.Options{FIFO: true, Metrics: col})
	t.Cleanup(net.Close)
	rec := mcs.NewRecorder(n)
	nodes, err := New(mcs.Config{Net: net, Placement: pl, Metrics: col, Recorder: rec}, mode)
	if err != nil {
		t.Fatal(err)
	}
	return nodes, net, rec, col
}

func TestModeString(t *testing.T) {
	if ModeBroadcast.String() != "broadcast" || ModeHoopAware.String() != "hoop-aware" {
		t.Error("mode names wrong")
	}
}

func TestBroadcastNotifiesEveryone(t *testing.T) {
	nodes, net, _, col := harness(t, hoopPl(), ModeBroadcast)
	mcs.WriteInt(nodes[0], "x", 1)
	net.Quiesce()
	// Data to node 2 (C(x)) and a notification to node 1.
	s := col.Snapshot()
	if s.Msgs != 2 {
		t.Errorf("msgs = %d, want 2 (1 update + 1 notify)", s.Msgs)
	}
	if s.PerKind[KindUpdate] != 1 || s.PerKind[KindNotify] != 1 {
		t.Errorf("per kind: %v", s.PerKind)
	}
	if !col.Touched(1, "x") {
		t.Error("node 1 must have been notified about x")
	}
	// The notification carries no value: node 1 cannot read x anyway.
	if v, _ := mcs.ReadInt(nodes[2], "x"); v != 1 {
		t.Error("node 2 missed the data update")
	}
}

func TestHoopAwareSkipsIrrelevant(t *testing.T) {
	// Node 3 is a pendant (single anchor): x-irrelevant.
	pl := sharegraph.NewPlacement(4).
		Assign(0, "x", "y").
		Assign(1, "y").
		Assign(2, "x", "y", "z").
		Assign(3, "z")
	nodes, net, _, col := harness(t, pl, ModeHoopAware)
	mcs.WriteInt(nodes[0], "x", 1)
	net.Quiesce()
	if col.Touched(3, "x") {
		t.Error("x-irrelevant node 3 was notified about x")
	}
	if !col.Touched(1, "x") {
		t.Error("x-relevant node 1 (hoop member) must be notified")
	}
}

// TestDependencyChainOrdering drives the hoop scenario: a chain through
// node 1 must not let node 2 apply a second x write before the first.
func TestDependencyChainOrdering(t *testing.T) {
	nodes, net, rec, _ := harness(t, hoopPl(), ModeBroadcast)
	mcs.WriteInt(nodes[0], "x", 1)
	mcs.WriteInt(nodes[0], "y", 2)
	net.Quiesce()
	if v, _ := mcs.ReadInt(nodes[1], "y"); v != 2 {
		t.Fatal("node 1 missed y")
	}
	mcs.WriteInt(nodes[1], "y", 3)
	net.Quiesce()
	if v, _ := mcs.ReadInt(nodes[2], "y"); v != 3 {
		t.Fatal("node 2 missed y'")
	}
	if v, _ := mcs.ReadInt(nodes[2], "x"); v != 1 {
		t.Fatal("node 2 read y'=3 but stale x")
	}
	h, err := rec.History()
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WitnessCausal(h, rec.Logs()); err != nil {
		t.Fatalf("witness: %v", err)
	}
}

// TestBufferedOutOfOrderDelivery hand-crafts an out-of-causal-order
// arrival and checks the dependency list buffers it.
func TestBufferedOutOfOrderDelivery(t *testing.T) {
	nodes, _, _, _ := harness(t, hoopPl(), ModeBroadcast)
	n2 := nodes[2]
	// Variable universe is sorted: x=0, y=1. The writer travels in the
	// message source; each payload is a one-record batched frame.
	type dep struct{ writer, varIdx, count uint32 }
	mk := func(wseq, varIdx int, hasVal uint32, val int64, deps []dep) []byte {
		var enc mcs.Enc
		enc.U32(1) // record count
		enc.U32(uint32(wseq)).U32(uint32(varIdx))
		if hasVal == 1 {
			enc.U32(1).I64(val)
		} else {
			enc.U32(0)
		}
		enc.U32(uint32(len(deps)))
		for _, d := range deps {
			enc.U32(d.writer).U32(d.varIdx).U32(d.count)
		}
		return enc.Bytes()
	}
	// w0 #1 on y depends on w0 #0 on x (own program order): deps list
	// carries (0,x,1) and own stream entry (0,y,0).
	n2.handle(netsim.Message{From: 0, To: 2, Kind: KindUpdate, Payload: mk(
		1, 1, 1, 20,
		[]dep{{writer: 0, varIdx: 0, count: 1}, {writer: 0, varIdx: 1, count: 0}},
	)})
	if v, _ := mcs.ReadInt(n2, "y"); v != -9223372036854775808 {
		t.Fatalf("y applied before its dependency on x: %d", v)
	}
	// Now the x write arrives: own stream entry (0,x,0).
	n2.handle(netsim.Message{From: 0, To: 2, Kind: KindUpdate, Payload: mk(
		0, 0, 1, 10,
		[]dep{{writer: 0, varIdx: 0, count: 0}},
	)})
	if v, _ := mcs.ReadInt(n2, "x"); v != 10 {
		t.Fatalf("x not applied: %d", v)
	}
	if v, _ := mcs.ReadInt(n2, "y"); v != 20 {
		t.Fatalf("buffered y not drained: %d", v)
	}
}

func TestDepListPrunedToReceiverInterest(t *testing.T) {
	// Hoop-aware: node 0 writes y after x; the y update to node 1 (who
	// is x-relevant here!) carries the x dependency. Use the pendant
	// topology instead: writes on z to node 3 must not mention x.
	pl := sharegraph.NewPlacement(4).
		Assign(0, "x", "y").
		Assign(1, "y").
		Assign(2, "x", "y", "z").
		Assign(3, "z")
	nodes, net, _, col := harness(t, pl, ModeHoopAware)
	mcs.WriteInt(nodes[2], "x", 1) // node 2 knows about x
	mcs.WriteInt(nodes[2], "z", 2) // depends on its own x write
	net.Quiesce()
	if v, _ := mcs.ReadInt(nodes[3], "z"); v != 2 {
		t.Fatal("node 3 missed z")
	}
	if col.Touched(3, "x") {
		t.Error("dependency entry about x leaked to x-irrelevant node 3")
	}
}

func TestUnknownModeRejected(t *testing.T) {
	pl := hoopPl()
	net := netsim.NewNetwork(3, netsim.Options{FIFO: true})
	defer net.Close()
	if _, err := New(mcs.Config{Net: net, Placement: pl}, Mode(99)); err == nil {
		t.Error("unknown mode must be rejected")
	}
}

func TestMalformedPayloadPanics(t *testing.T) {
	nodes, _, _, _ := harness(t, hoopPl(), ModeBroadcast)
	defer func() {
		if recover() == nil {
			t.Error("malformed message must panic")
		}
	}()
	nodes[0].handle(netsim.Message{From: 1, To: 0, Kind: KindUpdate, Payload: []byte{3}})
}
