package mcs

import (
	"testing"

	"partialdsm/internal/netsim"
)

// drainPayloadPool empties the process-wide payload free list so a
// test can observe exactly which buffers come back.
func drainPayloadPool() {
	for {
		select {
		case <-payloadPool:
		default:
			return
		}
	}
}

// TestSharedPayloadRefcountRecycling checks the refcounted multicast
// discipline: n receivers release a shared frame, only the last one
// returns the buffer to the pool, and the buffer really is reusable
// afterward.
func TestSharedPayloadRefcountRecycling(t *testing.T) {
	const fanout = 3
	drainPayloadPool()
	buf, refs := GetSharedPayload(fanout)
	buf = append(buf, 1, 2, 3, 4)
	msg := netsim.Message{Payload: buf, SharedPayload: true, SharedRefs: refs}

	for i := 0; i < fanout-1; i++ {
		RecycleFrame(msg)
		select {
		case b := <-payloadPool:
			t.Fatalf("buffer recycled after %d of %d releases (got %v)", i+1, fanout, b)
		default:
		}
	}
	RecycleFrame(msg)
	select {
	case b := <-payloadPool:
		if cap(b) == 0 {
			t.Fatal("recycled buffer has no capacity")
		}
	default:
		t.Fatal("last release did not return the shared buffer to the pool")
	}
}

// TestSharedPayloadWithoutRefsIsLeftAlone pins the legacy shared-frame
// behaviour: no refcount means no receiver may recycle.
func TestSharedPayloadWithoutRefsIsLeftAlone(t *testing.T) {
	drainPayloadPool()
	msg := netsim.Message{Payload: []byte{9, 9}, SharedPayload: true}
	RecycleFrame(msg)
	select {
	case <-payloadPool:
		t.Fatal("refcount-less shared payload was recycled")
	default:
	}
}
