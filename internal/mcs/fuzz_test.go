package mcs

import (
	"reflect"
	"testing"
)

// FuzzDec checks that the wire decoder never panics on arbitrary
// payloads — protocol handlers rely on Err() for malformed input, so
// the accessors themselves must be total.
func FuzzDec(f *testing.F) {
	var e Enc
	e.U32(3).I64(-9).Str("xyz").U32Slice([]uint32{1, 2})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Add([]byte{0, 5, 'a'})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		_ = d.U32()
		_ = d.Str()
		_ = d.U32Slice()
		_ = d.I64()
		_ = d.Str()
		if d.Err() == nil && d.Rest() < 0 {
			t.Fatal("negative rest")
		}
	})
}

// FuzzDecSliceFirst decodes in a different field order to cover the
// slice-length paths.
func FuzzDecSliceFirst(f *testing.F) {
	f.Add([]byte{0, 3, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		s := d.U32Slice()
		if d.Err() != nil && s != nil {
			t.Fatal("slice returned despite decode error")
		}
	})
}

// The round-trip fuzzers below cover the exact payload schema of every
// protocol message kind in the repo, so a change to the Enc/Dec
// helpers that silently corrupts any field is caught:
//
//   - pram.update, seqcons/cachepart requests, atomicreg write-req:
//     (U32 writer, U32 wseq, Str x, I64 v)
//   - slow.update: (U32 writer, U32 wseq, U32 vseq, Str x, I64 v)
//   - seqcons/cachepart updates: (U32 seq, U32 writer, U32 wseq, Str x, I64 v)
//   - causalfull.update: (U32 writer, U32Slice vc, Str x, I64 v)
//   - causalpart update/notify: (U32 writer, U32 wseq, U32 varIdx,
//     U32 hasValue, [I64 v], U32 nDeps, nDeps × (U32, U32, U32))
//   - atomicreg read-req: (U32 reader, Str x); read-resp: (I64 v)
//
// clampStr keeps fuzzed variable names within the encoder's uint16
// length prefix (longer names panic by design).
func clampStr(s string) string {
	if len(s) > 0xffff {
		return s[:0xffff]
	}
	return s
}

// FuzzWireRoundTripUpdate covers the 4-field update schema shared by
// pram.update, the seqcons/cachepart requests and atomicreg write-req.
func FuzzWireRoundTripUpdate(f *testing.F) {
	f.Add(uint32(0), uint32(0), "x", int64(-1))
	f.Add(uint32(7), uint32(1<<31), "", int64(1)<<62)
	f.Fuzz(func(t *testing.T, writer, wseq uint32, x string, v int64) {
		x = clampStr(x)
		var e Enc
		e.U32(writer).U32(wseq).Str(x).I64(v)
		d := NewDec(e.Bytes())
		gw, gs, gx, gv := d.U32(), d.U32(), d.Str(), d.I64()
		if err := d.Err(); err != nil {
			t.Fatalf("decode failed on encoder output: %v", err)
		}
		if gw != writer || gs != wseq || gx != x || gv != v {
			t.Fatalf("round trip (%d,%d,%q,%d) → (%d,%d,%q,%d)", writer, wseq, x, v, gw, gs, gx, gv)
		}
		if d.Rest() != 0 {
			t.Fatalf("%d trailing bytes after full decode", d.Rest())
		}
	})
}

// FuzzWireRoundTripSlow covers slow.update's 5-field schema with the
// per-(sender,variable) sequence number.
func FuzzWireRoundTripSlow(f *testing.F) {
	f.Add(uint32(1), uint32(2), uint32(3), "y", int64(9))
	f.Fuzz(func(t *testing.T, writer, wseq, vseq uint32, x string, v int64) {
		x = clampStr(x)
		var e Enc
		e.U32(writer).U32(wseq).U32(vseq).Str(x).I64(v)
		d := NewDec(e.Bytes())
		if gw, gs, gq, gx, gv := d.U32(), d.U32(), d.U32(), d.Str(), d.I64(); d.Err() != nil ||
			gw != writer || gs != wseq || gq != vseq || gx != x || gv != v || d.Rest() != 0 {
			t.Fatalf("slow.update round trip corrupted (%v)", d.Err())
		}
	})
}

// FuzzWireRoundTripSequenced covers the sequencer-stamped updates of
// seqcons and cachepart (a leading global/per-variable sequence).
func FuzzWireRoundTripSequenced(f *testing.F) {
	f.Add(uint32(0), uint32(1), uint32(2), "z", int64(-5))
	f.Fuzz(func(t *testing.T, seq, writer, wseq uint32, x string, v int64) {
		x = clampStr(x)
		var e Enc
		e.U32(seq).U32(writer).U32(wseq).Str(x).I64(v)
		d := NewDec(e.Bytes())
		if gg, gw, gs, gx, gv := d.U32(), d.U32(), d.U32(), d.Str(), d.I64(); d.Err() != nil ||
			gg != seq || gw != writer || gs != wseq || gx != x || gv != v || d.Rest() != 0 {
			t.Fatalf("sequenced update round trip corrupted (%v)", d.Err())
		}
	})
}

// FuzzWireRoundTripCausalFull covers causalfull.update's vector-clock
// schema; the clock is derived from raw fuzz bytes.
func FuzzWireRoundTripCausalFull(f *testing.F) {
	f.Add(uint32(2), []byte{0, 1, 2, 3}, "x", int64(4))
	f.Add(uint32(0), []byte{}, "", int64(0))
	f.Fuzz(func(t *testing.T, writer uint32, clock []byte, x string, v int64) {
		x = clampStr(x)
		if len(clock) > 0xffff {
			clock = clock[:0xffff]
		}
		vc := make([]uint32, len(clock))
		for i, b := range clock {
			vc[i] = uint32(b) << uint(i%24)
		}
		var e Enc
		e.U32(writer).U32Slice(vc).Str(x).I64(v)
		d := NewDec(e.Bytes())
		gw, gvc, gx, gv := d.U32(), d.U32Slice(), d.Str(), d.I64()
		if err := d.Err(); err != nil {
			t.Fatalf("decode failed on encoder output: %v", err)
		}
		if len(vc) == 0 {
			if len(gvc) != 0 {
				t.Fatalf("empty clock decoded as %v", gvc)
			}
		} else if !reflect.DeepEqual(gvc, vc) {
			t.Fatalf("vector clock %v → %v", vc, gvc)
		}
		if gw != writer || gx != x || gv != v || d.Rest() != 0 {
			t.Fatalf("causalfull.update round trip corrupted")
		}
	})
}

// FuzzWireRoundTripCausalPart covers the causal-partial update/notify
// schema: optional value plus a variable-length dependency list.
func FuzzWireRoundTripCausalPart(f *testing.F) {
	f.Add(uint32(1), uint32(2), uint32(0), true, int64(7), []byte{1, 0, 3, 2, 1, 9})
	f.Add(uint32(0), uint32(0), uint32(5), false, int64(0), []byte{})
	f.Fuzz(func(t *testing.T, writer, wseq, varIdx uint32, hasValue bool, v int64, depBytes []byte) {
		type dep struct{ writer, varIdx, count uint32 }
		var deps []dep
		for i := 0; i+2 < len(depBytes) && len(deps) < 1024; i += 3 {
			deps = append(deps, dep{uint32(depBytes[i]), uint32(depBytes[i+1]), uint32(depBytes[i+2]) << 8})
		}
		var e Enc
		e.U32(writer).U32(wseq).U32(varIdx)
		if hasValue {
			e.U32(1).I64(v)
		} else {
			e.U32(0)
		}
		e.U32(uint32(len(deps)))
		for _, d := range deps {
			e.U32(d.writer).U32(d.varIdx).U32(d.count)
		}

		d := NewDec(e.Bytes())
		if gw, gs, gxi := d.U32(), d.U32(), d.U32(); gw != writer || gs != wseq || gxi != varIdx {
			t.Fatalf("header corrupted: (%d,%d,%d)", gw, gs, gxi)
		}
		if has := d.U32() == 1; has != hasValue {
			t.Fatalf("hasValue flag flipped")
		} else if has {
			if gv := d.I64(); gv != v {
				t.Fatalf("value %d → %d", v, gv)
			}
		}
		n := int(d.U32())
		if n != len(deps) {
			t.Fatalf("dep count %d → %d", len(deps), n)
		}
		for i := 0; i < n; i++ {
			if gd := (dep{d.U32(), d.U32(), d.U32()}); gd != deps[i] {
				t.Fatalf("dep %d: %+v → %+v", i, deps[i], gd)
			}
		}
		if err := d.Err(); err != nil || d.Rest() != 0 {
			t.Fatalf("causalpart round trip left err=%v rest=%d", err, d.Rest())
		}
	})
}

// FuzzWireRoundTripAtomicReadPath covers atomicreg's read request and
// read response schemas.
func FuzzWireRoundTripAtomicReadPath(f *testing.F) {
	f.Add(uint32(3), "x", int64(42))
	f.Fuzz(func(t *testing.T, reader uint32, x string, v int64) {
		x = clampStr(x)
		var req Enc
		req.U32(reader).Str(x)
		d := NewDec(req.Bytes())
		if gr, gx := d.U32(), d.Str(); d.Err() != nil || gr != reader || gx != x || d.Rest() != 0 {
			t.Fatalf("read-req round trip corrupted (%v)", d.Err())
		}
		var resp Enc
		resp.I64(v)
		d = NewDec(resp.Bytes())
		if gv := d.I64(); d.Err() != nil || gv != v || d.Rest() != 0 {
			t.Fatalf("read-resp round trip corrupted (%v)", d.Err())
		}
	})
}
