package mcs

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDec checks that the wire decoder never panics on arbitrary
// payloads — protocol handlers rely on Err() for malformed input, so
// the accessors themselves must be total.
func FuzzDec(f *testing.F) {
	var e Enc
	e.U32(3).I64(-9).Str("xyz").U32Slice([]uint32{1, 2})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Add([]byte{0, 5, 'a'})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		_ = d.U32()
		_ = d.Str()
		_ = d.U32Slice()
		_ = d.I64()
		_ = d.Str()
		if d.Err() == nil && d.Rest() < 0 {
			t.Fatal("negative rest")
		}
	})
}

// FuzzDecSliceFirst decodes in a different field order to cover the
// slice-length paths, including the allocation-free U32SliceInto.
func FuzzDecSliceFirst(f *testing.F) {
	f.Add([]byte{0, 3, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		s := d.U32Slice()
		if d.Err() != nil && s != nil {
			t.Fatal("slice returned despite decode error")
		}
		d2 := DecOf(data)
		scratch := make([]uint32, 0, 8)
		s2 := d2.U32SliceInto(scratch)
		if (d.Err() == nil) != (d2.Err() == nil) {
			t.Fatalf("U32Slice and U32SliceInto disagree on validity: %v vs %v", d.Err(), d2.Err())
		}
		if d.Err() == nil && !reflect.DeepEqual(append([]uint32{}, s...), append([]uint32{}, s2...)) {
			t.Fatalf("U32Slice %v != U32SliceInto %v", s, s2)
		}
	})
}

// The round-trip fuzzers below cover the exact payload schema of every
// protocol message kind in the repo, so a change to the Enc/Dec
// helpers that silently corrupts any field is caught. Since the v2
// byte-value redesign, every value travels with v1-compatible framing:
// VarVal packs the value-length tag into the VarID word (8-byte values
// are byte-identical to the old U32 varID + I64 val pair), OptVal is
// the optional-value field of the causalpart records, and atomicreg's
// read response carries the raw value as its whole payload:
//
//   - pram.update frame record: (U32 wseq, VarVal)
//   - slow.update frame record: (U32 wseq, U32 vseq, VarVal)
//   - causal.update frame record: (U32Slice vc, VarVal)
//   - causalpart update/notify frame record: (U32 wseq, U32 varID,
//     OptVal, U32 nDeps, nDeps × (U32, U32, U32))
//   - seqcons/cachepart requests, atomicreg write-req:
//     (U32 wseq, VarVal)
//   - seqcons/cachepart updates: (U32 seq, U32 writer, U32 wseq,
//     VarVal)
//   - atomicreg read-req: (U32 varID); read-resp: (Raw value)

// clampVal trims fuzz-chosen values and VarIDs into the encodable
// ranges (tests cap values at 64 KiB to stay fast).
func clampVal(varID uint32, val []byte) (int, []byte) {
	if len(val) > 1<<16 {
		val = val[:1<<16]
	}
	return int(varID % (MaxEncodableVarID + 1)), val
}

// FuzzVarValRoundTrip pins the packed (VarID, value) field pair: any
// VarID in range and any value length round-trip exactly, and the
// 8-byte case is byte-identical to the v1 (U32 varID, I64 val) layout.
func FuzzVarValRoundTrip(f *testing.F) {
	f.Add(uint32(0), []byte{})
	f.Add(uint32(7), []byte("12345678"))
	f.Add(uint32(MaxEncodableVarID), bytes.Repeat([]byte{0xAB}, 253))
	f.Add(uint32(9), bytes.Repeat([]byte{0xCD}, 254))
	f.Add(uint32(3), bytes.Repeat([]byte{0xEF}, 5000))
	f.Fuzz(func(t *testing.T, rawID uint32, val []byte) {
		varID, val := clampVal(rawID, val)
		var e Enc
		e.VarVal(varID, val)
		d := DecOf(e.Bytes())
		gx, gv := d.VarVal()
		if err := d.Err(); err != nil {
			t.Fatalf("decode failed on encoder output: %v", err)
		}
		if gx != varID || !bytes.Equal(gv, val) || d.Rest() != 0 {
			t.Fatalf("VarVal (%d, %d bytes) → (%d, %d bytes), rest %d", varID, len(val), gx, len(gv), d.Rest())
		}
		if len(val) == 8 {
			var v1 Enc
			v1.U32(uint32(varID))
			v1.buf = append(v1.buf, val...)
			if !bytes.Equal(e.Bytes(), v1.Bytes()) {
				t.Fatalf("8-byte VarVal not byte-identical to v1 layout:\n got  % x\n want % x", e.Bytes(), v1.Bytes())
			}
		}
	})
}

// FuzzOptValRoundTrip pins the optional-value field, including the
// v1-identical absent (U32 0) and 8-byte (U32 1 + raw) layouts.
func FuzzOptValRoundTrip(f *testing.F) {
	f.Add(true, []byte{})
	f.Add(true, []byte("12345678"))
	f.Add(false, []byte("ignored"))
	f.Add(true, bytes.Repeat([]byte{1}, 4096))
	f.Fuzz(func(t *testing.T, present bool, val []byte) {
		_, val = clampVal(0, val)
		var e Enc
		e.OptVal(val, present)
		d := DecOf(e.Bytes())
		gv, gp := d.OptVal()
		if err := d.Err(); err != nil {
			t.Fatalf("decode failed on encoder output: %v", err)
		}
		if gp != present || (present && !bytes.Equal(gv, val)) || d.Rest() != 0 {
			t.Fatalf("OptVal (%v, %d bytes) → (%v, %d bytes)", present, len(val), gp, len(gv))
		}
	})
}

// FuzzDecValFields checks the value-field decoders never panic on
// arbitrary payloads — truncation and absurd length tags must surface
// through Err, exactly like the scalar accessors.
func FuzzDecValFields(f *testing.F) {
	var e Enc
	e.VarVal(3, []byte("abc")).OptVal([]byte("12345678"), true)
	f.Add(e.Bytes())
	f.Add([]byte{0xFF, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		_, v1 := d.VarVal()
		v2, ok := d.OptVal()
		rest := d.TakeRest()
		if d.Err() != nil && (len(v1) > 0 || ok && len(v2) > 0 || len(rest) > 0) {
			// Sticky errors must yield zero values from then on — but a
			// field decoded *before* the failure may be non-empty; just
			// ensure no slice escapes past the payload.
		}
		for _, b := range [][]byte{v1, v2, rest} {
			if len(b) > len(data) {
				t.Fatalf("decoded slice longer than payload")
			}
		}
	})
}

// FuzzWireRoundTripRequest covers the direct-send request schema
// shared by the seqcons/cachepart requests and atomicreg's write
// request, with a byte value of fuzz-chosen length.
func FuzzWireRoundTripRequest(f *testing.F) {
	f.Add(uint32(0), uint32(0), []byte("12345678"))
	f.Add(uint32(1<<31), uint32(7), []byte{})
	f.Add(uint32(2), uint32(9), bytes.Repeat([]byte{7}, 300))
	f.Fuzz(func(t *testing.T, wseq, rawID uint32, val []byte) {
		varID, val := clampVal(rawID, val)
		var e Enc
		e.U32(wseq).VarVal(varID, val)
		d := DecOf(e.Bytes())
		gs := d.U32()
		gx, gv := d.VarVal()
		if err := d.Err(); err != nil {
			t.Fatalf("decode failed on encoder output: %v", err)
		}
		if gs != wseq || gx != varID || !bytes.Equal(gv, val) || d.Rest() != 0 {
			t.Fatalf("round trip (%d,%d,%d bytes) → (%d,%d,%d bytes), rest %d",
				wseq, varID, len(val), gs, gx, len(gv), d.Rest())
		}
	})
}

// FuzzWireRoundTripSequenced covers the sequencer-stamped updates of
// seqcons and cachepart (a leading global/per-variable sequence and an
// explicit writer) with a byte value.
func FuzzWireRoundTripSequenced(f *testing.F) {
	f.Add(uint32(0), uint32(1), uint32(2), uint32(0), []byte("12345678"))
	f.Add(uint32(1), uint32(0), uint32(3), uint32(4), []byte("v"))
	f.Fuzz(func(t *testing.T, seq, writer, wseq, rawID uint32, val []byte) {
		varID, val := clampVal(rawID, val)
		var e Enc
		e.U32(seq).U32(writer).U32(wseq).VarVal(varID, val)
		d := DecOf(e.Bytes())
		gg, gw, gs := d.U32(), d.U32(), d.U32()
		gx, gv := d.VarVal()
		if d.Err() != nil ||
			gg != seq || gw != writer || gs != wseq || gx != varID || !bytes.Equal(gv, val) || d.Rest() != 0 {
			t.Fatalf("sequenced update round trip corrupted (%v)", d.Err())
		}
	})
}

// FuzzWireRoundTripPRAMFrame covers the batched pram.update frame with
// a fuzz-chosen record count and per-record value lengths; slow.update
// is the same shape with one extra U32 per record, covered by the vseq
// companion.
func FuzzWireRoundTripPRAMFrame(f *testing.F) {
	f.Add(uint8(1), uint32(0), uint32(0), []byte("12345678"))
	f.Add(uint8(16), uint32(3), uint32(9), []byte("xy"))
	f.Add(uint8(0), uint32(0), uint32(0), []byte{})
	f.Fuzz(func(t *testing.T, count uint8, wseq0, rawID uint32, val0 []byte) {
		records := int(count)
		varID0, val0 := clampVal(rawID, val0)
		val := func(k int) []byte {
			// Vary the length per record so mixed-size frames are covered.
			if len(val0) == 0 {
				return val0
			}
			return val0[:1+(k%len(val0))]
		}
		var e Enc
		e.U32(uint32(records))
		for k := 0; k < records; k++ {
			e.U32(wseq0+uint32(k)).U32(wseq0+uint32(k)). // slow-style vseq companion
									VarVal(varID0^(k&1), val(k))
		}
		d := DecOf(e.Bytes())
		if got := int(d.U32()); got != records {
			t.Fatalf("record count %d → %d", records, got)
		}
		for k := 0; k < records; k++ {
			gs, gq := d.U32(), d.U32()
			gx, gv := d.VarVal()
			if d.Err() != nil {
				t.Fatalf("record %d: decode failed: %v", k, d.Err())
			}
			if gs != wseq0+uint32(k) || gq != wseq0+uint32(k) || gx != varID0^(k&1) || !bytes.Equal(gv, val(k)) {
				t.Fatalf("record %d corrupted", k)
			}
		}
		if d.Rest() != 0 {
			t.Fatalf("%d trailing bytes after full frame decode", d.Rest())
		}
	})
}

// FuzzWireRoundTripCausalFull covers causalfull.update's vector-clock
// record inside a one-record frame; the clock is derived from raw fuzz
// bytes and decoded through the allocation-free U32SliceInto path the
// handler uses.
func FuzzWireRoundTripCausalFull(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint32(0), []byte("12345678"))
	f.Add([]byte{}, uint32(2), []byte{})
	f.Fuzz(func(t *testing.T, clock []byte, varID uint32, val []byte) {
		if len(clock) > 0xffff {
			clock = clock[:0xffff]
		}
		_, val = clampVal(0, val)
		vc := make([]uint32, len(clock))
		for i, b := range clock {
			vc[i] = uint32(b) << uint(i%24)
		}
		var e Enc
		e.U32(1).U32Slice(vc).VarVal(int(varID%(MaxEncodableVarID+1)), val)
		d := DecOf(e.Bytes())
		if n := d.U32(); n != 1 {
			t.Fatalf("frame count 1 → %d", n)
		}
		scratch := make([]uint32, 0, 4)
		gvc := d.U32SliceInto(scratch)
		gx, gv := d.VarVal()
		if err := d.Err(); err != nil {
			t.Fatalf("decode failed on encoder output: %v", err)
		}
		if len(vc) == 0 {
			if len(gvc) != 0 {
				t.Fatalf("empty clock decoded as %v", gvc)
			}
		} else if !reflect.DeepEqual(gvc, vc) {
			t.Fatalf("vector clock %v → %v", vc, gvc)
		}
		if gx != int(varID%(MaxEncodableVarID+1)) || !bytes.Equal(gv, val) || d.Rest() != 0 {
			t.Fatalf("causalfull.update round trip corrupted")
		}
	})
}

// FuzzWireRoundTripCausalPart covers the causal-partial record schema:
// optional value plus a variable-length dependency list whose count is
// back-filled with PatchU32, exactly as the protocol encodes it.
func FuzzWireRoundTripCausalPart(f *testing.F) {
	f.Add(uint32(2), uint32(0), true, []byte("12345678"), []byte{1, 0, 3, 2, 1, 9})
	f.Add(uint32(0), uint32(5), false, []byte{}, []byte{})
	f.Fuzz(func(t *testing.T, wseq, varID uint32, hasValue bool, v []byte, depBytes []byte) {
		_, v = clampVal(0, v)
		type dep struct{ writer, varID, count uint32 }
		var deps []dep
		for i := 0; i+2 < len(depBytes) && len(deps) < 1024; i += 3 {
			deps = append(deps, dep{uint32(depBytes[i]), uint32(depBytes[i+1]), uint32(depBytes[i+2]) << 8})
		}
		var e Enc
		e.U32(wseq).U32(varID)
		e.OptVal(v, hasValue)
		countPos := e.Len()
		e.U32(0)
		for _, d := range deps {
			e.U32(d.writer).U32(d.varID).U32(d.count)
		}
		e.PatchU32(countPos, uint32(len(deps)))

		d := DecOf(e.Bytes())
		if gs, gxi := d.U32(), d.U32(); gs != wseq || gxi != varID {
			t.Fatalf("header corrupted: (%d,%d)", gs, gxi)
		}
		if gv, has := d.OptVal(); has != hasValue {
			t.Fatalf("hasValue flag flipped")
		} else if has && !bytes.Equal(gv, v) {
			t.Fatalf("value %d bytes → %d bytes", len(v), len(gv))
		}
		n := int(d.U32())
		if n != len(deps) {
			t.Fatalf("dep count %d → %d", len(deps), n)
		}
		for i := 0; i < n; i++ {
			if gd := (dep{d.U32(), d.U32(), d.U32()}); gd != deps[i] {
				t.Fatalf("dep %d: %+v → %+v", i, deps[i], gd)
			}
		}
		if err := d.Err(); err != nil || d.Rest() != 0 {
			t.Fatalf("causalpart round trip left err=%v rest=%d", err, d.Rest())
		}
	})
}

// FuzzWireRoundTripAtomicReadPath covers atomicreg's read request and
// read response schemas: the response is the raw value, consumed with
// TakeRest.
func FuzzWireRoundTripAtomicReadPath(f *testing.F) {
	f.Add(uint32(3), []byte("12345678"))
	f.Add(uint32(0), []byte{})
	f.Fuzz(func(t *testing.T, varID uint32, v []byte) {
		_, v = clampVal(0, v)
		var req Enc
		req.U32(varID)
		d := DecOf(req.Bytes())
		if gx := d.U32(); d.Err() != nil || gx != varID || d.Rest() != 0 {
			t.Fatalf("read-req round trip corrupted (%v)", d.Err())
		}
		var resp Enc
		resp.Raw(v)
		d = DecOf(resp.Bytes())
		if gv := d.TakeRest(); d.Err() != nil || !bytes.Equal(gv, v) || d.Rest() != 0 {
			t.Fatalf("read-resp round trip corrupted (%v)", d.Err())
		}
	})
}
