package mcs

import "testing"

// FuzzDec checks that the wire decoder never panics on arbitrary
// payloads — protocol handlers rely on Err() for malformed input, so
// the accessors themselves must be total.
func FuzzDec(f *testing.F) {
	var e Enc
	e.U32(3).I64(-9).Str("xyz").U32Slice([]uint32{1, 2})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Add([]byte{0, 5, 'a'})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		_ = d.U32()
		_ = d.Str()
		_ = d.U32Slice()
		_ = d.I64()
		_ = d.Str()
		if d.Err() == nil && d.Rest() < 0 {
			t.Fatal("negative rest")
		}
	})
}

// FuzzDecSliceFirst decodes in a different field order to cover the
// slice-length paths.
func FuzzDecSliceFirst(f *testing.F) {
	f.Add([]byte{0, 3, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		s := d.U32Slice()
		if d.Err() != nil && s != nil {
			t.Fatal("slice returned despite decode error")
		}
	})
}
