package mcs

import (
	"reflect"
	"testing"
)

// FuzzDec checks that the wire decoder never panics on arbitrary
// payloads — protocol handlers rely on Err() for malformed input, so
// the accessors themselves must be total.
func FuzzDec(f *testing.F) {
	var e Enc
	e.U32(3).I64(-9).Str("xyz").U32Slice([]uint32{1, 2})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Add([]byte{0, 5, 'a'})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		_ = d.U32()
		_ = d.Str()
		_ = d.U32Slice()
		_ = d.I64()
		_ = d.Str()
		if d.Err() == nil && d.Rest() < 0 {
			t.Fatal("negative rest")
		}
	})
}

// FuzzDecSliceFirst decodes in a different field order to cover the
// slice-length paths, including the allocation-free U32SliceInto.
func FuzzDecSliceFirst(f *testing.F) {
	f.Add([]byte{0, 3, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		s := d.U32Slice()
		if d.Err() != nil && s != nil {
			t.Fatal("slice returned despite decode error")
		}
		d2 := DecOf(data)
		scratch := make([]uint32, 0, 8)
		s2 := d2.U32SliceInto(scratch)
		if (d.Err() == nil) != (d2.Err() == nil) {
			t.Fatalf("U32Slice and U32SliceInto disagree on validity: %v vs %v", d.Err(), d2.Err())
		}
		if d.Err() == nil && !reflect.DeepEqual(append([]uint32{}, s...), append([]uint32{}, s2...)) {
			t.Fatalf("U32Slice %v != U32SliceInto %v", s, s2)
		}
	})
}

// The round-trip fuzzers below cover the exact payload schema of every
// protocol message kind in the repo, so a change to the Enc/Dec
// helpers that silently corrupts any field is caught. Since the
// zero-allocation refactor, variables travel as dense VarIDs, writers
// ride in the message source, and the fire-and-forget protocols pack
// multiple records into one batched frame (U32 record count, then the
// records back to back — see Outbox):
//
//   - pram.update frame record: (U32 wseq, U32 varID, I64 v)
//   - slow.update frame record: (U32 wseq, U32 vseq, U32 varID, I64 v)
//   - causal.update frame record: (U32Slice vc, U32 varID, I64 v)
//   - causalpart update/notify frame record: (U32 wseq, U32 varID,
//     U32 hasValue, [I64 v], U32 nDeps, nDeps × (U32, U32, U32))
//   - seqcons/cachepart requests, atomicreg write-req:
//     (U32 wseq, U32 varID, I64 v)
//   - seqcons/cachepart updates: (U32 seq, U32 writer, U32 wseq,
//     U32 varID, I64 v)
//   - atomicreg read-req: (U32 varID); read-resp: (I64 v)

// FuzzWireRoundTripRequest covers the 3-field direct-send schema shared
// by the seqcons/cachepart requests and atomicreg's write request.
func FuzzWireRoundTripRequest(f *testing.F) {
	f.Add(uint32(0), uint32(0), int64(-1))
	f.Add(uint32(1<<31), uint32(7), int64(1)<<62)
	f.Fuzz(func(t *testing.T, wseq, varID uint32, v int64) {
		var e Enc
		e.U32(wseq).U32(varID).I64(v)
		d := DecOf(e.Bytes())
		gs, gx, gv := d.U32(), d.U32(), d.I64()
		if err := d.Err(); err != nil {
			t.Fatalf("decode failed on encoder output: %v", err)
		}
		if gs != wseq || gx != varID || gv != v || d.Rest() != 0 {
			t.Fatalf("round trip (%d,%d,%d) → (%d,%d,%d), rest %d", wseq, varID, v, gs, gx, gv, d.Rest())
		}
	})
}

// FuzzWireRoundTripSequenced covers the sequencer-stamped updates of
// seqcons and cachepart (a leading global/per-variable sequence and an
// explicit writer).
func FuzzWireRoundTripSequenced(f *testing.F) {
	f.Add(uint32(0), uint32(1), uint32(2), uint32(0), int64(-5))
	f.Fuzz(func(t *testing.T, seq, writer, wseq, varID uint32, v int64) {
		var e Enc
		e.U32(seq).U32(writer).U32(wseq).U32(varID).I64(v)
		d := DecOf(e.Bytes())
		if gg, gw, gs, gx, gv := d.U32(), d.U32(), d.U32(), d.U32(), d.I64(); d.Err() != nil ||
			gg != seq || gw != writer || gs != wseq || gx != varID || gv != v || d.Rest() != 0 {
			t.Fatalf("sequenced update round trip corrupted (%v)", d.Err())
		}
	})
}

// FuzzWireRoundTripPRAMFrame covers the batched pram.update frame with
// a fuzz-chosen record count; slow.update is the same shape with one
// extra U32 per record, covered by the vseq derivation below.
func FuzzWireRoundTripPRAMFrame(f *testing.F) {
	f.Add(uint8(1), uint32(0), uint32(0), int64(7))
	f.Add(uint8(16), uint32(3), uint32(9), int64(-2))
	f.Add(uint8(0), uint32(0), uint32(0), int64(0))
	f.Fuzz(func(t *testing.T, count uint8, wseq0, varID0 uint32, v0 int64) {
		records := int(count)
		var e Enc
		e.U32(uint32(records))
		for k := 0; k < records; k++ {
			e.U32(wseq0 + uint32(k)).U32(wseq0 + uint32(k)). // slow-style vseq companion
										U32(varID0 ^ uint32(k)).I64(v0 + int64(k))
		}
		d := DecOf(e.Bytes())
		if got := int(d.U32()); got != records {
			t.Fatalf("record count %d → %d", records, got)
		}
		for k := 0; k < records; k++ {
			gs, gq, gx, gv := d.U32(), d.U32(), d.U32(), d.I64()
			if d.Err() != nil {
				t.Fatalf("record %d: decode failed: %v", k, d.Err())
			}
			if gs != wseq0+uint32(k) || gq != wseq0+uint32(k) || gx != varID0^uint32(k) || gv != v0+int64(k) {
				t.Fatalf("record %d corrupted", k)
			}
		}
		if d.Rest() != 0 {
			t.Fatalf("%d trailing bytes after full frame decode", d.Rest())
		}
	})
}

// FuzzWireRoundTripCausalFull covers causalfull.update's vector-clock
// record inside a one-record frame; the clock is derived from raw fuzz
// bytes and decoded through the allocation-free U32SliceInto path the
// handler uses.
func FuzzWireRoundTripCausalFull(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint32(0), int64(4))
	f.Add([]byte{}, uint32(2), int64(0))
	f.Fuzz(func(t *testing.T, clock []byte, varID uint32, v int64) {
		if len(clock) > 0xffff {
			clock = clock[:0xffff]
		}
		vc := make([]uint32, len(clock))
		for i, b := range clock {
			vc[i] = uint32(b) << uint(i%24)
		}
		var e Enc
		e.U32(1).U32Slice(vc).U32(varID).I64(v)
		d := DecOf(e.Bytes())
		if n := d.U32(); n != 1 {
			t.Fatalf("frame count 1 → %d", n)
		}
		scratch := make([]uint32, 0, 4)
		gvc := d.U32SliceInto(scratch)
		gx, gv := d.U32(), d.I64()
		if err := d.Err(); err != nil {
			t.Fatalf("decode failed on encoder output: %v", err)
		}
		if len(vc) == 0 {
			if len(gvc) != 0 {
				t.Fatalf("empty clock decoded as %v", gvc)
			}
		} else if !reflect.DeepEqual(gvc, vc) {
			t.Fatalf("vector clock %v → %v", vc, gvc)
		}
		if gx != varID || gv != v || d.Rest() != 0 {
			t.Fatalf("causalfull.update round trip corrupted")
		}
	})
}

// FuzzWireRoundTripCausalPart covers the causal-partial record schema:
// optional value plus a variable-length dependency list whose count is
// back-filled with PatchU32, exactly as the protocol encodes it.
func FuzzWireRoundTripCausalPart(f *testing.F) {
	f.Add(uint32(2), uint32(0), true, int64(7), []byte{1, 0, 3, 2, 1, 9})
	f.Add(uint32(0), uint32(5), false, int64(0), []byte{})
	f.Fuzz(func(t *testing.T, wseq, varID uint32, hasValue bool, v int64, depBytes []byte) {
		type dep struct{ writer, varID, count uint32 }
		var deps []dep
		for i := 0; i+2 < len(depBytes) && len(deps) < 1024; i += 3 {
			deps = append(deps, dep{uint32(depBytes[i]), uint32(depBytes[i+1]), uint32(depBytes[i+2]) << 8})
		}
		var e Enc
		e.U32(wseq).U32(varID)
		if hasValue {
			e.U32(1).I64(v)
		} else {
			e.U32(0)
		}
		countPos := e.Len()
		e.U32(0)
		for _, d := range deps {
			e.U32(d.writer).U32(d.varID).U32(d.count)
		}
		e.PatchU32(countPos, uint32(len(deps)))

		d := DecOf(e.Bytes())
		if gs, gxi := d.U32(), d.U32(); gs != wseq || gxi != varID {
			t.Fatalf("header corrupted: (%d,%d)", gs, gxi)
		}
		if has := d.U32() == 1; has != hasValue {
			t.Fatalf("hasValue flag flipped")
		} else if has {
			if gv := d.I64(); gv != v {
				t.Fatalf("value %d → %d", v, gv)
			}
		}
		n := int(d.U32())
		if n != len(deps) {
			t.Fatalf("dep count %d → %d", len(deps), n)
		}
		for i := 0; i < n; i++ {
			if gd := (dep{d.U32(), d.U32(), d.U32()}); gd != deps[i] {
				t.Fatalf("dep %d: %+v → %+v", i, deps[i], gd)
			}
		}
		if err := d.Err(); err != nil || d.Rest() != 0 {
			t.Fatalf("causalpart round trip left err=%v rest=%d", err, d.Rest())
		}
	})
}

// FuzzWireRoundTripAtomicReadPath covers atomicreg's read request and
// read response schemas.
func FuzzWireRoundTripAtomicReadPath(f *testing.F) {
	f.Add(uint32(3), int64(42))
	f.Fuzz(func(t *testing.T, varID uint32, v int64) {
		var req Enc
		req.U32(varID)
		d := DecOf(req.Bytes())
		if gx := d.U32(); d.Err() != nil || gx != varID || d.Rest() != 0 {
			t.Fatalf("read-req round trip corrupted (%v)", d.Err())
		}
		var resp Enc
		resp.I64(v)
		d = DecOf(resp.Bytes())
		if gv := d.I64(); d.Err() != nil || gv != v || d.Rest() != 0 {
			t.Fatalf("read-resp round trip corrupted (%v)", d.Err())
		}
	})
}
