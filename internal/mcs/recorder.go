package mcs

import (
	"fmt"
	"sync"

	"partialdsm/internal/check"
	"partialdsm/internal/model"
)

// Recorder captures, concurrently and race-free, the global history of
// application operations (per-process program order) and the per-node
// event logs (apply order of writes plus local reads) that the witness
// validators in internal/check consume.
type Recorder struct {
	mu       sync.Mutex
	numProcs int
	// Per-process operation sequences forming the global history.
	ops [][]recordedOp
	// Per-node event logs.
	logs [][]check.Event
	// Per-process count of issued writes, to assign write sequence
	// numbers (WSeq).
	writeSeq []int
	// observer, when set, receives every event as it is recorded (live
	// runtime verification). Called with the recorder lock held; it
	// must not call back into the recorder.
	observer func(node int, e check.Event)
}

// SetObserver installs a live event observer (e.g. a check.Monitor).
// Must be called before any operation is recorded.
func (r *Recorder) SetObserver(f func(node int, e check.Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observer = f
}

type recordedOp struct {
	isWrite bool
	v       string
	val     model.Value
}

// NewRecorder returns a recorder for numProcs processes/nodes.
func NewRecorder(numProcs int) *Recorder {
	return &Recorder{
		numProcs: numProcs,
		ops:      make([][]recordedOp, numProcs),
		logs:     make([][]check.Event, numProcs),
		writeSeq: make([]int, numProcs),
	}
}

// NumProcs returns the number of processes the recorder tracks.
func (r *Recorder) NumProcs() int { return r.numProcs }

// RecordWrite records that process p issued a write of v to x and
// returns the write's per-process sequence number. Protocols must call
// this exactly once per write, from the issuing application goroutine.
// The value bytes are copied; the caller keeps ownership of v.
func (r *Recorder) RecordWrite(p int, x string, v []byte) (wseq int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	wseq = r.writeSeq[p]
	r.writeSeq[p]++
	r.ops[p] = append(r.ops[p], recordedOp{isWrite: true, v: x, val: model.ValueOf(v)})
	return wseq
}

// RecordRead records that process p read v from x, both in the global
// history and in node p's event log. The value bytes are copied.
func (r *Recorder) RecordRead(p int, x string, v []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	val := model.ValueOf(v)
	r.ops[p] = append(r.ops[p], recordedOp{v: x, val: val})
	e := check.Event{IsRead: true, Var: x, Val: val}
	r.logs[p] = append(r.logs[p], e)
	if r.observer != nil {
		r.observer(p, e)
	}
}

// RecordApply records that node applied the wseq-th write of writer
// (x := v) to its local replica. Protocols call this for local writes
// too, at local-apply time.
// The value bytes are copied.
func (r *Recorder) RecordApply(node, writer, wseq int, x string, v []byte) {
	r.RecordApplyAt(node, writer, wseq, x, v, 0)
}

// RecordApplyAt is RecordApply with an explicit placement-epoch stamp,
// for protocols whose witness is location-sensitive (the atomic
// register's owner condition) under migratable ownership.
func (r *Recorder) RecordApplyAt(node, writer, wseq int, x string, v []byte, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := check.Event{Writer: writer, WSeq: wseq, Var: x, Val: model.ValueOf(v), Epoch: epoch}
	r.logs[node] = append(r.logs[node], e)
	if r.observer != nil {
		r.observer(node, e)
	}
}

// RecordRecover records that node re-acquired x = v — the wseq-th
// write of writer — from a peer snapshot during crash recovery, rather
// than by applying the write's own update message. Recovery events
// enter the node's event log and reach the observer (the witnesses
// re-anchor the node's position instead of enforcing gapless apply
// order across them) but not the global history: the operation itself
// was already recorded by its writer. A recovery of a variable to ⊥
// with writer -1 marks a reset — no live peer knew a value. The value
// bytes are copied.
func (r *Recorder) RecordRecover(node, writer, wseq int, x string, v []byte) {
	r.RecordRecoverAt(node, writer, wseq, x, v, 0)
}

// RecordRecoverAt is RecordRecover with an explicit placement-epoch
// stamp.
func (r *Recorder) RecordRecoverAt(node, writer, wseq int, x string, v []byte, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := check.Event{IsRecover: true, Writer: writer, WSeq: wseq, Var: x, Val: model.ValueOf(v), Epoch: epoch}
	r.logs[node] = append(r.logs[node], e)
	if r.observer != nil {
		r.observer(node, e)
	}
}

// RecordMigrate records that node adopted x = v — the wseq-th write of
// writer — from a donor's transfer snapshot while gaining the variable
// in an epoch reconfiguration. Like recovery events, migration events
// enter the node's event log and reach the observer but not the global
// history. A migration of a variable to ⊥ with writer -1 marks a reset
// — no live donor held a value. The value bytes are copied.
func (r *Recorder) RecordMigrate(node, writer, wseq int, x string, v []byte) {
	r.RecordMigrateAt(node, writer, wseq, x, v, 0)
}

// RecordMigrateAt is RecordMigrate with an explicit placement-epoch
// stamp (the epoch the node flipped to when it adopted the value).
func (r *Recorder) RecordMigrateAt(node, writer, wseq int, x string, v []byte, epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := check.Event{IsMigrate: true, Writer: writer, WSeq: wseq, Var: x, Val: model.ValueOf(v), Epoch: epoch}
	r.logs[node] = append(r.logs[node], e)
	if r.observer != nil {
		r.observer(node, e)
	}
}

// History materializes the recorded global history.
func (r *Recorder) History() (*model.History, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := model.NewBuilder(r.numProcs)
	for p := 0; p < r.numProcs; p++ {
		for _, o := range r.ops[p] {
			if o.isWrite {
				b.WriteVal(p, o.v, o.val)
			} else if o.val == model.Bottom {
				b.ReadInit(p, o.v)
			} else {
				b.ReadVal(p, o.v, o.val)
			}
		}
	}
	return b.History()
}

// Logs returns a deep copy of the per-node event logs.
func (r *Recorder) Logs() [][]check.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]check.Event, r.numProcs)
	for i := range r.logs {
		out[i] = append([]check.Event(nil), r.logs[i]...)
	}
	return out
}

// OpCount returns the total number of recorded operations.
func (r *Recorder) OpCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ops := range r.ops {
		n += len(ops)
	}
	return n
}

// String summarizes the recorder state.
func (r *Recorder) String() string {
	return fmt.Sprintf("recorder(%d procs, %d ops)", r.numProcs, r.OpCount())
}
