package mcs

import (
	"encoding/binary"
	"fmt"
	"sync"

	"partialdsm/internal/netsim"
)

// Outbox coalesces a node's outgoing updates per destination: instead
// of one netsim.Message per update per peer, up to `batch` staged
// records ride together in a single batched frame per destination. The
// paper's per-pair FIFO argument is preserved because a frame travels
// on the same ordered pair its records would have used individually and
// the receiver applies the records in frame order; only the
// message-per-write constant changes, not what any node learns or in
// what order (see README "Coalescing semantics").
//
// Frame layout: a big-endian uint32 record count followed by `count`
// protocol-specific records, exactly as staged.
//
// Usage (all calls under the owning node's mutex — the Outbox itself is
// not synchronized):
//
//	enc := out.Stage()            // reset the shared record encoder
//	enc.U32(...).I64(...)         // encode one record
//	out.AddTo(dst, name, ctrl, data) // append it to dst's frame
//
// A frame is flushed when it reaches the batch size, when the owning
// protocol reads (Outbox owners flush on Read so a polling peer
// eventually observes buffered writes), and when the cluster quiesces
// (mcs.Flusher). Payload and variable-list buffers come from the
// process-wide pools; the receiving handler recycles them with
// RecycleFrame after decoding.
//
// Two engine-driven flush policies ride on top (SetFlushPolicy), both
// keyed to the transport's deterministic virtual clock so the flush
// schedule is reproducible across engines and machines:
//
//   - Timer: a frame staged into an empty outbox arms a virtual-time
//     deadline; when the clock reaches it (so many deliveries later, or
//     immediately once the network goes idle) every pending frame
//     flushes. This bounds how long a silent writer's tail can sit
//     buffered, making coalescing safe for poll-style workloads.
//   - Adaptive: each destination's frame flushes as soon as that
//     destination has no inbound traffic in flight — a busy receiver
//     lets records pile into one frame, an idle one gets them at once,
//     so latency-bound workloads keep the message reduction without a
//     round-trip stretch.
//
// Policy callbacks run on transport goroutines and take the owning
// node's mutex, so they serialize with the node's operations like any
// message handler.
type Outbox struct {
	net   netsim.Transport
	from  int
	kind  string
	batch int

	enc     Enc // staging encoder, reused for every record
	dests   []destFrame
	pending int    // records buffered across all destinations
	hold    bool   // batch bracket open: suppress every flush until Release
	epoch   uint64 // placement epoch stamped on outgoing frames (SetEpoch)

	// Engine-driven flush policies (nil/zero when disabled). fmu is the
	// owning node's mutex; every callback takes it before touching the
	// outbox.
	fmu       *sync.Mutex
	clk       netsim.Clock
	pm        netsim.PairMonitor
	ticks     uint64
	adaptive  bool
	armed     bool     // a timer deadline is outstanding
	staleArm  bool     // the outstanding deadline belongs to an already-flushed batch
	timerFn   func()   // pre-built timer callback (no per-arm closure)
	destFns   []func() // pre-built per-destination adaptive callbacks
	destArmed []bool   // an adaptive hook is outstanding per destination
}

// destFrame is one destination's frame under construction.
type destFrame struct {
	buf        []byte // nil while empty; starts with a 4-byte count slot
	count      int
	ctrl, data int
	vars       []string
}

// frameHeaderLen is the size of the record-count prefix; it is
// accounted as control bytes when the frame is flushed.
const frameHeaderLen = 4

// NewOutbox returns an outbox for node `from` sending messages of the
// given kind. batch < 2 disables coalescing: every AddTo flushes
// immediately, reproducing the one-message-per-update wire behaviour
// (in the batched frame format, with count 1).
func NewOutbox(net netsim.Transport, from int, kind string, batch int) *Outbox {
	if batch < 1 {
		batch = 1
	}
	return &Outbox{
		net:   net,
		from:  from,
		kind:  kind,
		batch: batch,
		dests: make([]destFrame, net.NumNodes()),
	}
}

// SetFlushPolicy enables the engine-driven flush modes: flushTicks > 0
// arms a virtual-time deadline whenever records are buffered, and
// adaptive flushes a destination's frame as soon as the destination
// has no inbound traffic pending. mu must be the mutex the owning node
// guards the outbox with; policy callbacks take it before flushing. A
// no-op when coalescing is off (batch < 2), when both policies are
// disabled, or when the transport has no clock (test fakes).
func (o *Outbox) SetFlushPolicy(mu *sync.Mutex, flushTicks int, adaptive bool) {
	if o.batch < 2 || (flushTicks <= 0 && !adaptive) {
		return
	}
	clk := o.net.Clock()
	if clk == nil {
		return
	}
	o.fmu = mu
	o.clk = clk
	if flushTicks > 0 {
		o.ticks = uint64(flushTicks)
		o.timerFn = func() {
			o.fmu.Lock()
			o.armed = false
			if o.staleArm {
				// The batch this deadline was armed for already flushed
				// (batch-full/read/quiesce). Records staged since then get
				// a fresh full window instead of a near-zero one.
				o.staleArm = false
				if o.pending > 0 {
					o.armed = true
					o.clk.After(o.ticks, o.timerFn)
				}
			} else if o.pending > 0 {
				o.Flush()
			}
			o.fmu.Unlock()
		}
	}
	if adaptive {
		o.adaptive = true
		o.pm, _ = o.net.(netsim.PairMonitor)
		o.destFns = make([]func(), len(o.dests))
		o.destArmed = make([]bool, len(o.dests))
		for dst := range o.destFns {
			dst := dst
			o.destFns[dst] = func() {
				o.fmu.Lock()
				o.destArmed[dst] = false
				o.flushDest(dst)
				o.fmu.Unlock()
			}
		}
	}
}

// SetEpoch sets the placement epoch stamped on every frame the outbox
// sends from now on. Called under the owning node's mutex, after the
// node's pre-flip records have been flushed — a frame carries the epoch
// its records were staged under. Static clusters never call it (epoch
// stays 0, the zero Message value).
func (o *Outbox) SetEpoch(e uint64) { o.epoch = e }

// Nudge gives the transport's clock an idle-advance opportunity.
// Protocol reads call it (outside the node mutex) when a flush policy
// is active, so a polling reader drives buffered writers' deadlines
// even when no message is in flight.
func (o *Outbox) Nudge() {
	if o.clk != nil {
		o.clk.AdvanceIdle()
	}
}

// Stage resets and returns the record encoder. The staged bytes stay
// valid until the next Stage call, so one record can be appended to any
// number of destinations without re-encoding (the multicast fast path).
func (o *Outbox) Stage() *Enc {
	o.enc.Reset()
	return &o.enc
}

// Emit sends the staged record to every destination. When coalescing
// is off (batch ≤ 1) the whole multicast shares one refcounted pooled
// frame, recycled by the last receiver (RecycleFrame); with coalescing
// on, the record is appended to each destination's pooled frame
// (AddToVars), amortizing the buffer traffic over the batch. vars is
// the record's variable list; callers pass a shared static slice
// (sharegraph.Index.MsgVars) so the uncoalesced fast path allocates
// nothing in steady state.
func (o *Outbox) Emit(dests []int, vars []string, ctrl, data int) {
	if len(dests) == 0 {
		return
	}
	if o.batch > 1 || o.hold {
		for _, dst := range dests {
			o.AddToVars(dst, vars, ctrl, data)
		}
		return
	}
	rec := o.enc.Bytes()
	//lint:allow poolown dests is non-empty (guarded above), so every path reaches a Send adopting the refcounted buffer
	buf, refs := GetSharedPayload(len(dests))
	buf = append(buf, 0, 0, 0, 1) // count = 1
	buf = append(buf, rec...)
	for _, dst := range dests {
		o.net.Send(netsim.Message{
			From:          o.from,
			To:            dst,
			Kind:          o.kind,
			Payload:       buf,
			CtrlBytes:     ctrl + frameHeaderLen,
			DataBytes:     data,
			Vars:          vars,
			Epoch:         o.epoch,
			SharedPayload: true,
			SharedRefs:    refs,
		})
	}
}

// AddTo appends the staged record to dst's pending frame, carrying
// information about the single variable x with the given control/data
// byte split. The frame is flushed when it reaches the batch size.
func (o *Outbox) AddTo(dst int, x string, ctrl, data int) {
	d := o.appendStaged(dst, ctrl, data)
	d.addVar(x)
	if d.count >= o.batch {
		o.flushDest(dst)
	}
}

// AddToVars is AddTo for records mentioning several variables (the
// causal dependency lists). names may contain duplicates; the frame's
// variable list is deduplicated.
func (o *Outbox) AddToVars(dst int, names []string, ctrl, data int) {
	d := o.appendStaged(dst, ctrl, data)
	for _, x := range names {
		d.addVar(x)
	}
	if d.count >= o.batch {
		o.flushDest(dst)
	}
}

// appendStaged copies the staged record into dst's frame.
func (o *Outbox) appendStaged(dst int, ctrl, data int) *destFrame {
	if dst < 0 || dst >= len(o.dests) {
		panic(fmt.Sprintf("mcs: outbox destination %d out of range [0,%d)", dst, len(o.dests)))
	}
	d := &o.dests[dst]
	if d.buf == nil {
		d.buf = GetPayload()
		d.buf = append(d.buf, 0, 0, 0, 0) // count slot
		d.vars = getVars()
		if o.adaptive && !o.destArmed[dst] {
			// Adaptive: flush this frame once dst has no inbound traffic.
			// The pair monitor fires the hook on dst's drain transition,
			// or at the next clock advance if dst is already quiet. At
			// most one hook per destination is outstanding; a hook that
			// outlives its frame (another path flushed first) covers the
			// next frame instead.
			o.destArmed[dst] = true
			if o.pm != nil {
				o.pm.OnInboundIdle(dst, o.destFns[dst])
			} else {
				o.clk.Schedule(o.clk.Now(), o.destFns[dst])
			}
		}
	}
	if o.ticks > 0 && !o.armed {
		o.armed = true
		o.clk.After(o.ticks, o.timerFn)
	}
	d.buf = append(d.buf, o.enc.Bytes()...)
	d.count++
	d.ctrl += ctrl
	d.data += data
	o.pending++
	return d
}

// addVar records x in the frame's deduplicated variable list.
func (d *destFrame) addVar(x string) {
	for _, v := range d.vars {
		if v == x {
			return
		}
	}
	d.vars = append(d.vars, x)
}

// HasPending reports whether any record is buffered. Protocols check it
// on Read so an empty outbox costs one branch.
func (o *Outbox) HasPending() bool { return o.pending > 0 }

// Flush sends every destination's pending frame.
func (o *Outbox) Flush() {
	if o.pending == 0 {
		return
	}
	for dst := range o.dests {
		o.flushDest(dst)
	}
}

// Hold opens a batch bracket: every flush trigger (batch-full, read,
// timer, adaptive hook, quiesce) is suppressed until Release, so all
// records staged inside the bracket leave as one frame per
// destination. Called under the owning node's mutex.
func (o *Outbox) Hold() { o.hold = true }

// Release closes the batch bracket and flushes everything buffered.
// Called under the owning node's mutex.
func (o *Outbox) Release() {
	o.hold = false
	o.Flush()
}

// flushDest seals and sends dst's frame: the record count is patched
// into the header and the buffers are handed off to the transport (the
// receiving handler recycles them).
func (o *Outbox) flushDest(dst int) {
	d := &o.dests[dst]
	if d.count == 0 || o.hold {
		return
	}
	binary.BigEndian.PutUint32(d.buf[:frameHeaderLen], uint32(d.count))
	o.net.Send(netsim.Message{
		From:      o.from,
		To:        dst,
		Kind:      o.kind,
		Payload:   d.buf,
		CtrlBytes: d.ctrl + frameHeaderLen,
		DataBytes: d.data,
		Vars:      d.vars,
		Epoch:     o.epoch,
	})
	o.pending -= d.count
	if o.pending == 0 && o.armed {
		o.staleArm = true // the outstanding deadline no longer covers live records
	}
	*d = destFrame{}
}

// Flusher is implemented by protocol nodes that buffer outgoing updates
// in an Outbox. The cluster facade flushes every node before waiting
// for network quiescence, so Quiesce remains the global cut it was
// without coalescing.
type Flusher interface {
	// FlushUpdates sends all buffered updates. Safe to call from any
	// goroutine; the node synchronizes internally.
	FlushUpdates()
}
