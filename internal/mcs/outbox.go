package mcs

import (
	"encoding/binary"
	"fmt"

	"partialdsm/internal/netsim"
)

// Outbox coalesces a node's outgoing updates per destination: instead
// of one netsim.Message per update per peer, up to `batch` staged
// records ride together in a single batched frame per destination. The
// paper's per-pair FIFO argument is preserved because a frame travels
// on the same ordered pair its records would have used individually and
// the receiver applies the records in frame order; only the
// message-per-write constant changes, not what any node learns or in
// what order (see README "Coalescing semantics").
//
// Frame layout: a big-endian uint32 record count followed by `count`
// protocol-specific records, exactly as staged.
//
// Usage (all calls under the owning node's mutex — the Outbox itself is
// not synchronized):
//
//	enc := out.Stage()            // reset the shared record encoder
//	enc.U32(...).I64(...)         // encode one record
//	out.AddTo(dst, name, ctrl, data) // append it to dst's frame
//
// A frame is flushed when it reaches the batch size, when the owning
// protocol reads (Outbox owners flush on Read so a polling peer
// eventually observes buffered writes), and when the cluster quiesces
// (mcs.Flusher). Payload and variable-list buffers come from the
// process-wide pools; the receiving handler recycles them with
// RecycleFrame after decoding.
type Outbox struct {
	net   netsim.Transport
	from  int
	kind  string
	batch int

	enc     Enc // staging encoder, reused for every record
	dests   []destFrame
	pending int // records buffered across all destinations
}

// destFrame is one destination's frame under construction.
type destFrame struct {
	buf        []byte // nil while empty; starts with a 4-byte count slot
	count      int
	ctrl, data int
	vars       []string
}

// frameHeaderLen is the size of the record-count prefix; it is
// accounted as control bytes when the frame is flushed.
const frameHeaderLen = 4

// NewOutbox returns an outbox for node `from` sending messages of the
// given kind. batch < 2 disables coalescing: every AddTo flushes
// immediately, reproducing the one-message-per-update wire behaviour
// (in the batched frame format, with count 1).
func NewOutbox(net netsim.Transport, from int, kind string, batch int) *Outbox {
	if batch < 1 {
		batch = 1
	}
	return &Outbox{
		net:   net,
		from:  from,
		kind:  kind,
		batch: batch,
		dests: make([]destFrame, net.NumNodes()),
	}
}

// Stage resets and returns the record encoder. The staged bytes stay
// valid until the next Stage call, so one record can be appended to any
// number of destinations without re-encoding (the multicast fast path).
func (o *Outbox) Stage() *Enc {
	o.enc.Reset()
	return &o.enc
}

// Emit sends the staged record to every destination. When coalescing
// is off (batch ≤ 1) the whole multicast shares one exact-size frame —
// a single allocation, marked SharedPayload so receivers leave it
// alone; with coalescing on, the record is appended to each
// destination's pooled frame (AddToVars), amortizing the buffer
// traffic over the batch. vars is the record's variable list; callers
// pass a shared static slice (sharegraph.Index.MsgVars) so the
// uncoalesced fast path allocates nothing beyond the frame itself.
func (o *Outbox) Emit(dests []int, vars []string, ctrl, data int) {
	if len(dests) == 0 {
		return
	}
	if o.batch > 1 {
		for _, dst := range dests {
			o.AddToVars(dst, vars, ctrl, data)
		}
		return
	}
	rec := o.enc.Bytes()
	buf := make([]byte, 0, frameHeaderLen+len(rec))
	buf = append(buf, 0, 0, 0, 1) // count = 1
	buf = append(buf, rec...)
	for _, dst := range dests {
		o.net.Send(netsim.Message{
			From:          o.from,
			To:            dst,
			Kind:          o.kind,
			Payload:       buf,
			CtrlBytes:     ctrl + frameHeaderLen,
			DataBytes:     data,
			Vars:          vars,
			SharedPayload: true,
		})
	}
}

// AddTo appends the staged record to dst's pending frame, carrying
// information about the single variable x with the given control/data
// byte split. The frame is flushed when it reaches the batch size.
func (o *Outbox) AddTo(dst int, x string, ctrl, data int) {
	d := o.appendStaged(dst, ctrl, data)
	d.addVar(x)
	if d.count >= o.batch {
		o.flushDest(dst)
	}
}

// AddToVars is AddTo for records mentioning several variables (the
// causal dependency lists). names may contain duplicates; the frame's
// variable list is deduplicated.
func (o *Outbox) AddToVars(dst int, names []string, ctrl, data int) {
	d := o.appendStaged(dst, ctrl, data)
	for _, x := range names {
		d.addVar(x)
	}
	if d.count >= o.batch {
		o.flushDest(dst)
	}
}

// appendStaged copies the staged record into dst's frame.
func (o *Outbox) appendStaged(dst int, ctrl, data int) *destFrame {
	if dst < 0 || dst >= len(o.dests) {
		panic(fmt.Sprintf("mcs: outbox destination %d out of range [0,%d)", dst, len(o.dests)))
	}
	d := &o.dests[dst]
	if d.buf == nil {
		d.buf = GetPayload()
		d.buf = append(d.buf, 0, 0, 0, 0) // count slot
		d.vars = getVars()
	}
	d.buf = append(d.buf, o.enc.Bytes()...)
	d.count++
	d.ctrl += ctrl
	d.data += data
	o.pending++
	return d
}

// addVar records x in the frame's deduplicated variable list.
func (d *destFrame) addVar(x string) {
	for _, v := range d.vars {
		if v == x {
			return
		}
	}
	d.vars = append(d.vars, x)
}

// HasPending reports whether any record is buffered. Protocols check it
// on Read so an empty outbox costs one branch.
func (o *Outbox) HasPending() bool { return o.pending > 0 }

// Flush sends every destination's pending frame.
func (o *Outbox) Flush() {
	if o.pending == 0 {
		return
	}
	for dst := range o.dests {
		o.flushDest(dst)
	}
}

// flushDest seals and sends dst's frame: the record count is patched
// into the header and the buffers are handed off to the transport (the
// receiving handler recycles them).
func (o *Outbox) flushDest(dst int) {
	d := &o.dests[dst]
	if d.count == 0 {
		return
	}
	binary.BigEndian.PutUint32(d.buf[:frameHeaderLen], uint32(d.count))
	o.net.Send(netsim.Message{
		From:      o.from,
		To:        dst,
		Kind:      o.kind,
		Payload:   d.buf,
		CtrlBytes: d.ctrl + frameHeaderLen,
		DataBytes: d.data,
		Vars:      d.vars,
	})
	o.pending -= d.count
	*d = destFrame{}
}

// Flusher is implemented by protocol nodes that buffer outgoing updates
// in an Outbox. The cluster facade flushes every node before waiting
// for network quiescence, so Quiesce remains the global cut it was
// without coalescing.
type Flusher interface {
	// FlushUpdates sends all buffered updates. Safe to call from any
	// goroutine; the node synchronizes internally.
	FlushUpdates()
}
