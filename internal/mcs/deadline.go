package mcs

import (
	"errors"
	"fmt"
	"sync"
)

// ErrOpDeadline is the sentinel wrapped by every deadline-expired
// operation error (Config.OpDeadlineTicks): callers distinguish "the
// network never answered in budget" from protocol errors with
// errors.Is.
var ErrOpDeadline = errors.New("mcs: operation deadline exceeded")

// WaitDeadline blocks the application goroutine on cond until done()
// reports true, giving up once the transport's virtual clock has
// advanced OpDeadlineTicks past entry. cond.L (the node mutex) must be
// held on entry and is held again on return. On expiry the returned
// error wraps ErrOpDeadline, carries describe()'s account of the stuck
// operation, and is also dispatched to OnFault when one is set — the
// per-node fail-fast path — before being handed back to the caller.
//
// The expiry callback rides the virtual clock, so it fires whenever
// deliveries tick time past the deadline or an idle network jumps to
// it. The blocked application goroutine may be the only one left — its
// request dropped on an otherwise silent network — so the loop nudges
// the clock (AdvanceIdle) before each sleep: an idle network then
// jumps straight to the deadline and the callback's broadcast wakes
// the wait. Callers avoid closure setup on the common path by only
// calling WaitDeadline when OpDeadlineTicks > 0, though a
// non-positive budget degrades to the plain unbounded wait.
func (c Config) WaitDeadline(node int, cond *sync.Cond, done func() bool, describe func() string) error {
	if done() {
		return nil
	}
	if c.OpDeadlineTicks <= 0 {
		for !done() {
			cond.Wait()
		}
		return nil
	}
	clk := c.Net.Clock()
	expired := false
	deadline := clk.After(uint64(c.OpDeadlineTicks), func() {
		cond.L.Lock()
		expired = true
		cond.Broadcast()
		cond.L.Unlock()
	})
	for {
		if done() {
			return nil
		}
		if expired || clk.Now() >= deadline {
			err := fmt.Errorf("%s: no progress within OpDeadlineTicks=%d: %w",
				describe(), c.OpDeadlineTicks, ErrOpDeadline)
			if c.OnFault != nil {
				c.OnFault(node, err)
			}
			return err
		}
		cond.L.Unlock()
		clk.AdvanceIdle()
		cond.L.Lock()
		if done() || expired || clk.Now() >= deadline {
			continue
		}
		cond.Wait()
	}
}
