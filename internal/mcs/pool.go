package mcs

import "partialdsm/internal/netsim"

// Payload and variable-list recycling.
//
// The transport contract (netsim.Transport) hands payload ownership to
// the destination handler: once the handler runs, the transport never
// reads or writes the slice again. Protocol handlers exploit that by
// returning fully decoded buffers to a process-wide free list, so in
// steady state a node's writes encode into recycled memory and the
// protocol hot path allocates nothing.
//
// The free lists are buffered channels rather than sync.Pool: putting a
// []byte into a sync.Pool boxes the slice header into an interface and
// allocates on every Put, which would defeat the purpose; channel sends
// copy the header without boxing.
const poolSlots = 1024

var (
	payloadPool = make(chan []byte, poolSlots)
	varsPool    = make(chan []string, poolSlots)
)

// GetPayload returns a recycled payload buffer (length 0, arbitrary
// capacity), or a fresh one when the pool is empty.
func GetPayload() []byte {
	select {
	case b := <-payloadPool:
		return b[:0]
	default:
		return make([]byte, 0, 128)
	}
}

// PutPayload returns a payload buffer for reuse. Only the exclusive
// owner may call it: a handler that received the payload (single
// destination — multicast payloads shared across Sends must never be
// recycled) and has finished decoding it.
func PutPayload(b []byte) {
	if cap(b) == 0 {
		return
	}
	select {
	case payloadPool <- b:
	default:
	}
}

// getVars returns a recycled variable-name list for a batched frame.
func getVars() []string {
	select {
	case v := <-varsPool:
		return v[:0]
	default:
		return make([]string, 0, 4)
	}
}

// putVars returns a frame's variable list for reuse. Never call it with
// a shared list (sharegraph.Index.MsgVars slices are shared forever).
func putVars(v []string) {
	if cap(v) == 0 {
		return
	}
	select {
	case varsPool <- v:
	default:
	}
}

// RecycleFrame releases the buffers of a delivered Outbox frame. The
// handler of a coalescing protocol calls it after the frame has been
// fully decoded. Frames the Outbox multicast as one shared payload
// (msg.SharedPayload, the uncoalesced fast path) are left alone — the
// handler is not their sole owner, and their Vars list is a shared
// static slice. Messages sent outside an Outbox must not be passed
// here.
func RecycleFrame(msg netsim.Message) {
	if msg.SharedPayload {
		return
	}
	PutPayload(msg.Payload)
	putVars(msg.Vars)
}
