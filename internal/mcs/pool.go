package mcs

import (
	"sync/atomic"

	"partialdsm/internal/netsim"
)

// Payload and variable-list recycling.
//
// The transport contract (netsim.Transport) hands payload ownership to
// the destination handler: once the handler runs, the transport never
// reads or writes the slice again. Protocol handlers exploit that by
// returning fully decoded buffers to a process-wide free list, so in
// steady state a node's writes encode into recycled memory and the
// protocol hot path allocates nothing.
//
// The free lists are buffered channels rather than sync.Pool: putting a
// []byte into a sync.Pool boxes the slice header into an interface and
// allocates on every Put, which would defeat the purpose; channel sends
// copy the header without boxing.
const poolSlots = 1024

var (
	payloadPool = make(chan []byte, poolSlots)
	varsPool    = make(chan []string, poolSlots)
	refsPool    = make(chan *atomic.Int32, poolSlots)
)

// GetPayload returns a recycled payload buffer (length 0, arbitrary
// capacity), or a fresh one when the pool is empty.
func GetPayload() []byte {
	select {
	case b := <-payloadPool:
		return b[:0]
	default:
		return make([]byte, 0, 128)
	}
}

// PutPayload returns a payload buffer for reuse. Only the exclusive
// owner may call it: a handler that received the payload (single
// destination — multicast payloads shared across Sends must never be
// recycled) and has finished decoding it.
func PutPayload(b []byte) {
	if cap(b) == 0 {
		return
	}
	select {
	case payloadPool <- b:
	default:
	}
}

// getVars returns a recycled variable-name list for a batched frame.
func getVars() []string {
	select {
	case v := <-varsPool:
		return v[:0]
	default:
		return make([]string, 0, 4)
	}
}

// putVars returns a frame's variable list for reuse. Never call it with
// a shared list (sharegraph.Index.MsgVars slices are shared forever).
func putVars(v []string) {
	if cap(v) == 0 {
		return
	}
	select {
	case varsPool <- v:
	default:
	}
}

// GetSharedPayload returns a pooled payload buffer for a frame
// multicast to n destinations, paired with its delivery refcount. The
// sender attaches both to every copy of the message
// (Message.SharedPayload + Message.SharedRefs); the receiver that
// RecycleFrame observes decrementing the count to zero is the sole
// remaining owner and returns the buffer to the pool. The Vars list of
// a shared frame is a static slice and is never recycled.
func GetSharedPayload(n int) ([]byte, *atomic.Int32) {
	var refs *atomic.Int32
	select {
	case refs = <-refsPool:
	default:
		refs = new(atomic.Int32)
	}
	refs.Store(int32(n))
	return GetPayload(), refs
}

// putRefs returns a spent refcount for reuse.
func putRefs(r *atomic.Int32) {
	select {
	case refsPool <- r:
	default:
	}
}

// RecycleFrame releases the buffers of a delivered Outbox frame. The
// handler of a protocol calls it after the frame has been fully
// decoded. Refcounted multicast frames (msg.SharedPayload with
// msg.SharedRefs) are recycled by whichever receiver turns out to be
// the last: earlier receivers only decrement. Shared frames without a
// refcount are left alone — the handler cannot know who else holds
// them — and a shared frame's Vars list is a static slice, never
// recycled. Messages sent outside this buffer discipline must not be
// passed here.
func RecycleFrame(msg netsim.Message) {
	if msg.SharedPayload {
		if msg.SharedRefs != nil && msg.SharedRefs.Add(-1) == 0 {
			PutPayload(msg.Payload)
			putRefs(msg.SharedRefs)
		}
		return
	}
	PutPayload(msg.Payload)
	putVars(msg.Vars)
}
