// Package prampart implements the paper's headline construction (§5):
// a PRAM-consistent memory consistency system under partial replication
// that is *efficient* in the paper's sense — for every variable x, only
// the processes of C(x) ever send, receive or store information about
// x (Theorem 2).
//
// The protocol is the natural one enabled by Theorem 2:
//
//   - every node numbers its own writes with a per-sender sequence
//     counter;
//   - a write on x is multicast only to the other members of C(x),
//     carrying (wseq, x, value) with the writer identified by the
//     message source;
//   - channels are FIFO per ordered pair, so each node receives any
//     given sender's updates in that sender's program order and applies
//     them immediately on receipt;
//   - reads are wait-free on the local replica.
//
// Per-sender FIFO application yields PRAM consistency: all processes
// observe the writes of a given process in its program order, while no
// cross-sender ordering is enforced. The control information is O(1)
// per message and mentions no variable outside the replica set.
//
// The implementation makes the paper's O(1) control-bit claim concrete
// at the allocation level: variable names are interned into dense
// VarIDs at placement-index time, replicas live in a flat
// arena-backed mcs.Replicas store of byte-string values, and updates
// travel through a per-destination coalescing mcs.Outbox whose buffers
// are recycled by the receiving handler — a steady-state Get is
// 0 allocs/op (GetInto) and a small-value Put amortizes to well under
// one allocation (enforced by the allocation regression tests at the
// cluster level).
package prampart

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// KindUpdate is the protocol's only message kind: a batched frame of
// (U32 wseq, VarVal varID/value) records.
const KindUpdate = "pram.update"

// Node is one PRAM MCS process.
type Node struct {
	cfg mcs.Config
	id  int
	ix  *sharegraph.Index // current epoch's index; swapped under mu at a flip

	mu       sync.Mutex
	replicas mcs.Replicas   // by VarID, ⊥ until written
	tags     []mcs.WriteTag // by VarID: the write each replica holds
	wseq     int
	out      *mcs.Outbox

	// Crash-recovery state: while rejoining, steady-state updates are
	// held back and applied once the peer snapshots are merged, so a
	// pre-snapshot apply cannot be rolled backward by the merge.
	rcv       *mcs.Recovery
	rejoining bool
	held      []heldUpd

	// Epoch reconfiguration: writes to variables whose clique changes
	// park on the fence for the transition window.
	rcf   *mcs.Reconfig
	fence mcs.Fence
}

// heldUpd is one update received during the rejoin window; v is a
// pooled copy recycled when the update is applied (or dropped stale).
type heldUpd struct {
	from, wseq, varID int
	v                 []byte
}

// New instantiates one node per process and installs the network
// handlers. The caller drives node i's Read/Write from application
// goroutine i only.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			ix:       ix,
			replicas: mcs.NewReplicas(ix.NumVars()),
			tags:     mcs.NewWriteTags(ix.NumVars()),
			out:      mcs.NewOutbox(cfg.Net, i, KindUpdate, cfg.CoalesceBatch),
		}
		node.rcv = mcs.NewRecovery(cfg, i, &node.mu)
		node.rcv.OnDone = node.finishRejoinLocked
		node.rcf = mcs.NewReconfig(cfg, i, &node.mu, node, ix)
		cfg.ApplyFlushPolicy(&node.mu, node.out)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Put performs w_i(x)v: local apply, then stage the update for every
// other member of C(x) (flushed per the coalescing policy). The value
// is fully staged before Put returns; the caller may reuse v.
func (n *Node) Put(x string, v []byte) error {
	n.mu.Lock()
	xi := n.ix.ID(x)
	if err := n.fence.WaitLocked(n.cfg, n.id, xi, x); err != nil {
		n.mu.Unlock()
		return err
	}
	// Re-check against the possibly flipped index: the fence lifts at
	// the epoch boundary, and this node may have shed the variable.
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	name := n.ix.Name(xi)
	wseq := n.wseq
	n.wseq++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, name, v)
		rec.RecordApply(n.id, n.id, wseq, name, v)
	}
	n.replicas.Set(xi, v)
	n.tags[xi] = mcs.WriteTag{Writer: n.id, WSeq: wseq}
	enc := n.out.Stage()
	enc.U32(uint32(wseq)).VarVal(xi, v)
	n.out.Emit(n.ix.Peers(n.id, xi), n.ix.MsgVars(xi), enc.Len()-len(v), len(v))
	n.mu.Unlock()
	return nil
}

// PutAsync is Put: PRAM writes are wait-free, so completion is
// immediate.
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	return mcs.Done, n.Put(x, v)
}

// Get performs r_i(x) wait-free on the local replica, appending the
// value to dst[:0]. Pending coalesced updates are flushed first, so a
// peer polling for this node's writes observes them after this node's
// next operation.
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	n.mu.Lock()
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	if n.out.HasPending() {
		n.out.Flush()
	}
	dst = append(dst[:0], n.replicas.Get(xi)...)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	n.mu.Unlock()
	// A polling reader drives buffered writers' flush deadlines.
	n.out.Nudge()
	return dst, nil
}

// BeginBatch suspends update flushing (mcs.Batcher).
func (n *Node) BeginBatch() {
	n.mu.Lock()
	n.out.Hold()
	n.mu.Unlock()
}

// EndBatch flushes everything staged since BeginBatch (mcs.Batcher).
func (n *Node) EndBatch() {
	n.mu.Lock()
	n.out.Release()
	n.mu.Unlock()
}

// FlushUpdates sends all buffered updates (mcs.Flusher).
func (n *Node) FlushUpdates() {
	n.mu.Lock()
	n.out.Flush()
	n.mu.Unlock()
}

// handle dispatches on message kind: steady-state update frames plus
// the two crash-recovery kinds.
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindUpdate:
		n.handleUpdate(msg)
	case mcs.KindSnapReq:
		n.handleSnapReq(msg)
	case mcs.KindSnapResp:
		n.handleSnapResp(msg)
	default:
		if mcs.IsEpochKind(msg.Kind) {
			n.rcf.Handle(msg)
			return
		}
		n.cfg.Faultf(n.id, "prampart: node %d: unknown message kind %q", n.id, msg.Kind)
		mcs.RecycleFrame(msg)
	}
}

// handleUpdate applies a batched frame of remote updates in order:
// per-pair FIFO delivery already presents each sender's writes in
// program order. Malformed frames are reported through Config.Faultf
// and dropped — on a reliable network that panics (a correct peer
// never sends one), under fault injection the node keeps serving.
func (n *Node) handleUpdate(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	count := int(d.U32())
	if d.Err() != nil {
		n.cfg.Faultf(n.id, "prampart: node %d: malformed frame from %d: %v", n.id, msg.From, d.Err())
		return
	}
	n.mu.Lock()
	for k := 0; k < count; k++ {
		wseq := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "prampart: node %d: malformed update from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= len(n.replicas) {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "prampart: node %d: update from %d names unknown VarID %d", n.id, msg.From, xi)
			return
		}
		if n.rejoining {
			n.held = append(n.held, heldUpd{from: msg.From, wseq: wseq, varID: xi, v: append(mcs.GetPayload(), v...)})
			continue
		}
		n.applyLocked(msg.From, wseq, xi, v)
	}
	n.mu.Unlock()
}

// applyLocked applies one remote update under the node lock, skipping
// writes the replica already reflects (an injected duplicate, or a
// pre-crash straggler delivered after the snapshot merge) and updates
// for variables this node does not serve — an old-epoch straggler for a
// shed variable, dropped; a first post-flip frame for a gained variable
// under the still-pending next epoch, admitted.
func (n *Node) applyLocked(from, wseq, xi int, v []byte) {
	if !n.ix.Holds(n.id, xi) && !n.rcf.PendingHoldsLocked(n.id, xi) {
		return
	}
	if n.tags[xi].Stale(from, wseq) {
		return
	}
	n.replicas.Set(xi, v)
	n.tags[xi] = mcs.WriteTag{Writer: from, WSeq: wseq}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordApply(n.id, from, wseq, n.ix.Name(xi), v)
	}
}

// handleSnapReq answers a rejoining peer with a snapshot of every
// written variable both nodes replicate: (writer, wseq, varID, value)
// per entry — Theorem 2 honesty carries over to recovery, the response
// mentions no variable outside the requester's replica set.
func (n *Node) handleSnapReq(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "prampart: node %d: malformed snapshot request from %d: %v", n.id, msg.From, err)
		return
	}
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(epoch)
	countPos := enc.Len()
	enc.U32(0)
	var vars []string
	count, data := 0, 0
	n.mu.Lock()
	for _, xi := range n.ix.VarIDs(n.id) {
		t := n.tags[xi]
		if t.Writer < 0 || !n.ix.Holds(msg.From, xi) {
			continue
		}
		v := n.replicas.Get(xi)
		enc.U32(uint32(t.Writer)).U32(uint32(t.WSeq)).VarVal(xi, v)
		vars = append(vars, n.ix.Name(xi))
		data += len(v)
		count++
	}
	n.mu.Unlock()
	enc.PatchU32(countPos, uint32(count))
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From:      n.id,
		To:        msg.From,
		Kind:      mcs.KindSnapResp,
		Payload:   payload,
		CtrlBytes: len(payload) - data,
		DataBytes: data,
		Vars:      vars,
	})
}

// handleSnapResp merges one peer snapshot into the rejoining replica
// store. Entries the local state already reflects (from an
// earlier-merged peer with a newer view) are skipped by the same
// staleness rule as live updates.
func (n *Node) handleSnapResp(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	count := int(d.U32())
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "prampart: node %d: malformed snapshot from %d: %v", n.id, msg.From, err)
		return
	}
	n.mu.Lock()
	if !n.rcv.Accept(msg.From, epoch) {
		n.mu.Unlock()
		return
	}
	for k := 0; k < count; k++ {
		w := int(d.U32())
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "prampart: node %d: malformed snapshot entry from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= len(n.replicas) || w < 0 || w >= n.cfg.Net.NumNodes() {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "prampart: node %d: snapshot entry from %d names unknown VarID %d / writer %d",
				n.id, msg.From, xi, w)
			return
		}
		if n.tags[xi].Stale(w, s) {
			continue
		}
		n.replicas.Set(xi, v)
		n.tags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordRecover(n.id, w, s, n.ix.Name(xi), v)
		}
	}
	n.rcv.FinishResponse()
	n.mu.Unlock()
}

// finishRejoinLocked closes the rejoin window (Recovery.OnDone, node
// lock held): updates held back during recovery are applied through
// the normal staleness rule, and variables no live peer knew a value
// for are recorded as ⊥ resets so the consistency checkers track the
// replica's observable restart.
func (n *Node) finishRejoinLocked() {
	n.rejoining = false
	held := n.held
	n.held = nil
	for _, u := range held {
		n.applyLocked(u.from, u.wseq, u.varID, u.v)
		mcs.PutPayload(u.v)
	}
	if rec := n.cfg.Recorder; rec != nil {
		for _, xi := range n.ix.VarIDs(n.id) {
			if n.tags[xi].Writer < 0 {
				rec.RecordRecover(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue)
			}
		}
	}
}

// CrashRestart models the node coming back from a crash with its
// volatile replica store lost: every replica reverts to ⊥ and its
// write tags are forgotten (mcs.CrashRestarter). The write-sequence
// counter survives — the paper's processes number their own writes,
// and a restarted writer must not reuse sequence numbers its peers
// have already applied. The node holds back incoming updates until
// Recover's snapshot merge completes.
func (n *Node) CrashRestart() {
	n.mu.Lock()
	for xi := range n.replicas {
		n.replicas.Set(xi, mcs.BottomValue)
		n.tags[xi] = mcs.WriteTag{Writer: -1}
	}
	for _, u := range n.held {
		mcs.PutPayload(u.v)
	}
	n.held = nil
	n.rejoining = true
	n.rcv.Cancel()
	n.rcf.CancelLocked()
	n.fence.LiftLocked()
	n.mu.Unlock()
}

// Recover starts the rejoin handshake with every variable-sharing
// neighbor under the current epoch's index (mcs.CrashRestarter) — the
// placement may have been reconfigured since the cluster started.
func (n *Node) Recover() {
	n.mu.Lock()
	peers := n.ix.Neighbors(n.id)
	n.mu.Unlock()
	n.rcv.Begin(peers)
}

// RecoveryStats reports completed rejoins and their summed virtual
// duration (mcs.CrashRestarter).
func (n *Node) RecoveryStats() (recoveries int, ticks uint64) {
	return n.rcv.Stats()
}

// ReconfigEngine exposes the node's epoch reconfiguration engine to the
// cluster facade.
func (n *Node) ReconfigEngine() *mcs.Reconfig { return n.rcf }

// ReconfigFlushLocked implements mcs.ReconfigHooks: the fence must
// travel behind every staged pre-fence update.
func (n *Node) ReconfigFlushLocked() { n.out.Flush() }

// ReconfigFenceLocked fences writes to the variables whose replica
// clique changes (mcs.ReconfigHooks).
func (n *Node) ReconfigFenceLocked(next *sharegraph.Index) {
	n.fence.ArmLocked(&n.mu, n.id, n.ix, next, false)
}

// ReconfigTransferVarsLocked lists the variables this node gains in the
// next epoch (mcs.ReconfigHooks).
func (n *Node) ReconfigTransferVarsLocked(next *sharegraph.Index) []int {
	var gained []int
	for _, xi := range next.VarIDs(n.id) {
		if !n.ix.Holds(n.id, xi) {
			gained = append(gained, xi)
		}
	}
	return gained
}

// ReconfigEncodeLocked answers a gaining node with the fence-settled
// tagged value of each requested variable, the same entry format as a
// recovery snapshot (mcs.ReconfigHooks).
func (n *Node) ReconfigEncodeLocked(enc *mcs.Enc, requester int, varIDs []int, next *sharegraph.Index) (data int, vars []string) {
	countPos := enc.Len()
	enc.U32(0)
	count := 0
	for _, xi := range varIDs {
		if xi < 0 || xi >= len(n.tags) || n.tags[xi].Writer < 0 {
			continue
		}
		t := n.tags[xi]
		v := n.replicas.Get(xi)
		enc.U32(uint32(t.Writer)).U32(uint32(t.WSeq)).VarVal(xi, v)
		vars = append(vars, n.ix.Name(xi))
		data += len(v)
		count++
	}
	enc.PatchU32(countPos, uint32(count))
	return data, vars
}

// ReconfigMergeLocked adopts one donor's transfer entries through the
// usual staleness rule, recorded as migration events — the PRAM witness
// seeds the replica view from them without raising any per-sender
// frontier (mcs.ReconfigHooks).
func (n *Node) ReconfigMergeLocked(d *mcs.Dec, from int, next *sharegraph.Index) error {
	count := int(d.U32())
	for k := 0; k < count; k++ {
		w := int(d.U32())
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			return err
		}
		if xi < 0 || xi >= len(n.replicas) || w < 0 || w >= n.cfg.Net.NumNodes() {
			return fmt.Errorf("prampart: transfer entry names unknown VarID %d / writer %d", xi, w)
		}
		if n.tags[xi].Stale(w, s) {
			continue
		}
		n.replicas.Set(xi, v)
		n.tags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordMigrate(n.id, w, s, n.ix.Name(xi), v)
		}
	}
	return d.Err()
}

// ReconfigFlipLocked installs the next epoch: shed replicas revert to
// ⊥, gained variables no donor had a value for are recorded as ⊥
// migration resets, the index swaps, outgoing frames carry the new
// epoch and the write fence lifts (mcs.ReconfigHooks).
func (n *Node) ReconfigFlipLocked(next *sharegraph.Index) {
	for _, xi := range n.ix.VarIDs(n.id) {
		if !next.Holds(n.id, xi) {
			n.replicas.Set(xi, mcs.BottomValue)
			n.tags[xi] = mcs.WriteTag{Writer: -1}
		}
	}
	if rec := n.cfg.Recorder; rec != nil && !n.rejoining {
		for _, xi := range next.VarIDs(n.id) {
			if !n.ix.Holds(n.id, xi) && n.tags[xi].Writer < 0 {
				rec.RecordMigrate(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue)
			}
		}
	}
	n.ix = next
	n.out.SetEpoch(next.Epoch())
	n.fence.LiftLocked()
}

// ReconfigAbortLocked abandons the attempt: the fence lifts and the
// current epoch stays in force (mcs.ReconfigHooks).
func (n *Node) ReconfigAbortLocked() { n.fence.LiftLocked() }

var (
	_ mcs.Node           = (*Node)(nil)
	_ mcs.Flusher        = (*Node)(nil)
	_ mcs.Batcher        = (*Node)(nil)
	_ mcs.CrashRestarter = (*Node)(nil)
	_ mcs.ReconfigHooks  = (*Node)(nil)
)
