// Package prampart implements the paper's headline construction (§5):
// a PRAM-consistent memory consistency system under partial replication
// that is *efficient* in the paper's sense — for every variable x, only
// the processes of C(x) ever send, receive or store information about
// x (Theorem 2).
//
// The protocol is the natural one enabled by Theorem 2:
//
//   - every node numbers its own writes with a per-sender sequence
//     counter;
//   - a write on x is multicast only to the other members of C(x),
//     carrying (writer, wseq, x, value);
//   - channels are FIFO per ordered pair, so each node receives any
//     given sender's updates in that sender's program order and applies
//     them immediately on receipt;
//   - reads are wait-free on the local replica.
//
// Per-sender FIFO application yields PRAM consistency: all processes
// observe the writes of a given process in its program order, while no
// cross-sender ordering is enforced. The control information is O(1)
// per message and mentions no variable outside the replica set.
package prampart

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/model"
	"partialdsm/internal/netsim"
)

// KindUpdate is the protocol's only message kind.
const KindUpdate = "pram.update"

// Node is one PRAM MCS process.
type Node struct {
	cfg mcs.Config
	id  int

	mu       sync.Mutex
	replicas map[string]int64
	wseq     int
	peers    map[string][]int // C(x) minus self, cached
}

// New instantiates one node per process and installs the network
// handlers. The caller drives node i's Read/Write from application
// goroutine i only.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Placement.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			replicas: make(map[string]int64),
			peers:    make(map[string][]int),
		}
		for _, x := range cfg.Placement.VarsOf(i) {
			for _, p := range cfg.Placement.Clique(x) {
				if p != i {
					node.peers[x] = append(node.peers[x], p)
				}
			}
		}
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Write performs w_i(x)v: local apply, then multicast to C(x).
func (n *Node) Write(x string, v int64) error {
	if !n.cfg.Placement.Holds(n.id, x) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	wseq := n.wseq
	n.wseq++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, x, v)
		rec.RecordApply(n.id, n.id, wseq, x, v)
	}
	n.replicas[x] = v
	peers := n.peers[x]
	n.mu.Unlock()

	var enc mcs.Enc
	enc.U32(uint32(n.id)).U32(uint32(wseq)).Str(x).I64(v)
	payload := enc.Bytes()
	for _, p := range peers {
		n.cfg.Net.Send(netsim.Message{
			From:      n.id,
			To:        p,
			Kind:      KindUpdate,
			Payload:   payload,
			CtrlBytes: len(payload) - 8,
			DataBytes: 8,
			Vars:      []string{x},
		})
	}
	return nil
}

// Read performs r_i(x) wait-free on the local replica.
func (n *Node) Read(x string) (int64, error) {
	if !n.cfg.Placement.Holds(n.id, x) {
		return 0, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	v, ok := n.replicas[x]
	if !ok {
		v = model.Bottom
	}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, x, v)
	}
	n.mu.Unlock()
	return v, nil
}

// handle applies a remote update immediately: per-pair FIFO delivery
// already presents each sender's writes in program order.
func (n *Node) handle(msg netsim.Message) {
	d := mcs.NewDec(msg.Payload)
	writer := int(d.U32())
	wseq := int(d.U32())
	x := d.Str()
	v := d.I64()
	if err := d.Err(); err != nil {
		panic(fmt.Sprintf("prampart: node %d: malformed update from %d: %v", n.id, msg.From, err))
	}
	n.mu.Lock()
	n.replicas[x] = v
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordApply(n.id, writer, wseq, x, v)
	}
	n.mu.Unlock()
}

var _ mcs.Node = (*Node)(nil)
