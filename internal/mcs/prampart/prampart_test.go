package prampart

import (
	"errors"
	"testing"

	"partialdsm/internal/check"
	"partialdsm/internal/mcs"
	"partialdsm/internal/metrics"
	"partialdsm/internal/model"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// harness builds a 3-node PRAM cluster over the hoop placement
// C(x)={0,2}, y everywhere.
func harness(t *testing.T) ([]*Node, *netsim.Network, *mcs.Recorder, *metrics.Collector) {
	t.Helper()
	pl := sharegraph.NewPlacement(3).
		Assign(0, "x", "y").
		Assign(1, "y").
		Assign(2, "x", "y")
	col := metrics.NewCollector()
	net := netsim.NewNetwork(3, netsim.Options{FIFO: true, Metrics: col})
	t.Cleanup(net.Close)
	rec := mcs.NewRecorder(3)
	nodes, err := New(mcs.Config{Net: net, Placement: pl, Metrics: col, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, net, rec, col
}

func TestWritePropagatesToCliqueOnly(t *testing.T) {
	nodes, net, _, col := harness(t)
	if err := mcs.WriteInt(nodes[0], "x", 5); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
	if v, _ := mcs.ReadInt(nodes[2], "x"); v != 5 {
		t.Errorf("node 2 x = %d", v)
	}
	// Exactly one message (to the single other C(x) member).
	if s := col.Snapshot(); s.Msgs != 1 {
		t.Errorf("msgs = %d, want 1", s.Msgs)
	}
	if col.Touched(1, "x") {
		t.Error("node 1 must never handle x information")
	}
}

func TestReadUnwrittenReturnsBottom(t *testing.T) {
	nodes, _, _, _ := harness(t)
	v, err := mcs.ReadInt(nodes[1], "y")
	if err != nil {
		t.Fatal(err)
	}
	if v != model.BottomInt64 {
		t.Errorf("unwritten read = %d", v)
	}
}

func TestAccessOutsidePlacement(t *testing.T) {
	nodes, _, _, _ := harness(t)
	if err := mcs.WriteInt(nodes[1], "x", 1); !errors.Is(err, mcs.ErrNotReplicated) {
		t.Errorf("write: %v", err)
	}
	if _, err := mcs.ReadInt(nodes[1], "x"); !errors.Is(err, mcs.ErrNotReplicated) {
		t.Errorf("read: %v", err)
	}
}

func TestPerSenderOrderPreserved(t *testing.T) {
	nodes, net, rec, _ := harness(t)
	for k := int64(1); k <= 50; k++ {
		if err := mcs.WriteInt(nodes[0], "y", k); err != nil {
			t.Fatal(err)
		}
	}
	net.Quiesce()
	if v, _ := mcs.ReadInt(nodes[1], "y"); v != 50 {
		t.Errorf("final y = %d", v)
	}
	if err := check.WitnessPRAM(3, rec.Logs()); err != nil {
		t.Fatalf("witness: %v", err)
	}
}

func TestWriteSeqNumbersIncrease(t *testing.T) {
	nodes, net, rec, _ := harness(t)
	mcs.WriteInt(nodes[0], "x", 1)
	mcs.WriteInt(nodes[0], "y", 2)
	mcs.WriteInt(nodes[0], "x", 3)
	net.Quiesce()
	logs := rec.Logs()
	// Node 2 applied x#0 and x#2 (skipping the y write it also holds …
	// it holds y too, so it sees all three).
	var seqs []int
	for _, e := range logs[2] {
		if !e.IsRead && e.Writer == 0 {
			seqs = append(seqs, e.WSeq)
		}
	}
	if len(seqs) != 3 || seqs[0] != 0 || seqs[1] != 1 || seqs[2] != 2 {
		t.Errorf("applied wseqs at node 2: %v", seqs)
	}
}

func TestMalformedPayloadPanics(t *testing.T) {
	nodes, net, _, _ := harness(t)
	_ = nodes
	defer func() {
		if recover() == nil {
			t.Error("malformed update must panic the handler")
		}
	}()
	// Call the handler directly with garbage (the network would never
	// truncate, so this is the defensive path).
	nodes[0].handle(netsim.Message{From: 2, To: 0, Kind: KindUpdate, Payload: []byte{1, 2}})
	net.Quiesce()
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(mcs.Config{}); err == nil {
		t.Error("nil config must be rejected")
	}
}
