package mcs

import (
	"fmt"
	"sort"
	"sync"

	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// Epoch reconfiguration wire protocol. A cluster moves from one
// placement epoch to the next with a coordinated four-stage handshake
// on the normal transport (virtual latency, coalesced neighbours'
// traffic and the fault schedule all apply):
//
//	propose   coordinator → every live node: the next epoch's placement
//	          (per-process VarID lists — the variable universe is fixed,
//	          so dense ids name the same variables in every epoch) and
//	          the live-node set.
//	fence     every live node → every other live node, sent after the
//	          node flushed its outboxes and fenced application writes.
//	          Per-pair FIFO puts the fence behind the sender's last
//	          pre-fence update, so a node that has collected fences from
//	          ALL live peers has also handled every pre-fence frame
//	          addressed to it: its state for the fenced variables is
//	          final for the old epoch.
//	migreq /  each node asks one donor per gained variable — the lowest
//	migresp   live member of the variable's old-epoch clique — for that
//	          variable's state. Donors defer responses until their own
//	          fence barrier is complete, so a transfer snapshot never
//	          misses an in-flight old-epoch write.
//	ready /   a node reports ready to the coordinator once its own
//	commit    fence barrier is complete AND it has merged every donor's
//	          response: readiness certifies the node drained all
//	          old-epoch traffic. Once all live nodes are ready the
//	          coordinator broadcasts commit and every node flips: the
//	          next index is installed, lost replicas are wiped,
//	          unmerged gains reset to ⊥, per-variable stream numbering
//	          restarts for the migrated variables, and the write fence
//	          lifts.
//
// Every payload leads with the U32 attempt number (never reused across
// a cluster's lifetime, whether the attempt commits or not); frames
// from a finished or foreign attempt are dropped. A fence or migreq can
// outrun the coordinator's propose on an independent channel pair, so
// those two kinds are buffered per attempt and replayed when the
// propose arrives.
//
// There is no abort wire kind. A stalled attempt (partitioned peer,
// crashed coordinator) is resolved from outside: the facade queries the
// coordinator's Decided bit — which survives the coordinator's own
// crash, standing in for the stable term store of a consensus service —
// and force-finishes every node the same way. Commit-decided implies
// every live node reported ready, hence merged, so a uniform forced
// flip is safe; not-decided implies nobody flipped, so a uniform forced
// abort is too.
const (
	KindEpochPropose = "epoch.propose" // coordinator → live nodes
	KindEpochFence   = "epoch.fence"   // live node → every other live node
	KindEpochMigReq  = "epoch.migreq"  // gaining node → donor
	KindEpochMigResp = "epoch.migresp" // donor → gaining node
	KindEpochReady   = "epoch.ready"   // live node → coordinator
	KindEpochCommit  = "epoch.commit"  // coordinator → live nodes
)

// ReconfigHooks is the protocol half of the reconfiguration engine:
// everything that depends on what "state of a variable" means for a
// given consistency criterion. Every hook is called with the owning
// node's mutex held. Protocols whose replica state is global
// (full-replication causal memory, the sequencer protocol) implement
// the transfer hooks as no-ops and flip by swapping the index.
type ReconfigHooks interface {
	// ReconfigFlushLocked flushes the node's outboxes so the fence that
	// follows travels behind every staged pre-fence record.
	ReconfigFlushLocked()
	// ReconfigFenceLocked blocks application writes for the transition
	// window (typically via a Fence armed over the variables whose
	// clique changes; the causal partial-replication protocol fences
	// every write, because dependency lists entangle all variables).
	ReconfigFenceLocked(next *sharegraph.Index)
	// ReconfigTransferVarsLocked returns the VarIDs whose state this
	// node must fetch from old-epoch holders before it can serve the
	// next epoch (nil when the protocol's state is global).
	ReconfigTransferVarsLocked(next *sharegraph.Index) []int
	// ReconfigEncodeLocked appends the transfer body for the requester's
	// variables to enc, reporting the payload's data (value) bytes —
	// everything else is control — and the variables the body mentions.
	ReconfigEncodeLocked(enc *Enc, requester int, varIDs []int, next *sharegraph.Index) (data int, vars []string)
	// ReconfigMergeLocked merges one donor's transfer body.
	ReconfigMergeLocked(d *Dec, from int, next *sharegraph.Index) error
	// ReconfigFlipLocked installs the next index: swap the node's index,
	// wipe replicas of lost variables, record ⊥ migration resets for
	// gained variables no donor had a value for, restamp the outboxes
	// (Outbox.SetEpoch) and lift the fence.
	ReconfigFlipLocked(next *sharegraph.Index)
	// ReconfigAbortLocked abandons the attempt: lift the fence and keep
	// the current epoch (merged transfer state is harmless — it carries
	// valid tagged writes for variables the node may simply not serve).
	ReconfigAbortLocked()
}

// ReconfigDonorPicker is an optional extension of ReconfigHooks for
// protocols whose authoritative per-variable state lives on a specific
// process rather than on every clique member. When implemented, the
// engine asks it — instead of defaulting to the lowest live member of
// the old clique — which donor must answer the transfer request for a
// gained variable. Returning a negative process means no usable donor
// exists (e.g. the old owner is dead) and the variable resets to ⊥ at
// the flip, like a recovery no peer could answer. Called with the
// owning node's mutex held.
type ReconfigDonorPicker interface {
	ReconfigDonorLocked(xi int, cur *sharegraph.Index, live []bool) int
}

// Fence blocks application writes to a set of variables for the
// duration of a reconfiguration window. Writers park on the condition
// variable (sharing the node mutex) until the flip or abort lifts the
// fence; with Config.OpDeadlineTicks set, a fence that never lifts —
// the epoch transition stalled on a partition — fails the write fast
// with ErrOpDeadline instead of hanging it.
type Fence struct {
	cond   *sync.Cond
	fenced []bool // by VarID
	active int    // number of fenced variables
}

// ArmLocked fences the variables node holds under cur whose assignment
// — replica clique or owner — changes in next, or every held variable
// when all is set. Owner moves fence too: for the owner protocols a
// same-clique owner move still needs the drain window, and for the
// ownerless protocols assignments only change when cliques do, so the
// owner term never widens their fence. Called with mu (the owning
// node's mutex) held.
func (f *Fence) ArmLocked(mu *sync.Mutex, node int, cur, next *sharegraph.Index, all bool) {
	if f.cond == nil {
		f.cond = sync.NewCond(mu)
	}
	if f.fenced == nil {
		f.fenced = make([]bool, cur.NumVars())
	}
	for _, xi := range cur.VarIDs(node) {
		if (all || !sharegraph.SameAssignment(cur, next, xi)) && !f.fenced[xi] {
			f.fenced[xi] = true
			f.active++
		}
	}
}

// LiftLocked unfences everything and wakes parked writers.
func (f *Fence) LiftLocked() {
	if f.active > 0 {
		for i := range f.fenced {
			f.fenced[i] = false
		}
		f.active = 0
	}
	if f.cond != nil {
		f.cond.Broadcast()
	}
}

// FencedLocked reports whether variable xi is currently fenced.
// Handler paths use it to park requests that must not enter the old
// epoch's stream once the transition window opened (the sequencer
// protocol parks requests instead of multicasting behind its own fence
// frame). Called with the owning node's mutex held.
func (f *Fence) FencedLocked(xi int) bool {
	return f.active > 0 && xi >= 0 && xi < len(f.fenced) && f.fenced[xi]
}

// WaitLocked parks the calling writer while variable xi is fenced,
// honouring the operation deadline. Returns nil immediately when no
// fence covers xi.
func (f *Fence) WaitLocked(cfg Config, node, xi int, x string) error {
	if f.active == 0 || xi < 0 || xi >= len(f.fenced) || !f.fenced[xi] {
		return nil
	}
	return cfg.WaitDeadline(node, f.cond,
		func() bool { return !f.fenced[xi] },
		func() string {
			return fmt.Sprintf("node %d write to %s fenced by an epoch reconfiguration", node, x)
		})
}

// earlyCtl is a fence or migreq that outran the coordinator's propose
// on an independent channel pair, parked until the attempt activates.
type earlyCtl struct {
	attempt uint32
	kind    string
	from    int
	varIDs  []int // migreq only
}

// migReq is a transfer request deferred until the donor's fence barrier
// completes.
type migReq struct {
	from   int
	varIDs []int
}

// Reconfig is one node's half of the epoch reconfiguration engine,
// shared by every protocol that supports live migration and guarded by
// the owning node's mutex (like Recovery). The facade starts an attempt
// on the coordinator's engine; every node's message handler routes the
// six epoch.* kinds to Handle.
type Reconfig struct {
	cfg   Config
	node  int
	mu    *sync.Mutex // the owning node's mutex
	hooks ReconfigHooks

	cur *sharegraph.Index // this node's view of the committed epoch

	// Per-attempt state, valid while next != nil.
	attempt    uint32 // highest attempt seen (never reused)
	next       *sharegraph.Index
	live       []bool
	nLive      int
	coord      int
	fences     []bool // by peer: fence received this attempt
	fencesLeft int    // live peers whose fence is still missing
	deferred   []migReq
	expect     []bool // by donor: migresp still owed
	donorsLeft int
	readySent  bool

	// Coordinator state.
	readies     []bool
	readiesLeft int
	decided     uint32 // attempt number of the last commit decision;
	// survives Cancel — the crash-durable decision bit the facade
	// consults before force-finishing a stalled attempt.
	done chan struct{} // closed after the coordinator's local flip

	early []earlyCtl
}

// NewReconfig returns the reconfiguration engine for one node, sharing
// the node's mutex. cur is the node's epoch-0 index.
func NewReconfig(cfg Config, node int, mu *sync.Mutex, hooks ReconfigHooks, cur *sharegraph.Index) *Reconfig {
	n := cfg.Net.NumNodes()
	return &Reconfig{
		cfg:     cfg,
		node:    node,
		mu:      mu,
		hooks:   hooks,
		cur:     cur,
		fences:  make([]bool, n),
		expect:  make([]bool, n),
		readies: make([]bool, n),
	}
}

// StartReconfigure begins the distributed transition to next on the
// coordinator node. live flags the nodes taking part (the coordinator
// itself must be live); epoch is the attempt number, strictly greater
// than every earlier attempt's. The returned channel closes once the
// coordinator has decided commit and flipped locally; the in-flight
// commits to the other nodes drain with the network.
func (r *Reconfig) StartReconfigure(next *sharegraph.Index, live []bool, epoch uint64) (<-chan struct{}, error) {
	r.mu.Lock()
	if r.next != nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("mcs: node %d: a reconfiguration attempt is already in progress", r.node)
	}
	if uint32(epoch) <= r.attempt {
		r.mu.Unlock()
		return nil, fmt.Errorf("mcs: node %d: attempt number %d not above %d", r.node, epoch, r.attempt)
	}
	r.beginAttemptLocked(next, live, uint32(epoch), r.node)
	// Coordinator bookkeeping: one ready per live node, own commit
	// decision pending.
	for i := range r.readies {
		r.readies[i] = false
	}
	r.readiesLeft = r.nLive
	r.done = make(chan struct{})
	done := r.done

	// Broadcast the proposal. Per-pair FIFO orders it before this node's
	// own fence, sent by participantBeginLocked below.
	var enc Enc
	enc.SetBuf(GetPayload())
	enc.U32(r.attempt).U32(uint32(next.NumProcs()))
	for p := 0; p < next.NumProcs(); p++ {
		ids := next.VarIDs(p)
		u := make([]uint32, len(ids))
		for k, id := range ids {
			u[k] = uint32(id)
		}
		enc.U32Slice(u)
	}
	var liveIDs []uint32
	for p, ok := range live {
		if ok {
			liveIDs = append(liveIDs, uint32(p))
		}
	}
	enc.U32Slice(liveIDs)
	// Owner overrides: only the variables whose owner differs from the
	// default (lowest clique member) travel, id-ascending — empty for
	// every placement that never called SetOwner.
	var ownerVars, ownerProcs []uint32
	for id := 0; id < next.NumVars(); id++ {
		if c := next.Clique(id); len(c) > 0 && next.Owner(id) != c[0] {
			ownerVars = append(ownerVars, uint32(id))
			ownerProcs = append(ownerProcs, uint32(next.Owner(id)))
		}
	}
	enc.U32Slice(ownerVars)
	enc.U32Slice(ownerProcs)
	proposal := enc.Bytes()
	for p, ok := range live {
		if !ok || p == r.node {
			continue
		}
		payload := append(GetPayload(), proposal...)
		r.cfg.Net.Send(netsim.Message{
			From:      r.node,
			To:        p,
			Kind:      KindEpochPropose,
			Payload:   payload,
			CtrlBytes: len(payload),
		})
	}
	PutPayload(proposal)

	r.participantBeginLocked()
	r.mu.Unlock()
	return done, nil
}

// beginAttemptLocked resets the per-attempt state.
func (r *Reconfig) beginAttemptLocked(next *sharegraph.Index, live []bool, attempt uint32, coord int) {
	r.attempt = attempt
	r.next = next
	r.live = live
	r.coord = coord
	r.nLive = 0
	for _, ok := range live {
		if ok {
			r.nLive++
		}
	}
	for i := range r.fences {
		r.fences[i] = false
		r.expect[i] = false
	}
	r.fencesLeft = r.nLive - 1
	r.deferred = r.deferred[:0]
	r.donorsLeft = 0
	r.readySent = false
}

// participantBeginLocked runs this node's share of an activated
// attempt: flush, fence, request transfers.
func (r *Reconfig) participantBeginLocked() {
	r.hooks.ReconfigFlushLocked()
	r.hooks.ReconfigFenceLocked(r.next)
	var enc Enc
	enc.U32(r.attempt)
	for p, ok := range r.live {
		if !ok || p == r.node {
			continue
		}
		payload := append(GetPayload(), enc.Bytes()...)
		r.cfg.Net.Send(netsim.Message{
			From:      r.node,
			To:        p,
			Kind:      KindEpochFence,
			Payload:   payload,
			CtrlBytes: len(payload),
		})
	}

	// Group the variables this node must fetch by donor: the lowest
	// live member of each variable's old-epoch clique, unless the
	// protocol pins a specific donor (ReconfigDonorPicker — the atomic
	// register's authoritative state lives only on the old owner). A
	// variable with no usable donor resets to ⊥ at the flip, exactly
	// like a recovery no peer could answer.
	picker, _ := r.hooks.(ReconfigDonorPicker)
	var donors map[int][]int
	for _, xi := range r.hooks.ReconfigTransferVarsLocked(r.next) {
		donor := -1
		if picker != nil {
			if p := picker.ReconfigDonorLocked(xi, r.cur, r.live); p >= 0 && p != r.node {
				donor = p
			}
		} else {
			for _, p := range r.cur.Clique(xi) {
				if p < len(r.live) && r.live[p] && p != r.node {
					donor = p
					break
				}
			}
		}
		if donor < 0 {
			continue
		}
		if donors == nil {
			donors = make(map[int][]int)
		}
		donors[donor] = append(donors[donor], xi)
	}
	r.donorsLeft = len(donors)
	// Send requests in donor order, not map order: the requests enter
	// the transport's global send sequence here, so map iteration order
	// would leak into the byte-identical trace.
	donorOrder := make([]int, 0, len(donors))
	for donor := range donors {
		donorOrder = append(donorOrder, donor)
	}
	sort.Ints(donorOrder)
	for _, donor := range donorOrder {
		ids := donors[donor]
		var req Enc
		req.SetBuf(GetPayload())
		req.U32(r.attempt)
		u := make([]uint32, len(ids))
		vars := make([]string, len(ids))
		for k, id := range ids {
			u[k] = uint32(id)
			vars[k] = r.cur.Name(id)
		}
		req.U32Slice(u)
		payload := req.Bytes()
		r.expect[donor] = true
		r.cfg.Net.Send(netsim.Message{
			From:      r.node,
			To:        donor,
			Kind:      KindEpochMigReq,
			Payload:   payload,
			CtrlBytes: len(payload),
			Vars:      vars,
		})
	}
	r.maybeReadyLocked()
	// Replay any fence or migreq that outran the propose.
	if len(r.early) > 0 {
		early := r.early
		r.early = nil
		for _, e := range early {
			if e.attempt != r.attempt {
				continue
			}
			switch e.kind {
			case KindEpochFence:
				r.fenceLocked(e.from)
			case KindEpochMigReq:
				r.migReqLocked(e.from, e.varIDs)
			}
		}
	}
}

// Handle routes one epoch.* message; protocols call it from their
// transport handler for the six epoch kinds. It recycles the frame.
func (r *Reconfig) Handle(msg netsim.Message) {
	defer RecycleFrame(msg)
	d := DecOf(msg.Payload)
	attempt := d.U32()
	if d.Err() != nil {
		r.cfg.Faultf(r.node, "mcs: node %d: malformed %s from %d: %v", r.node, msg.Kind, msg.From, d.Err())
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	active := r.next != nil && attempt == r.attempt
	switch msg.Kind {
	case KindEpochPropose:
		r.proposeLocked(msg.From, attempt, &d)
	case KindEpochFence:
		if active {
			r.fenceLocked(msg.From)
		} else if attempt > r.attempt {
			r.early = append(r.early, earlyCtl{attempt: attempt, kind: msg.Kind, from: msg.From})
		}
	case KindEpochMigReq:
		ids := d.U32Slice()
		if d.Err() != nil {
			r.cfg.Faultf(r.node, "mcs: node %d: malformed migreq from %d: %v", r.node, msg.From, d.Err())
			return
		}
		varIDs := make([]int, len(ids))
		for k, u := range ids {
			varIDs[k] = int(u)
		}
		if active {
			r.migReqLocked(msg.From, varIDs)
		} else if attempt > r.attempt {
			r.early = append(r.early, earlyCtl{attempt: attempt, kind: msg.Kind, from: msg.From, varIDs: varIDs})
		}
	case KindEpochMigResp:
		if !active || msg.From < 0 || msg.From >= len(r.expect) || !r.expect[msg.From] {
			return
		}
		r.expect[msg.From] = false
		r.donorsLeft--
		if err := r.hooks.ReconfigMergeLocked(&d, msg.From, r.next); err != nil {
			r.cfg.Faultf(r.node, "mcs: node %d: transfer merge from %d: %v", r.node, msg.From, err)
		}
		r.maybeReadyLocked()
	case KindEpochReady:
		if active && r.coord == r.node {
			r.readyLocked(msg.From)
		}
	case KindEpochCommit:
		if active {
			r.flipLocked()
		}
	}
}

// proposeLocked activates a participant attempt: rebuild the proposed
// placement from the per-process VarID lists and rebind the current
// index to it.
func (r *Reconfig) proposeLocked(from int, attempt uint32, d *Dec) {
	if attempt <= r.attempt {
		return // duplicate or stale proposal
	}
	if r.next != nil {
		r.cfg.Faultf(r.node, "mcs: node %d: proposal %d arrived during attempt %d", r.node, attempt, r.attempt)
		return
	}
	numProcs := int(d.U32())
	if d.Err() != nil || numProcs != r.cur.NumProcs() {
		r.cfg.Faultf(r.node, "mcs: node %d: malformed proposal from %d", r.node, from)
		return
	}
	pl := sharegraph.NewPlacement(numProcs)
	for p := 0; p < numProcs; p++ {
		ids := d.U32Slice()
		if d.Err() != nil {
			r.cfg.Faultf(r.node, "mcs: node %d: malformed proposal from %d: %v", r.node, from, d.Err())
			return
		}
		for _, u := range ids {
			if int(u) >= r.cur.NumVars() {
				r.cfg.Faultf(r.node, "mcs: node %d: proposal from %d names unknown VarID %d", r.node, from, u)
				return
			}
			pl.Assign(p, r.cur.Name(int(u)))
		}
	}
	liveIDs := d.U32Slice()
	if d.Err() != nil {
		r.cfg.Faultf(r.node, "mcs: node %d: malformed proposal from %d: %v", r.node, from, d.Err())
		return
	}
	live := make([]bool, numProcs)
	for _, u := range liveIDs {
		if int(u) < numProcs {
			live[u] = true
		}
	}
	ownerVars := d.U32Slice()
	ownerProcs := d.U32Slice()
	if d.Err() != nil || len(ownerVars) != len(ownerProcs) {
		r.cfg.Faultf(r.node, "mcs: node %d: malformed proposal from %d: bad owner section", r.node, from)
		return
	}
	for k, u := range ownerVars {
		if int(u) >= r.cur.NumVars() || int(ownerProcs[k]) >= numProcs ||
			!pl.Holds(int(ownerProcs[k]), r.cur.Name(int(u))) {
			r.cfg.Faultf(r.node, "mcs: node %d: proposal from %d pins an invalid owner", r.node, from)
			return
		}
		pl.SetOwner(r.cur.Name(int(u)), int(ownerProcs[k]))
	}
	next, err := r.cur.Rebind(pl, uint64(attempt))
	if err != nil {
		r.cfg.Faultf(r.node, "mcs: node %d: proposal from %d: %v", r.node, from, err)
		return
	}
	// Drop parked control frames from attempts this proposal supersedes.
	kept := r.early[:0]
	for _, e := range r.early {
		if e.attempt >= attempt {
			kept = append(kept, e)
		}
	}
	r.early = kept
	r.beginAttemptLocked(next, live, attempt, from)
	r.participantBeginLocked()
}

// fenceLocked records one live peer's fence; completing the barrier
// answers the deferred transfer requests — at this point every
// pre-fence frame from every live node has been handled, so the state
// a response carries is final for the old epoch.
func (r *Reconfig) fenceLocked(from int) {
	if from < 0 || from >= len(r.fences) || r.fences[from] {
		return
	}
	r.fences[from] = true
	r.fencesLeft--
	if r.fencesLeft == 0 {
		deferred := r.deferred
		r.deferred = nil
		for _, req := range deferred {
			r.respondLocked(req.from, req.varIDs)
		}
		r.maybeReadyLocked()
	}
}

// maybeReadyLocked reports readiness once both of this node's barriers
// are complete: every live peer's fence handled (per-pair FIFO then
// guarantees every pre-fence frame of the old epoch has been received
// too) and every donor's transfer merged. Commit — which needs every
// live node's ready — therefore implies each node had drained all
// old-epoch traffic before it flips, which is what lets the protocols
// restart per-variable stream numbering at the epoch boundary.
func (r *Reconfig) maybeReadyLocked() {
	if r.fencesLeft == 0 && r.donorsLeft == 0 {
		r.sendReadyLocked()
	}
}

// migReqLocked answers a transfer request, deferring it while this
// node's fence barrier is still open.
func (r *Reconfig) migReqLocked(from int, varIDs []int) {
	if r.fencesLeft > 0 {
		r.deferred = append(r.deferred, migReq{from: from, varIDs: varIDs})
		return
	}
	r.respondLocked(from, varIDs)
}

// respondLocked encodes and sends one transfer response.
func (r *Reconfig) respondLocked(to int, varIDs []int) {
	var enc Enc
	enc.SetBuf(GetPayload())
	enc.U32(r.attempt)
	data, vars := r.hooks.ReconfigEncodeLocked(&enc, to, varIDs, r.next)
	payload := enc.Bytes()
	r.cfg.Net.Send(netsim.Message{
		From:      r.node,
		To:        to,
		Kind:      KindEpochMigResp,
		Payload:   payload,
		CtrlBytes: len(payload) - data,
		DataBytes: data,
		Vars:      vars,
	})
}

// sendReadyLocked reports this node's readiness to the coordinator.
func (r *Reconfig) sendReadyLocked() {
	if r.readySent {
		return
	}
	r.readySent = true
	if r.coord == r.node {
		r.readyLocked(r.node)
		return
	}
	var enc Enc
	enc.SetBuf(GetPayload())
	enc.U32(r.attempt)
	payload := enc.Bytes()
	r.cfg.Net.Send(netsim.Message{
		From:      r.node,
		To:        r.coord,
		Kind:      KindEpochReady,
		Payload:   payload,
		CtrlBytes: len(payload),
	})
}

// readyLocked (coordinator) counts one live node's readiness; the last
// one decides commit, broadcasts it, and flips locally.
func (r *Reconfig) readyLocked(from int) {
	if from < 0 || from >= len(r.readies) || r.readies[from] {
		return
	}
	r.readies[from] = true
	r.readiesLeft--
	if r.readiesLeft > 0 {
		return
	}
	r.decided = r.attempt
	var enc Enc
	enc.U32(r.attempt)
	for p, ok := range r.live {
		if !ok || p == r.node {
			continue
		}
		payload := append(GetPayload(), enc.Bytes()...)
		r.cfg.Net.Send(netsim.Message{
			From:      r.node,
			To:        p,
			Kind:      KindEpochCommit,
			Payload:   payload,
			CtrlBytes: len(payload),
		})
	}
	done := r.done
	r.flipLocked()
	if done != nil {
		close(done)
	}
}

// flipLocked installs the next epoch and closes the attempt.
func (r *Reconfig) flipLocked() {
	next := r.next
	r.hooks.ReconfigFlipLocked(next)
	r.cur = next
	r.clearAttemptLocked()
}

// clearAttemptLocked forgets the per-attempt state (the attempt number
// stays burned).
func (r *Reconfig) clearAttemptLocked() {
	r.next = nil
	r.live = nil
	r.deferred = nil
	r.donorsLeft = 0
	r.done = nil
}

// Decided reports whether the given attempt reached the commit
// decision on this node (meaningful on the attempt's coordinator). The
// decision bit survives Cancel — it models the one durable write a
// consensus service would make — so the facade can resolve an attempt
// whose coordinator crashed after broadcasting commit.
func (r *Reconfig) Decided(epoch uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decided != 0 && r.decided == uint32(epoch)
}

// ForceFinish resolves a stalled attempt from outside: flip when the
// coordinator had decided commit, abort otherwise. A node with no
// attempt in progress (it already flipped, or never saw the proposal —
// possible only for an undecided attempt) is a no-op. The facade calls
// it on every node uniformly after the reconfiguration budget expires.
func (r *Reconfig) ForceFinish(commit bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next == nil {
		return
	}
	if commit {
		r.flipLocked()
		return
	}
	r.hooks.ReconfigAbortLocked()
	r.clearAttemptLocked()
}

// InstallCurrent force-installs an index on an idle engine, bypassing
// the wire protocol: the facade uses it to catch a restarted node up to
// the epochs that committed while it was down, before crash recovery
// re-seeds its state under the new placement. burned is the highest
// attempt number the cluster has ever used — committed or aborted. The
// crash wiped this node's burned-attempt counter, and without restoring
// the floor a stale proposal still in flight from an aborted attempt
// would enlist the restarted node into an attempt every other node has
// already abandoned, wedging reconfiguration forever (nobody re-aborts
// a dead attempt).
func (r *Reconfig) InstallCurrent(next *sharegraph.Index, burned uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next != nil {
		r.hooks.ReconfigAbortLocked()
		r.clearAttemptLocked()
	}
	if uint32(next.Epoch()) > r.attempt {
		r.attempt = uint32(next.Epoch())
	}
	if uint32(burned) > r.attempt {
		r.attempt = uint32(burned)
	}
	r.hooks.ReconfigFlipLocked(next)
	r.cur = next
}

// CancelLocked abandons any in-progress attempt without touching
// protocol state; the protocol's CrashRestart calls it with the node
// mutex held (the crash wipes the state the attempt was building
// anyway; the decision bit survives). Control frames parked for a
// future attempt are lost with the rest of the node's volatile state.
func (r *Reconfig) CancelLocked() {
	r.early = nil
	if r.next == nil {
		return
	}
	r.clearAttemptLocked()
}

// PendingHoldsLocked reports whether an in-progress attempt assigns
// variable xi to process p. Apply paths admit an update when the
// receiver holds the variable under the current epoch or the pending
// one: a gaining node must accept the first post-flip frames that
// arrive before its own commit does (the sender flipped first; the
// transfer merge is already complete, because commit needs every
// node's ready). Called with the node mutex held.
func (r *Reconfig) PendingHoldsLocked(p, xi int) bool {
	return r.next != nil && r.next.Holds(p, xi)
}

// PendingIndexLocked returns the in-progress attempt's proposed index,
// or nil when no attempt is active. Owner protocols consult it to serve
// requests a flipped peer already routed under the pending epoch.
// Called with the node mutex held.
func (r *Reconfig) PendingIndexLocked() *sharegraph.Index { return r.next }

// EpochLocked returns the committed epoch this node currently serves.
// Called with the node mutex held.
func (r *Reconfig) EpochLocked() uint64 { return r.cur.Epoch() }

// IsEpochKind reports whether kind is one of the six reconfiguration
// wire kinds, for protocol handler dispatch.
func IsEpochKind(kind string) bool {
	switch kind {
	case KindEpochPropose, KindEpochFence, KindEpochMigReq, KindEpochMigResp, KindEpochReady, KindEpochCommit:
		return true
	}
	return false
}
