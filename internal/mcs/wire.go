package mcs

import (
	"encoding/binary"
	"fmt"
)

// Enc builds a wire payload field by field. The byte layout is the
// protocol's actual encoding, so payload lengths measure the real
// control/data volume a deployment would ship.
type Enc struct{ buf []byte }

// U32 appends a big-endian uint32.
func (e *Enc) U32(v uint32) *Enc {
	e.buf = binary.BigEndian.AppendUint32(e.buf, v)
	return e
}

// I64 appends a big-endian int64.
func (e *Enc) I64(v int64) *Enc {
	e.buf = binary.BigEndian.AppendUint64(e.buf, uint64(v))
	return e
}

// Str appends a length-prefixed string (uint16 length).
func (e *Enc) Str(s string) *Enc {
	if len(s) > 0xffff {
		panic(fmt.Sprintf("mcs: string too long to encode (%d bytes)", len(s)))
	}
	e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(len(s)))
	e.buf = append(e.buf, s...)
	return e
}

// U32Slice appends a length-prefixed []uint32 (uint16 count).
func (e *Enc) U32Slice(vs []uint32) *Enc {
	if len(vs) > 0xffff {
		panic(fmt.Sprintf("mcs: slice too long to encode (%d entries)", len(vs)))
	}
	e.buf = binary.BigEndian.AppendUint16(e.buf, uint16(len(vs)))
	for _, v := range vs {
		e.buf = binary.BigEndian.AppendUint32(e.buf, v)
	}
	return e
}

// Value wire format
//
// Protocol records carry variable-size byte values with v1-compatible
// framing: the length tag of a value is packed into the spare high
// byte of an adjacent u32 field instead of a standalone length prefix,
// so the common case — an 8-byte value, which is everything the legacy
// int64 API produces — is encoded in exactly the bytes the v1 (int64)
// wire format used. Three layouts exist:
//
//   - VarVal packs the tag into the VarID word that precedes the value
//     in every update/request schema: tag 0 means "8 bytes follow"
//     (v1-identical), tags 1..254 mean "tag-1 bytes follow" (0..253),
//     and tag 255 means an explicit u32 length follows the word.
//   - OptVal is the optional-value field of the causalpart schemas:
//     0 = absent, 1 = 8 bytes follow (v1-identical), t ≥ 2 = t-2 bytes
//     follow.
//   - Raw appends the value with no framing at all — only valid as the
//     final field of a payload, where its length is the remainder
//     (TakeRest); v1-identical for every length.
//
// Packing the tag into the VarID word caps VarIDs at 2^24-1
// (MaxEncodableVarID); sharegraph.Index enforces the cap at interning
// time.
const (
	varIDBits = 24
	// MaxEncodableVarID is the largest VarID the packed VarVal word can
	// carry.
	MaxEncodableVarID = 1<<varIDBits - 1
	valTagBig         = 0xFF // explicit u32 length follows the word
	maxInlineValLen   = valTagBig - 2
)

// VarVal appends a (VarID, value) field pair: the packed VarID word,
// the explicit length when the value is large, then the value bytes.
func (e *Enc) VarVal(varID int, v []byte) *Enc {
	if varID < 0 || varID > MaxEncodableVarID {
		panic(fmt.Sprintf("mcs: VarID %d outside encodable range [0,%d]", varID, MaxEncodableVarID))
	}
	switch {
	case len(v) == 8:
		e.U32(uint32(varID))
	case len(v) <= maxInlineValLen:
		e.U32(uint32(varID) | uint32(len(v)+1)<<varIDBits)
	default:
		e.U32(uint32(varID) | valTagBig<<varIDBits)
		e.U32(uint32(len(v)))
	}
	e.buf = append(e.buf, v...)
	return e
}

// VarVal consumes a (VarID, value) field pair. The returned value
// aliases the payload — copy it before the frame is recycled.
func (d *Dec) VarVal() (varID int, v []byte) {
	w := d.U32()
	varID = int(w & MaxEncodableVarID)
	var n int
	switch tag := w >> varIDBits; {
	case tag == 0:
		n = 8
	case tag == valTagBig:
		n = int(d.U32())
	default:
		n = int(tag) - 1
	}
	return varID, d.take(n)
}

// OptVal appends an optional value field: a u32 presence/length tag
// followed by the value bytes when present.
func (e *Enc) OptVal(v []byte, present bool) *Enc {
	if !present {
		return e.U32(0)
	}
	if len(v) == 8 {
		e.U32(1)
	} else {
		if uint64(len(v))+2 > 0xFFFFFFFF {
			panic(fmt.Sprintf("mcs: value too long to encode (%d bytes)", len(v)))
		}
		e.U32(uint32(len(v)) + 2)
	}
	e.buf = append(e.buf, v...)
	return e
}

// OptVal consumes an optional value field. The returned value aliases
// the payload.
func (d *Dec) OptVal() (v []byte, present bool) {
	switch tag := d.U32(); tag {
	case 0:
		return nil, false
	case 1:
		return d.take(8), true
	default:
		return d.take(int(tag) - 2), true
	}
}

// Raw appends bytes with no framing. Only valid as the final field of
// a payload; decode with TakeRest.
func (e *Enc) Raw(v []byte) *Enc {
	e.buf = append(e.buf, v...)
	return e
}

// TakeRest consumes and returns every remaining byte. The returned
// slice aliases the payload.
func (d *Dec) TakeRest() []byte {
	return d.take(len(d.buf))
}

// Len returns the number of bytes encoded so far.
func (e *Enc) Len() int { return len(e.buf) }

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

// Reset truncates the encoder, keeping the backing array for reuse —
// the hot paths stage every record through one resettable encoder so a
// steady-state write encodes without allocating.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// SetBuf makes the encoder append to the given buffer (typically one
// from the payload pool).
func (e *Enc) SetBuf(buf []byte) { e.buf = buf }

// PatchU32 overwrites the 4 bytes at offset pos with a big-endian
// uint32 — used to back-fill counts that are only known after the
// fields they prefix have been encoded (single-pass framing).
func (e *Enc) PatchU32(pos int, v uint32) {
	if pos < 0 || pos+4 > len(e.buf) {
		panic(fmt.Sprintf("mcs: PatchU32 at %d outside encoded %d bytes", pos, len(e.buf)))
	}
	binary.BigEndian.PutUint32(e.buf[pos:], v)
}

// Dec consumes a wire payload field by field. Decoding errors are
// sticky: after the first failure every accessor returns zero values
// and Err reports the cause.
type Dec struct {
	buf []byte
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// DecOf returns a decoder over payload by value. Handlers on the hot
// path prefer it to NewDec: the decoder lives on the caller's stack, so
// decoding a delivered message costs no heap allocation.
func DecOf(payload []byte) Dec { return Dec{buf: payload} }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("mcs: payload truncated: need %d bytes, have %d", n, len(d.buf))
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

// U32 consumes a big-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// I64 consumes a big-endian int64.
func (d *Dec) I64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

// Str consumes a length-prefixed string.
func (d *Dec) Str() string {
	lb := d.take(2)
	if lb == nil {
		return ""
	}
	n := int(binary.BigEndian.Uint16(lb))
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// U32Slice consumes a length-prefixed []uint32.
func (d *Dec) U32Slice() []uint32 {
	lb := d.take(2)
	if lb == nil {
		return nil
	}
	n := int(binary.BigEndian.Uint16(lb))
	out := make([]uint32, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.U32())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// U32SliceInto consumes a length-prefixed []uint32, appending into dst
// (dst is truncated first). When dst has enough capacity the decode
// does not allocate — protocol handlers keep one scratch slice per node
// and pass it here for every record.
func (d *Dec) U32SliceInto(dst []uint32) []uint32 {
	dst = dst[:0]
	lb := d.take(2)
	if lb == nil {
		return dst
	}
	n := int(binary.BigEndian.Uint16(lb))
	for i := 0; i < n; i++ {
		dst = append(dst, d.U32())
	}
	if d.err != nil {
		return dst[:0]
	}
	return dst
}

// Err returns the first decoding error, nil if none.
func (d *Dec) Err() error { return d.err }

// Rest returns the number of unconsumed bytes.
func (d *Dec) Rest() int { return len(d.buf) }
