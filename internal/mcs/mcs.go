// Package mcs defines the framework shared by the memory consistency
// system protocols: the node configuration, the protocol interface the
// DSM facade drives, the wire-format encoding helpers used to account
// control bytes honestly, and the trace recorder that captures global
// histories and per-node apply logs for the consistency checkers.
//
// One MCS process runs per node (paper §1): the application process
// invokes operations through its local MCS process, which propagates
// variable updates to the replicas.
//
// Beyond the fault-free protocol core, the package carries the shared
// crash-recovery machinery: CrashRestarter is the crash/restart/
// recover cycle every protocol implements, Recovery drives the
// snapshot handshake (KindSnapReq/KindSnapResp, virtual-clock retries
// bounded by RecoveryMaxRetries), WriteTag is the per-variable
// duplicate-suppression tag snapshots and live updates share, and
// deadline.go holds the fail-fast timer (ErrOpDeadline) the blocking
// protocols arm on every request.
//
// reconfig.go adds the control plane for epoch-based runtime
// reconfiguration: Reconfig drives the propose → fence → transfer →
// flip handshake that migrates replicas to a new placement while the
// cluster serves traffic, against the per-protocol ReconfigHooks
// (fence writes to the variables whose clique changes, encode/
// merge transfer state, flip to the rebound sharegraph.Index). The
// same handshake migrates per-variable ownership: a protocol whose
// variables have an authoritative owner — the atomic-register primary,
// the cache sequencer — hands the owner's state to its successor in
// the fence→transfer window (ReconfigDonorPicker pins the donor to the
// old owner), and requests that raced the flip are bounced with the
// new epoch and retried by their issuer. The handshake's wire format,
// barrier structure, and abort semantics are documented on Reconfig
// itself.
package mcs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"partialdsm/internal/metrics"
	"partialdsm/internal/model"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// ErrNotReplicated is returned when an application process accesses a
// variable its MCS process does not replicate. In the paper's model
// (§3) process ap_i accesses only the variables of X_i.
var ErrNotReplicated = errors.New("mcs: variable not replicated on this node")

// Node is the per-node protocol interface the DSM facade drives.
// Values are opaque byte strings; the legacy int64 Write/Read API is a
// facade-level shim encoding words as 8 big-endian bytes. Operations
// may be invoked only from the node's single application goroutine;
// the protocol's message handlers run on network goroutines and
// synchronize internally.
type Node interface {
	// ID returns the node identifier (= application process id).
	ID() int
	// Put performs w_i(x)v. The value is fully consumed before Put
	// returns (staged, encoded, recorded); the caller may reuse v.
	// Wait-free protocols return after the local apply; ordering
	// protocols block until the write is ordered/acknowledged.
	Put(x string, v []byte) error
	// PutAsync performs w_i(x)v without blocking on the protocol's
	// ordering round trip: the update is staged/sent before PutAsync
	// returns, and the returned Pending completes when the protocol's
	// Put would have returned. Wait-free protocols complete
	// immediately (they return Done).
	PutAsync(x string, v []byte) (Pending, error)
	// Get performs r_i(x) and returns the value appended to dst[:0]
	// (pass nil to allocate). Reads of never-written variables return
	// the ⊥ bytes (mcs.BottomValue).
	Get(x string, dst []byte) ([]byte, error)
}

// Pending is an asynchronous write completion handle.
type Pending interface {
	// Wait blocks until the write has completed per the protocol's
	// semantics (a no-op for wait-free protocols).
	Wait() error
}

// donePending is the already-complete Pending of wait-free writes.
type donePending struct{}

func (donePending) Wait() error { return nil }

// Done is the completed Pending: wait-free protocols return it from
// PutAsync, so the async fast path allocates nothing.
var Done Pending = donePending{}

// Batcher is implemented by nodes that can hold their outgoing updates
// across several operations and flush them as one frame per
// destination (the wait-free, outbox-based protocols). The facade's
// Batch API brackets its operations with BeginBatch/EndBatch; the
// blocking protocols don't implement it and pipeline via PutAsync
// instead.
type Batcher interface {
	// BeginBatch suspends update flushing for the node.
	BeginBatch()
	// EndBatch resumes flushing and sends everything buffered.
	EndBatch()
}

// CrashRestarter is implemented by every protocol node: it models a
// crash/restart cycle with loss of volatile state, followed by a
// recovery handshake that re-acquires replica state from live peers.
// The facade's CrashNode drives CrashRestart before the
// transport-level netsim.FaultController.Crash disconnects the node;
// RestartNode drives Recover after FaultController.Restart has
// reconnected it, so the snapshot requests ride the live network
// (virtual latency, coalescing and the fault schedule all apply to
// recovery traffic).
type CrashRestarter interface {
	// CrashRestart wipes the node's volatile replica state to ⊥, as if
	// the process had just rejoined after losing memory. Durable
	// identity (the node's own write-sequence counters) survives, so a
	// rejoining node cannot forge stale sequence numbers.
	CrashRestart()
	// Recover starts the rejoin handshake: snapshot requests
	// (KindSnapReq) go to the node's state-sharing peers, and each
	// snapshot response re-seeds per-variable values and protocol
	// metadata (sequence counters, vector clocks, delivery cursors).
	// Recover returns without waiting — responses are absorbed by the
	// normal message handler; unresponsive peers are retried on the
	// virtual clock and reported through Config.OnFault once the retry
	// budget is exhausted.
	Recover()
	// RecoveryStats reports the completed recovery handshakes and the
	// summed virtual ticks each took from Recover to the last peer
	// snapshot (or retry exhaustion).
	RecoveryStats() (recoveries int, ticks uint64)
}

// MaxValueLen bounds a single value's size (64 MiB): large enough for
// any realistic register object, small enough that the u32 wire
// arithmetic and the payload pools stay comfortable.
const MaxValueLen = 64 << 20

// WriteInt performs n.Put(x, v) through the legacy int64
// representation (8 big-endian bytes) — the word-sized convenience the
// facade's Write shim and the protocol tests drive nodes with.
func WriteInt(n Node, x string, v int64) error {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return n.Put(x, b[:])
}

// ReadInt performs n.Get(x) and decodes the legacy 8-byte word. Reads
// of never-written variables return model.BottomInt64.
func ReadInt(n Node, x string) (int64, error) {
	var b [8]byte
	v, err := n.Get(x, b[:0])
	if err != nil {
		return 0, err
	}
	if len(v) != 8 {
		return 0, fmt.Errorf("mcs: value of %s is %d bytes, not an int64 word", x, len(v))
	}
	return int64(binary.BigEndian.Uint64(v)), nil
}

// Config carries everything a protocol needs to instantiate its nodes.
type Config struct {
	// Net is the message-passing substrate — any netsim.Transport
	// (classic goroutine-per-pair, sharded worker pool, …). Protocols
	// install their handlers on it; the caller owns its lifecycle.
	Net netsim.Transport
	// Placement is the variable distribution (the X_i sets). Full
	// replication is just a placement assigning everything everywhere.
	Placement *sharegraph.Placement
	// Metrics receives message accounting; may be nil.
	Metrics *metrics.Collector
	// Recorder captures the global history and per-node logs; may be
	// nil to disable tracing (benchmarks).
	Recorder *Recorder
	// NonFIFO records that the transport delivers without per-pair
	// FIFO order. The blocking protocols' asynchronous writes infer
	// completion and preserve program order from per-pair FIFO, so
	// with NonFIFO set their PutAsync degrades to the synchronous Put
	// (single outstanding request — the v1 discipline, correct on
	// reordering channels).
	NonFIFO bool
	// CoalesceBatch bounds how many updates the fire-and-forget
	// protocols (pram, slow, causalfull, causalpart) buffer per
	// destination before flushing one batched frame. 0 or 1 sends every
	// update immediately. Blocking protocols (seqcons, cachepart,
	// atomicreg) ignore it: their writes wait on a round trip, so
	// holding the request back would only add latency.
	CoalesceBatch int
	// CoalesceFlushTicks, when > 0 with coalescing on, flushes buffered
	// updates once the transport's virtual clock (netsim.Clock) has
	// advanced that many ticks past the first buffered record — so many
	// message deliveries later, or as soon as the network goes idle —
	// bounding how long a silent writer's tail can sit unsent.
	CoalesceFlushTicks int
	// CoalesceAdaptive, with coalescing on, flushes a destination's
	// frame as soon as that destination has no inbound traffic in
	// flight (netsim.PairMonitor): latency-bound workloads keep the
	// message reduction without waiting out a batch or deadline.
	CoalesceAdaptive bool
	// OpDeadlineTicks, when > 0, bounds how many virtual ticks a
	// blocking operation — the ordering round trips of the sequential,
	// cache and atomic protocols — may wait for network progress. On
	// expiry the operation fails fast with an error wrapping
	// ErrOpDeadline (also dispatched to OnFault when set) instead of
	// hanging forever on a lost request; an asynchronous write's
	// Pending completes with the same error. 0 (the default) waits
	// unboundedly — the right behavior on a reliable network, where
	// the round trip always completes.
	OpDeadlineTicks int
	// OnFault, when set, receives protocol-detected faults — a handler
	// hit a malformed or unknown frame (wrong kind, out-of-range VarID)
	// that a correct peer never sends. The handler reports the fault,
	// drops the frame, and keeps serving: on a faulty network (dropped,
	// duplicated, or corrupted traffic) this is survivable input, not a
	// local invariant violation. When nil, protocols panic instead —
	// the right behavior on a reliable network, where such a frame can
	// only mean a bug. OnFault may be called concurrently from network
	// goroutines and must not block.
	OnFault func(node int, err error)
}

// Faultf dispatches a protocol-detected fault on node to OnFault, or
// panics when no sink is configured (the reliable-network default:
// a malformed frame then proves a protocol bug, and silence would
// hide it). Handlers call it and then drop the offending frame.
func (c Config) Faultf(node int, format string, args ...any) {
	err := fmt.Errorf(format, args...)
	if c.OnFault == nil {
		panic(err.Error())
	}
	c.OnFault(node, err)
}

// ApplyFlushPolicy wires the Config's CoalesceFlushTicks /
// CoalesceAdaptive settings into the given outboxes, all guarded by
// the same node mutex; protocols call it right after NewOutbox.
func (c Config) ApplyFlushPolicy(mu *sync.Mutex, outs ...*Outbox) {
	for _, o := range outs {
		o.SetFlushPolicy(mu, c.CoalesceFlushTicks, c.CoalesceAdaptive)
	}
}

// BottomValue is the byte representation of the shared-variable
// initial value ⊥ — 8 big-endian bytes encoding model.BottomInt64, so
// the legacy int64 shim observes exactly the v1 initial value. Do not
// mutate.
var BottomValue = []byte(model.Bottom)

// Replicas is a VarID-indexed local store of byte-string values. Each
// entry keeps its backing array across overwrites, so a steady-state
// Set of a value no larger than the entry's capacity allocates
// nothing — the byte-value analogue of the v1 flat []int64 store.
type Replicas [][]byte

// NewReplicas returns a replica store with every entry initialized to
// ⊥ — the common starting state of every protocol's local store.
func NewReplicas(numVars int) Replicas {
	r := make(Replicas, numVars)
	for i := range r {
		r[i] = append(make([]byte, 0, 16), BottomValue...)
	}
	return r
}

// Set overwrites entry xi with a copy of v, reusing the entry's
// backing array when it is large enough.
func (r Replicas) Set(xi int, v []byte) {
	r[xi] = append(r[xi][:0], v...)
}

// Get returns entry xi. The result aliases the store: callers must
// copy before releasing the node lock.
func (r Replicas) Get(xi int) []byte { return r[xi] }

// Validate checks structural agreement between network and placement.
func (c Config) Validate() error {
	if c.Net == nil {
		return errors.New("mcs: config needs a network")
	}
	if c.Placement == nil {
		return errors.New("mcs: config needs a placement")
	}
	if c.Net.NumNodes() != c.Placement.NumProcs() {
		return fmt.Errorf("mcs: network has %d nodes but placement has %d processes",
			c.Net.NumNodes(), c.Placement.NumProcs())
	}
	return nil
}
