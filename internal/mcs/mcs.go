// Package mcs defines the framework shared by the memory consistency
// system protocols: the node configuration, the protocol interface the
// DSM facade drives, the wire-format encoding helpers used to account
// control bytes honestly, and the trace recorder that captures global
// histories and per-node apply logs for the consistency checkers.
//
// One MCS process runs per node (paper §1): the application process
// invokes operations through its local MCS process, which propagates
// variable updates to the replicas.
package mcs

import (
	"errors"
	"fmt"
	"sync"

	"partialdsm/internal/metrics"
	"partialdsm/internal/model"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// ErrNotReplicated is returned when an application process accesses a
// variable its MCS process does not replicate. In the paper's model
// (§3) process ap_i accesses only the variables of X_i.
var ErrNotReplicated = errors.New("mcs: variable not replicated on this node")

// Node is the per-node protocol interface the DSM facade drives. Reads
// and writes may be invoked only from the node's single application
// goroutine; the protocol's message handlers run on network goroutines
// and synchronize internally.
type Node interface {
	// ID returns the node identifier (= application process id).
	ID() int
	// Write performs w_i(x)v. Wait-free protocols return after the
	// local apply; ordering protocols may block until globally ordered.
	Write(x string, v int64) error
	// Read performs r_i(x) and returns the value, Bottom if x was never
	// written.
	Read(x string) (int64, error)
}

// Config carries everything a protocol needs to instantiate its nodes.
type Config struct {
	// Net is the message-passing substrate — any netsim.Transport
	// (classic goroutine-per-pair, sharded worker pool, …). Protocols
	// install their handlers on it; the caller owns its lifecycle.
	Net netsim.Transport
	// Placement is the variable distribution (the X_i sets). Full
	// replication is just a placement assigning everything everywhere.
	Placement *sharegraph.Placement
	// Metrics receives message accounting; may be nil.
	Metrics *metrics.Collector
	// Recorder captures the global history and per-node logs; may be
	// nil to disable tracing (benchmarks).
	Recorder *Recorder
	// CoalesceBatch bounds how many updates the fire-and-forget
	// protocols (pram, slow, causalfull, causalpart) buffer per
	// destination before flushing one batched frame. 0 or 1 sends every
	// update immediately. Blocking protocols (seqcons, cachepart,
	// atomicreg) ignore it: their writes wait on a round trip, so
	// holding the request back would only add latency.
	CoalesceBatch int
	// CoalesceFlushTicks, when > 0 with coalescing on, flushes buffered
	// updates once the transport's virtual clock (netsim.Clock) has
	// advanced that many ticks past the first buffered record — so many
	// message deliveries later, or as soon as the network goes idle —
	// bounding how long a silent writer's tail can sit unsent.
	CoalesceFlushTicks int
	// CoalesceAdaptive, with coalescing on, flushes a destination's
	// frame as soon as that destination has no inbound traffic in
	// flight (netsim.PairMonitor): latency-bound workloads keep the
	// message reduction without waiting out a batch or deadline.
	CoalesceAdaptive bool
}

// ApplyFlushPolicy wires the Config's CoalesceFlushTicks /
// CoalesceAdaptive settings into the given outboxes, all guarded by
// the same node mutex; protocols call it right after NewOutbox.
func (c Config) ApplyFlushPolicy(mu *sync.Mutex, outs ...*Outbox) {
	for _, o := range outs {
		o.SetFlushPolicy(mu, c.CoalesceFlushTicks, c.CoalesceAdaptive)
	}
}

// NewReplicas returns a VarID-indexed replica array with every entry
// initialized to the shared-variable initial value ⊥ — the common
// starting state of every protocol's local store.
func NewReplicas(numVars int) []int64 {
	r := make([]int64, numVars)
	for i := range r {
		r[i] = model.Bottom
	}
	return r
}

// Validate checks structural agreement between network and placement.
func (c Config) Validate() error {
	if c.Net == nil {
		return errors.New("mcs: config needs a network")
	}
	if c.Placement == nil {
		return errors.New("mcs: config needs a placement")
	}
	if c.Net.NumNodes() != c.Placement.NumProcs() {
		return fmt.Errorf("mcs: network has %d nodes but placement has %d processes",
			c.Net.NumNodes(), c.Placement.NumProcs())
	}
	return nil
}
