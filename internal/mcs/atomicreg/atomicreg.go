// Package atomicreg implements atomic (linearizable) registers with a
// per-variable primary — the strongest criterion on the paper's
// spectrum (§1, citing Lamport). It exists as the comparison point
// showing what the stronger criteria cost: every operation, reads
// included, pays a round trip to the variable's primary, whereas the
// causal/PRAM memories serve reads wait-free from the local replica.
//
// The primary (owner) of x is a per-epoch property of the placement
// index — the lowest-numbered member of C(x) unless pinned elsewhere —
// and migrates through the epoch reconfiguration handshake: the old
// owner drains its in-flight rounds behind the fence barrier, ships the
// authoritative (value, tag) to the new owner in the transfer window,
// and the new owner installs it at the flip. The one request that can
// legitimately race the flip is a read routed under a stale epoch (reads
// are unfenced); the ex-owner bounces it with an epoch tag and the
// reader retries against the new owner once its own commit arrives.
// Writes cannot straggle: assignment-changed variables are fenced at
// every holder and requests are sent with the node lock held, so a
// write request always precedes its writer's fence on the channel.
//
// The wire protocol is idempotent against duplicated traffic: write
// requests carry a per-(requester, primary) request sequence the
// primary dedups on (a duplicate is re-acked, not re-applied), write
// acks carry that sequence back cumulatively (the requester takes the
// max, so a duplicated ack can never complete a later write early),
// and read responses carry the request's id (a stale duplicate is
// discarded by the reader). v1 of the protocol counted bare acks and
// applied every request — correct on reliable FIFO channels, silently
// wrong the moment the transport can duplicate.
//
// Every message is a single-destination request or reply, so each side
// recycles the payload it received; combined with the interned-VarID
// wire format the round trips run allocation-free in steady state.
package atomicreg

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// Message kinds. A write request is (U32 wseq, U32 rseq, VarVal
// varID/value) where rseq numbers this requester's requests to this
// primary; a write ack echoes (U32 rseq) cumulatively. A read request
// is (U32 rid, U32 varID) and its response (U32 rid, raw value bytes).
// A read bounce is (U32 rid, U32 epoch): the receiver is no longer the
// variable's owner — retry once your own index reaches that epoch.
// Requesters are identified by the message source.
const (
	KindWriteReq   = "atomic.writereq"
	KindWriteAck   = "atomic.writeack"
	KindReadReq    = "atomic.readreq"
	KindReadResp   = "atomic.readresp"
	KindReadBounce = "atomic.bounce"
)

// readRespCap bounds the requester-side read-response buffer. Under
// duplication a read can observe stale responses of earlier reads;
// they queue here until the matching loop discards them, and the
// oldest is evicted if a flood of duplicates ever fills the buffer.
const readRespCap = 16

// readReply is one read response in flight from the handler to the
// reading application goroutine: the request id and the whole received
// payload (value bytes after the 4-byte id), recycled by the reader. A
// nil buf marks a bounce: the addressed node no longer owns the
// variable, retry after reaching bounceEpoch.
type readReply struct {
	rid         uint32
	buf         []byte
	bounceEpoch uint64
}

// heldRead is one read request parked while its primary rejoins after a
// crash, or (during a reconfiguration) while the addressed node is the
// variable's pending next-epoch owner that has not flipped yet.
type heldRead struct {
	from int
	rid  uint32
	xi   int
}

// heldWrite is one write request that reached the variable's next-epoch
// owner before that owner's own commit: the requester flipped first.
// Applied, in arrival order, at the flip. v is a pooled copy.
type heldWrite struct {
	from, wseq int
	rseq       uint32
	xi         int
	v          []byte
}

// migEntry is one staged ownership-transfer value, installed (and
// recorded) only when the epoch actually flips, so an aborted attempt
// leaves no trace in the store or the event logs.
type migEntry struct {
	xi, writer, wseq int
	v                []byte // pooled copy
}

// Node is one atomic-register MCS process.
type Node struct {
	cfg mcs.Config
	id  int

	mu sync.Mutex
	ix *sharegraph.Index // current epoch's index; swapped under mu at a flip

	store mcs.Replicas // authoritative copies (by VarID) this node owns
	// storeTags tags each authoritative copy with its writer and that
	// writer's sequence number, so recovery snapshot candidates can be
	// adopted deterministically (the same-writer comparison is exact;
	// across writers the higher sequence wins, ties to the lower id).
	storeTags []mcs.WriteTag
	wseq      int // durable across CrashRestart: (writer, wseq) pairs must stay unique
	// expected[r] is the next request sequence this primary expects
	// from requester r: anything below was already applied and is
	// re-acked without re-applying (duplicate suppression). A crashed
	// primary re-learns it from each requester's sent count during
	// recovery; re-acking an unapplied pre-crash request is then safe
	// because the requester's own-write cache travels in the same
	// snapshot. The sequence space is per (requester, primary) pair and
	// survives ownership moves — a handoff transfers values, not
	// cursors.
	expected []uint32

	// Requester-side own-write cache: the latest value this node wrote
	// per variable, kept so a crashed primary can re-learn its
	// authoritative copies from the surviving requesters. Volatile —
	// lost with the rest of the node's state on CrashRestart.
	ownVals mcs.Replicas
	ownTags []mcs.WriteTag

	rcv       *mcs.Recovery
	rejoining bool
	// heldReads queues read requests that arrive while this primary is
	// rejoining; they are answered once the snapshot merge completes,
	// so no client observes the half-recovered store.
	heldReads []heldRead

	// Epoch reconfiguration: ownership handoff state.
	rcf       *mcs.Reconfig
	fence     mcs.Fence
	epochCond *sync.Cond // broadcast at every flip; bounced readers wait on it
	mig       []migEntry // staged transfer values, installed at the flip
	// Requests that raced the flip to this (pending) owner — the sender
	// already flipped, this node's commit is still in flight.
	heldEpochReads  []heldRead
	heldEpochWrites []heldWrite

	// Write-completion accounting: every ack carries its request's
	// rseq, and the requester keeps the cumulative maximum — the k-th
	// request to primary p is complete once acks[p] > k. Duplicated or
	// re-sent acks are absorbed by the max; on FIFO channels the
	// accounting coincides with v1's per-pair ack counting.
	ackMu   sync.Mutex
	ackCond *sync.Cond
	acks    []int // next-unacked request sequence, per primary (cumulative)
	sent    []int // write requests sent, per primary (durable; snapshot responses report it)

	// readResp hands read responses from the handler to the reading
	// application goroutine; rid matching discards stale duplicates.
	readResp chan readReply
	rid      uint32 // read-request id counter (mu)
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:       cfg,
			id:        i,
			ix:        ix,
			store:     mcs.NewReplicas(ix.NumVars()),
			storeTags: mcs.NewWriteTags(ix.NumVars()),
			expected:  make([]uint32, n),
			ownVals:   mcs.NewReplicas(ix.NumVars()),
			ownTags:   mcs.NewWriteTags(ix.NumVars()),
			acks:      make([]int, n),
			sent:      make([]int, n),
			readResp:  make(chan readReply, readRespCap),
		}
		node.ackCond = sync.NewCond(&node.ackMu)
		node.epochCond = sync.NewCond(&node.mu)
		node.rcv = mcs.NewRecovery(cfg, i, &node.mu)
		node.rcv.OnDone = node.finishRejoinLocked
		node.rcf = mcs.NewReconfig(cfg, i, &node.mu, node, ix)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// ownerLocked resolves x's owner under the current epoch. Called with
// mu held.
func (n *Node) ownerLocked(xi int) (int, error) {
	own := n.ix.Owner(xi)
	if own < 0 {
		return 0, fmt.Errorf("%w: variable %s has no replicas", mcs.ErrNotReplicated, n.ix.Name(xi))
	}
	return own, nil
}

// issueLocked records one write and, for a remote owner, sends the
// request; it returns the request's completion index on that owner
// (-1 when the write was applied locally). Called with mu held, and
// the send happens with mu still held: a reconfiguration's fence frame
// is sent under the same lock, so a request that passed the fence
// check can never be reordered behind its writer's fence on the
// channel (no write stragglers exist at an ex-owner).
func (n *Node) issueLocked(xi, own int, v []byte) (seq int) {
	wseq := n.wseq
	n.wseq++
	n.ownVals.Set(xi, v)
	n.ownTags[xi] = mcs.WriteTag{Writer: n.id, WSeq: wseq}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, n.ix.Name(xi), v)
	}
	if own == n.id {
		n.store.Set(xi, v)
		n.storeTags[xi] = mcs.WriteTag{Writer: n.id, WSeq: wseq}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordApplyAt(n.id, n.id, wseq, n.ix.Name(xi), v, n.ix.Epoch())
		}
		return -1
	}
	n.ackMu.Lock()
	seq = n.sent[own]
	n.sent[own]++
	n.ackMu.Unlock()
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(uint32(wseq)).U32(uint32(seq)).VarVal(xi, v)
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: own, Kind: KindWriteReq,
		Payload: payload, CtrlBytes: len(payload) - len(v), DataBytes: len(v),
		Vars: n.ix.MsgVars(xi),
	})
	return seq
}

// waitAck blocks until the seq-th request sent to prim is acked. With
// Config.OpDeadlineTicks set the wait is bounded on the virtual clock:
// a request stuck on an unrecovered lossy or partitioned link fails
// fast with an error wrapping mcs.ErrOpDeadline instead of hanging.
func (n *Node) waitAck(prim, seq int) error {
	n.ackMu.Lock()
	defer n.ackMu.Unlock()
	if n.cfg.OpDeadlineTicks > 0 {
		return n.cfg.WaitDeadline(n.id, n.ackCond,
			func() bool { return n.acks[prim] > seq },
			func() string {
				return fmt.Sprintf("atomicreg: node %d write request #%d to primary %d", n.id, seq, prim)
			})
	}
	for n.acks[prim] <= seq {
		n.ackCond.Wait()
	}
	return nil
}

// beginWrite resolves the write's variable and owner under the fence:
// a write to an assignment-changed variable parks until the epoch
// transition resolves, then routes under the (possibly new) epoch.
// Returns with mu HELD on success.
func (n *Node) beginWrite(x string) (xi, own int, err error) {
	n.mu.Lock()
	xi = n.ix.ID(x)
	if err := n.fence.WaitLocked(n.cfg, n.id, xi, x); err != nil {
		n.mu.Unlock()
		return 0, 0, err
	}
	// Re-check against the possibly flipped index: the fence lifts at
	// the epoch boundary, and this node may have shed the variable.
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	own, err = n.ownerLocked(xi)
	if err != nil {
		n.mu.Unlock()
		return 0, 0, err
	}
	return xi, own, nil
}

// Put performs w_i(x)v with a round trip to x's owner.
func (n *Node) Put(x string, v []byte) error {
	xi, own, err := n.beginWrite(x)
	if err != nil {
		return err
	}
	seq := n.issueLocked(xi, own, v)
	n.mu.Unlock()
	if seq >= 0 {
		return n.waitAck(own, seq) // the write has taken effect atomically
	}
	return nil
}

// pending is an outstanding asynchronous write: it completes when its
// primary's ack arrives (seq < 0 means it was applied locally and is
// already complete).
type pending struct {
	n         *Node
	prim, seq int
}

// Wait blocks until the write has taken effect at its primary.
func (p *pending) Wait() error {
	if p.seq >= 0 {
		return p.n.waitAck(p.prim, p.seq)
	}
	return nil
}

// PutAsync performs w_i(x)v without waiting for the owner's ack;
// Wait blocks until the write has taken effect atomically. Operations
// issued before Wait returns are not linearized after the write. The
// ack accounting matches requests to acks through per-pair FIFO
// order, so on a NonFIFO network PutAsync degrades to the synchronous
// Put (one outstanding request, the v1 discipline).
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	if n.cfg.NonFIFO {
		return mcs.Done, n.Put(x, v)
	}
	xi, own, err := n.beginWrite(x)
	if err != nil {
		return nil, err
	}
	seq := n.issueLocked(xi, own, v)
	n.mu.Unlock()
	if seq < 0 {
		return mcs.Done, nil
	}
	return &pending{n: n, prim: own, seq: seq}, nil
}

// awaitRead blocks on the read-response channel until a reply for rid
// arrives (value or bounce), honouring the operation deadline. The
// AdvanceIdle nudge before each blocking receive lets an otherwise
// idle network jump to the deadline timer.
func (n *Node) awaitRead(rid uint32, x string, own int) (readReply, error) {
	var timeout chan struct{}
	var clk netsim.Clock
	if n.cfg.OpDeadlineTicks > 0 {
		clk = n.cfg.Net.Clock()
		timeout = make(chan struct{})
		clk.After(uint64(n.cfg.OpDeadlineTicks), func() { close(timeout) })
	}
	for {
		var rep readReply
		if timeout != nil {
			select {
			case rep = <-n.readResp:
			default:
				clk.AdvanceIdle()
				select {
				case rep = <-n.readResp:
				case <-timeout:
					err := fmt.Errorf("atomicreg: node %d read of %s from primary %d: no response within OpDeadlineTicks=%d: %w",
						n.id, x, own, n.cfg.OpDeadlineTicks, mcs.ErrOpDeadline)
					if n.cfg.OnFault != nil {
						n.cfg.OnFault(n.id, err)
					}
					return readReply{}, err
				}
			}
		} else {
			rep = <-n.readResp
		}
		if rep.rid != rid {
			if rep.buf != nil {
				mcs.PutPayload(rep.buf)
			}
			continue
		}
		return rep, nil
	}
}

// Get performs r_i(x) with a round trip to x's owner, appending the
// value to dst[:0]. Reads are not fenced during a reconfiguration: a
// read routed to an ex-owner under a stale epoch is bounced with the
// ex-owner's epoch, and the reader retries — against the new owner, or
// locally if ownership moved here — once its own index catches up.
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	n.mu.Lock()
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	name := n.ix.Name(xi)
	own, err := n.ownerLocked(xi)
	if err != nil {
		n.mu.Unlock()
		return nil, err
	}
	for {
		if own == n.id {
			dst = append(dst[:0], n.store.Get(xi)...)
			n.mu.Unlock()
			break
		}
		rid := n.rid
		n.rid++
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.U32(rid).U32(uint32(xi))
		payload := enc.Bytes()
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: own, Kind: KindReadReq,
			Payload: payload, CtrlBytes: len(payload),
			Vars: n.ix.MsgVars(xi),
		})
		n.mu.Unlock()
		rep, err := n.awaitRead(rid, name, own)
		if err != nil {
			return nil, err
		}
		if rep.buf != nil {
			dst = append(dst[:0], rep.buf[4:]...)
			mcs.PutPayload(rep.buf)
			break
		}
		// Bounced: the addressed node flipped past us. Wait for our own
		// commit to arrive (broadcast at the flip), then re-resolve.
		n.mu.Lock()
		target := rep.bounceEpoch
		if err := n.cfg.WaitDeadline(n.id, n.epochCond,
			func() bool { return n.ix.Epoch() >= target },
			func() string {
				return fmt.Sprintf("atomicreg: node %d read of %s bounced to epoch %d", n.id, x, target)
			}); err != nil {
			n.mu.Unlock()
			return nil, err
		}
		if !n.ix.Holds(n.id, xi) {
			n.mu.Unlock()
			return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
		}
		if own, err = n.ownerLocked(xi); err != nil {
			n.mu.Unlock()
			return nil, err
		}
	}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, name, dst)
	}
	return dst, nil
}

// applyWriteLocked installs one write request at the authoritative
// copy, with duplicate suppression on the (requester, primary) request
// sequence. Called with mu held.
func (n *Node) applyWriteLocked(from, wseq int, rseq uint32, xi int, v []byte, epoch uint64) {
	if rseq < n.expected[from] {
		return // duplicate: re-acked by the caller, not re-applied
	}
	n.expected[from] = rseq + 1
	n.store.Set(xi, v)
	n.storeTags[xi] = mcs.WriteTag{Writer: from, WSeq: wseq}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordApplyAt(n.id, from, wseq, n.ix.Name(xi), v, epoch)
	}
}

// sendWriteAck acks request rseq from the requester (also sent for
// suppressed duplicates: the original ack may have been lost).
func (n *Node) sendWriteAck(requester, xi int, rseq uint32) {
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(rseq)
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: requester, Kind: KindWriteAck,
		Payload: enc.Bytes(), CtrlBytes: enc.Len(), Vars: n.ix.MsgVars(xi),
	})
}

// sendReadBounce tells a reader its request was routed under a stale
// epoch: retry after reaching epoch.
func (n *Node) sendReadBounce(reader, xi int, rid uint32, epoch uint64) {
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(rid).U32(uint32(epoch))
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: reader, Kind: KindReadBounce,
		Payload: enc.Bytes(), CtrlBytes: enc.Len(), Vars: n.ix.MsgVars(xi),
	})
}

// handle dispatches primary-side requests and requester-side replies.
// Every payload is single-destination, so the handler recycles it
// after decoding. Malformed frames are reported through Config.Faultf
// and dropped (a panic on a reliable network, survivable input under
// fault injection).
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindWriteReq:
		d := mcs.DecOf(msg.Payload)
		wseq := int(d.U32())
		rseq := d.U32()
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed write request: %v", n.id, err)
			mcs.RecycleFrame(msg)
			return
		}
		if xi < 0 || xi >= len(n.store) {
			n.cfg.Faultf(n.id, "atomicreg: node %d: write request from %d names unknown VarID %d", n.id, msg.From, xi)
			mcs.RecycleFrame(msg)
			return
		}
		n.mu.Lock()
		switch {
		case rseq < n.expected[msg.From]:
			// Duplicate: re-ack without re-applying, wherever ownership
			// currently sits — the requester's cumulative accounting
			// absorbs the extra ack, and a lost original ack is recovered.
		case n.ix.Owner(xi) == n.id:
			n.applyWriteLocked(msg.From, wseq, rseq, xi, v, n.ix.Epoch())
		case n.pendingOwnerLocked(xi):
			// The requester flipped before us: park until our own commit
			// arrives, then apply under the new epoch (arrival order).
			n.heldEpochWrites = append(n.heldEpochWrites, heldWrite{
				from: msg.From, wseq: wseq, rseq: rseq, xi: xi,
				v: append(mcs.GetPayload(), v...),
			})
			n.mu.Unlock()
			mcs.PutPayload(msg.Payload)
			return
		default:
			// A fresh request for a variable this node neither owns nor is
			// about to own: reachable only through message loss (the
			// original died, its retransmit outran the writer's fence).
			// Ack it without applying — the write is lost exactly as it
			// would be on the lossy network that produced this case, and
			// the writer is unblocked instead of retransmitting at a dead
			// end forever.
		}
		n.mu.Unlock()
		mcs.PutPayload(msg.Payload)
		n.sendWriteAck(msg.From, xi, rseq)
	case KindReadReq:
		d := mcs.DecOf(msg.Payload)
		rid := d.U32()
		xi := int(d.U32())
		if err := d.Err(); err != nil {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed read request: %v", n.id, err)
			mcs.RecycleFrame(msg)
			return
		}
		if xi < 0 || xi >= len(n.store) {
			n.cfg.Faultf(n.id, "atomicreg: node %d: read request from %d names unknown VarID %d", n.id, msg.From, xi)
			mcs.RecycleFrame(msg)
			return
		}
		mcs.PutPayload(msg.Payload)
		n.mu.Lock()
		switch {
		case n.ix.Owner(xi) != n.id && n.pendingOwnerLocked(xi):
			// Ownership is arriving: the reader flipped before us. Park
			// until the flip installs the transferred value.
			n.heldEpochReads = append(n.heldEpochReads, heldRead{from: msg.From, rid: rid, xi: xi})
			n.mu.Unlock()
			return
		case n.ix.Owner(xi) != n.id:
			// Ownership left in an epoch the reader has not reached.
			epoch := n.ix.Epoch()
			n.mu.Unlock()
			n.sendReadBounce(msg.From, xi, rid, epoch)
			return
		case n.rejoining:
			// Don't serve reads from a half-recovered store: park the
			// request until the snapshot merge completes.
			n.heldReads = append(n.heldReads, heldRead{from: msg.From, rid: rid, xi: xi})
			n.mu.Unlock()
			return
		}
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.U32(rid).Raw(n.store.Get(xi))
		n.mu.Unlock()
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: msg.From, Kind: KindReadResp,
			Payload: enc.Bytes(), CtrlBytes: 4, DataBytes: enc.Len() - 4,
			Vars: n.ix.MsgVars(xi),
		})
	case KindWriteAck:
		d := mcs.DecOf(msg.Payload)
		rseq := d.U32()
		if err := d.Err(); err != nil {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed write ack: %v", n.id, err)
			mcs.RecycleFrame(msg)
			return
		}
		mcs.PutPayload(msg.Payload)
		n.ackMu.Lock()
		if int(rseq)+1 > n.acks[msg.From] {
			n.acks[msg.From] = int(rseq) + 1
			n.ackCond.Broadcast()
		}
		n.ackMu.Unlock()
	case KindReadResp:
		if len(msg.Payload) < 4 {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed read response (%d bytes)", n.id, len(msg.Payload))
			mcs.RecycleFrame(msg)
			return
		}
		d := mcs.DecOf(msg.Payload)
		n.deliverReadReply(readReply{rid: d.U32(), buf: msg.Payload})
	case KindReadBounce:
		d := mcs.DecOf(msg.Payload)
		rid := d.U32()
		epoch := uint64(d.U32())
		if err := d.Err(); err != nil {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed read bounce: %v", n.id, err)
			mcs.RecycleFrame(msg)
			return
		}
		mcs.PutPayload(msg.Payload)
		n.deliverReadReply(readReply{rid: rid, bounceEpoch: epoch})
	case mcs.KindSnapReq:
		n.handleSnapReq(msg)
	case mcs.KindSnapResp:
		n.handleSnapResp(msg)
	default:
		if mcs.IsEpochKind(msg.Kind) {
			n.rcf.Handle(msg)
			return
		}
		n.cfg.Faultf(n.id, "atomicreg: node %d: unknown message kind %q", n.id, msg.Kind)
		mcs.RecycleFrame(msg)
	}
}

// pendingOwnerLocked reports whether the in-progress reconfiguration
// attempt (if any) makes this node the variable's owner. Called with
// mu held.
func (n *Node) pendingOwnerLocked(xi int) bool {
	next := n.rcf.PendingIndexLocked()
	return next != nil && next.Owner(xi) == n.id
}

// deliverReadReply hands one read reply (value or bounce) to the
// reading application goroutine without blocking the network
// goroutine: under a duplicate flood the oldest undelivered reply is
// evicted (it can only be a stale duplicate of a completed read).
func (n *Node) deliverReadReply(rep readReply) {
	for {
		select {
		case n.readResp <- rep:
			return
		default:
		}
		select {
		case old := <-n.readResp:
			if old.buf != nil {
				mcs.PutPayload(old.buf)
			}
		default:
		}
	}
}

// handleSnapReq answers a rejoining peer p with this node's sent-count
// toward p (so p rebuilds its duplicate-suppression cursor at least as
// high as every request already issued) and the own-write cache entries
// for variables p owns. A request issued while p was down is then
// re-acked without re-applying, which is safe precisely because the
// latest own write per variable rides in this same snapshot.
func (n *Node) handleSnapReq(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "atomicreg: node %d: malformed snapshot request from %d: %v", n.id, msg.From, err)
		return
	}
	if msg.From < 0 || msg.From >= len(n.expected) {
		n.cfg.Faultf(n.id, "atomicreg: node %d: snapshot request from unknown node %d", n.id, msg.From)
		return
	}
	n.ackMu.Lock()
	reqs := n.sent[msg.From]
	n.ackMu.Unlock()
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(epoch).U32(uint32(reqs))
	var vars []string
	pos := enc.Len()
	enc.U32(0)
	nVals, data := 0, 0
	n.mu.Lock()
	for _, xi := range n.ix.VarIDs(n.id) {
		t := n.ownTags[xi]
		if t.Writer != n.id {
			continue
		}
		if n.ix.Owner(xi) != msg.From {
			continue
		}
		v := n.ownVals.Get(xi)
		enc.U32(uint32(t.WSeq)).VarVal(xi, v)
		vars = append(vars, n.ix.Name(xi))
		data += len(v)
		nVals++
	}
	n.mu.Unlock()
	enc.PatchU32(pos, uint32(nVals))
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From:      n.id,
		To:        msg.From,
		Kind:      mcs.KindSnapResp,
		Payload:   payload,
		CtrlBytes: len(payload) - data,
		DataBytes: data,
		Vars:      vars,
	})
}

// handleSnapResp merges one requester's snapshot into the rejoining
// primary: expected[from] rises to that requester's sent count, and
// own-write candidates re-populate the authoritative copies. Adoption
// is deterministic regardless of response arrival order: an empty slot
// always adopts, a same-writer candidate adopts exactly when newer, and
// across writers the higher sequence wins with ties to the lower id.
func (n *Node) handleSnapResp(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	reqs := d.U32()
	nVals := int(d.U32())
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "atomicreg: node %d: malformed snapshot from %d: %v", n.id, msg.From, err)
		return
	}
	if msg.From < 0 || msg.From >= len(n.expected) {
		n.cfg.Faultf(n.id, "atomicreg: node %d: snapshot from unknown node %d", n.id, msg.From)
		return
	}
	n.mu.Lock()
	if !n.rcv.Accept(msg.From, epoch) {
		n.mu.Unlock()
		return
	}
	if reqs > n.expected[msg.From] {
		n.expected[msg.From] = reqs
	}
	for k := 0; k < nVals; k++ {
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed snapshot entry from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= len(n.store) {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "atomicreg: node %d: snapshot entry from %d names unknown VarID %d", n.id, msg.From, xi)
			return
		}
		w := msg.From
		cur := n.storeTags[xi]
		adopt := cur.Writer < 0 || s > cur.WSeq || (s == cur.WSeq && w < cur.Writer)
		if !adopt {
			continue
		}
		n.store.Set(xi, v)
		n.storeTags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordRecoverAt(n.id, w, s, n.ix.Name(xi), v, n.ix.Epoch())
		}
	}
	n.rcv.FinishResponse()
	n.mu.Unlock()
}

// finishRejoinLocked closes the rejoin window (Recovery.OnDone, node
// lock held): owned variables no surviving requester had a cached
// write for are recorded as ⊥ resets, then the reads parked during the
// window are answered from the recovered store. The sends happen with
// the lock dropped (and re-taken before returning, as OnDone requires).
func (n *Node) finishRejoinLocked() {
	n.rejoining = false
	rec := n.cfg.Recorder
	var outs []netsim.Message
	for _, xi := range n.ix.VarIDs(n.id) {
		if n.ix.Owner(xi) != n.id {
			continue
		}
		if rec != nil && n.storeTags[xi].Writer < 0 {
			rec.RecordRecoverAt(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue, n.ix.Epoch())
		}
	}
	for _, hr := range n.heldReads {
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.U32(hr.rid).Raw(n.store.Get(hr.xi))
		outs = append(outs, netsim.Message{
			From: n.id, To: hr.from, Kind: KindReadResp,
			Payload: enc.Bytes(), CtrlBytes: 4, DataBytes: enc.Len() - 4,
			Vars: n.ix.MsgVars(hr.xi),
		})
	}
	n.heldReads = nil
	if len(outs) > 0 {
		n.mu.Unlock()
		for _, m := range outs {
			n.cfg.Net.Send(m)
		}
		n.mu.Lock()
	}
}

// CrashRestart models the node rejoining after a crash with its
// volatile state lost: the authoritative copies, their tags, the
// duplicate-suppression cursors, the own-write cache, any parked
// requests and any in-progress reconfiguration attempt are wiped, to
// be re-learned from the surviving requesters during Recover
// (mcs.CrashRestarter). The write counter and the per-primary request
// numbering survive — receivers key duplicate suppression and ack
// accounting on them, so a restarted requester must not reuse
// positions. Application goroutines blocked on pre-crash round trips
// are released (their requests died with the process).
func (n *Node) CrashRestart() {
	n.mu.Lock()
	for xi := range n.store {
		n.store.Set(xi, mcs.BottomValue)
		n.storeTags[xi] = mcs.WriteTag{Writer: -1}
		n.ownVals.Set(xi, mcs.BottomValue)
		n.ownTags[xi] = mcs.WriteTag{Writer: -1}
	}
	for r := range n.expected {
		n.expected[r] = 0
	}
	n.heldReads = nil
	for _, m := range n.mig {
		mcs.PutPayload(m.v)
	}
	n.mig = nil
	for _, w := range n.heldEpochWrites {
		mcs.PutPayload(w.v)
	}
	n.heldEpochWrites = nil
	n.heldEpochReads = nil
	n.rejoining = true
	n.rcv.Cancel()
	n.rcf.CancelLocked()
	n.fence.LiftLocked()
	n.epochCond.Broadcast()
	n.mu.Unlock()
	n.ackMu.Lock()
	for p := range n.acks {
		if n.sent[p] > n.acks[p] {
			n.acks[p] = n.sent[p]
		}
	}
	n.ackCond.Broadcast()
	n.ackMu.Unlock()
	for {
		select {
		case rep := <-n.readResp:
			if rep.buf != nil {
				mcs.PutPayload(rep.buf)
			}
		default:
			return
		}
	}
}

// Recover starts the rejoin handshake (mcs.CrashRestarter) with every
// variable-sharing neighbour under the current epoch's index — only
// clique members can write through this node's owned variables, so
// together they hold every recoverable value.
func (n *Node) Recover() {
	n.mu.Lock()
	peers := n.ix.Neighbors(n.id)
	n.mu.Unlock()
	n.rcv.Begin(peers)
}

// RecoveryStats reports completed rejoins and their summed virtual
// duration (mcs.CrashRestarter).
func (n *Node) RecoveryStats() (recoveries int, ticks uint64) {
	return n.rcv.Stats()
}

// ReconfigEngine exposes the node's epoch reconfiguration engine to the
// cluster facade.
func (n *Node) ReconfigEngine() *mcs.Reconfig { return n.rcf }

// ReconfigFlushLocked implements mcs.ReconfigHooks. The protocol has no
// outbox — requests are sent directly, with mu held, so the engine's
// fence (sent under the same lock) already travels behind every
// pre-fence request.
func (n *Node) ReconfigFlushLocked() {}

// ReconfigFenceLocked fences writes to the variables whose assignment —
// clique or owner — changes (mcs.ReconfigHooks). Reads stay unfenced;
// a read racing the flip is bounced and retried.
func (n *Node) ReconfigFenceLocked(next *sharegraph.Index) {
	n.fence.ArmLocked(&n.mu, n.id, n.ix, next, false)
}

// ReconfigTransferVarsLocked lists the variables this node becomes
// owner of in the next epoch (mcs.ReconfigHooks): only the owner holds
// the authoritative copy, so plain replica gains need no transfer.
func (n *Node) ReconfigTransferVarsLocked(next *sharegraph.Index) []int {
	var gained []int
	for _, xi := range next.VarIDs(n.id) {
		if next.Owner(xi) == n.id && n.ix.Owner(xi) != n.id {
			gained = append(gained, xi)
		}
	}
	return gained
}

// ReconfigDonorLocked pins the transfer donor to the variable's
// current owner (mcs.ReconfigDonorPicker): it holds the only
// authoritative copy, so the engine's default — the lowest live clique
// member — would hand over a vestigial replica. A dead owner means no
// donor: the variable resets to ⊥ at the flip, the same contract as a
// recovery no peer could answer.
func (n *Node) ReconfigDonorLocked(xi int, cur *sharegraph.Index, live []bool) int {
	own := cur.Owner(xi)
	if own >= 0 && own < len(live) && live[own] {
		return own
	}
	return -1
}

// ReconfigEncodeLocked answers a gaining owner with the fence-settled
// authoritative (writer, wseq, value) of each requested variable, the
// same entry format as a recovery snapshot (mcs.ReconfigHooks).
func (n *Node) ReconfigEncodeLocked(enc *mcs.Enc, requester int, varIDs []int, next *sharegraph.Index) (data int, vars []string) {
	countPos := enc.Len()
	enc.U32(0)
	count := 0
	for _, xi := range varIDs {
		if xi < 0 || xi >= len(n.storeTags) || n.storeTags[xi].Writer < 0 {
			continue
		}
		t := n.storeTags[xi]
		v := n.store.Get(xi)
		enc.U32(uint32(t.Writer)).U32(uint32(t.WSeq)).VarVal(xi, v)
		vars = append(vars, n.ix.Name(xi))
		data += len(v)
		count++
	}
	enc.PatchU32(countPos, uint32(count))
	return data, vars
}

// ReconfigMergeLocked stages one donor's transfer entries
// (mcs.ReconfigHooks). Nothing is installed or recorded yet: the store
// and the event logs change only at the flip, so an aborted attempt
// leaves no trace.
func (n *Node) ReconfigMergeLocked(d *mcs.Dec, from int, next *sharegraph.Index) error {
	count := int(d.U32())
	for k := 0; k < count; k++ {
		w := int(d.U32())
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			return err
		}
		if xi < 0 || xi >= len(n.store) || w < 0 || w >= n.cfg.Net.NumNodes() {
			return fmt.Errorf("atomicreg: transfer entry names unknown VarID %d / writer %d", xi, w)
		}
		n.mig = append(n.mig, migEntry{xi: xi, writer: w, wseq: s, v: append(mcs.GetPayload(), v...)})
	}
	return d.Err()
}

// ReconfigFlipLocked installs the next epoch (mcs.ReconfigHooks): lost
// ownership wipes the authoritative copy (a stale authority must not
// resurface if ownership ever returns with a dead donor), shed
// replicas wipe the own-write cache too, staged transfers install as
// epoch-stamped migration events, newly-owned variables no donor had a
// value for are recorded as ⊥ resets, and the requests that raced the
// flip to this node — their senders flipped first — are served under
// the new epoch in arrival order. Finally the index swaps, the write
// fence lifts and bounced readers are woken.
func (n *Node) ReconfigFlipLocked(next *sharegraph.Index) {
	rec := n.cfg.Recorder
	for _, xi := range n.ix.VarIDs(n.id) {
		if n.ix.Owner(xi) == n.id && next.Owner(xi) != n.id {
			n.store.Set(xi, mcs.BottomValue)
			n.storeTags[xi] = mcs.WriteTag{Writer: -1}
		}
		if !next.Holds(n.id, xi) {
			n.ownVals.Set(xi, mcs.BottomValue)
			n.ownTags[xi] = mcs.WriteTag{Writer: -1}
		}
	}
	for _, m := range n.mig {
		n.store.Set(m.xi, m.v)
		n.storeTags[m.xi] = mcs.WriteTag{Writer: m.writer, WSeq: m.wseq}
		if rec != nil {
			rec.RecordMigrateAt(n.id, m.writer, m.wseq, next.Name(m.xi), m.v, next.Epoch())
		}
		mcs.PutPayload(m.v)
	}
	n.mig = nil
	if rec != nil && !n.rejoining {
		for _, xi := range next.VarIDs(n.id) {
			if next.Owner(xi) == n.id && n.ix.Owner(xi) != n.id && n.storeTags[xi].Writer < 0 {
				rec.RecordMigrateAt(n.id, -1, -1, next.Name(xi), mcs.BottomValue, next.Epoch())
			}
		}
	}
	n.ix = next
	n.fence.LiftLocked()
	n.epochCond.Broadcast()
	heldW := n.heldEpochWrites
	n.heldEpochWrites = nil
	for _, w := range heldW {
		n.applyWriteLocked(w.from, w.wseq, w.rseq, w.xi, w.v, next.Epoch())
		mcs.PutPayload(w.v)
		n.sendWriteAck(w.from, w.xi, w.rseq)
	}
	heldR := n.heldEpochReads
	n.heldEpochReads = nil
	for _, hr := range heldR {
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.U32(hr.rid).Raw(n.store.Get(hr.xi))
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: hr.from, Kind: KindReadResp,
			Payload: enc.Bytes(), CtrlBytes: 4, DataBytes: enc.Len() - 4,
			Vars: n.ix.MsgVars(hr.xi),
		})
	}
}

// ReconfigAbortLocked abandons the attempt (mcs.ReconfigHooks): staged
// transfers are dropped unrecorded and the fence lifts. Requests
// parked for the pending epoch are resolved defensively — their
// senders can only have routed here after flipping, which a decided
// commit precludes from aborting — by re-acking writes unapplied and
// bouncing reads at the current epoch.
func (n *Node) ReconfigAbortLocked() {
	for _, m := range n.mig {
		mcs.PutPayload(m.v)
	}
	n.mig = nil
	heldW := n.heldEpochWrites
	n.heldEpochWrites = nil
	for _, w := range heldW {
		mcs.PutPayload(w.v)
		n.sendWriteAck(w.from, w.xi, w.rseq)
	}
	heldR := n.heldEpochReads
	n.heldEpochReads = nil
	epoch := n.ix.Epoch()
	for _, hr := range heldR {
		n.sendReadBounce(hr.from, hr.xi, hr.rid, epoch)
	}
	n.fence.LiftLocked()
}

var (
	_ mcs.Node                = (*Node)(nil)
	_ mcs.CrashRestarter      = (*Node)(nil)
	_ mcs.ReconfigHooks       = (*Node)(nil)
	_ mcs.ReconfigDonorPicker = (*Node)(nil)
)
