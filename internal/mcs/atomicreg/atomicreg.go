// Package atomicreg implements atomic (linearizable) registers with a
// per-variable primary — the strongest criterion on the paper's
// spectrum (§1, citing Lamport). It exists as the comparison point
// showing what the stronger criteria cost: every operation, reads
// included, pays a round trip to the variable's primary, whereas the
// causal/PRAM memories serve reads wait-free from the local replica.
//
// The primary of x is the lowest-numbered member of C(x); it holds the
// single authoritative copy, so executions are trivially linearizable
// (each operation takes effect atomically at the primary).
//
// The wire protocol is idempotent against duplicated traffic: write
// requests carry a per-(requester, primary) request sequence the
// primary dedups on (a duplicate is re-acked, not re-applied), write
// acks carry that sequence back cumulatively (the requester takes the
// max, so a duplicated ack can never complete a later write early),
// and read responses carry the request's id (a stale duplicate is
// discarded by the reader). v1 of the protocol counted bare acks and
// applied every request — correct on reliable FIFO channels, silently
// wrong the moment the transport can duplicate.
//
// Every message is a single-destination request or reply, so each side
// recycles the payload it received; combined with the interned-VarID
// wire format the round trips run allocation-free in steady state.
package atomicreg

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// Message kinds. A write request is (U32 wseq, U32 rseq, VarVal
// varID/value) where rseq numbers this requester's requests to this
// primary; a write ack echoes (U32 rseq) cumulatively. A read request
// is (U32 rid, U32 varID) and its response (U32 rid, raw value bytes).
// Requesters are identified by the message source.
const (
	KindWriteReq = "atomic.writereq"
	KindWriteAck = "atomic.writeack"
	KindReadReq  = "atomic.readreq"
	KindReadResp = "atomic.readresp"
)

// readRespCap bounds the requester-side read-response buffer. Under
// duplication a read can observe stale responses of earlier reads;
// they queue here until the matching loop discards them, and the
// oldest is evicted if a flood of duplicates ever fills the buffer.
const readRespCap = 16

// readReply is one read response in flight from the handler to the
// reading application goroutine: the request id and the whole received
// payload (value bytes after the 4-byte id), recycled by the reader.
type readReply struct {
	rid uint32
	buf []byte
}

// Node is one atomic-register MCS process.
type Node struct {
	cfg mcs.Config
	id  int
	ix  *sharegraph.Index

	mu    sync.Mutex
	store mcs.Replicas // authoritative copies (by VarID) this node is primary for
	wseq  int
	// expected[r] is the next request sequence this primary expects
	// from requester r: anything below was already applied and is
	// re-acked without re-applying (duplicate suppression).
	expected []uint32

	// Write-completion accounting: every ack carries its request's
	// rseq, and the requester keeps the cumulative maximum — the k-th
	// request to primary p is complete once acks[p] > k. Duplicated or
	// re-sent acks are absorbed by the max; on FIFO channels the
	// accounting coincides with v1's per-pair ack counting.
	ackMu   sync.Mutex
	ackCond *sync.Cond
	acks    []int // next-unacked request sequence, per primary (cumulative)
	sent    []int // write requests sent, per primary (app goroutine only)

	// readResp hands read responses from the handler to the reading
	// application goroutine; rid matching discards stale duplicates.
	readResp chan readReply
	rid      uint32 // read-request id counter (app goroutine only)
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			ix:       ix,
			store:    mcs.NewReplicas(ix.NumVars()),
			expected: make([]uint32, n),
			acks:     make([]int, n),
			sent:     make([]int, n),
			readResp: make(chan readReply, readRespCap),
		}
		node.ackCond = sync.NewCond(&node.ackMu)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// primary returns the primary node for x: the lowest member of C(x).
func (n *Node) primary(xi int) (int, error) {
	cx := n.ix.Clique(xi)
	if len(cx) == 0 {
		return 0, fmt.Errorf("%w: variable %s has no replicas", mcs.ErrNotReplicated, n.ix.Name(xi))
	}
	return cx[0], nil
}

// issue records one write and, for a remote primary, sends the
// request; it returns the request's completion index on that primary
// (-1 when the write was applied locally).
func (n *Node) issue(xi, prim int, v []byte) (seq int) {
	n.mu.Lock()
	wseq := n.wseq
	n.wseq++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, n.ix.Name(xi), v)
	}
	n.mu.Unlock()

	if prim == n.id {
		n.applyPrimary(n.id, wseq, xi, v)
		return -1
	}
	seq = n.sent[prim]
	n.sent[prim]++
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(uint32(wseq)).U32(uint32(seq)).VarVal(xi, v)
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: prim, Kind: KindWriteReq,
		Payload: payload, CtrlBytes: len(payload) - len(v), DataBytes: len(v),
		Vars: n.ix.MsgVars(xi),
	})
	return seq
}

// waitAck blocks until the seq-th request sent to prim is acked.
func (n *Node) waitAck(prim, seq int) {
	n.ackMu.Lock()
	for n.acks[prim] <= seq {
		n.ackCond.Wait()
	}
	n.ackMu.Unlock()
}

// Put performs w_i(x)v with a round trip to x's primary.
func (n *Node) Put(x string, v []byte) error {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return err
	}
	if seq := n.issue(xi, prim, v); seq >= 0 {
		n.waitAck(prim, seq) // the write has taken effect atomically
	}
	return nil
}

// pending is an outstanding asynchronous write: it completes when its
// primary's ack arrives (seq < 0 means it was applied locally and is
// already complete).
type pending struct {
	n         *Node
	prim, seq int
}

// Wait blocks until the write has taken effect at its primary.
func (p *pending) Wait() error {
	if p.seq >= 0 {
		p.n.waitAck(p.prim, p.seq)
	}
	return nil
}

// PutAsync performs w_i(x)v without waiting for the primary's ack;
// Wait blocks until the write has taken effect atomically. Operations
// issued before Wait returns are not linearized after the write. The
// ack accounting matches requests to acks through per-pair FIFO
// order, so on a NonFIFO network PutAsync degrades to the synchronous
// Put (one outstanding request, the v1 discipline).
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	if n.cfg.NonFIFO {
		return mcs.Done, n.Put(x, v)
	}
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return nil, err
	}
	seq := n.issue(xi, prim, v)
	if seq < 0 {
		return mcs.Done, nil
	}
	return &pending{n: n, prim: prim, seq: seq}, nil
}

// Get performs r_i(x) with a round trip to x's primary, appending the
// value to dst[:0].
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return nil, err
	}
	if prim == n.id {
		n.mu.Lock()
		dst = append(dst[:0], n.store.Get(xi)...)
		n.mu.Unlock()
	} else {
		rid := n.rid
		n.rid++
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.U32(rid).U32(uint32(xi))
		payload := enc.Bytes()
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: prim, Kind: KindReadReq,
			Payload: payload, CtrlBytes: len(payload),
			Vars: n.ix.MsgVars(xi),
		})
		// Wait for this read's response; stale replies of duplicated
		// earlier reads are discarded by the id match.
		for {
			rep := <-n.readResp
			if rep.rid != rid {
				mcs.PutPayload(rep.buf)
				continue
			}
			dst = append(dst[:0], rep.buf[4:]...)
			mcs.PutPayload(rep.buf)
			break
		}
	}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	return dst, nil
}

// applyPrimary installs the write at the authoritative copy.
func (n *Node) applyPrimary(writer, wseq, xi int, v []byte) {
	n.mu.Lock()
	n.store.Set(xi, v)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordApply(n.id, writer, wseq, n.ix.Name(xi), v)
	}
	n.mu.Unlock()
}

// sendWriteAck acks request rseq from the requester (also sent for
// suppressed duplicates: the original ack may have been lost).
func (n *Node) sendWriteAck(requester, xi int, rseq uint32) {
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(rseq)
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: requester, Kind: KindWriteAck,
		Payload: enc.Bytes(), CtrlBytes: enc.Len(), Vars: n.ix.MsgVars(xi),
	})
}

// handle dispatches primary-side requests and requester-side replies.
// Every payload is single-destination, so the handler recycles it
// after decoding. Malformed frames are reported through Config.Faultf
// and dropped (a panic on a reliable network, survivable input under
// fault injection).
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindWriteReq:
		d := mcs.DecOf(msg.Payload)
		wseq := int(d.U32())
		rseq := d.U32()
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed write request: %v", n.id, err)
			mcs.RecycleFrame(msg)
			return
		}
		if xi < 0 || xi >= n.ix.NumVars() {
			n.cfg.Faultf(n.id, "atomicreg: node %d: write request from %d names unknown VarID %d", n.id, msg.From, xi)
			mcs.RecycleFrame(msg)
			return
		}
		n.mu.Lock()
		fresh := rseq >= n.expected[msg.From]
		if fresh {
			n.expected[msg.From] = rseq + 1
			n.store.Set(xi, v)
			if rec := n.cfg.Recorder; rec != nil {
				rec.RecordApply(n.id, msg.From, wseq, n.ix.Name(xi), v)
			}
		}
		n.mu.Unlock()
		mcs.PutPayload(msg.Payload)
		// Duplicates are re-acked without re-applying: the requester's
		// cumulative accounting absorbs the extra ack, and a lost
		// original ack is recovered.
		n.sendWriteAck(msg.From, xi, rseq)
	case KindReadReq:
		d := mcs.DecOf(msg.Payload)
		rid := d.U32()
		xi := int(d.U32())
		if err := d.Err(); err != nil {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed read request: %v", n.id, err)
			mcs.RecycleFrame(msg)
			return
		}
		if xi < 0 || xi >= n.ix.NumVars() {
			n.cfg.Faultf(n.id, "atomicreg: node %d: read request from %d names unknown VarID %d", n.id, msg.From, xi)
			mcs.RecycleFrame(msg)
			return
		}
		mcs.PutPayload(msg.Payload)
		n.mu.Lock()
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.U32(rid).Raw(n.store.Get(xi))
		n.mu.Unlock()
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: msg.From, Kind: KindReadResp,
			Payload: enc.Bytes(), CtrlBytes: 4, DataBytes: enc.Len() - 4,
			Vars: n.ix.MsgVars(xi),
		})
	case KindWriteAck:
		d := mcs.DecOf(msg.Payload)
		rseq := d.U32()
		if err := d.Err(); err != nil {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed write ack: %v", n.id, err)
			mcs.RecycleFrame(msg)
			return
		}
		mcs.PutPayload(msg.Payload)
		n.ackMu.Lock()
		if int(rseq)+1 > n.acks[msg.From] {
			n.acks[msg.From] = int(rseq) + 1
			n.ackCond.Broadcast()
		}
		n.ackMu.Unlock()
	case KindReadResp:
		if len(msg.Payload) < 4 {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed read response (%d bytes)", n.id, len(msg.Payload))
			mcs.RecycleFrame(msg)
			return
		}
		d := mcs.DecOf(msg.Payload)
		rep := readReply{rid: d.U32(), buf: msg.Payload}
		// Hand off without blocking the network goroutine: under a
		// duplicate flood the oldest undelivered reply is evicted (it
		// can only be a stale duplicate of a completed read).
		for {
			select {
			case n.readResp <- rep:
				return
			default:
			}
			select {
			case old := <-n.readResp:
				mcs.PutPayload(old.buf)
			default:
			}
		}
	default:
		n.cfg.Faultf(n.id, "atomicreg: node %d: unknown message kind %q", n.id, msg.Kind)
		mcs.RecycleFrame(msg)
	}
}

var _ mcs.Node = (*Node)(nil)
