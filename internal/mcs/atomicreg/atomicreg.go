// Package atomicreg implements atomic (linearizable) registers with a
// per-variable primary — the strongest criterion on the paper's
// spectrum (§1, citing Lamport). It exists as the comparison point
// showing what the stronger criteria cost: every operation, reads
// included, pays a round trip to the variable's primary, whereas the
// causal/PRAM memories serve reads wait-free from the local replica.
//
// The primary of x is the lowest-numbered member of C(x); it holds the
// single authoritative copy, so executions are trivially linearizable
// (each operation takes effect atomically at the primary).
package atomicreg

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/model"
	"partialdsm/internal/netsim"
)

// Message kinds.
const (
	KindWriteReq = "atomic.writereq"
	KindWriteAck = "atomic.writeack"
	KindReadReq  = "atomic.readreq"
	KindReadResp = "atomic.readresp"
)

// Node is one atomic-register MCS process.
type Node struct {
	cfg mcs.Config
	id  int

	mu    sync.Mutex
	store map[string]int64 // authoritative copies of vars this node is primary for
	reply chan int64       // response slot for the single outstanding request
	wseq  int
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Placement.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:   cfg,
			id:    i,
			store: make(map[string]int64),
			reply: make(chan int64, 1),
		}
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// primary returns the primary node for x: the lowest member of C(x).
func (n *Node) primary(x string) (int, error) {
	cx := n.cfg.Placement.Clique(x)
	if len(cx) == 0 {
		return 0, fmt.Errorf("%w: variable %s has no replicas", mcs.ErrNotReplicated, x)
	}
	return cx[0], nil
}

// Write performs w_i(x)v with a round trip to x's primary.
func (n *Node) Write(x string, v int64) error {
	if !n.cfg.Placement.Holds(n.id, x) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(x)
	if err != nil {
		return err
	}
	n.mu.Lock()
	wseq := n.wseq
	n.wseq++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, x, v)
	}
	n.mu.Unlock()

	if prim == n.id {
		n.applyPrimary(n.id, wseq, x, v)
		return nil
	}
	var enc mcs.Enc
	enc.U32(uint32(n.id)).U32(uint32(wseq)).Str(x).I64(v)
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: prim, Kind: KindWriteReq,
		Payload: payload, CtrlBytes: len(payload) - 8, DataBytes: 8,
		Vars: []string{x},
	})
	<-n.reply // wait for the ack: the write has taken effect atomically
	return nil
}

// Read performs r_i(x) with a round trip to x's primary.
func (n *Node) Read(x string) (int64, error) {
	if !n.cfg.Placement.Holds(n.id, x) {
		return 0, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(x)
	if err != nil {
		return 0, err
	}
	var v int64
	if prim == n.id {
		n.mu.Lock()
		var ok bool
		if v, ok = n.store[x]; !ok {
			v = model.Bottom
		}
		n.mu.Unlock()
	} else {
		var enc mcs.Enc
		enc.U32(uint32(n.id)).Str(x)
		payload := enc.Bytes()
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: prim, Kind: KindReadReq,
			Payload: payload, CtrlBytes: len(payload),
			Vars: []string{x},
		})
		v = <-n.reply
	}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, x, v)
	}
	return v, nil
}

// applyPrimary installs the write at the authoritative copy.
func (n *Node) applyPrimary(writer, wseq int, x string, v int64) {
	n.mu.Lock()
	n.store[x] = v
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordApply(n.id, writer, wseq, x, v)
	}
	n.mu.Unlock()
}

// handle dispatches primary-side requests and requester-side replies.
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindWriteReq:
		d := mcs.NewDec(msg.Payload)
		writer := int(d.U32())
		wseq := int(d.U32())
		x := d.Str()
		v := d.I64()
		if err := d.Err(); err != nil {
			panic(fmt.Sprintf("atomicreg: node %d: malformed write request: %v", n.id, err))
		}
		n.applyPrimary(writer, wseq, x, v)
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: writer, Kind: KindWriteAck,
			CtrlBytes: 1, Vars: []string{x},
		})
	case KindReadReq:
		d := mcs.NewDec(msg.Payload)
		reader := int(d.U32())
		x := d.Str()
		if err := d.Err(); err != nil {
			panic(fmt.Sprintf("atomicreg: node %d: malformed read request: %v", n.id, err))
		}
		n.mu.Lock()
		v, ok := n.store[x]
		if !ok {
			v = model.Bottom
		}
		n.mu.Unlock()
		var enc mcs.Enc
		enc.I64(v)
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: reader, Kind: KindReadResp,
			Payload: enc.Bytes(), DataBytes: 8, Vars: []string{x},
		})
	case KindWriteAck:
		n.reply <- 0
	case KindReadResp:
		d := mcs.NewDec(msg.Payload)
		v := d.I64()
		if err := d.Err(); err != nil {
			panic(fmt.Sprintf("atomicreg: node %d: malformed read response: %v", n.id, err))
		}
		n.reply <- v
	default:
		panic(fmt.Sprintf("atomicreg: node %d: unknown message kind %q", n.id, msg.Kind))
	}
}

var _ mcs.Node = (*Node)(nil)
