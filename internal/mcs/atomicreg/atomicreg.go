// Package atomicreg implements atomic (linearizable) registers with a
// per-variable primary — the strongest criterion on the paper's
// spectrum (§1, citing Lamport). It exists as the comparison point
// showing what the stronger criteria cost: every operation, reads
// included, pays a round trip to the variable's primary, whereas the
// causal/PRAM memories serve reads wait-free from the local replica.
//
// The primary of x is the lowest-numbered member of C(x); it holds the
// single authoritative copy, so executions are trivially linearizable
// (each operation takes effect atomically at the primary).
//
// The wire protocol is idempotent against duplicated traffic: write
// requests carry a per-(requester, primary) request sequence the
// primary dedups on (a duplicate is re-acked, not re-applied), write
// acks carry that sequence back cumulatively (the requester takes the
// max, so a duplicated ack can never complete a later write early),
// and read responses carry the request's id (a stale duplicate is
// discarded by the reader). v1 of the protocol counted bare acks and
// applied every request — correct on reliable FIFO channels, silently
// wrong the moment the transport can duplicate.
//
// Every message is a single-destination request or reply, so each side
// recycles the payload it received; combined with the interned-VarID
// wire format the round trips run allocation-free in steady state.
package atomicreg

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// Message kinds. A write request is (U32 wseq, U32 rseq, VarVal
// varID/value) where rseq numbers this requester's requests to this
// primary; a write ack echoes (U32 rseq) cumulatively. A read request
// is (U32 rid, U32 varID) and its response (U32 rid, raw value bytes).
// Requesters are identified by the message source.
const (
	KindWriteReq = "atomic.writereq"
	KindWriteAck = "atomic.writeack"
	KindReadReq  = "atomic.readreq"
	KindReadResp = "atomic.readresp"
)

// readRespCap bounds the requester-side read-response buffer. Under
// duplication a read can observe stale responses of earlier reads;
// they queue here until the matching loop discards them, and the
// oldest is evicted if a flood of duplicates ever fills the buffer.
const readRespCap = 16

// readReply is one read response in flight from the handler to the
// reading application goroutine: the request id and the whole received
// payload (value bytes after the 4-byte id), recycled by the reader.
type readReply struct {
	rid uint32
	buf []byte
}

// heldRead is one read request parked while its primary rejoins.
type heldRead struct {
	from int
	rid  uint32
	xi   int
}

// Node is one atomic-register MCS process.
type Node struct {
	cfg mcs.Config
	id  int
	ix  *sharegraph.Index

	mu    sync.Mutex
	store mcs.Replicas // authoritative copies (by VarID) this node is primary for
	// storeTags tags each authoritative copy with its writer and that
	// writer's sequence number, so recovery snapshot candidates can be
	// adopted deterministically (the same-writer comparison is exact;
	// across writers the higher sequence wins, ties to the lower id).
	storeTags []mcs.WriteTag
	wseq      int // durable across CrashRestart: (writer, wseq) pairs must stay unique
	// expected[r] is the next request sequence this primary expects
	// from requester r: anything below was already applied and is
	// re-acked without re-applying (duplicate suppression). A crashed
	// primary re-learns it from each requester's sent count during
	// recovery; re-acking an unapplied pre-crash request is then safe
	// because the requester's own-write cache travels in the same
	// snapshot.
	expected []uint32

	// Requester-side own-write cache: the latest value this node wrote
	// per variable, kept so a crashed primary can re-learn its
	// authoritative copies from the surviving requesters. Volatile —
	// lost with the rest of the node's state on CrashRestart.
	ownVals mcs.Replicas
	ownTags []mcs.WriteTag

	rcv       *mcs.Recovery
	rejoining bool
	// heldReads queues read requests that arrive while this primary is
	// rejoining; they are answered once the snapshot merge completes,
	// so no client observes the half-recovered store.
	heldReads []heldRead

	// Write-completion accounting: every ack carries its request's
	// rseq, and the requester keeps the cumulative maximum — the k-th
	// request to primary p is complete once acks[p] > k. Duplicated or
	// re-sent acks are absorbed by the max; on FIFO channels the
	// accounting coincides with v1's per-pair ack counting.
	ackMu   sync.Mutex
	ackCond *sync.Cond
	acks    []int // next-unacked request sequence, per primary (cumulative)
	sent    []int // write requests sent, per primary (durable; snapshot responses report it)

	// readResp hands read responses from the handler to the reading
	// application goroutine; rid matching discards stale duplicates.
	readResp chan readReply
	rid      uint32 // read-request id counter (app goroutine only)
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:       cfg,
			id:        i,
			ix:        ix,
			store:     mcs.NewReplicas(ix.NumVars()),
			storeTags: mcs.NewWriteTags(ix.NumVars()),
			expected:  make([]uint32, n),
			ownVals:   mcs.NewReplicas(ix.NumVars()),
			ownTags:   mcs.NewWriteTags(ix.NumVars()),
			acks:      make([]int, n),
			sent:      make([]int, n),
			readResp:  make(chan readReply, readRespCap),
		}
		node.ackCond = sync.NewCond(&node.ackMu)
		node.rcv = mcs.NewRecovery(cfg, i, &node.mu)
		node.rcv.OnDone = node.finishRejoinLocked
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// primary returns the primary node for x: the lowest member of C(x).
func (n *Node) primary(xi int) (int, error) {
	cx := n.ix.Clique(xi)
	if len(cx) == 0 {
		return 0, fmt.Errorf("%w: variable %s has no replicas", mcs.ErrNotReplicated, n.ix.Name(xi))
	}
	return cx[0], nil
}

// issue records one write and, for a remote primary, sends the
// request; it returns the request's completion index on that primary
// (-1 when the write was applied locally).
func (n *Node) issue(xi, prim int, v []byte) (seq int) {
	n.mu.Lock()
	wseq := n.wseq
	n.wseq++
	n.ownVals.Set(xi, v)
	n.ownTags[xi] = mcs.WriteTag{Writer: n.id, WSeq: wseq}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, n.ix.Name(xi), v)
	}
	n.mu.Unlock()

	if prim == n.id {
		n.applyPrimary(n.id, wseq, xi, v)
		return -1
	}
	n.ackMu.Lock()
	seq = n.sent[prim]
	n.sent[prim]++
	n.ackMu.Unlock()
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(uint32(wseq)).U32(uint32(seq)).VarVal(xi, v)
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: prim, Kind: KindWriteReq,
		Payload: payload, CtrlBytes: len(payload) - len(v), DataBytes: len(v),
		Vars: n.ix.MsgVars(xi),
	})
	return seq
}

// waitAck blocks until the seq-th request sent to prim is acked. With
// Config.OpDeadlineTicks set the wait is bounded on the virtual clock:
// a request stuck on an unrecovered lossy or partitioned link fails
// fast with an error wrapping mcs.ErrOpDeadline instead of hanging.
func (n *Node) waitAck(prim, seq int) error {
	n.ackMu.Lock()
	defer n.ackMu.Unlock()
	if n.cfg.OpDeadlineTicks > 0 {
		return n.cfg.WaitDeadline(n.id, n.ackCond,
			func() bool { return n.acks[prim] > seq },
			func() string {
				return fmt.Sprintf("atomicreg: node %d write request #%d to primary %d", n.id, seq, prim)
			})
	}
	for n.acks[prim] <= seq {
		n.ackCond.Wait()
	}
	return nil
}

// Put performs w_i(x)v with a round trip to x's primary.
func (n *Node) Put(x string, v []byte) error {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return err
	}
	if seq := n.issue(xi, prim, v); seq >= 0 {
		return n.waitAck(prim, seq) // the write has taken effect atomically
	}
	return nil
}

// pending is an outstanding asynchronous write: it completes when its
// primary's ack arrives (seq < 0 means it was applied locally and is
// already complete).
type pending struct {
	n         *Node
	prim, seq int
}

// Wait blocks until the write has taken effect at its primary.
func (p *pending) Wait() error {
	if p.seq >= 0 {
		return p.n.waitAck(p.prim, p.seq)
	}
	return nil
}

// PutAsync performs w_i(x)v without waiting for the primary's ack;
// Wait blocks until the write has taken effect atomically. Operations
// issued before Wait returns are not linearized after the write. The
// ack accounting matches requests to acks through per-pair FIFO
// order, so on a NonFIFO network PutAsync degrades to the synchronous
// Put (one outstanding request, the v1 discipline).
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	if n.cfg.NonFIFO {
		return mcs.Done, n.Put(x, v)
	}
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return nil, err
	}
	seq := n.issue(xi, prim, v)
	if seq < 0 {
		return mcs.Done, nil
	}
	return &pending{n: n, prim: prim, seq: seq}, nil
}

// Get performs r_i(x) with a round trip to x's primary, appending the
// value to dst[:0].
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return nil, err
	}
	if prim == n.id {
		n.mu.Lock()
		dst = append(dst[:0], n.store.Get(xi)...)
		n.mu.Unlock()
	} else {
		rid := n.rid
		n.rid++
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.U32(rid).U32(uint32(xi))
		payload := enc.Bytes()
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: prim, Kind: KindReadReq,
			Payload: payload, CtrlBytes: len(payload),
			Vars: n.ix.MsgVars(xi),
		})
		// Wait for this read's response; stale replies of duplicated
		// earlier reads are discarded by the id match. With
		// Config.OpDeadlineTicks set the wait is bounded on the
		// virtual clock (same fail-fast contract as waitAck): the
		// AdvanceIdle nudge before each blocking receive lets an
		// otherwise idle network jump to the deadline timer.
		var timeout chan struct{}
		var clk netsim.Clock
		if n.cfg.OpDeadlineTicks > 0 {
			clk = n.cfg.Net.Clock()
			timeout = make(chan struct{})
			clk.After(uint64(n.cfg.OpDeadlineTicks), func() { close(timeout) })
		}
		for {
			var rep readReply
			if timeout != nil {
				select {
				case rep = <-n.readResp:
				default:
					clk.AdvanceIdle()
					select {
					case rep = <-n.readResp:
					case <-timeout:
						err := fmt.Errorf("atomicreg: node %d read of %s from primary %d: no response within OpDeadlineTicks=%d: %w",
							n.id, x, prim, n.cfg.OpDeadlineTicks, mcs.ErrOpDeadline)
						if n.cfg.OnFault != nil {
							n.cfg.OnFault(n.id, err)
						}
						return nil, err
					}
				}
			} else {
				rep = <-n.readResp
			}
			if rep.rid != rid {
				mcs.PutPayload(rep.buf)
				continue
			}
			dst = append(dst[:0], rep.buf[4:]...)
			mcs.PutPayload(rep.buf)
			break
		}
	}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	return dst, nil
}

// applyPrimary installs the write at the authoritative copy.
func (n *Node) applyPrimary(writer, wseq, xi int, v []byte) {
	n.mu.Lock()
	n.store.Set(xi, v)
	n.storeTags[xi] = mcs.WriteTag{Writer: writer, WSeq: wseq}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordApply(n.id, writer, wseq, n.ix.Name(xi), v)
	}
	n.mu.Unlock()
}

// sendWriteAck acks request rseq from the requester (also sent for
// suppressed duplicates: the original ack may have been lost).
func (n *Node) sendWriteAck(requester, xi int, rseq uint32) {
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(rseq)
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: requester, Kind: KindWriteAck,
		Payload: enc.Bytes(), CtrlBytes: enc.Len(), Vars: n.ix.MsgVars(xi),
	})
}

// handle dispatches primary-side requests and requester-side replies.
// Every payload is single-destination, so the handler recycles it
// after decoding. Malformed frames are reported through Config.Faultf
// and dropped (a panic on a reliable network, survivable input under
// fault injection).
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindWriteReq:
		d := mcs.DecOf(msg.Payload)
		wseq := int(d.U32())
		rseq := d.U32()
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed write request: %v", n.id, err)
			mcs.RecycleFrame(msg)
			return
		}
		if xi < 0 || xi >= n.ix.NumVars() {
			n.cfg.Faultf(n.id, "atomicreg: node %d: write request from %d names unknown VarID %d", n.id, msg.From, xi)
			mcs.RecycleFrame(msg)
			return
		}
		n.mu.Lock()
		fresh := rseq >= n.expected[msg.From]
		if fresh {
			n.expected[msg.From] = rseq + 1
			n.store.Set(xi, v)
			n.storeTags[xi] = mcs.WriteTag{Writer: msg.From, WSeq: wseq}
			if rec := n.cfg.Recorder; rec != nil {
				rec.RecordApply(n.id, msg.From, wseq, n.ix.Name(xi), v)
			}
		}
		n.mu.Unlock()
		mcs.PutPayload(msg.Payload)
		// Duplicates are re-acked without re-applying: the requester's
		// cumulative accounting absorbs the extra ack, and a lost
		// original ack is recovered.
		n.sendWriteAck(msg.From, xi, rseq)
	case KindReadReq:
		d := mcs.DecOf(msg.Payload)
		rid := d.U32()
		xi := int(d.U32())
		if err := d.Err(); err != nil {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed read request: %v", n.id, err)
			mcs.RecycleFrame(msg)
			return
		}
		if xi < 0 || xi >= n.ix.NumVars() {
			n.cfg.Faultf(n.id, "atomicreg: node %d: read request from %d names unknown VarID %d", n.id, msg.From, xi)
			mcs.RecycleFrame(msg)
			return
		}
		mcs.PutPayload(msg.Payload)
		n.mu.Lock()
		if n.rejoining {
			// Don't serve reads from a half-recovered store: park the
			// request until the snapshot merge completes.
			n.heldReads = append(n.heldReads, heldRead{from: msg.From, rid: rid, xi: xi})
			n.mu.Unlock()
			return
		}
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.U32(rid).Raw(n.store.Get(xi))
		n.mu.Unlock()
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: msg.From, Kind: KindReadResp,
			Payload: enc.Bytes(), CtrlBytes: 4, DataBytes: enc.Len() - 4,
			Vars: n.ix.MsgVars(xi),
		})
	case KindWriteAck:
		d := mcs.DecOf(msg.Payload)
		rseq := d.U32()
		if err := d.Err(); err != nil {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed write ack: %v", n.id, err)
			mcs.RecycleFrame(msg)
			return
		}
		mcs.PutPayload(msg.Payload)
		n.ackMu.Lock()
		if int(rseq)+1 > n.acks[msg.From] {
			n.acks[msg.From] = int(rseq) + 1
			n.ackCond.Broadcast()
		}
		n.ackMu.Unlock()
	case KindReadResp:
		if len(msg.Payload) < 4 {
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed read response (%d bytes)", n.id, len(msg.Payload))
			mcs.RecycleFrame(msg)
			return
		}
		d := mcs.DecOf(msg.Payload)
		rep := readReply{rid: d.U32(), buf: msg.Payload}
		// Hand off without blocking the network goroutine: under a
		// duplicate flood the oldest undelivered reply is evicted (it
		// can only be a stale duplicate of a completed read).
		for {
			select {
			case n.readResp <- rep:
				return
			default:
			}
			select {
			case old := <-n.readResp:
				mcs.PutPayload(old.buf)
			default:
			}
		}
	case mcs.KindSnapReq:
		n.handleSnapReq(msg)
	case mcs.KindSnapResp:
		n.handleSnapResp(msg)
	default:
		n.cfg.Faultf(n.id, "atomicreg: node %d: unknown message kind %q", n.id, msg.Kind)
		mcs.RecycleFrame(msg)
	}
}

// handleSnapReq answers a rejoining peer p with this node's sent-count
// toward p (so p rebuilds its duplicate-suppression cursor at least as
// high as every request already issued) and the own-write cache entries
// for variables p is primary of. A request issued while p was down is
// then re-acked without re-applying, which is safe precisely because
// the latest own write per variable rides in this same snapshot.
func (n *Node) handleSnapReq(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "atomicreg: node %d: malformed snapshot request from %d: %v", n.id, msg.From, err)
		return
	}
	if msg.From < 0 || msg.From >= len(n.expected) {
		n.cfg.Faultf(n.id, "atomicreg: node %d: snapshot request from unknown node %d", n.id, msg.From)
		return
	}
	n.ackMu.Lock()
	reqs := n.sent[msg.From]
	n.ackMu.Unlock()
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(epoch).U32(uint32(reqs))
	var vars []string
	pos := enc.Len()
	enc.U32(0)
	nVals, data := 0, 0
	n.mu.Lock()
	for _, xi := range n.ix.VarIDs(n.id) {
		t := n.ownTags[xi]
		if t.Writer != n.id {
			continue
		}
		if prim, err := n.primary(xi); err != nil || prim != msg.From {
			continue
		}
		v := n.ownVals.Get(xi)
		enc.U32(uint32(t.WSeq)).VarVal(xi, v)
		vars = append(vars, n.ix.Name(xi))
		data += len(v)
		nVals++
	}
	n.mu.Unlock()
	enc.PatchU32(pos, uint32(nVals))
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From:      n.id,
		To:        msg.From,
		Kind:      mcs.KindSnapResp,
		Payload:   payload,
		CtrlBytes: len(payload) - data,
		DataBytes: data,
		Vars:      vars,
	})
}

// handleSnapResp merges one requester's snapshot into the rejoining
// primary: expected[from] rises to that requester's sent count, and
// own-write candidates re-populate the authoritative copies. Adoption
// is deterministic regardless of response arrival order: an empty slot
// always adopts, a same-writer candidate adopts exactly when newer, and
// across writers the higher sequence wins with ties to the lower id.
func (n *Node) handleSnapResp(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	reqs := d.U32()
	nVals := int(d.U32())
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "atomicreg: node %d: malformed snapshot from %d: %v", n.id, msg.From, err)
		return
	}
	if msg.From < 0 || msg.From >= len(n.expected) {
		n.cfg.Faultf(n.id, "atomicreg: node %d: snapshot from unknown node %d", n.id, msg.From)
		return
	}
	n.mu.Lock()
	if !n.rcv.Accept(msg.From, epoch) {
		n.mu.Unlock()
		return
	}
	if reqs > n.expected[msg.From] {
		n.expected[msg.From] = reqs
	}
	for k := 0; k < nVals; k++ {
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "atomicreg: node %d: malformed snapshot entry from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= n.ix.NumVars() {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "atomicreg: node %d: snapshot entry from %d names unknown VarID %d", n.id, msg.From, xi)
			return
		}
		w := msg.From
		cur := n.storeTags[xi]
		adopt := cur.Writer < 0 || s > cur.WSeq || (s == cur.WSeq && w < cur.Writer)
		if !adopt {
			continue
		}
		n.store.Set(xi, v)
		n.storeTags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordRecover(n.id, w, s, n.ix.Name(xi), v)
		}
	}
	n.rcv.FinishResponse()
	n.mu.Unlock()
}

// finishRejoinLocked closes the rejoin window (Recovery.OnDone, node
// lock held): primary'd variables no surviving requester had a cached
// write for are recorded as ⊥ resets, then the reads parked during the
// window are answered from the recovered store. The sends happen with
// the lock dropped (and re-taken before returning, as OnDone requires).
func (n *Node) finishRejoinLocked() {
	n.rejoining = false
	rec := n.cfg.Recorder
	var outs []netsim.Message
	for _, xi := range n.ix.VarIDs(n.id) {
		if prim, err := n.primary(xi); err != nil || prim != n.id {
			continue
		}
		if rec != nil && n.storeTags[xi].Writer < 0 {
			rec.RecordRecover(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue)
		}
	}
	for _, hr := range n.heldReads {
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.U32(hr.rid).Raw(n.store.Get(hr.xi))
		outs = append(outs, netsim.Message{
			From: n.id, To: hr.from, Kind: KindReadResp,
			Payload: enc.Bytes(), CtrlBytes: 4, DataBytes: enc.Len() - 4,
			Vars: n.ix.MsgVars(hr.xi),
		})
	}
	n.heldReads = nil
	if len(outs) > 0 {
		n.mu.Unlock()
		for _, m := range outs {
			n.cfg.Net.Send(m)
		}
		n.mu.Lock()
	}
}

// CrashRestart models the node rejoining after a crash with its
// volatile state lost: the authoritative copies, their tags, the
// duplicate-suppression cursors, the own-write cache and any parked
// reads are wiped, to be re-learned from the surviving requesters
// during Recover (mcs.CrashRestarter). The write counter and the
// per-primary request numbering survive — receivers key duplicate
// suppression and ack accounting on them, so a restarted requester must
// not reuse positions. Application goroutines blocked on pre-crash
// round trips are released (their requests died with the process).
func (n *Node) CrashRestart() {
	n.mu.Lock()
	for xi := range n.store {
		n.store.Set(xi, mcs.BottomValue)
		n.storeTags[xi] = mcs.WriteTag{Writer: -1}
		n.ownVals.Set(xi, mcs.BottomValue)
		n.ownTags[xi] = mcs.WriteTag{Writer: -1}
	}
	for r := range n.expected {
		n.expected[r] = 0
	}
	n.heldReads = nil
	n.rejoining = true
	n.rcv.Cancel()
	n.mu.Unlock()
	n.ackMu.Lock()
	for p := range n.acks {
		if n.sent[p] > n.acks[p] {
			n.acks[p] = n.sent[p]
		}
	}
	n.ackCond.Broadcast()
	n.ackMu.Unlock()
	for {
		select {
		case rep := <-n.readResp:
			mcs.PutPayload(rep.buf)
		default:
			return
		}
	}
}

// Recover starts the rejoin handshake (mcs.CrashRestarter): every
// clique neighbour is a snapshot peer — only clique members can write
// through this primary, so together they hold every recoverable value.
func (n *Node) Recover() {
	n.rcv.Begin(n.cfg.Placement.Neighbors(n.id))
}

// RecoveryStats reports completed rejoins and their summed virtual
// duration (mcs.CrashRestarter).
func (n *Node) RecoveryStats() (recoveries int, ticks uint64) {
	return n.rcv.Stats()
}

var (
	_ mcs.Node           = (*Node)(nil)
	_ mcs.CrashRestarter = (*Node)(nil)
)
