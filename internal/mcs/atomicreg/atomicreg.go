// Package atomicreg implements atomic (linearizable) registers with a
// per-variable primary — the strongest criterion on the paper's
// spectrum (§1, citing Lamport). It exists as the comparison point
// showing what the stronger criteria cost: every operation, reads
// included, pays a round trip to the variable's primary, whereas the
// causal/PRAM memories serve reads wait-free from the local replica.
//
// The primary of x is the lowest-numbered member of C(x); it holds the
// single authoritative copy, so executions are trivially linearizable
// (each operation takes effect atomically at the primary).
//
// Every message is a single-destination request or reply, so each side
// recycles the payload it received; combined with the interned-VarID
// wire format the round trips run allocation-free in steady state.
package atomicreg

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// Message kinds. A write request is (U32 wseq, VarVal varID/value), a
// read request is (U32 varID); acks are empty and read responses carry
// the raw value bytes (the whole payload). Requesters are identified
// by the message source.
const (
	KindWriteReq = "atomic.writereq"
	KindWriteAck = "atomic.writeack"
	KindReadReq  = "atomic.readreq"
	KindReadResp = "atomic.readresp"
)

// Node is one atomic-register MCS process.
type Node struct {
	cfg mcs.Config
	id  int
	ix  *sharegraph.Index

	mu    sync.Mutex
	store mcs.Replicas // authoritative copies (by VarID) this node is primary for
	wseq  int

	// Write-completion accounting: per-pair FIFO delivers each
	// primary's acks in request order, so the k-th request this node
	// sent to primary p is complete once p's (k+1)-th ack arrives —
	// which lets any number of asynchronous writes stay outstanding
	// without widening the wire format.
	ackMu   sync.Mutex
	ackCond *sync.Cond
	acks    []int // acks received, per primary
	sent    []int // write requests sent, per primary (app goroutine only)

	// readResp hands the single outstanding read's response payload
	// from the handler to the reading application goroutine.
	readResp chan []byte
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			ix:       ix,
			store:    mcs.NewReplicas(ix.NumVars()),
			acks:     make([]int, n),
			sent:     make([]int, n),
			readResp: make(chan []byte, 1),
		}
		node.ackCond = sync.NewCond(&node.ackMu)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// primary returns the primary node for x: the lowest member of C(x).
func (n *Node) primary(xi int) (int, error) {
	cx := n.ix.Clique(xi)
	if len(cx) == 0 {
		return 0, fmt.Errorf("%w: variable %s has no replicas", mcs.ErrNotReplicated, n.ix.Name(xi))
	}
	return cx[0], nil
}

// issue records one write and, for a remote primary, sends the
// request; it returns the request's completion index on that primary
// (-1 when the write was applied locally).
func (n *Node) issue(xi, prim int, v []byte) (seq int) {
	n.mu.Lock()
	wseq := n.wseq
	n.wseq++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, n.ix.Name(xi), v)
	}
	n.mu.Unlock()

	if prim == n.id {
		n.applyPrimary(n.id, wseq, xi, v)
		return -1
	}
	seq = n.sent[prim]
	n.sent[prim]++
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(uint32(wseq)).VarVal(xi, v)
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: prim, Kind: KindWriteReq,
		Payload: payload, CtrlBytes: len(payload) - len(v), DataBytes: len(v),
		Vars: n.ix.MsgVars(xi),
	})
	return seq
}

// waitAck blocks until the seq-th request sent to prim is acked.
func (n *Node) waitAck(prim, seq int) {
	n.ackMu.Lock()
	for n.acks[prim] <= seq {
		n.ackCond.Wait()
	}
	n.ackMu.Unlock()
}

// Put performs w_i(x)v with a round trip to x's primary.
func (n *Node) Put(x string, v []byte) error {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return err
	}
	if seq := n.issue(xi, prim, v); seq >= 0 {
		n.waitAck(prim, seq) // the write has taken effect atomically
	}
	return nil
}

// pending is an outstanding asynchronous write: it completes when its
// primary's ack arrives (seq < 0 means it was applied locally and is
// already complete).
type pending struct {
	n         *Node
	prim, seq int
}

// Wait blocks until the write has taken effect at its primary.
func (p *pending) Wait() error {
	if p.seq >= 0 {
		p.n.waitAck(p.prim, p.seq)
	}
	return nil
}

// PutAsync performs w_i(x)v without waiting for the primary's ack;
// Wait blocks until the write has taken effect atomically. Operations
// issued before Wait returns are not linearized after the write. The
// ack accounting matches requests to acks through per-pair FIFO
// order, so on a NonFIFO network PutAsync degrades to the synchronous
// Put (one outstanding request, the v1 discipline).
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	if n.cfg.NonFIFO {
		return mcs.Done, n.Put(x, v)
	}
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return nil, err
	}
	seq := n.issue(xi, prim, v)
	if seq < 0 {
		return mcs.Done, nil
	}
	return &pending{n: n, prim: prim, seq: seq}, nil
}

// Get performs r_i(x) with a round trip to x's primary, appending the
// value to dst[:0].
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return nil, err
	}
	if prim == n.id {
		n.mu.Lock()
		dst = append(dst[:0], n.store.Get(xi)...)
		n.mu.Unlock()
	} else {
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.U32(uint32(xi))
		payload := enc.Bytes()
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: prim, Kind: KindReadReq,
			Payload: payload, CtrlBytes: len(payload),
			Vars: n.ix.MsgVars(xi),
		})
		resp := <-n.readResp
		dst = append(dst[:0], resp...)
		mcs.PutPayload(resp)
	}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	return dst, nil
}

// applyPrimary installs the write at the authoritative copy.
func (n *Node) applyPrimary(writer, wseq, xi int, v []byte) {
	n.mu.Lock()
	n.store.Set(xi, v)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordApply(n.id, writer, wseq, n.ix.Name(xi), v)
	}
	n.mu.Unlock()
}

// varID decodes and bounds-checks a VarID field.
func (n *Node) varID(d *mcs.Dec, what string, from int) int {
	xi := int(d.U32())
	if err := d.Err(); err == nil && (xi < 0 || xi >= n.ix.NumVars()) {
		panic(fmt.Sprintf("atomicreg: node %d: %s from %d names unknown VarID %d", n.id, what, from, xi))
	}
	return xi
}

// handle dispatches primary-side requests and requester-side replies.
// Every payload is single-destination, so the handler recycles it after
// decoding.
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindWriteReq:
		d := mcs.DecOf(msg.Payload)
		wseq := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			panic(fmt.Sprintf("atomicreg: node %d: malformed write request: %v", n.id, err))
		}
		if xi < 0 || xi >= n.ix.NumVars() {
			panic(fmt.Sprintf("atomicreg: node %d: write request from %d names unknown VarID %d", n.id, msg.From, xi))
		}
		n.applyPrimary(msg.From, wseq, xi, v) // copies v before the recycle below
		mcs.PutPayload(msg.Payload)
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: msg.From, Kind: KindWriteAck,
			CtrlBytes: 1, Vars: n.ix.MsgVars(xi),
		})
	case KindReadReq:
		d := mcs.DecOf(msg.Payload)
		xi := n.varID(&d, "read request", msg.From)
		if err := d.Err(); err != nil {
			panic(fmt.Sprintf("atomicreg: node %d: malformed read request: %v", n.id, err))
		}
		mcs.PutPayload(msg.Payload)
		n.mu.Lock()
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.Raw(n.store.Get(xi))
		n.mu.Unlock()
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: msg.From, Kind: KindReadResp,
			Payload: enc.Bytes(), DataBytes: enc.Len(), Vars: n.ix.MsgVars(xi),
		})
	case KindWriteAck:
		n.ackMu.Lock()
		n.acks[msg.From]++
		n.ackCond.Broadcast()
		n.ackMu.Unlock()
	case KindReadResp:
		// The whole payload is the value; the reading goroutine copies
		// it out and recycles the buffer.
		n.readResp <- msg.Payload
	default:
		panic(fmt.Sprintf("atomicreg: node %d: unknown message kind %q", n.id, msg.Kind))
	}
}

var _ mcs.Node = (*Node)(nil)
