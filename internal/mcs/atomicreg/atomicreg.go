// Package atomicreg implements atomic (linearizable) registers with a
// per-variable primary — the strongest criterion on the paper's
// spectrum (§1, citing Lamport). It exists as the comparison point
// showing what the stronger criteria cost: every operation, reads
// included, pays a round trip to the variable's primary, whereas the
// causal/PRAM memories serve reads wait-free from the local replica.
//
// The primary of x is the lowest-numbered member of C(x); it holds the
// single authoritative copy, so executions are trivially linearizable
// (each operation takes effect atomically at the primary).
//
// Every message is a single-destination request or reply, so each side
// recycles the payload it received; combined with the interned-VarID
// wire format the round trips run allocation-free in steady state.
package atomicreg

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// Message kinds. A write request is (U32 wseq, U32 varID, I64 val), a
// read request is (U32 varID); acks are empty and read responses are
// (I64 val). Requesters are identified by the message source.
const (
	KindWriteReq = "atomic.writereq"
	KindWriteAck = "atomic.writeack"
	KindReadReq  = "atomic.readreq"
	KindReadResp = "atomic.readresp"
)

// Node is one atomic-register MCS process.
type Node struct {
	cfg mcs.Config
	id  int
	ix  *sharegraph.Index

	mu    sync.Mutex
	store []int64    // authoritative copies (by VarID) this node is primary for
	reply chan int64 // response slot for the single outstanding request
	wseq  int
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:   cfg,
			id:    i,
			ix:    ix,
			store: mcs.NewReplicas(ix.NumVars()),
			reply: make(chan int64, 1),
		}
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// primary returns the primary node for x: the lowest member of C(x).
func (n *Node) primary(xi int) (int, error) {
	cx := n.ix.Clique(xi)
	if len(cx) == 0 {
		return 0, fmt.Errorf("%w: variable %s has no replicas", mcs.ErrNotReplicated, n.ix.Name(xi))
	}
	return cx[0], nil
}

// Write performs w_i(x)v with a round trip to x's primary.
func (n *Node) Write(x string, v int64) error {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return err
	}
	n.mu.Lock()
	wseq := n.wseq
	n.wseq++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, n.ix.Name(xi), v)
	}
	n.mu.Unlock()

	if prim == n.id {
		n.applyPrimary(n.id, wseq, xi, v)
		return nil
	}
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(uint32(wseq)).U32(uint32(xi)).I64(v)
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: prim, Kind: KindWriteReq,
		Payload: payload, CtrlBytes: len(payload) - 8, DataBytes: 8,
		Vars: n.ix.MsgVars(xi),
	})
	<-n.reply // wait for the ack: the write has taken effect atomically
	return nil
}

// Read performs r_i(x) with a round trip to x's primary.
func (n *Node) Read(x string) (int64, error) {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return 0, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return 0, err
	}
	var v int64
	if prim == n.id {
		n.mu.Lock()
		v = n.store[xi]
		n.mu.Unlock()
	} else {
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.U32(uint32(xi))
		payload := enc.Bytes()
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: prim, Kind: KindReadReq,
			Payload: payload, CtrlBytes: len(payload),
			Vars: n.ix.MsgVars(xi),
		})
		v = <-n.reply
	}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), v)
	}
	return v, nil
}

// applyPrimary installs the write at the authoritative copy.
func (n *Node) applyPrimary(writer, wseq, xi int, v int64) {
	n.mu.Lock()
	n.store[xi] = v
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordApply(n.id, writer, wseq, n.ix.Name(xi), v)
	}
	n.mu.Unlock()
}

// varID decodes and bounds-checks a VarID field.
func (n *Node) varID(d *mcs.Dec, what string, from int) int {
	xi := int(d.U32())
	if err := d.Err(); err == nil && (xi < 0 || xi >= n.ix.NumVars()) {
		panic(fmt.Sprintf("atomicreg: node %d: %s from %d names unknown VarID %d", n.id, what, from, xi))
	}
	return xi
}

// handle dispatches primary-side requests and requester-side replies.
// Every payload is single-destination, so the handler recycles it after
// decoding.
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindWriteReq:
		d := mcs.DecOf(msg.Payload)
		wseq := int(d.U32())
		xi := n.varID(&d, "write request", msg.From)
		v := d.I64()
		if err := d.Err(); err != nil {
			panic(fmt.Sprintf("atomicreg: node %d: malformed write request: %v", n.id, err))
		}
		mcs.PutPayload(msg.Payload)
		n.applyPrimary(msg.From, wseq, xi, v)
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: msg.From, Kind: KindWriteAck,
			CtrlBytes: 1, Vars: n.ix.MsgVars(xi),
		})
	case KindReadReq:
		d := mcs.DecOf(msg.Payload)
		xi := n.varID(&d, "read request", msg.From)
		if err := d.Err(); err != nil {
			panic(fmt.Sprintf("atomicreg: node %d: malformed read request: %v", n.id, err))
		}
		mcs.PutPayload(msg.Payload)
		n.mu.Lock()
		v := n.store[xi]
		n.mu.Unlock()
		var enc mcs.Enc
		enc.SetBuf(mcs.GetPayload())
		enc.I64(v)
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: msg.From, Kind: KindReadResp,
			Payload: enc.Bytes(), DataBytes: 8, Vars: n.ix.MsgVars(xi),
		})
	case KindWriteAck:
		n.reply <- 0
	case KindReadResp:
		d := mcs.DecOf(msg.Payload)
		v := d.I64()
		if err := d.Err(); err != nil {
			panic(fmt.Sprintf("atomicreg: node %d: malformed read response: %v", n.id, err))
		}
		mcs.PutPayload(msg.Payload)
		n.reply <- v
	default:
		panic(fmt.Sprintf("atomicreg: node %d: unknown message kind %q", n.id, msg.Kind))
	}
}

var _ mcs.Node = (*Node)(nil)
