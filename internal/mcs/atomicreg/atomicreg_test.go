package atomicreg

import (
	"errors"
	"sync"
	"testing"
	"time"

	"partialdsm/internal/check"
	"partialdsm/internal/mcs"
	"partialdsm/internal/metrics"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

func harness(t *testing.T) ([]*Node, *netsim.Network, *mcs.Recorder, *metrics.Collector) {
	t.Helper()
	pl := sharegraph.NewPlacement(3).
		Assign(0, "x", "y").
		Assign(1, "x").
		Assign(2, "x", "y")
	col := metrics.NewCollector()
	net := netsim.NewNetwork(3, netsim.Options{
		FIFO: true, MaxLatency: 100 * time.Microsecond, Seed: 1, Metrics: col,
	})
	t.Cleanup(net.Close)
	rec := mcs.NewRecorder(3)
	nodes, err := New(mcs.Config{Net: net, Placement: pl, Metrics: col, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, net, rec, col
}

func TestWriteThenReadImmediatelyVisible(t *testing.T) {
	nodes, _, _, _ := harness(t)
	// Linearizability: once Write returns, every subsequent Read (from
	// any node) must observe it — no quiesce needed.
	if err := mcs.WriteInt(nodes[1], "x", 5); err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		if v, _ := mcs.ReadInt(n, "x"); v != 5 {
			t.Errorf("node %d read %d right after write ack", i, v)
		}
	}
}

func TestPrimaryIsLowestCliqueMember(t *testing.T) {
	nodes, _, _, col := harness(t)
	// y's clique is {0,2}: primary 0. A write by 2 must produce a round
	// trip 2→0→2.
	if err := mcs.WriteInt(nodes[2], "y", 1); err != nil {
		t.Fatal(err)
	}
	s := col.Snapshot()
	if s.PerKind[KindWriteReq] != 1 || s.PerKind[KindWriteAck] != 1 {
		t.Errorf("per kind: %v", s.PerKind)
	}
	// A write by the primary itself is local: no messages.
	before := col.Snapshot().Msgs
	if err := mcs.WriteInt(nodes[0], "y", 2); err != nil {
		t.Fatal(err)
	}
	if col.Snapshot().Msgs != before {
		t.Error("primary write must not touch the network")
	}
}

func TestReadRoundTrip(t *testing.T) {
	nodes, _, _, col := harness(t)
	mcs.WriteInt(nodes[0], "y", 9)
	before := col.Snapshot().Msgs
	v, err := mcs.ReadInt(nodes[2], "y")
	if err != nil {
		t.Fatal(err)
	}
	if v != 9 {
		t.Errorf("read %d", v)
	}
	if col.Snapshot().Msgs != before+2 {
		t.Error("remote read must cost exactly one round trip")
	}
}

func TestConcurrentWritersLinearizable(t *testing.T) {
	nodes, net, rec, _ := harness(t)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 15; k++ {
				if err := mcs.WriteInt(nodes[i], "x", int64(i*1000+k+1)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, err := mcs.ReadInt(nodes[i], "x"); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	net.Quiesce()
	err := check.WitnessAtomic(3, rec.Logs(), func(x string) int {
		if x == "x" {
			return 0
		}
		return 0
	})
	if err != nil {
		t.Fatalf("atomic witness: %v", err)
	}
}

func TestAccessControlAndMissingVar(t *testing.T) {
	nodes, _, _, _ := harness(t)
	if err := mcs.WriteInt(nodes[1], "y", 1); !errors.Is(err, mcs.ErrNotReplicated) {
		t.Errorf("write y by node 1: %v", err)
	}
	if _, err := mcs.ReadInt(nodes[1], "y"); !errors.Is(err, mcs.ErrNotReplicated) {
		t.Errorf("read y by node 1: %v", err)
	}
}

func TestUnknownKindPanics(t *testing.T) {
	nodes, _, _, _ := harness(t)
	defer func() {
		if recover() == nil {
			t.Error("unknown kind must panic")
		}
	}()
	nodes[0].handle(netsim.Message{From: 1, To: 0, Kind: "bogus"})
}

func TestMalformedPayloadPanics(t *testing.T) {
	nodes, _, _, _ := harness(t)
	defer func() {
		if recover() == nil {
			t.Error("malformed write request must panic")
		}
	}()
	nodes[0].handle(netsim.Message{From: 1, To: 0, Kind: KindWriteReq, Payload: []byte{1}})
}
