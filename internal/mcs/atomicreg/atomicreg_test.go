package atomicreg

import (
	"errors"
	"sync"
	"testing"
	"time"

	"partialdsm/internal/check"
	"partialdsm/internal/mcs"
	"partialdsm/internal/metrics"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

func harness(t *testing.T) ([]*Node, *netsim.Network, *mcs.Recorder, *metrics.Collector) {
	t.Helper()
	pl := sharegraph.NewPlacement(3).
		Assign(0, "x", "y").
		Assign(1, "x").
		Assign(2, "x", "y")
	col := metrics.NewCollector()
	net := netsim.NewNetwork(3, netsim.Options{
		FIFO: true, MaxLatency: 100 * time.Microsecond, Seed: 1, Metrics: col,
	})
	t.Cleanup(net.Close)
	rec := mcs.NewRecorder(3)
	nodes, err := New(mcs.Config{Net: net, Placement: pl, Metrics: col, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, net, rec, col
}

func TestWriteThenReadImmediatelyVisible(t *testing.T) {
	nodes, _, _, _ := harness(t)
	// Linearizability: once Write returns, every subsequent Read (from
	// any node) must observe it — no quiesce needed.
	if err := mcs.WriteInt(nodes[1], "x", 5); err != nil {
		t.Fatal(err)
	}
	for i, n := range nodes {
		if v, _ := mcs.ReadInt(n, "x"); v != 5 {
			t.Errorf("node %d read %d right after write ack", i, v)
		}
	}
}

func TestPrimaryIsLowestCliqueMember(t *testing.T) {
	nodes, _, _, col := harness(t)
	// y's clique is {0,2}: primary 0. A write by 2 must produce a round
	// trip 2→0→2.
	if err := mcs.WriteInt(nodes[2], "y", 1); err != nil {
		t.Fatal(err)
	}
	s := col.Snapshot()
	if s.PerKind[KindWriteReq] != 1 || s.PerKind[KindWriteAck] != 1 {
		t.Errorf("per kind: %v", s.PerKind)
	}
	// A write by the primary itself is local: no messages.
	before := col.Snapshot().Msgs
	if err := mcs.WriteInt(nodes[0], "y", 2); err != nil {
		t.Fatal(err)
	}
	if col.Snapshot().Msgs != before {
		t.Error("primary write must not touch the network")
	}
}

func TestReadRoundTrip(t *testing.T) {
	nodes, _, _, col := harness(t)
	mcs.WriteInt(nodes[0], "y", 9)
	before := col.Snapshot().Msgs
	v, err := mcs.ReadInt(nodes[2], "y")
	if err != nil {
		t.Fatal(err)
	}
	if v != 9 {
		t.Errorf("read %d", v)
	}
	if col.Snapshot().Msgs != before+2 {
		t.Error("remote read must cost exactly one round trip")
	}
}

func TestConcurrentWritersLinearizable(t *testing.T) {
	nodes, net, rec, _ := harness(t)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 15; k++ {
				if err := mcs.WriteInt(nodes[i], "x", int64(i*1000+k+1)); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, err := mcs.ReadInt(nodes[i], "x"); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	net.Quiesce()
	err := check.WitnessAtomic(3, rec.Logs(), func(x string) int {
		if x == "x" {
			return 0
		}
		return 0
	})
	if err != nil {
		t.Fatalf("atomic witness: %v", err)
	}
}

func TestAccessControlAndMissingVar(t *testing.T) {
	nodes, _, _, _ := harness(t)
	if err := mcs.WriteInt(nodes[1], "y", 1); !errors.Is(err, mcs.ErrNotReplicated) {
		t.Errorf("write y by node 1: %v", err)
	}
	if _, err := mcs.ReadInt(nodes[1], "y"); !errors.Is(err, mcs.ErrNotReplicated) {
		t.Errorf("read y by node 1: %v", err)
	}
}

func TestReadRacingFlipBouncesAndRetries(t *testing.T) {
	// x's owner moves 0→1 while reader 2 still runs the old epoch — the
	// one request class that may legitimately straggle across a flip,
	// because reads are unfenced. The ex-owner must bounce the request
	// with its epoch tag, the reader must park until its own commit
	// arrives, and the retry must reach the new owner and return the
	// transferred value.
	nodes, _, _, col := harness(t)
	if err := mcs.WriteInt(nodes[0], "x", 7); err != nil {
		t.Fatal(err)
	}
	next, err := nodes[0].ix.Rebind(sharegraph.NewPlacement(3).
		Assign(0, "x", "y").
		Assign(1, "x").
		Assign(2, "x", "y").
		SetOwner("x", 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the handshake's data path by hand on nodes 0 and 1 only —
	// fence, transfer, flip — reproducing the window the engine passes
	// through after the coordinator decides commit and before the last
	// commit drains: reader 2 is still in epoch 0.
	xi := nodes[0].ix.ID("x")
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	nodes[0].mu.Lock()
	nodes[0].ReconfigFenceLocked(next)
	nodes[0].ReconfigEncodeLocked(&enc, 1, []int{xi}, next)
	nodes[0].ReconfigFlipLocked(next)
	nodes[0].mu.Unlock()
	nodes[1].mu.Lock()
	nodes[1].ReconfigFenceLocked(next)
	d := mcs.DecOf(enc.Bytes())
	err = nodes[1].ReconfigMergeLocked(&d, 0, next)
	if err == nil {
		nodes[1].ReconfigFlipLocked(next)
	}
	nodes[1].mu.Unlock()
	if err != nil {
		t.Fatalf("transfer merge: %v", err)
	}

	// The stale-epoch read: routed to ex-owner 0, bounced, parked.
	got := make(chan int64, 1)
	go func() {
		v, err := mcs.ReadInt(nodes[2], "x")
		if err != nil {
			t.Errorf("bounced read failed: %v", err)
		}
		got <- v
	}()
	deadline := time.Now().Add(5 * time.Second)
	for col.Snapshot().PerKind[KindReadBounce] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ex-owner never bounced the stale-epoch read")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case v := <-got:
		t.Fatalf("read returned %d before the reader's commit arrived", v)
	default:
	}
	// Deliver reader 2's commit: the flip wakes the parked read, which
	// re-resolves the owner and retries against node 1.
	nodes[2].mu.Lock()
	nodes[2].ReconfigFenceLocked(next)
	nodes[2].ReconfigFlipLocked(next)
	nodes[2].mu.Unlock()
	if v := <-got; v != 7 {
		t.Fatalf("retried read = %d, want the transferred 7", v)
	}
	s := col.Snapshot()
	if s.PerKind[KindReadBounce] != 1 {
		t.Errorf("bounces = %d, want exactly 1", s.PerKind[KindReadBounce])
	}
	if s.PerKind[KindReadReq] < 2 {
		t.Errorf("read requests = %d, want the original and the retry", s.PerKind[KindReadReq])
	}
}

func TestUnknownKindPanics(t *testing.T) {
	nodes, _, _, _ := harness(t)
	defer func() {
		if recover() == nil {
			t.Error("unknown kind must panic")
		}
	}()
	nodes[0].handle(netsim.Message{From: 1, To: 0, Kind: "bogus"})
}

func TestMalformedPayloadPanics(t *testing.T) {
	nodes, _, _, _ := harness(t)
	defer func() {
		if recover() == nil {
			t.Error("malformed write request must panic")
		}
	}()
	nodes[0].handle(netsim.Message{From: 1, To: 0, Kind: KindWriteReq, Payload: []byte{1}})
}
