package mcs

import (
	"testing"
)

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.U32(7).I64(-42).Str("hello").U32Slice([]uint32{1, 2, 3}).Str("")
	d := NewDec(e.Bytes())
	if got := d.U32(); got != 7 {
		t.Errorf("U32 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	got := d.U32Slice()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("U32Slice = %v", got)
	}
	if got := d.Str(); got != "" {
		t.Errorf("empty Str = %q", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("decode error: %v", err)
	}
	if d.Rest() != 0 {
		t.Errorf("Rest = %d", d.Rest())
	}
}

func TestEncLen(t *testing.T) {
	var e Enc
	e.U32(1)
	if e.Len() != 4 {
		t.Errorf("Len after U32 = %d", e.Len())
	}
	e.I64(1)
	if e.Len() != 12 {
		t.Errorf("Len after I64 = %d", e.Len())
	}
	e.Str("ab")
	if e.Len() != 16 { // 2-byte prefix + 2 bytes
		t.Errorf("Len after Str = %d", e.Len())
	}
}

func TestDecTruncation(t *testing.T) {
	var e Enc
	e.U32(9)
	d := NewDec(e.Bytes()[:2])
	if d.U32() != 0 || d.Err() == nil {
		t.Error("truncated U32 must error and return zero")
	}
	// Sticky error: further reads keep failing.
	if d.I64() != 0 || d.Str() != "" || d.U32Slice() != nil {
		t.Error("error must be sticky")
	}
}

func TestDecTruncatedString(t *testing.T) {
	var e Enc
	e.Str("hello")
	d := NewDec(e.Bytes()[:4])
	if d.Str() != "" || d.Err() == nil {
		t.Error("truncated string body must error")
	}
}

func TestDecTruncatedSlice(t *testing.T) {
	var e Enc
	e.U32Slice([]uint32{1, 2, 3})
	d := NewDec(e.Bytes()[:6])
	if d.U32Slice() != nil || d.Err() == nil {
		t.Error("truncated slice must error")
	}
}

func TestEncStrTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized string must panic")
		}
	}()
	var e Enc
	e.Str(string(make([]byte, 70000)))
}

func TestI64NegativeValues(t *testing.T) {
	var e Enc
	e.I64(-9223372036854775808).I64(9223372036854775807)
	d := NewDec(e.Bytes())
	if d.I64() != -9223372036854775808 || d.I64() != 9223372036854775807 {
		t.Error("extreme int64 values corrupted")
	}
}
