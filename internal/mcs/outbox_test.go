package mcs

import (
	"reflect"
	"sync"
	"testing"

	"partialdsm/internal/netsim"
)

// captureNet is a minimal synchronous Transport that records every
// Send, for exercising the Outbox without a real delivery engine.
type captureNet struct {
	n    int
	sent []netsim.Message
	clk  netsim.Clock // nil unless a test installs a manual clock
}

func (c *captureNet) NumNodes() int                  { return c.n }
func (c *captureNet) SetHandler(int, netsim.Handler) {}
func (c *captureNet) Send(m netsim.Message)          { c.sent = append(c.sent, m) }
func (c *captureNet) Quiesce()                       {}
func (c *captureNet) Close()                         {}
func (c *captureNet) Clock() netsim.Clock            { return c.clk }

var _ netsim.Transport = (*captureNet)(nil)

// record is a decoded test record: (U32 a, I64 b).
type record struct {
	a uint32
	b int64
}

// stageRecord stages one test record.
func stageRecord(o *Outbox, r record) *Enc {
	enc := o.Stage()
	enc.U32(r.a).I64(r.b)
	return enc
}

// decodeFrame decodes a frame of test records.
func decodeFrame(t *testing.T, payload []byte) []record {
	t.Helper()
	d := DecOf(payload)
	count := int(d.U32())
	out := make([]record, 0, count)
	for k := 0; k < count; k++ {
		out = append(out, record{a: d.U32(), b: d.I64()})
	}
	if err := d.Err(); err != nil {
		t.Fatalf("frame decode: %v", err)
	}
	if d.Rest() != 0 {
		t.Fatalf("frame leaves %d trailing bytes", d.Rest())
	}
	return out
}

// TestOutboxFrameRoundTrip is the table-driven round-trip check for the
// batched wire frame: records staged per destination come back out of
// the frame exactly, in order, with the header and byte accounting the
// coalescing policy implies.
func TestOutboxFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name      string
		batch     int
		records   []record // all staged for destination 1
		wantSends []int    // record count per emitted message, in order
	}{
		{"single-immediate", 1, []record{{1, -1}}, []int{1}},
		{"batch-disabled-each-flushes", 1, []record{{1, 10}, {2, 20}, {3, 30}}, []int{1, 1, 1}},
		{"zero-batch-means-immediate", 0, []record{{1, 10}, {2, 20}}, []int{1, 1}},
		{"under-batch-holds", 4, []record{{1, 10}, {2, 20}, {3, 30}}, nil},
		{"exact-batch-flushes", 3, []record{{1, 10}, {2, 20}, {3, 30}}, []int{3}},
		{"overflow-splits", 2, []record{{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}}, []int{2, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := &captureNet{n: 3}
			o := NewOutbox(net, 0, "test.update", tc.batch)
			for _, r := range tc.records {
				stageRecord(o, r)
				o.AddTo(1, "x", 4, 8)
			}
			if got := len(net.sent); got != len(tc.wantSends) {
				t.Fatalf("auto-flushed %d messages, want %d", got, len(tc.wantSends))
			}
			var decoded []record
			for i, m := range net.sent {
				if m.From != 0 || m.To != 1 || m.Kind != "test.update" {
					t.Fatalf("message %d misaddressed: %+v", i, m)
				}
				recs := decodeFrame(t, m.Payload)
				if len(recs) != tc.wantSends[i] {
					t.Fatalf("message %d carries %d records, want %d", i, len(recs), tc.wantSends[i])
				}
				if wantCtrl := 4 + 4*len(recs); m.CtrlBytes != wantCtrl {
					t.Errorf("message %d ctrl bytes = %d, want %d", i, m.CtrlBytes, wantCtrl)
				}
				if wantData := 8 * len(recs); m.DataBytes != wantData {
					t.Errorf("message %d data bytes = %d, want %d", i, m.DataBytes, wantData)
				}
				if !reflect.DeepEqual(m.Vars, []string{"x"}) {
					t.Errorf("message %d vars = %v", i, m.Vars)
				}
				decoded = append(decoded, recs...)
			}
			// Whatever did not auto-flush must come out on Flush, in order.
			o.Flush()
			for _, m := range net.sent[len(tc.wantSends):] {
				decoded = append(decoded, decodeFrame(t, m.Payload)...)
			}
			if !reflect.DeepEqual(decoded, tc.records) {
				t.Fatalf("round trip %v → %v", tc.records, decoded)
			}
			if o.HasPending() {
				t.Error("outbox still pending after Flush")
			}
		})
	}
}

// TestOutboxPerDestinationFrames checks that one staged record fans out
// to several destinations without re-encoding and that each destination
// gets its own private payload (the receiver is entitled to recycle it).
func TestOutboxPerDestinationFrames(t *testing.T) {
	net := &captureNet{n: 4}
	o := NewOutbox(net, 0, "test.update", 8)
	stageRecord(o, record{7, 77})
	for _, dst := range []int{1, 2, 3} {
		o.AddTo(dst, "x", 4, 8)
	}
	o.Flush()
	if len(net.sent) != 3 {
		t.Fatalf("sent %d messages, want 3", len(net.sent))
	}
	for i, m := range net.sent {
		if got := decodeFrame(t, m.Payload); len(got) != 1 || got[0] != (record{7, 77}) {
			t.Fatalf("destination %d decoded %v", m.To, got)
		}
		for j := i + 1; j < len(net.sent); j++ {
			if &m.Payload[0] == &net.sent[j].Payload[0] {
				t.Fatalf("messages %d and %d share a payload buffer", i, j)
			}
		}
	}
}

// TestOutboxVarListDedup checks the frame's touch list: duplicates
// collapse, distinct variables accumulate.
func TestOutboxVarListDedup(t *testing.T) {
	net := &captureNet{n: 2}
	o := NewOutbox(net, 0, "test.update", 8)
	stageRecord(o, record{1, 1})
	o.AddTo(1, "x", 4, 8)
	stageRecord(o, record{2, 2})
	o.AddToVars(1, []string{"y", "x", "y"}, 4, 8)
	o.Flush()
	if len(net.sent) != 1 {
		t.Fatalf("sent %d messages, want 1", len(net.sent))
	}
	if got := net.sent[0].Vars; !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("vars = %v, want [x y]", got)
	}
}

// manualClock is a hand-cranked netsim.Clock for policy tests: timers
// fire only when the test advances it.
type manualClock struct {
	now    uint64
	timers []struct {
		tick uint64
		fn   func()
	}
}

func (c *manualClock) Now() uint64 { return c.now }
func (c *manualClock) After(d uint64, fn func()) uint64 {
	t := c.now + d
	c.Schedule(t, fn)
	return t
}
func (c *manualClock) Schedule(tick uint64, fn func()) {
	c.timers = append(c.timers, struct {
		tick uint64
		fn   func()
	}{tick, fn})
}
func (c *manualClock) AdvanceIdle() { c.advanceTo(c.now) }

// advanceTo cranks virtual time forward, firing due timers in
// registration order.
func (c *manualClock) advanceTo(t uint64) {
	if t > c.now {
		c.now = t
	}
	for i := 0; i < len(c.timers); i++ {
		if c.timers[i].tick <= c.now {
			fn := c.timers[i].fn
			c.timers = append(c.timers[:i], c.timers[i+1:]...)
			i--
			fn()
		}
	}
}

// TestOutboxTimerFlush checks the virtual-time flush policy: a record
// staged into an empty outbox arms a deadline flushTicks ahead, the
// deadline flushes every pending frame, and the next stage re-arms.
func TestOutboxTimerFlush(t *testing.T) {
	clk := &manualClock{}
	net := &captureNet{n: 3, clk: clk}
	o := NewOutbox(net, 0, "test.update", 8)
	var mu sync.Mutex
	o.SetFlushPolicy(&mu, 4, false)

	stageRecord(o, record{1, 10})
	o.AddTo(1, "x", 4, 8)
	stageRecord(o, record{2, 20})
	o.AddTo(2, "x", 4, 8)
	if len(net.sent) != 0 {
		t.Fatalf("flushed %d frames before the deadline", len(net.sent))
	}
	clk.advanceTo(3) // not due yet
	if len(net.sent) != 0 {
		t.Fatalf("flushed %d frames one tick early", len(net.sent))
	}
	clk.advanceTo(4) // deadline: both destinations flush
	if len(net.sent) != 2 {
		t.Fatalf("deadline flushed %d frames, want 2", len(net.sent))
	}
	if o.HasPending() {
		t.Fatal("records still pending after the deadline flush")
	}
	// The next staged record re-arms relative to the current tick.
	stageRecord(o, record{3, 30})
	o.AddTo(1, "x", 4, 8)
	clk.advanceTo(7) // 4 + 3 < 8: not due
	if len(net.sent) != 2 {
		t.Fatal("re-armed deadline fired early")
	}
	clk.advanceTo(8)
	if len(net.sent) != 3 {
		t.Fatalf("re-armed deadline flushed %d frames total, want 3", len(net.sent))
	}
}

// TestOutboxAdaptiveFallbackFlush checks the adaptive policy against a
// transport without a PairMonitor: the frame flushes at the next clock
// advance, and records staged before the advance ride together.
func TestOutboxAdaptiveFallbackFlush(t *testing.T) {
	clk := &manualClock{}
	net := &captureNet{n: 2, clk: clk}
	o := NewOutbox(net, 0, "test.update", 8)
	var mu sync.Mutex
	o.SetFlushPolicy(&mu, 0, true)

	stageRecord(o, record{1, 10})
	o.AddTo(1, "x", 4, 8)
	stageRecord(o, record{2, 20})
	o.AddTo(1, "x", 4, 8)
	if len(net.sent) != 0 {
		t.Fatal("adaptive flushed before any clock advance")
	}
	clk.AdvanceIdle()
	if len(net.sent) != 1 {
		t.Fatalf("adaptive flushed %d frames, want 1", len(net.sent))
	}
	if recs := decodeFrame(t, net.sent[0].Payload); len(recs) != 2 {
		t.Fatalf("adaptive frame carries %d records, want 2 (staged records must ride together)", len(recs))
	}
}

// TestOutboxPolicyDisabledWithoutClock checks that SetFlushPolicy is a
// no-op against a clockless transport and on batch < 2.
func TestOutboxPolicyDisabledWithoutClock(t *testing.T) {
	var mu sync.Mutex
	o := NewOutbox(&captureNet{n: 2}, 0, "test.update", 8)
	o.SetFlushPolicy(&mu, 4, true) // Clock() returns nil: must not panic later
	stageRecord(o, record{1, 1})
	o.AddTo(1, "x", 4, 8)
	o.Nudge()

	small := NewOutbox(&captureNet{n: 2, clk: &manualClock{}}, 0, "test.update", 1)
	small.SetFlushPolicy(&mu, 4, true) // batch < 2: coalescing off, policy off
	if small.clk != nil {
		t.Fatal("flush policy armed on an uncoalesced outbox")
	}
}

// TestOutboxEmptyFlushSendsNothing checks Flush on an idle outbox.
func TestOutboxEmptyFlushSendsNothing(t *testing.T) {
	net := &captureNet{n: 2}
	o := NewOutbox(net, 0, "test.update", 4)
	o.Flush()
	if len(net.sent) != 0 {
		t.Fatalf("empty flush sent %d messages", len(net.sent))
	}
	if o.HasPending() {
		t.Error("fresh outbox reports pending updates")
	}
}
