package slowpart

import (
	"testing"
	"time"

	"partialdsm/internal/check"
	"partialdsm/internal/mcs"
	"partialdsm/internal/metrics"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

func harness(t *testing.T, fifo bool) ([]*Node, *netsim.Network, *mcs.Recorder, *metrics.Collector) {
	t.Helper()
	pl := sharegraph.NewPlacement(3).
		Assign(0, "x", "y").
		Assign(1, "y").
		Assign(2, "x", "y")
	col := metrics.NewCollector()
	net := netsim.NewNetwork(3, netsim.Options{
		FIFO: fifo, MaxLatency: 200 * time.Microsecond, Seed: 3, Metrics: col,
	})
	t.Cleanup(net.Close)
	rec := mcs.NewRecorder(3)
	nodes, err := New(mcs.Config{Net: net, Placement: pl, Metrics: col, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, net, rec, col
}

func TestPropagationAndEfficiency(t *testing.T) {
	nodes, net, _, col := harness(t, true)
	mcs.WriteInt(nodes[0], "x", 7)
	net.Quiesce()
	if v, _ := mcs.ReadInt(nodes[2], "x"); v != 7 {
		t.Errorf("node 2 x = %d", v)
	}
	if col.Touched(1, "x") {
		t.Error("node 1 must never handle x")
	}
}

func TestPerVariableOrderUnderNonFIFO(t *testing.T) {
	nodes, net, rec, _ := harness(t, false)
	// Interleaved writes to two variables; per-variable order must
	// survive arbitrary reordering across variables.
	for k := int64(1); k <= 30; k++ {
		mcs.WriteInt(nodes[0], "x", k)
		mcs.WriteInt(nodes[0], "y", 1000+k)
	}
	net.Quiesce()
	if v, _ := mcs.ReadInt(nodes[2], "x"); v != 30 {
		t.Errorf("final x = %d", v)
	}
	if v, _ := mcs.ReadInt(nodes[2], "y"); v != 1030 {
		t.Errorf("final y = %d", v)
	}
	if err := check.WitnessSlow(3, rec.Logs()); err != nil {
		t.Fatalf("slow witness: %v", err)
	}
}

// TestOutOfOrderBuffering delivers vseq 1 before vseq 0 by hand.
func TestOutOfOrderBuffering(t *testing.T) {
	nodes, _, _, _ := harness(t, true)
	n2 := nodes[2]
	// One-record frames; the writer travels in the message source, and
	// x interns to VarID 0 in the sorted universe.
	mk := func(wseq, vseq, varID int, val int64) []byte {
		var enc mcs.Enc
		enc.U32(1) // record count
		enc.U32(uint32(wseq)).U32(uint32(vseq)).U32(uint32(varID)).I64(val)
		return enc.Bytes()
	}
	n2.handle(netsim.Message{From: 0, To: 2, Kind: KindUpdate, Payload: mk(1, 1, 0, 2)})
	if v, _ := mcs.ReadInt(n2, "x"); v != -9223372036854775808 {
		t.Fatalf("out-of-order vseq applied: %d", v)
	}
	n2.handle(netsim.Message{From: 0, To: 2, Kind: KindUpdate, Payload: mk(0, 0, 0, 1)})
	if v, _ := mcs.ReadInt(n2, "x"); v != 2 {
		t.Fatalf("drain after gap fill failed: %d", v)
	}
}

func TestAccessControl(t *testing.T) {
	nodes, _, _, _ := harness(t, true)
	if err := mcs.WriteInt(nodes[1], "x", 1); err == nil {
		t.Error("write outside X_1 must fail")
	}
	if _, err := mcs.ReadInt(nodes[1], "x"); err == nil {
		t.Error("read outside X_1 must fail")
	}
}

func TestMalformedPayloadPanics(t *testing.T) {
	nodes, _, _, _ := harness(t, true)
	defer func() {
		if recover() == nil {
			t.Error("malformed update must panic")
		}
	}()
	nodes[0].handle(netsim.Message{From: 1, To: 0, Kind: KindUpdate, Payload: []byte{1}})
}
