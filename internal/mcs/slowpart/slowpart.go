// Package slowpart implements slow memory (Hutto & Ahamad), the
// criterion weaker than PRAM that the paper mentions in §5 via Sinha's
// Mermera work: each process must observe another process's writes *to
// a single variable* in issue order, while writes by one process to
// different variables may be observed out of order.
//
// The protocol mirrors prampart but replaces the per-sender FIFO
// requirement with per-(sender, variable) sequencing done at the
// receiver, so it tolerates non-FIFO channels: each update carries a
// per-(sender, variable) sequence number; out-of-order updates are
// buffered per (sender, variable) and applied in sequence, while
// updates of different variables from the same sender commute.
// Like prampart it is efficient in the paper's sense: information about
// x flows only within C(x).
//
// Replica and sequencing state is flat arrays indexed by the dense
// VarID interning of the placement; the in-order receive path (the only
// path FIFO transports ever take) applies without touching a map, and
// updates ride the coalescing mcs.Outbox, so Read is 0 allocs/op and
// Write amortizes below one allocation in steady state.
package slowpart

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// KindUpdate is the protocol's only message kind: a batched frame of
// (U32 wseq, U32 vseq, VarVal varID/value) records.
const KindUpdate = "slow.update"

// update is a buffered out-of-order remote write; v is a pooled copy
// of the value bytes, recycled at delivery.
type update struct {
	wseq int
	v    []byte
}

// heldUpd is a remote update received during the rejoin window, replayed
// through the normal apply path once the snapshot merge has restored the
// receive cursors; v is a pooled copy.
type heldUpd struct {
	from, wseq, vseq, varID int
	v                       []byte
}

// Node is one slow-memory MCS process.
type Node struct {
	cfg mcs.Config
	id  int
	ix  *sharegraph.Index

	mu       sync.Mutex
	replicas mcs.Replicas   // by VarID
	tags     []mcs.WriteTag // by VarID: last applied write
	wseq     int            // own global write counter (for the recorder)
	vseq     []int          // per-VarID own write counter (wire sequence)
	next     [][]int        // next[sender][VarID]: next expected sequence
	// buffered holds out-of-order updates per (sender, VarID) — the
	// cold path; FIFO transports never populate it.
	buffered map[senderVar]map[int]update

	rcv       *mcs.Recovery
	rejoining bool
	held      []heldUpd

	// Epoch reconfiguration: writes to variables whose clique changes
	// park on the fence for the transition window.
	rcf   *mcs.Reconfig
	fence mcs.Fence

	out *mcs.Outbox
}

// senderVar keys the out-of-order buffer.
type senderVar struct {
	sender int
	varID  int
}

// New instantiates one node per process and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			ix:       ix,
			replicas: mcs.NewReplicas(ix.NumVars()),
			tags:     mcs.NewWriteTags(ix.NumVars()),
			vseq:     make([]int, ix.NumVars()),
			next:     make([][]int, n),
			buffered: make(map[senderVar]map[int]update),
			out:      mcs.NewOutbox(cfg.Net, i, KindUpdate, cfg.CoalesceBatch),
		}
		for j := range node.next {
			node.next[j] = make([]int, ix.NumVars())
		}
		node.rcv = mcs.NewRecovery(cfg, i, &node.mu)
		node.rcv.OnDone = node.finishRejoinLocked
		node.rcf = mcs.NewReconfig(cfg, i, &node.mu, node, ix)
		cfg.ApplyFlushPolicy(&node.mu, node.out)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Put performs w_i(x)v: local apply, then stage the update for C(x)
// with the per-variable sequence number.
func (n *Node) Put(x string, v []byte) error {
	n.mu.Lock()
	xi := n.ix.ID(x)
	if err := n.fence.WaitLocked(n.cfg, n.id, xi, x); err != nil {
		n.mu.Unlock()
		return err
	}
	// Re-check against the possibly flipped index: the fence lifts at
	// the epoch boundary, and this node may have shed the variable.
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	name := n.ix.Name(xi)
	wseq := n.wseq
	n.wseq++
	vseq := n.vseq[xi]
	n.vseq[xi]++
	n.replicas.Set(xi, v)
	n.tags[xi] = mcs.WriteTag{Writer: n.id, WSeq: wseq}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, name, v)
		rec.RecordApply(n.id, n.id, wseq, name, v)
	}
	enc := n.out.Stage()
	enc.U32(uint32(wseq)).U32(uint32(vseq)).VarVal(xi, v)
	n.out.Emit(n.ix.Peers(n.id, xi), n.ix.MsgVars(xi), enc.Len()-len(v), len(v))
	n.mu.Unlock()
	return nil
}

// PutAsync is Put: slow-memory writes are wait-free.
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	return mcs.Done, n.Put(x, v)
}

// Get performs r_i(x) wait-free on the local replica, flushing any
// coalesced updates first.
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	n.mu.Lock()
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	if n.out.HasPending() {
		n.out.Flush()
	}
	dst = append(dst[:0], n.replicas.Get(xi)...)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	n.mu.Unlock()
	// A polling reader drives buffered writers' flush deadlines.
	n.out.Nudge()
	return dst, nil
}

// BeginBatch suspends update flushing (mcs.Batcher).
func (n *Node) BeginBatch() {
	n.mu.Lock()
	n.out.Hold()
	n.mu.Unlock()
}

// EndBatch flushes everything staged since BeginBatch (mcs.Batcher).
func (n *Node) EndBatch() {
	n.mu.Lock()
	n.out.Release()
	n.mu.Unlock()
}

// FlushUpdates sends all buffered updates (mcs.Flusher).
func (n *Node) FlushUpdates() {
	n.mu.Lock()
	n.out.Flush()
	n.mu.Unlock()
}

// handle dispatches on message kind: steady-state update frames plus
// the two crash-recovery kinds.
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindUpdate:
		n.handleUpdate(msg)
	case mcs.KindSnapReq:
		n.handleSnapReq(msg)
	case mcs.KindSnapResp:
		n.handleSnapResp(msg)
	default:
		if mcs.IsEpochKind(msg.Kind) {
			n.rcf.Handle(msg)
			return
		}
		n.cfg.Faultf(n.id, "slowpart: node %d: unknown message kind %q", n.id, msg.Kind)
		mcs.RecycleFrame(msg)
	}
}

// handleUpdate applies each record of the frame if it is next in its
// (sender, variable) stream, otherwise buffers it; then drains the
// stream. During a rejoin window records are held back instead: the
// receive cursors are being re-learned from peer snapshots, and
// applying against the wiped cursors would replay pre-crash writes.
func (n *Node) handleUpdate(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	count := int(d.U32())
	if d.Err() != nil {
		n.cfg.Faultf(n.id, "slowpart: node %d: malformed frame from %d: %v", n.id, msg.From, d.Err())
		return
	}
	n.mu.Lock()
	for k := 0; k < count; k++ {
		wseq := int(d.U32())
		vseq := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "slowpart: node %d: malformed update from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= len(n.replicas) {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "slowpart: node %d: update from %d names unknown VarID %d", n.id, msg.From, xi)
			return
		}
		if n.rejoining {
			n.held = append(n.held, heldUpd{from: msg.From, wseq: wseq, vseq: vseq, varID: xi, v: append(mcs.GetPayload(), v...)})
			continue
		}
		n.applyLocked(msg.From, wseq, vseq, xi, v)
	}
	n.mu.Unlock()
}

// applyLocked applies the update in (sender, variable) sequence order,
// buffering it when it arrived early and draining successors. Updates
// below the stream cursor are already reflected — an injected
// duplicate, or a pre-crash straggler covered by the snapshot merge —
// and are dropped. v aliases the delivered frame: the buffer path
// copies it into a pooled buffer that outlives the frame.
func (n *Node) applyLocked(sender, wseq, vseq, xi int, v []byte) {
	if !n.ix.Holds(n.id, xi) && !n.rcf.PendingHoldsLocked(n.id, xi) {
		// An old-epoch straggler for a shed variable: drop without
		// touching the stream cursor (re-gaining the variable re-seeds
		// cursors from a fence-settled donor).
		return
	}
	if vseq < n.next[sender][xi] {
		return
	}
	if vseq != n.next[sender][xi] {
		k := senderVar{sender: sender, varID: xi}
		if n.buffered[k] == nil {
			n.buffered[k] = make(map[int]update)
		}
		n.buffered[k][vseq] = update{wseq: wseq, v: append(mcs.GetPayload(), v...)}
		return
	}
	n.deliverLocked(sender, wseq, xi, v)
	// Drain any buffered successors of the stream.
	if len(n.buffered) == 0 {
		return
	}
	k := senderVar{sender: sender, varID: xi}
	for {
		u, ok := n.buffered[k][n.next[sender][xi]]
		if !ok {
			return
		}
		delete(n.buffered[k], n.next[sender][xi])
		n.deliverLocked(sender, u.wseq, xi, u.v)
		mcs.PutPayload(u.v)
	}
}

// deliverLocked installs one in-sequence update.
func (n *Node) deliverLocked(sender, wseq, xi int, v []byte) {
	n.next[sender][xi]++
	n.replicas.Set(xi, v)
	n.tags[xi] = mcs.WriteTag{Writer: sender, WSeq: wseq}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordApply(n.id, sender, wseq, n.ix.Name(xi), v)
	}
}

// handleSnapReq answers a rejoining peer with, per mutually-replicated
// written variable: the last applied write's (writer, wseq) tag and
// value, plus the responder's per-sender receive cursors for the
// variable's clique — for its own stream the cursor is its write
// counter, everything it ever issued being reflected in its replica.
func (n *Node) handleSnapReq(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "slowpart: node %d: malformed snapshot request from %d: %v", n.id, msg.From, err)
		return
	}
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(epoch)
	countPos := enc.Len()
	enc.U32(0)
	var vars []string
	count, data := 0, 0
	n.mu.Lock()
	for _, xi := range n.ix.VarIDs(n.id) {
		t := n.tags[xi]
		if t.Writer < 0 || !n.ix.Holds(msg.From, xi) {
			continue
		}
		enc.U32(uint32(t.Writer)).U32(uint32(t.WSeq))
		clique := n.ix.Clique(xi)
		cursors := 0
		cursorCountPos := enc.Len()
		enc.U32(0)
		for _, s := range clique {
			if s == msg.From {
				continue
			}
			cur := n.next[s][xi]
			if s == n.id {
				cur = n.vseq[xi]
			}
			enc.U32(uint32(s)).U32(uint32(cur))
			cursors++
		}
		enc.PatchU32(cursorCountPos, uint32(cursors))
		v := n.replicas.Get(xi)
		enc.VarVal(xi, v)
		vars = append(vars, n.ix.Name(xi))
		data += len(v)
		count++
	}
	n.mu.Unlock()
	enc.PatchU32(countPos, uint32(count))
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From:      n.id,
		To:        msg.From,
		Kind:      mcs.KindSnapResp,
		Payload:   payload,
		CtrlBytes: len(payload) - data,
		DataBytes: data,
		Vars:      vars,
	})
}

// handleSnapResp merges one peer snapshot: receive cursors max-merge
// (the furthest view any responder reports bounds the stragglers worth
// replaying), values adopt unless the local tag already reflects a
// same-writer write at least as new.
func (n *Node) handleSnapResp(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	count := int(d.U32())
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "slowpart: node %d: malformed snapshot from %d: %v", n.id, msg.From, err)
		return
	}
	n.mu.Lock()
	if !n.rcv.Accept(msg.From, epoch) {
		n.mu.Unlock()
		return
	}
	for k := 0; k < count; k++ {
		w := int(d.U32())
		s := int(d.U32())
		cursors := int(d.U32())
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "slowpart: node %d: malformed snapshot entry from %d: %v", n.id, msg.From, err)
			return
		}
		type cursor struct{ sender, next int }
		curs := make([]cursor, 0, cursors)
		for c := 0; c < cursors; c++ {
			curs = append(curs, cursor{sender: int(d.U32()), next: int(d.U32())})
		}
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "slowpart: node %d: malformed snapshot entry from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= len(n.replicas) || w < 0 || w >= n.cfg.Net.NumNodes() {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "slowpart: node %d: snapshot entry from %d names unknown VarID %d / writer %d",
				n.id, msg.From, xi, w)
			return
		}
		for _, c := range curs {
			if c.sender < 0 || c.sender >= len(n.next) {
				n.mu.Unlock()
				n.cfg.Faultf(n.id, "slowpart: node %d: snapshot cursor from %d names unknown sender %d",
					n.id, msg.From, c.sender)
				return
			}
			if c.sender != n.id && c.next > n.next[c.sender][xi] {
				n.next[c.sender][xi] = c.next
			}
		}
		if n.tags[xi].Stale(w, s) {
			continue
		}
		n.replicas.Set(xi, v)
		n.tags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordRecover(n.id, w, s, n.ix.Name(xi), v)
		}
	}
	n.rcv.FinishResponse()
	n.mu.Unlock()
}

// finishRejoinLocked closes the rejoin window (Recovery.OnDone, node
// lock held): updates held back during recovery replay through the
// normal sequencing path against the merged cursors — stragglers the
// snapshot already covers drop as stale, the rest deliver or buffer —
// and variables no live peer knew a value for are recorded as ⊥ resets.
func (n *Node) finishRejoinLocked() {
	n.rejoining = false
	held := n.held
	n.held = nil
	for _, u := range held {
		n.applyLocked(u.from, u.wseq, u.vseq, u.varID, u.v)
		mcs.PutPayload(u.v)
	}
	if rec := n.cfg.Recorder; rec != nil {
		for _, xi := range n.ix.VarIDs(n.id) {
			if n.tags[xi].Writer < 0 {
				rec.RecordRecover(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue)
			}
		}
	}
}

// CrashRestart models the node rejoining after a crash with its
// volatile state lost: replicas revert to ⊥ and write tags, receive
// cursors and the out-of-order buffer are forgotten, to be re-learned
// from peer snapshots during Recover (mcs.CrashRestarter). The write
// counters survive — a restarted writer must not reuse sequence
// numbers its peers already applied. Incoming updates are held back
// until the snapshot merge restores the cursors.
func (n *Node) CrashRestart() {
	n.mu.Lock()
	for xi := range n.replicas {
		n.replicas.Set(xi, mcs.BottomValue)
		n.tags[xi] = mcs.WriteTag{Writer: -1}
	}
	for j := range n.next {
		for xi := range n.next[j] {
			n.next[j][xi] = 0
		}
	}
	for k, m := range n.buffered {
		for vseq, u := range m {
			mcs.PutPayload(u.v)
			delete(m, vseq)
		}
		delete(n.buffered, k)
	}
	for _, u := range n.held {
		mcs.PutPayload(u.v)
	}
	n.held = nil
	n.rejoining = true
	n.rcv.Cancel()
	n.rcf.CancelLocked()
	n.fence.LiftLocked()
	n.mu.Unlock()
}

// Recover starts the rejoin handshake with every variable-sharing
// neighbor under the current epoch's index (mcs.CrashRestarter) — the
// placement may have been reconfigured since the cluster started.
func (n *Node) Recover() {
	n.mu.Lock()
	peers := n.ix.Neighbors(n.id)
	n.mu.Unlock()
	n.rcv.Begin(peers)
}

// RecoveryStats reports completed rejoins and their summed virtual
// duration (mcs.CrashRestarter).
func (n *Node) RecoveryStats() (recoveries int, ticks uint64) {
	return n.rcv.Stats()
}

// ReconfigEngine exposes the node's epoch reconfiguration engine to the
// cluster facade.
func (n *Node) ReconfigEngine() *mcs.Reconfig { return n.rcf }

// ReconfigFlushLocked implements mcs.ReconfigHooks: the fence must
// travel behind every staged pre-fence update.
func (n *Node) ReconfigFlushLocked() { n.out.Flush() }

// ReconfigFenceLocked fences writes to the variables whose replica
// clique changes (mcs.ReconfigHooks).
func (n *Node) ReconfigFenceLocked(next *sharegraph.Index) {
	n.fence.ArmLocked(&n.mu, n.id, n.ix, next, false)
}

// ReconfigTransferVarsLocked lists the variables this node gains in the
// next epoch (mcs.ReconfigHooks).
func (n *Node) ReconfigTransferVarsLocked(next *sharegraph.Index) []int {
	var gained []int
	for _, xi := range next.VarIDs(n.id) {
		if !n.ix.Holds(n.id, xi) {
			gained = append(gained, xi)
		}
	}
	return gained
}

// ReconfigEncodeLocked answers a gaining node with the fence-settled
// tagged value of each requested variable. No receive cursors travel
// with the transfer: a gained variable's clique changed by
// definition, so its stream numbering restarts at zero on every
// clique member at the flip (mcs.ReconfigHooks).
func (n *Node) ReconfigEncodeLocked(enc *mcs.Enc, requester int, varIDs []int, next *sharegraph.Index) (data int, vars []string) {
	countPos := enc.Len()
	enc.U32(0)
	count := 0
	for _, xi := range varIDs {
		if xi < 0 || xi >= len(n.tags) || n.tags[xi].Writer < 0 {
			continue
		}
		t := n.tags[xi]
		enc.U32(uint32(t.Writer)).U32(uint32(t.WSeq))
		v := n.replicas.Get(xi)
		enc.VarVal(xi, v)
		vars = append(vars, n.ix.Name(xi))
		data += len(v)
		count++
	}
	enc.PatchU32(countPos, uint32(count))
	return data, vars
}

// ReconfigMergeLocked adopts one donor's transfer entries: values
// pass the usual staleness rule and are recorded as migration events
// — the slow witness raises its per-(sender, variable) frontier from
// them (mcs.ReconfigHooks).
func (n *Node) ReconfigMergeLocked(d *mcs.Dec, from int, next *sharegraph.Index) error {
	count := int(d.U32())
	for k := 0; k < count; k++ {
		w := int(d.U32())
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			return err
		}
		if xi < 0 || xi >= len(n.replicas) || w < 0 || w >= n.cfg.Net.NumNodes() {
			return fmt.Errorf("slowpart: transfer entry names unknown VarID %d / writer %d", xi, w)
		}
		if n.tags[xi].Stale(w, s) {
			continue
		}
		n.replicas.Set(xi, v)
		n.tags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordMigrate(n.id, w, s, n.ix.Name(xi), v)
		}
	}
	return d.Err()
}

// ReconfigFlipLocked installs the next epoch: shed replicas revert to
// ⊥, the per-(sender, variable) stream numbering of every variable
// whose clique changed restarts at zero on writer and receiver alike
// (readiness certified that both drained the old epoch's streams, and
// a one-sided reset would wedge the stream when a variable returns to
// a clique it had left), gained variables no donor had a value for
// are recorded as ⊥ migration resets, the index swaps, outgoing
// frames carry the new epoch and the write fence lifts
// (mcs.ReconfigHooks).
func (n *Node) ReconfigFlipLocked(next *sharegraph.Index) {
	for _, xi := range n.ix.VarIDs(n.id) {
		if next.Holds(n.id, xi) {
			continue
		}
		n.replicas.Set(xi, mcs.BottomValue)
		n.tags[xi] = mcs.WriteTag{Writer: -1}
	}
	for xi := 0; xi < n.ix.NumVars(); xi++ {
		if sharegraph.SameClique(n.ix, next, xi) {
			continue
		}
		n.vseq[xi] = 0
		for j := range n.next {
			n.next[j][xi] = 0
		}
	}
	for k, m := range n.buffered {
		if next.Holds(n.id, k.varID) && sharegraph.SameClique(n.ix, next, k.varID) {
			continue
		}
		for vseq, u := range m {
			mcs.PutPayload(u.v)
			delete(m, vseq)
		}
		delete(n.buffered, k)
	}
	if rec := n.cfg.Recorder; rec != nil && !n.rejoining {
		for _, xi := range next.VarIDs(n.id) {
			if !n.ix.Holds(n.id, xi) && n.tags[xi].Writer < 0 {
				rec.RecordMigrate(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue)
			}
		}
	}
	n.ix = next
	n.out.SetEpoch(next.Epoch())
	n.fence.LiftLocked()
}

// ReconfigAbortLocked abandons the attempt: the fence lifts and the
// current epoch stays in force (mcs.ReconfigHooks).
func (n *Node) ReconfigAbortLocked() { n.fence.LiftLocked() }

var (
	_ mcs.Node           = (*Node)(nil)
	_ mcs.Flusher        = (*Node)(nil)
	_ mcs.Batcher        = (*Node)(nil)
	_ mcs.CrashRestarter = (*Node)(nil)
	_ mcs.ReconfigHooks  = (*Node)(nil)
)
