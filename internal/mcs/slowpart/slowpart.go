// Package slowpart implements slow memory (Hutto & Ahamad), the
// criterion weaker than PRAM that the paper mentions in §5 via Sinha's
// Mermera work: each process must observe another process's writes *to
// a single variable* in issue order, while writes by one process to
// different variables may be observed out of order.
//
// The protocol mirrors prampart but replaces the per-sender FIFO
// requirement with per-(sender, variable) sequencing done at the
// receiver, so it tolerates non-FIFO channels: each update carries a
// per-(sender, variable) sequence number; out-of-order updates are
// buffered per (sender, variable) and applied in sequence, while
// updates of different variables from the same sender commute.
// Like prampart it is efficient in the paper's sense: information about
// x flows only within C(x).
//
// Replica and sequencing state is flat arrays indexed by the dense
// VarID interning of the placement; the in-order receive path (the only
// path FIFO transports ever take) applies without touching a map, and
// updates ride the coalescing mcs.Outbox, so Read is 0 allocs/op and
// Write amortizes below one allocation in steady state.
package slowpart

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// KindUpdate is the protocol's only message kind: a batched frame of
// (U32 wseq, U32 vseq, VarVal varID/value) records.
const KindUpdate = "slow.update"

// update is a buffered out-of-order remote write; v is a pooled copy
// of the value bytes, recycled at delivery.
type update struct {
	wseq int
	v    []byte
}

// Node is one slow-memory MCS process.
type Node struct {
	cfg mcs.Config
	id  int
	ix  *sharegraph.Index

	mu       sync.Mutex
	replicas mcs.Replicas // by VarID
	wseq     int          // own global write counter (for the recorder)
	vseq     []int        // per-VarID own write counter (wire sequence)
	next     [][]int      // next[sender][VarID]: next expected sequence
	// buffered holds out-of-order updates per (sender, VarID) — the
	// cold path; FIFO transports never populate it.
	buffered map[senderVar]map[int]update
	out      *mcs.Outbox
}

// senderVar keys the out-of-order buffer.
type senderVar struct {
	sender int
	varID  int
}

// New instantiates one node per process and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			ix:       ix,
			replicas: mcs.NewReplicas(ix.NumVars()),
			vseq:     make([]int, ix.NumVars()),
			next:     make([][]int, n),
			buffered: make(map[senderVar]map[int]update),
			out:      mcs.NewOutbox(cfg.Net, i, KindUpdate, cfg.CoalesceBatch),
		}
		for j := range node.next {
			node.next[j] = make([]int, ix.NumVars())
		}
		cfg.ApplyFlushPolicy(&node.mu, node.out)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Put performs w_i(x)v: local apply, then stage the update for C(x)
// with the per-variable sequence number.
func (n *Node) Put(x string, v []byte) error {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	name := n.ix.Name(xi)
	n.mu.Lock()
	wseq := n.wseq
	n.wseq++
	vseq := n.vseq[xi]
	n.vseq[xi]++
	n.replicas.Set(xi, v)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, name, v)
		rec.RecordApply(n.id, n.id, wseq, name, v)
	}
	enc := n.out.Stage()
	enc.U32(uint32(wseq)).U32(uint32(vseq)).VarVal(xi, v)
	n.out.Emit(n.ix.Peers(n.id, xi), n.ix.MsgVars(xi), enc.Len()-len(v), len(v))
	n.mu.Unlock()
	return nil
}

// PutAsync is Put: slow-memory writes are wait-free.
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	return mcs.Done, n.Put(x, v)
}

// Get performs r_i(x) wait-free on the local replica, flushing any
// coalesced updates first.
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	if n.out.HasPending() {
		n.out.Flush()
	}
	dst = append(dst[:0], n.replicas.Get(xi)...)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	n.mu.Unlock()
	// A polling reader drives buffered writers' flush deadlines.
	n.out.Nudge()
	return dst, nil
}

// BeginBatch suspends update flushing (mcs.Batcher).
func (n *Node) BeginBatch() {
	n.mu.Lock()
	n.out.Hold()
	n.mu.Unlock()
}

// EndBatch flushes everything staged since BeginBatch (mcs.Batcher).
func (n *Node) EndBatch() {
	n.mu.Lock()
	n.out.Release()
	n.mu.Unlock()
}

// FlushUpdates sends all buffered updates (mcs.Flusher).
func (n *Node) FlushUpdates() {
	n.mu.Lock()
	n.out.Flush()
	n.mu.Unlock()
}

// handle applies each record of the frame if it is next in its
// (sender, variable) stream, otherwise buffers it; then drains the
// stream.
func (n *Node) handle(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	count := int(d.U32())
	if d.Err() != nil {
		n.cfg.Faultf(n.id, "slowpart: node %d: malformed frame from %d: %v", n.id, msg.From, d.Err())
		return
	}
	n.mu.Lock()
	for k := 0; k < count; k++ {
		wseq := int(d.U32())
		vseq := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "slowpart: node %d: malformed update from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= len(n.replicas) {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "slowpart: node %d: update from %d names unknown VarID %d", n.id, msg.From, xi)
			return
		}
		n.applyLocked(msg.From, wseq, vseq, xi, v)
	}
	n.mu.Unlock()
}

// applyLocked applies the update in (sender, variable) sequence order,
// buffering it when it arrived early and draining successors. v
// aliases the delivered frame: the buffer path copies it into a pooled
// buffer that outlives the frame.
func (n *Node) applyLocked(sender, wseq, vseq, xi int, v []byte) {
	if vseq != n.next[sender][xi] {
		k := senderVar{sender: sender, varID: xi}
		if n.buffered[k] == nil {
			n.buffered[k] = make(map[int]update)
		}
		n.buffered[k][vseq] = update{wseq: wseq, v: append(mcs.GetPayload(), v...)}
		return
	}
	n.deliverLocked(sender, wseq, xi, v)
	// Drain any buffered successors of the stream.
	if len(n.buffered) == 0 {
		return
	}
	k := senderVar{sender: sender, varID: xi}
	for {
		u, ok := n.buffered[k][n.next[sender][xi]]
		if !ok {
			return
		}
		delete(n.buffered[k], n.next[sender][xi])
		n.deliverLocked(sender, u.wseq, xi, u.v)
		mcs.PutPayload(u.v)
	}
}

// deliverLocked installs one in-sequence update.
func (n *Node) deliverLocked(sender, wseq, xi int, v []byte) {
	n.next[sender][xi]++
	n.replicas.Set(xi, v)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordApply(n.id, sender, wseq, n.ix.Name(xi), v)
	}
}

// CrashRestart models the node rejoining after a crash with its
// volatile replica store lost: every replica reverts to ⊥
// (mcs.CrashRestarter). Sequencing state survives — the write
// counters because a restarted writer must not reuse sequence numbers
// its peers already applied, the per-stream receive cursors because
// resetting them would make every peer's future updates look early
// and buffer forever.
func (n *Node) CrashRestart() {
	n.mu.Lock()
	for xi := range n.replicas {
		n.replicas.Set(xi, mcs.BottomValue)
	}
	n.mu.Unlock()
}

var (
	_ mcs.Node           = (*Node)(nil)
	_ mcs.Flusher        = (*Node)(nil)
	_ mcs.Batcher        = (*Node)(nil)
	_ mcs.CrashRestarter = (*Node)(nil)
)
