// Package slowpart implements slow memory (Hutto & Ahamad), the
// criterion weaker than PRAM that the paper mentions in §5 via Sinha's
// Mermera work: each process must observe another process's writes *to
// a single variable* in issue order, while writes by one process to
// different variables may be observed out of order.
//
// The protocol mirrors prampart but replaces the per-sender FIFO
// requirement with per-(sender, variable) sequencing done at the
// receiver, so it tolerates non-FIFO channels: each update carries a
// per-(sender, variable) sequence number; out-of-order updates are
// buffered per (sender, variable) and applied in sequence, while
// updates of different variables from the same sender commute.
// Like prampart it is efficient in the paper's sense: information about
// x flows only within C(x).
package slowpart

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/model"
	"partialdsm/internal/netsim"
)

// KindUpdate is the protocol's only message kind.
const KindUpdate = "slow.update"

// key identifies a per-(sender, variable) update stream.
type key struct {
	sender int
	x      string
}

// update is a buffered out-of-order remote write.
type update struct {
	wseq int
	v    int64
}

// Node is one slow-memory MCS process.
type Node struct {
	cfg mcs.Config
	id  int

	mu       sync.Mutex
	replicas map[string]int64
	wseq     int            // own global write counter (for the recorder)
	vseq     map[string]int // per-variable own write counter (wire sequence)
	next     map[key]int    // next expected per-(sender,variable) sequence
	buffered map[key]map[int]update
	peers    map[string][]int
}

// New instantiates one node per process and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Placement.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			replicas: make(map[string]int64),
			vseq:     make(map[string]int),
			next:     make(map[key]int),
			buffered: make(map[key]map[int]update),
			peers:    make(map[string][]int),
		}
		for _, x := range cfg.Placement.VarsOf(i) {
			for _, p := range cfg.Placement.Clique(x) {
				if p != i {
					node.peers[x] = append(node.peers[x], p)
				}
			}
		}
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Write performs w_i(x)v: local apply, multicast to C(x) with the
// per-variable sequence number.
func (n *Node) Write(x string, v int64) error {
	if !n.cfg.Placement.Holds(n.id, x) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	wseq := n.wseq
	n.wseq++
	vseq := n.vseq[x]
	n.vseq[x]++
	n.replicas[x] = v
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, x, v)
		rec.RecordApply(n.id, n.id, wseq, x, v)
	}
	peers := n.peers[x]
	n.mu.Unlock()

	var enc mcs.Enc
	enc.U32(uint32(n.id)).U32(uint32(wseq)).U32(uint32(vseq)).Str(x).I64(v)
	payload := enc.Bytes()
	for _, p := range peers {
		n.cfg.Net.Send(netsim.Message{
			From:      n.id,
			To:        p,
			Kind:      KindUpdate,
			Payload:   payload,
			CtrlBytes: len(payload) - 8,
			DataBytes: 8,
			Vars:      []string{x},
		})
	}
	return nil
}

// Read performs r_i(x) wait-free on the local replica.
func (n *Node) Read(x string) (int64, error) {
	if !n.cfg.Placement.Holds(n.id, x) {
		return 0, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	v, ok := n.replicas[x]
	if !ok {
		v = model.Bottom
	}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, x, v)
	}
	n.mu.Unlock()
	return v, nil
}

// handle applies the update if it is next in its (sender, variable)
// stream, otherwise buffers it; then drains the stream.
func (n *Node) handle(msg netsim.Message) {
	d := mcs.NewDec(msg.Payload)
	writer := int(d.U32())
	wseq := int(d.U32())
	vseq := int(d.U32())
	x := d.Str()
	v := d.I64()
	if err := d.Err(); err != nil {
		panic(fmt.Sprintf("slowpart: node %d: malformed update from %d: %v", n.id, msg.From, err))
	}
	k := key{sender: writer, x: x}
	n.mu.Lock()
	if n.buffered[k] == nil {
		n.buffered[k] = make(map[int]update)
	}
	n.buffered[k][vseq] = update{wseq: wseq, v: v}
	for {
		u, ok := n.buffered[k][n.next[k]]
		if !ok {
			break
		}
		delete(n.buffered[k], n.next[k])
		n.next[k]++
		n.replicas[x] = u.v
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordApply(n.id, writer, u.wseq, x, u.v)
		}
	}
	n.mu.Unlock()
}

var _ mcs.Node = (*Node)(nil)
