package mcs

import (
	"fmt"
	"sync"

	"partialdsm/internal/netsim"
)

// Recovery wire format. Rejoining a crashed node is a protocol-level
// handshake on the normal transport — coalescing, virtual latency and
// the fault schedule all apply to recovery traffic, and the dedicated
// kinds let Stats account it separately from steady-state updates.
//
// A snapshot request is (U32 epoch); the responder answers with
// (U32 epoch, protocol-specific body) carrying the per-variable values
// and protocol metadata (sequence counters, vector clocks, delivery
// cursors) the requester needs to resume. The epoch is the requester's
// recovery-attempt counter: responses from an earlier attempt — or
// duplicates injected by the fault layer — are recognized and dropped.
const (
	KindSnapReq  = "recovery.snapreq"  // rejoining node → live peer
	KindSnapResp = "recovery.snapresp" // live peer → rejoining node
)

const (
	// RecoveryRetryTicks is the virtual-time interval after which a
	// rejoining node re-requests snapshots from peers that have not
	// answered — the request or the response may have been lost. The
	// interval must sit ABOVE the ack/retransmit layer's timeout
	// (netsim.ReliableOptions.RetransmitTicks, default 1<<20): a lost
	// response leaves a gap in the pair's FIFO stream that buffers every
	// fresh response behind it until a retransmission fills it, so a
	// retry cadence shorter than the RTO only burns budget without ever
	// seeing new bytes. Virtual deadlines are reached via idle jumps, so
	// the generous interval costs no wall time.
	RecoveryRetryTicks = 1 << 21
	// RecoveryMaxRetries bounds the re-requests per recovery attempt:
	// clock callbacks must not reschedule unconditionally (Quiesce
	// would diverge), so a peer that stays silent through the whole
	// budget is reported through OnFault instead of retried forever.
	RecoveryMaxRetries = 32
)

// Recovery is the requester half of the rejoin handshake, shared by
// all eight protocols and guarded by the owning node's mutex. The
// protocol's Recover calls Begin with its state-sharing peers; its
// message handler calls Accept on each KindSnapResp before merging the
// body. Lost requests are retried on the virtual clock; exhausted
// retries surface the unresponsive peers as a per-node fault.
type Recovery struct {
	cfg  Config
	node int
	mu   *sync.Mutex // the owning node's mutex

	// OnDone, when set, runs once per attempt — after the last peer's
	// snapshot has been merged (the protocol calls FinishResponse), or
	// at retry exhaustion — with the node mutex held. Protocols use it
	// to drain updates held back during the rejoin window and to mark
	// still-unknown variables as reset.
	OnDone func()

	epoch   uint32
	waiting []bool // by peer id: asked this epoch, not yet answered
	left    int
	counted bool // attempt already finished (completed or exhausted)
	retries int
	begin   uint64 // virtual tick at Begin

	recoveries int
	ticks      uint64
}

// NewRecovery returns the recovery engine for one node, sharing the
// node's mutex.
func NewRecovery(cfg Config, node int, mu *sync.Mutex) *Recovery {
	return &Recovery{
		cfg:     cfg,
		node:    node,
		mu:      mu,
		waiting: make([]bool, cfg.Net.NumNodes()),
	}
}

// Begin starts a recovery attempt: one snapshot request goes to every
// peer, and a bounded retry timer re-requests from the silent ones.
// Call without the node mutex held (Begin sends). Peers must not
// include the node itself; an empty peer set (a node sharing variables
// with nobody) completes immediately.
func (r *Recovery) Begin(peers []int) {
	r.mu.Lock()
	r.epoch++
	epoch := r.epoch
	for i := range r.waiting {
		r.waiting[i] = false
	}
	for _, p := range peers {
		r.waiting[p] = true
	}
	r.left = len(peers)
	r.counted = false
	r.retries = RecoveryMaxRetries
	r.begin = r.cfg.Net.Clock().Now()
	if r.left == 0 {
		r.counted = true
		r.recoveries++
		if r.OnDone != nil {
			r.OnDone()
		}
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	r.send(peers, epoch)
	r.cfg.Net.Clock().After(RecoveryRetryTicks, func() { r.retry(epoch) })
}

// send ships one snapshot request per peer.
func (r *Recovery) send(peers []int, epoch uint32) {
	for _, p := range peers {
		var enc Enc
		enc.SetBuf(GetPayload())
		enc.U32(epoch)
		payload := enc.Bytes()
		r.cfg.Net.Send(netsim.Message{
			From:      r.node,
			To:        p,
			Kind:      KindSnapReq,
			Payload:   payload,
			CtrlBytes: len(payload),
		})
	}
}

// retry re-requests snapshots from peers still silent for the given
// epoch. It reschedules itself only while an attempt is live and the
// budget lasts, so Quiesce terminates: an unreachable peer burns the
// budget and becomes an OnFault report, not an infinite timer chain.
func (r *Recovery) retry(epoch uint32) {
	r.mu.Lock()
	if epoch != r.epoch || r.left == 0 {
		r.mu.Unlock()
		return
	}
	var silent []int
	for p, w := range r.waiting {
		if w {
			silent = append(silent, p)
		}
	}
	r.retries--
	if r.retries <= 0 {
		r.left = 0
		r.counted = true
		r.ticks += r.cfg.Net.Clock().Now() - r.begin
		if r.OnDone != nil {
			r.OnDone()
		}
		r.mu.Unlock()
		r.cfg.Faultf(r.node, "mcs: node %d recovery: peers %v unresponsive after %d snapshot retries",
			r.node, silent, RecoveryMaxRetries)
		return
	}
	r.mu.Unlock()
	r.send(silent, epoch)
	r.cfg.Net.Clock().After(RecoveryRetryTicks, func() { r.retry(epoch) })
}

// Accept validates one snapshot response, called with the node mutex
// held before the protocol merges the body. It reports whether the
// response is fresh — this epoch, from a peer still owed an answer;
// stale-epoch responses and fault-layer duplicates report false and
// must be dropped unmerged. After merging a fresh response's body the
// protocol calls FinishResponse.
func (r *Recovery) Accept(from int, epoch uint32) bool {
	if epoch != r.epoch || from < 0 || from >= len(r.waiting) || !r.waiting[from] {
		return false
	}
	r.waiting[from] = false
	r.left--
	return true
}

// FinishResponse closes out one accepted response, called with the
// node mutex held after the body has been merged. The response that
// settled the last waiting peer completes the attempt: its duration is
// accounted and OnDone runs. Ordering matters — the completion hook
// must see the final response's state already merged, which is why
// Accept alone does not complete.
func (r *Recovery) FinishResponse() {
	if r.left != 0 || r.counted {
		return
	}
	r.counted = true
	r.recoveries++
	r.ticks += r.cfg.Net.Clock().Now() - r.begin
	if r.OnDone != nil {
		r.OnDone()
	}
}

// Recovering reports whether a recovery attempt is still waiting on
// peers; called with the node mutex held.
func (r *Recovery) Recovering() bool { return r.left > 0 }

// Cancel abandons any live attempt (the node crashed again before its
// peers answered); called with the node mutex held. Outstanding
// responses and the leftover retry timer recognize the epoch bump and
// do nothing.
func (r *Recovery) Cancel() {
	r.epoch++
	for i := range r.waiting {
		r.waiting[i] = false
	}
	r.left = 0
	r.counted = true
}

// Stats returns the completed recovery handshakes and their summed
// virtual-tick durations (exhausted attempts count their duration but
// not a completion).
func (r *Recovery) Stats() (recoveries int, ticks uint64) {
	r.mu.Lock()
	recoveries, ticks = r.recoveries, r.ticks
	r.mu.Unlock()
	return recoveries, ticks
}

// RecoveryEpochOf decodes the epoch header shared by both recovery
// kinds, reporting the requester/responder epoch and whether the frame
// was well-formed so far.
func RecoveryEpochOf(d *Dec) (uint32, error) {
	epoch := d.U32()
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("recovery frame: %w", err)
	}
	return epoch, nil
}

// WriteTag identifies the write a replica entry currently holds:
// the (Writer, WSeq) of the last update applied to the variable.
// Writer < 0 means untagged — the entry is still ⊥. Tags are what a
// snapshot response carries alongside each value, and what lets both
// the merge and the post-recovery apply path recognize state the
// adopted snapshot already reflects (a message sent before the crash
// can legally be delivered after the restart).
type WriteTag struct{ Writer, WSeq int }

// NewWriteTags returns an all-untagged tag store for numVars entries.
func NewWriteTags(numVars int) []WriteTag {
	t := make([]WriteTag, numVars)
	for i := range t {
		t[i].Writer = -1
	}
	return t
}

// Stale reports whether write (w, s) of the same writer is already
// reflected by the tag — the apply/merge must skip it or it would roll
// the replica backward. Writes by a different writer are never stale:
// cross-writer ordering is the consistency criterion's business, not
// the tag's (exact rejoin is guaranteed for single-writer variables,
// the workload discipline of every harness in this repo; concurrent
// multi-writer overwrite during a recovery window is best-effort).
func (t WriteTag) Stale(w, s int) bool { return t.Writer == w && s <= t.WSeq }
