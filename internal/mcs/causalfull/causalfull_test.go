package causalfull

import (
	"testing"

	"partialdsm/internal/check"
	"partialdsm/internal/mcs"
	"partialdsm/internal/metrics"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

func harness(t *testing.T, n int) ([]*Node, *netsim.Network, *mcs.Recorder) {
	t.Helper()
	pl := sharegraph.NewPlacement(n)
	for p := 0; p < n; p++ {
		pl.Assign(p, "x", "y", "z")
	}
	net := netsim.NewNetwork(n, netsim.Options{FIFO: true, Metrics: metrics.NewCollector()})
	t.Cleanup(net.Close)
	rec := mcs.NewRecorder(n)
	nodes, err := New(mcs.Config{Net: net, Placement: pl, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, net, rec
}

func TestBroadcastReachesEveryone(t *testing.T) {
	nodes, net, _ := harness(t, 4)
	if err := mcs.WriteInt(nodes[0], "x", 9); err != nil {
		t.Fatal(err)
	}
	net.Quiesce()
	for i, n := range nodes {
		if v, _ := mcs.ReadInt(n, "x"); v != 9 {
			t.Errorf("node %d x = %d", i, v)
		}
	}
}

// TestDelayedDelivery injects the classic causal anomaly at the
// transport level: node 2 receives w1(y) (which causally follows
// w0(x)) before w0(x). The vector-clock condition must buffer the y
// update until x arrives.
func TestDelayedDelivery(t *testing.T) {
	nodes, _, _ := harness(t, 3)
	// Hand-deliver messages to node 2 out of causal order by invoking
	// its handler directly with crafted one-record frames (the writer
	// travels in the message source; x=0, y=1 in the sorted universe).
	// w0(x)=1 has ts [1,0,0]; suppose node 1 saw it and wrote y with
	// ts [1,1,0].
	mkPayload := func(ts []uint32, varID int, val int64) []byte {
		var enc mcs.Enc
		enc.U32(1) // record count
		enc.U32Slice(ts).U32(uint32(varID)).I64(val)
		return enc.Bytes()
	}
	n2 := nodes[2]
	n2.handle(netsim.Message{From: 1, To: 2, Kind: KindUpdate,
		Payload: mkPayload([]uint32{1, 1, 0}, 1, 20)})
	if v, _ := mcs.ReadInt(n2, "y"); v != -9223372036854775808 {
		t.Fatalf("y applied before its causal predecessor x: %d", v)
	}
	n2.handle(netsim.Message{From: 0, To: 2, Kind: KindUpdate,
		Payload: mkPayload([]uint32{1, 0, 0}, 0, 10)})
	if v, _ := mcs.ReadInt(n2, "x"); v != 10 {
		t.Fatalf("x not applied: %d", v)
	}
	if v, _ := mcs.ReadInt(n2, "y"); v != 20 {
		t.Fatalf("buffered y not drained after x arrived: %d", v)
	}
}

func TestCausalChainThroughReads(t *testing.T) {
	nodes, net, rec := harness(t, 3)
	mcs.WriteInt(nodes[0], "x", 1)
	net.Quiesce()
	if v, _ := mcs.ReadInt(nodes[1], "x"); v != 1 {
		t.Fatal("node 1 missed x")
	}
	mcs.WriteInt(nodes[1], "y", 2) // causally after w0(x)1
	net.Quiesce()
	if v, _ := mcs.ReadInt(nodes[2], "y"); v != 2 {
		t.Fatal("node 2 missed y")
	}
	if v, _ := mcs.ReadInt(nodes[2], "x"); v != 1 {
		t.Fatal("causal order violated: y visible without x")
	}
	h, err := rec.History()
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WitnessCausal(h, rec.Logs()); err != nil {
		t.Fatalf("witness: %v", err)
	}
}

func TestVectorClockControlBytesGrowWithN(t *testing.T) {
	sizes := []int{2, 8}
	var ctrl [2]int64
	for i, n := range sizes {
		pl := sharegraph.NewPlacement(n)
		for p := 0; p < n; p++ {
			pl.Assign(p, "x")
		}
		col := metrics.NewCollector()
		net := netsim.NewNetwork(n, netsim.Options{FIFO: true, Metrics: col})
		nodes, err := New(mcs.Config{Net: net, Placement: pl})
		if err != nil {
			t.Fatal(err)
		}
		mcs.WriteInt(nodes[0], "x", 1)
		net.Quiesce()
		s := col.Snapshot()
		ctrl[i] = s.CtrlBytes / s.Msgs
		net.Close()
	}
	if ctrl[1] <= ctrl[0] {
		t.Errorf("per-message control bytes must grow with N: %d (n=2) vs %d (n=8)", ctrl[0], ctrl[1])
	}
}

func TestMalformedPayloadPanics(t *testing.T) {
	nodes, _, _ := harness(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("malformed update must panic")
		}
	}()
	nodes[0].handle(netsim.Message{From: 1, To: 0, Kind: KindUpdate, Payload: []byte{9}})
}
