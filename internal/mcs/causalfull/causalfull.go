// Package causalfull implements a causally consistent memory with
// complete replication, in the style of Ahamad, Neiger, Burns, Kohli &
// Hutto ("Causal Memory: Definitions, Implementation and Programming")
// — the baseline the paper contrasts partial replication against (§1).
//
// Every node replicates every variable and timestamps its writes with a
// vector clock counting writes per process. Updates are broadcast;
// delivery is delayed until the causal-broadcast condition holds
// (ts[w] = VC[w]+1 for the writer w and ts[k] ≤ VC[k] otherwise), and
// applies follow delivery order, which is a linear extension of the
// causality order. Reads are wait-free on the local replica.
//
// The control information is Θ(n) per message — the scalability cost
// the paper's §3.3 argues is unavoidable for causal consistency under
// general variable distributions. The implementation keeps the
// *allocation* cost per operation O(1) nonetheless: the vector clock is
// encoded straight from the node's clock array into the coalescing
// outbox (no per-write timestamp copy), replicas are a flat
// mcs.Replicas byte-value store over interned VarIDs, and the receive
// path decodes each record's
// clock into a per-node scratch slice, copying it only when the update
// must wait in the pending buffer (the out-of-order cold path).
package causalfull

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// KindUpdate is the protocol's only message kind: a batched frame of
// (U32Slice vc, VarVal varID/value) records.
const KindUpdate = "causal.update"

// update is a buffered remote write (cold path: out-of-order arrival);
// v is a pooled copy of the value bytes, recycled at delivery.
type update struct {
	writer int
	ts     []uint32
	varID  int
	v      []byte
}

// Node is one causal MCS process with a full replica set.
type Node struct {
	cfg mcs.Config
	id  int
	ix  *sharegraph.Index

	peers []int // every node but this one (broadcast set)

	mu       sync.Mutex
	vc       []uint32       // vc[p] = number of p's writes applied locally
	replicas mcs.Replicas   // by VarID
	tags     []mcs.WriteTag // by VarID: last applied write (for snapshots)
	pending  []update
	tsTmp    []uint32 // decode scratch, reused per record

	rcv       *mcs.Recovery
	rejoining bool

	// Epoch reconfiguration: every node replicates every variable, so a
	// flip only swaps the access-scoping index — no fence, no transfer.
	rcf *mcs.Reconfig

	out *mcs.Outbox
}

// New instantiates the nodes and installs handlers. The protocol
// replicates every variable everywhere; the placement scopes only the
// application's access rights.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			ix:       ix,
			vc:       make([]uint32, n),
			replicas: mcs.NewReplicas(ix.NumVars()),
			tags:     mcs.NewWriteTags(ix.NumVars()),
			tsTmp:    make([]uint32, 0, n),
			out:      mcs.NewOutbox(cfg.Net, i, KindUpdate, cfg.CoalesceBatch),
		}
		for p := 0; p < n; p++ {
			if p != i {
				node.peers = append(node.peers, p)
			}
		}
		node.rcv = mcs.NewRecovery(cfg, i, &node.mu)
		node.rcv.OnDone = node.finishRejoinLocked
		node.rcf = mcs.NewReconfig(cfg, i, &node.mu, node, ix)
		cfg.ApplyFlushPolicy(&node.mu, node.out)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Write performs w_i(x)v: stamp with the vector clock, apply locally,
// stage the broadcast. Although every node replicates every variable,
// the placement still scopes which variables the *application* process
// may access (the paper's X_i model).
func (n *Node) Put(x string, v []byte) error {
	n.mu.Lock()
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	name := n.ix.Name(xi)
	n.vc[n.id]++
	wseq := int(n.vc[n.id]) - 1
	n.replicas.Set(xi, v)
	n.tags[xi] = mcs.WriteTag{Writer: n.id, WSeq: wseq}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, name, v)
		rec.RecordApply(n.id, n.id, wseq, name, v)
	}
	enc := n.out.Stage()
	enc.U32Slice(n.vc).VarVal(xi, v)
	ctrl := enc.Len() - len(v)
	n.out.Emit(n.peers, n.ix.MsgVars(xi), ctrl, len(v))
	n.mu.Unlock()
	return nil
}

// PutAsync is Put: causal-broadcast writes are wait-free.
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	return mcs.Done, n.Put(x, v)
}

// Get performs r_i(x) wait-free on the local replica, flushing any
// coalesced updates first.
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	n.mu.Lock()
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	if n.out.HasPending() {
		n.out.Flush()
	}
	dst = append(dst[:0], n.replicas.Get(xi)...)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	n.mu.Unlock()
	// A polling reader drives buffered writers' flush deadlines.
	n.out.Nudge()
	return dst, nil
}

// BeginBatch suspends update flushing (mcs.Batcher).
func (n *Node) BeginBatch() {
	n.mu.Lock()
	n.out.Hold()
	n.mu.Unlock()
}

// EndBatch flushes everything staged since BeginBatch (mcs.Batcher).
func (n *Node) EndBatch() {
	n.mu.Lock()
	n.out.Release()
	n.mu.Unlock()
}

// FlushUpdates sends all buffered updates (mcs.Flusher).
func (n *Node) FlushUpdates() {
	n.mu.Lock()
	n.out.Flush()
	n.mu.Unlock()
}

// handle dispatches on message kind: steady-state update frames plus
// the two crash-recovery kinds.
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindUpdate:
		n.handleUpdate(msg)
	case mcs.KindSnapReq:
		n.handleSnapReq(msg)
	case mcs.KindSnapResp:
		n.handleSnapResp(msg)
	default:
		if mcs.IsEpochKind(msg.Kind) {
			n.rcf.Handle(msg)
			return
		}
		n.cfg.Faultf(n.id, "causalfull: node %d: unknown message kind %q", n.id, msg.Kind)
		mcs.RecycleFrame(msg)
	}
}

// handleUpdate processes a batched frame: deliverable records apply
// immediately off the decode scratch; the rest are copied into the
// pending buffer and drained as their dependencies arrive. Records
// whose writer entry the vector clock already covers are duplicates
// (injected, or pre-crash stragglers the snapshot merge covered) and
// are dropped; during a rejoin window everything pends until the merge
// has rebuilt the clock.
func (n *Node) handleUpdate(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	count := int(d.U32())
	if d.Err() != nil {
		n.cfg.Faultf(n.id, "causalfull: node %d: malformed frame from %d: %v", n.id, msg.From, d.Err())
		return
	}
	n.mu.Lock()
	for k := 0; k < count; k++ {
		n.tsTmp = d.U32SliceInto(n.tsTmp)
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "causalfull: node %d: malformed update from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= len(n.replicas) || len(n.tsTmp) != len(n.vc) || msg.From >= len(n.vc) {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "causalfull: node %d: update from %d has bad shape (varID %d, clock len %d)",
				n.id, msg.From, xi, len(n.tsTmp))
			return
		}
		switch {
		case n.rejoining:
			n.pending = append(n.pending, update{
				writer: msg.From,
				ts:     append([]uint32(nil), n.tsTmp...),
				varID:  xi,
				v:      append(mcs.GetPayload(), v...),
			})
		case n.tsTmp[msg.From] <= n.vc[msg.From]:
			// Already reflected: injected duplicate or snapshot-covered
			// pre-crash straggler.
		case n.deliverable(msg.From, n.tsTmp):
			n.applyLocked(msg.From, n.tsTmp[msg.From], xi, v)
			n.drainLocked()
		default:
			n.pending = append(n.pending, update{
				writer: msg.From,
				ts:     append([]uint32(nil), n.tsTmp...),
				varID:  xi,
				v:      append(mcs.GetPayload(), v...),
			})
		}
	}
	n.mu.Unlock()
}

// deliverable implements the causal-broadcast condition.
func (n *Node) deliverable(writer int, ts []uint32) bool {
	for k, t := range ts {
		switch {
		case k == writer:
			if t != n.vc[k]+1 {
				return false
			}
		case t > n.vc[k]:
			return false
		}
	}
	return true
}

// applyLocked installs one deliverable update; tsWriter is the writer's
// own clock entry (its wseq + 1).
func (n *Node) applyLocked(writer int, tsWriter uint32, xi int, v []byte) {
	n.vc[writer] = tsWriter
	n.replicas.Set(xi, v)
	n.tags[xi] = mcs.WriteTag{Writer: writer, WSeq: int(tsWriter) - 1}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordApply(n.id, writer, int(tsWriter)-1, n.ix.Name(xi), v)
	}
}

// drainLocked applies pending updates until a fixpoint.
func (n *Node) drainLocked() {
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(n.pending); i++ {
			u := n.pending[i]
			if !n.deliverable(u.writer, u.ts) {
				continue
			}
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			n.applyLocked(u.writer, u.ts[u.writer], u.varID, u.v)
			mcs.PutPayload(u.v)
			progress = true
			i--
		}
	}
}

// handleSnapReq answers a rejoining peer with the responder's vector
// clock and its full tagged replica state: the protocol replicates
// every variable everywhere, so any live peer can re-seed the whole
// store.
func (n *Node) handleSnapReq(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "causalfull: node %d: malformed snapshot request from %d: %v", n.id, msg.From, err)
		return
	}
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(epoch)
	n.mu.Lock()
	enc.U32Slice(n.vc)
	countPos := enc.Len()
	enc.U32(0)
	var vars []string
	count, data := 0, 0
	for xi := range n.tags {
		t := n.tags[xi]
		if t.Writer < 0 {
			continue
		}
		v := n.replicas.Get(xi)
		enc.U32(uint32(t.Writer)).U32(uint32(t.WSeq)).VarVal(xi, v)
		vars = append(vars, n.ix.Name(xi))
		data += len(v)
		count++
	}
	n.mu.Unlock()
	enc.PatchU32(countPos, uint32(count))
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From:      n.id,
		To:        msg.From,
		Kind:      mcs.KindSnapResp,
		Payload:   payload,
		CtrlBytes: len(payload) - data,
		DataBytes: data,
		Vars:      vars,
	})
}

// handleSnapResp merges one peer snapshot: the vector clock merges
// pointwise-max (the requester's view now causally covers everything
// any answering peer had applied) and values adopt unless the local
// tag already reflects a same-writer write at least as new.
func (n *Node) handleSnapResp(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	n.mu.Lock()
	n.tsTmp = d.U32SliceInto(n.tsTmp)
	count := int(d.U32())
	if err := d.Err(); err != nil {
		n.mu.Unlock()
		n.cfg.Faultf(n.id, "causalfull: node %d: malformed snapshot from %d: %v", n.id, msg.From, err)
		return
	}
	if !n.rcv.Accept(msg.From, epoch) {
		n.mu.Unlock()
		return
	}
	if len(n.tsTmp) != len(n.vc) {
		n.mu.Unlock()
		n.cfg.Faultf(n.id, "causalfull: node %d: snapshot from %d has bad clock len %d", n.id, msg.From, len(n.tsTmp))
		return
	}
	for k, t := range n.tsTmp {
		if t > n.vc[k] {
			n.vc[k] = t
		}
	}
	for k := 0; k < count; k++ {
		w := int(d.U32())
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "causalfull: node %d: malformed snapshot entry from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= len(n.replicas) || w < 0 || w >= len(n.vc) {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "causalfull: node %d: snapshot entry from %d names unknown VarID %d / writer %d",
				n.id, msg.From, xi, w)
			return
		}
		if n.tags[xi].Stale(w, s) {
			continue
		}
		n.replicas.Set(xi, v)
		n.tags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordRecover(n.id, w, s, n.ix.Name(xi), v)
		}
	}
	n.rcv.FinishResponse()
	n.mu.Unlock()
}

// finishRejoinLocked closes the rejoin window (Recovery.OnDone, node
// lock held): pending updates the merged clock already covers —
// pre-crash stragglers reflected in the adopted snapshots — are
// purged, the causal drain resumes against the merged clock, and
// variables no live peer knew a value for are recorded as ⊥ resets.
func (n *Node) finishRejoinLocked() {
	n.rejoining = false
	kept := n.pending[:0]
	for _, u := range n.pending {
		if u.ts[u.writer] <= n.vc[u.writer] {
			mcs.PutPayload(u.v)
			continue
		}
		kept = append(kept, u)
	}
	n.pending = kept
	if rec := n.cfg.Recorder; rec != nil {
		for _, xi := range n.ix.VarIDs(n.id) {
			if n.tags[xi].Writer < 0 {
				rec.RecordRecover(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue)
			}
		}
	}
	n.drainLocked()
}

// CrashRestart models the node rejoining after a crash with its
// volatile state lost: replicas revert to ⊥; tags, the pending buffer
// and every *other* process's vector-clock entry are forgotten, to be
// re-learned from peer snapshots during Recover (mcs.CrashRestarter).
// The node's own clock entry is its write counter and survives — a
// restarted writer must not reuse timestamps its peers have already
// delivered. Incoming updates pend until the snapshot merge rebuilds
// the clock.
func (n *Node) CrashRestart() {
	n.mu.Lock()
	for xi := range n.replicas {
		n.replicas.Set(xi, mcs.BottomValue)
		n.tags[xi] = mcs.WriteTag{Writer: -1}
	}
	for k := range n.vc {
		if k != n.id {
			n.vc[k] = 0
		}
	}
	for _, u := range n.pending {
		mcs.PutPayload(u.v)
	}
	n.pending = n.pending[:0]
	n.rejoining = true
	n.rcv.Cancel()
	n.rcf.CancelLocked()
	n.mu.Unlock()
}

// Recover starts the rejoin handshake (mcs.CrashRestarter). The
// protocol broadcasts to everyone, so every live node is a snapshot
// peer.
func (n *Node) Recover() {
	n.rcv.Begin(n.peers)
}

// RecoveryStats reports completed rejoins and their summed virtual
// duration (mcs.CrashRestarter).
func (n *Node) RecoveryStats() (recoveries int, ticks uint64) {
	return n.rcv.Stats()
}

// ReconfigEngine exposes the node's epoch reconfiguration engine to the
// cluster facade.
func (n *Node) ReconfigEngine() *mcs.Reconfig { return n.rcf }

// ReconfigFlushLocked implements mcs.ReconfigHooks.
func (n *Node) ReconfigFlushLocked() { n.out.Flush() }

// ReconfigFenceLocked is a no-op (mcs.ReconfigHooks): replica state is
// global, so a flip changes only which variables the application may
// access — in-flight writes stay valid across the boundary.
func (n *Node) ReconfigFenceLocked(next *sharegraph.Index) {}

// ReconfigTransferVarsLocked reports no transfers (mcs.ReconfigHooks):
// every node already holds every variable's state.
func (n *Node) ReconfigTransferVarsLocked(next *sharegraph.Index) []int { return nil }

// ReconfigEncodeLocked is never reached — no node requests transfers —
// and encodes an empty body (mcs.ReconfigHooks).
func (n *Node) ReconfigEncodeLocked(enc *mcs.Enc, requester int, varIDs []int, next *sharegraph.Index) (data int, vars []string) {
	return 0, nil
}

// ReconfigMergeLocked is the empty-body counterpart of
// ReconfigEncodeLocked (mcs.ReconfigHooks).
func (n *Node) ReconfigMergeLocked(d *mcs.Dec, from int, next *sharegraph.Index) error {
	return nil
}

// ReconfigFlipLocked swaps the access-scoping index and restamps the
// outbox (mcs.ReconfigHooks).
func (n *Node) ReconfigFlipLocked(next *sharegraph.Index) {
	n.ix = next
	n.out.SetEpoch(next.Epoch())
}

// ReconfigAbortLocked is a no-op (mcs.ReconfigHooks).
func (n *Node) ReconfigAbortLocked() {}

var (
	_ mcs.Node           = (*Node)(nil)
	_ mcs.Flusher        = (*Node)(nil)
	_ mcs.Batcher        = (*Node)(nil)
	_ mcs.CrashRestarter = (*Node)(nil)
	_ mcs.ReconfigHooks  = (*Node)(nil)
)
