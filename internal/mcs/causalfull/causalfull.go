// Package causalfull implements a causally consistent memory with
// complete replication, in the style of Ahamad, Neiger, Burns, Kohli &
// Hutto ("Causal Memory: Definitions, Implementation and Programming")
// — the baseline the paper contrasts partial replication against (§1).
//
// Every node replicates every variable and timestamps its writes with a
// vector clock counting writes per process. Updates are broadcast;
// delivery is delayed until the causal-broadcast condition holds
// (ts[w] = VC[w]+1 for the writer w and ts[k] ≤ VC[k] otherwise), and
// applies follow delivery order, which is a linear extension of the
// causality order. Reads are wait-free on the local replica.
//
// The control information is Θ(n) per message — the scalability cost
// the paper's §3.3 argues is unavoidable for causal consistency under
// general variable distributions. The implementation keeps the
// *allocation* cost per operation O(1) nonetheless: the vector clock is
// encoded straight from the node's clock array into the coalescing
// outbox (no per-write timestamp copy), replicas are a flat
// mcs.Replicas byte-value store over interned VarIDs, and the receive
// path decodes each record's
// clock into a per-node scratch slice, copying it only when the update
// must wait in the pending buffer (the out-of-order cold path).
package causalfull

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// KindUpdate is the protocol's only message kind: a batched frame of
// (U32Slice vc, VarVal varID/value) records.
const KindUpdate = "causal.update"

// update is a buffered remote write (cold path: out-of-order arrival);
// v is a pooled copy of the value bytes, recycled at delivery.
type update struct {
	writer int
	ts     []uint32
	varID  int
	v      []byte
}

// Node is one causal MCS process with a full replica set.
type Node struct {
	cfg mcs.Config
	id  int
	ix  *sharegraph.Index

	peers []int // every node but this one (broadcast set)

	mu       sync.Mutex
	vc       []uint32     // vc[p] = number of p's writes applied locally
	replicas mcs.Replicas // by VarID
	pending  []update
	tsTmp    []uint32 // decode scratch, reused per record
	out      *mcs.Outbox
}

// New instantiates the nodes and installs handlers. The protocol
// replicates every variable everywhere; the placement scopes only the
// application's access rights.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			ix:       ix,
			vc:       make([]uint32, n),
			replicas: mcs.NewReplicas(ix.NumVars()),
			tsTmp:    make([]uint32, 0, n),
			out:      mcs.NewOutbox(cfg.Net, i, KindUpdate, cfg.CoalesceBatch),
		}
		for p := 0; p < n; p++ {
			if p != i {
				node.peers = append(node.peers, p)
			}
		}
		cfg.ApplyFlushPolicy(&node.mu, node.out)
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Write performs w_i(x)v: stamp with the vector clock, apply locally,
// stage the broadcast. Although every node replicates every variable,
// the placement still scopes which variables the *application* process
// may access (the paper's X_i model).
func (n *Node) Put(x string, v []byte) error {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	name := n.ix.Name(xi)
	n.mu.Lock()
	n.vc[n.id]++
	wseq := int(n.vc[n.id]) - 1
	n.replicas.Set(xi, v)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, name, v)
		rec.RecordApply(n.id, n.id, wseq, name, v)
	}
	enc := n.out.Stage()
	enc.U32Slice(n.vc).VarVal(xi, v)
	ctrl := enc.Len() - len(v)
	n.out.Emit(n.peers, n.ix.MsgVars(xi), ctrl, len(v))
	n.mu.Unlock()
	return nil
}

// PutAsync is Put: causal-broadcast writes are wait-free.
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	return mcs.Done, n.Put(x, v)
}

// Get performs r_i(x) wait-free on the local replica, flushing any
// coalesced updates first.
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	if n.out.HasPending() {
		n.out.Flush()
	}
	dst = append(dst[:0], n.replicas.Get(xi)...)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	n.mu.Unlock()
	// A polling reader drives buffered writers' flush deadlines.
	n.out.Nudge()
	return dst, nil
}

// BeginBatch suspends update flushing (mcs.Batcher).
func (n *Node) BeginBatch() {
	n.mu.Lock()
	n.out.Hold()
	n.mu.Unlock()
}

// EndBatch flushes everything staged since BeginBatch (mcs.Batcher).
func (n *Node) EndBatch() {
	n.mu.Lock()
	n.out.Release()
	n.mu.Unlock()
}

// FlushUpdates sends all buffered updates (mcs.Flusher).
func (n *Node) FlushUpdates() {
	n.mu.Lock()
	n.out.Flush()
	n.mu.Unlock()
}

// handle processes a batched frame: deliverable records apply
// immediately off the decode scratch; the rest are copied into the
// pending buffer and drained as their dependencies arrive.
func (n *Node) handle(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	count := int(d.U32())
	if d.Err() != nil {
		n.cfg.Faultf(n.id, "causalfull: node %d: malformed frame from %d: %v", n.id, msg.From, d.Err())
		return
	}
	n.mu.Lock()
	for k := 0; k < count; k++ {
		n.tsTmp = d.U32SliceInto(n.tsTmp)
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "causalfull: node %d: malformed update from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= len(n.replicas) || len(n.tsTmp) != len(n.vc) || msg.From >= len(n.vc) {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "causalfull: node %d: update from %d has bad shape (varID %d, clock len %d)",
				n.id, msg.From, xi, len(n.tsTmp))
			return
		}
		if n.deliverable(msg.From, n.tsTmp) {
			n.applyLocked(msg.From, n.tsTmp[msg.From], xi, v)
			n.drainLocked()
		} else {
			n.pending = append(n.pending, update{
				writer: msg.From,
				ts:     append([]uint32(nil), n.tsTmp...),
				varID:  xi,
				v:      append(mcs.GetPayload(), v...),
			})
		}
	}
	n.mu.Unlock()
}

// deliverable implements the causal-broadcast condition.
func (n *Node) deliverable(writer int, ts []uint32) bool {
	for k, t := range ts {
		switch {
		case k == writer:
			if t != n.vc[k]+1 {
				return false
			}
		case t > n.vc[k]:
			return false
		}
	}
	return true
}

// applyLocked installs one deliverable update; tsWriter is the writer's
// own clock entry (its wseq + 1).
func (n *Node) applyLocked(writer int, tsWriter uint32, xi int, v []byte) {
	n.vc[writer] = tsWriter
	n.replicas.Set(xi, v)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordApply(n.id, writer, int(tsWriter)-1, n.ix.Name(xi), v)
	}
}

// drainLocked applies pending updates until a fixpoint.
func (n *Node) drainLocked() {
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(n.pending); i++ {
			u := n.pending[i]
			if !n.deliverable(u.writer, u.ts) {
				continue
			}
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			n.applyLocked(u.writer, u.ts[u.writer], u.varID, u.v)
			mcs.PutPayload(u.v)
			progress = true
			i--
		}
	}
}

var (
	_ mcs.Node    = (*Node)(nil)
	_ mcs.Flusher = (*Node)(nil)
	_ mcs.Batcher = (*Node)(nil)
)
