// Package causalfull implements a causally consistent memory with
// complete replication, in the style of Ahamad, Neiger, Burns, Kohli &
// Hutto ("Causal Memory: Definitions, Implementation and Programming")
// — the baseline the paper contrasts partial replication against (§1).
//
// Every node replicates every variable and timestamps its writes with a
// vector clock counting writes per process. Updates are broadcast;
// delivery is delayed until the causal-broadcast condition holds
// (ts[w] = VC[w]+1 for the writer w and ts[k] ≤ VC[k] otherwise), and
// applies follow delivery order, which is a linear extension of the
// causality order. Reads are wait-free on the local replica.
//
// The control information is Θ(n) per message — the scalability cost
// the paper's §3.3 argues is unavoidable for causal consistency under
// general variable distributions.
package causalfull

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/model"
	"partialdsm/internal/netsim"
)

// KindUpdate is the protocol's only message kind.
const KindUpdate = "causal.update"

// update is a buffered remote write.
type update struct {
	writer int
	ts     []uint32
	x      string
	v      int64
}

// Node is one causal MCS process with a full replica set.
type Node struct {
	cfg mcs.Config
	id  int

	mu       sync.Mutex
	vc       []uint32 // vc[p] = number of p's writes applied locally
	replicas map[string]int64
	pending  []update
}

// New instantiates the nodes and installs handlers. The protocol
// replicates every variable everywhere; the placement scopes only the
// application's access rights.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Placement.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			vc:       make([]uint32, n),
			replicas: make(map[string]int64),
		}
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// Write performs w_i(x)v: stamp with the vector clock, apply locally,
// broadcast. Although every node replicates every variable, the
// placement still scopes which variables the *application* process may
// access (the paper's X_i model).
func (n *Node) Write(x string, v int64) error {
	if !n.cfg.Placement.Holds(n.id, x) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	n.vc[n.id]++
	wseq := int(n.vc[n.id]) - 1
	ts := append([]uint32(nil), n.vc...)
	n.replicas[x] = v
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, x, v)
		rec.RecordApply(n.id, n.id, wseq, x, v)
	}
	n.mu.Unlock()

	var enc mcs.Enc
	enc.U32(uint32(n.id)).U32Slice(ts).Str(x).I64(v)
	payload := enc.Bytes()
	for p := 0; p < n.cfg.Net.NumNodes(); p++ {
		if p == n.id {
			continue
		}
		n.cfg.Net.Send(netsim.Message{
			From:      n.id,
			To:        p,
			Kind:      KindUpdate,
			Payload:   payload,
			CtrlBytes: len(payload) - 8,
			DataBytes: 8,
			Vars:      []string{x},
		})
	}
	return nil
}

// Read performs r_i(x) wait-free on the local replica.
func (n *Node) Read(x string) (int64, error) {
	if !n.cfg.Placement.Holds(n.id, x) {
		return 0, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	v, ok := n.replicas[x]
	if !ok {
		v = model.Bottom
	}
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, x, v)
	}
	n.mu.Unlock()
	return v, nil
}

// handle buffers the update and drains everything deliverable.
func (n *Node) handle(msg netsim.Message) {
	d := mcs.NewDec(msg.Payload)
	writer := int(d.U32())
	ts := d.U32Slice()
	x := d.Str()
	v := d.I64()
	if err := d.Err(); err != nil {
		panic(fmt.Sprintf("causalfull: node %d: malformed update from %d: %v", n.id, msg.From, err))
	}
	n.mu.Lock()
	n.pending = append(n.pending, update{writer: writer, ts: ts, x: x, v: v})
	n.drainLocked()
	n.mu.Unlock()
}

// deliverable implements the causal-broadcast condition.
func (n *Node) deliverable(u update) bool {
	for k, t := range u.ts {
		switch {
		case k == u.writer:
			if t != n.vc[k]+1 {
				return false
			}
		case t > n.vc[k]:
			return false
		}
	}
	return true
}

// drainLocked applies pending updates until a fixpoint.
func (n *Node) drainLocked() {
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(n.pending); i++ {
			u := n.pending[i]
			if !n.deliverable(u) {
				continue
			}
			n.pending = append(n.pending[:i], n.pending[i+1:]...)
			n.vc[u.writer] = u.ts[u.writer]
			n.replicas[u.x] = u.v
			if rec := n.cfg.Recorder; rec != nil {
				rec.RecordApply(n.id, u.writer, int(u.ts[u.writer])-1, u.x, u.v)
			}
			progress = true
			i--
		}
	}
}

var _ mcs.Node = (*Node)(nil)
