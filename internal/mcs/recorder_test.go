package mcs

import (
	"strings"
	"sync"
	"testing"

	"partialdsm/internal/model"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// iv encodes an int64 test value as its 8-byte wire representation.
func iv(v int64) []byte { return []byte(model.IntValue(v)) }

func TestRecorderHistoryProgramOrder(t *testing.T) {
	r := NewRecorder(2)
	if seq := r.RecordWrite(0, "x", iv(1)); seq != 0 {
		t.Errorf("first write seq = %d", seq)
	}
	r.RecordRead(0, "x", iv(1))
	if seq := r.RecordWrite(0, "y", iv(2)); seq != 1 {
		t.Errorf("second write seq = %d", seq)
	}
	r.RecordRead(1, "z", []byte(model.Bottom))
	h, err := r.History()
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 4 || h.NumProcs() != 2 {
		t.Fatalf("history shape: %d ops, %d procs", h.Len(), h.NumProcs())
	}
	local0 := h.Local(0)
	if len(local0) != 3 {
		t.Fatalf("p0 has %d ops", len(local0))
	}
	if op := h.Op(local0[1]); !op.IsRead() || op.Var != "x" {
		t.Errorf("p0 op 1 = %v", op)
	}
	if op := h.Op(h.Local(1)[0]); op.Val != model.Bottom {
		t.Errorf("⊥-read lost: %v", op)
	}
}

func TestRecorderLogs(t *testing.T) {
	r := NewRecorder(2)
	wseq := r.RecordWrite(0, "x", iv(5))
	r.RecordApply(0, 0, wseq, "x", iv(5))
	r.RecordApply(1, 0, wseq, "x", iv(5))
	r.RecordRead(1, "x", iv(5))
	logs := r.Logs()
	if len(logs[0]) != 1 || len(logs[1]) != 2 {
		t.Fatalf("log lengths: %d, %d", len(logs[0]), len(logs[1]))
	}
	if logs[1][0].IsRead || logs[1][0].Writer != 0 || logs[1][0].WSeq != 0 {
		t.Errorf("apply event = %+v", logs[1][0])
	}
	if !logs[1][1].IsRead || logs[1][1].Val != model.IntValue(5) {
		t.Errorf("read event = %+v", logs[1][1])
	}
	// Logs are a deep copy.
	logs[0][0].Val = model.IntValue(99)
	if r.Logs()[0][0].Val == model.IntValue(99) {
		t.Error("Logs aliases recorder state")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(4)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				seq := r.RecordWrite(p, "x", iv(int64(p*1000+k)))
				if seq != k {
					t.Errorf("p%d write %d got seq %d", p, k, seq)
					return
				}
				r.RecordApply(p, p, seq, "x", iv(int64(p*1000+k)))
			}
		}(p)
	}
	wg.Wait()
	if r.OpCount() != 800 {
		t.Fatalf("OpCount = %d", r.OpCount())
	}
	if s := r.String(); !strings.Contains(s, "800 ops") {
		t.Errorf("String = %q", s)
	}
}

func TestConfigValidate(t *testing.T) {
	pl := sharegraph.NewPlacement(2).Assign(0, "x").Assign(1, "x")
	net := netsim.NewNetwork(2, netsim.Options{FIFO: true})
	defer net.Close()
	ok := Config{Net: net, Placement: pl}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{Placement: pl}).Validate(); err == nil {
		t.Error("missing network not detected")
	}
	if err := (Config{Net: net}).Validate(); err == nil {
		t.Error("missing placement not detected")
	}
	pl3 := sharegraph.NewPlacement(3)
	if err := (Config{Net: net, Placement: pl3}).Validate(); err == nil {
		t.Error("size mismatch not detected")
	}
}
