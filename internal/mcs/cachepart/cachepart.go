// Package cachepart implements cache consistency (Goodman) — per-
// variable sequential consistency — under partial replication, as an
// exploration of the paper's §7 open question: whether criteria other
// than (and in places stronger than) PRAM admit efficient partial-
// replication implementations.
//
// Cache consistency is incomparable with PRAM: it totally orders all
// operations on each single variable (stronger than PRAM's per-sender
// guarantee on that axis) but imposes nothing across variables (weaker
// than PRAM's program order). Crucially, its synchronization is
// per-variable, so it *is* efficient in the paper's sense: every
// message about x stays inside C(x).
//
// Protocol: the lowest-numbered member of C(x) acts as x's sequencer.
// A write on x travels to the sequencer, receives a per-variable
// sequence number and is multicast to C(x); replicas apply each
// variable's updates in sequence order; the writer blocks until its
// own update is applied locally (per-variable read-your-writes, which
// makes each variable's projection sequentially consistent with local
// wait-free reads). Reads are local.
//
// Writes block on a round trip, so updates are not coalesced; all
// per-variable state lives in flat arrays indexed by interned VarIDs
// and the single-destination request payload is recycled by the
// sequencer.
package cachepart

import (
	"fmt"
	"sync"

	"partialdsm/internal/mcs"
	"partialdsm/internal/netsim"
	"partialdsm/internal/sharegraph"
)

// Message kinds. A request is (U32 wseq, VarVal varID/value) with the
// writer identified by the message source; an update is
// (U32 seq, U32 writer, U32 wseq, VarVal varID/value).
const (
	KindRequest = "cache.request" // writer → variable sequencer
	KindUpdate  = "cache.update"  // sequencer → C(x)
)

// bufferedUpd is an out-of-order per-variable update; v is a pooled
// copy of the value bytes, recycled at apply.
type bufferedUpd struct {
	writer int
	wseq   int
	v      []byte
}

// Node is one cache-consistent MCS process.
type Node struct {
	cfg mcs.Config
	id  int
	ix  *sharegraph.Index

	mu       sync.Mutex
	replicas mcs.Replicas   // by VarID
	tags     []mcs.WriteTag // by VarID: last applied write (for snapshots)
	wseq     int
	nextSeq  []int                 // next per-variable sequence to apply, by VarID
	buffered []map[int]bufferedUpd // by VarID; maps lazily allocated
	// ownDone is, per VarID, the settle cursor for this node's own
	// writes: own writes with wseq below it have taken local effect —
	// applied by the drain, or covered by an adopted snapshot prefix.
	// Keyed to the global write counter (which the update wire format
	// carries) rather than a count of apply events, it is idempotent
	// under fault-layer duplicates and across recovery windows.
	ownDone []int
	applied *sync.Cond

	rcv       *mcs.Recovery
	rejoining bool

	// Sequencer state. The per-variable counters are durable across the
	// sequencer's own crashes: they cannot be reconstructed from
	// replicas (in-flight multicasts may outrun every peer's apply
	// cursor), and a reused sequence number would fork a variable's
	// total order.
	seqMu sync.Mutex
	vseq  []int // sequencer role: next sequence per owned VarID
}

// New instantiates the nodes and installs handlers.
func New(cfg mcs.Config) ([]*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ix := cfg.Placement.Index()
	n := ix.NumProcs()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := &Node{
			cfg:      cfg,
			id:       i,
			ix:       ix,
			replicas: mcs.NewReplicas(ix.NumVars()),
			tags:     mcs.NewWriteTags(ix.NumVars()),
			nextSeq:  make([]int, ix.NumVars()),
			buffered: make([]map[int]bufferedUpd, ix.NumVars()),
			ownDone:  make([]int, ix.NumVars()),
			vseq:     make([]int, ix.NumVars()),
		}
		node.applied = sync.NewCond(&node.mu)
		node.rcv = mcs.NewRecovery(cfg, i, &node.mu)
		node.rcv.OnDone = node.finishRejoinLocked
		nodes[i] = node
		cfg.Net.SetHandler(i, node.handle)
	}
	return nodes, nil
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// primary returns x's sequencer: the lowest member of C(x).
func (n *Node) primary(xi int) (int, error) {
	cx := n.ix.Clique(xi)
	if len(cx) == 0 {
		return 0, fmt.Errorf("%w: variable %s has no replicas", mcs.ErrNotReplicated, n.ix.Name(xi))
	}
	return cx[0], nil
}

// issue records and sends one write request to x's sequencer,
// returning the write's per-process sequence number.
func (n *Node) issue(xi, prim int, v []byte) (wseq int) {
	n.mu.Lock()
	wseq = n.wseq
	n.wseq++
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordWrite(n.id, n.ix.Name(xi), v)
	}
	n.mu.Unlock()

	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(uint32(wseq)).VarVal(xi, v)
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From: n.id, To: prim, Kind: KindRequest,
		Payload: payload, CtrlBytes: len(payload) - len(v), DataBytes: len(v),
		Vars: n.ix.MsgVars(xi),
	})
	return wseq
}

// Put performs w_i(x)v: route through x's sequencer, block until the
// update is applied locally.
func (n *Node) Put(x string, v []byte) error {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return err
	}
	wseq := n.issue(xi, prim, v)
	// Block until this write has taken local effect, so the process's
	// operations on x serialize in program order.
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.OpDeadlineTicks > 0 {
		return n.cfg.WaitDeadline(n.id, n.applied,
			func() bool { return n.ownDone[xi] > wseq },
			func() string { return fmt.Sprintf("cachepart: node %d write #%d to %s", n.id, wseq, x) })
	}
	for n.ownDone[xi] <= wseq {
		n.applied.Wait()
	}
	return nil
}

// pending is an outstanding asynchronous write on one variable: it
// completes when the write has taken local effect — exactly where the
// synchronous Put would have returned. Requests reach x's sequencer in
// issue order (per-pair FIFO), so outstanding writes on one variable
// complete in issue order.
type pending struct {
	n     *Node
	varID int
	wseq  int
}

// Wait blocks until the write is applied locally.
func (p *pending) Wait() error {
	n := p.n
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.OpDeadlineTicks > 0 {
		return n.cfg.WaitDeadline(n.id, n.applied,
			func() bool { return n.ownDone[p.varID] > p.wseq },
			func() string {
				return fmt.Sprintf("cachepart: node %d async write #%d to %s", n.id, p.wseq, n.ix.Name(p.varID))
			})
	}
	for n.ownDone[p.varID] <= p.wseq {
		n.applied.Wait()
	}
	return nil
}

// PutAsync performs w_i(x)v without waiting for the sequencer round
// trip; Wait blocks until the update is applied locally. Outstanding
// writes reach x's sequencer in issue order only on FIFO channels, so
// on a NonFIFO network PutAsync degrades to the synchronous Put.
func (n *Node) PutAsync(x string, v []byte) (mcs.Pending, error) {
	if n.cfg.NonFIFO {
		return mcs.Done, n.Put(x, v)
	}
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	prim, err := n.primary(xi)
	if err != nil {
		return nil, err
	}
	return &pending{n: n, varID: xi, wseq: n.issue(xi, prim, v)}, nil
}

// Get performs r_i(x) wait-free on the local replica, appending the
// value to dst[:0].
func (n *Node) Get(x string, dst []byte) ([]byte, error) {
	xi := n.ix.ID(x)
	if !n.ix.Holds(n.id, xi) {
		return nil, fmt.Errorf("%w: node %d, variable %s", mcs.ErrNotReplicated, n.id, x)
	}
	n.mu.Lock()
	dst = append(dst[:0], n.replicas.Get(xi)...)
	if rec := n.cfg.Recorder; rec != nil {
		rec.RecordRead(n.id, n.ix.Name(xi), dst)
	}
	n.mu.Unlock()
	return dst, nil
}

// handle dispatches sequencing requests and replica updates.
func (n *Node) handle(msg netsim.Message) {
	switch msg.Kind {
	case KindRequest:
		n.sequence(msg)
	case KindUpdate:
		n.applyUpdate(msg)
	case mcs.KindSnapReq:
		n.handleSnapReq(msg)
	case mcs.KindSnapResp:
		n.handleSnapResp(msg)
	default:
		n.cfg.Faultf(n.id, "cachepart: node %d: unknown message kind %q", n.id, msg.Kind)
		mcs.RecycleFrame(msg)
	}
}

// sequence (sequencer role for the message's variable) assigns the
// per-variable order and multicasts to C(x). Malformed or misrouted
// requests are reported through Config.Faultf and dropped (a panic on
// a reliable network, a survivable fault under injection).
func (n *Node) sequence(msg netsim.Message) {
	d := mcs.DecOf(msg.Payload)
	wseq := int(d.U32())
	xi, v := d.VarVal()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "cachepart: node %d: malformed request from %d: %v", n.id, msg.From, err)
		mcs.RecycleFrame(msg)
		return
	}
	if xi < 0 || xi >= n.ix.NumVars() {
		n.cfg.Faultf(n.id, "cachepart: node %d: request from %d names unknown VarID %d", n.id, msg.From, xi)
		mcs.RecycleFrame(msg)
		return
	}
	if prim, _ := n.primary(xi); prim != n.id {
		n.cfg.Faultf(n.id, "cachepart: request for %s routed to non-sequencer node %d", n.ix.Name(xi), n.id)
		mcs.RecycleFrame(msg)
		return
	}
	n.seqMu.Lock()
	seq := n.vseq[xi]
	n.vseq[xi]++
	n.seqMu.Unlock()

	// The multicast payload is shared across C(x): a refcounted pooled
	// frame that the last receiver recycles. v still aliases the
	// request payload, which is recycled only after the re-encode.
	clique := n.ix.Clique(xi)
	buf, refs := mcs.GetSharedPayload(len(clique))
	var enc mcs.Enc
	enc.SetBuf(buf)
	enc.U32(uint32(seq)).U32(uint32(msg.From)).U32(uint32(wseq)).VarVal(xi, v)
	payload := enc.Bytes()
	mcs.PutPayload(msg.Payload) // single-destination request: sequencer owns it
	for _, p := range clique {
		n.cfg.Net.Send(netsim.Message{
			From: n.id, To: p, Kind: KindUpdate,
			Payload: payload, CtrlBytes: len(payload) - len(v), DataBytes: len(v),
			Vars: n.ix.MsgVars(xi), SharedPayload: true, SharedRefs: refs,
		})
	}
}

// applyUpdate applies x's updates strictly in per-variable sequence
// order.
func (n *Node) applyUpdate(msg netsim.Message) {
	d := mcs.DecOf(msg.Payload)
	seq := int(d.U32())
	writer := int(d.U32())
	wseq := int(d.U32())
	xi, v := d.VarVal()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "cachepart: node %d: malformed update: %v", n.id, err)
		mcs.RecycleFrame(msg)
		return
	}
	if xi < 0 || xi >= n.ix.NumVars() {
		n.cfg.Faultf(n.id, "cachepart: node %d: update names unknown VarID %d", n.id, xi)
		mcs.RecycleFrame(msg)
		return
	}
	n.mu.Lock()
	// Updates below the variable's cursor are already reflected — an
	// injected duplicate, or a pre-crash straggler the snapshot merge
	// covered — and are dropped. During a rejoin window updates only
	// buffer: the cursors are being re-learned from peer snapshots.
	if !n.rejoining && seq < n.nextSeq[xi] {
		// The replica state needs nothing, but an own write riding the
		// frame must still be settled or its Put/Wait would block forever
		// (the write's effect reached us inside an adopted snapshot).
		n.settleOwnLocked(xi, writer, wseq)
		n.mu.Unlock()
		mcs.RecycleFrame(msg)
		return
	}
	if n.buffered[xi] == nil {
		n.buffered[xi] = make(map[int]bufferedUpd)
	}
	// The value must outlive the shared multicast frame: copy it into a
	// pooled buffer, recycled when the update applies.
	n.buffered[xi][seq] = bufferedUpd{writer: writer, wseq: wseq, v: append(mcs.GetPayload(), v...)}
	if !n.rejoining {
		n.drainLocked(xi)
	}
	n.mu.Unlock()
	mcs.RecycleFrame(msg) // last receiver of the shared multicast recycles it
}

// drainLocked applies x's buffered updates in sequence order from the
// cursor and wakes write waiters.
func (n *Node) drainLocked(xi int) {
	for {
		u, ok := n.buffered[xi][n.nextSeq[xi]]
		if !ok {
			break
		}
		delete(n.buffered[xi], n.nextSeq[xi])
		n.nextSeq[xi]++
		n.replicas.Set(xi, u.v)
		n.tags[xi] = mcs.WriteTag{Writer: u.writer, WSeq: u.wseq}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordApply(n.id, u.writer, u.wseq, n.ix.Name(xi), u.v)
		}
		n.settleOwnLocked(xi, u.writer, u.wseq)
		mcs.PutPayload(u.v)
	}
	n.applied.Broadcast()
}

// settleOwnLocked advances x's own-write settle cursor when an own
// update's effect is in the replica state — applied by the drain,
// covered by an adopted snapshot prefix, or echoed by a fault-layer
// duplicate. Max semantics keep it idempotent, and pre-crash
// stragglers never regress it: CrashRestart settles everything issued
// before the crash.
func (n *Node) settleOwnLocked(xi, writer, wseq int) {
	if writer == n.id && wseq+1 > n.ownDone[xi] {
		n.ownDone[xi] = wseq + 1
		n.applied.Broadcast()
	}
}

// handleSnapReq answers a rejoining peer with, per mutually-replicated
// written variable: the apply cursor, the last applied write's
// (writer, wseq) tag and the value. Snapshot traffic stays inside the
// cliques both nodes belong to, preserving the protocol's efficiency.
func (n *Node) handleSnapReq(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "cachepart: node %d: malformed snapshot request from %d: %v", n.id, msg.From, err)
		return
	}
	var enc mcs.Enc
	enc.SetBuf(mcs.GetPayload())
	enc.U32(epoch)
	countPos := enc.Len()
	enc.U32(0)
	var vars []string
	count, data := 0, 0
	n.mu.Lock()
	for _, xi := range n.ix.VarIDs(n.id) {
		t := n.tags[xi]
		if n.nextSeq[xi] == 0 || t.Writer < 0 || !n.ix.Holds(msg.From, xi) {
			continue
		}
		v := n.replicas.Get(xi)
		enc.U32(uint32(n.nextSeq[xi])).U32(uint32(t.Writer)).U32(uint32(t.WSeq)).VarVal(xi, v)
		vars = append(vars, n.ix.Name(xi))
		data += len(v)
		count++
	}
	n.mu.Unlock()
	enc.PatchU32(countPos, uint32(count))
	payload := enc.Bytes()
	n.cfg.Net.Send(netsim.Message{
		From:      n.id,
		To:        msg.From,
		Kind:      mcs.KindSnapResp,
		Payload:   payload,
		CtrlBytes: len(payload) - data,
		DataBytes: data,
		Vars:      vars,
	})
}

// handleSnapResp merges one peer snapshot per variable: each
// variable's updates form one total order, so the highest apply cursor
// wins and adopting its value and cursor together keeps them
// consistent.
func (n *Node) handleSnapResp(msg netsim.Message) {
	defer mcs.RecycleFrame(msg)
	d := mcs.DecOf(msg.Payload)
	epoch := d.U32()
	count := int(d.U32())
	if err := d.Err(); err != nil {
		n.cfg.Faultf(n.id, "cachepart: node %d: malformed snapshot from %d: %v", n.id, msg.From, err)
		return
	}
	n.mu.Lock()
	if !n.rcv.Accept(msg.From, epoch) {
		n.mu.Unlock()
		return
	}
	for k := 0; k < count; k++ {
		cursor := int(d.U32())
		w := int(d.U32())
		s := int(d.U32())
		xi, v := d.VarVal()
		if err := d.Err(); err != nil {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "cachepart: node %d: malformed snapshot entry from %d: %v", n.id, msg.From, err)
			return
		}
		if xi < 0 || xi >= n.ix.NumVars() || w < 0 || w >= n.cfg.Net.NumNodes() {
			n.mu.Unlock()
			n.cfg.Faultf(n.id, "cachepart: node %d: snapshot entry from %d names unknown VarID %d / writer %d",
				n.id, msg.From, xi, w)
			return
		}
		if cursor <= n.nextSeq[xi] {
			continue
		}
		n.nextSeq[xi] = cursor
		n.replicas.Set(xi, v)
		n.tags[xi] = mcs.WriteTag{Writer: w, WSeq: s}
		if rec := n.cfg.Recorder; rec != nil {
			rec.RecordRecover(n.id, w, s, n.ix.Name(xi), v)
		}
	}
	n.rcv.FinishResponse()
	n.mu.Unlock()
}

// finishRejoinLocked closes the rejoin window (Recovery.OnDone, node
// lock held): buffered updates below the adopted cursors — pre-crash
// stragglers the snapshots already cover — are purged, each variable's
// drain resumes from its cursor, and variables no live peer knew a
// value for are recorded as ⊥ resets.
func (n *Node) finishRejoinLocked() {
	n.rejoining = false
	rec := n.cfg.Recorder
	for _, xi := range n.ix.VarIDs(n.id) {
		for seq, u := range n.buffered[xi] {
			if seq < n.nextSeq[xi] {
				delete(n.buffered[xi], seq)
				// The purged update's effect is inside the adopted
				// snapshot; an own write issued during the rejoin window
				// still completes.
				n.settleOwnLocked(xi, u.writer, u.wseq)
				mcs.PutPayload(u.v)
			}
		}
		if rec != nil && n.tags[xi].Writer < 0 {
			rec.RecordRecover(n.id, -1, -1, n.ix.Name(xi), mcs.BottomValue)
		}
		n.drainLocked(xi)
	}
}

// CrashRestart models the node rejoining after a crash with its
// volatile state lost: replicas revert to ⊥; tags, apply cursors and
// reorder buffers are forgotten, to be re-learned from peer snapshots
// during Recover (mcs.CrashRestarter). Durable state survives: the
// node's write counters, and its per-variable sequencer counters (a
// reused sequence number would fork a variable's total order). Writes
// still blocked from before the crash complete: their requests died
// with the node.
func (n *Node) CrashRestart() {
	n.mu.Lock()
	for xi := range n.replicas {
		n.replicas.Set(xi, mcs.BottomValue)
		n.tags[xi] = mcs.WriteTag{Writer: -1}
		n.nextSeq[xi] = 0
		for seq, u := range n.buffered[xi] {
			delete(n.buffered[xi], seq)
			mcs.PutPayload(u.v)
		}
		n.ownDone[xi] = n.wseq
	}
	n.rejoining = true
	n.rcv.Cancel()
	n.applied.Broadcast()
	n.mu.Unlock()
}

// Recover starts the rejoin handshake with every variable-sharing
// neighbor (mcs.CrashRestarter).
func (n *Node) Recover() {
	n.rcv.Begin(n.cfg.Placement.Neighbors(n.id))
}

// RecoveryStats reports completed rejoins and their summed virtual
// duration (mcs.CrashRestarter).
func (n *Node) RecoveryStats() (recoveries int, ticks uint64) {
	return n.rcv.Stats()
}

var (
	_ mcs.Node           = (*Node)(nil)
	_ mcs.CrashRestarter = (*Node)(nil)
)
